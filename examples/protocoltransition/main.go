// Protocol transition: the paper's §5.4 headline demonstration. Two active
// bridges run an old DEC-style spanning tree; the new 802.1D protocol and a
// control switchlet are loaded alongside it. One injected 802.1D BPDU
// upgrades the whole network on the fly; validation failures trigger
// automatic fallback to the old protocol.
//
// Scenarios A and B run the fully in-network version (the control
// switchlet reacting to observed protocol traffic). Scenario C drives the
// identical transition through the public SDK instead: Manager.Upgrade,
// the paper's Table 1 machinery as a host API.
package main

import (
	"fmt"

	"github.com/switchware/activebridge/internal/experiments"
	"github.com/switchware/activebridge/internal/netsim"
	"github.com/switchware/activebridge/internal/switchlets"
	ab "github.com/switchware/activebridge/pkg/activebridge"
)

func main() {
	cost := netsim.DefaultCostModel()

	fmt.Println("### Scenario A: correct 802.1D switchlet — transition completes ###")
	runScenario(cost, switchlets.SpanningSrc)

	fmt.Println()
	fmt.Println("### Scenario B: buggy 802.1D switchlet — automatic fallback ###")
	fmt.Println("(the buggy variant elects the HIGHEST bridge id as root;")
	fmt.Println(" the control switchlet detects the tree mismatch at t+60s)")
	fmt.Println()
	runScenario(cost, switchlets.BuggySpanningSrc)

	fmt.Println()
	fmt.Println("### Scenario C: the same transition as a library call (pkg/activebridge) ###")
	runSDKUpgrade()
}

func runScenario(cost netsim.CostModel, spanningSrc string) {
	tn, err := experiments.NewTransitionNet(2, spanningSrc, cost)
	if err != nil {
		panic(err)
	}
	// Let DEC converge, then trigger the upgrade.
	tn.Sim.Run(netsim.Time(40 * netsim.Second))
	at := tn.Sim.Now()
	tn.Sim.Schedule(at+1, func() { tn.InjectIEEE() })
	tn.Sim.Run(at + netsim.Time(90*netsim.Second))

	fmt.Println("--- switchlet log ---")
	for _, l := range tn.Logs {
		fmt.Println(" ", l)
	}
	fmt.Println("--- final state ---")
	for i, b := range tn.Bridges {
		fmt.Printf("  b%d: dec.running=%s ieee.running=%s control.phase=%s\n",
			i+1, tn.Query(b, "dec.running"), tn.Query(b, "ieee.running"),
			tn.Query(b, "control.phase"))
	}
}

// runSDKUpgrade performs the DEC→IEEE transition with no control
// switchlet at all: the operator upgrades each node through its Manager,
// and the runtime provides capture, atomic handoff, suppression,
// validation and rollback.
func runSDKUpgrade() {
	g := ab.NewTopology("sdk-transition")
	var logs []string
	sink := func(at ab.Time, br, msg string) {
		logs = append(logs, fmt.Sprintf("%8.3fs %s: %s", at.Seconds(), br, msg))
	}
	b1 := g.AddBridge("b1", ab.EmptyBridge, 2, ab.WithLogSink(sink))
	b2 := g.AddBridge("b2", ab.EmptyBridge, 2, ab.WithLogSink(sink))
	lan1, lan2, lan3 := g.AddSegment("lan1"), g.AddSegment("lan2"), g.AddSegment("lan3")
	g.Link(b1, lan1)
	g.Link(b1, lan2)
	g.Link(b2, lan2)
	g.Link(b2, lan3)
	net, err := g.Build(ab.DefaultCostModel())
	if err != nil {
		panic(err)
	}
	bridges := []*ab.Bridge{net.Bridge(b1), net.Bridge(b2)}
	for _, b := range bridges {
		for _, sw := range []ab.Switchlet{ab.LearningSwitchlet(), ab.DECSwitchlet()} {
			if _, err := b.Manager().Install(sw); err != nil {
				panic(err)
			}
		}
	}
	net.Sim.Run(ab.Time(40 * ab.Second)) // DEC converges

	opts := ab.DefaultUpgradeOptions()
	opts.OldAddr = ab.DECBridgesMAC
	opts.NewAddr = ab.AllBridgesMAC
	var ups []*ab.Upgrade
	at := net.Sim.Now()
	net.Sim.Schedule(at+1, func() {
		for _, b := range bridges {
			u, err := b.Manager().Upgrade("Decspan", ab.SpanningSwitchlet(), opts)
			if err != nil {
				panic(err)
			}
			ups = append(ups, u)
		}
	})
	net.Sim.Run(at + ab.Time(70*ab.Second))

	fmt.Println("--- manager + switchlet log ---")
	for _, l := range logs {
		fmt.Println(" ", l)
	}
	fmt.Println("--- final state ---")
	for i, u := range ups {
		fmt.Printf("  b%d: %s -> %s state=%v suppressed=%d\n",
			i+1, u.Old().Manifest.Ref(), u.New().Manifest.Ref(), u.State(), u.Suppressed())
	}
}
