// Protocol transition: the paper's §5.4 headline demonstration. Two active
// bridges run an old DEC-style spanning tree; the new 802.1D protocol and a
// control switchlet are loaded alongside it. One injected 802.1D BPDU
// upgrades the whole network on the fly; validation failures trigger
// automatic fallback to the old protocol.
package main

import (
	"fmt"

	"github.com/switchware/activebridge/internal/experiments"
	"github.com/switchware/activebridge/internal/netsim"
	"github.com/switchware/activebridge/internal/switchlets"
)

func main() {
	cost := netsim.DefaultCostModel()

	fmt.Println("### Scenario A: correct 802.1D switchlet — transition completes ###")
	runScenario(cost, switchlets.SpanningSrc)

	fmt.Println()
	fmt.Println("### Scenario B: buggy 802.1D switchlet — automatic fallback ###")
	fmt.Println("(the buggy variant elects the HIGHEST bridge id as root;")
	fmt.Println(" the control switchlet detects the tree mismatch at t+60s)")
	fmt.Println()
	runScenario(cost, switchlets.BuggySpanningSrc)
}

func runScenario(cost netsim.CostModel, spanningSrc string) {
	tn, err := experiments.NewTransitionNet(2, spanningSrc, cost)
	if err != nil {
		panic(err)
	}
	// Let DEC converge, then trigger the upgrade.
	tn.Sim.Run(netsim.Time(40 * netsim.Second))
	at := tn.Sim.Now()
	tn.Sim.Schedule(at+1, func() { tn.InjectIEEE() })
	tn.Sim.Run(at + netsim.Time(90*netsim.Second))

	fmt.Println("--- switchlet log ---")
	for _, l := range tn.Logs {
		fmt.Println(" ", l)
	}
	fmt.Println("--- final state ---")
	for i, b := range tn.Bridges {
		fmt.Printf("  b%d: dec.running=%s ieee.running=%s control.phase=%s\n",
			i+1, tn.Query(b, "dec.running"), tn.Query(b, "ieee.running"),
			tn.Query(b, "control.phase"))
	}
}
