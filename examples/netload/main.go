// Network loading: the paper's §5.2 switchlet delivery path. A host
// compiles a switchlet, then writes it to the bridge's TFTP server over
// minimal UDP/IP on the simulated LAN; the bridge loads it on receipt.
// A second upload with a forged interface digest is rejected at link time
// and the TFTP client receives the error.
package main

import (
	"fmt"

	"github.com/switchware/activebridge/internal/bridge"
	"github.com/switchware/activebridge/internal/ethernet"
	"github.com/switchware/activebridge/internal/experiments"
	"github.com/switchware/activebridge/internal/ipv4"
	"github.com/switchware/activebridge/internal/netsim"
	"github.com/switchware/activebridge/internal/vm"
	"github.com/switchware/activebridge/internal/workload"
)

func main() {
	cost := netsim.DefaultCostModel()
	tbl, err := experiments.NetworkLoad(cost)
	if err != nil {
		panic(err)
	}
	fmt.Println(tbl)

	fmt.Println("== and the security path: uploading a forged switchlet ==")
	sim := netsim.New()
	b := bridge.New(sim, "br0", 1, 2, cost)
	b.LogSink = func(at netsim.Time, br, msg string) {
		fmt.Printf("  [%s] %s\n", br, msg)
	}
	bridgeIP := ipv4.Addr{10, 0, 0, 100}
	b.EnableNetLoader(bridgeIP)
	lan := netsim.NewSegment(sim, "lan")
	h := workload.NewHost(sim, "h1", ethernet.MAC{2, 0, 0, 0, 0, 1}, ipv4.Addr{10, 0, 0, 1}, cost)
	h.AddNeighbor(bridgeIP, b.MAC())
	lan.Attach(h.NIC)
	lan.Attach(b.Port(0))

	// Compile against a forged signature claiming Unixnet exports a
	// function it does not.
	forged := vm.NewSigEnv()
	for _, m := range b.Loader.SigEnv().Modules() {
		s, _ := b.Loader.SigEnv().Lookup(m)
		forged.Add(s)
	}
	evilSig := vm.NewSignature("Unixnet")
	evilSig.Add("disable_all_security", vm.MustParseType("unit -> unit"))
	forged.Add(evilSig)
	obj, _, err := vm.Compile("Evil", `let _ = Unixnet.disable_all_security ()`, forged)
	if err != nil {
		panic(err)
	}
	up := workload.NewUploader(h, bridgeIP, "evil.swo", obj.Encode())
	sim.Schedule(1, func() { up.Start() })
	sim.Run(netsim.Time(10 * netsim.Second))
	fmt.Printf("  upload done=%v err=%v\n", up.Done(), up.Err())
	fmt.Printf("  bridge loaded modules: %v (Evil is not among them)\n", b.Loader.Modules())
	fmt.Printf("  load errors recorded: %d\n", b.Loader.LoadErrors)
}
