// Network loading: the paper's §5.2 switchlet delivery path. A host
// compiles a switchlet, then writes it to the bridge's TFTP server over
// minimal UDP/IP on the simulated LAN; the bridge loads it on receipt.
// A second upload with a forged interface digest is rejected at link time
// and the TFTP client receives the error. A third switchlet never leaves
// the operator's machine: its manifest undeclares a capability its code
// imports, and Manager.Compile refuses to produce the object at all.
package main

import (
	"errors"
	"fmt"

	"github.com/switchware/activebridge/internal/ethernet"
	"github.com/switchware/activebridge/internal/experiments"
	"github.com/switchware/activebridge/internal/ipv4"
	"github.com/switchware/activebridge/internal/netsim"
	"github.com/switchware/activebridge/internal/vm"
	"github.com/switchware/activebridge/internal/workload"
	ab "github.com/switchware/activebridge/pkg/activebridge"
)

func main() {
	cost := netsim.DefaultCostModel()
	tbl, err := experiments.NetworkLoad(cost)
	if err != nil {
		panic(err)
	}
	fmt.Println(tbl)

	fmt.Println("== and the security path: uploading a forged switchlet ==")
	sim := netsim.New()
	b := ab.NewBridge(sim, "br0", 1, 2, cost)
	b.LogSink = func(at netsim.Time, br, msg string) {
		fmt.Printf("  [%s] %s\n", br, msg)
	}
	bridgeIP := ipv4.Addr{10, 0, 0, 100}
	b.EnableNetLoader(bridgeIP)
	lan := netsim.NewSegment(sim, "lan")
	h := workload.NewHost(sim, "h1", ethernet.MAC{2, 0, 0, 0, 0, 1}, ipv4.Addr{10, 0, 0, 1}, cost)
	h.AddNeighbor(bridgeIP, b.MAC())
	lan.Attach(h.NIC)
	lan.Attach(b.Port(0))

	// Compile against a forged signature claiming Unixnet exports a
	// function it does not.
	forged := vm.NewSigEnv()
	for _, m := range b.Loader.SigEnv().Modules() {
		s, _ := b.Loader.SigEnv().Lookup(m)
		forged.Add(s)
	}
	evilSig := vm.NewSignature("Unixnet")
	evilSig.Add("disable_all_security", vm.MustParseType("unit -> unit"))
	forged.Add(evilSig)
	obj, _, err := vm.Compile("Evil", `let _ = Unixnet.disable_all_security ()`, forged)
	if err != nil {
		panic(err)
	}
	up := workload.NewUploader(h, bridgeIP, "evil.swo", obj.Encode())
	sim.Schedule(1, func() { up.Start() })
	sim.Run(netsim.Time(10 * netsim.Second))
	fmt.Printf("  upload done=%v err=%v\n", up.Done(), up.Err())
	fmt.Printf("  bridge loaded modules: %v (Evil is not among them)\n", b.Loader.Modules())
	fmt.Printf("  load errors recorded: %d\n", b.Loader.LoadErrors)

	fmt.Println("\n== and the capability gate: the object is never even produced ==")
	sneaky := ab.Switchlet{
		Name:    "Sneaky",
		Version: ab.MustParseVersion("0.0.1"),
		// Claims to be a passive logger...
		Capabilities: []ab.Capability{ab.CapLog},
		// ...but its code wants the network.
		Source: `
let _ = Log.log "just logging, honest"
let _ = Unixnet.send_pkt_out 0 "........injected frame"`,
	}
	_, cerr := b.Manager().Compile(sneaky)
	var capErr *ab.CapabilityError
	if errors.As(cerr, &capErr) {
		fmt.Printf("  Manager.Compile refused: %v\n", cerr)
	} else {
		fmt.Printf("  unexpected: %v\n", cerr)
	}
}
