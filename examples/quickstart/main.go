// Quickstart: build the paper's Figure 7 network (two 100 Mb/s LANs joined
// by an Active Bridge), then upgrade the node on the fly — buffered
// repeater, self-learning bridge, 802.1D spanning tree — and watch traffic
// behaviour change with each loaded switchlet.
package main

import (
	"fmt"

	"github.com/switchware/activebridge/internal/bridge"
	"github.com/switchware/activebridge/internal/ethernet"
	"github.com/switchware/activebridge/internal/netsim"
	"github.com/switchware/activebridge/internal/switchlets"
)

func main() {
	sim := netsim.New()
	cost := netsim.DefaultCostModel()

	// One bridge, three LANs, one host on each.
	br := bridge.New(sim, "br0", 1, 3, cost)
	br.LogSink = func(at netsim.Time, b, msg string) {
		fmt.Printf("  [%8.3fs] %s: %s\n", at.Seconds(), b, msg)
	}
	var segs []*netsim.Segment
	var hosts []*netsim.NIC
	received := make([]int, 3)
	for i := 0; i < 3; i++ {
		seg := netsim.NewSegment(sim, fmt.Sprintf("lan%d", i+1))
		nic := netsim.NewNIC(sim, fmt.Sprintf("h%d", i+1), ethernet.MAC{2, 0, 0, 0, 0, byte(i + 1)})
		idx := i
		nic.SetRecv(func(*netsim.NIC, []byte) { received[idx]++ })
		seg.Attach(nic)
		seg.Attach(br.Port(i))
		segs = append(segs, seg)
		hosts = append(hosts, nic)
	}
	send := func(from, to int) {
		fr := ethernet.Frame{Dst: hosts[to].MAC, Src: hosts[from].MAC,
			Type: ethernet.TypeTest, Payload: make([]byte, 100)}
		raw, err := fr.Marshal()
		if err != nil {
			panic(err)
		}
		hosts[from].Send(raw)
	}
	segFrames := func() [3]uint64 {
		return [3]uint64{segs[0].Frames, segs[1].Frames, segs[2].Frames}
	}

	fmt.Println("== 1. A bare active bridge forwards nothing (behaviour is code) ==")
	sim.Schedule(sim.Now()+1, func() { send(0, 1) })
	sim.Run(sim.Now() + netsim.Time(100*netsim.Millisecond))
	fmt.Printf("  h2 received: %d frames (bridge has no switchlet)\n\n", received[1])

	fmt.Println("== 2. Load the dumb switchlet: a programmable buffered repeater ==")
	must(switchlets.LoadDumb(br))
	before := segFrames()
	sim.Schedule(sim.Now()+1, func() { send(0, 1) })
	sim.Run(sim.Now() + netsim.Time(100*netsim.Millisecond))
	after := segFrames()
	fmt.Printf("  h2 received: %d; frames repeated onto lan3 too: %d (floods everywhere)\n\n",
		received[1], after[2]-before[2])

	fmt.Println("== 3. Load the learning switchlet: it replaces the switching function ==")
	must(switchlets.LoadLearning(br))
	// h2 talks back so the bridge learns both stations.
	sim.Schedule(sim.Now()+1, func() { send(1, 0) })
	sim.Run(sim.Now() + netsim.Time(100*netsim.Millisecond))
	before = segFrames()
	sim.Schedule(sim.Now()+1, func() { send(0, 1) })
	sim.Run(sim.Now() + netsim.Time(100*netsim.Millisecond))
	after = segFrames()
	fmt.Printf("  h2 received: %d; leakage onto lan3 this time: %d (learned!)\n\n",
		received[1], after[2]-before[2])

	fmt.Println("== 4. Load the 802.1D switchlet: a fully functional bridge ==")
	must(switchlets.LoadSpanning(br))
	fmt.Println("  ports walk blocking -> listening -> learning -> forwarding (2 x 15 s):")
	loadedAt := sim.Now()
	for _, at := range []netsim.Duration{2 * netsim.Second, 17 * netsim.Second, 32 * netsim.Second} {
		sim.Run(loadedAt.Add(at))
		fmt.Printf("  t+%-4v port0 blocked=%v\n", at, br.PortBlocked(0))
	}
	before = segFrames()
	sim.Schedule(sim.Now()+1, func() { send(0, 1) })
	sim.Run(sim.Now() + netsim.Time(200*netsim.Millisecond))
	after = segFrames()
	fmt.Printf("  traffic flows again after the tree converges: lan2 frames +%d\n\n", after[1]-before[1])

	fmt.Println("== 5. The loaded module stack ==")
	for _, m := range br.Loader.Modules() {
		fmt.Printf("  %s\n", m)
	}
	fmt.Printf("\nstats: in=%d delivered=%d sent=%d traps=%d\n",
		br.Stats.FramesIn, br.Stats.FramesDelivered, br.Stats.FramesSent, br.Stats.HandlerTraps)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
