// Quickstart: build the paper's Figure 7 network (two 100 Mb/s LANs joined
// by an Active Bridge) using only the public SDK (pkg/activebridge), then
// upgrade the node on the fly — buffered repeater, self-learning bridge,
// 802.1D spanning tree — and watch traffic behaviour change with each
// installed switchlet manifest.
package main

import (
	"fmt"
	"strings"

	ab "github.com/switchware/activebridge/pkg/activebridge"
)

func main() {
	sim := ab.NewSim()
	cost := ab.DefaultCostModel()

	// One bridge, three LANs, one host on each.
	br := ab.NewBridge(sim, "br0", 1, 3, cost)
	br.LogSink = func(at ab.Time, b, msg string) {
		fmt.Printf("  [%8.3fs] %s: %s\n", at.Seconds(), b, msg)
	}
	mgr := br.Manager()
	var segs []*ab.Segment
	var hosts []*ab.NIC
	received := make([]int, 3)
	for i := 0; i < 3; i++ {
		seg := ab.NewSegment(sim, fmt.Sprintf("lan%d", i+1))
		nic := ab.NewNIC(sim, fmt.Sprintf("h%d", i+1), ab.MAC{2, 0, 0, 0, 0, byte(i + 1)})
		idx := i
		nic.SetRecv(func(*ab.NIC, []byte) { received[idx]++ })
		seg.Attach(nic)
		seg.Attach(br.Port(i))
		segs = append(segs, seg)
		hosts = append(hosts, nic)
	}
	send := func(from, to int) {
		fr := ab.Frame{Dst: hosts[to].MAC, Src: hosts[from].MAC,
			Type: ab.TypeTest, Payload: make([]byte, 100)}
		raw, err := fr.Marshal()
		if err != nil {
			panic(err)
		}
		hosts[from].Send(raw)
	}
	segFrames := func() [3]uint64 {
		return [3]uint64{segs[0].Frames, segs[1].Frames, segs[2].Frames}
	}
	install := func(sw ab.Switchlet) {
		if _, err := mgr.Install(sw); err != nil {
			panic(err)
		}
	}

	fmt.Println("== 1. A bare active bridge forwards nothing (behaviour is code) ==")
	sim.Schedule(sim.Now()+1, func() { send(0, 1) })
	sim.Run(sim.Now() + ab.Time(100*ab.Millisecond))
	fmt.Printf("  h2 received: %d frames (bridge has no switchlet)\n\n", received[1])

	fmt.Println("== 2. Install the dumb switchlet: a programmable buffered repeater ==")
	install(ab.DumbSwitchlet())
	before := segFrames()
	sim.Schedule(sim.Now()+1, func() { send(0, 1) })
	sim.Run(sim.Now() + ab.Time(100*ab.Millisecond))
	after := segFrames()
	fmt.Printf("  h2 received: %d; frames repeated onto lan3 too: %d (floods everywhere)\n\n",
		received[1], after[2]-before[2])

	fmt.Println("== 3. Install the learning switchlet: it replaces the switching function ==")
	install(ab.LearningSwitchlet())
	// h2 talks back so the bridge learns both stations.
	sim.Schedule(sim.Now()+1, func() { send(1, 0) })
	sim.Run(sim.Now() + ab.Time(100*ab.Millisecond))
	before = segFrames()
	sim.Schedule(sim.Now()+1, func() { send(0, 1) })
	sim.Run(sim.Now() + ab.Time(100*ab.Millisecond))
	after = segFrames()
	fmt.Printf("  h2 received: %d; leakage onto lan3 this time: %d (learned!)\n\n",
		received[1], after[2]-before[2])

	fmt.Println("== 4. Install the 802.1D switchlet: a fully functional bridge ==")
	install(ab.SpanningSwitchlet())
	fmt.Println("  ports walk blocking -> listening -> learning -> forwarding (2 x 15 s):")
	loadedAt := sim.Now()
	for _, at := range []ab.Duration{2 * ab.Second, 17 * ab.Second, 32 * ab.Second} {
		sim.Run(loadedAt.Add(at))
		fmt.Printf("  t+%-4v port0 blocked=%v\n", at, br.PortBlocked(0))
	}
	before = segFrames()
	sim.Schedule(sim.Now()+1, func() { send(0, 1) })
	sim.Run(sim.Now() + ab.Time(200*ab.Millisecond))
	after = segFrames()
	fmt.Printf("  traffic flows again after the tree converges: lan2 frames +%d\n\n", after[1]-before[1])

	fmt.Println("== 5. The installed switchlet stack, from the Manager ==")
	for _, inst := range mgr.List() {
		fmt.Printf("  %-16s caps=[%s]\n", inst.Manifest.Ref(),
			strings.Join(inst.Manifest.CapabilityNames(), ","))
	}
	fmt.Printf("\nstats: in=%d delivered=%d sent=%d traps=%d\n",
		br.Stats.FramesIn, br.Stats.FramesDelivered, br.Stats.FramesSent, br.Stats.HandlerTraps)
}
