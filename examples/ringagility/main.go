// Ring agility: the paper's §7.5 function-agility measurement. A
// measurement node with two interfaces and three active bridges chained
// between them; inject one 802.1D BPDU and measure (a) how fast the whole
// chain switches protocols and (b) how long until a ping crosses the
// re-converging spanning tree.
//
// The second half repeats the protocol switch-over through the public SDK
// (pkg/activebridge): the same three-bridge chain, upgraded node by node
// with Manager.Upgrade instead of an in-network control switchlet, and
// timed until data crosses the re-converged tree again.
package main

import (
	"fmt"

	"github.com/switchware/activebridge/internal/experiments"
	ab "github.com/switchware/activebridge/pkg/activebridge"
)

func main() {
	tbl, res, err := experiments.AgilityRing(ab.DefaultCostModel())
	if err != nil {
		panic(err)
	}
	fmt.Println(tbl)
	fmt.Printf("reconfiguration latency %.0f ms is dwarfed by the %.0f s protocol\n",
		float64(res.StartToIEEE)/1e6, float64(res.StartToPing)/1e9)
	fmt.Println("timers built into 802.1D 'to ensure that temporary loops do not occur' —")
	fmt.Println("the active technology is not the bottleneck, exactly the paper's result.")

	fmt.Println()
	fmt.Println("== the same switch-over, driven through the SDK ==")
	sdkChainUpgrade()
}

// sdkChainUpgrade upgrades a 3-bridge chain DEC -> IEEE through each
// node's Manager and measures how long until test traffic crosses the
// re-converging tree.
func sdkChainUpgrade() {
	const nBridges = 3
	g := ab.NewTopology("sdk-agility")
	h1 := g.AddHost("h1")
	h2 := g.AddHost("h2")
	segs := make([]ab.SegmentID, nBridges+1)
	for i := range segs {
		segs[i] = g.AddSegment(fmt.Sprintf("s%d", i))
	}
	brs := make([]ab.BridgeID, nBridges)
	for i := 0; i < nBridges; i++ {
		brs[i] = g.AddBridge(fmt.Sprintf("b%d", i+1), ab.EmptyBridge, 2)
		g.Link(brs[i], segs[i])
		g.Link(brs[i], segs[i+1])
	}
	g.Link(h1, segs[0])
	g.Link(h2, segs[nBridges])
	net, err := g.Build(ab.DefaultCostModel())
	if err != nil {
		panic(err)
	}
	for _, id := range brs {
		mgr := net.Bridge(id).Manager()
		for _, sw := range []ab.Switchlet{ab.LearningSwitchlet(), ab.DECSwitchlet()} {
			if _, err := mgr.Install(sw); err != nil {
				panic(err)
			}
		}
	}
	net.Sim.Run(ab.Time(40 * ab.Second)) // DEC converges

	opts := ab.DefaultUpgradeOptions()
	opts.OldAddr = ab.DECBridgesMAC
	opts.NewAddr = ab.AllBridgesMAC
	start := net.Sim.Now()
	ups := make([]*ab.Upgrade, 0, nBridges)
	net.Sim.Schedule(start+1, func() {
		for _, id := range brs {
			u, err := net.Bridge(id).Manager().Upgrade("Decspan", ab.SpanningSwitchlet(), opts)
			if err != nil {
				panic(err)
			}
			ups = append(ups, u)
		}
	})

	// Probe once per virtual second until a frame crosses the chain.
	host2 := net.Host(h2)
	var crossedAt ab.Time
	for i := 1; i <= 90; i++ {
		net.Sim.Schedule(net.Sim.Now()+1, func() {
			_ = net.Host(h1).SendTest(host2.MAC, make([]byte, 64))
		})
		before := host2.FramesIn
		net.Sim.Run(start + ab.Time(ab.Duration(i)*ab.Second))
		if host2.FramesIn > before {
			crossedAt = net.Sim.Now()
			break
		}
	}
	if crossedAt == 0 {
		fmt.Println("  no data crossed the chain within 90 s — upgrade did not converge")
	} else {
		fmt.Printf("  start to data across the chain: %.1f s (forward-delay bound, as measured)\n",
			(crossedAt - start).Seconds())
	}
	for i, u := range ups {
		fmt.Printf("  b%d: %s -> %s state=%v\n", i+1,
			u.Old().Manifest.Ref(), u.New().Manifest.Ref(), u.State())
	}
}
