// Ring agility: the paper's §7.5 function-agility measurement. A
// measurement node with two interfaces and three active bridges chained
// between them; inject one 802.1D BPDU and measure (a) how fast the whole
// chain switches protocols and (b) how long until a ping crosses the
// re-converging spanning tree.
package main

import (
	"fmt"

	"github.com/switchware/activebridge/internal/experiments"
	"github.com/switchware/activebridge/internal/netsim"
)

func main() {
	tbl, res, err := experiments.AgilityRing(netsim.DefaultCostModel())
	if err != nil {
		panic(err)
	}
	fmt.Println(tbl)
	fmt.Printf("reconfiguration latency %.0f ms is dwarfed by the %.0f s protocol\n",
		float64(res.StartToIEEE)/1e6, float64(res.StartToPing)/1e9)
	fmt.Println("timers built into 802.1D 'to ensure that temporary loops do not occur' —")
	fmt.Println("the active technology is not the bottleneck, exactly the paper's result.")
}
