// Diagnostic switchlet: the paper's §2 motivation that in an active
// network "diagnostic functions can be inserted 'as-needed'". A monitoring
// switchlet is written on the spot, loaded into a bridge that is already
// forwarding production traffic, observes it without disturbing it, reports
// per-station counters through the Func registry — and is then unloaded
// from the namespace.
package main

import (
	"errors"
	"fmt"

	"github.com/switchware/activebridge/internal/netsim"
	"github.com/switchware/activebridge/internal/testbed"
	"github.com/switchware/activebridge/internal/workload"
	ab "github.com/switchware/activebridge/pkg/activebridge"
)

// monitorSrc taps the data path: it records per-source byte counts, then
// delegates to the learning switchlet's handler via Func — a protocol
// booster-style composition (the learning switchlet re-registers its
// handler under a Func name for exactly this purpose here).
const monitorSrc = `
(* Monitor: per-station traffic accounting, inserted as-needed. *)
let bytes = Hashtbl.create 64
let frames = Hashtbl.create 64

let hex2 b =
  String.sub "0123456789abcdef" (lsr b 4) 1 ^
  String.sub "0123456789abcdef" (land b 15) 1

let mac_str m =
  hex2 (String.get m 0) ^ ":" ^ hex2 (String.get m 1) ^ ":" ^
  hex2 (String.get m 2) ^ ":" ^ hex2 (String.get m 3) ^ ":" ^
  hex2 (String.get m 4) ^ ":" ^ hex2 (String.get m 5)

let note pkt =
  let src = mac_str (String.sub pkt 6 6) in
  let b = if Hashtbl.mem bytes src then Hashtbl.find bytes src else 0 in
  let f = if Hashtbl.mem frames src then Hashtbl.find frames src else 0 in
  Hashtbl.add bytes src (b + String.length pkt);
  Hashtbl.add frames src (f + 1)

(* Tap and forward: observe, then do what the learning bridge would do. *)
let handle pkt inport =
  note pkt;
  ignore (Func.call "learning.handle" (string_of_int inport ^ ":" ^ pkt))

let report s =
  let out = ref "" in
  Hashtbl.iter
    (fun k v ->
      out := !out ^ k ^ " frames=" ^ string_of_int v ^
             " bytes=" ^ string_of_int (Hashtbl.find bytes k) ^ "\n")
    frames;
  !out

let _ = Func.register "monitor.report" report
let _ = Bridge.set_handler handle
let _ = Log.log "monitor: diagnostic switchlet inserted"
`

// learningTapSrc re-exposes a learning-style forwarder through Func so the
// monitor can delegate (argument encoding: "<inport>:<frame>").
const learningTapSrc = `
let table = Hashtbl.create 256

let is_group m = (land (String.get m 0) 1) = 1

let flood pkt inport =
  let n = Unixnet.num_ports () in
  let rec go i =
    if i < n then begin
      (if i <> inport then Unixnet.send_pkt_out i pkt);
      go (i + 1)
    end
  in
  go 0

let forward pkt inport =
  let dst = String.sub pkt 0 6 in
  let src = String.sub pkt 6 6 in
  (if not (is_group src) then Hashtbl.add table src inport);
  if is_group dst then flood pkt inport
  else if Hashtbl.mem table dst then begin
    let port = Hashtbl.find table dst in
    if port <> inport then Unixnet.send_pkt_out port pkt
  end
  else flood pkt inport

let handle pkt inport = forward pkt inport

(* Func-callable entry: "<inport>:<frame bytes>" *)
let tap arg =
  let colon = String.get arg 1 = 58 in
  let inport =
    if colon then int_of_string (String.sub arg 0 1)
    else int_of_string (String.sub arg 0 2) in
  let off = if colon then 2 else 3 in
  forward (String.sub arg off (String.length arg - off)) inport;
  ""

let _ = Func.register "learning.handle" tap
let _ = Bridge.set_handler handle
let _ = Log.log "learning (tappable) installed"
`

// tappableSwitchlet is the hand-written forwarder's manifest: a custom
// switchlet authored on the spot still declares what it needs.
func tappableSwitchlet() ab.Switchlet {
	return ab.Switchlet{
		Name:         "Tappable",
		Version:      ab.MustParseVersion("1.0.0"),
		Capabilities: []ab.Capability{ab.CapLog, ab.CapFuncs, ab.CapNet, ab.CapDemux},
		Handlers:     []string{"learning.handle"},
		Source:       learningTapSrc,
	}
}

// monitorSwitchlet is the diagnostic tap's manifest. Note the narrow
// grant: without CapNet the monitor cannot import the network module, so
// it has no direct send access — the only way its frames go anywhere is
// through functions other switchlets chose to register (here,
// "learning.handle"), which is exactly the composition on display. It
// owns the data path while installed, and declares so.
func monitorSwitchlet() ab.Switchlet {
	return ab.Switchlet{
		Name:         "Monitor",
		Version:      ab.MustParseVersion("0.1.0"),
		Capabilities: []ab.Capability{ab.CapLog, ab.CapFuncs, ab.CapDemux},
		Handlers:     []string{"monitor.report"},
		OwnsDataPath: true,
		Source:       monitorSrc,
	}
}

func main() {
	cost := netsim.DefaultCostModel()
	tb := testbed.New(testbed.ActiveBridge, cost)
	mgr := tb.Bridge.Manager()
	// Replace the stock learning switchlet's data path with the tappable
	// variant (handler replacement is the active-network party trick).
	if _, err := mgr.Install(tappableSwitchlet()); err != nil {
		panic(err)
	}
	tb.Bridge.LogSink = func(at netsim.Time, b, msg string) {
		fmt.Printf("[%8.3fs] %s: %s\n", at.Seconds(), b, msg)
	}

	fmt.Println("== production traffic flowing ==")
	tr := workload.NewTtcp(tb.H1, tb.H2, 1024, 256<<10)
	tr.Run(tb.Sim.Now() + netsim.Time(60*netsim.Second))
	fmt.Printf("transfer 1: %.1f Mb/s (no monitor loaded)\n\n", tr.ThroughputMbps())

	fmt.Println("== operator inserts the diagnostic switchlet, live ==")
	if _, err := mgr.Install(monitorSwitchlet()); err != nil {
		panic(err)
	}
	tr2 := workload.NewTtcp(tb.H2, tb.H1, 1024, 256<<10)
	tr2.Run(tb.Sim.Now() + netsim.Time(60*netsim.Second))
	fmt.Printf("transfer 2: %.1f Mb/s (monitor tapping the path)\n\n", tr2.ThroughputMbps())

	fmt.Println("== per-station report, fetched through the Manager ==")
	report, err := mgr.Query("monitor.report", "")
	must(err)
	fmt.Print(report)

	fmt.Println("\n== operator removes the diagnostic switchlet again ==")
	must(mgr.Uninstall("Monitor"))
	if _, err := mgr.Query("monitor.report", ""); errors.Is(err, ab.ErrNoSuchFunc) {
		fmt.Println("monitor.report unregistered; Monitor is out of the namespace")
	}
	// The manifest declared OwnsDataPath, so the uninstall released the
	// monitor's claim on the default handler too: the node forwards
	// nothing until behaviour is installed again — revocation is
	// explicit, never implicit.
	fmt.Printf("default handler after uninstall: %q (drops until new behaviour loads)\n",
		tb.Bridge.DefaultHandlerName())

	fmt.Println("\n(the tap costs interpreter time: the transfer slowed while monitored —")
	fmt.Println(" exactly the active-networks trade the paper quantifies)")
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
