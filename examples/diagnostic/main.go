// Diagnostic switchlet: the paper's §2 motivation that in an active
// network "diagnostic functions can be inserted 'as-needed'". A monitoring
// switchlet is written on the spot, loaded into a bridge that is already
// forwarding production traffic, observes it without disturbing it, reports
// per-station counters through the Func registry — and is then unloaded
// from the namespace.
package main

import (
	"fmt"

	"github.com/switchware/activebridge/internal/netsim"
	"github.com/switchware/activebridge/internal/testbed"
	"github.com/switchware/activebridge/internal/workload"
)

// monitorSrc taps the data path: it records per-source byte counts, then
// delegates to the learning switchlet's handler via Func — a protocol
// booster-style composition (the learning switchlet re-registers its
// handler under a Func name for exactly this purpose here).
const monitorSrc = `
(* Monitor: per-station traffic accounting, inserted as-needed. *)
let bytes = Hashtbl.create 64
let frames = Hashtbl.create 64

let hex2 b =
  String.sub "0123456789abcdef" (lsr b 4) 1 ^
  String.sub "0123456789abcdef" (land b 15) 1

let mac_str m =
  hex2 (String.get m 0) ^ ":" ^ hex2 (String.get m 1) ^ ":" ^
  hex2 (String.get m 2) ^ ":" ^ hex2 (String.get m 3) ^ ":" ^
  hex2 (String.get m 4) ^ ":" ^ hex2 (String.get m 5)

let note pkt =
  let src = mac_str (String.sub pkt 6 6) in
  let b = if Hashtbl.mem bytes src then Hashtbl.find bytes src else 0 in
  let f = if Hashtbl.mem frames src then Hashtbl.find frames src else 0 in
  Hashtbl.add bytes src (b + String.length pkt);
  Hashtbl.add frames src (f + 1)

(* Tap and forward: observe, then do what the learning bridge would do. *)
let handle pkt inport =
  note pkt;
  ignore (Func.call "learning.handle" (string_of_int inport ^ ":" ^ pkt))

let report s =
  let out = ref "" in
  Hashtbl.iter
    (fun k v ->
      out := !out ^ k ^ " frames=" ^ string_of_int v ^
             " bytes=" ^ string_of_int (Hashtbl.find bytes k) ^ "\n")
    frames;
  !out

let _ = Func.register "monitor.report" report
let _ = Bridge.set_handler handle
let _ = Log.log "monitor: diagnostic switchlet inserted"
`

// learningTapSrc re-exposes a learning-style forwarder through Func so the
// monitor can delegate (argument encoding: "<inport>:<frame>").
const learningTapSrc = `
let table = Hashtbl.create 256

let is_group m = (land (String.get m 0) 1) = 1

let flood pkt inport =
  let n = Unixnet.num_ports () in
  let rec go i =
    if i < n then begin
      (if i <> inport then Unixnet.send_pkt_out i pkt);
      go (i + 1)
    end
  in
  go 0

let forward pkt inport =
  let dst = String.sub pkt 0 6 in
  let src = String.sub pkt 6 6 in
  (if not (is_group src) then Hashtbl.add table src inport);
  if is_group dst then flood pkt inport
  else if Hashtbl.mem table dst then begin
    let port = Hashtbl.find table dst in
    if port <> inport then Unixnet.send_pkt_out port pkt
  end
  else flood pkt inport

let handle pkt inport = forward pkt inport

(* Func-callable entry: "<inport>:<frame bytes>" *)
let tap arg =
  let colon = String.get arg 1 = 58 in
  let inport =
    if colon then int_of_string (String.sub arg 0 1)
    else int_of_string (String.sub arg 0 2) in
  let off = if colon then 2 else 3 in
  forward (String.sub arg off (String.length arg - off)) inport;
  ""

let _ = Func.register "learning.handle" tap
let _ = Bridge.set_handler handle
let _ = Log.log "learning (tappable) installed"
`

func main() {
	cost := netsim.DefaultCostModel()
	tb := testbed.New(testbed.ActiveBridge, cost)
	// Replace the stock learning switchlet's data path with the tappable
	// variant (handler replacement is the active-network party trick).
	must(tb.Bridge.CompileAndLoad("Tappable", learningTapSrc))
	tb.Bridge.LogSink = func(at netsim.Time, b, msg string) {
		fmt.Printf("[%8.3fs] %s: %s\n", at.Seconds(), b, msg)
	}

	fmt.Println("== production traffic flowing ==")
	tr := workload.NewTtcp(tb.H1, tb.H2, 1024, 256<<10)
	tr.Run(tb.Sim.Now() + netsim.Time(60*netsim.Second))
	fmt.Printf("transfer 1: %.1f Mb/s (no monitor loaded)\n\n", tr.ThroughputMbps())

	fmt.Println("== operator inserts the diagnostic switchlet, live ==")
	must(tb.Bridge.CompileAndLoad("Monitor", monitorSrc))
	tr2 := workload.NewTtcp(tb.H2, tb.H1, 1024, 256<<10)
	tr2.Run(tb.Sim.Now() + netsim.Time(60*netsim.Second))
	fmt.Printf("transfer 2: %.1f Mb/s (monitor tapping the path)\n\n", tr2.ThroughputMbps())

	fmt.Println("== per-station report, fetched through Func ==")
	fn, ok := tb.Bridge.Funcs.Lookup("monitor.report")
	if !ok {
		panic("monitor.report not registered")
	}
	v, err := tb.Bridge.Machine.Invoke(fn, "")
	must(err)
	fmt.Print(v.(string))

	fmt.Println("\n(the tap costs interpreter time: the transfer slowed while monitored —")
	fmt.Println(" exactly the active-networks trade the paper quantifies)")
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
