module github.com/switchware/activebridge

go 1.22
