// Package activebridge's root benchmark harness regenerates every table
// and figure of the paper's evaluation. Run:
//
//	go test -bench=. -benchmem
//
// Each benchmark executes its experiment once per iteration in virtual
// time (results are deterministic and machine-independent) and reports the
// headline numbers via b.ReportMetric; the full tables are printed once
// per benchmark. cmd/abbench prints all tables without the benchmark
// scaffolding.
package activebridge_test

import (
	"fmt"
	"sync"
	"testing"

	"github.com/switchware/activebridge/internal/experiments"
	"github.com/switchware/activebridge/internal/netsim"
	"github.com/switchware/activebridge/internal/testbed"
)

var printOnce sync.Map

func printTable(b *testing.B, key, s string) {
	if _, dup := printOnce.LoadOrStore(key, true); !dup {
		fmt.Println(s)
	}
	_ = b
}

// BenchmarkFig9PingLatency regenerates Figure 9 and reports the 64-byte
// RTT through the active bridge in milliseconds.
func BenchmarkFig9PingLatency(b *testing.B) {
	b.ReportAllocs()
	cost := netsim.DefaultCostModel()
	var rtt netsim.Duration
	for i := 0; i < b.N; i++ {
		tb := testbed.New(testbed.ActiveBridge, cost)
		tb.Warm()
		rtt = tb.PingRTT(64, 10)
	}
	printTable(b, "fig9", experiments.Fig9PingLatency(cost).String())
	b.ReportMetric(float64(rtt)/1e6, "ms-rtt-64B")
}

// BenchmarkFig10TtcpThroughput regenerates Figure 10 and reports the
// active bridge's 8 KB-write throughput (paper: 16 Mb/s).
func BenchmarkFig10TtcpThroughput(b *testing.B) {
	b.ReportAllocs()
	cost := netsim.DefaultCostModel()
	var mbps float64
	for i := 0; i < b.N; i++ {
		tb := testbed.New(testbed.ActiveBridge, cost)
		tb.Warm()
		mbps = tb.TtcpRun(8192, 4<<20).ThroughputMbps()
	}
	printTable(b, "fig10", experiments.Fig10TtcpThroughput(cost).String())
	b.ReportMetric(mbps, "Mbps")
}

// BenchmarkFrameRates regenerates the §7.3 frame-rate series and reports
// frames/s at 1024-byte frames (paper: ~1790).
func BenchmarkFrameRates(b *testing.B) {
	b.ReportAllocs()
	cost := netsim.DefaultCostModel()
	var fps float64
	for i := 0; i < b.N; i++ {
		tb := testbed.New(testbed.ActiveBridge, cost)
		tb.Warm()
		fps = tb.TtcpRun(1024, 2<<20).FramesPerSecond()
	}
	printTable(b, "framerates", experiments.FrameRates(cost).String())
	b.ReportMetric(fps, "frames/s-1024B")
}

// BenchmarkLatencyDecomposition regenerates the Figure 5 / §7.2 per-stage
// cost decomposition and reports the switchlet execution share (paper:
// ~0.34 ms of Caml per frame on the ping path).
func BenchmarkLatencyDecomposition(b *testing.B) {
	b.ReportAllocs()
	cost := netsim.DefaultCostModel()
	var vmMs float64
	for i := 0; i < b.N; i++ {
		tb := testbed.New(testbed.ActiveBridge, cost)
		tb.Warm()
		tb.Bridge.TracePath = true
		tb.Sim.Schedule(tb.Sim.Now()+1, func() { _ = tb.H1.SendTest(tb.H2.MAC, make([]byte, 1024)) })
		tb.Sim.Run(tb.Sim.Now() + netsim.Time(100*netsim.Millisecond))
		vmMs = float64(tb.Bridge.LastPath.Exec) / 1e6
	}
	printTable(b, "decomp", experiments.LatencyDecomposition(cost).String())
	b.ReportMetric(vmMs, "ms-vm-per-frame")
}

// BenchmarkPathDecomposition is the §6/Figure 5 seven-step path: identical
// measurement to the latency decomposition but reported as total node
// transit time.
func BenchmarkPathDecomposition(b *testing.B) {
	cost := netsim.DefaultCostModel()
	var total netsim.Duration
	for i := 0; i < b.N; i++ {
		tb := testbed.New(testbed.ActiveBridge, cost)
		tb.Warm()
		tb.Bridge.TracePath = true
		tb.Sim.Schedule(tb.Sim.Now()+1, func() { _ = tb.H1.SendTest(tb.H2.MAC, make([]byte, 1024)) })
		tb.Sim.Run(tb.Sim.Now() + netsim.Time(100*netsim.Millisecond))
		p := tb.Bridge.LastPath
		total = p.KernelRecv + p.Exec + p.KernelSend
	}
	b.ReportMetric(float64(total)/1e6, "ms-node-transit")
}

// BenchmarkTable1ProtocolTransition regenerates Table 1 (the on-the-fly
// DEC -> IEEE upgrade) and reports the post-injection time until every
// bridge runs the new protocol.
func BenchmarkTable1ProtocolTransition(b *testing.B) {
	cost := netsim.DefaultCostModel()
	for i := 0; i < b.N; i++ {
		tbl := experiments.Table1Transition(cost)
		if len(tbl.Rows) == 0 {
			b.Fatal("transition experiment produced no rows")
		}
	}
	printTable(b, "table1", experiments.Table1Transition(cost).String())
	printTable(b, "table1fb", experiments.Table1Fallback(cost).String())
}

// BenchmarkAgilityRing regenerates the §7.5 agility measurement and
// reports both headline times (paper: 0.056 s and 30.1 s).
func BenchmarkAgilityRing(b *testing.B) {
	cost := netsim.DefaultCostModel()
	var res experiments.AgilityResult
	for i := 0; i < b.N; i++ {
		_, r, err := experiments.AgilityRing(cost)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	tbl, _, err := experiments.AgilityRing(cost)
	if err != nil {
		b.Fatal(err)
	}
	printTable(b, "agility", tbl.String())
	b.ReportMetric(res.StartToIEEE.Seconds(), "s-start-to-IEEE")
	b.ReportMetric(res.StartToPing.Seconds(), "s-start-to-ping")
}

// BenchmarkNetworkLoad regenerates the §5.2 network switchlet loading
// experiment.
func BenchmarkNetworkLoad(b *testing.B) {
	cost := netsim.DefaultCostModel()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.NetworkLoad(cost); err != nil {
			b.Fatal(err)
		}
	}
	tbl, err := experiments.NetworkLoad(cost)
	if err != nil {
		b.Fatal(err)
	}
	printTable(b, "netload", tbl.String())
}

// BenchmarkScalability regenerates §7.4: aggregate throughput vs number
// of attached LAN pairs, saturating at the interpreter's service rate.
func BenchmarkScalability(b *testing.B) {
	cost := netsim.DefaultCostModel()
	for i := 0; i < b.N; i++ {
		tbl := experiments.Scalability(cost)
		if len(tbl.Rows) != 4 {
			b.Fatal("scalability rows")
		}
	}
	printTable(b, "scalability", experiments.Scalability(cost).String())
}

// BenchmarkIncrementalDeployment regenerates the §5.2 hop-by-hop
// switchlet deployment experiment.
func BenchmarkIncrementalDeployment(b *testing.B) {
	cost := netsim.DefaultCostModel()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.IncrementalDeployment(cost); err != nil {
			b.Fatal(err)
		}
	}
	tbl, err := experiments.IncrementalDeployment(cost)
	if err != nil {
		b.Fatal(err)
	}
	printTable(b, "deployment", tbl.String())
}

// BenchmarkAblationNativeVsBytecode quantifies the §7.3 native-compilation
// conjecture.
func BenchmarkAblationNativeVsBytecode(b *testing.B) {
	cost := netsim.DefaultCostModel()
	var native, bytecode float64
	for i := 0; i < b.N; i++ {
		tbN := testbed.New(testbed.NativeBridge, cost)
		tbN.Warm()
		native = tbN.TtcpRun(8192, 2<<20).ThroughputMbps()
		tbA := testbed.New(testbed.ActiveBridge, cost)
		tbA.Warm()
		bytecode = tbA.TtcpRun(8192, 2<<20).ThroughputMbps()
	}
	printTable(b, "abl-native", experiments.AblationNativeVsBytecode(cost).String())
	b.ReportMetric(native/bytecode, "native/bytecode-speedup")
}

// BenchmarkAblationLearning measures the flood suppression the learning
// switchlet buys.
func BenchmarkAblationLearning(b *testing.B) {
	cost := netsim.DefaultCostModel()
	for i := 0; i < b.N; i++ {
		tbl := experiments.AblationLearning(cost)
		if len(tbl.Rows) != 2 {
			b.Fatal("learning ablation incomplete")
		}
	}
	printTable(b, "abl-learning", experiments.AblationLearning(cost).String())
}

// BenchmarkAblationKernelCost sweeps the kernel-path cost (§9's U-Net
// direction).
func BenchmarkAblationKernelCost(b *testing.B) {
	cost := netsim.DefaultCostModel()
	for i := 0; i < b.N; i++ {
		_ = experiments.AblationKernelCost(cost)
	}
	printTable(b, "abl-kernel", experiments.AblationKernelCost(cost).String())
}

// BenchmarkAblationGCPressure sweeps collector pressure (§7.3's GC
// hypothesis).
func BenchmarkAblationGCPressure(b *testing.B) {
	cost := netsim.DefaultCostModel()
	for i := 0; i < b.N; i++ {
		_ = experiments.AblationGCPressure(cost)
	}
	printTable(b, "abl-gc", experiments.AblationGCPressure(cost).String())
}
