package activebridge_test

import (
	"testing"

	"github.com/switchware/activebridge/internal/netsim"
	"github.com/switchware/activebridge/internal/testbed"
)

// frameRatesRun executes the experiment underlying BenchmarkFrameRates at
// the 1024-byte point and returns its full determinism fingerprint plus
// the two headline metrics.
func frameRatesRun() (testbed.Fingerprint, float64, float64) {
	cost := netsim.DefaultCostModel()
	tb := testbed.New(testbed.ActiveBridge, cost)
	tb.Warm()
	tr := tb.TtcpRun(1024, 2<<20)
	return tb.Fingerprint(), tr.FramesPerSecond(), tr.ThroughputMbps()
}

// TestFrameRatesDeterministic runs the experiment twice in one process:
// every virtual-time output, event count and interpreter counter must be
// identical. Any nondeterminism in the event queue, the VM or the frame
// pipeline shows up here first.
func TestFrameRatesDeterministic(t *testing.T) {
	fp1, fps1, mbps1 := frameRatesRun()
	fp2, fps2, mbps2 := frameRatesRun()
	if fp1 != fp2 {
		t.Fatalf("fingerprints differ across runs:\n run1 %+v\n run2 %+v", fp1, fp2)
	}
	if fps1 != fps2 || mbps1 != mbps2 {
		t.Fatalf("metrics differ across runs: fps %v vs %v, mbps %v vs %v", fps1, fps2, mbps1, mbps2)
	}
}

// TestFrameRatesGolden pins the experiment to golden values captured from
// the pre-optimization (container/heap + allocating interpreter) build.
// The zero-allocation fast path must keep every virtual-time result
// byte-identical; a deliberate semantic change to the cost model or the
// switchlets must update these values with justification.
func TestFrameRatesGolden(t *testing.T) {
	fp, fps, mbps := frameRatesRun()
	want := testbed.Fingerprint{
		Now:        600100000000,
		Steps:      172264,
		AllocBytes: 156120,
		FramesIn:   2050,
		FramesSent: 2050,
		VMTimeNs:   758353400,
		KernelNs:   580731520,
	}
	if fp != want {
		t.Fatalf("fingerprint deviates from pre-optimization golden:\n got %+v\nwant %+v", fp, want)
	}
	const wantFps, wantMbps = 1530.287330, 12.536114
	if !close6(fps, wantFps) || !close6(mbps, wantMbps) {
		t.Fatalf("metrics deviate from golden: fps %.6f (want %.6f), mbps %.6f (want %.6f)", fps, wantFps, mbps, wantMbps)
	}
}

// TestFig10Golden pins the Figure 10 configuration (8 KB writes) the same
// way.
func TestFig10Golden(t *testing.T) {
	cost := netsim.DefaultCostModel()
	tb := testbed.New(testbed.ActiveBridge, cost)
	tb.Warm()
	tr := tb.TtcpRun(8192, 4<<20)
	if got := tb.Bridge.Machine.Steps; got != 241564 {
		t.Fatalf("Fig10 Machine.Steps = %d, want 241564", got)
	}
	if mbps := tr.ThroughputMbps(); !close6(mbps, 16.968022) {
		t.Fatalf("Fig10 throughput = %.6f Mbps, want 16.968022", mbps)
	}
}

// close6 compares to six decimal places, the precision the goldens were
// recorded at.
func close6(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 5e-7
}
