package activebridge_test

import (
	"fmt"

	"github.com/switchware/activebridge/pkg/activebridge"
)

// Example builds the paper's Figure 7 network (two LANs joined by an
// Active Bridge) from scratch, installs the learning switchlet through a
// versioned, capability-scoped manifest, and exercises the data path.
func Example() {
	sim := activebridge.NewSim()
	cost := activebridge.DefaultCostModel()

	// One bridge between two LANs, with a station on each.
	br := activebridge.NewBridge(sim, "br0", 1, 2, cost)
	lan1 := activebridge.NewSegment(sim, "lan1")
	lan2 := activebridge.NewSegment(sim, "lan2")
	h1 := activebridge.NewNIC(sim, "h1", activebridge.MAC{2, 0, 0, 0, 0, 1})
	h2 := activebridge.NewNIC(sim, "h2", activebridge.MAC{2, 0, 0, 0, 0, 2})
	received := 0
	h2.SetRecv(func(*activebridge.NIC, []byte) { received++ })
	lan1.Attach(h1)
	lan1.Attach(br.Port(0))
	lan2.Attach(h2)
	lan2.Attach(br.Port(1))

	send := func(from, to *activebridge.NIC) {
		fr := activebridge.Frame{Dst: to.MAC, Src: from.MAC, Type: activebridge.TypeTest,
			Payload: make([]byte, 64)}
		raw, err := fr.Marshal()
		if err != nil {
			panic(err)
		}
		sim.Schedule(sim.Now()+1, func() { from.Send(raw) })
		sim.Run(sim.Now() + activebridge.Time(50*activebridge.Millisecond))
	}

	// A bare bridge forwards nothing: behaviour is code.
	send(h1, h2)
	fmt.Printf("before install: h2 received %d\n", received)

	// Install the self-learning switchlet from its manifest. The manifest
	// declares the capabilities the code may use; install-time linking
	// rejects anything beyond the grant.
	sw := activebridge.LearningSwitchlet()
	mgr := br.Manager()
	if _, err := mgr.Install(sw); err != nil {
		panic(err)
	}
	fmt.Printf("installed %s\n", sw.Ref())

	send(h2, h1) // teach the bridge where h2 lives
	send(h1, h2)
	fmt.Printf("after install: h2 received %d\n", received)

	// The switchlet's exported handlers answer through the Manager.
	size, err := mgr.Query("learning.size", "")
	if err != nil {
		panic(err)
	}
	fmt.Printf("stations learned: %s\n", size)

	// Output:
	// before install: h2 received 0
	// installed Learning@1.0.0
	// after install: h2 received 1
	// stations learned: 2
}
