package activebridge_test

import (
	"strings"
	"testing"

	ab "github.com/switchware/activebridge/pkg/activebridge"
)

// transitionNet is the §5.4 testbed built entirely through the public
// API: h1 -- lan1 -- b1 -- lan2 -- b2 -- lan3 -- h2, with each bridge
// running learning + the DEC spanning tree, installed from manifests.
// The IEEE protocol is NOT pre-loaded and no control switchlet exists:
// the transition is driven by Manager.Upgrade instead.
type transitionNet struct {
	net    *ab.Net
	b1, b2 *ab.Bridge
	h1, h2 ab.HostID
	logs   []string
}

func buildTransitionNet(t *testing.T) *transitionNet {
	t.Helper()
	tn := &transitionNet{}
	sink := func(_ ab.Time, br, msg string) {
		tn.logs = append(tn.logs, br+": "+msg)
	}
	g := ab.NewTopology("sdk-transition")
	tn.h1 = g.AddHost("h1")
	tn.h2 = g.AddHost("h2")
	b1 := g.AddBridge("b1", ab.EmptyBridge, 2, ab.WithLogSink(sink))
	b2 := g.AddBridge("b2", ab.EmptyBridge, 2, ab.WithLogSink(sink))
	lan1, lan2, lan3 := g.AddSegment("lan1"), g.AddSegment("lan2"), g.AddSegment("lan3")
	g.Link(tn.h1, lan1)
	g.Link(b1, lan1)
	g.Link(b1, lan2)
	g.Link(b2, lan2)
	g.Link(tn.h2, lan3)
	g.Link(b2, lan3)
	net, err := g.Build(ab.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	tn.net = net
	tn.b1, tn.b2 = net.Bridge(b1), net.Bridge(b2)

	// Paper loading order, through manifests: learning, then the old
	// protocol (which starts immediately).
	for _, b := range []*ab.Bridge{tn.b1, tn.b2} {
		if _, err := b.Manager().Install(ab.LearningSwitchlet()); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Manager().Install(ab.DECSwitchlet()); err != nil {
			t.Fatal(err)
		}
	}
	return tn
}

func (tn *transitionNet) query(t *testing.T, b *ab.Bridge, fn string) string {
	t.Helper()
	v, err := b.Manager().Query(fn, "")
	if err != nil {
		t.Fatalf("%s %s: %v", b.Name, fn, err)
	}
	return v
}

// dataFlows sends one test frame h1 -> h2 and reports whether it arrived.
func (tn *transitionNet) dataFlows(t *testing.T) bool {
	t.Helper()
	sim := tn.net.Sim
	h2 := tn.net.Host(tn.h2)
	before := h2.FramesIn
	sim.Schedule(sim.Now()+1, func() {
		_ = tn.net.Host(tn.h1).SendTest(h2.MAC, make([]byte, 64))
	})
	sim.Run(sim.Now() + ab.Time(2*ab.Second))
	return h2.FramesIn > before
}

// upgradeOpts are the paper's windows with both protocol addresses
// guarded.
func upgradeOpts() ab.UpgradeOptions {
	opts := ab.DefaultUpgradeOptions()
	opts.OldAddr = ab.DECBridgesMAC
	opts.NewAddr = ab.AllBridgesMAC
	return opts
}

// TestUpgradeReproducesDECToIEEETransition drives the paper's §5.4
// protocol transition purely through the public API: DEC converges, the
// operator upgrades both nodes to IEEE 802.1D in one virtual instant,
// and validation at 60 s confirms the new protocol reproduced the old
// tree — the same convergence outcome as the in-network control
// switchlet (internal/switchlets/transition_test.go).
func TestUpgradeReproducesDECToIEEETransition(t *testing.T) {
	tn := buildTransitionNet(t)
	sim := tn.net.Sim

	// DEC converges; b1 (lower id) is root.
	sim.Run(ab.Time(40 * ab.Second))
	for _, b := range []*ab.Bridge{tn.b1, tn.b2} {
		if got := tn.query(t, b, "dec.running"); got != "yes" {
			t.Fatalf("%s: dec.running = %s", b.Name, got)
		}
	}
	decTree1 := tn.query(t, tn.b1, "dec.tree")
	if !strings.Contains(decTree1, "rp=-1") {
		t.Fatalf("b1 should be DEC root: %s", decTree1)
	}
	if !tn.dataFlows(t) {
		t.Fatal("no data flow under converged DEC")
	}

	// The upgrade: both nodes at one virtual instant, old and new
	// co-resident, atomic handoff, validation armed.
	var u1, u2 *ab.Upgrade
	at := sim.Now()
	sim.Schedule(at+1, func() {
		var err error
		u1, err = tn.b1.Manager().Upgrade("Decspan", ab.SpanningSwitchlet(), upgradeOpts())
		if err != nil {
			t.Errorf("b1 upgrade: %v", err)
			return
		}
		u2, err = tn.b2.Manager().Upgrade("Decspan", ab.SpanningSwitchlet(), upgradeOpts())
		if err != nil {
			t.Errorf("b2 upgrade: %v", err)
		}
	})
	sim.Run(at + ab.Time(2*ab.Second))
	if u1 == nil || u2 == nil {
		t.Fatal("upgrades not started")
	}

	// Handoff already happened: DEC suspended, IEEE running, both still
	// validating.
	for i, b := range []*ab.Bridge{tn.b1, tn.b2} {
		u := []*ab.Upgrade{u1, u2}[i]
		if got := tn.query(t, b, "dec.running"); got != "no" {
			t.Errorf("%s: dec.running = %s after handoff", b.Name, got)
		}
		if got := tn.query(t, b, "ieee.running"); got != "yes" {
			t.Errorf("%s: ieee.running = %s after handoff", b.Name, got)
		}
		if u.State() != ab.UpgradeValidating {
			t.Errorf("%s: state = %v", b.Name, u.State())
		}
		if u.Captured == "" {
			t.Errorf("%s: no captured old state", b.Name)
		}
	}

	// Past the validation point: committed, and the new protocol's tree
	// is exactly the captured DEC tree.
	sim.Run(at + ab.Time(70*ab.Second))
	for i, b := range []*ab.Bridge{tn.b1, tn.b2} {
		u := []*ab.Upgrade{u1, u2}[i]
		if u.State() != ab.UpgradeCommitted {
			t.Fatalf("%s: state = %v (reason %q), want committed", b.Name, u.State(), u.Reason)
		}
		ieee := tn.query(t, b, "ieee.tree")
		if ieee != u.Captured {
			t.Errorf("%s trees differ:\nieee: %s\ndec : %s", b.Name, ieee, u.Captured)
		}
	}
	if !strings.Contains(tn.query(t, tn.b1, "ieee.tree"), "rp=-1") {
		t.Error("b1 lost the root role across the transition")
	}

	// The data plane works again end to end.
	if !tn.dataFlows(t) {
		t.Error("data traffic does not flow after committed upgrade")
	}

	// The narrative is in the logs.
	all := strings.Join(tn.logs, "\n")
	for _, want := range []string{
		"manager: upgrading Decspan@1.0.0 -> Spanning@2.0.0",
		"dec: spanning tree stopped",
		"ieee: spanning tree started",
		"manager: suppression period over",
		"manager: upgrade to Spanning@2.0.0 committed",
	} {
		if !strings.Contains(all, want) {
			t.Errorf("log missing %q\nlogs:\n%s", want, all)
		}
	}
}

// TestUpgradeRollsBackOnBuggySwitchlet installs the deliberately broken
// 802.1D implementation through the public API: its spanning tree
// differs from the captured DEC one, validation fails, and both nodes
// return to the old protocol automatically.
func TestUpgradeRollsBackOnBuggySwitchlet(t *testing.T) {
	tn := buildTransitionNet(t)
	sim := tn.net.Sim
	sim.Run(ab.Time(40 * ab.Second))

	var u1, u2 *ab.Upgrade
	at := sim.Now()
	sim.Schedule(at+1, func() {
		var err error
		u1, err = tn.b1.Manager().Upgrade("Decspan", ab.BuggySpanningSwitchlet(), upgradeOpts())
		if err != nil {
			t.Errorf("b1 upgrade: %v", err)
			return
		}
		u2, err = tn.b2.Manager().Upgrade("Decspan", ab.BuggySpanningSwitchlet(), upgradeOpts())
		if err != nil {
			t.Errorf("b2 upgrade: %v", err)
		}
	})
	sim.Run(at + ab.Time(90*ab.Second))
	if u1 == nil || u2 == nil {
		t.Fatal("upgrades not started")
	}

	for i, b := range []*ab.Bridge{tn.b1, tn.b2} {
		u := []*ab.Upgrade{u1, u2}[i]
		if u.State() != ab.UpgradeRolledBack {
			t.Fatalf("%s: state = %v, want rolled-back", b.Name, u.State())
		}
		if !strings.Contains(u.Reason, "mismatch") {
			t.Errorf("%s: reason = %q", b.Name, u.Reason)
		}
		if got := tn.query(t, b, "dec.running"); got != "yes" {
			t.Errorf("%s: dec.running = %s after rollback", b.Name, got)
		}
		if got := tn.query(t, b, "ieee.running"); got != "no" {
			t.Errorf("%s: ieee.running = %s after rollback", b.Name, got)
		}
	}

	// The restarted old protocol carries traffic again.
	sim.Run(sim.Now() + ab.Time(35*ab.Second)) // DEC re-converges
	if !tn.dataFlows(t) {
		t.Error("data traffic does not flow after rollback to DEC")
	}
}

// TestUpgradeRollsBackOnTrap exercises the immediate failure path: the
// replacement switchlet traps while starting, and the node restores the
// old protocol in the same virtual instant.
func TestUpgradeRollsBackOnTrap(t *testing.T) {
	tn := buildTransitionNet(t)
	sim := tn.net.Sim
	sim.Run(ab.Time(40 * ab.Second))

	crashy := ab.Switchlet{
		Name:         "Crashy",
		Version:      ab.MustParseVersion("0.0.1"),
		Capabilities: []ab.Capability{ab.CapFuncs},
		Lifecycle: ab.Lifecycle{
			Start: "crashy.start", Stop: "crashy.stop",
			Probe: "crashy.probe", Running: "crashy.running",
		},
		Source: `
let _ = Func.register "crashy.start" (fun s -> raise "refuses to start")
let _ = Func.register "crashy.stop" (fun s -> "ok")
let _ = Func.register "crashy.probe" (fun s -> "nothing")
let _ = Func.register "crashy.running" (fun s -> "no")`,
	}

	var u *ab.Upgrade
	var uerr error
	at := sim.Now()
	sim.Schedule(at+1, func() {
		u, uerr = tn.b1.Manager().Upgrade("Decspan", crashy, upgradeOpts())
	})
	sim.Run(at + ab.Time(2*ab.Second))

	if uerr == nil {
		t.Fatal("trapping start must surface an error")
	}
	if !strings.Contains(uerr.Error(), "rolled back") {
		t.Errorf("err = %v", uerr)
	}
	if u == nil || u.State() != ab.UpgradeRolledBack {
		t.Fatalf("upgrade record = %+v", u)
	}
	// The old protocol never stopped being the node's behaviour for more
	// than the failed instant: it is running again.
	if got := tn.query(t, tn.b1, "dec.running"); got != "yes" {
		t.Errorf("dec.running = %s after trap rollback", got)
	}
	sim.Run(sim.Now() + ab.Time(35*ab.Second))
	if !tn.dataFlows(t) {
		t.Error("data traffic does not flow after trap rollback")
	}
}

// TestManualRollbackAfterCommit is the operator's undo: a committed
// upgrade can still be reverted through the same API.
func TestManualRollbackAfterCommit(t *testing.T) {
	tn := buildTransitionNet(t)
	sim := tn.net.Sim
	sim.Run(ab.Time(40 * ab.Second))
	var u1, u2 *ab.Upgrade
	at := sim.Now()
	sim.Schedule(at+1, func() {
		var err error
		u1, err = tn.b1.Manager().Upgrade("Decspan", ab.SpanningSwitchlet(), upgradeOpts())
		if err != nil {
			t.Errorf("b1 upgrade: %v", err)
			return
		}
		u2, err = tn.b2.Manager().Upgrade("Decspan", ab.SpanningSwitchlet(), upgradeOpts())
		if err != nil {
			t.Errorf("b2 upgrade: %v", err)
		}
	})
	sim.Run(at + ab.Time(70*ab.Second))
	if u1 == nil || u2 == nil || u1.State() != ab.UpgradeCommitted || u2.State() != ab.UpgradeCommitted {
		t.Fatalf("upgrades not committed: %v / %v", u1, u2)
	}
	// The operator reverts the whole network, both nodes in one instant.
	sim.Schedule(sim.Now()+1, func() {
		if err := tn.b1.Manager().Rollback("operator decision"); err != nil {
			t.Errorf("b1 rollback: %v", err)
		}
		if err := tn.b2.Manager().Rollback("operator decision"); err != nil {
			t.Errorf("b2 rollback: %v", err)
		}
	})
	sim.Run(sim.Now() + ab.Time(2*ab.Second))
	for i, b := range []*ab.Bridge{tn.b1, tn.b2} {
		u := []*ab.Upgrade{u1, u2}[i]
		if u.State() != ab.UpgradeRolledBack || u.Reason != "operator decision" {
			t.Fatalf("%s: state = %v reason = %q", b.Name, u.State(), u.Reason)
		}
		if got := tn.query(t, b, "dec.running"); got != "yes" {
			t.Errorf("%s: dec.running = %s after manual rollback", b.Name, got)
		}
	}
	sim.Run(sim.Now() + ab.Time(35*ab.Second))
	if !tn.dataFlows(t) {
		t.Error("data traffic does not flow after network-wide manual rollback")
	}
}
