package activebridge

import (
	"github.com/switchware/activebridge/internal/bridge"
	"github.com/switchware/activebridge/internal/ethernet"
	"github.com/switchware/activebridge/internal/netsim"
	"github.com/switchware/activebridge/internal/workload"
)

// --- simulation substrate ---------------------------------------------------

// Sim is one deterministic discrete-event simulation: a virtual clock
// plus an event queue. Every network element belongs to exactly one Sim,
// and a Sim is single-threaded by construction.
type Sim = netsim.Sim

// NewSim creates an empty simulation at virtual time zero.
func NewSim() *Sim { return netsim.New() }

// Time is an absolute virtual instant in nanoseconds.
type Time = netsim.Time

// Duration is a span of virtual time (an alias of time.Duration).
type Duration = netsim.Duration

// Common virtual-time units.
const (
	// Microsecond is one virtual microsecond.
	Microsecond = netsim.Microsecond
	// Millisecond is one virtual millisecond.
	Millisecond = netsim.Millisecond
	// Second is one virtual second.
	Second = netsim.Second
)

// CostModel prices the bridge's work in virtual time: kernel crossings,
// interpreter steps, allocation, native dispatch (paper Figure 5).
type CostModel = netsim.CostModel

// DefaultCostModel returns the calibrated cost model used by every
// reproduction experiment.
func DefaultCostModel() CostModel { return netsim.DefaultCostModel() }

// Segment is a shared 100 Mb/s LAN segment frames broadcast across.
type Segment = netsim.Segment

// NewSegment creates a segment in the simulation.
func NewSegment(sim *Sim, name string) *Segment { return netsim.NewSegment(sim, name) }

// NIC is one network interface: attachable to a segment, with a receive
// callback — the building block for taps and injectors.
type NIC = netsim.NIC

// NewNIC creates an unattached interface with the given MAC address.
func NewNIC(sim *Sim, name string, mac MAC) *NIC { return netsim.NewNIC(sim, name, mac) }

// MAC is a 6-byte Ethernet address.
type MAC = ethernet.MAC

// Frame is a parsed Ethernet frame (dst, src, EtherType, payload).
type Frame = ethernet.Frame

// BroadcastMAC is the all-ones broadcast address.
var BroadcastMAC = ethernet.Broadcast

// TypeTest is the EtherType the test traffic generators use.
const TypeTest = ethernet.TypeTest

// Host is a measurement endpoint with the minimal protocol stack the
// paper's testbed hosts run: ARP, IPv4, UDP, ICMP echo and the test
// traffic generators.
type Host = workload.Host

// --- the bridge itself ------------------------------------------------------

// Bridge is one active network element: a node whose forwarding
// behaviour is supplied entirely by installed switchlets. A bridge with
// no switchlets installed forwards nothing — behaviour is code, and the
// code is loaded.
type Bridge = bridge.Bridge

// NewBridge creates a bridge with numPorts ports in the simulation. The
// id byte determines the bridge identity MAC (and so its spanning-tree
// priority order).
func NewBridge(sim *Sim, name string, id byte, numPorts int, cost CostModel) *Bridge {
	return bridge.New(sim, name, id, numPorts, cost)
}

// IdentityMAC derives the bridge identity address from the id byte, the
// same derivation NewBridge uses.
func IdentityMAC(id byte) MAC { return bridge.IdentityMAC(id) }

// FrameHandler is a registered packet processor: a switchlet function
// (VM) or native Go code, registered under a name for logs and stats.
type FrameHandler = bridge.FrameHandler

// Stats aggregates one bridge's observable behaviour: frames in,
// delivered, sent, suppressed, dropped, handler traps, and accumulated
// VM/kernel virtual time.
type Stats = bridge.Stats
