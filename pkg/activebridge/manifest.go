package activebridge

import (
	"github.com/switchware/activebridge/internal/env"
)

// Switchlet is a switchlet manifest: one release of loadable bridge
// behaviour, described by name, semantic version, required capabilities,
// exported handlers/timers, lifecycle entry points, and its code (swl
// source or a precompiled object). Managers install manifests, never raw
// source strings, so the capability grant is enforced on every load.
type Switchlet = env.Manifest

// Capability names one power of the bridge runtime a switchlet may hold;
// a manifest's capability list is checked against its code's imports at
// install time.
type Capability = env.Capability

// The capability set. Each grants one environment module group.
const (
	// CapLog grants logging through the host-controlled sink.
	CapLog = env.CapLog
	// CapClock grants virtual-time reads (and nothing else of Unix).
	CapClock = env.CapClock
	// CapFuncs grants the Func registry: registering named functions and
	// calling other switchlets'.
	CapFuncs = env.CapFuncs
	// CapNet grants frame output, port state control and the bridge
	// identity.
	CapNet = env.CapNet
	// CapDemux grants the demultiplexer and timer registration points:
	// default handler, destination-MAC bindings, timers.
	CapDemux = env.CapDemux
	// CapThreads grants cooperative spawn/yield and the assertion mutex.
	CapThreads = env.CapThreads
)

// AllCapabilities returns every defined capability — the grant for fully
// trusted code.
func AllCapabilities() []Capability { return env.AllCapabilities() }

// CapabilityError is an install-time rejection naming each environment
// module the code imports without a grant.
type CapabilityError = env.CapabilityError

// Version is a switchlet's semantic version.
type Version = env.Version

// ParseVersion parses "major.minor.patch".
func ParseVersion(s string) (Version, error) { return env.ParseVersion(s) }

// MustParseVersion is ParseVersion for literals; it panics on malformed
// input.
func MustParseVersion(s string) Version { return env.MustParseVersion(s) }

// Lifecycle names a switchlet's start/stop/probe/running entry points in
// the Func registry; a complete lifecycle is what makes a switchlet
// upgrade-capable.
type Lifecycle = env.Lifecycle
