package activebridge

import (
	"io"

	"github.com/switchware/activebridge/internal/tracing"
)

// Causal tracing. The tracing plane records a virtual-time event per
// NIC transmit, wire transit, shard crossing, bridge demux decision, VM
// handler execution (with tier and deopt detail) and forward/drop
// verdict, all stitched by a trace ID minted at the originating NIC.
// Like the metrics plane it observes without perturbing: virtual-time
// outputs are byte-identical with tracing on or off, at any shard
// count, and the merged transcript itself is deterministic.
//
// The minimal embedding mirrors metrics:
//
//	activebridge.EnableTracing()
//	net := topology.MustBuild(cost) // auto-traced
//	... run ...
//	activebridge.WriteTrace(f)      // Chrome/Perfetto JSON
//
// net.Tracer() returns the net's tracer for programmatic access to the
// transcript and any flight-recorder dumps (written automatically on VM
// traps, switchlet load rejections, manager rollbacks, crashes and
// engine invariant violations).

// Tracer is one net's tracing plane.
type Tracer = tracing.Tracer

// TraceConfig selects the trace seed, sampling probability, flight-ring
// size and transcript cap. The zero value means full sampling with
// default sizes.
type TraceConfig = tracing.Config

// TraceEvent is one record of a merged transcript.
type TraceEvent = tracing.Event

// TraceFlightDump is one flight-recorder post-mortem.
type TraceFlightDump = tracing.FlightDump

// EnableTracing turns the tracing plane on process-wide: every Net
// built afterwards is traced (with the config set by SetTraceConfig)
// and attached to the default trace hub.
func EnableTracing() { tracing.Enable() }

// TracingEnabled reports whether the tracing plane is on.
func TracingEnabled() bool { return tracing.Enabled() }

// SetTraceConfig sets the config Nets built after EnableTracing use.
func SetTraceConfig(cfg TraceConfig) { tracing.SetDefaultConfig(cfg) }

// WriteTrace flushes every hub-attached tracer and writes one Chrome
// trace-event JSON document (open it in Perfetto or chrome://tracing)
// covering all of them, one process per net.
func WriteTrace(w io.Writer) error {
	trs := tracing.DefaultHub.Tracers()
	for _, tr := range trs {
		tr.Flush()
	}
	return tracing.WriteChromeAll(w, trs)
}

// DetachTracing removes a finished net's tracer from the default hub
// (the tracing analogue of DetachMetrics). Reports whether it was
// attached.
func DetachTracing(t *Tracer) bool { return tracing.DefaultHub.Detach(t) }
