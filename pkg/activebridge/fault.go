package activebridge

import (
	"github.com/switchware/activebridge/internal/fault"
	"github.com/switchware/activebridge/internal/topo"
)

// Deterministic fault injection. A FaultPlan attaches chaos to a
// Topology before Build: per-segment and per-bridge-port frame
// impairment models (loss, corruption, duplication, Gilbert-Elliott
// bursts) plus scheduled events (segment cuts, port flaps, bridge
// crashes and restarts) that fire in virtual time. Everything derives
// from the plan's single seed, so a chaotic run is replayable
// byte-for-byte — at any shard count.

// FaultModel is a per-entity frame impairment model: independent
// per-frame probabilities, plus an optional two-state burst chain
// (GoodToBad/BadToGood/BadDrop) for correlated loss.
type FaultModel = fault.Model

// FaultPlan is a seeded chaos description: impairment models per
// segment/bridge plus scheduled fault events. Attach one with
// Topology.FaultPlan before Build.
type FaultPlan = fault.Plan

// NewFaultPlan creates an empty plan. All randomness in the materialized
// net derives deterministically from this seed.
func NewFaultPlan(seed uint64) *FaultPlan { return fault.NewPlan(seed) }

// FaultOp is a scheduled fault event's action.
type FaultOp = fault.Op

// The scheduled fault event kinds.
const (
	// FaultLinkDown takes a whole segment down (a cut cable).
	FaultLinkDown = fault.OpLinkDown
	// FaultLinkUp restores a downed segment.
	FaultLinkUp = fault.OpLinkUp
	// FaultPortDown drops one bridge port's carrier.
	FaultPortDown = fault.OpPortDown
	// FaultPortUp restores one bridge port's carrier.
	FaultPortUp = fault.OpPortUp
	// FaultCrash freezes a bridge: ports dead, queued work dropped.
	FaultCrash = fault.OpCrash
	// FaultRestart cold-restarts a crashed bridge from its Manager's
	// stable-storage snapshot.
	FaultRestart = fault.OpRestart
)

// FaultEvent is one scheduled fault, as recorded in a plan.
type FaultEvent = fault.Event

// DefaultChaosModel returns the mild blanket impairment profile
// (1% loss, 0.2% corruption, 0.2% duplication) abbench's -faults flag
// applies to every segment.
func DefaultChaosModel() FaultModel { return fault.DefaultChaosModel() }

// Per-node fault options for Topology declarations.
var (
	// WithSegmentFault attaches an impairment model to one declared
	// segment (overrides the plan's blanket AllSegments model).
	WithSegmentFault = topo.WithSegmentFault
	// WithBridgeFault attaches a per-port receive impairment model to
	// one declared bridge.
	WithBridgeFault = topo.WithBridgeFault
)

// FaultTotals is the process-wide tally of injected faults: frame
// impairments from every stream plus flap/crash/restart event counts.
type FaultTotals = fault.Totals

// FaultGrandTotals returns the process-wide fault totals.
func FaultGrandTotals() FaultTotals { return fault.GrandTotals() }

// ResetFaultTotals zeroes the process-wide fault totals (test
// isolation).
func ResetFaultTotals() { fault.ResetTotals() }
