package activebridge

import (
	"github.com/switchware/activebridge/internal/bridge"
)

// The typed error set of the frame and lifecycle paths. Every error the
// SDK returns wraps one of these sentinels; branch with errors.Is.
var (
	// ErrFrameTooShort rejects send data shorter than an Ethernet header.
	ErrFrameTooShort = bridge.ErrFrameTooShort
	// ErrFrameTooLong rejects send data beyond the maximum frame length.
	ErrFrameTooLong = bridge.ErrFrameTooLong
	// ErrNoSuchPort rejects an out-of-range port index.
	ErrNoSuchPort = bridge.ErrNoSuchPort
	// ErrDstBound rejects a second destination-handler registration on an
	// address (first bind wins).
	ErrDstBound = bridge.ErrDstBound
	// ErrNotInstalled reports a Manager operation naming an unknown
	// switchlet.
	ErrNotInstalled = bridge.ErrNotInstalled
	// ErrAlreadyInstalled rejects installing a second switchlet under a
	// tracked name.
	ErrAlreadyInstalled = bridge.ErrAlreadyInstalled
	// ErrNotUpgradable reports an Upgrade over a switchlet without a
	// complete lifecycle.
	ErrNotUpgradable = bridge.ErrNotUpgradable
	// ErrNoSuchFunc reports a Query of an unregistered Func name.
	ErrNoSuchFunc = bridge.ErrNoSuchFunc
)
