package activebridge

import (
	"github.com/switchware/activebridge/internal/bridge"
)

// Manager is the per-bridge switchlet lifecycle surface: Install,
// Query, Upgrade, Rollback, Uninstall. Obtain one with Bridge.Manager().
type Manager = bridge.Manager

// InstalledSwitchlet is the Manager's record of one installed switchlet:
// its manifest and installation time.
type InstalledSwitchlet = bridge.Installed

// Upgrade is one live-upgrade attempt: old and new switchlets
// co-resident, handler ownership handed off atomically in virtual time,
// with validation pending — the paper's §5.4 protocol transition as a
// library value.
type Upgrade = bridge.Upgrade

// UpgradeOptions tunes an upgrade's suppression and validation windows
// and the protocol multicast addresses to guard.
type UpgradeOptions = bridge.UpgradeOptions

// DefaultUpgradeOptions returns the paper's Table 1 windows: 30 s
// suppression, validation at 60 s.
func DefaultUpgradeOptions() UpgradeOptions { return bridge.DefaultUpgradeOptions() }

// UpgradeState is the phase of an in-flight or finished upgrade.
type UpgradeState = bridge.UpgradeState

// The upgrade phases.
const (
	// UpgradeValidating: the new switchlet is active and being watched.
	UpgradeValidating = bridge.UpgradeValidating
	// UpgradeCommitted: validation passed; the new switchlet owns the
	// protocol.
	UpgradeCommitted = bridge.UpgradeCommitted
	// UpgradeRolledBack: the node returned to the old switchlet.
	UpgradeRolledBack = bridge.UpgradeRolledBack
)
