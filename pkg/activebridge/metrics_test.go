package activebridge_test

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"github.com/switchware/activebridge/internal/metrics"
	ab "github.com/switchware/activebridge/pkg/activebridge"
)

// TestSDKMetricsEndToEnd is the embedder's path: enable the plane,
// build a topology, drive traffic, scrape both endpoints.
func TestSDKMetricsEndToEnd(t *testing.T) {
	prev := metrics.SetEnabled(true)
	defer metrics.SetEnabled(prev)

	srv, err := ab.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	g := ab.NewTopology("sdk-metrics")
	h1 := g.AddHost("")
	h2 := g.AddHost("")
	br := g.AddBridge("", ab.LearningBridge, 2)
	lan1, lan2 := g.AddSegment(""), g.AddSegment("")
	g.Link(h1, lan1)
	g.Link(br, lan1)
	g.Link(h2, lan2)
	g.Link(br, lan2)
	net := g.MustBuild(ab.DefaultCostModel())
	if net.Metrics() == nil {
		t.Fatal("EnableMetrics did not auto-instrument the built net")
	}
	net.Warm(h1, h2)

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return string(body)
	}
	text := get("/metrics")
	if err := metrics.LintString(text); err != nil {
		t.Fatalf("/metrics fails lint: %v\n%s", err, text)
	}
	if !strings.Contains(text, `ab_bridge_frames_in_total{net="sdk-metrics",bridge="br0",shard="0"}`) {
		t.Errorf("bridge series missing net/bridge/shard identity:\n%s", text)
	}
	var hs metrics.HubSnapshot
	if err := json.Unmarshal([]byte(get("/snapshot")), &hs); err != nil {
		t.Fatalf("/snapshot: %v", err)
	}
	found := false
	for _, n := range hs.Nets {
		if n.Net == "sdk-metrics" {
			found = true
			if v, ok := n.Get("ab_shard_events_total", `{net="sdk-metrics",shard="0"}`); !ok || v == 0 {
				t.Errorf("events_total = %v (ok=%v) after a warmed net", v, ok)
			}
		}
	}
	if !found {
		t.Error("sdk-metrics net missing from /snapshot")
	}
}
