package activebridge

import (
	"github.com/switchware/activebridge/internal/ethernet"
	"github.com/switchware/activebridge/internal/switchlets"
)

// The bundled switchlet manifests: the paper's programs, ready to
// install. Each call returns a fresh manifest value the caller may
// customize (version, source) before installing.

// DumbSwitchlet is switchlet 1: the programmable buffered repeater —
// every frame floods out every other port.
func DumbSwitchlet() Switchlet { return switchlets.DumbManifest() }

// LearningSwitchlet is switchlet 2: the self-learning bridge, the
// paper's measured system.
func LearningSwitchlet() Switchlet { return switchlets.LearningManifest() }

// SpanningSwitchlet is switchlet 3: the IEEE 802.1D spanning tree — the
// "new" protocol of the transition experiment. It loads dormant when
// another spanning tree protocol is already operating.
func SpanningSwitchlet() Switchlet { return switchlets.SpanningManifest() }

// BuggySpanningSwitchlet is the deliberately broken 802.1D variant
// (inverted root election), for demonstrating automatic rollback.
func BuggySpanningSwitchlet() Switchlet { return switchlets.BuggySpanningManifest() }

// DECSwitchlet is the DEC-style spanning tree — the "old" protocol with
// an incompatible frame format.
func DECSwitchlet() Switchlet { return switchlets.DECManifest() }

// ControlSwitchlet is the §5.4 in-network transition controller. Prefer
// Manager.Upgrade, which provides the same Table 1 machinery as a host
// API; the control switchlet remains for fully in-network transitions
// triggered by observed protocol traffic.
func ControlSwitchlet() Switchlet { return switchlets.ControlManifest() }

// BuiltinSwitchlet resolves a bundled switchlet's administrative key
// ("dumb", "learning", "spanning", "spanbug", "dec", "control").
func BuiltinSwitchlet(key string) (Switchlet, bool) { return switchlets.BuiltinManifest(key) }

// Protocol multicast addresses of the two bundled spanning tree
// protocols, for UpgradeOptions guards.
var (
	// AllBridgesMAC is the 802.1D All Bridges multicast address.
	AllBridgesMAC = ethernet.AllBridges
	// DECBridgesMAC is the DEC management multicast address.
	DECBridgesMAC = ethernet.DECBridges
)
