package activebridge

import (
	"github.com/switchware/activebridge/internal/metrics"
)

// Live telemetry. The metrics plane observes a running simulation
// without perturbing it: every instrument is either a plain Go counter
// or a sampler read at the engine's quiescent points, so virtual-time
// outputs are byte-identical with metrics on or off, at any shard
// count. Scrapers read atomically published cells and never contend
// with the event loop.
//
// The minimal embedding is two calls before building topologies:
//
//	activebridge.EnableMetrics()
//	srv, err := activebridge.ServeMetrics("127.0.0.1:9090")
//	...
//	net := topology.MustBuild(cost) // auto-instrumented, served for free
//
// after which /metrics serves Prometheus text and /snapshot structured
// JSON for every net built while metrics were enabled. net.Metrics()
// returns the net's registry for registering workload or switchlet
// instruments of your own (see the internal/metrics godoc for the
// naming scheme).

// MetricsRegistry is one net's instrument set.
type MetricsRegistry = metrics.Registry

// MetricsLabels is an ordered label set for instrument registration.
type MetricsLabels = metrics.Labels

// MetricsServer is a running scrape endpoint.
type MetricsServer = metrics.Server

// MetricsSnapshot is one registry's published values as plain data.
type MetricsSnapshot = metrics.Snapshot

// EnableMetrics turns the metrics plane on process-wide: every Net
// built afterwards is instrumented and attached to the default hub.
func EnableMetrics() { metrics.Enable() }

// MetricsEnabled reports whether the metrics plane is on.
func MetricsEnabled() bool { return metrics.Enabled() }

// ServeMetrics binds addr (host:port, ":0" for an ephemeral port) and
// serves every instrumented net's telemetry: Prometheus text on
// /metrics, JSON on /snapshot. Close the returned server to stop.
func ServeMetrics(addr string) (*MetricsServer, error) {
	return metrics.Serve(addr, metrics.DefaultHub)
}

// DetachMetrics removes a finished net's registry from the served hub.
// A registry's samplers pin the simulation they observe, so a
// long-running embedder building many topologies should detach each
// net when done with it (rebuilding under the same name also replaces
// the old registry). Reports whether the net was attached.
func DetachMetrics(net string) bool { return metrics.DefaultHub.Detach(net) }
