package activebridge_test

import (
	"fmt"
	"testing"

	ab "github.com/switchware/activebridge/pkg/activebridge"
)

// buildRing declares a 12-bridge learning ring cut open by one absent
// link (a line, so no spanning tree is needed) with a host on each end,
// through the public SDK surface only.
func buildRing(shards int) (*ab.Net, ab.HostID, ab.HostID) {
	g := ab.NewTopology("sdk-sharded")
	const n = 12
	segs := make([]ab.SegmentID, n+1)
	for i := range segs {
		segs[i] = g.AddSegment(fmt.Sprintf("s%d", i), ab.WithPropagation(2000))
	}
	h1 := g.AddHost("")
	h2 := g.AddHost("")
	for i := 0; i < n; i++ {
		b := g.AddBridge("", ab.LearningBridge, 2)
		g.Link(b, segs[i])
		g.Link(b, segs[i+1])
	}
	g.Link(h1, segs[0])
	g.Link(h2, segs[n])
	g.Affine(h1, h2)
	if shards > 0 {
		g.Shards(shards)
	}
	net := g.MustBuild(ab.DefaultCostModel())
	return net, h1, h2
}

// TestSDKShardedMatchesSerial pins the public-API contract of the
// sharded engine: the Shards option is pure wall-clock — the same
// topology driven the same way fingerprints identically.
func TestSDKShardedMatchesSerial(t *testing.T) {
	drive := func(shards int) string {
		net, h1, h2 := buildRing(shards)
		if shards > 1 && net.Shards() != shards {
			t.Fatalf("expected %d shards, got %d", shards, net.Shards())
		}
		net.Warm(h1, h2)
		net.Sim.Run(net.Sim.Now() + 2_000_000_000)
		return net.Fingerprint()
	}
	serial := drive(0)
	for _, shards := range []int{2, 3} {
		if got := drive(shards); got != serial {
			t.Errorf("shards=%d fingerprint deviates:\n got %s\nwant %s", shards, got, serial)
		}
	}
}

// TestSDKPartitionInspection exercises the exported planner.
func TestSDKPartitionInspection(t *testing.T) {
	g := ab.NewTopology("plan")
	segs := make([]ab.SegmentID, 13)
	for i := range segs {
		segs[i] = g.AddSegment("")
	}
	for i := 0; i < 12; i++ {
		b := g.AddBridge("", ab.LearningBridge, 2)
		g.Link(b, segs[i])
		g.Link(b, segs[i+1])
	}
	plan, ok := ab.Partition(g, 3)
	if !ok || plan.Shards != 3 {
		t.Fatalf("expected a 3-shard plan, got %v ok=%v", plan, ok)
	}
	if cuts := plan.Cuts(g); cuts < 2 {
		t.Fatalf("a 3-way chain partition needs >=2 cuts, got %d", cuts)
	}
}
