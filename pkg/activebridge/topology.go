package activebridge

import (
	"github.com/switchware/activebridge/internal/topo"
)

// Topology is a declarative extended-LAN description: declare hosts,
// bridges, repeaters, taps and segments, link them, then Build a
// deterministic simulation with typed handles onto every node.
type Topology = topo.Graph

// NewTopology creates an empty topology description.
func NewTopology(name string) *Topology { return topo.New(name) }

// Net is a materialized Topology: one deterministic simulation plus
// typed handles onto every declared node.
type Net = topo.Net

// Typed node identifiers returned by the Topology declaration methods.
type (
	// HostID names a declared measurement host.
	HostID = topo.HostID
	// BridgeID names a declared active bridge.
	BridgeID = topo.BridgeID
	// RepeaterID names a declared buffered repeater.
	RepeaterID = topo.RepeaterID
	// TapID names a declared bare NIC (injection/capture point).
	TapID = topo.TapID
	// SegmentID names a declared segment.
	SegmentID = topo.SegmentID
)

// BridgeKind selects the switchlet set a declared bridge installs after
// wiring.
type BridgeKind = topo.BridgeKind

// The declared bridge kinds, mirroring the paper's configurations.
const (
	// EmptyBridge installs nothing: behaviour arrives later, through the
	// Manager or the network loader.
	EmptyBridge = topo.EmptyBridge
	// DumbBridge installs the buffered-repeater switchlet.
	DumbBridge = topo.DumbBridge
	// LearningBridge installs the swl learning switchlet.
	LearningBridge = topo.LearningBridge
	// NativeLearningBridge installs the native-code learning switchlet
	// (the paper's envisioned native-compilation ablation).
	NativeLearningBridge = topo.NativeLearningBridge
	// STPBridge installs learning plus the IEEE spanning tree.
	STPBridge = topo.STPBridge
	// AgilityBridge installs the full §5.4 transition stack: learning,
	// DEC (running), IEEE (dormant), control.
	AgilityBridge = topo.AgilityBridge
)

// Sharded execution. A Topology is serial by default: Build materializes
// one single-threaded simulation. Calling Topology.Shards(n) (or setting
// the process-wide default below) asks Build to partition the net across
// n shard engines running under a conservative coordinator — results
// stay byte-identical to serial at any shard count; only the wall clock
// changes. Small nets refuse to shard (the synchronization would cost
// more than it buys) and quietly build serial.
//
// Rule of thumb for embedders: declare Topology.Affine(a, b) for any two
// hosts coupled outside the simulated network — above all the endpoints
// of a closed-loop stream whose receiver releases the sender directly —
// so the partitioner keeps them on one engine.
var (
	// Partition computes (without building) the shard assignment Build
	// would use, for inspection and capacity planning.
	Partition = topo.Partition
)

// Plan is a computed shard assignment: one shard per declared node and
// an owner shard per segment.
type Plan = topo.Plan

// DefaultShards is the shard count Build uses when the Topology does not
// set one explicitly; see topo.DefaultShards.
func DefaultShards() int { return topo.DefaultShards }

// SetDefaultShards sets the process-wide default shard count. Set it
// before building; do not mutate it concurrently with builds.
func SetDefaultShards(n int) { topo.DefaultShards = n }

// Topology declaration options.
var (
	// WithMAC fixes a declared host's MAC address.
	WithMAC = topo.WithMAC
	// WithIP fixes a declared host's IP address.
	WithIP = topo.WithIP
	// WithBridgeID fixes a declared bridge's identity byte.
	WithBridgeID = topo.WithBridgeID
	// WithNetLoader gives a declared bridge an IP address and the TFTP
	// network switchlet loader.
	WithNetLoader = topo.WithNetLoader
	// WithSpanningSrc overrides the IEEE source an AgilityBridge loads
	// dormant.
	WithSpanningSrc = topo.WithSpanningSrc
	// WithLogSink installs a bridge's log sink before any switchlet
	// loads.
	WithLogSink = topo.WithLogSink
	// WithPropagation fixes a declared segment's one-way propagation
	// delay (long links give the sharded engine more lookahead when they
	// become cuts).
	WithPropagation = topo.WithPropagation
)
