package activebridge_test

import (
	"testing"

	ab "github.com/switchware/activebridge/pkg/activebridge"
)

// buildLossyLine declares h1 - s0 - bridge - s1 - h2 with a seeded
// blanket impairment model and one scheduled segment cut, through the
// public SDK surface only. It returns the fingerprint after a fixed
// drive.
func lossyLineFingerprint(t *testing.T, seed uint64) (fp string, s1Down bool, drops uint64) {
	t.Helper()
	ab.ResetFaultTotals()
	g := ab.NewTopology("sdk-fault")
	s0 := g.AddSegment("s0")
	s1 := g.AddSegment("s1")
	h1 := g.AddHost("")
	h2 := g.AddHost("")
	b := g.AddBridge("", ab.LearningBridge, 2)
	g.Link(b, s0)
	g.Link(b, s1)
	g.Link(h1, s0)
	g.Link(h2, s1)
	g.FaultPlan(ab.NewFaultPlan(seed).
		AllSegments(ab.FaultModel{Drop: 0.2, Duplicate: 0.05}).
		At(2*ab.Second, ab.FaultLinkDown, "s1"))
	net := g.MustBuild(ab.DefaultCostModel())

	// A steady broadcast-learnable stream: enough frames that a 20% drop
	// model is statistically certain to fire.
	src, dst := net.Host(h1), net.Host(h2)
	src.AddNeighbor(dst.IP, dst.MAC)
	for i := 0; i < 100; i++ {
		at := net.Sim.Now() + ab.Time(i)*ab.Time(10*ab.Millisecond)
		net.Sim.Schedule(at, func() { src.SendTest(dst.MAC, make([]byte, 200)) })
	}
	net.Sim.Run(net.Sim.Now() + ab.Time(3*ab.Second))
	return net.Fingerprint(), net.Segment(s1).Down(), ab.FaultGrandTotals().Drops
}

// TestSDKFaultPlanDeterministicChaos pins the public fault-plane
// contract: a seeded plan injects faults (frames drop, the scheduled cut
// fires), identical seeds replay byte-for-byte, and a different seed
// reshuffles the chaos.
func TestSDKFaultPlanDeterministicChaos(t *testing.T) {
	fpA, down, drops := lossyLineFingerprint(t, 7)
	if drops == 0 {
		t.Error("20% loss model injected no drops")
	}
	if !down {
		t.Error("scheduled segment cut never fired")
	}
	fpB, _, _ := lossyLineFingerprint(t, 7)
	if fpA != fpB {
		t.Errorf("same seed, different runs: %s vs %s", fpA, fpB)
	}
	fpC, _, _ := lossyLineFingerprint(t, 8)
	if fpC == fpA {
		t.Error("different seeds produced identical chaos")
	}
}

// TestSDKFaultPlanUnknownTargetFailsBuild: a typo'd event target is a
// build error, not silence at runtime.
func TestSDKFaultPlanUnknownTargetFailsBuild(t *testing.T) {
	g := ab.NewTopology("sdk-fault-typo")
	s0 := g.AddSegment("s0")
	h := g.AddHost("")
	g.Link(h, s0)
	g.FaultPlan(ab.NewFaultPlan(1).At(ab.Second, ab.FaultLinkDown, "nope"))
	if _, err := g.Build(ab.DefaultCostModel()); err == nil {
		t.Fatal("build accepted an event targeting an undeclared segment")
	}
}
