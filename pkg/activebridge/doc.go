// Package activebridge is the public SDK of the Active Bridge
// reproduction: a stable, capability-scoped surface for embedding the
// bridge runtime and managing switchlet lifecycles from outside this
// repository.
//
// The paper's core contribution is a programming interface — safely
// loading, composing and hot-swapping switchlets on a running network
// element — and this package is that interface made first-class:
//
//   - Switchlet manifests (name, semantic version, required
//     capabilities, exported handlers and timers) replace raw
//     source-string loading. A manifest declares the bridge powers its
//     code needs; installation rejects code importing environment
//     modules outside the grant, before any of it runs.
//   - The per-bridge Manager carries the whole lifecycle:
//     Install, Query, Upgrade, Rollback, Uninstall. Upgrade generalizes
//     the paper's §5.4 DEC→IEEE protocol transition into a library
//     primitive — old and new switchlets co-resident, an atomic handler
//     handoff in virtual time, state validation against the captured old
//     protocol, and automatic rollback on a trap, a validation mismatch
//     or late old-protocol traffic.
//   - The simulation substrate (virtual time, segments, NICs, hosts) and
//     the declarative topology builder are re-exported so an embedder
//     can construct arbitrary extended LANs without reaching into
//     internal packages.
//
// # Embedding
//
// Build a simulated network, create a bridge, and install behaviour:
//
//	sim := activebridge.NewSim()
//	br := activebridge.NewBridge(sim, "br0", 1, 2, activebridge.DefaultCostModel())
//	mgr := br.Manager()
//	if _, err := mgr.Install(activebridge.LearningSwitchlet()); err != nil { ... }
//	sim.Run(activebridge.Time(10 * activebridge.Second))
//
// See Example (embedding) for a complete runnable program, and the
// Upgrade tests for the live protocol transition driven through this
// API.
package activebridge
