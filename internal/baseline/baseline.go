// Package baseline implements the paper's two comparison points:
//
//   - the direct connection ("best case" configuration of two hosts
//     interconnected by a single LAN, Figure 8), which is just a wiring
//     helper here; and
//   - the C buffered repeater (§7.3): "This program simply opens two
//     Ethernet devices in promiscuous mode and, for each packet received
//     on one of the interfaces, writes the packet on the other" — a
//     user-space forwarder that pays the kernel path but runs no bridge
//     logic and no interpreter.
package baseline

import (
	"github.com/switchware/activebridge/internal/ethernet"
	"github.com/switchware/activebridge/internal/netsim"
)

// Repeater is the minimal user-mode forwarder.
type Repeater struct {
	Name  string
	sim   *netsim.Sim
	cpu   *netsim.CPU
	cost  netsim.CostModel
	ports [2]*netsim.NIC

	// Stats.
	Forwarded uint64
}

// NewRepeater creates a two-port buffered repeater.
func NewRepeater(sim *netsim.Sim, name string, cost netsim.CostModel) *Repeater {
	r := &Repeater{Name: name, sim: sim, cpu: netsim.NewCPU(sim), cost: cost}
	for i := 0; i < 2; i++ {
		nic := netsim.NewNIC(sim, name+".eth"+string(rune('0'+i)), ethernet.MAC{0x02, 0xcc, 0, 0, 0, byte(i + 1)})
		nic.Promiscuous = true
		out := 1 - i
		nic.SetRecv(func(_ *netsim.NIC, raw []byte) { r.forward(out, raw) })
		r.ports[i] = nic
	}
	return r
}

// Port returns one of the repeater's two NICs.
func (r *Repeater) Port(i int) *netsim.NIC { return r.ports[i] }

// CPU exposes the repeater CPU.
func (r *Repeater) CPU() *netsim.CPU { return r.cpu }

// forward charges the user-space path (kernel in, copy, kernel out) and
// emits the frame unchanged on the other port.
func (r *Repeater) forward(outPort int, raw []byte) {
	cost := r.cost.KernelCrossing(len(raw)) + r.cost.RepeaterPerFrame + r.cost.KernelCrossing(len(raw))
	r.cpu.Exec(cost, func() {
		r.Forwarded++
		r.ports[outPort].Send(raw)
	})
}
