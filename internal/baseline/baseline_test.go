package baseline

import (
	"testing"

	"github.com/switchware/activebridge/internal/ethernet"
	"github.com/switchware/activebridge/internal/netsim"
)

func TestRepeaterForwardsBothDirections(t *testing.T) {
	sim := netsim.New()
	r := NewRepeater(sim, "rep", netsim.DefaultCostModel())
	lan1 := netsim.NewSegment(sim, "lan1")
	lan2 := netsim.NewSegment(sim, "lan2")
	a := netsim.NewNIC(sim, "a", ethernet.MAC{2, 0, 0, 0, 0, 1})
	b := netsim.NewNIC(sim, "b", ethernet.MAC{2, 0, 0, 0, 0, 2})
	var rxA, rxB int
	a.SetRecv(func(*netsim.NIC, []byte) { rxA++ })
	b.SetRecv(func(*netsim.NIC, []byte) { rxB++ })
	lan1.Attach(a)
	lan1.Attach(r.Port(0))
	lan2.Attach(b)
	lan2.Attach(r.Port(1))

	send := func(from *netsim.NIC, dst ethernet.MAC) {
		fr := ethernet.Frame{Dst: dst, Src: from.MAC, Type: ethernet.TypeTest, Payload: make([]byte, 64)}
		raw, err := fr.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		from.Send(raw)
	}
	sim.Schedule(1, func() { send(a, b.MAC) })
	sim.Schedule(2, func() { send(b, a.MAC) })
	sim.Run(netsim.Time(netsim.Second))
	if rxA != 1 || rxB != 1 {
		t.Errorf("rxA=%d rxB=%d, want 1/1", rxA, rxB)
	}
	if r.Forwarded != 2 {
		t.Errorf("Forwarded = %d", r.Forwarded)
	}
}

func TestRepeaterAddsLatencyButNotLogic(t *testing.T) {
	sim := netsim.New()
	cost := netsim.DefaultCostModel()
	r := NewRepeater(sim, "rep", cost)
	lan1 := netsim.NewSegment(sim, "lan1")
	lan2 := netsim.NewSegment(sim, "lan2")
	a := netsim.NewNIC(sim, "a", ethernet.MAC{2, 0, 0, 0, 0, 1})
	b := netsim.NewNIC(sim, "b", ethernet.MAC{2, 0, 0, 0, 0, 2})
	var arrived netsim.Time
	b.SetRecv(func(*netsim.NIC, []byte) { arrived = sim.Now() })
	lan1.Attach(a)
	lan1.Attach(r.Port(0))
	lan2.Attach(b)
	lan2.Attach(r.Port(1))
	fr := ethernet.Frame{Dst: b.MAC, Src: a.MAC, Type: ethernet.TypeTest, Payload: make([]byte, 1000)}
	raw, _ := fr.Marshal()
	sim.Schedule(0, func() { a.Send(raw) })
	sim.RunAll()
	// Latency must include two kernel crossings plus the copy cost but no
	// VM dispatch.
	minWant := 2 * cost.KernelCrossing(len(raw))
	if netsim.Duration(arrived) < minWant {
		t.Errorf("arrival %v earlier than kernel path %v", arrived, minWant)
	}
	if netsim.Duration(arrived) > minWant+2*netsim.Millisecond {
		t.Errorf("arrival %v suspiciously late", arrived)
	}
	if r.CPU().Busy == 0 {
		t.Error("repeater CPU not charged")
	}
}

func TestRepeaterForwardsEverythingUnfiltered(t *testing.T) {
	// Even frames addressed to nobody cross the repeater (it has no
	// bridge logic, no learning, no filtering).
	sim := netsim.New()
	r := NewRepeater(sim, "rep", netsim.DefaultCostModel())
	lan1 := netsim.NewSegment(sim, "lan1")
	lan2 := netsim.NewSegment(sim, "lan2")
	a := netsim.NewNIC(sim, "a", ethernet.MAC{2, 0, 0, 0, 0, 1})
	lan1.Attach(a)
	lan1.Attach(r.Port(0))
	lan2.Attach(r.Port(1))
	probe := netsim.NewNIC(sim, "probe", ethernet.MAC{2, 0, 0, 0, 0, 9})
	probe.Promiscuous = true
	seen := 0
	probe.SetRecv(func(*netsim.NIC, []byte) { seen++ })
	lan2.Attach(probe)
	fr := ethernet.Frame{Dst: ethernet.MAC{0xde, 0xad, 0, 0, 0, 0}, Src: a.MAC,
		Type: ethernet.TypeTest, Payload: make([]byte, 64)}
	raw, _ := fr.Marshal()
	sim.Schedule(0, func() { a.Send(raw) })
	sim.RunAll()
	if seen != 1 {
		t.Errorf("repeater filtered a frame: seen=%d", seen)
	}
}
