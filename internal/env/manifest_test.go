package env

import (
	"strings"
	"testing"
)

func TestParseVersion(t *testing.T) {
	v, err := ParseVersion("1.2.3")
	if err != nil || v != (Version{1, 2, 3}) {
		t.Fatalf("ParseVersion = %v, %v", v, err)
	}
	if v.String() != "1.2.3" {
		t.Errorf("String = %s", v.String())
	}
	for _, bad := range []string{"", "1.2", "1.2.3.4", "a.b.c", "1.-2.3"} {
		if _, err := ParseVersion(bad); err == nil {
			t.Errorf("ParseVersion(%q) should fail", bad)
		}
	}
}

func TestVersionCompare(t *testing.T) {
	cases := []struct {
		a, b Version
		want int
	}{
		{Version{1, 0, 0}, Version{1, 0, 0}, 0},
		{Version{1, 0, 0}, Version{1, 0, 1}, -1},
		{Version{1, 1, 0}, Version{1, 0, 9}, 1},
		{Version{2, 0, 0}, Version{1, 9, 9}, 1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("%v.Compare(%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestManifestValidate(t *testing.T) {
	ok := Manifest{Name: "X", Source: "let x = 1"}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid manifest rejected: %v", err)
	}
	for _, m := range []Manifest{
		{Source: "let x = 1"}, // no name
		{Name: "X"},           // no code
		{Name: "X", Source: "s", Object: []byte{1}},              // both
		{Name: "X", Source: "s", Capabilities: []Capability{99}}, // bad cap
	} {
		if err := m.Validate(); err == nil {
			t.Errorf("manifest %+v should fail validation", m)
		}
	}
}

func TestManifestGrantsAndRef(t *testing.T) {
	m := Manifest{
		Name: "Learning", Version: Version{1, 0, 2},
		Capabilities: []Capability{CapNet, CapDemux},
	}
	if !m.Grants(CapNet) || m.Grants(CapLog) {
		t.Error("Grants wrong")
	}
	if m.Ref() != "Learning@1.0.2" {
		t.Errorf("Ref = %s", m.Ref())
	}
}

func TestUnitCapabilityCoversEveryHostUnit(t *testing.T) {
	for _, u := range []string{"Log", "Safeunix", "Func", "Unixnet", "Bridge", "Safethread", "Mutex"} {
		if _, ok := UnitCapability(u); !ok {
			t.Errorf("host unit %s has no capability gate", u)
		}
	}
	for _, u := range []string{"Safestd", "String", "Hashtbl"} {
		if _, ok := UnitCapability(u); ok {
			t.Errorf("language unit %s should not be capability-gated", u)
		}
	}
}

func TestCheckImports(t *testing.T) {
	// All covered: language units free, granted units pass.
	err := CheckImports("T", []string{"String", "Unixnet", "Log"},
		[]Capability{CapNet, CapLog})
	if err != nil {
		t.Errorf("covered imports rejected: %v", err)
	}
	// Uncovered gated import is named in the error.
	err = CheckImports("T", []string{"Unixnet", "Bridge"}, []Capability{CapNet})
	if err == nil {
		t.Fatal("undeclared import accepted")
	}
	ce, ok := err.(*CapabilityError)
	if !ok || ce.Switchlet != "T" || len(ce.Denied) != 1 ||
		!strings.Contains(ce.Denied[0], "Bridge") {
		t.Errorf("error = %#v", err)
	}
}

func TestAllCapabilitiesAndNames(t *testing.T) {
	all := AllCapabilities()
	if len(all) != int(numCapabilities) {
		t.Fatalf("AllCapabilities = %d entries", len(all))
	}
	seen := map[string]bool{}
	for _, c := range all {
		n := c.String()
		if strings.Contains(n, "capability(") || seen[n] {
			t.Errorf("bad or duplicate capability name %q", n)
		}
		seen[n] = true
	}
}

func TestFuncRegistryUnregister(t *testing.T) {
	r := NewFuncRegistry()
	r.Register("a", "va")
	r.Register("b", "vb")
	if !r.Unregister("a") {
		t.Fatal("Unregister existing = false")
	}
	if r.Unregister("a") {
		t.Error("Unregister twice = true")
	}
	if _, ok := r.Lookup("a"); ok {
		t.Error("a still bound")
	}
	names := r.Names()
	if len(names) != 1 || names[0] != "b" {
		t.Errorf("names after unregister = %v", names)
	}
}
