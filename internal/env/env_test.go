package env

import (
	"strings"
	"testing"

	"github.com/switchware/activebridge/internal/ethernet"
	"github.com/switchware/activebridge/internal/vm"
)

// fakeHost records interactions for unit-testing the module wrappers
// without a full bridge.
type fakeHost struct {
	numPorts int
	sent     []struct {
		port int
		data string
		ctl  bool
	}
	blocked  map[int]bool
	handler  vm.Value
	dst      map[ethernet.MAC]vm.Value
	timers   map[string]int64
	afters   []int64
	spawned  []vm.Value
	logs     []string
	microNow int64
}

func newFakeHost() *fakeHost {
	return &fakeHost{
		numPorts: 4,
		blocked:  map[int]bool{},
		dst:      map[ethernet.MAC]vm.Value{},
		timers:   map[string]int64{},
	}
}

func (f *fakeHost) NumPorts() int { return f.numPorts }
func (f *fakeHost) Send(port int, data string, ctl bool) error {
	f.sent = append(f.sent, struct {
		port int
		data string
		ctl  bool
	}{port, data, ctl})
	return nil
}
func (f *fakeHost) PortUp(port int) bool          { return port < f.numPorts }
func (f *fakeHost) SetPortBlock(port int, b bool) { f.blocked[port] = b }
func (f *fakeHost) PortBlocked(port int) bool     { return f.blocked[port] }
func (f *fakeHost) BridgeID() string              { return "\x02\xbb\x00\x00\x01\x00" }
func (f *fakeHost) NowMicros() int64              { return f.microNow }
func (f *fakeHost) SetHandler(fn vm.Value)        { f.handler = fn }
func (f *fakeHost) BindDst(m ethernet.MAC, fn vm.Value) error {
	if _, taken := f.dst[m]; taken {
		return errAlreadyBound
	}
	f.dst[m] = fn
	return nil
}

var errAlreadyBound = &vm.Trap{Msg: "destination already bound"}

func (f *fakeHost) UnbindDst(m ethernet.MAC)                 { delete(f.dst, m) }
func (f *fakeHost) SetTimer(n string, ms int64, fn vm.Value) { f.timers[n] = ms }
func (f *fakeHost) CancelTimer(n string)                     { delete(f.timers, n) }
func (f *fakeHost) After(ms int64, fn vm.Value)              { f.afters = append(f.afters, ms) }
func (f *fakeHost) Spawn(fn vm.Value)                        { f.spawned = append(f.spawned, fn) }
func (f *fakeHost) Log(msg string)                           { f.logs = append(f.logs, msg) }

// loadWith compiles and loads src into a loader with the full environment
// over the fake host.
func loadWith(t *testing.T, h Env, src string) (*vm.Loader, *vm.LinkedModule, *FuncRegistry) {
	t.Helper()
	m := vm.NewMachine()
	l := vm.StdLoader(m)
	reg := NewFuncRegistry()
	if err := Install(l, h, reg); err != nil {
		t.Fatal(err)
	}
	obj, _, err := vm.Compile("T", src, l.SigEnv())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	lm, err := l.Load(obj.Encode())
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return l, lm, reg
}

func TestUnixnetSendAndPorts(t *testing.T) {
	h := newFakeHost()
	loadWith(t, h, `
let _ = Unixnet.send_pkt_out 2 "data"
let _ = Unixnet.send_ctl_out 3 "ctl"`)
	if len(h.sent) != 2 {
		t.Fatalf("sent = %d", len(h.sent))
	}
	if h.sent[0].port != 2 || h.sent[0].data != "data" || h.sent[0].ctl {
		t.Errorf("first send = %+v", h.sent[0])
	}
	if h.sent[1].port != 3 || !h.sent[1].ctl {
		t.Errorf("second send = %+v", h.sent[1])
	}
}

func TestUnixnetPortValidation(t *testing.T) {
	h := newFakeHost()
	m := vm.NewMachine()
	l := vm.StdLoader(m)
	reg := NewFuncRegistry()
	if err := Install(l, h, reg); err != nil {
		t.Fatal(err)
	}
	obj, _, err := vm.Compile("Bad", `let _ = Unixnet.send_pkt_out 9 "x"`, l.SigEnv())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Load(obj.Encode()); err == nil || !strings.Contains(err.Error(), "no such port") {
		t.Errorf("out-of-range port: %v", err)
	}
}

func TestPortBlockRoundTrip(t *testing.T) {
	h := newFakeHost()
	_, lm, _ := loadWith(t, h, `
let set p b = Unixnet.set_port_block p b
let get p = Unixnet.port_blocked p`)
	m := vm.NewMachine()
	_ = m
	fn, _ := lm.Global("set")
	machine := vm.NewMachine()
	if _, err := machine.Invoke(fn, int64(1), true); err != nil {
		t.Fatal(err)
	}
	if !h.blocked[1] {
		t.Error("block not applied")
	}
	gfn, _ := lm.Global("get")
	v, err := machine.Invoke(gfn, int64(1))
	if err != nil || v != true {
		t.Errorf("port_blocked = %v, %v", v, err)
	}
}

func TestBridgeRegistrations(t *testing.T) {
	h := newFakeHost()
	loadWith(t, h, `
let handler pkt inport = ignore pkt; ignore inport
let _ = Bridge.set_handler handler
let _ = Bridge.set_dst_handler "\x01\x80\xc2\x00\x00\x00" handler
let _ = Bridge.set_timer "hello" 2000 (fun () -> ())
let _ = Bridge.after 500 (fun () -> ())`)
	if h.handler == nil {
		t.Error("default handler not registered")
	}
	if len(h.dst) != 1 {
		t.Error("dst handler not registered")
	}
	if h.timers["hello"] != 2000 {
		t.Errorf("timer = %v", h.timers)
	}
	if len(h.afters) != 1 || h.afters[0] != 500 {
		t.Errorf("afters = %v", h.afters)
	}
}

func TestDstHandlerValidation(t *testing.T) {
	h := newFakeHost()
	m := vm.NewMachine()
	l := vm.StdLoader(m)
	if err := Install(l, h, NewFuncRegistry()); err != nil {
		t.Fatal(err)
	}
	obj, _, err := vm.Compile("BadMac", `
let handler pkt inport = ignore pkt; ignore inport
let _ = Bridge.set_dst_handler "short" handler`, l.SigEnv())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Load(obj.Encode()); err == nil || !strings.Contains(err.Error(), "6-byte") {
		t.Errorf("bad MAC: %v", err)
	}
}

func TestFuncRegistryOrderAndReplace(t *testing.T) {
	r := NewFuncRegistry()
	r.Register("b", "vb")
	r.Register("a", "va")
	r.Register("b", "vb2")
	names := r.Names()
	if len(names) != 2 || names[0] != "b" || names[1] != "a" {
		t.Errorf("names = %v", names)
	}
	v, ok := r.Lookup("b")
	if !ok || v != "vb2" {
		t.Errorf("replace failed: %v", v)
	}
	if _, ok := r.Lookup("zzz"); ok {
		t.Error("phantom lookup")
	}
}

func TestFuncCallTypeDiscipline(t *testing.T) {
	h := newFakeHost()
	_, lm, _ := loadWith(t, h, `
let _ = Func.register "ok" (fun s -> s ^ "!")
let use s = Func.call "ok" s
let missing s = Func.call "nope" s`)
	machine := vm.NewMachine()
	fn, _ := lm.Global("use")
	v, err := machine.Invoke(fn, "hi")
	if err != nil || v != "hi!" {
		t.Errorf("call = %v, %v", v, err)
	}
	mfn, _ := lm.Global("missing")
	if _, err := machine.Invoke(mfn, "x"); err == nil {
		t.Error("call of unregistered function should trap")
	}
}

func TestLogAndTime(t *testing.T) {
	h := newFakeHost()
	h.microNow = 1_500_000
	loadWith(t, h, `
let _ = Log.log ("now=" ^ string_of_int (Safeunix.gettimeofday ()))
let _ = Log.log ("sec=" ^ string_of_int (Safeunix.time ()))`)
	if len(h.logs) != 2 || h.logs[0] != "now=1500000" || h.logs[1] != "sec=1" {
		t.Errorf("logs = %v", h.logs)
	}
}

func TestSafethreadSpawn(t *testing.T) {
	h := newFakeHost()
	loadWith(t, h, `
let _ = Safethread.spawn (fun () -> Log.log "thread body")
let _ = Safethread.yield ()`)
	if len(h.spawned) != 1 {
		t.Errorf("spawned = %d", len(h.spawned))
	}
}

func TestThinnedEnvironmentHasNoEscapeHatches(t *testing.T) {
	// The security property: none of the installed signatures may export
	// anything resembling file, process, or raw-memory access.
	m := vm.NewMachine()
	l := vm.StdLoader(m)
	if err := Install(l, newFakeHost(), NewFuncRegistry()); err != nil {
		t.Fatal(err)
	}
	forbidden := []string{"open", "exec", "read_file", "write_file", "system",
		"unsafe", "obj", "magic", "marshal", "fork", "socket", "kill"}
	for _, mod := range l.SigEnv().Modules() {
		sig, _ := l.SigEnv().Lookup(mod)
		for _, name := range sig.Names() {
			for _, bad := range forbidden {
				if strings.Contains(strings.ToLower(name), bad) {
					t.Errorf("module %s exports suspicious name %s", mod, name)
				}
			}
		}
	}
	// And Thread.kill-style or disk loading is simply absent:
	for _, probe := range []string{
		`let _ = Safeunix.fork ()`,
		`let _ = Safeunix.open_file "/etc/passwd"`,
		`let _ = Safethread.kill 3`,
	} {
		if _, _, err := vm.Compile("Probe", probe, l.SigEnv()); err == nil {
			t.Errorf("probe compiled: %s", probe)
		}
	}
}
