package env

import (
	"fmt"
	"sort"
	"strings"
)

// Capability names one power of the bridge runtime that a switchlet may
// hold. The paper's safety story is environmental thinning: a switchlet
// can only reach what its environment exposes (§5.2.1). Capabilities make
// the thinning per-switchlet and declarative — a manifest lists the
// capabilities its code needs, and installation fails if the compiled
// object imports an environment module the manifest does not grant.
// Enforcement is at install (link) time, so granting costs nothing on the
// frame path.
type Capability uint8

const (
	// CapLog grants the Log module: emitting log messages through the
	// host-controlled sink.
	CapLog Capability = iota
	// CapClock grants the Safeunix module: reading virtual time
	// (gettimeofday/time) and nothing else of Unix.
	CapClock
	// CapFuncs grants the Func module: registering named functions and
	// calling functions other switchlets registered.
	CapFuncs
	// CapNet grants the Unixnet module: sending frames, inspecting and
	// blocking ports, and reading the bridge identity.
	CapNet
	// CapDemux grants the Bridge module: claiming the default frame
	// handler, binding destination-MAC handlers, and arming timers — the
	// registration points through which a switchlet attaches itself to
	// the data path.
	CapDemux
	// CapThreads grants the Safethread and Mutex modules: cooperative
	// spawn/yield and the assertion-style mutex.
	CapThreads

	numCapabilities
)

var capabilityNames = [...]string{"log", "clock", "funcs", "net", "demux", "threads"}

// String returns the capability's stable lower-case name.
func (c Capability) String() string {
	if int(c) >= len(capabilityNames) {
		return fmt.Sprintf("capability(%d)", int(c))
	}
	return capabilityNames[c]
}

// AllCapabilities returns every defined capability, in declaration order.
// Convenience for manifests of fully trusted switchlets.
func AllCapabilities() []Capability {
	out := make([]Capability, numCapabilities)
	for i := range out {
		out[i] = Capability(i)
	}
	return out
}

// unitCaps maps each host-provided environment module to the capability
// that grants it. Language-level units (Safestd, String, Hashtbl) are
// absent: they carry no node powers and every switchlet may use them.
var unitCaps = map[string]Capability{
	"Log":        CapLog,
	"Safeunix":   CapClock,
	"Func":       CapFuncs,
	"Unixnet":    CapNet,
	"Bridge":     CapDemux,
	"Safethread": CapThreads,
	"Mutex":      CapThreads,
}

// UnitCapability reports which capability grants access to the named
// environment module, or false for language-level units that need no
// grant.
func UnitCapability(module string) (Capability, bool) {
	c, ok := unitCaps[module]
	return c, ok
}

// CapabilityError is an install-time rejection: the compiled switchlet
// imports environment modules its manifest does not grant.
type CapabilityError struct {
	// Switchlet is the manifest name of the rejected switchlet.
	Switchlet string
	// Denied lists "module (capability)" pairs that were imported but
	// not granted, in deterministic order.
	Denied []string
}

// Error implements the error interface.
func (e *CapabilityError) Error() string {
	return fmt.Sprintf("switchlet %s: undeclared capabilities: %s",
		e.Switchlet, strings.Join(e.Denied, ", "))
}

// CheckImports verifies that every imported module is either
// language-level or covered by a granted capability. modules is the
// import list of the compiled object; it returns nil when all imports are
// covered and a *CapabilityError naming each uncovered import otherwise.
func CheckImports(name string, modules []string, granted []Capability) error {
	held := map[Capability]bool{}
	for _, c := range granted {
		held[c] = true
	}
	var denied []string
	for _, m := range modules {
		c, gated := UnitCapability(m)
		if gated && !held[c] {
			denied = append(denied, fmt.Sprintf("%s (%v)", m, c))
		}
	}
	if len(denied) == 0 {
		return nil
	}
	sort.Strings(denied)
	return &CapabilityError{Switchlet: name, Denied: denied}
}
