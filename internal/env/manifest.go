package env

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/switchware/activebridge/internal/ethernet"
)

// Version is a semantic version for a switchlet: upgrades compare
// versions to decide direction, and logs attribute behaviour to an exact
// release of the code.
type Version struct {
	Major, Minor, Patch int
}

// ParseVersion parses "major.minor.patch" (for example "1.2.0").
func ParseVersion(s string) (Version, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 3 {
		return Version{}, fmt.Errorf("version %q: want major.minor.patch", s)
	}
	var nums [3]int
	for i, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 {
			return Version{}, fmt.Errorf("version %q: bad component %q", s, p)
		}
		nums[i] = n
	}
	return Version{nums[0], nums[1], nums[2]}, nil
}

// MustParseVersion is ParseVersion for literal version strings; it panics
// on malformed input.
func MustParseVersion(s string) Version {
	v, err := ParseVersion(s)
	if err != nil {
		panic("env: " + err.Error())
	}
	return v
}

// String renders the version as "major.minor.patch".
func (v Version) String() string {
	return fmt.Sprintf("%d.%d.%d", v.Major, v.Minor, v.Patch)
}

// Compare returns -1, 0 or +1 as v is older than, equal to, or newer
// than o.
func (v Version) Compare(o Version) int {
	pairs := [3][2]int{{v.Major, o.Major}, {v.Minor, o.Minor}, {v.Patch, o.Patch}}
	for _, p := range pairs {
		if p[0] < p[1] {
			return -1
		}
		if p[0] > p[1] {
			return 1
		}
	}
	return 0
}

// Lifecycle names the Func-registry entry points through which the
// runtime drives a protocol switchlet without knowing its internals: the
// paper's control switchlet calls exactly these four ("dec.stop",
// "ieee.start", "ieee.tree", "dec.running"). A switchlet with an empty
// Lifecycle is passive: it can be installed but not upgraded in place.
type Lifecycle struct {
	// Start activates the protocol ("ieee.start"); it takes a string and
	// returns a string, like every Func entry.
	Start string
	// Stop deactivates the protocol and releases its bindings
	// ("ieee.stop").
	Stop string
	// Probe renders the protocol's convergent state in a canonical,
	// comparable form ("ieee.tree"); upgrades validate by comparing the
	// old and new switchlets' probes.
	Probe string
	// Running reports "yes" or "no" ("ieee.running").
	Running string
	// ProtoAddr is the protocol's multicast address (the destination it
	// binds while running), if it has one. Upgrades use it to guard the
	// old protocol's address during the transition window and to drain
	// the new one after a rollback.
	ProtoAddr ethernet.MAC
}

// Complete reports whether every lifecycle entry point is named, i.e.
// the switchlet is upgrade-capable.
func (lc Lifecycle) Complete() bool {
	return lc.Start != "" && lc.Stop != "" && lc.Probe != "" && lc.Running != ""
}

// Manifest describes one switchlet release: what it is called, which
// version it is, which bridge powers it needs, and what it exports. The
// manifest replaces raw source-string loading — the Manager installs
// manifests, enforcing at install time that the code imports only the
// environment modules its capabilities grant.
type Manifest struct {
	// Name is the switchlet's module name in the node's namespace
	// (for example "Learning"). One module of a given name can be
	// linked at a time.
	Name string
	// Version is the release being installed.
	Version Version
	// Capabilities lists the bridge powers the switchlet requires.
	// Installation fails if the compiled object imports an environment
	// module outside this set.
	Capabilities []Capability
	// Handlers lists the Func-registry names the switchlet exports
	// (beyond the lifecycle entries), e.g. "learning.lookup". Uninstall
	// unregisters exactly these.
	Handlers []string
	// Timers lists the named periodic timers the switchlet owns, e.g.
	// "ieee_hello". Uninstall cancels exactly these.
	Timers []string
	// OwnsDataPath declares that the switchlet claims the default frame
	// handler (Bridge.set_handler). Uninstall then releases the claim,
	// leaving the node forwarding nothing until other behaviour is
	// installed — revoking the data path is explicit, never implicit.
	OwnsDataPath bool
	// DstBindings lists destination addresses the switchlet holds for
	// its whole lifetime; Uninstall releases them. Addresses a switchlet
	// binds and unbinds dynamically (like the control switchlet's
	// rotating claims) must NOT be declared here — they are the
	// switchlet's own stop logic's responsibility.
	DstBindings []ethernet.MAC
	// Lifecycle names the start/stop/probe/running entry points for
	// upgrade-capable switchlets; zero for passive ones.
	Lifecycle Lifecycle
	// Source is the swl source text, compiled against the node at
	// install time. Exactly one of Source and Object must be set.
	Source string
	// Object is a precompiled switchlet object (the .swo bytes),
	// for code that arrives already compiled. Exactly one of Source and
	// Object must be set.
	Object []byte
}

// Validate checks the manifest's static well-formedness (not its code).
// A manifest carrying a precompiled Object may leave Name empty: the
// object names its own module, and the Manager adopts that name.
func (m Manifest) Validate() error {
	if m.Name == "" && len(m.Object) == 0 {
		return fmt.Errorf("manifest: empty switchlet name")
	}
	if m.Source == "" && len(m.Object) == 0 {
		return fmt.Errorf("manifest %s: neither source nor object provided", m.Name)
	}
	if m.Source != "" && len(m.Object) != 0 {
		return fmt.Errorf("manifest %s: both source and object provided", m.Name)
	}
	for _, c := range m.Capabilities {
		if int(c) >= int(numCapabilities) {
			return fmt.Errorf("manifest %s: unknown capability %d", m.Name, int(c))
		}
	}
	return nil
}

// Grants reports whether the manifest declares capability c.
func (m Manifest) Grants(c Capability) bool {
	for _, g := range m.Capabilities {
		if g == c {
			return true
		}
	}
	return false
}

// Ref renders "name@version" for logs and errors.
func (m Manifest) Ref() string { return m.Name + "@" + m.Version.String() }

// CapabilityNames renders the declared capabilities as their stable
// names, in declaration order — for listings and admin surfaces.
func (m Manifest) CapabilityNames() []string {
	out := make([]string, len(m.Capabilities))
	for i, c := range m.Capabilities {
		out[i] = c.String()
	}
	return out
}
