// Package env builds the restricted execution environment the Active
// Bridge offers to switchlets: the paper's eight modules (§5.2.1). Safestd,
// String and Hashtbl are language-level and live in internal/vm; this
// package provides the node-coupled ones:
//
//   - Log        — logging with a host-controlled sink ("allows us to change
//     the method of logging, to a terminal, to disk, or not at all");
//   - Safeunix   — a heavily thinned Unix module: time functions only;
//   - Func       — the registration glue: a hash table of named functions
//     through which newly loaded switchlets announce themselves and through
//     which switchlets call one another;
//   - Unixnet    — the network port interface (paper Figure 4), adapted to
//     the event-driven runtime: output functions plus port state controls;
//   - Bridge     — the demultiplexer registration points (the paper builds
//     these into its first switchlet; the runtime provides them so that
//     handler replacement — dumb -> learning -> spanning tree — is explicit);
//   - Safethread/Mutex — cooperative threading stubs matching the paper's
//     user-mode Caml threads ("no speedup occurs due to our multiprocessor").
//
// Every module is already thinned: nothing capable of reaching the host
// filesystem, process state, or raw simulator exists in any signature. On
// top of the thinning, each module is gated by a Capability
// (capability.go): a switchlet manifest declares the capabilities its code
// needs, and installation rejects objects importing modules outside the
// grant. The Env interface is the union of the narrow per-capability
// views; each unit builder takes only the view its module wraps.
package env

import (
	"fmt"

	"github.com/switchware/activebridge/internal/ethernet"
	"github.com/switchware/activebridge/internal/vm"
)

// Logger is the CapLog view of the node: switchlet log output routed to
// the host-controlled sink.
type Logger interface {
	// Log emits a log message attributed to switchlet code.
	Log(msg string)
}

// Clock is the CapClock view: virtual time, and nothing else of Unix.
type Clock interface {
	// NowMicros is virtual time in microseconds (gettimeofday).
	NowMicros() int64
}

// NetPorts is the CapNet view: the Figure 4 port interface — frame
// output, port state, and the node identity.
type NetPorts interface {
	// NumPorts returns the number of network ports.
	NumPorts() int
	// Send queues an encoded frame for transmission on a port. ctl marks
	// control-plane traffic (BPDUs) which bypasses port blocking, as
	// 802.1D BPDUs must.
	Send(port int, data string, ctl bool) error
	// PortUp reports whether the port exists and its link is up.
	PortUp(port int) bool
	// SetPortBlock suppresses non-control input and output on a port
	// (the spanning tree's suppression access point).
	SetPortBlock(port int, blocked bool)
	// PortBlocked reports the suppression state.
	PortBlocked(port int) bool
	// BridgeID returns this node's bridge identity as a 6-byte MAC string.
	BridgeID() string
}

// Demux is the CapDemux view: the demultiplexer and timer registration
// points through which a switchlet attaches itself to the data path.
type Demux interface {
	// SetHandler installs fn as the default frame handler
	// (fn : string -> int -> unit receiving (frame, input port)).
	SetHandler(fn vm.Value)
	// BindDst registers fn for frames whose destination address equals
	// m, ahead of the default handler. First bind wins.
	BindDst(m ethernet.MAC, fn vm.Value) error
	// UnbindDst removes a destination registration.
	UnbindDst(m ethernet.MAC)
	// SetTimer (re)installs a named periodic timer with period ms.
	SetTimer(name string, periodMs int64, fn vm.Value)
	// CancelTimer removes a named timer.
	CancelTimer(name string)
	// After schedules a one-shot callback delayMs from now.
	After(delayMs int64, fn vm.Value)
}

// Threads is the CapThreads view: cooperative deferral.
type Threads interface {
	// Spawn queues fn to run as soon as the current invocation finishes
	// (the cooperative Safethread.spawn).
	Spawn(fn vm.Value)
}

// Env is the full capability-scoped surface a bridge offers to switchlet
// code: the union of every per-capability view. internal/bridge.Bridge
// implements it. Which parts a given switchlet can actually reach is
// decided per manifest at install time (CheckImports), not by handing a
// narrower Env — the environment modules are shared per node, the grants
// are per switchlet.
type Env interface {
	Logger
	Clock
	NetPorts
	Demux
	Threads
}

// FuncRegistry is the Func module's table: named string -> string
// functions. The paper: "The register routine simply takes a string as a
// key and a function and enters them into a hash table."
type FuncRegistry struct {
	fns  map[string]vm.Value
	keys []string
}

// NewFuncRegistry creates an empty registry.
func NewFuncRegistry() *FuncRegistry { return &FuncRegistry{fns: map[string]vm.Value{}} }

// Register binds name to fn, replacing any previous binding.
func (r *FuncRegistry) Register(name string, fn vm.Value) {
	if _, ok := r.fns[name]; !ok {
		r.keys = append(r.keys, name)
	}
	r.fns[name] = fn
}

// Unregister removes a binding; it reports whether the name was bound.
// The Manager uses it to retire an uninstalled switchlet's exports.
func (r *FuncRegistry) Unregister(name string) bool {
	if _, ok := r.fns[name]; !ok {
		return false
	}
	delete(r.fns, name)
	for i, k := range r.keys {
		if k == name {
			r.keys = append(r.keys[:i], r.keys[i+1:]...)
			break
		}
	}
	return true
}

// Lookup returns the function bound to name.
func (r *FuncRegistry) Lookup(name string) (vm.Value, bool) {
	fn, ok := r.fns[name]
	return fn, ok
}

// Names lists registered names in registration order.
func (r *FuncRegistry) Names() []string { return append([]string(nil), r.keys...) }

// LogUnit builds the Log module; sink receives each message (nil discards).
func LogUnit(h Logger) (*vm.Signature, map[string]vm.Value) {
	return vm.BuildUnit("Log", []vm.BuiltinDef{
		{Name: "log", Type: "string -> unit", Arity: 1,
			Fn: func(_ *vm.Ctx, a []vm.Value) (vm.Value, error) {
				s, ok := a[0].(string)
				if !ok {
					return nil, &vm.Trap{Msg: "Log.log: not a string"}
				}
				h.Log(s)
				return vm.Unit{}, nil
			}},
	})
}

// SafeunixUnit builds the heavily thinned Safeunix module: "access to some
// time related functions" and nothing else. Both functions cache the last
// boxed result: virtual time is constant within an event, so repeated
// clock reads in one dispatch reuse one boxed int instead of re-boxing a
// large int64 per call (the VM's small-int cache cannot hold timestamps).
func SafeunixUnit(h Clock) (*vm.Signature, map[string]vm.Value) {
	var lastUs, lastS int64 = -1, -1
	var lastUsBox, lastSBox vm.Value
	var boxer vm.IntBoxer
	return vm.BuildUnit("Safeunix", []vm.BuiltinDef{
		{Name: "gettimeofday", Type: "unit -> int", Arity: 1,
			Fn: func(_ *vm.Ctx, _ []vm.Value) (vm.Value, error) {
				if now := h.NowMicros(); now != lastUs {
					lastUs, lastUsBox = now, boxer.Box(now)
				}
				return lastUsBox, nil
			}},
		{Name: "time", Type: "unit -> int", Arity: 1,
			Fn: func(_ *vm.Ctx, _ []vm.Value) (vm.Value, error) {
				if now := h.NowMicros() / 1_000_000; now != lastS {
					lastS, lastSBox = now, boxer.Box(now)
				}
				return lastSBox, nil
			}},
	})
}

// FuncUnit builds the Func module over a registry.
func FuncUnit(reg *FuncRegistry) (*vm.Signature, map[string]vm.Value) {
	return vm.BuildUnit("Func", []vm.BuiltinDef{
		{Name: "register", Type: "string -> (string -> string) -> unit", Arity: 2,
			Fn: func(_ *vm.Ctx, a []vm.Value) (vm.Value, error) {
				name, ok := a[0].(string)
				if !ok {
					return nil, &vm.Trap{Msg: "Func.register: name not a string"}
				}
				reg.Register(name, a[1])
				return vm.Unit{}, nil
			}},
		{Name: "registered", Type: "string -> bool", Arity: 1,
			Fn: func(_ *vm.Ctx, a []vm.Value) (vm.Value, error) {
				name, _ := a[0].(string)
				_, ok := reg.Lookup(name)
				return ok, nil
			}},
		{Name: "call", Type: "string -> string -> string", Arity: 2,
			Fn: func(ctx *vm.Ctx, a []vm.Value) (vm.Value, error) {
				name, _ := a[0].(string)
				fn, ok := reg.Lookup(name)
				if !ok {
					return nil, &vm.Trap{Msg: "Func.call: no function " + name}
				}
				res, err := ctx.Call(fn, a[1])
				if err != nil {
					return nil, err
				}
				if _, ok := res.(string); !ok {
					return nil, &vm.Trap{Msg: "Func.call: " + name + " returned non-string"}
				}
				return res, nil
			}},
	})
}

// UnixnetUnit builds the Unixnet module: the Figure 4 port interface
// adapted to the push-based runtime. Input binding happens through the
// Bridge module's handler registration; output and port control live here.
func UnixnetUnit(h NetPorts) (*vm.Signature, map[string]vm.Value) {
	portArg := func(a []vm.Value, i int) (int, error) {
		p, ok := a[i].(int64)
		if !ok {
			return 0, &vm.Trap{Msg: "Unixnet: port must be an int"}
		}
		if p < 0 || int(p) >= h.NumPorts() {
			return 0, &vm.Trap{Msg: fmt.Sprintf("Unixnet: no such port %d", p)}
		}
		return int(p), nil
	}
	return vm.BuildUnit("Unixnet", []vm.BuiltinDef{
		{Name: "num_ports", Type: "unit -> int", Arity: 1,
			Fn: func(_ *vm.Ctx, _ []vm.Value) (vm.Value, error) {
				return int64(h.NumPorts()), nil
			}},
		{Name: "send_pkt_out", Type: "int -> string -> unit", Arity: 2,
			Fn: func(_ *vm.Ctx, a []vm.Value) (vm.Value, error) {
				p, err := portArg(a, 0)
				if err != nil {
					return nil, err
				}
				data, ok := a[1].(string)
				if !ok {
					return nil, &vm.Trap{Msg: "Unixnet.send_pkt_out: not a string"}
				}
				if err := h.Send(p, data, false); err != nil {
					return nil, &vm.Trap{Msg: err.Error()}
				}
				return vm.Unit{}, nil
			}},
		{Name: "send_ctl_out", Type: "int -> string -> unit", Arity: 2,
			Fn: func(_ *vm.Ctx, a []vm.Value) (vm.Value, error) {
				p, err := portArg(a, 0)
				if err != nil {
					return nil, err
				}
				data, ok := a[1].(string)
				if !ok {
					return nil, &vm.Trap{Msg: "Unixnet.send_ctl_out: not a string"}
				}
				if err := h.Send(p, data, true); err != nil {
					return nil, &vm.Trap{Msg: err.Error()}
				}
				return vm.Unit{}, nil
			}},
		{Name: "port_up", Type: "int -> bool", Arity: 1,
			Fn: func(_ *vm.Ctx, a []vm.Value) (vm.Value, error) {
				p, err := portArg(a, 0)
				if err != nil {
					return nil, err
				}
				return h.PortUp(p), nil
			}},
		{Name: "set_port_block", Type: "int -> bool -> unit", Arity: 2,
			Fn: func(_ *vm.Ctx, a []vm.Value) (vm.Value, error) {
				p, err := portArg(a, 0)
				if err != nil {
					return nil, err
				}
				b, ok := a[1].(bool)
				if !ok {
					return nil, &vm.Trap{Msg: "Unixnet.set_port_block: not a bool"}
				}
				h.SetPortBlock(p, b)
				return vm.Unit{}, nil
			}},
		{Name: "port_blocked", Type: "int -> bool", Arity: 1,
			Fn: func(_ *vm.Ctx, a []vm.Value) (vm.Value, error) {
				p, err := portArg(a, 0)
				if err != nil {
					return nil, err
				}
				return h.PortBlocked(p), nil
			}},
		{Name: "bridge_id", Type: "unit -> string", Arity: 1,
			Fn: func(_ *vm.Ctx, _ []vm.Value) (vm.Value, error) {
				return h.BridgeID(), nil
			}},
	})
}

// macArg converts a 6-byte swl string to a typed address.
func macArg(v vm.Value, who string) (ethernet.MAC, error) {
	s, ok := v.(string)
	if !ok || len(s) != 6 {
		return ethernet.MAC{}, &vm.Trap{Msg: who + ": MAC must be a 6-byte string"}
	}
	var m ethernet.MAC
	copy(m[:], s)
	return m, nil
}

// BridgeUnit builds the Bridge module: the demultiplexer and timer
// registration points through which switchlets attach themselves.
func BridgeUnit(h Demux) (*vm.Signature, map[string]vm.Value) {
	return vm.BuildUnit("Bridge", []vm.BuiltinDef{
		{Name: "set_handler", Type: "(string -> int -> unit) -> unit", Arity: 1,
			Fn: func(_ *vm.Ctx, a []vm.Value) (vm.Value, error) {
				h.SetHandler(a[0])
				return vm.Unit{}, nil
			}},
		{Name: "set_dst_handler", Type: "string -> (string -> int -> unit) -> unit", Arity: 2,
			Fn: func(_ *vm.Ctx, a []vm.Value) (vm.Value, error) {
				m, err := macArg(a[0], "Bridge.set_dst_handler")
				if err != nil {
					return nil, err
				}
				if err := h.BindDst(m, a[1]); err != nil {
					return nil, &vm.Trap{Msg: err.Error()}
				}
				return vm.Unit{}, nil
			}},
		{Name: "clear_dst_handler", Type: "string -> unit", Arity: 1,
			Fn: func(_ *vm.Ctx, a []vm.Value) (vm.Value, error) {
				m, err := macArg(a[0], "Bridge.clear_dst_handler")
				if err != nil {
					return nil, err
				}
				h.UnbindDst(m)
				return vm.Unit{}, nil
			}},
		{Name: "set_timer", Type: "string -> int -> (unit -> unit) -> unit", Arity: 3,
			Fn: func(_ *vm.Ctx, a []vm.Value) (vm.Value, error) {
				name, ok := a[0].(string)
				period, ok2 := a[1].(int64)
				if !ok || !ok2 || period <= 0 {
					return nil, &vm.Trap{Msg: "Bridge.set_timer: bad arguments"}
				}
				h.SetTimer(name, period, a[2])
				return vm.Unit{}, nil
			}},
		{Name: "cancel_timer", Type: "string -> unit", Arity: 1,
			Fn: func(_ *vm.Ctx, a []vm.Value) (vm.Value, error) {
				name, _ := a[0].(string)
				h.CancelTimer(name)
				return vm.Unit{}, nil
			}},
		{Name: "after", Type: "int -> (unit -> unit) -> unit", Arity: 2,
			Fn: func(_ *vm.Ctx, a []vm.Value) (vm.Value, error) {
				delay, ok := a[0].(int64)
				if !ok || delay < 0 {
					return nil, &vm.Trap{Msg: "Bridge.after: bad delay"}
				}
				h.After(delay, a[1])
				return vm.Unit{}, nil
			}},
	})
}

// SafethreadUnit builds the cooperative threading module. spawn defers a
// thunk to run after the current invocation; yield is a no-op (the
// scheduler is non-preemptive, like the paper's user-mode Caml threads).
func SafethreadUnit(h Threads) (*vm.Signature, map[string]vm.Value) {
	return vm.BuildUnit("Safethread", []vm.BuiltinDef{
		{Name: "spawn", Type: "(unit -> unit) -> unit", Arity: 1,
			Fn: func(_ *vm.Ctx, a []vm.Value) (vm.Value, error) {
				h.Spawn(a[0])
				return vm.Unit{}, nil
			}},
		{Name: "yield", Type: "unit -> unit", Arity: 1,
			Fn: func(_ *vm.Ctx, _ []vm.Value) (vm.Value, error) {
				return vm.Unit{}, nil
			}},
	})
}

// MutexUnit builds the Mutex module. In a cooperative single-threaded
// world a mutex is an assertion: double-locking traps, exposing a switchlet
// bug instead of deadlocking the node.
func MutexUnit() (*vm.Signature, map[string]vm.Value) {
	return vm.BuildUnit("Mutex", []vm.BuiltinDef{
		{Name: "create", Type: "unit -> (bool) ref", Arity: 1,
			Fn: func(_ *vm.Ctx, _ []vm.Value) (vm.Value, error) {
				return &vm.Ref{V: false}, nil
			}},
		{Name: "lock", Type: "(bool) ref -> unit", Arity: 1,
			Fn: func(_ *vm.Ctx, a []vm.Value) (vm.Value, error) {
				r, ok := a[0].(*vm.Ref)
				if !ok {
					return nil, &vm.Trap{Msg: "Mutex.lock: not a mutex"}
				}
				if locked, _ := r.V.(bool); locked {
					return nil, &vm.Trap{Msg: "Mutex.lock: already locked (cooperative deadlock)"}
				}
				r.V = true
				return vm.Unit{}, nil
			}},
		{Name: "unlock", Type: "(bool) ref -> unit", Arity: 1,
			Fn: func(_ *vm.Ctx, a []vm.Value) (vm.Value, error) {
				r, ok := a[0].(*vm.Ref)
				if !ok {
					return nil, &vm.Trap{Msg: "Mutex.unlock: not a mutex"}
				}
				r.V = false
				return vm.Unit{}, nil
			}},
	})
}

// Install adds the full switchlet environment (beyond the vm standard
// units) to a loader: Log, Safeunix, Func, Unixnet, Bridge, Safethread,
// Mutex. The units are shared per node; per-switchlet access is governed
// by manifest capabilities, checked against each object's imports at
// install time.
func Install(l *vm.Loader, e Env, reg *FuncRegistry) error {
	units := []func() (*vm.Signature, map[string]vm.Value){
		func() (*vm.Signature, map[string]vm.Value) { return LogUnit(e) },
		func() (*vm.Signature, map[string]vm.Value) { return SafeunixUnit(e) },
		func() (*vm.Signature, map[string]vm.Value) { return FuncUnit(reg) },
		func() (*vm.Signature, map[string]vm.Value) { return UnixnetUnit(e) },
		func() (*vm.Signature, map[string]vm.Value) { return BridgeUnit(e) },
		func() (*vm.Signature, map[string]vm.Value) { return SafethreadUnit(e) },
		MutexUnit,
	}
	for _, u := range units {
		sig, vals := u()
		if err := l.AddUnit(sig, vals); err != nil {
			return err
		}
	}
	return nil
}
