package topo

import (
	"strconv"
	"time"

	"github.com/switchware/activebridge/internal/metrics"
	"github.com/switchware/activebridge/internal/netsim"
)

// EnableMetrics builds the net's telemetry registry: per-shard engine
// gauges, every bridge's counters (labeled with net/bridge/shard
// identity from the build plan), and a publish hook at the engine's
// quiescent points. The registry is attached to metrics.DefaultHub so a
// process-wide endpoint (abbench -metrics-addr, activebridge.ServeMetrics)
// serves it with no further wiring. Idempotent; returns the registry.
//
// Build calls this automatically when the process-wide metrics plane is
// enabled (metrics.Enable); embedders may also call it directly on one
// net. Enabling metrics never changes a virtual-time output: all
// instruments are quiescent-point samplers over state the simulation
// already keeps.
func (n *Net) EnableMetrics() *metrics.Registry {
	if n.metricsReg != nil {
		return n.metricsReg
	}
	reg := metrics.NewRegistry(n.Graph.Name)
	base := metrics.Labels{{Name: "net", Value: n.Graph.Name}}

	if n.coord != nil {
		c := n.coord
		reg.SampleGauge("ab_engine_shards", "shard engines this net runs on", base,
			func() float64 { return float64(c.Shards()) })
		reg.SampleCounter("ab_engine_quiesce_total", "quiescent points reached by the engine", base,
			func() float64 { return float64(c.Quiesces()) })
		for i := 0; i < c.Shards(); i++ {
			i := i
			ls := base.With("shard", strconv.Itoa(i))
			// One ShardStats observation per shard per publish: the
			// samplers run single-threaded at quiescence, so a cache
			// keyed on the quiesce count shares the mutex-and-port scan
			// across the four gauges that read it.
			var cached netsim.ShardStats
			cachedAt := ^uint64(0)
			stats := func() netsim.ShardStats {
				if q := c.Quiesces(); q != cachedAt {
					cached, cachedAt = c.ShardStats(i), q
				}
				return cached
			}
			reg.SampleGauge("ab_shard_clock_seconds", "engine virtual clock (aligned at quiescence)", ls,
				func() float64 { return c.Shard(i).Now().Seconds() })
			reg.SampleCounter("ab_shard_events_total", "events executed by the engine", ls,
				func() float64 { return float64(c.Shard(i).Executed()) })
			reg.SampleGauge("ab_shard_events_per_second", "wall-clock event rate since the previous publish", ls,
				eventsPerSecond(func() uint64 { return c.Shard(i).Executed() }))
			reg.SampleGauge("ab_shard_heap_depth", "events pending in the engine's heap", ls,
				func() float64 { return float64(stats().HeapDepth) })
			reg.SampleGauge("ab_shard_last_event_age_ns", "virtual time since the shard's last executed event at quiescence (includes idleness)", ls,
				func() float64 { return float64(stats().LastEventAge) })
			reg.SampleGauge("ab_shard_mailbox_backlog", "cross-shard messages queued toward the shard", ls,
				func() float64 { return float64(stats().MailboxBacklog) })
			reg.SampleGauge("ab_shard_port_backlog", "frames queued in remote-NIC proxies the shard owns", ls,
				func() float64 { return float64(stats().PortBacklog) })
		}
	} else {
		sim := n.Sim
		ls := base.With("shard", "0")
		reg.SampleGauge("ab_engine_shards", "shard engines this net runs on", base,
			func() float64 { return 1 })
		// Serial engines quiesce too (each Run end); count them here so
		// the family exists at any shard count. The hook registers
		// before reg.Publish below, so the count a publish samples
		// already includes the point being published — matching the
		// coordinator, which increments before its quiesce callbacks.
		var quiesces uint64
		sim.OnQuiesce(func() { quiesces++ })
		reg.SampleCounter("ab_engine_quiesce_total", "quiescent points reached by the engine", base,
			func() float64 { return float64(quiesces) })
		// Help texts match the sharded branch exactly: the hub serves
		// one HELP line per family, whichever net registered it.
		reg.SampleGauge("ab_shard_clock_seconds", "engine virtual clock (aligned at quiescence)", ls,
			func() float64 { return sim.Now().Seconds() })
		reg.SampleCounter("ab_shard_events_total", "events executed by the engine", ls,
			func() float64 { return float64(sim.Executed()) })
		reg.SampleGauge("ab_shard_events_per_second", "wall-clock event rate since the previous publish", ls,
			eventsPerSecond(sim.Executed))
		reg.SampleGauge("ab_shard_heap_depth", "events pending in the engine's heap", ls,
			func() float64 { return float64(sim.QueueLen()) })
	}

	for i, b := range n.bridges {
		shard := 0
		if n.Plan != nil {
			shard = n.Plan.BridgeShard(BridgeID(i))
		}
		b.Instrument(reg, base.
			With("bridge", b.Name).
			With("shard", strconv.Itoa(shard)))
	}

	// Per-segment fault counters exist only when a fault plan was
	// applied: a clean net has nothing to count and keeps its scrape
	// output identical to the pre-fault plane.
	if n.faultPlan != nil {
		for _, seg := range n.segments {
			seg := seg
			ls := base.With("segment", seg.Name)
			reg.SampleCounter("ab_fault_dropped_frames_total", "frames destroyed on the segment by the fault plane", ls,
				func() float64 { return float64(seg.FaultDrops) })
			reg.SampleCounter("ab_fault_corrupted_frames_total", "frames delivered corrupt and discarded by receivers", ls,
				func() float64 { return float64(seg.FaultCorrupts) })
			reg.SampleCounter("ab_fault_duplicated_frames_total", "duplicate deliveries injected on the segment", ls,
				func() float64 { return float64(seg.FaultDups) })
			reg.SampleGauge("ab_fault_segment_down", "1 while the segment's medium is cut", ls,
				func() float64 {
					if seg.Down() {
						return 1
					}
					return 0
				})
		}
	}

	// Publish at every quiescent point (serial Run end / coordinator
	// quiescence), and once now so a scraper arriving before the first
	// Run sees the registered series instead of an empty document.
	n.Sim.OnQuiesce(reg.Publish)
	reg.Publish()
	metrics.DefaultHub.Attach(reg)
	n.metricsReg = reg
	if n.tracer != nil {
		n.instrumentTracer(reg, n.tracer)
	}
	return reg
}

// Metrics returns the net's telemetry registry, or nil when metrics
// were never enabled for this net. Scenario code uses it to instrument
// workloads it creates after Build:
//
//	if reg := net.Metrics(); reg != nil {
//	    stream.Instrument(reg, metrics.Labels{{Name: "net", Value: "x"}, {Name: "flow", Value: "ttcp0"}})
//	}
func (n *Net) Metrics() *metrics.Registry { return n.metricsReg }

// eventsPerSecond builds a stateful sampler: the wall-clock rate of the
// executed counter between consecutive publishes. The value is a
// wall-clock observation (the only deliberately non-deterministic
// instrument), visible only through the metrics plane.
func eventsPerSecond(executed func() uint64) func() float64 {
	var lastEv uint64
	var lastWall time.Time
	return func() float64 {
		now := time.Now() //ab:wallclock-ok the one deliberately wall-clock instrument, visible only via the metrics plane
		ev := executed()
		var rate float64
		if !lastWall.IsZero() {
			if dt := now.Sub(lastWall).Seconds(); dt > 0 {
				rate = float64(ev-lastEv) / dt
			}
		}
		lastEv, lastWall = ev, now
		return rate
	}
}
