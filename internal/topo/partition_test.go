package topo_test

import (
	"fmt"
	"testing"

	"github.com/switchware/activebridge/internal/netsim"
	"github.com/switchware/activebridge/internal/topo"
	"github.com/switchware/activebridge/internal/workload"
)

// chainGraph declares a Chain16-style net: nBridges learning bridges in a
// line with a host on each end, the closed-loop ttcp pair declared
// affine.
func chainGraph(nBridges, shards int) (*topo.Graph, topo.HostID, topo.HostID) {
	g := topo.New(fmt.Sprintf("chain%d", nBridges))
	segs := make([]topo.SegmentID, nBridges+1)
	for i := range segs {
		segs[i] = g.AddSegment(fmt.Sprintf("s%d", i))
	}
	h1 := g.AddHost("")
	h2 := g.AddHost("")
	for i := 0; i < nBridges; i++ {
		b := g.AddBridge("", topo.LearningBridge, 2)
		g.Link(b, segs[i])
		g.Link(b, segs[i+1])
	}
	g.Link(h1, segs[0])
	g.Link(h2, segs[nBridges])
	g.Affine(h1, h2)
	if shards > 0 {
		g.Shards(shards)
	}
	return g, h1, h2
}

// driveChain warms the path, pings, and streams — the same moves as the
// registered chain scenario — and returns the net fingerprint plus the
// headline workload metrics.
func driveChain(t *testing.T, g *topo.Graph, h1, h2 topo.HostID) (string, float64, netsim.Duration) {
	t.Helper()
	net, err := g.Build(netsim.DefaultCostModel())
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	net.Warm(h1, h2)
	p := workload.NewPinger(net.Host(h1), net.Host(h2).IP, 64, 3)
	p.Run(net.Sim.Now() + netsim.Time(30*netsim.Second))
	tr := workload.NewTtcp(net.Host(h1), net.Host(h2), 8192, 256<<10)
	tr.Run(net.Sim.Now() + netsim.Time(120*netsim.Second))
	if !tr.Done() {
		t.Fatalf("transfer incomplete on %s", g.Name)
	}
	return net.Fingerprint(), tr.ThroughputMbps(), p.MeanRTT()
}

// TestShardedChainMatchesSerial is the end-to-end identity check at the
// topology layer: the same declared net, driven by the same workloads,
// must produce a byte-identical fingerprint and identical workload
// metrics at 1, 2 and 4 shards.
func TestShardedChainMatchesSerial(t *testing.T) {
	g0, a0, b0 := chainGraph(16, 0)
	fp0, mbps0, rtt0 := driveChain(t, g0, a0, b0)
	for _, shards := range []int{2, 4} {
		g, a, b := chainGraph(16, shards)
		net, err := g.Build(netsim.DefaultCostModel())
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		if net.Shards() != shards {
			t.Fatalf("expected %d shards, got %d", shards, net.Shards())
		}
		g, a, b = chainGraph(16, shards)
		fp, mbps, rtt := driveChain(t, g, a, b)
		if fp != fp0 {
			t.Errorf("shards=%d fingerprint deviates:\n got %s\nwant %s", shards, fp, fp0)
		}
		if mbps != mbps0 || rtt != rtt0 {
			t.Errorf("shards=%d metrics deviate: mbps %v vs %v, rtt %v vs %v", shards, mbps, mbps0, rtt, rtt0)
		}
	}
}

// TestPartitionProperties pins the partitioner's contract: affinity is
// honored, every shard is populated, segment owners are the minimum
// attached shard, and tiny graphs refuse to shard.
func TestPartitionProperties(t *testing.T) {
	g, h1, h2 := chainGraph(16, 0)
	plan, ok := topo.Partition(g, 4)
	if !ok {
		t.Fatal("chain16 should partition at 4 shards")
	}
	if plan.Shards != 4 {
		t.Fatalf("want 4 shards, got %d", plan.Shards)
	}
	if plan.HostShard(h1) != plan.HostShard(h2) {
		t.Fatalf("affine hosts split: %d vs %d", plan.HostShard(h1), plan.HostShard(h2))
	}
	if cuts := plan.Cuts(g); cuts < 3 || cuts > 8 {
		t.Fatalf("implausible cut count for a 4-way chain: %d", cuts)
	}

	// Paper-scale graph: two hosts and one bridge must stay serial.
	small := topo.New("small")
	lan1, lan2 := small.AddSegment(""), small.AddSegment("")
	sh1, sh2 := small.AddHost(""), small.AddHost("")
	sb := small.AddBridge("", topo.LearningBridge, 2)
	small.Link(sh1, lan1)
	small.Link(sb, lan1)
	small.Link(sh2, lan2)
	small.Link(sb, lan2)
	if _, ok := topo.Partition(small, 4); ok {
		t.Fatal("a 3-node net must not shard")
	}
}
