package topo

// Graph partitioning for the sharded conservative engine
// (netsim.Coordinator): assign every declared node to exactly one shard so
// that the simulation's event load spreads across cores while the cut —
// the set of segments whose attachments span shards — stays small and
// falls on high-latency links, which is what gives the conservative
// synchronization its lookahead.

// DefaultShards is the shard count Build uses when the graph does not
// set one explicitly with Graph.Shards. It is read once per Build; set
// it before running scenarios (cmd/abbench -shards, the scenario
// runner's sharded entry points) and do not mutate it concurrently with
// builds. The value 0 or 1 means serial.
var DefaultShards = 1

// minShardWeight is the minimum modelled work (see nodeWeight) a shard
// must carry for sharding to pay for its synchronization: graphs below
// 2*minShardWeight always build serial, and larger graphs get at most
// totalWeight/minShardWeight shards. Paper-scale nets (a handful of
// nodes) therefore run on the exact serial engine, and only genuinely
// large fabrics cross into sharded execution.
const minShardWeight = 8

// Shards requests that Build partition this graph across n shard engines
// (subject to Partition's feasibility rules; n <= 1 forces serial). The
// default comes from DefaultShards.
func (g *Graph) Shards(n int) {
	g.shardsReq = n
	g.shardsSet = true
}

// Affine declares that two nodes must land in the same shard. Use it for
// endpoints coupled outside the simulated network — above all the two
// hosts of a closed-loop workload.Ttcp stream, whose receiver releases
// the sender's next segment directly (the unmodelled ACK channel) rather
// than through frames on the wire. The partitioner honors affinity
// before balance.
func (g *Graph) Affine(a, b Node) {
	if a == nil || b == nil {
		g.fail("Affine: nil node")
		return
	}
	g.affine = append(g.affine, [2]nodeRef{a.ref(), b.ref()})
}

// Plan is a computed shard assignment: one shard index per declared node
// and an owner shard per segment (the lowest shard among its
// attachments, where the segment's contended medium state lives).
type Plan struct {
	// Shards is the number of shard engines the plan uses (always >= 2).
	Shards int

	hostShard     []int
	bridgeShard   []int
	repeaterShard []int
	tapShard      []int
	segOwner      []int
}

// HostShard reports a host's assigned shard.
func (p *Plan) HostShard(id HostID) int { return p.hostShard[id] }

// BridgeShard reports a bridge's assigned shard.
func (p *Plan) BridgeShard(id BridgeID) int { return p.bridgeShard[id] }

// SegmentOwner reports the shard a segment lives in.
func (p *Plan) SegmentOwner(id SegmentID) int { return p.segOwner[id] }

// Cuts reports how many segments the plan cuts (attachments in more than
// one shard).
func (p *Plan) Cuts(g *Graph) int {
	cuts := 0
	for si := range g.segments {
		owner := p.segOwner[si]
		for _, l := range g.links {
			if int(l.seg) == si && p.nodeShard(l.node) != owner {
				cuts++
				break
			}
		}
	}
	return cuts
}

func (p *Plan) nodeShard(r nodeRef) int {
	switch r.kind {
	case nodeHost:
		return p.hostShard[r.idx]
	case nodeBridge:
		return p.bridgeShard[r.idx]
	case nodeRepeater:
		return p.repeaterShard[r.idx]
	default:
		return p.tapShard[r.idx]
	}
}

// nodeWeight models a node's relative event-processing cost: an
// interpreted bridge dominates (VM dispatch per frame), a repeater pays
// only kernel crossings, and hosts and taps are endpoints.
func nodeWeight(r nodeRef, g *Graph) int {
	switch r.kind {
	case nodeBridge:
		return 4
	case nodeRepeater:
		return 2
	default:
		return 1
	}
}

// Partition computes a deterministic shard assignment of the graph's
// nodes onto up to shards shard engines, or reports ok=false when the
// graph should build serial (too small to pay for synchronization, a
// single shard requested, or no balanced cut exists).
//
// The heuristic works in three steps:
//
//  1. Affinity groups (Graph.Affine) are contracted into supernodes, so
//     workload-coupled endpoints can never be separated.
//  2. Nodes are ordered by a depth-first preorder traversal over the
//     node–segment incidence graph from the first declared node, which
//     makes topologically adjacent nodes adjacent in the order (a chain
//     yields its own path order; a tree yields contiguous subtrees).
//  3. The traversal order is split into contiguous weight-balanced chunks, one
//     per shard. Chunk boundaries are then locally adjusted to prefer
//     cutting few segments with long wire latency (propagation + minimum
//     frame time): the cut's lookahead is exactly what lets shard clocks
//     pipeline, so high-latency links make the cheapest cuts.
//
// The result is a pure function of the graph declaration — the same
// graph partitions the same way on every machine and every run.
func Partition(g *Graph, shards int) (*Plan, bool) {
	n := len(g.hosts) + len(g.bridges) + len(g.repeaters) + len(g.taps)
	if shards <= 1 || n == 0 {
		return nil, false
	}

	// Canonical node indexing: bridges, repeaters, hosts, taps, each in
	// declaration order (the backbone first, so BFS starts on it).
	refs := make([]nodeRef, 0, n)
	for i := range g.bridges {
		refs = append(refs, nodeRef{nodeBridge, i})
	}
	for i := range g.repeaters {
		refs = append(refs, nodeRef{nodeRepeater, i})
	}
	for i := range g.hosts {
		refs = append(refs, nodeRef{nodeHost, i})
	}
	for i := range g.taps {
		refs = append(refs, nodeRef{nodeTap, i})
	}
	index := map[nodeRef]int{}
	total := 0
	for i, r := range refs {
		index[r] = i
		total += nodeWeight(r, g)
	}

	eff := shards
	if max := total / minShardWeight; eff > max {
		eff = max
	}
	if eff < 2 {
		return nil, false
	}

	// Affinity union-find.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, pair := range g.affine {
		a, aok := index[pair[0]]
		b, bok := index[pair[1]]
		if aok && bok {
			parent[find(a)] = find(b)
		}
	}

	// Incidence lists from the declared links.
	nodeSegs := make([][]int, n)
	segNodes := make([][]int, len(g.segments))
	for _, l := range g.links {
		ni := index[l.node]
		nodeSegs[ni] = append(nodeSegs[ni], int(l.seg))
		segNodes[l.seg] = append(segNodes[l.seg], ni)
	}

	// Depth-first preorder over the incidence graph: a chain yields its
	// own path order, and a tree keeps every subtree — an edge bridge and
	// its hosts, a pod and its leaves — contiguous, so balanced chunks
	// cut trunks rather than scattering leaves away from their switch.
	order := make([]int, 0, n)
	seen := make([]bool, n)
	stack := make([]int, 0, n)
	for start := 0; start < n; start++ {
		if seen[start] {
			continue
		}
		seen[start] = true
		stack = append(stack[:0], start)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			order = append(order, v)
			// Push neighbors in reverse declaration order so they are
			// visited in declaration order.
			for si := len(nodeSegs[v]) - 1; si >= 0; si-- {
				nodes := segNodes[nodeSegs[v][si]]
				for wi := len(nodes) - 1; wi >= 0; wi-- {
					if w := nodes[wi]; !seen[w] {
						seen[w] = true
						stack = append(stack, w)
					}
				}
			}
		}
	}

	// Contiguous weight-balanced chunking of the BFS order. Each of the
	// eff-1 boundaries starts at its weight-balanced position and then
	// slides within a small window to the position whose crossing
	// segments have the highest wire latency (equivalently, the lowest
	// sum of inverse latencies): those latencies become the cut
	// lookahead, so long links make the cheapest cuts.
	pos := make([]int, n)
	for i, v := range order {
		pos[v] = i
	}
	segMin := make([]int, len(g.segments))
	segMax := make([]int, len(g.segments))
	for si := range g.segments {
		segMin[si], segMax[si] = n, -1
		for _, ni := range segNodes[si] {
			if p := pos[ni]; p < segMin[si] {
				segMin[si] = p
			}
			if p := pos[ni]; p > segMax[si] {
				segMax[si] = p
			}
		}
	}
	cutScore := func(p int) float64 {
		score := 0.0
		for si := range g.segments {
			if segMin[si] < p && p <= segMax[si] {
				score += 1.0 / float64(g.segments[si].latencyNs())
			}
		}
		return score
	}
	prefix := make([]int, n+1)
	for i, v := range order {
		prefix[i+1] = prefix[i] + nodeWeight(refs[v], g)
	}
	// The boundary may slide up to ~1/8 of a chunk away from perfect
	// balance to find a better cut — wide enough to reach a pod or
	// subtree boundary (where only long trunks cross) instead of slicing
	// through a leaf LAN.
	window := n / (8 * eff)
	if window < 2 {
		window = 2
	}
	boundaries := make([]int, 0, eff-1)
	prev := 0
	for k := 1; k < eff; k++ {
		ideal := prev + 1
		want := k * total / eff
		for ideal < n && prefix[ideal] < want {
			ideal++
		}
		best, bestScore := -1, 0.0
		for p := ideal - window; p <= ideal+window; p++ {
			if p <= prev || p >= n-(eff-1-k) {
				continue
			}
			if s := cutScore(p); best == -1 || s < bestScore {
				best, bestScore = p, s
			}
		}
		if best == -1 {
			return nil, false // no room for a boundary: graph too small
		}
		boundaries = append(boundaries, best)
		prev = best
	}

	// Assign by chunk, with affinity groups pinned to the shard of their
	// first member in BFS order.
	assign := make([]int, n)
	groupShard := map[int]int{}
	shardWeight := make([]int, eff)
	for i, v := range order {
		s := 0
		for _, b := range boundaries {
			if i >= b {
				s++
			}
		}
		root := find(v)
		if pinnedS, pinned := groupShard[root]; pinned {
			s = pinnedS
		} else {
			groupShard[root] = s
		}
		assign[v] = s
		shardWeight[s] += nodeWeight(refs[v], g)
	}
	for _, w := range shardWeight {
		if w == 0 {
			// Affinity pinning starved a shard; retry with one fewer.
			return Partition(g, eff-1)
		}
	}

	plan := &Plan{
		Shards:        eff,
		hostShard:     make([]int, len(g.hosts)),
		bridgeShard:   make([]int, len(g.bridges)),
		repeaterShard: make([]int, len(g.repeaters)),
		tapShard:      make([]int, len(g.taps)),
		segOwner:      make([]int, len(g.segments)),
	}
	for i, r := range refs {
		switch r.kind {
		case nodeHost:
			plan.hostShard[r.idx] = assign[i]
		case nodeBridge:
			plan.bridgeShard[r.idx] = assign[i]
		case nodeRepeater:
			plan.repeaterShard[r.idx] = assign[i]
		case nodeTap:
			plan.tapShard[r.idx] = assign[i]
		}
	}
	// A segment lives in the lowest shard among its attachments, so the
	// zero-lookahead transmit direction of every cut always points from a
	// higher shard to a lower one (acyclic constraint graph). An unlinked
	// segment defaults to shard 0.
	for si := range g.segments {
		owner := 0
		if len(segNodes[si]) > 0 {
			owner = plan.Shards
			for _, ni := range segNodes[si] {
				if s := assign[ni]; s < owner {
					owner = s
				}
			}
		}
		plan.segOwner[si] = owner
	}
	return plan, true
}
