package topo

import (
	"github.com/switchware/activebridge/internal/metrics"
	"github.com/switchware/activebridge/internal/tracing"
)

// EnableTracing builds the net's causal tracing plane: one trace engine
// per shard engine (plus the coordinator's control engine, which runs
// fault-plane and barrier work), merged into a single virtual-time
// transcript at every quiescent point. The tracer is attached to
// tracing.DefaultHub so a process-wide exporter (abbench -trace,
// activebridge.WriteTrace) can drain it with no further wiring.
// Idempotent; returns the tracer.
//
// Build calls this automatically when the process-wide tracing plane is
// enabled (tracing.Enable); embedders may also call it directly on one
// net. Tracing never changes a virtual-time output: events are observed
// at emission and merged at quiescent points, so the simulated behaviour
// — every golden transcript — is byte-identical with the plane on or
// off, at any shard count.
func (n *Net) EnableTracing(cfg tracing.Config) *tracing.Tracer {
	if n.tracer != nil {
		return n.tracer
	}
	tr := tracing.New(cfg)
	if n.coord != nil {
		for i := 0; i < n.coord.Shards(); i++ {
			n.coord.Shard(i).SetTraceEngine(tr.Engine(i))
		}
		// The control engine's events (crash/restart marks, fault
		// flips) land in their own engine batch; its quiescent-point
		// windows partition virtual time exactly like the shards'.
		n.coord.Control().SetTraceEngine(tr.Engine(n.coord.Shards()))
	} else {
		n.Sim.SetTraceEngine(tr.Engine(0))
	}
	n.Sim.OnQuiesce(tr.Flush)
	if n.metricsReg != nil {
		n.instrumentTracer(n.metricsReg, tr)
	}
	tracing.DefaultHub.Attach(tr)
	n.tracer = tr
	return tr
}

// Tracer returns the net's trace plane, or nil when tracing was never
// enabled for this net.
func (n *Net) Tracer() *tracing.Tracer { return n.tracer }

// instrumentTracer registers the ab_trace_* instruments into the net's
// metrics registry; called from whichever of EnableMetrics/EnableTracing
// runs second (both planes are opt-in and order-independent).
func (n *Net) instrumentTracer(reg *metrics.Registry, tr *tracing.Tracer) {
	base := metrics.Labels{{Name: "net", Value: n.Graph.Name}}
	reg.SampleCounter("ab_trace_events_total", "events in the merged sampled transcript", base,
		func() float64 { return float64(len(tr.Transcript())) })
	reg.SampleCounter("ab_trace_spans_total", "span events (dur > 0) in the merged transcript", base,
		func() float64 { return float64(tr.Spans()) })
	reg.SampleCounter("ab_trace_dropped_events_total", "sampled events discarded by the transcript cap", base,
		func() float64 { return float64(tr.Dropped()) })
	reg.SampleCounter("ab_trace_flight_dumps_total", "flight-recorder dumps triggered by traps, rejections, rollbacks, crashes and invariant violations", base,
		func() float64 { return float64(tr.DumpCount()) })
	// Span-derived latency distribution: per-frame VM execution spans in
	// virtual nanoseconds, observed as each quiescent merge drains them.
	tr.SetVMHist(reg.Histogram("ab_trace_vm_exec_ns", "virtual-time VM execution span durations (ns)", base,
		[]float64{100, 300, 1e3, 3e3, 1e4, 3e4, 1e5, 3e5, 1e6, 3e6, 1e7}))
}
