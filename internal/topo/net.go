package topo

import (
	"fmt"
	"strings"

	"github.com/switchware/activebridge/internal/baseline"
	"github.com/switchware/activebridge/internal/bridge"
	"github.com/switchware/activebridge/internal/fault"
	"github.com/switchware/activebridge/internal/metrics"
	"github.com/switchware/activebridge/internal/netsim"
	"github.com/switchware/activebridge/internal/tracing"
	"github.com/switchware/activebridge/internal/workload"
)

// Net is a materialized topology: one deterministic simulation plus
// typed handles onto every declared node. A serial Net owns its Sim
// exclusively and is single-threaded; independent Nets share no mutable
// state, which is what lets scenarios run in parallel across cores. A
// sharded Net (Graph.Shards / DefaultShards > 1 and a feasible
// partition) spreads its nodes across shard engines under a
// netsim.Coordinator; Sim is then the coordinator's control engine, and
// driving it (Run, Schedule, the workload helpers) behaves exactly like
// the serial engine — scheduled closures run at global barriers and may
// touch any node.
type Net struct {
	Sim  *netsim.Sim
	Cost netsim.CostModel
	// Graph is the declaration this net was built from.
	Graph *Graph
	// Plan is the shard assignment, nil for a serial build.
	Plan *Plan

	coord *netsim.Coordinator

	// metricsReg is the telemetry registry, non-nil once EnableMetrics
	// ran (see metrics.go).
	metricsReg *metrics.Registry

	// tracer is the causal tracing plane, non-nil once EnableTracing
	// ran (see tracing.go).
	tracer *tracing.Tracer

	// faultPlan is the fault schedule the net was built with (see
	// fault.go), nil for a clean build.
	faultPlan *fault.Plan

	hosts     []*workload.Host
	bridges   []*bridge.Bridge
	repeaters []*baseline.Repeater
	taps      []*netsim.NIC
	segments  []*netsim.Segment
}

// Shards reports how many shard engines the net runs on (1 for serial).
func (n *Net) Shards() int {
	if n.Plan == nil {
		return 1
	}
	return n.Plan.Shards
}

// shardedLogs buffers per-bridge switchlet log lines during sharded
// execution (each bridge appends single-threaded from its own shard) and
// flushes them to the user sinks at quiescent points, ordered by (time,
// bridge declaration index, per-bridge sequence). The flush order equals
// serial execution order except for lines logged by different bridges at
// the exact same nanosecond.
type shardedLogs struct {
	bridges []*bridgeLog
}

type bridgeLog struct {
	idx     int
	sink    func(at netsim.Time, bridge, msg string)
	entries []logEntry
}

type logEntry struct {
	at     netsim.Time
	bridge string
	msg    string
}

func (l *shardedLogs) sinkFor(idx int, sink func(at netsim.Time, bridge, msg string)) func(at netsim.Time, bridge, msg string) {
	bl := &bridgeLog{idx: idx, sink: sink}
	l.bridges = append(l.bridges, bl)
	return func(at netsim.Time, bridge, msg string) {
		bl.entries = append(bl.entries, logEntry{at: at, bridge: bridge, msg: msg})
	}
}

func (l *shardedLogs) flush() {
	for {
		var best *bridgeLog
		for _, bl := range l.bridges {
			if len(bl.entries) == 0 {
				continue
			}
			if best == nil || bl.entries[0].at < best.entries[0].at ||
				(bl.entries[0].at == best.entries[0].at && bl.idx < best.idx) {
				best = bl
			}
		}
		if best == nil {
			return
		}
		e := best.entries[0]
		best.entries = best.entries[1:]
		best.sink(e.at, e.bridge, e.msg)
	}
}

// Host returns the handle for a declared host.
func (n *Net) Host(id HostID) *workload.Host { return n.hosts[id] }

// Bridge returns the handle for a declared bridge.
func (n *Net) Bridge(id BridgeID) *bridge.Bridge { return n.bridges[id] }

// Repeater returns the handle for a declared repeater.
func (n *Net) Repeater(id RepeaterID) *baseline.Repeater { return n.repeaters[id] }

// Tap returns the bare NIC for a declared tap.
func (n *Net) Tap(id TapID) *netsim.NIC { return n.taps[id] }

// Segment returns the handle for a declared segment.
func (n *Net) Segment(id SegmentID) *netsim.Segment { return n.segments[id] }

// Bridges returns every bridge in declaration order.
func (n *Net) Bridges() []*bridge.Bridge { return n.bridges }

// Hosts returns every host in declaration order.
func (n *Net) Hosts() []*workload.Host { return n.hosts }

// warmProbe is the canonical warm-up payload. Test-stream payloads start
// with a 2-byte big-endian length prefix covering the whole payload
// (workload.Ttcp), so the smallest well-formed segment is exactly the
// prefix describing itself: length 2 = {0x00, 0x02}. Warming with it
// primes learning tables (and any caches) while carrying no application
// data.
var warmProbe = [2]byte{0x00, 0x02}

// WarmProbe returns a fresh copy of the canonical warm-up payload, so
// no caller can mutate the probe every scenario shares.
func WarmProbe() []byte {
	b := warmProbe
	return b[:]
}

// warmSettle is how long each warm-up probe is given to propagate before
// measurement traffic starts (generous for any diameter in the paper's
// testbeds).
const warmSettle = 50 * netsim.Millisecond

// Warm primes the path between two hosts with one WarmProbe in each
// direction, letting the network settle after each, so measurements see
// steady state: learning tables populated, no flooding. Every scenario
// warms through this helper (or ScheduleWarm) so warm-up is identical
// everywhere.
func (n *Net) Warm(a, b HostID) {
	ha, hb := n.hosts[a], n.hosts[b]
	n.Sim.Schedule(n.Sim.Now(), func() {
		_ = ha.SendTest(hb.MAC, WarmProbe())
	})
	n.Sim.Run(n.Sim.Now() + netsim.Time(warmSettle))
	n.Sim.Schedule(n.Sim.Now(), func() {
		_ = hb.SendTest(ha.MAC, WarmProbe())
	})
	n.Sim.Run(n.Sim.Now() + netsim.Time(warmSettle))
}

// ScheduleWarm queues the same probe pair without advancing the clock:
// a→b at the given instant, b→a one tick later. Scenarios warming many
// flows under one clock (scalability) schedule each pair and then run
// one settle window themselves.
func (n *Net) ScheduleWarm(a, b HostID, at netsim.Time) {
	ha, hb := n.hosts[a], n.hosts[b]
	n.Sim.Schedule(at, func() { _ = ha.SendTest(hb.MAC, WarmProbe()) })
	n.Sim.Schedule(at+1, func() { _ = hb.SendTest(ha.MAC, WarmProbe()) })
}

// Fingerprint renders the determinism-relevant end state of the whole
// net: virtual time plus every bridge's interpreter and frame counters,
// in declaration order. If any optimization or refactor changes
// scheduling order, interpreter accounting or frame handling anywhere in
// the network, some field here moves. All quantities are virtual-time,
// identical on any machine and any level of runner parallelism.
func (n *Net) Fingerprint() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "t=%d", int64(n.Sim.Now()))
	for _, b := range n.bridges {
		fmt.Fprintf(&sb, " %s[steps=%d alloc=%d in=%d sent=%d vm=%d kern=%d]",
			b.Name, b.Machine.Steps, b.Machine.AllocBytes,
			b.Stats.FramesIn, b.Stats.FramesSent,
			int64(b.Stats.VMTime), int64(b.Stats.KernelTime))
	}
	return sb.String()
}
