package topo

import (
	"fmt"

	"github.com/switchware/activebridge/internal/fault"
	"github.com/switchware/activebridge/internal/netsim"
)

// DefaultFaultProfile, when non-nil, applies a chaos profile to every net
// built in the process: each Build derives a per-net plan from the
// profile (seeded from the profile seed and the net's name) unless the
// graph carries an explicit FaultPlan of its own. abbench's -faults flag
// sets it; it is read once per Build, on the caller's goroutine.
var DefaultFaultProfile *fault.Profile

// FaultPlan attaches a seeded fault schedule to the topology: impairment
// models resolve against declared segment/bridge names at Build, and
// scheduled events fire on the net's control engine at their virtual
// instants. A nil plan (the default) takes none of the fault code paths.
func (g *Graph) FaultPlan(p *fault.Plan) { g.faultPlan = p }

// WithSegmentFault attaches an impairment model to this segment's medium,
// overriding any model the graph's FaultPlan resolves for it. The stream
// is still seeded from the plan seed (or 0 when the graph has no plan),
// so the annotation alone is enough to make a segment lossy.
func WithSegmentFault(m fault.Model) SegmentOpt {
	return func(s *segmentSpec) { s.faultModel = &m }
}

// WithBridgeFault attaches a receive-side impairment model to every port
// of this bridge (a flaky adapter rather than a flaky wire), overriding
// any model from the graph's FaultPlan.
func WithBridgeFault(m fault.Model) BridgeOpt {
	return func(b *bridgeSpec) { b.faultModel = &m }
}

// effectiveFaultPlan resolves the plan a build applies: the graph's own,
// else one derived from the process-wide profile, else nil — unless some
// spec carries a fault annotation, which forces an empty plan so the
// annotations have a seed to derive streams from.
func (g *Graph) effectiveFaultPlan() *fault.Plan {
	if g.faultPlan != nil {
		return g.faultPlan
	}
	if DefaultFaultProfile != nil {
		return DefaultFaultProfile.PlanFor(g.Name)
	}
	for i := range g.segments {
		if g.segments[i].faultModel != nil {
			return fault.NewPlan(0)
		}
	}
	for i := range g.bridges {
		if g.bridges[i].faultModel != nil {
			return fault.NewPlan(0)
		}
	}
	return nil
}

// applyFaults installs the plan's impairment streams and schedules its
// events. Called at the end of Build, after wiring and switchlet loads;
// the only simulation events it creates are the plan's own.
func (n *Net) applyFaults(plan *fault.Plan) error {
	g := n.Graph
	n.faultPlan = plan

	for i, seg := range n.segments {
		m, ok := plan.SegmentModel(g.segments[i].name)
		if sm := g.segments[i].faultModel; sm != nil {
			m, ok = *sm, true
		}
		if ok && !m.Zero() {
			seg.SetFault(plan.SegmentStream(g.segments[i].name, m).Verdict)
		}
	}
	for i, br := range n.bridges {
		m, ok := plan.BridgeModel(g.bridges[i].name)
		if bm := g.bridges[i].faultModel; bm != nil {
			m, ok = *bm, true
		}
		if !ok || m.Zero() {
			continue
		}
		for p := 0; p < br.NumPorts(); p++ {
			br.Port(p).SetRxFault(plan.BridgePortStream(g.bridges[i].name, p, m).Verdict)
		}
	}

	// Resolve every event's target now: a typo in a plan should fail the
	// build, not silently no-op mid-run.
	for _, ev := range plan.Events() {
		ev := ev
		var apply func()
		switch ev.Op {
		case fault.OpLinkDown, fault.OpLinkUp:
			id, ok := n.segIndex(ev.Target)
			if !ok {
				return fmt.Errorf("fault plan: %s: no segment %q", ev, ev.Target)
			}
			down := ev.Op == fault.OpLinkDown
			apply = func() { n.SetSegmentDown(id, down) }
		case fault.OpPortDown, fault.OpPortUp:
			id, ok := n.bridgeIndex(ev.Target)
			if !ok {
				return fmt.Errorf("fault plan: %s: no bridge %q", ev, ev.Target)
			}
			if ev.Port < 0 || ev.Port >= n.bridges[id].NumPorts() {
				return fmt.Errorf("fault plan: %s: bridge %q has no port %d", ev, ev.Target, ev.Port)
			}
			down := ev.Op == fault.OpPortDown
			apply = func() {
				n.bridges[id].SetPortLink(ev.Port, down)
				fault.NoteFlap()
			}
		case fault.OpCrash:
			id, ok := n.bridgeIndex(ev.Target)
			if !ok {
				return fmt.Errorf("fault plan: %s: no bridge %q", ev, ev.Target)
			}
			apply = func() {
				n.bridges[id].Crash()
				fault.NoteCrash()
			}
		case fault.OpRestart:
			id, ok := n.bridgeIndex(ev.Target)
			if !ok {
				return fmt.Errorf("fault plan: %s: no bridge %q", ev, ev.Target)
			}
			apply = func() {
				if err := n.bridges[id].Restart(); err != nil {
					n.bridges[id].Log("restart: " + err.Error())
				}
				fault.NoteRestart()
			}
		default:
			return fmt.Errorf("fault plan: %s: unknown op", ev)
		}
		// Events run on n.Sim — the control engine in a sharded build,
		// which executes alone at a global barrier and may touch any
		// shard's components; serially it is just the engine.
		n.Sim.Schedule(netsim.Time(ev.At), apply)
	}
	return nil
}

// FaultPlan returns the plan the net was built with, or nil.
func (n *Net) FaultPlan() *fault.Plan { return n.faultPlan }

// segIndex resolves a declared segment name.
func (n *Net) segIndex(name string) (SegmentID, bool) {
	for i := range n.Graph.segments {
		if n.Graph.segments[i].name == name {
			return SegmentID(i), true
		}
	}
	return 0, false
}

// bridgeIndex resolves a declared bridge name.
func (n *Net) bridgeIndex(name string) (BridgeID, bool) {
	for i := range n.Graph.bridges {
		if n.Graph.bridges[i].name == name {
			return BridgeID(i), true
		}
	}
	return 0, false
}

// SetSegmentDown cuts or heals a whole segment's medium and notifies the
// managers of every attached bridge on the cut (an upgrade validating
// across the fault must roll back, not commit). Call it from a scheduled
// event on n.Sim — which is exactly what a plan's OpLinkDown/OpLinkUp
// events do — or before any Run.
func (n *Net) SetSegmentDown(id SegmentID, down bool) {
	seg := n.segments[id]
	if seg.Down() == down {
		return
	}
	seg.SetDown(down)
	fault.NoteFlap()
	if !down {
		return
	}
	for _, br := range n.bridges {
		for p := 0; p < br.NumPorts(); p++ {
			if br.Port(p).Segment() == seg {
				br.Manager().NoteFault(fmt.Sprintf("segment %s down", seg.Name))
				break
			}
		}
	}
}
