// Package topo is the declarative topology layer of the reproduction: a
// graph builder for arbitrary extended LANs that materializes a
// netsim.Sim plus typed handles onto every node.
//
// The hand-wired measurement networks (internal/testbed, the experiment
// constructions) all reduce to the same moves: create segments, create
// hosts/bridges/repeaters, attach NICs in a fixed order, load the
// switchlets each bridge should run, and install the static neighbor
// tables. A Graph declares those moves once:
//
//	g := topo.New("two-lan")
//	h1 := g.AddHost("")                       // auto MAC/IP
//	h2 := g.AddHost("")
//	br := g.AddBridge("", topo.LearningBridge, 2)
//	lan1, lan2 := g.AddSegment("lan1"), g.AddSegment("lan2")
//	g.Link(h1, lan1)
//	g.Link(br, lan1)                          // bridge ports auto-assigned
//	g.Link(h2, lan2)
//	g.Link(br, lan2)
//	net := g.MustBuild(cost)
//	net.Warm(h1, h2)
//
// Build order is deterministic and declaration-driven: segments, hosts,
// repeaters, taps and bridges are created in declaration order, NICs are
// attached in Link order (which fixes same-instant delivery order on a
// segment), and switchlets load per bridge in declaration order. Two
// builds of the same Graph therefore produce byte-identical simulations,
// which is what lets independent scenarios run in parallel across cores
// (internal/scenario) while their virtual-time outputs stay pinned to
// golden values.
package topo

import (
	"fmt"

	"github.com/switchware/activebridge/internal/baseline"
	"github.com/switchware/activebridge/internal/bridge"
	"github.com/switchware/activebridge/internal/env"
	"github.com/switchware/activebridge/internal/ethernet"
	"github.com/switchware/activebridge/internal/fault"
	"github.com/switchware/activebridge/internal/ipv4"
	"github.com/switchware/activebridge/internal/metrics"
	"github.com/switchware/activebridge/internal/netsim"
	"github.com/switchware/activebridge/internal/switchlets"
	"github.com/switchware/activebridge/internal/tracing"
	"github.com/switchware/activebridge/internal/workload"
)

// BridgeKind selects the switchlet set a bridge runs after wiring. The
// kinds mirror the paper's configurations: behaviour is code, and the
// kind names which code gets loaded.
type BridgeKind int

const (
	// EmptyBridge loads nothing: the bridge forwards no frames until a
	// switchlet arrives (typically over the network loader, §5.2).
	EmptyBridge BridgeKind = iota
	// DumbBridge runs the buffered-repeater switchlet: every frame is
	// flooded out every other port.
	DumbBridge
	// LearningBridge runs the swl learning switchlet — the paper's
	// measured system.
	LearningBridge
	// NativeLearningBridge installs the native-code learning switchlet
	// (the paper's envisioned native-compilation optimization, used as an
	// ablation baseline).
	NativeLearningBridge
	// STPBridge runs learning plus the IEEE 802.1D spanning tree
	// switchlet, which starts immediately when no other protocol is
	// running. Use it for redundant topologies.
	STPBridge
	// AgilityBridge runs the full §5.4/§7.5 stack: learning, the DEC
	// spanning tree (running), the IEEE spanning tree (dormant) and the
	// control switchlet that drives the automatic protocol transition.
	AgilityBridge
)

var bridgeKindNames = [...]string{"empty", "dumb", "learning", "native-learning", "stp", "agility"}

func (k BridgeKind) String() string {
	if k < 0 || int(k) >= len(bridgeKindNames) {
		return fmt.Sprintf("bridgekind(%d)", int(k))
	}
	return bridgeKindNames[k]
}

// Typed node identifiers. An ID is an index into the graph's declaration
// order and stays valid on the built Net.
type (
	// HostID names a measurement host (full protocol stack).
	HostID int
	// BridgeID names an active bridge.
	BridgeID int
	// RepeaterID names a C buffered repeater.
	RepeaterID int
	// TapID names a bare NIC (injection/capture points, like the paper's
	// measurement node interfaces).
	TapID int
	// SegmentID names a shared 100 Mb/s segment.
	SegmentID int
)

type nodeKind int

const (
	nodeHost nodeKind = iota
	nodeBridge
	nodeRepeater
	nodeTap
)

var nodeKindNames = [...]string{"host", "bridge", "repeater", "tap"}

type nodeRef struct {
	kind nodeKind
	idx  int
}

// Node is any attachable endpoint: a HostID, BridgeID, RepeaterID or
// TapID. Only this package's ID types implement it.
type Node interface{ ref() nodeRef }

func (id HostID) ref() nodeRef     { return nodeRef{nodeHost, int(id)} }
func (id BridgeID) ref() nodeRef   { return nodeRef{nodeBridge, int(id)} }
func (id RepeaterID) ref() nodeRef { return nodeRef{nodeRepeater, int(id)} }
func (id TapID) ref() nodeRef      { return nodeRef{nodeTap, int(id)} }

type hostSpec struct {
	name   string
	mac    ethernet.MAC
	ip     ipv4.Addr
	hasMAC bool
	hasIP  bool
	linked bool
}

type bridgeSpec struct {
	name         string
	kind         BridgeKind
	ports        int
	id           byte
	netLoader    ipv4.Addr
	hasNetLoader bool
	spanningSrc  string
	logSink      func(at netsim.Time, bridge, msg string)
	faultModel   *fault.Model
	linkCursor   int
}

type repeaterSpec struct {
	name       string
	linkCursor int
}

type tapSpec struct {
	name   string
	mac    ethernet.MAC
	linked bool
}

type linkSpec struct {
	node nodeRef
	seg  SegmentID
	port int // resolved port index on the node
}

// HostOpt customizes a declared host.
type HostOpt func(*hostSpec)

// WithMAC fixes the host's MAC address instead of auto-assignment.
func WithMAC(m ethernet.MAC) HostOpt {
	return func(h *hostSpec) { h.mac, h.hasMAC = m, true }
}

// WithIP fixes the host's IP address instead of auto-assignment.
func WithIP(ip ipv4.Addr) HostOpt {
	return func(h *hostSpec) { h.ip, h.hasIP = ip, true }
}

// BridgeOpt customizes a declared bridge.
type BridgeOpt func(*bridgeSpec)

// WithBridgeID fixes the bridge identity byte (default: declaration
// index + 1), which determines the bridge MAC and spanning-tree priority
// ordering.
func WithBridgeID(id byte) BridgeOpt {
	return func(b *bridgeSpec) { b.id = id }
}

// WithNetLoader gives the bridge an IP address and enables the TFTP
// network switchlet loader (§5.2). Every host in the net gets a static
// neighbor entry for it.
func WithNetLoader(addr ipv4.Addr) BridgeOpt {
	return func(b *bridgeSpec) { b.netLoader, b.hasNetLoader = addr, true }
}

// WithSpanningSrc overrides the IEEE spanning-tree source an
// AgilityBridge loads dormant — how the transition experiment injects
// the deliberately buggy 802.1D implementation.
func WithSpanningSrc(src string) BridgeOpt {
	return func(b *bridgeSpec) { b.spanningSrc = src }
}

// WithLogSink installs the bridge's log sink before any switchlet loads,
// so load-time log lines are captured too.
func WithLogSink(fn func(at netsim.Time, bridge, msg string)) BridgeOpt {
	return func(b *bridgeSpec) { b.logSink = fn }
}

// Graph is a declarative extended-LAN description. Declaration methods
// never fail; the first declaration error is reported by Build (so
// topology construction reads straight-line).
type Graph struct {
	Name string

	hosts     []hostSpec
	bridges   []bridgeSpec
	repeaters []repeaterSpec
	taps      []tapSpec
	segments  []segmentSpec
	links     []linkSpec

	shardsReq int
	shardsSet bool
	affine    [][2]nodeRef

	// faultPlan is the attached fault schedule, nil for a clean build
	// (see fault.go).
	faultPlan *fault.Plan

	err error
}

type segmentSpec struct {
	name        string
	propagation netsim.Duration
	faultModel  *fault.Model
}

// latencyNs is the segment's minimum source-to-sink latency in
// nanoseconds — the lookahead a cut through this segment would give the
// sharded engine, from the same definition the engine itself uses.
func (s *segmentSpec) latencyNs() int64 {
	prop := s.propagation
	if prop == 0 {
		prop = netsim.DefaultPropagation
	}
	return int64(netsim.MinWireLatency(netsim.DefaultRateBps, prop))
}

// SegmentOpt customizes a declared segment.
type SegmentOpt func(*segmentSpec)

// WithPropagation fixes the segment's one-way propagation delay (default
// 500ns, a short in-room LAN). Long links — inter-building fiber in a
// campus fabric — both model their real latency and give the sharded
// engine more lookahead when the partitioner cuts them.
func WithPropagation(d netsim.Duration) SegmentOpt {
	return func(s *segmentSpec) { s.propagation = d }
}

// New creates an empty topology description.
func New(name string) *Graph { return &Graph{Name: name} }

func (g *Graph) fail(format string, args ...interface{}) {
	if g.err == nil {
		g.err = fmt.Errorf("topo %q: %s", g.Name, fmt.Sprintf(format, args...))
	}
}

// AddHost declares a measurement host. An empty name becomes h<n>
// (1-based); MAC and IP are auto-assigned from the declaration index
// unless fixed with WithMAC/WithIP. Auto addresses are
// 02:00:00:00:<hi>:<lo> and 10.0.<hi>.<lo> for host number hi*256+lo,
// matching the paper testbed's h1/h2 addressing.
func (g *Graph) AddHost(name string, opts ...HostOpt) HostID {
	n := len(g.hosts) + 1
	h := hostSpec{
		name: name,
		mac:  ethernet.MAC{0x02, 0x00, 0x00, 0x00, byte(n >> 8), byte(n)},
		ip:   ipv4.Addr{10, 0, byte(n >> 8), byte(n)},
	}
	if h.name == "" {
		h.name = fmt.Sprintf("h%d", n)
	}
	for _, o := range opts {
		o(&h)
	}
	g.hosts = append(g.hosts, h)
	return HostID(n - 1)
}

// AddBridge declares an active bridge with the given switchlet kind and
// port count. An empty name becomes br<idx>; the identity byte defaults
// to declaration index + 1.
func (g *Graph) AddBridge(name string, kind BridgeKind, ports int, opts ...BridgeOpt) BridgeID {
	idx := len(g.bridges)
	b := bridgeSpec{name: name, kind: kind, ports: ports, id: byte(idx + 1)}
	if b.name == "" {
		b.name = fmt.Sprintf("br%d", idx)
	}
	if kind < 0 || int(kind) >= len(bridgeKindNames) {
		g.fail("bridge %s: unknown kind %d", b.name, int(kind))
	}
	if ports < 1 {
		g.fail("bridge %s: needs at least one port (got %d)", b.name, ports)
	}
	for _, o := range opts {
		o(&b)
	}
	g.bridges = append(g.bridges, b)
	return BridgeID(idx)
}

// AddRepeater declares a two-port C buffered repeater. An empty name
// becomes rep<idx>.
func (g *Graph) AddRepeater(name string) RepeaterID {
	idx := len(g.repeaters)
	if name == "" {
		name = fmt.Sprintf("rep%d", idx)
	}
	g.repeaters = append(g.repeaters, repeaterSpec{name: name})
	return RepeaterID(idx)
}

// AddTap declares a bare NIC with the given MAC: an injection or capture
// point without a protocol stack (the paper's measurement-node
// interfaces). An empty name becomes tap<idx>.
func (g *Graph) AddTap(name string, mac ethernet.MAC) TapID {
	idx := len(g.taps)
	if name == "" {
		name = fmt.Sprintf("tap%d", idx)
	}
	g.taps = append(g.taps, tapSpec{name: name, mac: mac})
	return TapID(idx)
}

// AddSegment declares a shared 100 Mb/s segment. An empty name becomes
// seg<idx>.
func (g *Graph) AddSegment(name string, opts ...SegmentOpt) SegmentID {
	idx := len(g.segments)
	if name == "" {
		name = fmt.Sprintf("seg%d", idx)
	}
	s := segmentSpec{name: name}
	for _, o := range opts {
		o(&s)
	}
	g.segments = append(g.segments, s)
	return SegmentID(idx)
}

// Link attaches a node to a segment. Bridge and repeater ports are
// assigned in Link order; hosts and taps have a single interface.
// Same-instant frame delivery on a segment follows attachment order, so
// Link order is part of the deterministic topology contract.
func (g *Graph) Link(n Node, s SegmentID) {
	if n == nil {
		g.fail("Link: nil node")
		return
	}
	r := n.ref()
	if int(s) < 0 || int(s) >= len(g.segments) {
		g.fail("Link: segment %d not declared", int(s))
		return
	}
	l := linkSpec{node: r, seg: s}
	switch r.kind {
	case nodeHost:
		if r.idx < 0 || r.idx >= len(g.hosts) {
			g.fail("Link: host %d not declared", r.idx)
			return
		}
		h := &g.hosts[r.idx]
		if h.linked {
			g.fail("host %s: linked to a second segment (hosts have one interface)", h.name)
			return
		}
		h.linked = true
	case nodeBridge:
		if r.idx < 0 || r.idx >= len(g.bridges) {
			g.fail("Link: bridge %d not declared", r.idx)
			return
		}
		b := &g.bridges[r.idx]
		if b.linkCursor >= b.ports {
			g.fail("bridge %s: more links than its %d ports", b.name, b.ports)
			return
		}
		l.port = b.linkCursor
		b.linkCursor++
	case nodeRepeater:
		if r.idx < 0 || r.idx >= len(g.repeaters) {
			g.fail("Link: repeater %d not declared", r.idx)
			return
		}
		rp := &g.repeaters[r.idx]
		if rp.linkCursor >= 2 {
			g.fail("repeater %s: more links than its 2 ports", rp.name)
			return
		}
		l.port = rp.linkCursor
		rp.linkCursor++
	case nodeTap:
		if r.idx < 0 || r.idx >= len(g.taps) {
			g.fail("Link: tap %d not declared", r.idx)
			return
		}
		t := &g.taps[r.idx]
		if t.linked {
			g.fail("tap %s: linked to a second segment", t.name)
			return
		}
		t.linked = true
	}
	g.links = append(g.links, l)
}

// kindManifests resolves a bridge kind to the ordered switchlet
// manifests it installs. The returned order is the load order, which is
// part of the determinism contract.
func kindManifests(spec *bridgeSpec) []env.Manifest {
	switch spec.kind {
	case DumbBridge:
		return []env.Manifest{switchlets.DumbManifest()}
	case LearningBridge:
		return []env.Manifest{switchlets.LearningManifest()}
	case STPBridge:
		return []env.Manifest{switchlets.LearningManifest(), switchlets.SpanningManifest()}
	case AgilityBridge:
		spanning := switchlets.SpanningManifest()
		if spec.spanningSrc != "" {
			spanning = switchlets.SpanningManifestFrom(spec.spanningSrc)
		}
		return []env.Manifest{
			switchlets.LearningManifest(), switchlets.DECManifest(),
			spanning, switchlets.ControlManifest(),
		}
	}
	return nil
}

// loadKind installs the switchlet set a bridge kind names, through the
// bridge's lifecycle manager.
func loadKind(b *bridge.Bridge, spec *bridgeSpec) error {
	switch spec.kind {
	case EmptyBridge:
		return nil
	case NativeLearningBridge:
		switchlets.InstallNativeLearning(b)
		return nil
	case DumbBridge, LearningBridge, STPBridge, AgilityBridge:
		for _, m := range kindManifests(spec) {
			if _, err := b.Manager().Install(m); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("unknown bridge kind %d", int(spec.kind))
}

// Build materializes the graph: one fresh deterministic simulation with
// every declared node created, wired and loaded. The same Graph builds
// the same simulation every time.
func (g *Graph) Build(cost netsim.CostModel) (*Net, error) {
	if g.err != nil {
		return nil, g.err
	}
	// Address uniqueness: learning tables and neighbor tables key on
	// these, so collisions are declaration bugs.
	macs := map[ethernet.MAC]string{}
	ips := map[ipv4.Addr]string{}
	for i := range g.hosts {
		h := &g.hosts[i]
		if prev, dup := macs[h.mac]; dup {
			return nil, fmt.Errorf("topo %q: host %s: MAC %v already used by %s", g.Name, h.name, h.mac, prev)
		}
		macs[h.mac] = h.name
		if prev, dup := ips[h.ip]; dup {
			return nil, fmt.Errorf("topo %q: host %s: IP %v already used by %s", g.Name, h.name, h.ip, prev)
		}
		ips[h.ip] = h.name
	}
	for i := range g.taps {
		t := &g.taps[i]
		if prev, dup := macs[t.mac]; dup {
			return nil, fmt.Errorf("topo %q: tap %s: MAC %v already used by %s", g.Name, t.name, t.mac, prev)
		}
		macs[t.mac] = t.name
	}
	for i := range g.bridges {
		b := &g.bridges[i]
		// The bridge identity MAC is derived from the id byte; a collision
		// (two bridges sharing an id, or an id shadowing a host) corrupts
		// spanning-tree elections and learning tables.
		bmac := bridge.IdentityMAC(b.id)
		if prev, dup := macs[bmac]; dup {
			return nil, fmt.Errorf("topo %q: bridge %s: identity MAC %v (id %d) already used by %s", g.Name, b.name, bmac, b.id, prev)
		}
		macs[bmac] = b.name
		if b.hasNetLoader {
			if prev, dup := ips[b.netLoader]; dup {
				return nil, fmt.Errorf("topo %q: bridge %s: loader IP %v already used by %s", g.Name, b.name, b.netLoader, prev)
			}
			ips[b.netLoader] = b.name
		}
	}

	// Every endpoint must be wired: an unlinked host or tap would build
	// silently and then panic (or measure nothing) the first time it
	// transmits.
	for i := range g.hosts {
		if !g.hosts[i].linked {
			return nil, fmt.Errorf("topo %q: host %s declared but never linked", g.Name, g.hosts[i].name)
		}
	}
	for i := range g.taps {
		if !g.taps[i].linked {
			return nil, fmt.Errorf("topo %q: tap %s declared but never linked", g.Name, g.taps[i].name)
		}
	}

	// Shard assignment: an explicit Graph.Shards request wins, otherwise
	// the process default applies. Partition falls back to serial (nil
	// plan) whenever the graph is too small to pay for synchronization,
	// in which case the build below is exactly the single-engine build.
	shards := DefaultShards
	if g.shardsSet {
		shards = g.shardsReq
	}
	var plan *Plan
	if shards > 1 {
		plan, _ = Partition(g, shards)
	}

	n := &Net{Cost: cost, Graph: g, Plan: plan}
	var sim *netsim.Sim
	nodeSim := func(r nodeRef) *netsim.Sim { return sim }
	segSim := func(si int) *netsim.Sim { return sim }
	if plan == nil {
		sim = netsim.New()
	} else {
		n.coord = netsim.NewCoordinator(plan.Shards)
		sim = n.coord.Control()
		nodeSim = func(r nodeRef) *netsim.Sim { return n.coord.Shard(plan.nodeShard(r)) }
		segSim = func(si int) *netsim.Sim { return n.coord.Shard(plan.segOwner[si]) }
	}
	n.Sim = sim

	for si := range g.segments {
		seg := netsim.NewSegment(segSim(si), g.segments[si].name)
		if p := g.segments[si].propagation; p != 0 {
			seg.Propagation = p
		}
		n.segments = append(n.segments, seg)
	}
	for i := range g.hosts {
		h := &g.hosts[i]
		n.hosts = append(n.hosts, workload.NewHost(nodeSim(nodeRef{nodeHost, i}), h.name, h.mac, h.ip, cost))
	}
	for i := range g.repeaters {
		n.repeaters = append(n.repeaters, baseline.NewRepeater(nodeSim(nodeRef{nodeRepeater, i}), g.repeaters[i].name, cost))
	}
	for i := range g.taps {
		n.taps = append(n.taps, netsim.NewNIC(nodeSim(nodeRef{nodeTap, i}), g.taps[i].name, g.taps[i].mac))
	}
	var logs *shardedLogs
	if plan != nil {
		logs = &shardedLogs{}
	}
	for i := range g.bridges {
		bs := &g.bridges[i]
		br := bridge.New(nodeSim(nodeRef{nodeBridge, i}), bs.name, bs.id, bs.ports, cost)
		if bs.logSink != nil {
			if logs != nil {
				// Sharded build: bridges log concurrently, so each buffers
				// its lines locally and the coordinator merges them in a
				// deterministic (time, bridge, sequence) order at every
				// quiescent point.
				br.LogSink = logs.sinkFor(i, bs.logSink)
			} else {
				br.LogSink = bs.logSink
			}
		}
		if bs.hasNetLoader {
			br.EnableNetLoader(bs.netLoader)
		}
		n.bridges = append(n.bridges, br)
	}
	if logs != nil && len(logs.bridges) > 0 {
		n.coord.OnQuiesce(logs.flush)
	}

	// Wire in declaration order: attachment order fixes same-instant
	// delivery order on each segment.
	for _, l := range g.links {
		var nic *netsim.NIC
		switch l.node.kind {
		case nodeHost:
			nic = n.hosts[l.node.idx].NIC
		case nodeBridge:
			nic = n.bridges[l.node.idx].Port(l.port)
		case nodeRepeater:
			nic = n.repeaters[l.node.idx].Port(l.port)
		case nodeTap:
			nic = n.taps[l.node.idx]
		}
		n.segments[l.seg].Attach(nic)
	}

	// Load switchlets after wiring, as the hand-built networks did: the
	// only build-time events are the switchlets' timer arms, so their
	// relative order (bridge declaration order) is the determinism
	// contract.
	for i := range g.bridges {
		if err := loadKind(n.bridges[i], &g.bridges[i]); err != nil {
			return nil, fmt.Errorf("topo %q: bridge %s (%v): %w", g.Name, g.bridges[i].name, g.bridges[i].kind, err)
		}
	}

	// Static neighbor tables: the measurement LANs are fully known (no
	// ARP), so every host knows every other host and every network
	// loader. Extra entries are inert — they only suppress ARP.
	for i, hi := range n.hosts {
		for j, hj := range n.hosts {
			if i != j {
				hi.AddNeighbor(hj.IP, hj.MAC)
			}
		}
		for k, br := range n.bridges {
			if g.bridges[k].hasNetLoader {
				hi.AddNeighbor(br.NetLoaderAddr(), br.MAC())
			}
		}
	}

	// Fault plane last: impairment streams install on already-wired
	// entities, and scheduled events are the plan's only build-time
	// events. A clean build (no plan, no annotations, no process-wide
	// profile) skips this entirely.
	if plan := g.effectiveFaultPlan(); plan != nil {
		if err := n.applyFaults(plan); err != nil {
			return nil, fmt.Errorf("topo %q: %w", g.Name, err)
		}
	}

	// Telemetry is opt-in process-wide (abbench -metrics-addr, the SDK's
	// EnableMetrics): every net built while it is on publishes into the
	// default hub. Instruments only observe at quiescent points, so the
	// built simulation's virtual-time behaviour is identical either way.
	if metrics.Enabled() {
		n.EnableMetrics()
	}
	// Same opt-in shape for the causal tracing plane (abbench -trace, the
	// SDK's EnableTracing); events never feed back into the simulation.
	if tracing.Enabled() {
		n.EnableTracing(tracing.GetDefaultConfig())
	}
	return n, nil
}

// MustBuild is Build for statically correct topologies; a build error is
// a programming bug, not a runtime condition.
func (g *Graph) MustBuild(cost netsim.CostModel) *Net {
	n, err := g.Build(cost)
	if err != nil {
		panic("topo: " + err.Error())
	}
	return n
}
