package topo

import (
	"strings"
	"testing"

	"github.com/switchware/activebridge/internal/ethernet"
	"github.com/switchware/activebridge/internal/ipv4"
	"github.com/switchware/activebridge/internal/netsim"
	"github.com/switchware/activebridge/internal/workload"
)

// twoLAN declares the paper's Figure 7 network: h1 -- lan1 -- br -- lan2 -- h2.
func twoLAN(kind BridgeKind) (*Graph, HostID, HostID, BridgeID) {
	g := New("two-lan")
	h1 := g.AddHost("")
	h2 := g.AddHost("")
	br := g.AddBridge("", kind, 2)
	lan1, lan2 := g.AddSegment("lan1"), g.AddSegment("lan2")
	g.Link(h1, lan1)
	g.Link(br, lan1)
	g.Link(h2, lan2)
	g.Link(br, lan2)
	return g, h1, h2, br
}

func TestAutoAddressing(t *testing.T) {
	g, h1, h2, br := twoLAN(LearningBridge)
	net := g.MustBuild(netsim.DefaultCostModel())
	if got, want := net.Host(h1).MAC, (ethernet.MAC{2, 0, 0, 0, 0, 1}); got != want {
		t.Errorf("h1 MAC = %v, want %v", got, want)
	}
	if got, want := net.Host(h2).IP, (ipv4.Addr{10, 0, 0, 2}); got != want {
		t.Errorf("h2 IP = %v, want %v", got, want)
	}
	if got := net.Host(h1).Name; got != "h1" {
		t.Errorf("h1 name = %q", got)
	}
	if got := net.Bridge(br).Name; got != "br0" {
		t.Errorf("bridge name = %q", got)
	}
}

func TestNeighborsAutoInstalled(t *testing.T) {
	g, h1, h2, _ := twoLAN(LearningBridge)
	net := g.MustBuild(netsim.DefaultCostModel())
	net.Warm(h1, h2)
	// With static neighbors installed, a ping needs no ARP round-trip.
	p := workload.NewPinger(net.Host(h1), net.Host(h2).IP, 64, 3)
	p.Run(net.Sim.Now() + netsim.Time(10*netsim.Second))
	if p.Completed() != 3 {
		t.Fatalf("pings completed = %d, want 3", p.Completed())
	}
}

func TestBuildDeterminism(t *testing.T) {
	run := func() string {
		g, h1, h2, _ := twoLAN(LearningBridge)
		net := g.MustBuild(netsim.DefaultCostModel())
		net.Warm(h1, h2)
		tr := workload.NewTtcp(net.Host(h1), net.Host(h2), 1024, 256<<10)
		tr.Run(net.Sim.Now() + netsim.Time(600*netsim.Second))
		return net.Fingerprint()
	}
	fp1, fp2 := run(), run()
	if fp1 != fp2 {
		t.Fatalf("fingerprints differ across identical builds:\n %s\n %s", fp1, fp2)
	}
	if !strings.Contains(fp1, "br0[steps=") {
		t.Fatalf("fingerprint missing bridge state: %s", fp1)
	}
}

func TestWarmPrimesLearning(t *testing.T) {
	// A third LAN on the bridge sees the initial flood but nothing after
	// the warm-up settles the learning table.
	g := New("warm")
	h1 := g.AddHost("")
	h2 := g.AddHost("")
	br := g.AddBridge("", LearningBridge, 3)
	lan1, lan2, lan3 := g.AddSegment(""), g.AddSegment(""), g.AddSegment("")
	g.Link(h1, lan1)
	g.Link(br, lan1)
	g.Link(h2, lan2)
	g.Link(br, lan2)
	g.Link(br, lan3)
	net := g.MustBuild(netsim.DefaultCostModel())
	net.Warm(h1, h2)
	before := net.Segment(lan3).Frames
	tr := workload.NewTtcp(net.Host(h1), net.Host(h2), 1024, 64<<10)
	tr.Run(net.Sim.Now() + netsim.Time(60*netsim.Second))
	if !tr.Done() {
		t.Fatal("transfer incomplete")
	}
	if leaked := net.Segment(lan3).Frames - before; leaked != 0 {
		t.Errorf("warmed unicast exchange leaked %d frames onto an uninvolved LAN", leaked)
	}
}

func TestWarmProbeIsMinimalSegment(t *testing.T) {
	// The probe must be the smallest self-describing test-stream segment:
	// a 2-byte big-endian length prefix whose value is its own length.
	if p := WarmProbe(); len(p) != 2 || p[0] != 0 || p[1] != 2 {
		t.Fatalf("WarmProbe = %v, want the length prefix {0, 2}", WarmProbe())
	}
}

func TestLinkErrors(t *testing.T) {
	t.Run("bridge port overflow", func(t *testing.T) {
		g := New("overflow")
		b := g.AddBridge("", LearningBridge, 1)
		s1, s2 := g.AddSegment(""), g.AddSegment("")
		g.Link(b, s1)
		g.Link(b, s2)
		if _, err := g.Build(netsim.DefaultCostModel()); err == nil {
			t.Fatal("want error for more links than ports")
		}
	})
	t.Run("host double link", func(t *testing.T) {
		g := New("double")
		h := g.AddHost("")
		s1, s2 := g.AddSegment(""), g.AddSegment("")
		g.Link(h, s1)
		g.Link(h, s2)
		if _, err := g.Build(netsim.DefaultCostModel()); err == nil {
			t.Fatal("want error for host with two links")
		}
	})
	t.Run("unlinked host", func(t *testing.T) {
		g := New("unlinked")
		g.AddHost("")
		g.AddSegment("")
		if _, err := g.Build(netsim.DefaultCostModel()); err == nil {
			t.Fatal("want error for host never linked")
		}
	})
	t.Run("undeclared segment", func(t *testing.T) {
		g := New("bad-seg")
		h := g.AddHost("")
		g.Link(h, SegmentID(7))
		if _, err := g.Build(netsim.DefaultCostModel()); err == nil {
			t.Fatal("want error for undeclared segment")
		}
	})
}

func TestDuplicateAddressErrors(t *testing.T) {
	g := New("dup-mac")
	g.AddHost("a", WithMAC(ethernet.MAC{2, 0, 0, 0, 9, 9}))
	g.AddHost("b", WithMAC(ethernet.MAC{2, 0, 0, 0, 9, 9}), WithIP(ipv4.Addr{10, 1, 1, 1}))
	if _, err := g.Build(netsim.DefaultCostModel()); err == nil {
		t.Fatal("want error for duplicate MAC")
	}

	g2 := New("dup-ip")
	g2.AddHost("a", WithIP(ipv4.Addr{10, 1, 1, 1}))
	g2.AddHost("b", WithIP(ipv4.Addr{10, 1, 1, 1}))
	if _, err := g2.Build(netsim.DefaultCostModel()); err == nil {
		t.Fatal("want error for duplicate IP")
	}

	g3 := New("tap-shadows-host")
	g3.AddHost("") // auto MAC 02:00:00:00:00:01
	g3.AddTap("t", ethernet.MAC{2, 0, 0, 0, 0, 1})
	if _, err := g3.Build(netsim.DefaultCostModel()); err == nil {
		t.Fatal("want error for tap MAC shadowing a host")
	}

	g4 := New("dup-bridge-id")
	g4.AddBridge("", LearningBridge, 2)
	g4.AddBridge("", LearningBridge, 2, WithBridgeID(1)) // collides with auto id 1
	if _, err := g4.Build(netsim.DefaultCostModel()); err == nil {
		t.Fatal("want error for duplicate bridge identity")
	}
}

func TestBridgeKinds(t *testing.T) {
	// Every kind must build and (except EmptyBridge) forward warm probes.
	for _, kind := range []BridgeKind{DumbBridge, LearningBridge, NativeLearningBridge, STPBridge} {
		g, h1, h2, br := twoLAN(kind)
		net, err := g.Build(netsim.DefaultCostModel())
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if kind == STPBridge {
			// Let the spanning tree move the ports to forwarding.
			net.Sim.Run(netsim.Time(45 * netsim.Second))
		}
		net.Warm(h1, h2)
		if got := net.Host(h2).FramesIn; got == 0 {
			t.Errorf("%v: no frames forwarded", kind)
		}
		if kind == NativeLearningBridge && net.Bridge(br).Machine.Steps != 0 {
			t.Errorf("native bridge executed %d VM steps; expected none", net.Bridge(br).Machine.Steps)
		}
	}

	// EmptyBridge forwards nothing: behaviour is code, none is loaded.
	g, h1, h2, _ := twoLAN(EmptyBridge)
	net := g.MustBuild(netsim.DefaultCostModel())
	net.Warm(h1, h2)
	if got := net.Host(h2).FramesIn; got != 0 {
		t.Errorf("empty bridge forwarded %d frames", got)
	}
}

func TestBridgeKindString(t *testing.T) {
	if LearningBridge.String() != "learning" {
		t.Errorf("LearningBridge = %q", LearningBridge.String())
	}
	if got := BridgeKind(99).String(); got != "bridgekind(99)" {
		t.Errorf("out-of-range kind = %q", got)
	}
}
