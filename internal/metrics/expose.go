package metrics

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"
)

// HubSnapshot is the JSON document /snapshot serves: every attached
// registry's published values plus the serving wall clock.
type HubSnapshot struct {
	WallUnixNs int64      `json:"wall_unix_ns"`
	Nets       []Snapshot `json:"nets"`
}

// Handler returns the scrape surface for a hub:
//
//	/metrics   Prometheus text exposition (version 0.0.4)
//	/snapshot  the same values as structured JSON (HubSnapshot)
//
// Both read only published cells, so scraping never contends with a
// running simulation.
func Handler(h *Hub) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(h.RenderText()))
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		snap := HubSnapshot{WallUnixNs: time.Now().UnixNano(), Nets: h.SnapshotAll()}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snap)
	})
	if profiling.Load() {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// profiling gates the net/http/pprof surface on handlers built after
// EnableProfiling; off by default so a metrics endpoint never exposes
// profiling handlers unless explicitly asked to (abbench -pprof).
var profiling atomic.Bool

// EnableProfiling adds the net/http/pprof handlers under /debug/pprof/
// to every Handler (and Serve) built after the call.
func EnableProfiling() { profiling.Store(true) }

// Server is a running metrics endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the endpoint.
func (s *Server) Close() error { return s.srv.Close() }

// Serve binds addr and serves the hub's scrape surface in the
// background until Close. The listener runs entirely on wall-clock
// goroutines; it holds no reference into any simulation beyond the
// hub's published cells.
func Serve(addr string, h *Hub) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Handler(h)}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}
