package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Lint validates a Prometheus text exposition document the way promtool
// check metrics would, using no external dependencies. It enforces:
//
//   - comment lines are well-formed `# HELP <name> <text>` / `# TYPE
//     <name> <counter|gauge|histogram|summary|untyped>`, with at most
//     one HELP and one TYPE per metric, TYPE before any of its samples;
//   - sample lines parse as `name{labels} value [timestamp]` with legal
//     metric and label names, balanced quoting and valid escapes;
//   - no duplicate series (same name + label set);
//   - all samples of one metric name are contiguous (grouped);
//   - counter samples are finite and non-negative, and counter family
//     names end in _total;
//   - histogram _bucket series carry an le label and are cumulative
//     (non-decreasing in le order), ending with le="+Inf".
//
// It returns the first violation found, or nil for a clean document.
func Lint(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	types := map[string]string{}
	helps := map[string]bool{}
	seenSeries := map[string]bool{}
	sampled := map[string]bool{} // family -> samples seen (grouping + TYPE-order checks)
	lastFamily := ""
	type bucketState struct {
		lastCum float64
		infSeen bool
	}
	buckets := map[string]*bucketState{} // histogram series (sans le) -> state

	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := lintComment(line, types, helps, sampled); err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		family := familyOf(name, types)
		if sampled[family] && lastFamily != family {
			return fmt.Errorf("line %d: samples of %s are not grouped", lineNo, family)
		}
		sampled[family] = true
		lastFamily = family

		key := name + renderSorted(labels)
		if seenSeries[key] {
			return fmt.Errorf("line %d: duplicate series %s", lineNo, key)
		}
		seenSeries[key] = true

		switch types[family] {
		case "counter":
			if !strings.HasSuffix(family, "_total") {
				return fmt.Errorf("line %d: counter %s does not end in _total", lineNo, family)
			}
			if math.IsNaN(value) || math.IsInf(value, 0) {
				return fmt.Errorf("line %d: counter %s is not finite (%g)", lineNo, family, value)
			}
			if value < 0 {
				return fmt.Errorf("line %d: counter %s is negative (%g)", lineNo, family, value)
			}
		case "histogram":
			if strings.HasSuffix(name, "_bucket") {
				le, ok := labels["le"]
				if !ok {
					return fmt.Errorf("line %d: %s has no le label", lineNo, name)
				}
				delete(labels, "le")
				bkey := name + renderSorted(labels)
				st := buckets[bkey]
				if st == nil {
					st = &bucketState{}
					buckets[bkey] = st
				}
				if st.infSeen {
					return fmt.Errorf("line %d: %s has buckets after le=\"+Inf\"", lineNo, name)
				}
				if le == "+Inf" {
					st.infSeen = true
				} else if _, err := strconv.ParseFloat(le, 64); err != nil {
					return fmt.Errorf("line %d: %s le=%q is not a number", lineNo, name, le)
				}
				if value < st.lastCum {
					return fmt.Errorf("line %d: %s buckets are not cumulative (%g after %g)", lineNo, name, value, st.lastCum)
				}
				st.lastCum = value
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for bkey, st := range buckets {
		if !st.infSeen {
			return fmt.Errorf("%s: histogram missing le=\"+Inf\" bucket", bkey)
		}
	}
	return nil
}

// LintString is Lint over an in-memory document.
func LintString(s string) error { return Lint(strings.NewReader(s)) }

func lintComment(line string, types map[string]string, helps, sampled map[string]bool) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 || fields[0] != "#" {
		return nil // free-form comment: legal
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !validName(fields[2]) {
			return fmt.Errorf("malformed HELP: %q", line)
		}
		if helps[fields[2]] {
			return fmt.Errorf("second HELP for %s", fields[2])
		}
		helps[fields[2]] = true
	case "TYPE":
		if len(fields) != 4 || !validName(fields[2]) {
			return fmt.Errorf("malformed TYPE: %q", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown type %q for %s", fields[3], fields[2])
		}
		if _, dup := types[fields[2]]; dup {
			return fmt.Errorf("second TYPE for %s", fields[2])
		}
		if sampled[fields[2]] {
			return fmt.Errorf("TYPE for %s after its samples", fields[2])
		}
		types[fields[2]] = fields[3]
	}
	return nil
}

// familyOf maps a sample name to its declared family: histogram
// component suffixes collapse onto the declared base name.
func familyOf(name string, types map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name {
			if t, ok := types[base]; ok && (t == "histogram" || t == "summary") {
				return base
			}
		}
	}
	return name
}

// parseSample parses one exposition sample line.
func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	labels = map[string]string{}
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' && line[i] != '\t' {
		i++
	}
	name = line[:i]
	if !validName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end, lerr := parseLabels(rest, labels)
		if lerr != nil {
			return "", nil, 0, lerr
		}
		rest = rest[end:]
	}
	rest = strings.TrimLeft(rest, " \t")
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	}
	value, err = parseSampleValue(fields[0])
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q: %w", fields[0], err)
	}
	if len(fields) == 2 {
		if _, terr := strconv.ParseInt(fields[1], 10, 64); terr != nil {
			return "", nil, 0, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return name, labels, value, nil
}

func parseSampleValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return strconv.ParseFloat("+Inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-Inf", 64)
	case "NaN":
		return strconv.ParseFloat("NaN", 64)
	}
	return strconv.ParseFloat(s, 64)
}

// parseLabels parses a {k="v",...} block starting at s[0] == '{' and
// returns the index just past the closing brace.
func parseLabels(s string, out map[string]string) (int, error) {
	i := 1
	for {
		for i < len(s) && (s[i] == ' ' || s[i] == ',') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return i + 1, nil
		}
		start := i
		for i < len(s) && s[i] != '=' {
			i++
		}
		if i == len(s) {
			return 0, fmt.Errorf("unterminated label set %q", s)
		}
		lname := s[start:i]
		if !validLabelName(lname) {
			return 0, fmt.Errorf("invalid label name %q", lname)
		}
		i++ // '='
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("label %s: value not quoted", lname)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(s) {
				return 0, fmt.Errorf("label %s: unterminated value", lname)
			}
			c := s[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				i++
				if i >= len(s) {
					return 0, fmt.Errorf("label %s: dangling escape", lname)
				}
				switch s[i] {
				case '\\', '"':
					val.WriteByte(s[i])
				case 'n':
					val.WriteByte('\n')
				default:
					return 0, fmt.Errorf("label %s: bad escape \\%c", lname, s[i])
				}
				i++
				continue
			}
			val.WriteByte(c)
			i++
		}
		if _, dup := out[lname]; dup {
			return 0, fmt.Errorf("duplicate label %s", lname)
		}
		out[lname] = val.String()
	}
}

// renderSorted renders a parsed label map with sorted keys, for
// duplicate detection independent of label order.
func renderSorted(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	// Tiny sets: insertion sort keeps this dependency-free and obvious.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", k, labels[k])
	}
	sb.WriteByte('}')
	return sb.String()
}
