// Package metrics is the live telemetry plane of the reproduction: an
// allocation-conscious registry of typed instruments every layer
// publishes into, served to wall-clock observers without perturbing
// virtual time.
//
// The design splits every instrument into two storages:
//
//   - a live cell, written only by the engine goroutine that owns the
//     instrumented component (plain stores, no locks, no allocation —
//     Counter.Add/Gauge.Set/Histogram.Observe are safe on the frame fast
//     path and cost nothing the event loop can notice);
//   - a published cell (atomics), copied from the live cell by
//     Registry.Publish at quiescent points only — after a serial
//     Sim.Run drains, or in a netsim.Coordinator.OnQuiesce callback
//     when the simulation is sharded.
//
// Wall-clock readers (the /metrics and /snapshot HTTP endpoints, the
// in-process Snapshot API) touch only the published cells, so a scraper
// can never contend with a running simulation: the hot path takes no
// lock, and collection happens exactly when every shard is parked.
// Because instruments either observe existing state through sample
// closures or are plain Go counter increments, enabling metrics never
// schedules an event, never advances a clock, and never changes a
// virtual-time output — the golden-fingerprint suite pins that a
// metrics-on run is byte-identical to a metrics-off run at any shard
// count.
//
// # Naming scheme
//
// Instruments follow Prometheus conventions with an `ab_` prefix and a
// `<subsystem>_` second segment: ab_shard_* (engine gauges),
// ab_engine_* (coordinator), ab_bridge_* (per-bridge counters),
// ab_ttcp_* / ab_ping_* (workloads), ab_trace_* (the causal tracing
// plane: ab_trace_events_total, ab_trace_spans_total,
// ab_trace_dropped_events_total and ab_trace_flight_dumps_total
// samplers over the tracer's merge state, plus the ab_trace_vm_exec_ns
// histogram of VM handler spans observed at Flush). Counters end in
// `_total`. Every instrument registered through topo carries `net`
// (graph name) and, where meaningful, `shard`, `bridge` or `flow`
// labels assigned at Build time.
//
// # Adding a metric
//
// From a scenario or switchlet harness, grab the net's registry and
// register either a live instrument or a sampler:
//
//	reg := net.Metrics() // non-nil once EnableMetrics ran
//	hits := reg.Counter("ab_myproto_hits_total", "frames my handler claimed",
//	    metrics.Labels{{Name: "net", Value: "demo"}})
//	...
//	hits.Inc() // from the handler: single-writer, 0 allocs
//
//	reg.SampleGauge("ab_myproto_table_size", "entries in my table",
//	    labels, func() float64 { return float64(len(table)) })
//
// Samplers run at quiescent points on the publishing goroutine, so they
// may read any simulation state without synchronization.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is the instrument type, mirroring the Prometheus metric types the
// text exposition declares.
type Kind int

const (
	// KindCounter is a monotonically non-decreasing count.
	KindCounter Kind = iota
	// KindGauge is a point-in-time value that may move both ways.
	KindGauge
	// KindHistogram is a fixed-bucket distribution.
	KindHistogram
)

var kindNames = [...]string{"counter", "gauge", "histogram"}

// String returns the Prometheus TYPE keyword for the kind.
func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("kind(%d)", int(k))
	}
	return kindNames[k]
}

// Label is one name="value" pair on a series.
type Label struct {
	Name, Value string
}

// Labels is an ordered label set. Order is preserved in the rendered
// series (registration determinism), and duplicate rendered label sets
// within one family are registration bugs.
type Labels []Label

// With returns a copy of ls extended by one pair; the receiver is not
// modified, so a base label set can be shared across registrations.
func (ls Labels) With(name, value string) Labels {
	out := make(Labels, 0, len(ls)+1)
	out = append(out, ls...)
	return append(out, Label{Name: name, Value: value})
}

// render produces the canonical {a="b",c="d"} form ("" when empty),
// escaping backslash, double quote and newline per the exposition
// format.
func (ls Labels) render() string {
	if len(ls) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Name)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(l.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Counter is a monotonically increasing count. It is single-writer: only
// the goroutine owning the instrumented component may call Add/Inc (the
// engine-local discipline every simulation component already follows).
type Counter struct {
	v uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the live count (owner goroutine only).
func (c *Counter) Value() uint64 { return c.v }

// Gauge is a point-in-time value. Single-writer, like Counter.
type Gauge struct {
	v float64
}

// Set stores the value.
func (g *Gauge) Set(v float64) { g.v = v }

// Add shifts the value by d.
func (g *Gauge) Add(d float64) { g.v += d }

// Value returns the live value (owner goroutine only).
func (g *Gauge) Value() float64 { return g.v }

// Histogram is a fixed-bucket distribution. The bucket layout is frozen
// at registration; Observe is a bounded linear scan over a slice that
// never reallocates, so steady-state observation is allocation-free.
// Single-writer, like Counter.
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf is implicit
	counts []uint64  // len(bounds)+1, cumulative only at render time
	sum    float64
	count  uint64
}

// equalBounds reports element-wise equality: a family's series must
// share one bucket layout or their rendered le labels would lie.
func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.count++
	h.sum += v
}

// Count returns the live observation count (owner goroutine only).
func (h *Histogram) Count() uint64 { return h.count }

// histSnap is an immutable published copy of a histogram.
type histSnap struct {
	counts []uint64
	sum    float64
	count  uint64
}

// DynamicPoint is one series emitted by a dynamic family's callback.
type DynamicPoint struct {
	Labels Labels
	Value  float64
}

// series is one registered time series of a family.
type series struct {
	labels string // rendered

	// Exactly one live source is set.
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	sample  func() float64

	// Published cells, written by Publish, read by renderers.
	pub     atomic.Uint64 // math.Float64bits of the scalar value
	histPub atomic.Pointer[histSnap]
}

// family groups the series of one metric name.
type family struct {
	name, help string
	kind       Kind
	series     []*series
	seen       map[string]bool // rendered label sets, duplicate guard

	// dynamic families re-enumerate their series at every Publish;
	// several components may contribute emitters to one family.
	dynamics []func(emit func(Labels, float64))
	dynPub   atomic.Pointer[[]dynPoint]

	histBounds []float64
}

type dynPoint struct {
	labels string
	value  float64
}

// Registry is one component tree's instrument set — typically one
// materialized topo.Net. Structure (families, series) is guarded by a
// mutex taken at registration, Publish and render time only; instrument
// updates never touch it.
type Registry struct {
	// Net names the instrumented simulation (the topology graph name).
	Net string

	mu       sync.RWMutex
	families []*family
	byName   map[string]*family

	// publishedWall is the wall-clock instant of the last Publish.
	publishedWall atomic.Int64
	// publishes counts Publish calls (quiescent points observed).
	publishes atomic.Uint64
}

// NewRegistry creates an empty registry for the named net.
func NewRegistry(net string) *Registry {
	return &Registry{Net: net, byName: map[string]*family{}}
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// familyFor finds or creates the family, enforcing one kind and help
// text per name. Misuse is a programming bug: it panics.
func (r *Registry) familyFor(name, help string, kind Kind) *family {
	if !validName(name) {
		panic("metrics: invalid metric name " + name)
	}
	if kind == KindCounter && !strings.HasSuffix(name, "_total") {
		panic("metrics: counter " + name + " must end in _total")
	}
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, seen: map[string]bool{}}
		r.byName[name] = f
		r.families = append(r.families, f)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s registered as both %v and %v", name, f.kind, kind))
	}
	if f.help != help {
		panic("metrics: " + name + " registered with conflicting help texts")
	}
	return f
}

func (r *Registry) addSeries(name, help string, kind Kind, ls Labels, s *series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, kind)
	if len(f.dynamics) > 0 {
		panic("metrics: " + name + " is a dynamic family; cannot add static series")
	}
	for _, l := range ls {
		if !validLabelName(l.Name) {
			panic("metrics: invalid label name " + l.Name + " on " + name)
		}
	}
	s.labels = ls.render()
	if f.seen[s.labels] {
		panic("metrics: duplicate series " + name + s.labels)
	}
	f.seen[s.labels] = true
	f.series = append(f.series, s)
}

// Counter registers and returns a live counter series.
func (r *Registry) Counter(name, help string, ls Labels) *Counter {
	c := &Counter{}
	r.addSeries(name, help, KindCounter, ls, &series{counter: c})
	return c
}

// Gauge registers and returns a live gauge series.
func (r *Registry) Gauge(name, help string, ls Labels) *Gauge {
	g := &Gauge{}
	r.addSeries(name, help, KindGauge, ls, &series{gauge: g})
	return g
}

// Histogram registers a live histogram with the given ascending bucket
// upper bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help string, ls Labels, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: histogram " + name + " bounds not ascending")
		}
	}
	b := append([]float64(nil), bounds...)
	h := &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
	func() {
		// Deferred unlock, like addSeries: familyFor panics on misuse,
		// and a panicking registration must not leave the registry
		// locked (a recovered panic would then hang every scrape).
		r.mu.Lock()
		defer r.mu.Unlock()
		f := r.familyFor(name, help, KindHistogram)
		if f.histBounds == nil {
			f.histBounds = b
		} else if !equalBounds(f.histBounds, b) {
			panic("metrics: histogram " + name + " bucket layout differs across series")
		}
	}()
	r.addSeries(name, help, KindHistogram, ls, &series{hist: h})
	return h
}

// SampleCounter registers a counter whose value is read from fn at every
// Publish — the idiom for mirroring counters a component already keeps
// (bridge.Stats, NIC counters): zero cost on the instrumented path.
func (r *Registry) SampleCounter(name, help string, ls Labels, fn func() float64) {
	r.addSeries(name, help, KindCounter, ls, &series{sample: fn})
}

// SampleGauge registers a gauge whose value is read from fn at every
// Publish.
func (r *Registry) SampleGauge(name, help string, ls Labels, fn func() float64) {
	r.addSeries(name, help, KindGauge, ls, &series{sample: fn})
}

// Dynamic registers an emitter into a family whose series set is
// re-enumerated at every Publish — for populations that change during a
// run, like the installed-switchlet version set of a bridge. Several
// components may register emitters into the same family (one per
// bridge, say); each emitter's label sets must stay distinct. kind must
// be KindGauge or KindCounter.
func (r *Registry) Dynamic(name, help string, kind Kind, fn func(emit func(Labels, float64))) {
	if kind == KindHistogram {
		panic("metrics: dynamic histogram families are not supported")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, kind)
	if len(f.series) > 0 {
		panic("metrics: " + name + " already has static series")
	}
	f.dynamics = append(f.dynamics, fn)
}

// Publish copies every live value into the published cells. Call it only
// at quiescent points (Coordinator.OnQuiesce / serial Sim.OnQuiesce —
// topo wires this automatically): samplers read engine state without
// synchronization, which is exactly what quiescence licenses.
func (r *Registry) Publish() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, f := range r.families {
		if len(f.dynamics) > 0 {
			pts := []dynPoint{}
			emit := func(ls Labels, v float64) {
				pts = append(pts, dynPoint{labels: ls.render(), value: v})
			}
			for _, fn := range f.dynamics {
				fn(emit)
			}
			f.dynPub.Store(&pts)
			continue
		}
		for _, s := range f.series {
			switch {
			case s.hist != nil:
				snap := &histSnap{
					counts: append([]uint64(nil), s.hist.counts...),
					sum:    s.hist.sum,
					count:  s.hist.count,
				}
				s.histPub.Store(snap)
			case s.counter != nil:
				s.pub.Store(math.Float64bits(float64(s.counter.v)))
			case s.gauge != nil:
				s.pub.Store(math.Float64bits(s.gauge.v))
			case s.sample != nil:
				s.pub.Store(math.Float64bits(s.sample()))
			}
		}
	}
	r.publishedWall.Store(time.Now().UnixNano())
	r.publishes.Add(1)
}

// Publishes reports how many quiescent-point publishes have run.
func (r *Registry) Publishes() uint64 { return r.publishes.Load() }

// --- rendering ---------------------------------------------------------------

// FormatValue renders a sample value exactly as the text exposition
// does, for consumers that print published values outside a scrape
// (the script console's stats view).
func FormatValue(v float64) string { return formatValue(v) }

// formatValue renders a sample value the way the exposition format
// expects: integral values without an exponent, everything else via %g.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// renderFamilies walks the families in registration order, handing the
// caller each family's comment metadata plus its fully rendered sample
// rows — the one implementation behind both the per-registry and the
// hub-merged text expositions. It reads only published cells.
func (r *Registry) renderFamilies(visit func(name, help string, kind Kind, rows []string)) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, f := range r.families {
		var rows []string
		if len(f.dynamics) > 0 {
			if pts := f.dynPub.Load(); pts != nil {
				for _, p := range *pts {
					rows = append(rows, fmt.Sprintf("%s%s %s", f.name, p.labels, formatValue(p.value)))
				}
			}
			visit(f.name, f.help, f.kind, rows)
			continue
		}
		for _, s := range f.series {
			if s.hist != nil {
				flattenHist(f, s, func(name, labels string, v float64) {
					rows = append(rows, fmt.Sprintf("%s%s %s", name, labels, formatValue(v)))
				})
				continue
			}
			v := math.Float64frombits(s.pub.Load())
			rows = append(rows, fmt.Sprintf("%s%s %s", f.name, s.labels, formatValue(v)))
		}
		visit(f.name, f.help, f.kind, rows)
	}
}

// flattenHist hands visit the _bucket/_sum/_count components of one
// histogram series, computed from its published snapshot — the single
// flattening behind both the text exposition and Snapshot, so the two
// surfaces cannot drift.
func flattenHist(f *family, s *series, visit func(name, labels string, v float64)) {
	snap := s.histPub.Load()
	if snap == nil {
		snap = &histSnap{counts: make([]uint64, len(f.histBounds)+1)}
	}
	cum := uint64(0)
	for i, b := range f.histBounds {
		cum += snap.counts[i]
		visit(f.name+"_bucket", withLe(s.labels, formatValue(b)), float64(cum))
	}
	cum += snap.counts[len(f.histBounds)]
	visit(f.name+"_bucket", withLe(s.labels, "+Inf"), float64(cum))
	visit(f.name+"_sum", s.labels, snap.sum)
	visit(f.name+"_count", s.labels, float64(snap.count))
}

// RenderText writes the registry's published values in the Prometheus
// text exposition format (version 0.0.4). It reads only published
// cells; it never blocks a running simulation.
func (r *Registry) RenderText(sb *strings.Builder) {
	r.renderFamilies(func(name, help string, kind Kind, rows []string) {
		fmt.Fprintf(sb, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
		for _, row := range rows {
			sb.WriteString(row)
			sb.WriteByte('\n')
		}
	})
}

// withLe splices an le="<bound>" label into a rendered label set.
func withLe(rendered, bound string) string {
	le := `le="` + bound + `"`
	if rendered == "" {
		return "{" + le + "}"
	}
	return rendered[:len(rendered)-1] + "," + le + "}"
}

// --- snapshots ---------------------------------------------------------------

// Point is one flattened series in a snapshot. Histograms flatten to
// their _bucket/_sum/_count series, exactly like the text exposition.
type Point struct {
	Name   string  `json:"name"`
	Labels string  `json:"labels,omitempty"`
	Kind   string  `json:"kind"`
	Value  float64 `json:"value"`
}

// Snapshot is one registry's published values, JSON-serializable — the
// in-process API behind /snapshot and the end-of-run summaries.
type Snapshot struct {
	Net string `json:"net"`
	// WallUnixNs is when the values were last published (0 = never).
	WallUnixNs int64   `json:"wall_unix_ns"`
	Series     []Point `json:"series"`
}

// Snapshot returns the registry's current published values.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	snap := Snapshot{Net: r.Net, WallUnixNs: r.publishedWall.Load()}
	for _, f := range r.families {
		kind := f.kind.String()
		if len(f.dynamics) > 0 {
			if pts := f.dynPub.Load(); pts != nil {
				for _, p := range *pts {
					snap.Series = append(snap.Series, Point{Name: f.name, Labels: p.labels, Kind: kind, Value: p.value})
				}
			}
			continue
		}
		for _, s := range f.series {
			if s.hist != nil {
				flattenHist(f, s, func(name, labels string, v float64) {
					snap.Series = append(snap.Series, Point{Name: name, Labels: labels, Kind: kind, Value: v})
				})
				continue
			}
			snap.Series = append(snap.Series, Point{Name: f.name, Labels: s.labels, Kind: kind, Value: math.Float64frombits(s.pub.Load())})
		}
	}
	return snap
}

// Get returns the published value of the series with the given name and
// rendered label set ("" for no labels), for tests and summaries.
func (s Snapshot) Get(name, labels string) (float64, bool) {
	for i := range s.Series {
		if s.Series[i].Name == name && s.Series[i].Labels == labels {
			return s.Series[i].Value, true
		}
	}
	return 0, false
}

// --- hub ---------------------------------------------------------------------

// Hub is a process-wide set of live registries — what the HTTP endpoint
// serves. Builds attach their net's registry; re-building a net of the
// same name replaces the previous registry (determinism reruns).
type Hub struct {
	mu    sync.Mutex
	regs  []*Registry
	byNet map[string]int
}

// Attach adds (or replaces, by net name) a registry.
func (h *Hub) Attach(r *Registry) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.byNet == nil {
		h.byNet = map[string]int{}
	}
	if i, ok := h.byNet[r.Net]; ok {
		h.regs[i] = r
		return
	}
	h.byNet[r.Net] = len(h.regs)
	h.regs = append(h.regs, r)
}

// Detach removes a net's registry from the hub. A registry's sampler
// closures pin the whole simulation graph they observe, so a
// long-running embedder that builds many topologies must detach (or
// re-use net names — Attach replaces) to let finished simulations be
// collected. It reports whether the net was attached.
func (h *Hub) Detach(net string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	i, ok := h.byNet[net]
	if !ok {
		return false
	}
	h.regs = append(h.regs[:i], h.regs[i+1:]...)
	delete(h.byNet, net)
	for n, j := range h.byNet {
		if j > i {
			h.byNet[n] = j - 1
		}
	}
	return true
}

// Registries returns the attached registries, ordered by net name (the
// attach order interleaves arbitrarily under a parallel runner, so the
// rendered order is made deterministic here).
func (h *Hub) Registries() []*Registry {
	h.mu.Lock()
	out := append([]*Registry(nil), h.regs...)
	h.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Net < out[j].Net })
	return out
}

// SnapshotAll snapshots every attached registry.
func (h *Hub) SnapshotAll() []Snapshot {
	regs := h.Registries()
	out := make([]Snapshot, 0, len(regs))
	for _, r := range regs {
		out = append(out, r.Snapshot())
	}
	return out
}

// RenderText renders every attached registry's published values as one
// exposition document. A family name may repeat across nets, and the
// format requires each name's HELP/TYPE exactly once with all its
// series grouped under it, so the hub merges families across
// registries before rendering — through the same renderFamilies walk
// the per-registry exposition uses.
func (h *Hub) RenderText() string {
	type famEntry struct {
		help string
		kind Kind
		rows []string
	}
	var order []string
	fams := map[string]*famEntry{}
	for _, r := range h.Registries() {
		r.renderFamilies(func(name, help string, kind Kind, rows []string) {
			fe, ok := fams[name]
			if !ok {
				fe = &famEntry{help: help, kind: kind}
				fams[name] = fe
				order = append(order, name)
			}
			fe.rows = append(fe.rows, rows...)
		})
	}
	var sb strings.Builder
	for _, name := range order {
		fe := fams[name]
		fmt.Fprintf(&sb, "# HELP %s %s\n# TYPE %s %s\n", name, fe.help, name, fe.kind)
		for _, row := range fe.rows {
			sb.WriteString(row)
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// DefaultHub is the process-wide hub abbench and the SDK serve.
var DefaultHub = &Hub{}

// enabled is the process-wide opt-in: when set, topo.Build instruments
// every materialized net and attaches it to DefaultHub.
var enabled atomic.Bool

// Enable turns the metrics plane on process-wide (abbench
// -metrics-addr/-metrics-out, activebridge.EnableMetrics).
func Enable() { enabled.Store(true) }

// SetEnabled sets the process-wide opt-in explicitly (tests restore the
// previous state with it).
func SetEnabled(v bool) bool { return enabled.Swap(v) }

// Enabled reports whether the metrics plane is on.
func Enabled() bool { return enabled.Load() }
