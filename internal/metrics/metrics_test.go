package metrics

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func testLabels() Labels {
	return Labels{{Name: "net", Value: "t"}}
}

func TestCounterGaugeHistogramPublish(t *testing.T) {
	r := NewRegistry("t")
	c := r.Counter("ab_test_frames_total", "frames", testLabels())
	g := r.Gauge("ab_test_depth", "depth", testLabels())
	h := r.Histogram("ab_test_rtt_ms", "rtt", testLabels(), []float64{1, 5, 10})

	c.Add(3)
	c.Inc()
	g.Set(7.5)
	h.Observe(0.5)
	h.Observe(6)
	h.Observe(100)

	// Nothing visible before Publish.
	snap := r.Snapshot()
	if v, ok := snap.Get("ab_test_frames_total", `{net="t"}`); !ok || v != 0 {
		t.Fatalf("pre-publish counter = %v, %v", v, ok)
	}

	r.Publish()
	snap = r.Snapshot()
	if v, _ := snap.Get("ab_test_frames_total", `{net="t"}`); v != 4 {
		t.Fatalf("counter = %v, want 4", v)
	}
	if v, _ := snap.Get("ab_test_depth", `{net="t"}`); v != 7.5 {
		t.Fatalf("gauge = %v, want 7.5", v)
	}
	if v, _ := snap.Get("ab_test_rtt_ms_count", `{net="t"}`); v != 3 {
		t.Fatalf("hist count = %v, want 3", v)
	}
	if v, _ := snap.Get("ab_test_rtt_ms_sum", `{net="t"}`); v != 106.5 {
		t.Fatalf("hist sum = %v, want 106.5", v)
	}
	// Buckets are cumulative: le=1 -> 1, le=5 -> 1, le=10 -> 2, +Inf -> 3.
	for _, want := range []struct {
		le string
		v  float64
	}{{"1", 1}, {"5", 1}, {"10", 2}, {"+Inf", 3}} {
		got, ok := snap.Get("ab_test_rtt_ms_bucket", `{net="t",le="`+want.le+`"}`)
		if !ok || got != want.v {
			t.Fatalf("bucket le=%s = %v (ok=%v), want %v", want.le, got, ok, want.v)
		}
	}
}

func TestSampledInstrumentsReadAtPublish(t *testing.T) {
	r := NewRegistry("t")
	n := uint64(0)
	r.SampleCounter("ab_test_events_total", "events", nil, func() float64 { return float64(n) })
	n = 42
	r.Publish()
	if v, _ := r.Snapshot().Get("ab_test_events_total", ""); v != 42 {
		t.Fatalf("sampled counter = %v, want 42", v)
	}
	n = 50 // not republished: snapshot stays at the quiescent value
	if v, _ := r.Snapshot().Get("ab_test_events_total", ""); v != 42 {
		t.Fatalf("unpublished sampled counter moved: %v", v)
	}
}

func TestDynamicFamily(t *testing.T) {
	r := NewRegistry("t")
	mods := []string{"learning"}
	r.Dynamic("ab_test_switchlet_info", "installed", KindGauge, func(emit func(Labels, float64)) {
		for _, m := range mods {
			emit(Labels{{Name: "module", Value: m}}, 1)
		}
	})
	r.Publish()
	if v, ok := r.Snapshot().Get("ab_test_switchlet_info", `{module="learning"}`); !ok || v != 1 {
		t.Fatalf("dynamic series missing: %v %v", v, ok)
	}
	mods = append(mods, "spanning")
	r.Publish()
	if v, ok := r.Snapshot().Get("ab_test_switchlet_info", `{module="spanning"}`); !ok || v != 1 {
		t.Fatalf("dynamic series not re-enumerated: %v %v", v, ok)
	}
}

func TestRegistrationMisusePanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func(r *Registry)
	}{
		{"bad name", func(r *Registry) { r.Gauge("1bad", "", nil) }},
		{"counter without _total", func(r *Registry) { r.Counter("ab_test_frames", "", nil) }},
		{"duplicate series", func(r *Registry) {
			r.Gauge("ab_test_g", "", nil)
			r.Gauge("ab_test_g", "", nil)
		}},
		{"kind clash", func(r *Registry) {
			r.Gauge("ab_test_g", "", nil)
			r.SampleCounter("ab_test_g", "", testLabels(), func() float64 { return 0 })
		}},
		{"bad label", func(r *Registry) { r.Gauge("ab_test_g", "", Labels{{Name: "1x", Value: "v"}}) }},
		{"descending bounds", func(r *Registry) { r.Histogram("ab_test_h", "", nil, []float64{2, 1}) }},
		{"help clash", func(r *Registry) {
			r.Gauge("ab_test_g", "one thing", testLabels())
			r.Gauge("ab_test_g", "another thing", testLabels().With("x", "y"))
		}},
		{"bucket layout clash", func(r *Registry) {
			r.Histogram("ab_test_h", "", testLabels(), []float64{1, 2, 3})
			r.Histogram("ab_test_h", "", testLabels().With("x", "y"), []float64{10, 20, 30})
		}},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", c.name)
				}
			}()
			c.fn(NewRegistry("t"))
		}()
	}
}

// TestInstrumentUpdateAllocBudget pins the hot-path contract: updating a
// live instrument allocates nothing, so instruments may sit on the frame
// fast path without perturbing the zero-allocation budgets.
func TestInstrumentUpdateAllocBudget(t *testing.T) {
	r := NewRegistry("t")
	c := r.Counter("ab_test_frames_total", "", nil)
	g := r.Gauge("ab_test_depth", "", nil)
	h := r.Histogram("ab_test_rtt_ms", "", nil, []float64{1, 2, 4, 8, 16, 32, 64})
	if allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(1.5)
		h.Observe(7)
	}); allocs != 0 {
		t.Fatalf("instrument updates alloc %v/op, want 0", allocs)
	}
}

func TestRenderTextLintsClean(t *testing.T) {
	r := NewRegistry("t")
	c := r.Counter("ab_test_frames_total", "frames seen", testLabels())
	r.Gauge("ab_test_depth", "queue depth", testLabels().With("shard", "0"))
	h := r.Histogram("ab_test_rtt_ms", "rtt distribution", testLabels(), []float64{1, 10})
	r.Dynamic("ab_test_info", "installed modules", KindGauge, func(emit func(Labels, float64)) {
		emit(Labels{{Name: "module", Value: `we"ird\valu` + "\ne"}}, 1)
	})
	c.Add(9)
	h.Observe(3)
	r.Publish()

	var sb strings.Builder
	r.RenderText(&sb)
	if err := LintString(sb.String()); err != nil {
		t.Fatalf("rendered text fails lint: %v\n%s", err, sb.String())
	}

	hub := &Hub{}
	hub.Attach(r)
	r2 := NewRegistry("u")
	r2.Counter("ab_test_frames_total", "frames seen", Labels{{Name: "net", Value: "u"}}).Inc()
	r2.Publish()
	hub.Attach(r2)
	merged := hub.RenderText()
	if err := LintString(merged); err != nil {
		t.Fatalf("merged hub text fails lint: %v\n%s", err, merged)
	}
	if strings.Count(merged, "# TYPE ab_test_frames_total") != 1 {
		t.Fatalf("family not merged across nets:\n%s", merged)
	}
}

// TestTextAndSnapshotAgree pins that the text exposition and the JSON
// snapshot flatten to the same series and values — they share one
// family walk, and this keeps them from ever drifting apart.
func TestTextAndSnapshotAgree(t *testing.T) {
	r := NewRegistry("t")
	r.Counter("ab_test_frames_total", "frames", testLabels()).Add(7)
	r.Gauge("ab_test_depth", "depth", testLabels()).Set(2.5)
	h := r.Histogram("ab_test_rtt_ms", "rtt", testLabels(), []float64{1, 10})
	h.Observe(0.5)
	h.Observe(3)
	h.Observe(40)
	r.Publish()

	var sb strings.Builder
	r.RenderText(&sb)
	textRows := map[string]bool{}
	for _, line := range strings.Split(sb.String(), "\n") {
		if line != "" && !strings.HasPrefix(line, "#") {
			textRows[line] = true
		}
	}
	snap := r.Snapshot()
	if len(snap.Series) != len(textRows) {
		t.Fatalf("snapshot has %d series, text has %d rows", len(snap.Series), len(textRows))
	}
	for _, p := range snap.Series {
		row := p.Name + p.Labels + " " + FormatValue(p.Value)
		if !textRows[row] {
			t.Errorf("snapshot point %q has no matching text row", row)
		}
	}
}

func TestLintCatchesMalformedDocuments(t *testing.T) {
	cases := []struct {
		name, doc, frag string
	}{
		{"bad metric name", "0bad 1\n", "invalid metric name"},
		{"bad value", "ab_x{a=\"b\"} banana\n", "bad value"},
		{"unquoted label", "ab_x{a=b} 1\n", "not quoted"},
		{"duplicate series", "ab_x 1\nab_x 1\n", "duplicate series"},
		{"ungrouped", "ab_x 1\nab_y 1\nab_x{a=\"b\"} 2\n", "not grouped"},
		{"negative counter", "# TYPE ab_x_total counter\nab_x_total -1\n", "negative"},
		{"counter naming", "# TYPE ab_x counter\nab_x 1\n", "does not end in _total"},
		{"double TYPE", "# TYPE ab_x gauge\n# TYPE ab_x gauge\n", "second TYPE"},
		{"TYPE after samples", "ab_x 1\n# TYPE ab_x gauge\n", "after its samples"},
		{"unknown type", "# TYPE ab_x widget\n", "unknown type"},
		{"bucket without le", "# TYPE ab_h histogram\nab_h_bucket 1\n", "no le label"},
		{"non-cumulative buckets", "# TYPE ab_h histogram\nab_h_bucket{le=\"1\"} 5\nab_h_bucket{le=\"+Inf\"} 3\n", "not cumulative"},
		{"NaN counter", "# TYPE ab_x_total counter\nab_x_total NaN\n", "not finite"},
		{"Inf counter", "# TYPE ab_x_total counter\nab_x_total +Inf\n", "not finite"},
		{"missing inf", "# TYPE ab_h histogram\nab_h_bucket{le=\"1\"} 5\n", "missing le=\"+Inf\""},
		{"bad escape", `ab_x{a="\q"} 1` + "\n", "bad escape"},
	}
	for _, c := range cases {
		if err := LintString(c.doc); err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: err = %v, want fragment %q", c.name, err, c.frag)
		}
	}
	if err := LintString("# just a comment\nab_ok 1 1690000000000\n"); err != nil {
		t.Errorf("valid doc rejected: %v", err)
	}
}

func TestHandlerServesMetricsAndSnapshot(t *testing.T) {
	hub := &Hub{}
	r := NewRegistry("t")
	r.Counter("ab_test_frames_total", "frames", testLabels()).Add(5)
	r.Publish()
	hub.Attach(r)

	srv := httptest.NewServer(Handler(hub))
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, _ := io.ReadAll(resp.Body)
		return string(body), resp.Header.Get("Content-Type")
	}

	text, ctype := get("/metrics")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("/metrics content type %q", ctype)
	}
	if err := LintString(text); err != nil {
		t.Errorf("/metrics fails lint: %v", err)
	}
	if !strings.Contains(text, `ab_test_frames_total{net="t"} 5`) {
		t.Errorf("/metrics missing series:\n%s", text)
	}

	body, ctype := get("/snapshot")
	if ctype != "application/json" {
		t.Errorf("/snapshot content type %q", ctype)
	}
	var hs HubSnapshot
	if err := json.Unmarshal([]byte(body), &hs); err != nil {
		t.Fatalf("/snapshot not JSON: %v", err)
	}
	if len(hs.Nets) != 1 || hs.Nets[0].Net != "t" {
		t.Fatalf("snapshot nets = %+v", hs.Nets)
	}
}

func TestHubReplacesSameNet(t *testing.T) {
	hub := &Hub{}
	a := NewRegistry("same")
	b := NewRegistry("same")
	hub.Attach(a)
	hub.Attach(b)
	regs := hub.Registries()
	if len(regs) != 1 || regs[0] != b {
		t.Fatalf("hub did not replace same-net registry: %d regs", len(regs))
	}
}

// TestPanickedRegistrationDoesNotPoisonRegistry: a recovered
// registration panic (the scenario runner recovers scenario panics)
// must not leave the registry mutex held — a later scrape would hang
// the whole hub.
func TestPanickedRegistrationDoesNotPoisonRegistry(t *testing.T) {
	r := NewRegistry("t")
	r.Gauge("ab_test_g", "g", testLabels())
	for _, bad := range []func(){
		func() { r.Histogram("ab_test_g", "g", nil, []float64{1}) }, // kind clash inside Histogram's lock
		func() { r.Counter("ab_test_g_total", "", nil); r.Counter("ab_test_g_total", "x", nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("misuse did not panic")
				}
			}()
			bad()
		}()
	}
	done := make(chan struct{})
	go func() {
		r.Publish()
		r.Snapshot()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("registry left locked after recovered registration panic")
	}
}

func TestHubDetach(t *testing.T) {
	hub := &Hub{}
	for _, n := range []string{"a", "b", "c"} {
		hub.Attach(NewRegistry(n))
	}
	if !hub.Detach("b") {
		t.Fatal("Detach(b) = false")
	}
	if hub.Detach("b") {
		t.Fatal("second Detach(b) = true")
	}
	names := []string{}
	for _, r := range hub.Registries() {
		names = append(names, r.Net)
	}
	if len(names) != 2 || names[0] != "a" || names[1] != "c" {
		t.Fatalf("after detach: %v", names)
	}
	// Index map stays coherent: replacing c must not resurrect b.
	c2 := NewRegistry("c")
	hub.Attach(c2)
	regs := hub.Registries()
	if len(regs) != 2 || regs[1] != c2 {
		t.Fatalf("attach-after-detach broken: %d regs", len(regs))
	}
}

func TestFormatValue(t *testing.T) {
	if s := formatValue(3); s != "3" {
		t.Errorf("formatValue(3) = %s", s)
	}
	if s := formatValue(3.5); s != "3.5" {
		t.Errorf("formatValue(3.5) = %s", s)
	}
	if s := formatValue(math.Inf(1)); s != "+Inf" {
		t.Errorf("formatValue(+Inf) = %s", s)
	}
}
