// Sharded conservative parallel execution.
//
// A Coordinator partitions one simulation across N shard engines (each a
// *Sim with its own event heap, payload arena and virtual clock) plus one
// control engine that holds the events scheduled by experiment code. The
// design goal is byte-identical results to serial execution at any shard
// count, bought with conservative (Chandy–Misra–Bryant style) lookahead
// synchronization rather than rollback:
//
//   - Every component (NIC, Segment, CPU, node) is bound to exactly one
//     shard engine and is only ever touched from that shard's goroutine
//     while a window runs.
//   - A segment whose attached NICs span shards (a "cut" segment) lives in
//     the lowest-indexed attached shard (its owner). Transmissions from
//     remote NICs cross through a request channel (zero lookahead: a send
//     at virtual time t must be serialized onto the medium at exactly t),
//     and deliveries to remote NICs cross through a delivery channel whose
//     lookahead is the segment's minimum wire time plus propagation delay.
//     Because owners are always the lower shard, request edges point
//     strictly downward and delivery edges strictly upward: the constraint
//     graph has no zero-lookahead cycle, so the shard clocks pipeline
//     (shard i trails shard j>i by at most the cut lookahead) instead of
//     locking step.
//   - Cross messages are sequenced: each carries its generation time and
//     the sender engine's event sequence number, and a receiver folds them
//     into its heap in a fixed merge order keyed by (release time, source
//     shard, sequence) at deterministic points of its own event stream.
//     Wall-clock scheduling of goroutines therefore cannot change the
//     virtual outcome: two runs of the same sharded simulation execute the
//     same events in the same order.
//   - Control events (anything scheduled on the control engine — the Sim a
//     sharded topo.Net exposes) run under a global barrier: every shard is
//     run up to and including the control event's time and parked, clocks
//     are aligned, then the event executes alone and may safely touch any
//     component in any shard.
//
// Identity with serial execution is exact except for events scheduled by
// distinct causal paths at the exact same nanosecond across a cut, where
// the serial engine breaks the tie by global scheduling order and the
// sharded engine by (time, shard, sequence). The golden scenario suite
// pins that this never changes an observable result for every registered
// topology at 1, 2 and 4 shards.
package netsim

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"github.com/switchware/activebridge/internal/tracing"
)

// maxTime is the sentinel "no event" instant.
const maxTime = Time(math.MaxInt64)

// satAdd shifts t by a non-negative lookahead, saturating at maxTime so
// idle-shard sentinels never wrap.
func satAdd(t Time, d Duration) Time {
	if t >= maxTime-Time(d) {
		return maxTime
	}
	return t + Time(d)
}

// xmsg is one cross-shard message: a remote transmit request (processed at
// gen on the owner) or a frame delivery (scheduled at arrive on the
// remote). genAt/seq reproduce the serial scheduling position: for a
// delivery, the instant it was scheduled (= gen); for a request, the
// genAt of the remote event whose dispatch performed the send — the
// position the inline transmit would have held in a single serial queue.
type xmsg struct {
	gen    Time
	genAt  Time
	seq    uint64
	arrive Time // deliveries only
	nic    *NIC
	raw    []byte
	// trace is the frame's causal trace context, carried across the
	// shard boundary so the receiving engine dispatches under it.
	trace uint64
}

// xchan is a directed cross-shard channel. Requests flow from higher to
// lower shards (lookahead 0); deliveries flow from lower to higher shards
// (lookahead = min over the pair's cut segments of wire+propagation).
type xchan struct {
	src, dst  int
	req       bool
	lookahead Duration
	segs      []*Segment // cut segments contributing to lookahead

	// q[head:] are the pending messages, guarded by the coordinator mutex.
	q    []xmsg
	head int
	// headR caches the release key (gen + lookahead) of q[head] (maxTime
	// when empty) for lock-free peeking by the consumer.
	headR atomic.Int64
}

func (x *xchan) updateHeadR() {
	if x.head == len(x.q) {
		x.q = x.q[:0]
		x.head = 0
		x.headR.Store(int64(maxTime))
		return
	}
	x.headR.Store(int64(x.q[x.head].gen.Add(x.lookahead)))
}

// xport is the owner-shard proxy for a remote NIC attached to a cut
// segment: it holds the transmit queue and drain pacing (which must
// serialize against the segment's busyUntil with zero latency) on the
// segment's side of the cut. Statistics are copied back onto the NIC at
// every quiescent point.
type xport struct {
	nic *NIC
	seg *Segment
	sim *Sim // owner engine

	tx      txq
	drainFn func()
	sendFn  func([]byte)

	txFrames, txBytes, txDrops uint64
}

func newXport(nic *NIC, seg *Segment) *xport {
	p := &xport{nic: nic, seg: seg, sim: seg.sim}
	p.drainFn = p.drain
	p.sendFn = p.send
	return p
}

// send is NIC.Send executed owner-side at the remote's send instant,
// through the same transmit state machine a local NIC uses. It runs as
// a dispatched event, so the ambient curTrace is the frame's trace
// context carried over in the request xmsg.
func (p *xport) send(raw []byte) {
	accepted, start := p.tx.offer(raw, p.sim.curTrace, p.nic.TxQueueLimit)
	if !accepted {
		p.txDrops++
		if fn := p.nic.dropFn; fn != nil {
			// Owner-side notification: runs on the segment owner's
			// engine, which is why TxDropFunc's contract confines the
			// callback to state it alone writes.
			fn(p.nic, raw)
		}
		return
	}
	if start {
		p.drain()
	}
}

func (p *xport) drain() {
	ent, ok := p.tx.next()
	if !ok {
		return
	}
	p.txFrames++
	p.txBytes += uint64(len(ent.raw))
	// Transmit under the queued frame's trace context, as NIC.drain does.
	prev := p.sim.curTrace
	p.sim.curTrace = ent.trace
	done := p.seg.transmit(p.nic, ent.raw)
	p.sim.Schedule(done, p.drainFn)
	p.sim.curTrace = prev
}

// syncStats publishes the proxy's accounting onto the NIC's public fields
// (called at quiescent points only).
func (p *xport) syncStats() {
	p.nic.TxFrames = p.txFrames
	p.nic.TxBytes = p.txBytes
	p.nic.TxDrops = p.txDrops
}

func (p *xport) queueLen() int { return p.tx.backlog() }

// Coordinator owns a set of shard engines plus a control engine and runs
// them as one simulation.
type Coordinator struct {
	shards  []*Sim
	control *Sim

	mu   sync.Mutex
	cond *sync.Cond
	// blockedA counts shards parked on the condition variable; publishers
	// broadcast only when it is nonzero, keeping the uncontended fast path
	// free of the mutex.
	blockedA atomic.Int32

	// chans[src][dst] is the channel from shard src to shard dst (nil when
	// the pair shares no cut segment). in[dst] lists incoming channels in
	// source order, the deterministic merge order for equal keys.
	chans [][]*xchan
	in    [][]*xchan

	// nextLocal[i] is a conservative lower bound on the next instant shard
	// i could generate a cross message at, published by the shard itself.
	nextLocal []atomic.Int64

	// windowEnd is the current window's exclusive upper ordering key:
	// shards execute exactly the events ordered before it. For a window
	// bounded by a control event it is that event's key, so shard events
	// at the control instant run before or after the control event
	// according to their serial scheduling order.
	windowEnd eventKey
	running   bool
	haltedA   atomic.Bool

	// globalNow is the coordinated clock at quiescence (serial Run
	// semantics: time of the last executed event, or the deadline when the
	// whole simulation drained).
	globalNow Time

	// cap mirrors control.MaxEvents for the current run.
	cap       uint64
	capBase   uint64
	executedA atomic.Uint64

	quiesce []func()
	// quiesces counts quiescent points reached (completed run windows).
	quiesces uint64
	// lag[i] is the virtual time between shard i's last executed event
	// and the coordinated clock at the most recent quiescent point,
	// captured before the clocks are re-aligned. A shard that simply
	// ran out of local work contributes its idle span, so this is an
	// activity-staleness measure, not a bound on the conservative
	// synchronization (which aligns every clock at each quiescent
	// point).
	lag []Duration

	// ports are all remote-NIC proxies, for stat syncing at quiescence.
	ports []*xport
}

// NewCoordinator creates n shard engines plus the control engine. The
// control engine is what a sharded net exposes as its Sim: experiment
// code schedules on it (and on node handles) exactly as it would on a
// serial simulation.
func NewCoordinator(n int) *Coordinator {
	c := &Coordinator{
		chans:     make([][]*xchan, n),
		in:        make([][]*xchan, n),
		nextLocal: make([]atomic.Int64, n),
		lag:       make([]Duration, n),
	}
	c.cond = sync.NewCond(&c.mu)
	for i := 0; i < n; i++ {
		c.chans[i] = make([]*xchan, n)
		s := New()
		s.coord, s.shard, s.rank = c, i, int32(i)
		c.shards = append(c.shards, s)
	}
	c.control = New()
	c.control.coord, c.control.shard, c.control.rank = c, -1, -1
	return c
}

// Shard returns shard engine i; components assigned to shard i must be
// constructed against it.
func (c *Coordinator) Shard(i int) *Sim { return c.shards[i] }

// Control returns the control engine.
func (c *Coordinator) Control() *Sim { return c.control }

// Shards reports the number of shard engines.
func (c *Coordinator) Shards() int { return len(c.shards) }

// OnQuiesce registers fn to run (single-threaded) at every quiescent
// point: after each Run window, before control returns to the caller.
// topo uses it to merge per-shard log buffers deterministically.
func (c *Coordinator) OnQuiesce(fn func()) { c.quiesce = append(c.quiesce, fn) }

// linkCut registers seg (owned by its engine's shard) as a cut segment
// with a remote NIC in shard remote, creating the request and delivery
// channels for the pair if needed. Called from Segment.Attach.
func (c *Coordinator) linkCut(seg *Segment, remote int) {
	owner := seg.sim.shard
	if owner == remote {
		return
	}
	if owner > remote {
		// Ownership is lowest-attached-shard by construction (see
		// Segment.Attach); a higher owner would create a zero-lookahead
		// cycle in the constraint graph.
		panic(fmt.Sprintf("netsim: cut segment %s owned by shard %d with remote %d", seg.Name, owner, remote))
	}
	// Delivery channel owner -> remote.
	d := c.chans[owner][remote]
	if d == nil {
		d = &xchan{src: owner, dst: remote}
		d.headR.Store(int64(maxTime))
		c.chans[owner][remote] = d
		c.in[remote] = append(c.in[remote], d)
	}
	d.segs = append(d.segs, seg)
	// Request channel remote -> owner (zero lookahead).
	r := c.chans[remote][owner]
	if r == nil {
		r = &xchan{src: remote, dst: owner, req: true}
		r.headR.Store(int64(maxTime))
		c.chans[remote][owner] = r
		c.in[owner] = append(c.in[owner], r)
	}
}

// refreshLookahead recomputes every delivery channel's lookahead from its
// cut segments' current rate and propagation (they are topology
// constants, but only fixed once the graph is fully built).
func (c *Coordinator) refreshLookahead() {
	for _, row := range c.chans {
		for _, ch := range row {
			if ch == nil || ch.req {
				continue
			}
			la := Duration(math.MaxInt64)
			for _, seg := range ch.segs {
				if l := MinWireLatency(seg.Bps, seg.Propagation); l < la {
					la = l
				}
			}
			if la < 1 {
				la = 1 // a cut with zero latency cannot pipeline; keep 1ns to stay conservative
			}
			ch.lookahead = la
			ch.updateHeadR()
		}
	}
}

// postRequest ships a remote NIC's transmit onto its segment's owner
// shard, to be serialized onto the medium at exactly the send instant.
func (c *Coordinator) postRequest(n *NIC, raw []byte, trace uint64) {
	src := n.sim
	src.nextID++
	m := xmsg{gen: src.now, genAt: src.curGenAt, seq: src.nextID, nic: n, raw: raw, trace: trace}
	c.post(c.chans[src.shard][n.xport.sim.shard], m)
}

// postDelivery ships a frame delivery to a remote NIC under the
// ambient trace context of the transmitting event.
func (c *Coordinator) postDelivery(seg *Segment, n *NIC, arrive Time, raw []byte) {
	src := seg.sim
	src.nextID++
	m := xmsg{gen: src.now, genAt: src.now, seq: src.nextID, arrive: arrive, nic: n, raw: raw, trace: src.curTrace}
	if src.trc != nil {
		src.trc.Emit(tracing.Event{
			VT: int64(src.now), Trace: src.curTrace, Kind: tracing.KindXShard,
			Node: n.Name, Detail: "delivery->remote",
		})
	}
	c.post(c.chans[src.shard][n.sim.shard], m)
}

func (c *Coordinator) post(ch *xchan, m xmsg) {
	c.mu.Lock()
	wasEmpty := ch.head == len(ch.q)
	ch.q = append(ch.q, m)
	if wasEmpty {
		ch.headR.Store(int64(m.gen.Add(ch.lookahead)))
	}
	if c.blockedA.Load() > 0 {
		c.cond.Broadcast()
	}
	c.mu.Unlock()
}

// horizon computes shard s's window horizon: the earliest instant it
// might still execute (and hence send) at within the current window —
// its heap head if that is ordered before the window key, or a pending
// inbound message. Events at or past the window key contribute nothing:
// they cannot run this window, so they cannot send this window.
func (c *Coordinator) horizon(s *Sim) Time {
	nl := maxTime
	if k, ok := s.peekKey(); ok && k.before(&c.windowEnd) {
		nl = k.at
	}
	for _, ch := range c.in[s.shard] {
		if r := Time(ch.headR.Load()); r < nl {
			nl = r
		}
	}
	return nl
}

// publish refreshes shard s's advertised window horizon.
func (c *Coordinator) publish(s *Sim) {
	nl := c.horizon(s)
	prev := c.nextLocal[s.shard].Swap(int64(nl))
	if Time(prev) != nl && c.blockedA.Load() > 0 {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	}
}

// lowWaters computes the conservative fixpoint: lw[i] is a lower bound on
// the next instant shard i can execute at within the current window,
// folding each shard's published horizon with what could still reach it
// over incoming channels. Read-only over atomics; callers may hold the
// mutex but need not.
//
// Read order matters: nextLocal is loaded before channel heads so that a
// message posted between a sender's clock advance and our read is never
// missed optimistically (both stores are sequentially consistent, and the
// sender stores the channel head before advancing nextLocal past it).
func (c *Coordinator) lowWaters(lw []Time) {
	n := len(c.shards)
	for i := 0; i < n; i++ {
		lw[i] = Time(c.nextLocal[i].Load())
	}
	for i := 0; i < n; i++ {
		for _, ch := range c.in[i] {
			if r := Time(ch.headR.Load()); r < lw[i] {
				lw[i] = r
			}
		}
	}
	// Propagate over channel edges to a fixpoint (the graph is tiny).
	for iter := 0; iter < n; iter++ {
		changed := false
		for i := 0; i < n; i++ {
			for _, ch := range c.in[i] {
				b := satAdd(lw[ch.src], ch.lookahead)
				if b < lw[i] {
					lw[i] = b
					changed = true
				}
			}
		}
		if !changed {
			return
		}
	}
}

// bound returns the strict execution bound for shard s given the
// lowWaters fixpoint: s may execute an event at t only if t < bound.
func (c *Coordinator) bound(lw []Time, s int) Time {
	b := maxTime
	for _, ch := range c.in[s] {
		if x := satAdd(lw[ch.src], ch.lookahead); x < b {
			b = x
		}
	}
	return b
}

// drainInto folds every pending cross message into shard s's heap. Fold
// timing is irrelevant to the outcome: each message carries its serial
// ordering key (execution instant, scheduling instant, source rank,
// source sequence), so wherever the wall clock interleaves arrival, the
// heap orders it exactly where the serial engine would have. Execution
// safety is what the conservative bound guarantees separately: a message
// that has not yet arrived can only be for an instant at or beyond the
// bound. Returns whether anything was inserted.
func (c *Coordinator) drainInto(s *Sim) bool {
	pending := false
	for _, ch := range c.in[s.shard] {
		if Time(ch.headR.Load()) != maxTime {
			pending = true
			break
		}
	}
	if !pending {
		return false
	}
	c.mu.Lock()
	inserted := false
	for _, ch := range c.in[s.shard] {
		for ch.head < len(ch.q) {
			m := ch.q[ch.head]
			ch.q[ch.head] = xmsg{}
			ch.head++
			if ch.req {
				// Execute owner-side at the remote's send instant, ordered
				// as the remote's generating event would have been.
				s.queue.push(eventKey{at: m.gen, genAt: m.genAt, src: int32(ch.src), seq: m.seq},
					eventPayload{bfn: m.nic.xport.sendFn, raw: m.raw, trace: m.trace})
			} else {
				s.queue.push(eventKey{at: m.arrive, genAt: m.genAt, src: int32(ch.src), seq: m.seq},
					eventPayload{nic: m.nic, raw: m.raw, trace: m.trace})
			}
			inserted = true
		}
		ch.updateHeadR()
	}
	if inserted {
		// The folded entries changed this shard's frontier; republish so
		// neighbors' fixpoints see the heap head instead of a stale
		// channel key.
		c.publishLocked(s)
		c.cond.Broadcast()
	}
	c.mu.Unlock()
	return inserted
}

// step tries to advance shard s by one action (fold pending messages or
// execute one event). It returns false when s is blocked on a neighbor or
// done with the window.
func (c *Coordinator) step(s *Sim, lw []Time, w eventKey) bool {
	c.drainInto(s)
	k, ok := s.peekKey()
	if !ok || !k.before(&w) {
		return false
	}
	c.lowWaters(lw)
	if k.at >= c.bound(lw, s.shard) {
		return false
	}
	c.nextLocal[s.shard].Store(int64(k.at))
	at, e := s.queue.pop()
	s.now, s.lastAt, s.curGenAt = at, at, k.genAt
	s.curTrace = e.trace
	n := uint64(e.dispatch())
	s.executed += n
	if c.cap != 0 && c.executedA.Add(n)-c.capBase >= c.cap {
		c.halt()
	}
	c.publish(s)
	return true
}

// windowLoop runs shard s's events strictly before the window key,
// respecting the conservative bounds. It returns when no event ordered
// before the window key can ever become executable for this shard.
func (c *Coordinator) windowLoop(s *Sim) {
	w := c.windowEnd
	lw := make([]Time, len(c.shards))
	for {
		if c.haltedA.Load() {
			return
		}
		if c.step(s, lw, w) {
			continue
		}
		// Blocked, or possibly done with the window: decide under the lock.
		c.mu.Lock()
		for {
			if c.haltedA.Load() {
				c.mu.Unlock()
				return
			}
			c.publishLocked(s)
			c.lowWaters(lw)
			if c.windowDone(s, lw, w) {
				c.cond.Broadcast()
				c.mu.Unlock()
				return
			}
			if c.stepReady(s, lw, w) {
				c.mu.Unlock()
				break
			}
			// Re-check after raising the blocked count so a publisher that
			// advanced between our check and the wait cannot be missed.
			c.blockedA.Add(1)
			c.lowWaters(lw)
			if c.windowDone(s, lw, w) || c.stepReady(s, lw, w) || c.haltedA.Load() {
				c.blockedA.Add(-1)
				continue
			}
			c.cond.Wait()
			c.blockedA.Add(-1)
		}
	}
}

// windowDone reports that shard s can never again execute an event
// ordered before the window key: its own head (after draining) is at or
// past the key, its channels are empty, and every neighbor's remaining
// in-window activity is strictly past the window instant (so anything it
// still sends is ordered into the next window).
func (c *Coordinator) windowDone(s *Sim, lw []Time, w eventKey) bool {
	if k, ok := s.peekKey(); ok && k.before(&w) {
		return false
	}
	for _, ch := range c.in[s.shard] {
		if ch.head < len(ch.q) {
			return false
		}
	}
	return c.bound(lw, s.shard) > w.at
}

// stepReady reports whether step would make progress given the fixpoint.
func (c *Coordinator) stepReady(s *Sim, lw []Time, w eventKey) bool {
	for _, ch := range c.in[s.shard] {
		if ch.head < len(ch.q) {
			return true // draining is progress
		}
	}
	k, ok := s.peekKey()
	return ok && k.before(&w) && k.at < c.bound(lw, s.shard)
}

// publishLocked is publish with the coordinator mutex already held.
func (c *Coordinator) publishLocked(s *Sim) {
	c.nextLocal[s.shard].Store(int64(c.horizon(s)))
}

func (c *Coordinator) halt() {
	c.haltedA.Store(true)
	c.mu.Lock()
	c.cond.Broadcast()
	c.mu.Unlock()
}

// runWindow executes every shard concurrently over the events ordered
// strictly before w.
func (c *Coordinator) runWindow(w eventKey) {
	c.windowEnd = w
	// Fast path: nothing to do anywhere.
	work := false
	for _, s := range c.shards {
		if k, ok := s.peekKey(); ok && k.before(&w) {
			work = true
			break
		}
	}
	if !work {
		for _, row := range c.chans {
			for _, ch := range row {
				if ch != nil && ch.head < len(ch.q) {
					work = true
				}
			}
		}
	}
	if !work {
		return
	}
	for _, s := range c.shards {
		c.publish(s)
	}
	var wg sync.WaitGroup
	for _, s := range c.shards {
		wg.Add(1)
		go func(s *Sim) {
			defer wg.Done()
			c.windowLoop(s)
		}(s)
	}
	wg.Wait()
}

// Run executes the coordinated simulation until the control and shard
// queues hold nothing at or before the deadline (or Stop/MaxEvents ends
// the run early), returning the number of events executed. It reproduces
// serial Sim.Run clock semantics: at return every engine's clock is the
// time of the last executed event, or the deadline when the simulation
// drained completely.
func (c *Coordinator) Run(until Time) uint64 {
	return c.run(until)
}

// RunAll executes until every queue and channel is empty.
func (c *Coordinator) RunAll() uint64 { return c.run(maxTime - 1) }

func (c *Coordinator) run(until Time) uint64 {
	if c.running {
		panic("netsim: reentrant Run on a sharded simulation (Run called from inside an event)")
	}
	c.running = true
	defer func() { c.running = false }()

	if c.control.halted {
		return 0 // Stop is sticky, as on a serial Sim
	}
	c.refreshLookahead()
	c.haltedA.Store(false)
	c.cap = c.control.MaxEvents
	c.capBase = c.executedA.Load()
	start := c.executedTotal()

	for {
		// The next control event bounds the shard window: shard events
		// ordered before it (including same-instant events scheduled
		// earlier in virtual time) run first, then the control event
		// executes alone at a global barrier.
		w := eventKey{at: until, genAt: maxTime, src: int32(len(c.shards)), seq: ^uint64(0)}
		hasCtl := false
		if k, ok := c.control.peekKey(); ok && k.at <= until {
			w, hasCtl = k, true
		}
		c.runWindow(w)
		if c.haltedA.Load() {
			break
		}
		if !hasCtl {
			break
		}
		// Barrier: align every clock (and scheduling position) to the
		// control event, then run it while everything is quiescent.
		for _, s := range c.shards {
			if s.now < w.at {
				s.now = w.at
			}
			s.curGenAt = w.genAt
		}
		at, e := c.control.queue.pop()
		c.control.now, c.control.lastAt, c.control.curGenAt = at, at, w.genAt
		c.control.curTrace = e.trace
		n := uint64(e.dispatch())
		c.control.executed += n
		c.executedA.Add(n)
		if c.cap != 0 && c.executedTotal()-start >= c.cap {
			break
		}
		if c.control.halted {
			break
		}
	}

	// Quiescent clock alignment (serial semantics).
	now := c.globalNow
	for _, s := range c.shards {
		if s.lastAt > now {
			now = s.lastAt
		}
	}
	if c.control.lastAt > now {
		now = c.control.lastAt
	}
	if c.Pending() == 0 && now < until && !c.control.halted && !c.haltedA.Load() && until != maxTime-1 {
		now = until
	}
	c.globalNow = now
	for i, s := range c.shards {
		// Captured before re-alignment: how stale this shard's last
		// executed event was against the coordinated clock.
		c.lag[i] = now.Sub(s.lastAt)
		s.now = now
		s.curTrace = 0
	}
	c.control.now = now
	c.control.curTrace = 0

	for _, p := range c.ports {
		p.syncStats()
	}
	c.quiesces++
	for _, fn := range c.quiesce {
		fn()
	}
	return c.executedTotal() - start
}

// ShardStats is a quiescent-point observation of one shard engine, the
// raw material of the per-shard telemetry gauges. Read it only from
// quiescence callbacks (Coordinator.OnQuiesce) or between Run calls.
type ShardStats struct {
	// Clock is the shard's virtual clock (aligned at quiescence).
	Clock Time
	// LastEventAt is the instant of the shard's last executed event.
	LastEventAt Time
	// LastEventAge is Clock - LastEventAt as captured before the
	// quiescent clock alignment: how stale the shard's last activity
	// was when the run drained. It includes plain idleness (a shard
	// whose local workload finished early ages for the rest of the
	// run), so read it as an activity measure, not a synchronization
	// bound.
	LastEventAge Duration
	// Executed counts events this shard has executed since creation.
	Executed uint64
	// HeapDepth is the shard's pending event count.
	HeapDepth int
	// MailboxBacklog counts cross-shard messages queued toward this
	// shard that have not yet been folded into its heap.
	MailboxBacklog int
	// PortBacklog counts frames queued in the remote-NIC transmit
	// proxies (xports) this shard owns.
	PortBacklog int
}

// ShardStats returns the quiescent-point observation of shard i.
func (c *Coordinator) ShardStats(i int) ShardStats {
	s := c.shards[i]
	st := ShardStats{
		Clock:        s.now,
		LastEventAt:  s.lastAt,
		LastEventAge: c.lag[i],
		Executed:     s.executed,
		HeapDepth:    s.queue.len(),
	}
	c.mu.Lock()
	for _, ch := range c.in[i] {
		st.MailboxBacklog += len(ch.q) - ch.head
	}
	c.mu.Unlock()
	for _, p := range c.ports {
		if p.sim.shard == i {
			st.PortBacklog += p.queueLen()
		}
	}
	return st
}

// Quiesces reports how many quiescent points the coordinator has
// reached (completed Run calls).
func (c *Coordinator) Quiesces() uint64 { return c.quiesces }

func (c *Coordinator) executedTotal() uint64 {
	var n uint64
	for _, s := range c.shards {
		n += s.executed
	}
	return n + c.control.executed
}

// Pending reports queued events plus undelivered cross messages.
func (c *Coordinator) Pending() int {
	n := c.control.queue.len()
	for _, s := range c.shards {
		n += s.queue.len()
	}
	c.mu.Lock()
	for _, row := range c.chans {
		for _, ch := range row {
			if ch != nil {
				n += len(ch.q) - ch.head
			}
		}
	}
	c.mu.Unlock()
	return n
}

// Stop halts the coordinated run after the current event.
func (c *Coordinator) Stop() {
	c.control.halted = true
	c.halt()
}
