package netsim

import (
	"testing"
)

func TestScheduleOrdering(t *testing.T) {
	s := New()
	var got []int
	s.Schedule(30, func() { got = append(got, 3) })
	s.Schedule(10, func() { got = append(got, 1) })
	s.Schedule(20, func() { got = append(got, 2) })
	s.RunAll()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("order = %v", got)
	}
	if s.Now() != 30 {
		t.Errorf("Now = %v, want 30", s.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(5, func() { got = append(got, i) })
	}
	s.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events out of order: %v", got)
		}
	}
}

func TestSchedulePastClamps(t *testing.T) {
	s := New()
	var ranAt Time
	s.Schedule(100, func() {
		s.Schedule(50, func() { ranAt = s.Now() }) // in the past
	})
	s.RunAll()
	if ranAt != 100 {
		t.Errorf("past event ran at %v, want clamped to 100", ranAt)
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	ran := 0
	s.Schedule(10, func() { ran++ })
	s.Schedule(20, func() { ran++ })
	s.Schedule(30, func() { ran++ })
	n := s.Run(20)
	if n != 2 || ran != 2 {
		t.Errorf("Run(20) executed %d (ran=%d), want 2", n, ran)
	}
	if s.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", s.Pending())
	}
	// Clock does not advance past deadline while events remain beyond it.
	if s.Now() != 20 {
		t.Errorf("Now = %v, want 20", s.Now())
	}
}

func TestRunAdvancesToDeadlineWhenIdle(t *testing.T) {
	s := New()
	s.Run(500)
	if s.Now() != 500 {
		t.Errorf("Now = %v, want 500", s.Now())
	}
}

func TestAfter(t *testing.T) {
	s := New()
	var at Time
	s.Schedule(100, func() {
		s.After(50, func() { at = s.Now() })
	})
	s.RunAll()
	if at != 150 {
		t.Errorf("After fired at %v, want 150", at)
	}
}

func TestStop(t *testing.T) {
	s := New()
	ran := 0
	s.Schedule(1, func() { ran++; s.Stop() })
	s.Schedule(2, func() { ran++ })
	s.RunAll()
	if ran != 1 {
		t.Errorf("ran = %d after Stop, want 1", ran)
	}
}

func TestMaxEvents(t *testing.T) {
	s := New()
	s.MaxEvents = 5
	var rearm func()
	n := 0
	rearm = func() { n++; s.After(1, rearm) }
	s.After(1, rearm)
	s.RunAll()
	if n != 5 {
		t.Errorf("executed %d events, want MaxEvents=5", n)
	}
}

func TestCPUSerializes(t *testing.T) {
	s := New()
	c := NewCPU(s)
	var done []Time
	s.Schedule(0, func() {
		c.Exec(100, func() { done = append(done, s.Now()) })
		c.Exec(100, func() { done = append(done, s.Now()) })
	})
	s.RunAll()
	if len(done) != 2 || done[0] != 100 || done[1] != 200 {
		t.Errorf("completion times = %v, want [100 200]", done)
	}
	if c.Busy != 200 {
		t.Errorf("Busy = %v, want 200", c.Busy)
	}
}

func TestCPUIdleGap(t *testing.T) {
	s := New()
	c := NewCPU(s)
	var second Time
	s.Schedule(0, func() { c.Exec(10, func() {}) })
	s.Schedule(1000, func() { c.Exec(10, func() { second = s.Now() }) })
	s.RunAll()
	if second != 1010 {
		t.Errorf("second completion = %v, want 1010 (no carryover of idle time)", second)
	}
}

func TestCPUQueueDelayAndUtilization(t *testing.T) {
	s := New()
	c := NewCPU(s)
	s.Schedule(0, func() {
		c.Exec(500, func() {})
		if d := c.QueueDelay(); d != 500 {
			t.Errorf("QueueDelay = %v, want 500", d)
		}
	})
	s.RunAll()
	if u := c.Utilization(1000); u != 0.5 {
		t.Errorf("Utilization = %v, want 0.5", u)
	}
	if u := c.Utilization(0); u != 0 {
		t.Errorf("Utilization(0) = %v, want 0", u)
	}
}
