package netsim

import (
	"testing"

	"github.com/switchware/activebridge/internal/ethernet"
)

func mac(last byte) ethernet.MAC { return ethernet.MAC{0x02, 0, 0, 0, 0, last} }

func frameBytes(t *testing.T, dst, src ethernet.MAC, payload int) []byte {
	t.Helper()
	f := ethernet.Frame{Dst: dst, Src: src, Type: ethernet.TypeTest, Payload: make([]byte, payload)}
	raw, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestBroadcastDelivery(t *testing.T) {
	s := New()
	seg := NewSegment(s, "lan1")
	var rx [3]int
	nics := make([]*NIC, 3)
	for i := range nics {
		i := i
		nics[i] = NewNIC(s, "eth", mac(byte(i+1)))
		nics[i].SetRecv(func(*NIC, []byte) { rx[i]++ })
		seg.Attach(nics[i])
	}
	raw := frameBytes(t, ethernet.Broadcast, mac(1), 100)
	s.Schedule(0, func() { nics[0].Send(raw) })
	s.RunAll()
	if rx[0] != 0 {
		t.Errorf("sender received its own frame")
	}
	if rx[1] != 1 || rx[2] != 1 {
		t.Errorf("rx = %v, want broadcast to both others", rx)
	}
}

func TestUnicastFiltering(t *testing.T) {
	s := New()
	seg := NewSegment(s, "lan1")
	a := NewNIC(s, "a", mac(1))
	b := NewNIC(s, "b", mac(2))
	c := NewNIC(s, "c", mac(3))
	var gotB, gotC int
	b.SetRecv(func(*NIC, []byte) { gotB++ })
	c.SetRecv(func(*NIC, []byte) { gotC++ })
	seg.Attach(a)
	seg.Attach(b)
	seg.Attach(c)
	raw := frameBytes(t, mac(2), mac(1), 64)
	s.Schedule(0, func() { a.Send(raw) })
	s.RunAll()
	if gotB != 1 {
		t.Errorf("b received %d, want 1", gotB)
	}
	if gotC != 0 {
		t.Errorf("c received %d (not promiscuous, not addressed), want 0", gotC)
	}
	if c.RxFiltered != 1 {
		t.Errorf("c.RxFiltered = %d, want 1", c.RxFiltered)
	}
}

func TestPromiscuousSeesEverything(t *testing.T) {
	s := New()
	seg := NewSegment(s, "lan1")
	a := NewNIC(s, "a", mac(1))
	p := NewNIC(s, "p", mac(9))
	p.Promiscuous = true
	got := 0
	p.SetRecv(func(*NIC, []byte) { got++ })
	seg.Attach(a)
	seg.Attach(p)
	s.Schedule(0, func() {
		a.Send(frameBytes(t, mac(2), mac(1), 64)) // not addressed to p
		a.Send(frameBytes(t, ethernet.Broadcast, mac(1), 64))
	})
	s.RunAll()
	if got != 2 {
		t.Errorf("promiscuous NIC saw %d frames, want 2", got)
	}
}

func TestMulticastSubscription(t *testing.T) {
	s := New()
	seg := NewSegment(s, "lan1")
	a := NewNIC(s, "a", mac(1))
	b := NewNIC(s, "b", mac(2))
	got := 0
	b.SetRecv(func(*NIC, []byte) { got++ })
	seg.Attach(a)
	seg.Attach(b)
	raw := frameBytes(t, ethernet.AllBridges, mac(1), 64)
	s.Schedule(0, func() { a.Send(raw) })
	s.RunAll()
	if got != 0 {
		t.Errorf("unsubscribed NIC received multicast")
	}
	b.Join(ethernet.AllBridges)
	s.Schedule(s.Now()+1, func() { a.Send(raw) })
	s.RunAll()
	if got != 1 {
		t.Errorf("subscribed NIC got %d, want 1", got)
	}
	b.Leave(ethernet.AllBridges)
	s.Schedule(s.Now()+1, func() { a.Send(raw) })
	s.RunAll()
	if got != 1 {
		t.Errorf("after Leave got %d, want still 1", got)
	}
}

func TestWireTimeAt100Mbps(t *testing.T) {
	s := New()
	seg := NewSegment(s, "lan1")
	a := NewNIC(s, "a", mac(1))
	b := NewNIC(s, "b", mac(2))
	var arrived Time
	b.SetRecv(func(*NIC, []byte) { arrived = s.Now() })
	seg.Attach(a)
	seg.Attach(b)
	raw := frameBytes(t, mac(2), mac(1), 1000)
	s.Schedule(0, func() { a.Send(raw) })
	s.RunAll()
	// 1018 bytes on the wire + preamble/IFG overhead at 100 Mb/s.
	bits := len(raw)*8 + ethernet.OverheadBits
	want := Time(float64(bits) / 100e6 * 1e9).Add(seg.Propagation)
	if arrived != want {
		t.Errorf("arrival = %v, want %v", arrived, want)
	}
}

func TestMediumSerializes(t *testing.T) {
	s := New()
	seg := NewSegment(s, "lan1")
	a := NewNIC(s, "a", mac(1))
	b := NewNIC(s, "b", mac(2))
	c := NewNIC(s, "c", mac(3))
	var arrivals []Time
	c.SetRecv(func(*NIC, []byte) { arrivals = append(arrivals, s.Now()) })
	seg.Attach(a)
	seg.Attach(b)
	seg.Attach(c)
	raw := frameBytes(t, mac(3), mac(1), 1000)
	s.Schedule(0, func() {
		a.Send(raw)
		b.Send(frameBytes(t, mac(3), mac(2), 1000))
	})
	s.RunAll()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	gap := arrivals[1].Sub(arrivals[0])
	per := seg.wireTime(len(raw))
	if gap != per {
		t.Errorf("second frame gap = %v, want serialized %v", gap, per)
	}
}

func TestTxQueueOverflowDrops(t *testing.T) {
	s := New()
	seg := NewSegment(s, "lan1")
	a := NewNIC(s, "a", mac(1))
	a.TxQueueLimit = 4
	b := NewNIC(s, "b", mac(2))
	got := 0
	b.SetRecv(func(*NIC, []byte) { got++ })
	seg.Attach(a)
	seg.Attach(b)
	raw := frameBytes(t, mac(2), mac(1), 1000)
	s.Schedule(0, func() {
		for i := 0; i < 10; i++ {
			a.Send(raw)
		}
	})
	s.RunAll()
	// One frame is in transmission immediately, 4 queue, 5 drop.
	if a.TxDrops != 5 {
		t.Errorf("TxDrops = %d, want 5", a.TxDrops)
	}
	if got != 5 {
		t.Errorf("delivered = %d, want 5", got)
	}
}

func TestDoubleAttachPanics(t *testing.T) {
	s := New()
	seg1 := NewSegment(s, "lan1")
	seg2 := NewSegment(s, "lan2")
	a := NewNIC(s, "a", mac(1))
	seg1.Attach(a)
	defer func() {
		if recover() == nil {
			t.Error("second Attach did not panic")
		}
	}()
	seg2.Attach(a)
}

func TestSendUnattachedPanics(t *testing.T) {
	s := New()
	a := NewNIC(s, "a", mac(1))
	defer func() {
		if recover() == nil {
			t.Error("Send on unattached NIC did not panic")
		}
	}()
	a.Send(make([]byte, 64))
}

func TestSegmentStats(t *testing.T) {
	s := New()
	seg := NewSegment(s, "lan1")
	a := NewNIC(s, "a", mac(1))
	b := NewNIC(s, "b", mac(2))
	b.SetRecv(func(*NIC, []byte) {})
	seg.Attach(a)
	seg.Attach(b)
	raw := frameBytes(t, mac(2), mac(1), 500)
	s.Schedule(0, func() { a.Send(raw); a.Send(raw) })
	s.RunAll()
	if seg.Frames != 2 || seg.Bytes != uint64(2*len(raw)) {
		t.Errorf("seg stats frames=%d bytes=%d", seg.Frames, seg.Bytes)
	}
	if a.TxFrames != 2 || b.RxFrames != 2 {
		t.Errorf("nic stats tx=%d rx=%d", a.TxFrames, b.RxFrames)
	}
	if seg.Utilization(Duration(s.Now())) <= 0 {
		t.Error("utilization should be positive")
	}
}

func TestCostModelHelpers(t *testing.T) {
	m := DefaultCostModel()
	if m.KernelCrossing(1000) != m.KernelPerFrame+1000*m.KernelPerByte {
		t.Error("KernelCrossing arithmetic")
	}
	if m.HostStack(100) != m.HostStackPerFrame+100*m.HostStackPerByte {
		t.Error("HostStack arithmetic")
	}
	if m.VMCost(10, 100) != m.VMPerDispatch+10*m.VMPerInstr+100*m.VMPerAllocByte {
		t.Error("VMCost arithmetic")
	}
}
