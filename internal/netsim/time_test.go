package netsim

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"github.com/switchware/activebridge/internal/ethernet"
)

// TestTimeArithmeticEdges pins Time/Duration arithmetic at the extremes
// the sharded engine's saturating bounds depend on.
func TestTimeArithmeticEdges(t *testing.T) {
	if got := Time(5).Add(3 * Nanosecond); got != 8 {
		t.Fatalf("Add: got %d", int64(got))
	}
	if got := Time(8).Sub(Time(5)); got != 3*Nanosecond {
		t.Fatalf("Sub: got %v", got)
	}
	if got := Time(0).Add(-2 * Nanosecond); got != -2 {
		t.Fatalf("negative Add: got %d", int64(got))
	}
	// Saturating engine arithmetic must never wrap the sentinel.
	if got := satAdd(maxTime, Second); got != maxTime {
		t.Fatalf("satAdd(maxTime): got %d", int64(got))
	}
	if got := satAdd(maxTime-Time(Second), 2*Second); got != maxTime {
		t.Fatalf("satAdd near max: got %d", int64(got))
	}
	if got := satAdd(Time(7), 0); got != 7 {
		t.Fatalf("satAdd zero: got %d", int64(got))
	}
	// Plain Add wraps at the extreme (documented int64 semantics); the
	// engine therefore routes every horizon shift through satAdd.
	if got := Time(math.MaxInt64).Add(Nanosecond); got >= 0 {
		t.Fatalf("expected two's-complement wrap, got %d", int64(got))
	}
	if got := Time(1500 * Millisecond).Seconds(); got != 1.5 {
		t.Fatalf("Seconds: got %v", got)
	}
}

// TestZeroDurationSelfTicks pins the semantics sharding depends on: an
// event that reschedules itself with After(0) runs again at the same
// instant, strictly after already pending events for that instant, and
// the clock never moves backwards.
func TestZeroDurationSelfTicks(t *testing.T) {
	sim := New()
	var order []string
	ticks := 0
	var tick func()
	tick = func() {
		ticks++
		order = append(order, fmt.Sprintf("tick%d", ticks))
		if ticks < 3 {
			sim.After(0, tick)
		}
	}
	sim.Schedule(10, tick)
	sim.Schedule(10, func() { order = append(order, "peer") })
	sim.Schedule(11, func() { order = append(order, "later") })
	sim.Run(Time(100))
	want := "[tick1 peer tick2 tick3 later]"
	if got := fmt.Sprintf("%v", order); got != want {
		t.Fatalf("order %v, want %v", got, want)
	}
	if sim.Now() != 100 {
		t.Fatalf("drained clock: %v", sim.Now())
	}
}

// TestSchedulePastOrdering pins the clamp's ordering contract: events
// scheduled strictly in the past run at the present instant, after
// pending same-instant events.
func TestSchedulePastOrdering(t *testing.T) {
	sim := New()
	var order []string
	sim.Schedule(50, func() {
		sim.Schedule(20, func() { order = append(order, "clamped") }) // in the past
		sim.Schedule(50, func() { order = append(order, "present") })
	})
	sim.Schedule(50, func() { order = append(order, "pending") })
	sim.Run(Time(100))
	want := "[pending clamped present]"
	if got := fmt.Sprintf("%v", order); got != want {
		t.Fatalf("order %v, want %v", got, want)
	}
}

// TestStrictPastPanics pins the ErrPastEvent debug mode.
func TestStrictPastPanics(t *testing.T) {
	sim := New()
	sim.StrictPast = true
	sim.Schedule(30, func() {
		defer func() {
			p := recover()
			if p == nil {
				t.Fatal("StrictPast did not panic on a past event")
			}
			err, ok := p.(error)
			if !ok || !errors.Is(err, ErrPastEvent) {
				t.Fatalf("panic %v does not wrap ErrPastEvent", p)
			}
		}()
		sim.Schedule(10, func() {})
	})
	// Scheduling at the current instant stays legal in strict mode.
	sim.Schedule(30, func() { sim.Schedule(30, func() {}) })
	sim.Run(Time(100))
}

// TestSegmentUtilizationShardedAccounting drives a cut segment from both
// sides concurrently and pins that the owner-side serialization keeps
// the medium accounting exact: busy time equals the sum of the wire
// times of every transmitted frame, identical to the serial build, and
// utilization follows.
func TestSegmentUtilizationShardedAccounting(t *testing.T) {
	drive := func(simA, simB, ctl *Sim) *Segment {
		seg := NewSegment(simA, "cut")
		a := NewNIC(simA, "a", ethernet.MAC{2, 0, 0, 0, 3, 1})
		b := NewNIC(simB, "b", ethernet.MAC{2, 0, 0, 0, 3, 2})
		seg.Attach(a)
		seg.Attach(b)
		a.SetRecv(func(*NIC, []byte) {})
		b.SetRecv(func(*NIC, []byte) {})
		fa, _ := (&ethernet.Frame{Dst: b.MAC, Src: a.MAC, Type: ethernet.TypeTest, Payload: make([]byte, 600)}).Marshal()
		fb, _ := (&ethernet.Frame{Dst: a.MAC, Src: b.MAC, Type: ethernet.TypeTest, Payload: make([]byte, 200)}).Marshal()
		for i := 0; i < 40; i++ {
			at := Time(i) * Time(30*Microsecond)
			ctl.Schedule(at+1, func() { a.Send(fa) })
			ctl.Schedule(at+2, func() { b.Send(fb) })
		}
		ctl.Run(Time(10 * Millisecond))
		return seg
	}

	serial := New()
	s0 := drive(serial, serial, serial)

	c := NewCoordinator(2)
	s1 := drive(c.Shard(0), c.Shard(1), c.Control())

	wantBusy := Duration(0)
	wa := s0.wireTime(len(mustWire(t, 600)))
	wb := s0.wireTime(len(mustWire(t, 200)))
	wantBusy = 40*wa + 40*wb
	if s0.BusyTime != wantBusy {
		t.Fatalf("serial busy %v, want %v", s0.BusyTime, wantBusy)
	}
	if s1.BusyTime != s0.BusyTime || s1.Frames != s0.Frames || s1.Bytes != s0.Bytes {
		t.Fatalf("sharded medium accounting deviates: busy %v/%v frames %d/%d bytes %d/%d",
			s1.BusyTime, s0.BusyTime, s1.Frames, s0.Frames, s1.Bytes, s0.Bytes)
	}
	if got, want := s1.Utilization(10*Millisecond), s0.Utilization(10*Millisecond); got != want {
		t.Fatalf("utilization %v, want %v", got, want)
	}
	if u := s1.Utilization(0); u != 0 {
		t.Fatalf("zero-window utilization: %v", u)
	}
}

func mustWire(t *testing.T, payload int) []byte {
	t.Helper()
	raw, err := (&ethernet.Frame{Dst: ethernet.MAC{1}, Src: ethernet.MAC{2}, Type: ethernet.TypeTest, Payload: make([]byte, payload)}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return raw
}
