package netsim

import (
	"testing"

	"github.com/switchware/activebridge/internal/ethernet"
)

// TestSteadyStateForwardingZeroAllocs is the allocation-budget regression
// test for the event queue and NIC pipeline: once the heap, payload slab
// and transmit queues are warm, pushing a frame across a segment and
// running the resulting events does zero Go-heap work. The value-typed
// 4-ary heap, the payload free list, the inline deliver events and the
// reclaiming transmit queue are what this pins down.
func TestSteadyStateForwardingZeroAllocs(t *testing.T) {
	sim := New()
	seg := NewSegment(sim, "lan")
	a := NewNIC(sim, "a", mac(1))
	b := NewNIC(sim, "b", mac(2))
	seg.Attach(a)
	seg.Attach(b)
	received := 0
	b.SetRecv(func(*NIC, []byte) { received++ })
	raw := frameBytes(t, mac(2), mac(1), 256)

	cycle := func() {
		a.Send(raw)
		sim.RunAll()
	}
	cycle() // warm heap, slab and queues
	if allocs := testing.AllocsPerRun(500, cycle); allocs != 0 {
		t.Fatalf("steady-state forwarding allocs/cycle = %v, want 0", allocs)
	}
	if received == 0 {
		t.Fatal("no frames delivered")
	}
}

// TestScheduleBytesOrdering verifies the closure-free scheduling variants
// interleave with Schedule in strict (time, scheduling-order) sequence —
// the determinism contract every experiment depends on.
func TestScheduleBytesOrdering(t *testing.T) {
	sim := New()
	var order []int
	sim.Schedule(10, func() { order = append(order, 0) })
	sim.ScheduleBytes(10, func([]byte) { order = append(order, 1) }, nil)
	sim.Schedule(5, func() { order = append(order, 2) })
	sim.ScheduleBytes(10, func([]byte) { order = append(order, 3) }, nil)
	sim.Schedule(10, func() { order = append(order, 4) })
	sim.RunAll()
	want := []int{2, 0, 1, 3, 4}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("dispatch order = %v, want %v", order, want)
		}
	}
}

// TestHeapOrderingRandomized cross-checks the 4-ary heap against the
// (time, seq) total order with an adversarial schedule: many ties, past
// timestamps, and interleaved pops.
func TestHeapOrderingRandomized(t *testing.T) {
	sim := New()
	var got []int
	// Deterministic pseudo-random times with heavy ties.
	x := uint32(12345)
	times := make([]Time, 300)
	for i := range times {
		x = x*1664525 + 1013904223
		times[i] = Time(x % 16)
	}
	for i, at := range times {
		i := i
		sim.Schedule(at, func() { got = append(got, i) })
	}
	sim.RunAll()
	if len(got) != len(times) {
		t.Fatalf("executed %d events, want %d", len(got), len(times))
	}
	for k := 1; k < len(got); k++ {
		a, b := got[k-1], got[k]
		if times[a] > times[b] {
			t.Fatalf("time order violated at %d: event %d (t=%d) before %d (t=%d)", k, a, times[a], b, times[b])
		}
		if times[a] == times[b] && a > b {
			t.Fatalf("FIFO tie-break violated at %d: event %d before %d at t=%d", k, a, b, times[a])
		}
	}
}

// BenchmarkEventQueue measures raw scheduler throughput: push/pop of a
// churning event population.
func BenchmarkEventQueue(b *testing.B) {
	sim := New()
	fn := func() {}
	// Standing population of 1024 events, then steady churn.
	for i := 0; i < 1024; i++ {
		sim.Schedule(Time(i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Schedule(sim.Now()+Time(1024), fn)
		sim.MaxEvents = 1
		sim.Run(sim.Now() + 1<<40)
	}
}

// BenchmarkSegmentForward measures the full NIC -> segment -> NIC frame
// pipeline in events per second.
func BenchmarkSegmentForward(b *testing.B) {
	sim := New()
	seg := NewSegment(sim, "lan")
	src := NewNIC(sim, "src", mac(1))
	dst := NewNIC(sim, "dst", mac(2))
	seg.Attach(src)
	seg.Attach(dst)
	dst.SetRecv(func(*NIC, []byte) {})
	f := ethernet.Frame{Dst: mac(2), Src: mac(1), Type: ethernet.TypeTest, Payload: make([]byte, 1024)}
	raw, err := f.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Send(raw)
		sim.RunAll()
	}
}
