package netsim

import (
	"testing"
)

// TestTxQueueOverflowNotification pins the overflow contract: with a
// 2-frame transmit queue, a burst of 6 sends accepts the queue's worth
// (plus the frame on the wire) and reports every loss through both the
// TxDrops counter and the installed drop callback, with the dropped
// frame's bytes visible to the callback.
func TestTxQueueOverflowNotification(t *testing.T) {
	s := New()
	seg := NewSegment(s, "lan")
	a := NewNIC(s, "a", mac(1))
	b := NewNIC(s, "b", mac(2))
	a.TxQueueLimit = 2
	var delivered int
	b.SetRecv(func(*NIC, []byte) { delivered++ })
	seg.Attach(a)
	seg.Attach(b)

	var drops int
	var droppedLen int
	a.SetTxDropFn(func(n *NIC, raw []byte) {
		if n != a {
			t.Errorf("drop callback got NIC %s, want a", n.Name)
		}
		drops++
		droppedLen = len(raw)
	})

	raw := frameBytes(t, mac(2), mac(1), 100)
	const burst = 6
	s.Schedule(0, func() {
		for i := 0; i < burst; i++ {
			a.Send(raw)
		}
	})
	s.RunAll()

	// One frame transmits immediately, two queue, the rest overflow.
	const wantDelivered = 3
	if delivered != wantDelivered {
		t.Errorf("delivered = %d, want %d", delivered, wantDelivered)
	}
	if drops != burst-wantDelivered {
		t.Errorf("drop callbacks = %d, want %d", drops, burst-wantDelivered)
	}
	if a.TxDrops != uint64(burst-wantDelivered) {
		t.Errorf("TxDrops = %d, want %d", a.TxDrops, burst-wantDelivered)
	}
	if droppedLen != len(raw) {
		t.Errorf("callback saw %d bytes, want the %d-byte frame", droppedLen, len(raw))
	}
}

// TestLinkDownSuppressesBothDirections: a NIC with its link down neither
// transmits (counted as fault drops) nor receives, and healing the link
// restores both directions.
func TestLinkDownSuppressesBothDirections(t *testing.T) {
	s := New()
	seg := NewSegment(s, "lan")
	a := NewNIC(s, "a", mac(1))
	b := NewNIC(s, "b", mac(2))
	var got int
	b.SetRecv(func(*NIC, []byte) { got++ })
	seg.Attach(a)
	seg.Attach(b)

	a.SetLinkDown(true)
	if !a.LinkDown() {
		t.Fatal("LinkDown not reported")
	}
	raw := frameBytes(t, mac(2), mac(1), 64)
	s.Schedule(0, func() { a.Send(raw) })
	s.RunAll()
	if got != 0 {
		t.Errorf("frame crossed a downed transmit link")
	}
	if a.FaultDrops == 0 {
		t.Errorf("transmit on a downed link not counted as a fault drop")
	}

	// Receive side: b's link down eats the delivery.
	a.SetLinkDown(false)
	b.SetLinkDown(true)
	s.Schedule(s.Now()+1, func() { a.Send(raw) })
	s.RunAll()
	if got != 0 {
		t.Errorf("frame delivered through a downed receive link")
	}
	if b.FaultDrops == 0 {
		t.Errorf("receive on a downed link not counted as a fault drop")
	}

	b.SetLinkDown(false)
	s.Schedule(s.Now()+1, func() { a.Send(raw) })
	s.RunAll()
	if got != 1 {
		t.Errorf("delivery did not resume after link heal: got %d", got)
	}
}

// TestRxFaultActions drives each receive-side verdict: drop destroys the
// frame, corrupt suppresses delivery (and counts separately), duplicate
// delivers twice.
func TestRxFaultActions(t *testing.T) {
	cases := []struct {
		action   FaultAction
		want     int
		drops    uint64
		corrupts uint64
		dups     uint64
	}{
		{FaultNone, 1, 0, 0, 0},
		{FaultDrop, 0, 1, 0, 0},
		{FaultCorrupt, 0, 0, 1, 0},
		{FaultDuplicate, 2, 0, 0, 1},
	}
	for _, c := range cases {
		s := New()
		seg := NewSegment(s, "lan")
		a := NewNIC(s, "a", mac(1))
		b := NewNIC(s, "b", mac(2))
		var got int
		b.SetRecv(func(*NIC, []byte) { got++ })
		seg.Attach(a)
		seg.Attach(b)
		action := c.action
		b.SetRxFault(func([]byte) FaultAction { return action })
		raw := frameBytes(t, mac(2), mac(1), 64)
		s.Schedule(0, func() { a.Send(raw) })
		s.RunAll()
		if got != c.want {
			t.Errorf("%v: delivered %d, want %d", c.action, got, c.want)
		}
		if b.FaultDrops != c.drops || b.FaultCorrupts != c.corrupts || b.FaultDups != c.dups {
			t.Errorf("%v: counters drop=%d corrupt=%d dup=%d, want %d/%d/%d",
				c.action, b.FaultDrops, b.FaultCorrupts, b.FaultDups, c.drops, c.corrupts, c.dups)
		}
	}
}

// TestSegmentFaultFilter exercises the medium-level filter: a downed
// segment eats everything; a fault function's verdicts apply per frame
// and a duplicate arrives at every receiver twice at the same instant.
func TestSegmentFaultFilter(t *testing.T) {
	s := New()
	seg := NewSegment(s, "lan")
	a := NewNIC(s, "a", mac(1))
	b := NewNIC(s, "b", mac(2))
	var got int
	b.SetRecv(func(*NIC, []byte) { got++ })
	seg.Attach(a)
	seg.Attach(b)

	seg.SetDown(true)
	if !seg.Down() {
		t.Fatal("Down not reported")
	}
	raw := frameBytes(t, mac(2), mac(1), 64)
	s.Schedule(0, func() { a.Send(raw) })
	s.RunAll()
	if got != 0 {
		t.Errorf("frame crossed a downed segment")
	}
	if seg.FaultDrops != 1 {
		t.Errorf("downed segment counted %d drops, want 1", seg.FaultDrops)
	}

	seg.SetDown(false)
	seg.SetFault(func([]byte) FaultAction { return FaultDuplicate })
	s.Schedule(s.Now()+1, func() { a.Send(raw) })
	s.RunAll()
	if got != 2 {
		t.Errorf("duplicate verdict delivered %d copies, want 2", got)
	}
	if seg.FaultDups != 1 {
		t.Errorf("FaultDups = %d, want 1", seg.FaultDups)
	}
}
