package netsim

import (
	"fmt"
	"time"
)

// Time is a virtual-time instant measured in nanoseconds since the start of
// the simulation. All experiment results in this repository are expressed in
// virtual time, which makes them deterministic and machine-independent.
type Time int64

// Duration is a span of virtual time in nanoseconds. It is interconvertible
// with time.Duration for formatting convenience.
type Duration = time.Duration

// Common durations re-exported for callers of this package.
const (
	Nanosecond  = Duration(1)
	Microsecond = 1000 * Nanosecond
	Millisecond = 1000 * Microsecond
	Second      = 1000 * Millisecond
)

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t - u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns the instant as floating point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// String renders the instant as a duration since simulation start.
func (t Time) String() string { return fmt.Sprintf("t=%v", Duration(t)) }
