package netsim

import (
	"testing"

	"github.com/switchware/activebridge/internal/ethernet"
)

// pingPongNet wires two NICs across one segment and bounces a frame back
// and forth: each side, on receive, schedules an echo after a fixed think
// time. It exercises both cross-shard directions of a cut segment (the
// remote transmit request path and the remote delivery path) when a and b
// live in different engines.
type pingPongNet struct {
	segA    *Segment
	nicA    *NIC
	nicB    *NIC
	aEchoes uint64
	bEchoes uint64
}

func buildPingPong(simA, simB *Sim, echoes int) *pingPongNet {
	n := &pingPongNet{}
	n.segA = NewSegment(simA, "cut")
	n.nicA = NewNIC(simA, "a", ethernet.MAC{2, 0, 0, 0, 0, 1})
	n.nicB = NewNIC(simB, "b", ethernet.MAC{2, 0, 0, 0, 0, 2})
	n.segA.Attach(n.nicA)
	n.segA.Attach(n.nicB)
	n.nicA.Promiscuous = true
	n.nicB.Promiscuous = true
	n.nicA.SetRecv(func(nic *NIC, raw []byte) {
		if int(n.aEchoes) >= echoes {
			return
		}
		n.aEchoes++
		simA.After(7*Microsecond, func() { n.nicA.Send(raw) })
	})
	n.nicB.SetRecv(func(nic *NIC, raw []byte) {
		if int(n.bEchoes) >= echoes {
			return
		}
		n.bEchoes++
		simB.After(13*Microsecond, func() { n.nicB.Send(raw) })
	})
	return n
}

func mustFrame(t *testing.T, dst, src ethernet.MAC, payload int) []byte {
	t.Helper()
	fr := ethernet.Frame{Dst: dst, Src: src, Type: ethernet.TypeTest, Payload: make([]byte, payload)}
	raw, err := fr.Marshal()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return raw
}

type pingPongResult struct {
	aEchoes, bEchoes   uint64
	aRx, bRx, aTx, bTx uint64
	frames             uint64
	busy               Duration
	now                Time
}

func (n *pingPongNet) result(now Time) pingPongResult {
	return pingPongResult{
		aEchoes: n.aEchoes, bEchoes: n.bEchoes,
		aRx: n.nicA.RxFrames, bRx: n.nicB.RxFrames,
		aTx: n.nicA.TxFrames, bTx: n.nicB.TxFrames,
		frames: n.segA.Frames, busy: n.segA.BusyTime, now: now,
	}
}

func runPingPongSerial(t *testing.T, echoes int) pingPongResult {
	sim := New()
	n := buildPingPong(sim, sim, echoes)
	raw := mustFrame(t, n.nicB.MAC, n.nicA.MAC, 100)
	sim.Schedule(1, func() { n.nicA.Send(raw) })
	sim.Run(Time(Second))
	return n.result(sim.Now())
}

func runPingPongSharded(t *testing.T, echoes int) pingPongResult {
	c := NewCoordinator(2)
	n := buildPingPong(c.Shard(0), c.Shard(1), echoes)
	raw := mustFrame(t, n.nicB.MAC, n.nicA.MAC, 100)
	c.Control().Schedule(1, func() { n.nicA.Send(raw) })
	c.Control().Run(Time(Second))
	return n.result(c.Control().Now())
}

// TestShardedPingPongMatchesSerial pins the sharded engine's result to the
// serial engine's on a closed-loop exchange across a cut segment: both
// cross directions (request and delivery channels) are on the critical
// path of every echo.
func TestShardedPingPongMatchesSerial(t *testing.T) {
	want := runPingPongSerial(t, 200)
	if want.aEchoes != 200 || want.bEchoes != 200 {
		t.Fatalf("serial harness broken: %+v", want)
	}
	got := runPingPongSharded(t, 200)
	if got != want {
		t.Fatalf("sharded result deviates from serial:\n got %+v\nwant %+v", got, want)
	}
}

// TestShardedDeterministic runs the sharded exchange repeatedly: wall-clock
// goroutine scheduling must never change any virtual outcome.
func TestShardedDeterministic(t *testing.T) {
	first := runPingPongSharded(t, 150)
	for i := 0; i < 10; i++ {
		if got := runPingPongSharded(t, 150); got != first {
			t.Fatalf("run %d deviates:\n got %+v\nwant %+v", i, got, first)
		}
	}
}

// TestShardedContendedMediumMatchesSerial makes both sides of a cut
// segment transmit bursts that overlap in virtual time, so the owner-side
// serialization of the shared medium (busyUntil FIFO) is what decides
// every delivery time. The sharded run must reproduce the serial medium
// schedule exactly.
func TestShardedContendedMediumMatchesSerial(t *testing.T) {
	build := func(simA, simB *Sim, ctl *Sim) (*Segment, *NIC, *NIC) {
		seg := NewSegment(simA, "cut")
		a := NewNIC(simA, "a", ethernet.MAC{2, 0, 0, 0, 1, 1})
		b := NewNIC(simB, "b", ethernet.MAC{2, 0, 0, 0, 1, 2})
		seg.Attach(a)
		seg.Attach(b)
		a.SetRecv(func(*NIC, []byte) {})
		b.SetRecv(func(*NIC, []byte) {})
		rawA := ethernet.Frame{Dst: b.MAC, Src: a.MAC, Type: ethernet.TypeTest, Payload: make([]byte, 400)}
		rawB := ethernet.Frame{Dst: a.MAC, Src: b.MAC, Type: ethernet.TypeTest, Payload: make([]byte, 900)}
		fa, _ := rawA.Marshal()
		fb, _ := rawB.Marshal()
		// Overlapping bursts from both sides at staggered instants.
		for i := 0; i < 50; i++ {
			at := Time(i) * Time(20*Microsecond)
			ctl.Schedule(at+1, func() { a.Send(fa); a.Send(fa) })
			ctl.Schedule(at+1, func() { b.Send(fb) })
		}
		return seg, a, b
	}

	serialSim := New()
	seg0, a0, b0 := build(serialSim, serialSim, serialSim)
	serialSim.Run(Time(Second))

	c := NewCoordinator(2)
	seg1, a1, b1 := build(c.Shard(0), c.Shard(1), c.Control())
	c.Control().Run(Time(Second))

	if seg0.Frames != seg1.Frames || seg0.Bytes != seg1.Bytes || seg0.BusyTime != seg1.BusyTime {
		t.Fatalf("medium schedule deviates: serial frames=%d bytes=%d busy=%v, sharded frames=%d bytes=%d busy=%v",
			seg0.Frames, seg0.Bytes, seg0.BusyTime, seg1.Frames, seg1.Bytes, seg1.BusyTime)
	}
	if a0.RxFrames != a1.RxFrames || b0.RxFrames != b1.RxFrames || a0.TxFrames != a1.TxFrames || b0.TxFrames != b1.TxFrames {
		t.Fatalf("NIC accounting deviates: serial a=(%d,%d) b=(%d,%d), sharded a=(%d,%d) b=(%d,%d)",
			a0.RxFrames, a0.TxFrames, b0.RxFrames, b0.TxFrames,
			a1.RxFrames, a1.TxFrames, b1.RxFrames, b1.TxFrames)
	}
	if got, want := seg1.Utilization(Duration(Second)), seg0.Utilization(Duration(Second)); got != want {
		t.Fatalf("utilization deviates: sharded %v serial %v", got, want)
	}
}

// TestShardedChainMatchesSerial runs a three-shard relay (a -> b -> c over
// two cut segments) so conservative bounds must propagate transitively
// through the middle shard.
func TestShardedChainMatchesSerial(t *testing.T) {
	build := func(s0, s1, s2, ctl *Sim) (relay *NIC, sink *NIC) {
		segAB := NewSegment(s0, "ab")
		segBC := NewSegment(s1, "bc")
		a := NewNIC(s0, "a", ethernet.MAC{2, 0, 0, 0, 2, 1})
		b1 := NewNIC(s1, "b1", ethernet.MAC{2, 0, 0, 0, 2, 2})
		b2 := NewNIC(s1, "b2", ethernet.MAC{2, 0, 0, 0, 2, 3})
		cc := NewNIC(s2, "c", ethernet.MAC{2, 0, 0, 0, 2, 4})
		segAB.Attach(a)
		segAB.Attach(b1)
		segBC.Attach(b2)
		segBC.Attach(cc)
		b1.Promiscuous = true
		cc.Promiscuous = true
		b1.SetRecv(func(_ *NIC, raw []byte) {
			// Forward after a per-hop cost on the middle shard's clock.
			s1.After(5*Microsecond, func() { b2.Send(raw) })
		})
		cc.SetRecv(func(*NIC, []byte) {})
		fr := ethernet.Frame{Dst: cc.MAC, Src: a.MAC, Type: ethernet.TypeTest, Payload: make([]byte, 300)}
		raw, _ := fr.Marshal()
		for i := 0; i < 100; i++ {
			at := Time(i) * Time(40*Microsecond)
			ctl.Schedule(at+1, func() { a.Send(raw) })
		}
		return b2, cc
	}

	sim := New()
	r0, k0 := build(sim, sim, sim, sim)
	sim.Run(Time(Second))

	c := NewCoordinator(3)
	r1, k1 := build(c.Shard(0), c.Shard(1), c.Shard(2), c.Control())
	c.Control().Run(Time(Second))

	if k0.RxFrames != k1.RxFrames || r0.TxFrames != r1.TxFrames {
		t.Fatalf("relay deviates: serial rx=%d tx=%d, sharded rx=%d tx=%d",
			k0.RxFrames, r0.TxFrames, k1.RxFrames, r1.TxFrames)
	}
	if k1.RxFrames != 100 {
		t.Fatalf("sink received %d of 100 frames", k1.RxFrames)
	}
	if got, want := c.Control().Now(), sim.Now(); got != want {
		t.Fatalf("final clock deviates: sharded %v serial %v", got, want)
	}
}
