package netsim

import (
	"fmt"

	"github.com/switchware/activebridge/internal/ethernet"
)

// RecvFunc is invoked (at interrupt level, in the paper's terms) when a NIC
// accepts a frame. raw is the encoded frame including FCS; handlers that
// need decoded fields should use ethernet.Frame.Unmarshal or the Peek
// helpers. The slice must not be mutated: it is shared among all receivers
// on the segment, exactly as a broadcast medium shares bits.
type RecvFunc func(nic *NIC, raw []byte)

// NIC is a simulated Ethernet adapter: one port of a host or bridge.
//
// Output is queued: Send appends to a bounded transmit queue which drains
// through the attached segment at wire speed. A full queue drops the frame
// and counts it, which is how broadcast storms in the loop experiments are
// kept observable rather than unbounded.
type NIC struct {
	Name string
	MAC  ethernet.MAC

	sim     *Sim
	segment *Segment

	// Promiscuous controls filtering: bridges set it (the paper: "whenever
	// an input port is bound, it is put into promiscuous mode"); hosts
	// leave it off and receive only unicast-to-self, broadcast, and
	// subscribed multicast frames.
	Promiscuous bool

	// multicast subscriptions (host mode only).
	groups map[ethernet.MAC]bool

	recv RecvFunc

	// TxQueueLimit bounds the output queue in frames (default 128).
	TxQueueLimit int
	// txQueue[txHead:] is the transmit backlog; the consumed prefix is
	// reclaimed when the queue drains, so steady-state sends do not
	// allocate.
	txQueue [][]byte
	txHead  int
	txBusy  bool
	// drainFn is the drain callback allocated once, not per transmission.
	drainFn func()

	// Stats.
	RxFrames, TxFrames uint64
	RxBytes, TxBytes   uint64
	TxDrops            uint64
	RxFiltered         uint64
}

// NewNIC creates an interface with the given MAC bound to the simulation.
func NewNIC(sim *Sim, name string, mac ethernet.MAC) *NIC {
	n := &NIC{Name: name, MAC: mac, sim: sim, TxQueueLimit: 128, groups: make(map[ethernet.MAC]bool)}
	n.drainFn = n.drain
	return n
}

// SetRecv installs the receive handler.
func (n *NIC) SetRecv(fn RecvFunc) { n.recv = fn }

// Join subscribes the (non-promiscuous) NIC to a multicast group.
func (n *NIC) Join(group ethernet.MAC) { n.groups[group] = true }

// Leave removes a multicast subscription.
func (n *NIC) Leave(group ethernet.MAC) { delete(n.groups, group) }

// Segment returns the attached segment, or nil.
func (n *NIC) Segment() *Segment { return n.segment }

// deliver is called by the segment when a frame arrives at this NIC.
func (n *NIC) deliver(raw []byte) {
	if !n.accepts(raw) {
		n.RxFiltered++
		return
	}
	n.RxFrames++
	n.RxBytes += uint64(len(raw))
	if n.recv != nil {
		n.recv(n, raw)
	}
}

func (n *NIC) accepts(raw []byte) bool {
	if n.Promiscuous {
		return true
	}
	dst, err := ethernet.PeekDst(raw)
	if err != nil {
		return false
	}
	if dst == n.MAC || dst.IsBroadcast() {
		return true
	}
	return dst.IsMulticast() && n.groups[dst]
}

// Send queues an encoded frame for transmission. It reports whether the
// frame was accepted (false means the transmit queue overflowed).
func (n *NIC) Send(raw []byte) bool {
	if n.segment == nil {
		panic(fmt.Sprintf("netsim: NIC %s (%v) not attached to a segment", n.Name, n.MAC))
	}
	if len(n.txQueue)-n.txHead >= n.TxQueueLimit {
		n.TxDrops++
		return false
	}
	n.txQueue = append(n.txQueue, raw)
	if !n.txBusy {
		n.txBusy = true
		n.drain()
	}
	return true
}

// SendFrame marshals and queues a frame.
func (n *NIC) SendFrame(f *ethernet.Frame) (bool, error) {
	raw, err := f.Marshal()
	if err != nil {
		return false, err
	}
	return n.Send(raw), nil
}

func (n *NIC) drain() {
	if n.txHead == len(n.txQueue) {
		n.txQueue = n.txQueue[:0]
		n.txHead = 0
		n.txBusy = false
		return
	}
	if n.txHead >= 64 {
		// Compact under sustained backlog so the backing array stays
		// bounded by the queue limit, not the run length.
		n.txQueue = n.txQueue[:copy(n.txQueue, n.txQueue[n.txHead:])]
		n.txHead = 0
	}
	raw := n.txQueue[n.txHead]
	n.txQueue[n.txHead] = nil
	n.txHead++
	n.TxFrames++
	n.TxBytes += uint64(len(raw))
	done := n.segment.transmit(n, raw)
	n.sim.Schedule(done, n.drainFn)
}

// TxQueueLen reports the current transmit backlog in frames.
func (n *NIC) TxQueueLen() int { return len(n.txQueue) - n.txHead }

func (n *NIC) String() string { return fmt.Sprintf("%s(%v)", n.Name, n.MAC) }
