package netsim

import (
	"fmt"

	"github.com/switchware/activebridge/internal/ethernet"
	"github.com/switchware/activebridge/internal/tracing"
)

// txqEntry is one queued frame plus the trace context it was sent
// under, so a trace follows its frame through the transmit backlog
// instead of being misattributed to whatever event happens to drain it.
type txqEntry struct {
	raw   []byte
	trace uint64
}

// txq is the bounded transmit backlog and drain latch shared by a NIC
// and its owner-side proxy on a cut segment (xport): one state machine,
// so serial and sharded transmit pacing can never diverge. The consumed
// prefix is reclaimed when the queue drains, so steady-state sends do
// not allocate.
type txq struct {
	q    []txqEntry
	head int
	busy bool
}

// offer appends raw unless the queue already holds limit frames. It
// reports whether the frame was accepted and whether the caller must
// start the drain (the queue was idle).
func (t *txq) offer(raw []byte, trace uint64, limit int) (accepted, start bool) {
	if len(t.q)-t.head >= limit {
		return false, false
	}
	t.q = append(t.q, txqEntry{raw: raw, trace: trace})
	if !t.busy {
		t.busy = true
		return true, true
	}
	return true, false
}

// next yields the next frame to transmit, or clears the busy latch and
// reports false when the backlog is drained.
func (t *txq) next() (txqEntry, bool) {
	if t.head == len(t.q) {
		t.q = t.q[:0]
		t.head = 0
		t.busy = false
		return txqEntry{}, false
	}
	if t.head >= 64 {
		// Compact under sustained backlog so the backing array stays
		// bounded by the queue limit, not the run length.
		t.q = t.q[:copy(t.q, t.q[t.head:])]
		t.head = 0
	}
	ent := t.q[t.head]
	t.q[t.head] = txqEntry{}
	t.head++
	return ent, true
}

// backlog reports the queued frame count.
func (t *txq) backlog() int { return len(t.q) - t.head }

// RecvFunc is invoked (at interrupt level, in the paper's terms) when a NIC
// accepts a frame. raw is the encoded frame including FCS; handlers that
// need decoded fields should use ethernet.Frame.Unmarshal or the Peek
// helpers. The slice must not be mutated: it is shared among all receivers
// on the segment, exactly as a broadcast medium shares bits.
type RecvFunc func(nic *NIC, raw []byte)

// FaultAction is a fault verdict for one frame in flight, returned by a
// FaultFunc installed on a segment or NIC (see internal/fault for the
// seeded plans that supply these).
type FaultAction uint8

// The frame fates a fault filter can impose.
const (
	// FaultNone lets the frame through untouched.
	FaultNone FaultAction = iota
	// FaultDrop destroys the frame in flight.
	FaultDrop
	// FaultCorrupt damages the frame in flight: it still occupies the
	// wire, but every receiver's FCS check discards it, so it is
	// delivered to no one and counted separately from a drop.
	FaultCorrupt
	// FaultDuplicate delivers the frame twice to every receiver.
	FaultDuplicate
)

// FaultFunc decides the fate of one frame. It must be deterministic given
// its own call sequence (the fault plane derives each filter from a
// per-entity seeded stream), and must not retain or mutate raw.
type FaultFunc func(raw []byte) FaultAction

// TxDropFunc is the transmit-queue overflow notification. It is invoked
// at the exact instant Send (or, on a cut segment, the owner-side
// transmit proxy) rejects a frame. On a cut segment it runs on the
// goroutine of the segment owner's engine, not the NIC's, so it must
// touch only state dedicated to this callback — a counter cell the
// callback alone writes — never the NIC's owning node.
type TxDropFunc func(nic *NIC, raw []byte)

// NIC is a simulated Ethernet adapter: one port of a host or bridge.
//
// Output is queued: Send appends to a bounded transmit queue which drains
// through the attached segment at wire speed. A full queue drops the frame
// and counts it, which is how broadcast storms in the loop experiments are
// kept observable rather than unbounded.
type NIC struct {
	Name string
	MAC  ethernet.MAC

	sim     *Sim
	segment *Segment

	// Promiscuous controls filtering: bridges set it (the paper: "whenever
	// an input port is bound, it is put into promiscuous mode"); hosts
	// leave it off and receive only unicast-to-self, broadcast, and
	// subscribed multicast frames.
	Promiscuous bool

	// multicast subscriptions (host mode only).
	groups map[ethernet.MAC]bool

	recv RecvFunc

	// TxQueueLimit bounds the output queue in frames (default 128).
	TxQueueLimit int
	// xport is the owner-shard transmit proxy when this NIC is attached to
	// a cut segment owned by another shard (sharded simulations only).
	xport *xport
	// tx is the transmit backlog and drain latch.
	tx txq
	// drainFn is the drain callback allocated once, not per transmission.
	drainFn func()

	// linkDown is the fault plane's carrier state: a downed NIC drops
	// every frame at both the send and the deliver boundary. It changes
	// only from the NIC's own engine or at a coordinator barrier (fault
	// events are control events), never mid-window.
	linkDown bool
	// rxFault, when set, passes every arriving frame through a fault
	// filter before the adapter accepts it.
	rxFault FaultFunc
	// dropFn, when set, is notified of every transmit-queue overflow
	// (see TxDropFunc for the threading contract).
	dropFn TxDropFunc

	// Trace-ID mint state: the per-NIC splitmix64 stream seed (derived
	// lazily from the tracer seed and the NIC name) and the injected-
	// frame counter it is advanced by. Both are engine-local, so the
	// minted IDs are identical at any shard count.
	traceSeed   uint64
	traceSeeded bool
	traceSends  uint64

	// Stats.
	RxFrames, TxFrames uint64
	RxBytes, TxBytes   uint64
	TxDrops            uint64
	RxFiltered         uint64
	// Fault-plane stats: frames destroyed at this NIC by link-down state
	// or an rx fault filter, frames discarded as corrupt, and duplicate
	// deliveries injected.
	FaultDrops    uint64
	FaultCorrupts uint64
	FaultDups     uint64
}

// NewNIC creates an interface with the given MAC bound to the simulation.
func NewNIC(sim *Sim, name string, mac ethernet.MAC) *NIC {
	n := &NIC{Name: name, MAC: mac, sim: sim, TxQueueLimit: 128, groups: make(map[ethernet.MAC]bool)}
	n.drainFn = n.drain
	return n
}

// SetRecv installs the receive handler.
func (n *NIC) SetRecv(fn RecvFunc) { n.recv = fn }

// Join subscribes the (non-promiscuous) NIC to a multicast group.
func (n *NIC) Join(group ethernet.MAC) { n.groups[group] = true }

// Leave removes a multicast subscription.
func (n *NIC) Leave(group ethernet.MAC) { delete(n.groups, group) }

// Segment returns the attached segment, or nil.
func (n *NIC) Segment() *Segment { return n.segment }

// SetLinkDown sets the fault plane's carrier state. While down, the NIC
// drops every frame on both the transmit and the receive boundary
// (counted in FaultDrops) — the wire-level view of a pulled cable or a
// crashed node. Frames already on the medium when the link drops are
// lost at delivery, exactly as a cut mid-flight would lose them. Call it
// only from the NIC's own engine or from a coordinator control event
// (the fault plane schedules flaps on the control engine, which runs at
// a global barrier).
func (n *NIC) SetLinkDown(down bool) { n.linkDown = down }

// LinkDown reports the fault plane's carrier state.
func (n *NIC) LinkDown() bool { return n.linkDown }

// SetRxFault installs a receive-side fault filter (nil removes it). The
// filter runs on the NIC's own engine in delivery order.
func (n *NIC) SetRxFault(fn FaultFunc) { n.rxFault = fn }

// SetTxDropFn installs the transmit-queue overflow notification (nil
// removes it). See TxDropFunc for the threading contract.
func (n *NIC) SetTxDropFn(fn TxDropFunc) { n.dropFn = fn }

// traceEvent records one event against this NIC when the net is
// traced; the nil tracer check lives at every call site so the
// untraced frame path never builds an Event.
func (n *NIC) traceEvent(kind tracing.Kind, trace uint64, detail string) {
	n.sim.trc.Emit(tracing.Event{
		VT: int64(n.sim.now), Trace: trace, Kind: kind, Node: n.Name, Detail: detail,
	})
}

// deliver is called by the segment when a frame arrives at this NIC.
func (n *NIC) deliver(raw []byte) {
	if n.linkDown {
		n.FaultDrops++
		if n.sim.trc != nil {
			n.traceEvent(tracing.KindFault, n.sim.curTrace, "rx linkdown")
		}
		return
	}
	if n.rxFault != nil {
		switch n.rxFault(raw) {
		case FaultDrop:
			n.FaultDrops++
			if n.sim.trc != nil {
				n.traceEvent(tracing.KindFault, n.sim.curTrace, "rx drop")
			}
			return
		case FaultCorrupt:
			n.FaultCorrupts++
			if n.sim.trc != nil {
				n.traceEvent(tracing.KindFault, n.sim.curTrace, "rx corrupt")
			}
			return
		case FaultDuplicate:
			// Receive the frame twice: the adapter saw the same bits
			// again (a reflection, a repeated symbol). Both copies run
			// through the same accept filter and handler.
			n.FaultDups++
			if n.sim.trc != nil {
				n.traceEvent(tracing.KindFault, n.sim.curTrace, "rx dup")
			}
			n.deliverAccepted(raw)
		}
	}
	n.deliverAccepted(raw)
}

func (n *NIC) deliverAccepted(raw []byte) {
	if !n.accepts(raw) {
		n.RxFiltered++
		return
	}
	n.RxFrames++
	n.RxBytes += uint64(len(raw))
	if n.sim.trc != nil {
		n.traceEvent(tracing.KindRx, n.sim.curTrace, fmt.Sprintf("len=%d", len(raw)))
	}
	if n.recv != nil {
		n.recv(n, raw)
	}
}

func (n *NIC) accepts(raw []byte) bool {
	if n.Promiscuous {
		return true
	}
	dst, err := ethernet.PeekDst(raw)
	if err != nil {
		return false
	}
	if dst == n.MAC || dst.IsBroadcast() {
		return true
	}
	return dst.IsMulticast() && n.groups[dst]
}

// Send queues an encoded frame for transmission. It reports whether the
// frame was accepted (false means the transmit queue overflowed). When
// the attached segment lives in another shard, the frame crosses through
// the coordinator to be serialized onto the medium at this exact instant;
// overflow is then accounted on the owner side and Send reports true.
func (n *NIC) Send(raw []byte) bool {
	if n.segment == nil {
		panic(fmt.Sprintf("netsim: NIC %s (%v) not attached to a segment", n.Name, n.MAC))
	}
	// A frame entering the net under no trace context starts a trace:
	// the ID comes from the NIC's own seeded stream, so it is the same
	// at any shard count, and its bit 0 carries the head-based sampling
	// decision. Forwarded frames (sent while a traced frame dispatches)
	// inherit the ambient context instead.
	trace := n.sim.curTrace
	if n.sim.trc != nil && trace == 0 {
		trace = n.mintTrace()
	}
	if n.linkDown {
		// No carrier: the driver's view of a dead link is a frame that
		// vanishes, not an error (compare Bridge.Send on a nil segment).
		n.FaultDrops++
		if n.sim.trc != nil {
			n.traceEvent(tracing.KindTxDrop, trace, "linkdown")
		}
		return false
	}
	if n.xport != nil {
		if n.sim.trc != nil {
			n.traceEvent(tracing.KindSend, trace, fmt.Sprintf("len=%d", len(raw)))
			n.traceEvent(tracing.KindXShard, trace, "request->owner")
		}
		n.sim.coord.postRequest(n, raw, trace)
		return true
	}
	accepted, start := n.tx.offer(raw, trace, n.TxQueueLimit)
	if !accepted {
		n.TxDrops++
		if n.sim.trc != nil {
			n.traceEvent(tracing.KindTxDrop, trace, "overflow")
		}
		if n.dropFn != nil {
			n.dropFn(n, raw)
		}
		return false
	}
	if n.sim.trc != nil {
		n.traceEvent(tracing.KindSend, trace, fmt.Sprintf("len=%d", len(raw)))
	}
	if start {
		n.drain()
	}
	return true
}

// mintTrace draws the next trace ID from this NIC's seeded stream.
func (n *NIC) mintTrace() uint64 {
	t := n.sim.trc.Tracer()
	if !n.traceSeeded {
		n.traceSeed = t.SeedFor(n.Name)
		n.traceSeeded = true
	}
	n.traceSends++
	return t.TraceID(n.traceSeed, n.traceSends)
}

// SendFrame marshals and queues a frame.
func (n *NIC) SendFrame(f *ethernet.Frame) (bool, error) {
	raw, err := f.Marshal()
	if err != nil {
		return false, err
	}
	return n.Send(raw), nil
}

func (n *NIC) drain() {
	ent, ok := n.tx.next()
	if !ok {
		return
	}
	n.TxFrames++
	n.TxBytes += uint64(len(ent.raw))
	// Transmit under the queued frame's own trace context (drain may be
	// running from a later frame's event), restoring the ambient context
	// for the caller.
	prev := n.sim.curTrace
	n.sim.curTrace = ent.trace
	done := n.segment.transmit(n, ent.raw)
	n.sim.Schedule(done, n.drainFn)
	n.sim.curTrace = prev
}

// TxQueueLen reports the current transmit backlog in frames (for a NIC on
// a cut segment, read it only at quiescent points).
func (n *NIC) TxQueueLen() int {
	if n.xport != nil {
		return n.xport.queueLen()
	}
	return n.tx.backlog()
}

func (n *NIC) String() string { return fmt.Sprintf("%s(%v)", n.Name, n.MAC) }
