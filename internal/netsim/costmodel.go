package netsim

// CostModel holds the calibrated per-stage software costs of the paper's
// measurement platform (166 MHz Pentium, Linux 2.0, Caml bytecode
// interpreter). Every cost is virtual time; see DESIGN.md §6 and
// EXPERIMENTS.md for the calibration narrative.
//
// The frame path (paper Figure 5) decomposes as:
//
//	wire -> [KernelPerFrame + len*KernelPerByte]            (steps 2-3)
//	     -> switchlet execution (VM accounting or native)   (step 4)
//	     -> [KernelPerFrame + len*KernelPerByte]            (steps 5-6)
//	     -> wire                                            (step 7)
type CostModel struct {
	// KernelPerFrame is the fixed cost of one kernel boundary crossing:
	// ISR work, buffer chain handling, socket queueing and the syscall
	// (recvfrom or sendto). Charged once on receive and once on send.
	KernelPerFrame Duration
	// KernelPerByte is the copy cost between kernel and user space,
	// charged per byte per crossing.
	KernelPerByte Duration

	// HostStackPerFrame is the per-packet cost of an endpoint's full
	// protocol stack (the hosts run stock Linux TCP/IP in the paper).
	HostStackPerFrame Duration
	// HostStackPerByte is the endpoint per-byte (checksum+copy) cost.
	HostStackPerByte Duration

	// VMPerDispatch is the fixed cost of entering the interpreter for one
	// event: marshalling the packet into a Caml string, closure dispatch,
	// and amortized collector work that scales with invocation count.
	VMPerDispatch Duration
	// VMPerInstr is the cost of one switchlet VM instruction; the
	// interpreter reports executed instruction counts and the bridge
	// charges its CPU accordingly. Together with VMPerDispatch this is
	// the paper's dominant cost (≈0.47 ms/frame through the learning
	// bridge during ttcp).
	VMPerInstr Duration
	// VMPerAllocByte models garbage-collector pressure: each byte
	// allocated by the switchlet (string construction, table entries)
	// costs this much amortized collection time.
	VMPerAllocByte Duration

	// NativePerFrame is the dispatch cost of a native-code switchlet
	// (the paper's proposed native-compiler optimization), charged in
	// place of VM accounting.
	NativePerFrame Duration

	// RepeaterPerFrame is the user-space cost of the minimal C buffered
	// repeater's copy loop (over and above the kernel crossings).
	RepeaterPerFrame Duration
}

// DefaultCostModel returns the calibration used throughout EXPERIMENTS.md.
//
// Calibration anchors (paper §7):
//   - direct-connection ttcp ≈ 76 Mb/s with 8 KB writes,
//   - C buffered repeater ≈ 2.1x the active bridge's throughput,
//   - active bridge ttcp ≈ 16 Mb/s, frame rate ≈ 1800/s at ~1 KB frames,
//   - learning-bridge switchlet ≈ 0.4-0.5 ms of VM time per frame.
func DefaultCostModel() CostModel {
	return CostModel{
		KernelPerFrame:    100 * Microsecond,
		KernelPerByte:     40 * Nanosecond,
		HostStackPerFrame: 90 * Microsecond,
		HostStackPerByte:  40 * Nanosecond,
		VMPerDispatch:     200 * Microsecond,
		VMPerInstr:        2 * Microsecond,
		VMPerAllocByte:    25 * Nanosecond,
		NativePerFrame:    15 * Microsecond,
		RepeaterPerFrame:  5 * Microsecond,
	}
}

// KernelCrossing returns the cost of moving a frame of rawLen bytes across
// the user/kernel boundary once.
func (m CostModel) KernelCrossing(rawLen int) Duration {
	return m.KernelPerFrame + Duration(rawLen)*m.KernelPerByte
}

// HostStack returns the endpoint protocol-stack cost for one packet.
func (m CostModel) HostStack(rawLen int) Duration {
	return m.HostStackPerFrame + Duration(rawLen)*m.HostStackPerByte
}

// VMCost converts interpreter accounting (instructions executed, bytes
// allocated) into CPU time for one dispatch.
func (m CostModel) VMCost(instrs, allocBytes uint64) Duration {
	return m.VMPerDispatch + Duration(instrs)*m.VMPerInstr + Duration(allocBytes)*m.VMPerAllocByte
}
