package netsim

import (
	"fmt"

	"github.com/switchware/activebridge/internal/ethernet"
	"github.com/switchware/activebridge/internal/tracing"
)

// Segment models a shared 100 Mbps Ethernet broadcast domain (one of the
// paper's "100 Mbps Ethernet LANs"). Transmissions are serialized: the
// medium carries one frame at a time, and every attached NIC other than the
// sender receives each frame. Propagation delay is constant per segment.
type Segment struct {
	Name string

	sim  *Sim
	nics []*NIC

	// Bps is the raw signalling rate (default 100e6).
	Bps float64
	// Propagation is the fixed one-way propagation delay.
	Propagation Duration

	busyUntil Time

	// down is the fault plane's cable state: a downed segment consumes
	// transmissions (the sender's drain still paces on the wire time) but
	// delivers to no one — a cut cable, not a jammed medium. It changes
	// only from the owner engine or at a coordinator barrier.
	down bool
	// fault, when set, passes every transmitted frame through a fault
	// filter on the owner engine, in transmit order.
	fault FaultFunc

	// Stats.
	Frames    uint64
	Bytes     uint64
	BusyTime  Duration
	lastStart Time
	// Fault-plane stats: frames destroyed on this segment (drops plus
	// everything eaten while down), frames delivered corrupt and so
	// discarded by every receiver, and duplicate deliveries injected.
	FaultDrops    uint64
	FaultCorrupts uint64
	FaultDups     uint64
}

// Default medium parameters (NewSegment's initial values).
const (
	// DefaultRateBps is the default signalling rate: 100 Mb/s Ethernet.
	DefaultRateBps = 100e6
	// DefaultPropagation is the default one-way propagation delay (a
	// short in-room LAN).
	DefaultPropagation = 500 * Nanosecond
)

// NewSegment creates a 100 Mbps segment attached to the simulation.
func NewSegment(sim *Sim, name string) *Segment {
	return &Segment{Name: name, sim: sim, Bps: DefaultRateBps, Propagation: DefaultPropagation}
}

// MinWireLatency returns the smallest source-to-sink latency a segment
// with the given rate and propagation can exhibit: the empty-frame wire
// overhead plus propagation. It is the lookahead a cut through such a
// segment gives the sharded engine, and what the partitioner's
// cut-scoring heuristic weighs — one definition for both.
func MinWireLatency(bps float64, propagation Duration) Duration {
	return Duration(float64(ethernet.OverheadBits)/bps*1e9) + propagation
}

// Attach connects a NIC to the segment. A NIC may be attached to exactly one
// segment; Attach panics on a second attachment (a wiring bug, not a runtime
// condition).
//
// In a sharded simulation a NIC bound to a different shard engine may be
// attached, making this a cut segment: the NIC's transmit queue moves to
// an owner-side proxy and its deliveries cross through the coordinator.
// The segment must live in the lowest shard among its attachments (the
// topology builder guarantees this), so the zero-lookahead transmit
// direction always points from a higher shard to a lower one.
func (g *Segment) Attach(n *NIC) {
	if n.segment != nil {
		panic(fmt.Sprintf("netsim: NIC %v already attached to %s", n.MAC, n.segment.Name))
	}
	if n.sim != g.sim {
		c := g.sim.coord
		if c == nil || n.sim.coord != c {
			panic(fmt.Sprintf("netsim: NIC %v and segment %s belong to different simulations", n.MAC, g.Name))
		}
		n.xport = newXport(n, g)
		c.ports = append(c.ports, n.xport)
		c.linkCut(g, n.sim.shard)
	}
	n.segment = g
	g.nics = append(g.nics, n)
}

// wireTime returns how long raw occupies the medium, including preamble and
// interframe gap.
func (g *Segment) wireTime(rawLen int) Duration {
	bits := rawLen*8 + ethernet.OverheadBits
	return Duration(float64(bits) / g.Bps * 1e9)
}

// transmit serializes the frame onto the medium on behalf of from, and
// delivers it to every other attached NIC after the wire time plus
// propagation delay. It returns the time the transmission completes.
//
// Collisions are modelled as queueing (CSMA/CD with ideal arbitration):
// back-to-back senders each get the medium in FIFO order. This matches the
// paper's lightly loaded measurement LANs, where capture effects are not the
// phenomenon under study.
func (g *Segment) transmit(from *NIC, raw []byte) Time {
	start := g.sim.Now()
	if g.busyUntil > start {
		start = g.busyUntil
	}
	dur := g.wireTime(len(raw))
	end := start.Add(dur)
	g.busyUntil = end
	g.Frames++
	g.Bytes += uint64(len(raw))
	g.BusyTime += dur

	// Trace events are always stamped at the current instant (the span's
	// reach into the future lives in Dur), so merge batches stay aligned
	// with the virtual-time axis at any shard count.
	if g.down {
		g.FaultDrops++
		if g.sim.trc != nil {
			g.traceEvent(tracing.KindFault, 0, "segment down")
		}
		return end
	}
	dup := false
	if g.fault != nil {
		switch g.fault(raw) {
		case FaultDrop:
			g.FaultDrops++
			if g.sim.trc != nil {
				g.traceEvent(tracing.KindFault, 0, "wire drop")
			}
			return end
		case FaultCorrupt:
			// The damaged frame occupies the wire but every receiver's
			// FCS check discards it, so nothing is delivered.
			g.FaultCorrupts++
			if g.sim.trc != nil {
				g.traceEvent(tracing.KindFault, 0, "wire corrupt")
			}
			return end
		case FaultDuplicate:
			g.FaultDups++
			if g.sim.trc != nil {
				g.traceEvent(tracing.KindFault, 0, "wire dup")
			}
			dup = true
		}
	}

	arrive := end.Add(g.Propagation)
	if g.sim.trc != nil {
		g.traceEvent(tracing.KindWire, int64(arrive-g.sim.now), fmt.Sprintf("len=%d", len(raw)))
	}
	local := 0
	for _, nic := range g.nics {
		if nic != from && nic.sim == g.sim {
			local++
		}
	}
	if local >= 2 && !g.sim.capped() {
		// Batch the same-instant local deliveries into one event (their
		// per-NIC events would carry consecutive seqs under an identical
		// (at, genAt, src) — see eventPayload). Cross-shard deliveries
		// still post individually, in the same attach order as before.
		g.sim.scheduleDeliverSeg(arrive, g, from, raw, dup)
		for _, nic := range g.nics {
			if nic == from || nic.sim == g.sim {
				continue
			}
			g.sim.coord.postDelivery(g, nic, arrive, raw)
			if dup {
				g.sim.coord.postDelivery(g, nic, arrive, raw)
			}
		}
		return end
	}
	for _, nic := range g.nics {
		if nic == from {
			continue
		}
		if nic.sim != g.sim {
			g.sim.coord.postDelivery(g, nic, arrive, raw)
			if dup {
				g.sim.coord.postDelivery(g, nic, arrive, raw)
			}
			continue
		}
		g.sim.scheduleDeliver(arrive, nic, raw)
		if dup {
			g.sim.scheduleDeliver(arrive, nic, raw)
		}
	}
	return end
}

// traceEvent records one segment event under the ambient trace context
// (dur > 0 makes it a span); callers hold the nil-tracer check.
func (g *Segment) traceEvent(kind tracing.Kind, dur int64, detail string) {
	g.sim.trc.Emit(tracing.Event{
		VT: int64(g.sim.now), Dur: dur, Trace: g.sim.curTrace, Kind: kind, Node: g.Name, Detail: detail,
	})
}

// deliverLocal performs a batched delivery scheduled by transmit: raw goes
// to the first nn attached NICs except from, in attach order, twice per
// NIC when dup. It returns the number of deliveries performed.
func (g *Segment) deliverLocal(from *NIC, raw []byte, nn int32, dup bool) int {
	nics := g.nics
	if int(nn) < len(nics) {
		nics = nics[:nn]
	}
	n := 0
	for _, nic := range nics {
		if nic == from || nic.sim != g.sim {
			continue
		}
		nic.deliver(raw)
		n++
		if dup {
			nic.deliver(raw)
			n++
		}
	}
	return n
}

// SetDown sets the fault plane's cable state; see the down field for the
// semantics and the threading contract.
func (g *Segment) SetDown(down bool) { g.down = down }

// Down reports the fault plane's cable state.
func (g *Segment) Down() bool { return g.down }

// SetFault installs a per-segment fault filter (nil removes it). The
// filter runs on the segment owner's engine in transmit order, which is
// identical serial and sharded — the filter's verdict sequence, and so
// the chaos run, stays byte-for-byte reproducible at any shard count.
func (g *Segment) SetFault(fn FaultFunc) { g.fault = fn }

// Utilization returns the fraction of the elapsed window the medium was busy.
func (g *Segment) Utilization(elapsed Duration) float64 {
	return Utilization(g.BusyTime, elapsed)
}

// NICs returns the attached interfaces (for topology inspection).
func (g *Segment) NICs() []*NIC { return g.nics }
