package netsim

import (
	"fmt"

	"github.com/switchware/activebridge/internal/ethernet"
)

// Segment models a shared 100 Mbps Ethernet broadcast domain (one of the
// paper's "100 Mbps Ethernet LANs"). Transmissions are serialized: the
// medium carries one frame at a time, and every attached NIC other than the
// sender receives each frame. Propagation delay is constant per segment.
type Segment struct {
	Name string

	sim  *Sim
	nics []*NIC

	// Bps is the raw signalling rate (default 100e6).
	Bps float64
	// Propagation is the fixed one-way propagation delay.
	Propagation Duration

	busyUntil Time

	// Stats.
	Frames    uint64
	Bytes     uint64
	BusyTime  Duration
	lastStart Time
}

// NewSegment creates a 100 Mbps segment attached to the simulation.
func NewSegment(sim *Sim, name string) *Segment {
	return &Segment{Name: name, sim: sim, Bps: 100e6, Propagation: 500 * Nanosecond}
}

// Attach connects a NIC to the segment. A NIC may be attached to exactly one
// segment; Attach panics on a second attachment (a wiring bug, not a runtime
// condition).
func (g *Segment) Attach(n *NIC) {
	if n.segment != nil {
		panic(fmt.Sprintf("netsim: NIC %v already attached to %s", n.MAC, n.segment.Name))
	}
	n.segment = g
	g.nics = append(g.nics, n)
}

// wireTime returns how long raw occupies the medium, including preamble and
// interframe gap.
func (g *Segment) wireTime(rawLen int) Duration {
	bits := rawLen*8 + ethernet.OverheadBits
	return Duration(float64(bits) / g.Bps * 1e9)
}

// transmit serializes the frame onto the medium on behalf of from, and
// delivers it to every other attached NIC after the wire time plus
// propagation delay. It returns the time the transmission completes.
//
// Collisions are modelled as queueing (CSMA/CD with ideal arbitration):
// back-to-back senders each get the medium in FIFO order. This matches the
// paper's lightly loaded measurement LANs, where capture effects are not the
// phenomenon under study.
func (g *Segment) transmit(from *NIC, raw []byte) Time {
	start := g.sim.Now()
	if g.busyUntil > start {
		start = g.busyUntil
	}
	dur := g.wireTime(len(raw))
	end := start.Add(dur)
	g.busyUntil = end
	g.Frames++
	g.Bytes += uint64(len(raw))
	g.BusyTime += dur

	arrive := end.Add(g.Propagation)
	for _, nic := range g.nics {
		if nic == from {
			continue
		}
		g.sim.scheduleDeliver(arrive, nic, raw)
	}
	return end
}

// Utilization returns the fraction of the elapsed window the medium was busy.
func (g *Segment) Utilization(elapsed Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(g.BusyTime) / float64(elapsed)
}

// NICs returns the attached interfaces (for topology inspection).
func (g *Segment) NICs() []*NIC { return g.nics }
