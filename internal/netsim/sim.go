// Package netsim is a deterministic discrete-event simulator of extended
// Ethernet LANs. It stands in for the paper's physical testbed: 100 Mbps
// shared segments, NICs with promiscuous capture, per-node CPUs with a
// calibrated cost model for the Linux kernel path and the switchlet VM.
//
// The paper's measurements are properties of a software path — a user-space
// bytecode interpreter behind kernel packet sockets — rather than of any
// particular NIC hardware. The simulator reproduces that path stage by
// stage (paper Figure 5):
//
//  1. frame arrives on the segment (wire time at 100 Mbps),
//  2. ISR + kernel delivery (CostModel.KernelPerFrame/KernelPerByte),
//  3. the bridge program runs (VM instruction accounting or native cost),
//  4. kernel send path (same kernel costs),
//  5. frame is transmitted onto the destination segment (wire time).
//
// All processing on a node is serialized through the node's CPU resource,
// which is what produces interpretation-limited frame rates at saturation.
package netsim

import (
	"errors"
	"fmt"

	"github.com/switchware/activebridge/internal/tracing"
)

// ErrPastEvent tags the panic raised when a StrictPast engine sees an
// event scheduled strictly before the current instant (use errors.Is on
// the recovered value).
var ErrPastEvent = errors.New("netsim: event scheduled in the past")

// eventKey is a heap entry: the ordering key plus the index of the
// event's payload in the simulation's payload slab. Keys are
// pointer-free, so sifting them around the heap involves no GC write
// barriers — the dominant cost of a pointer-per-event heap.
//
// Events order by (at, genAt, src, seq): execution instant, then the
// virtual instant the event was scheduled, then the scheduling engine's
// rank, then the engine-local sequence. On a serial simulation this is
// provably the plain (at, seq) order — sequence numbers are assigned in
// execution order, so seq strictly refines (genAt, src) — and the extra
// fields cost only a few never-taken comparisons. On a sharded
// simulation the key is what makes cross-shard merges reproduce serial
// scheduling order: a frame delivery folded in from another shard
// carries the virtual instant it was scheduled there, and lands between
// local events exactly where the serial engine would have sequenced it,
// however the wall clock interleaved the shards.
type eventKey struct {
	at    Time
	genAt Time
	seq   uint64
	src   int32
	idx   int32
}

// before reports strict ordering of heap keys.
func (k *eventKey) before(o *eventKey) bool {
	if k.at != o.at {
		return k.at < o.at
	}
	if k.genAt != o.genAt {
		return k.genAt < o.genAt
	}
	if k.src != o.src {
		return k.src < o.src
	}
	return k.seq < o.seq
}

// eventPayload holds what a scheduled event does. Frame deliveries (nic +
// raw) and single-[]byte callbacks (bfn + raw) — the overwhelming majority
// of events in a forwarding simulation — are represented inline instead of
// as closures, so scheduling one does not allocate. Payload slots are
// recycled through a free list.
type eventPayload struct {
	fn  func()
	bfn func([]byte)
	nic *NIC // when non-nil, the event is nic.deliver(raw)
	raw []byte
	// seg, when non-nil, makes this a batched same-instant delivery of raw
	// to the first nn locally attached NICs of seg except nic (the
	// transmitter), in attach order; dup delivers each copy twice. One
	// such event replaces a run of per-NIC delivery events that would all
	// carry the same (at, genAt, src) and consecutive seqs — nothing can
	// order between them — so dispatch order is serial-identical.
	seg *Segment
	nn  int32
	dup bool
	// trace is the causal trace context captured when the event was
	// scheduled and restored as the ambient context when it dispatches,
	// which is how a trace ID follows a frame through every scheduled
	// hop without any callback signature changing. Zero means untraced.
	trace uint64
}

// eventQueue is an index-addressed 4-ary min-heap of keys ordered by
// (at, seq), stored by value: pushing and popping never boxes through
// interface{} and never allocates per event (the backing arrays grow
// amortized and are reused). A 4-ary layout does fewer, cache-friendlier
// levels than the binary container/heap it replaces.
type eventQueue struct {
	keys     []eventKey
	payloads []eventPayload
	free     []int32
}

func (q *eventQueue) len() int { return len(q.keys) }

// push schedules a payload under the given key, sifting up.
func (q *eventQueue) push(k eventKey, p eventPayload) {
	var idx int32
	if n := len(q.free); n > 0 {
		idx = q.free[n-1]
		q.free = q.free[:n-1]
	} else {
		idx = int32(len(q.payloads))
		q.payloads = append(q.payloads, eventPayload{})
	}
	q.payloads[idx] = p
	k.idx = idx

	q.keys = append(q.keys, k)
	h := q.keys
	i := len(h) - 1
	for i > 0 {
		par := (i - 1) / 4
		if h[par].before(&h[i]) {
			break
		}
		h[i], h[par] = h[par], h[i]
		i = par
	}
}

// pop removes the minimum event and returns its payload. The payload slot
// is released back to the free list; the returned copy stays valid.
func (q *eventQueue) pop() (Time, eventPayload) {
	h := q.keys
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	q.keys = h
	// Sift down.
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if h[c].before(&h[min]) {
				min = c
			}
		}
		if h[i].before(&h[min]) {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	p := q.payloads[top.idx]
	// Release only the frame buffer — the bulk of retainable memory. The
	// remaining references (NIC, segment, cached callbacks) are small,
	// long-lived objects retained by the topology anyway, and scrubbing
	// the whole slot would cost a write-barrier sweep on every pop.
	q.payloads[top.idx].raw = nil
	q.free = append(q.free, top.idx)
	return top.at, p
}

// Sim is a discrete-event simulation engine. The zero value is not
// usable; call New for a serial simulation or NewCoordinator for a
// sharded one (whose per-shard engines and control engine are all Sims).
type Sim struct {
	now    Time
	queue  eventQueue
	nextID uint64
	// Halted is set by Stop and ends Run early.
	halted bool
	// MaxEvents guards runaway simulations (e.g. broadcast storms in the
	// loop-without-spanning-tree experiments). Zero means no limit. On a
	// sharded simulation the cap is enforced globally but the exact
	// stopping event is not serial-identical; treat it as a guard, not a
	// measurement.
	MaxEvents uint64
	executed  uint64

	// StrictPast makes scheduling strictly in the past panic with an error
	// wrapping ErrPastEvent instead of silently clamping to now — a debug
	// mode for flushing out causality bugs, which sharded execution
	// depends on never happening.
	StrictPast bool

	// coord/shard bind this engine into a sharded simulation (nil/-1 for
	// the control engine; nil/0 value for a plain serial Sim). lastAt is
	// the time of the last executed event, which the coordinator uses to
	// reconstruct the serial clock at quiescence. rank is the engine's
	// position in event-key src ordering (0 serial; shard index; -1
	// control), and curGenAt is the genAt of the event currently being
	// dispatched — the serial scheduling position inherited by any
	// cross-shard transmit it performs.
	coord    *Coordinator
	shard    int
	lastAt   Time
	rank     int32
	curGenAt Time

	// trc is this engine's tracing surface (nil when the net is not
	// traced — the frame path then pays exactly one nil check), and
	// curTrace is the trace context of the event currently dispatching,
	// inherited by everything it schedules.
	trc      *tracing.Engine
	curTrace uint64

	// quiesce holds callbacks fired at every quiescent point of a serial
	// engine: at the end of each Run/RunAll, when no event is executing.
	// The metrics plane publishes from them. Sharded engines delegate to
	// the coordinator's quiescence instead (see OnQuiesce).
	quiesce []func()
}

// New creates an empty simulation at time zero.
func New() *Sim {
	return &Sim{}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Executed reports the number of events this engine has executed.
func (s *Sim) Executed() uint64 { return s.executed }

// QueueLen reports this engine's own heap depth (unlike Pending, it
// never aggregates across a sharded simulation). Read it only from the
// engine's goroutine or at quiescent points.
func (s *Sim) QueueLen() int { return s.queue.len() }

// OnQuiesce registers fn to run at every quiescent point: after each
// Run/RunAll returns its event loop, while no event is executing. On an
// engine belonging to a sharded simulation the registration is
// delegated to the coordinator, whose quiescent points play the same
// role. Callbacks may read any simulation state but must not schedule
// events or otherwise advance the simulation.
func (s *Sim) OnQuiesce(fn func()) {
	if s.coord != nil {
		s.coord.OnQuiesce(fn)
		return
	}
	s.quiesce = append(s.quiesce, fn)
}

// quiesced fires the serial quiescence callbacks.
func (s *Sim) quiesced() {
	for _, fn := range s.quiesce {
		fn()
	}
}

// SetTraceEngine installs this engine's tracing surface; nil disables
// tracing, which is the default and costs the frame path one nil check.
func (s *Sim) SetTraceEngine(e *tracing.Engine) { s.trc = e }

// TraceEngine returns this engine's tracing surface (nil when the net
// is untraced).
func (s *Sim) TraceEngine() *tracing.Engine { return s.trc }

// CurTrace returns the trace context of the event currently
// dispatching on this engine — zero when untraced.
func (s *Sim) CurTrace() uint64 { return s.curTrace }

// clampPast guards against scheduling strictly in the past: the event is
// clamped to run at the current instant (after already pending events for
// that instant), or panics in StrictPast mode. Sharded execution depends
// on this invariant: a conservative shard clock never runs backwards, so
// an event scheduled behind now is always a causality bug in the caller.
func (s *Sim) clampPast(at Time) Time {
	if at < s.now {
		if s.StrictPast {
			if s.trc != nil {
				s.trc.DumpFlight("invariant: event scheduled in the past", int64(s.now))
			}
			panic(fmt.Errorf("%w: scheduled %v behind %v", ErrPastEvent, at, s.now))
		}
		return s.now
	}
	return at
}

// Schedule runs fn at the given absolute time. Scheduling in the past (or at
// the present instant) runs the event at the current time, after already
// pending events for that time (see StrictPast). Events scheduled at the
// same instant run in scheduling order.
func (s *Sim) Schedule(at Time, fn func()) {
	at = s.clampPast(at)
	s.nextID++
	s.queue.push(eventKey{at: at, genAt: s.now, src: s.rank, seq: s.nextID}, eventPayload{fn: fn, trace: s.curTrace})
}

// ScheduleBytes runs fn(raw) at the given absolute time without allocating
// a closure; fn is typically a callback cached once per component.
// Ordering is identical to Schedule with the same timestamp.
func (s *Sim) ScheduleBytes(at Time, fn func([]byte), raw []byte) {
	at = s.clampPast(at)
	s.nextID++
	s.queue.push(eventKey{at: at, genAt: s.now, src: s.rank, seq: s.nextID}, eventPayload{bfn: fn, raw: raw, trace: s.curTrace})
}

// scheduleDeliver schedules delivery of raw to nic without allocating a
// closure; ordering is identical to Schedule with the same timestamp.
func (s *Sim) scheduleDeliver(at Time, nic *NIC, raw []byte) {
	at = s.clampPast(at)
	s.nextID++
	s.queue.push(eventKey{at: at, genAt: s.now, src: s.rank, seq: s.nextID}, eventPayload{nic: nic, raw: raw, trace: s.curTrace})
}

// scheduleDeliverSeg schedules one batched delivery of raw to every local
// NIC of g except from (snapshotting the current attachment count — NICs
// attached later must not see earlier frames).
func (s *Sim) scheduleDeliverSeg(at Time, g *Segment, from *NIC, raw []byte, dup bool) {
	at = s.clampPast(at)
	s.nextID++
	s.queue.push(eventKey{at: at, genAt: s.now, src: s.rank, seq: s.nextID},
		eventPayload{seg: g, nic: from, raw: raw, nn: int32(len(g.nics)), dup: dup, trace: s.curTrace})
}

// capped reports whether an event-count cap is in force, either on this
// engine or (for a shard of a coordinated simulation) globally. Batched
// deliveries count as several executed events at once, which would move a
// cap's exact stopping point, so segments only batch when uncapped.
func (s *Sim) capped() bool {
	if s.MaxEvents != 0 {
		return true
	}
	return s.coord != nil && s.coord.control.MaxEvents != 0
}

// dispatch runs one popped event and returns how many logical events it
// performed: 1, except for batched segment deliveries, which count one per
// frame delivery so Executed totals stay serial-identical.
func (e *eventPayload) dispatch() int {
	if e.seg != nil {
		return e.seg.deliverLocal(e.nic, e.raw, e.nn, e.dup)
	}
	if e.nic != nil {
		e.nic.deliver(e.raw)
		return 1
	}
	if e.bfn != nil {
		e.bfn(e.raw)
		return 1
	}
	e.fn()
	return 1
}

// After schedules fn to run d from now.
func (s *Sim) After(d Duration, fn func()) { s.Schedule(s.now.Add(d), fn) }

// Stop halts the simulation: Run returns after the current event.
func (s *Sim) Stop() {
	s.halted = true
	if s.coord != nil {
		s.coord.Stop()
	}
}

// Run executes events until the queue is empty, the deadline passes, Stop is
// called, or MaxEvents is exceeded. It returns the number of events executed.
// On an engine belonging to a sharded simulation, Run drives the whole
// coordinated simulation (all shards plus control) to the deadline.
func (s *Sim) Run(until Time) uint64 {
	if s.coord != nil {
		return s.coord.Run(until)
	}
	start := s.executed
	for s.queue.len() > 0 && !s.halted {
		if s.queue.keys[0].at > until {
			break
		}
		at, e := s.queue.pop()
		s.now = at
		s.curTrace = e.trace
		s.executed += uint64(e.dispatch())
		if s.MaxEvents != 0 && s.executed-start >= s.MaxEvents {
			break
		}
	}
	s.curTrace = 0
	if s.now < until && !s.halted && s.queue.len() == 0 {
		s.now = until
	}
	s.quiesced()
	return s.executed - start
}

// peekKey returns the head event's ordering key, if any.
func (s *Sim) peekKey() (eventKey, bool) {
	if s.queue.len() == 0 {
		return eventKey{}, false
	}
	return s.queue.keys[0], true
}

// RunAll executes events until the queue is empty or Stop is called.
func (s *Sim) RunAll() uint64 {
	if s.coord != nil {
		return s.coord.RunAll()
	}
	start := s.executed
	for s.queue.len() > 0 && !s.halted {
		at, e := s.queue.pop()
		s.now = at
		s.curTrace = e.trace
		s.executed += uint64(e.dispatch())
		if s.MaxEvents != 0 && s.executed-start >= s.MaxEvents {
			break
		}
	}
	s.curTrace = 0
	s.quiesced()
	return s.executed - start
}

// Pending reports the number of queued events (across all shards, for an
// engine belonging to a sharded simulation).
func (s *Sim) Pending() int {
	if s.coord != nil {
		return s.coord.Pending()
	}
	return s.queue.len()
}

// CPU models a serially shared processing resource (one per node). Work
// submitted to the CPU executes in submission order; each item occupies the
// CPU for its stated cost. This is what turns per-frame software costs into
// saturation frame-rate limits, the paper's dominant effect.
type CPU struct {
	sim       *Sim
	busyUntil Time
	// Busy accumulates total occupied time, for utilization reporting.
	Busy Duration
}

// NewCPU creates a CPU bound to the simulation clock.
func NewCPU(sim *Sim) *CPU { return &CPU{sim: sim} }

// Exec schedules fn to run after the CPU has been held for cost, queueing
// behind earlier work. It returns the completion time.
func (c *CPU) Exec(cost Duration, fn func()) Time {
	start := c.sim.Now()
	if c.busyUntil > start {
		start = c.busyUntil
	}
	done := start.Add(cost)
	c.busyUntil = done
	c.Busy += cost
	c.sim.Schedule(done, fn)
	return done
}

// ExecBytes is Exec for a cached func([]byte) callback: scheduling the
// completion does not allocate a closure.
func (c *CPU) ExecBytes(cost Duration, fn func([]byte), raw []byte) Time {
	start := c.sim.Now()
	if c.busyUntil > start {
		start = c.busyUntil
	}
	done := start.Add(cost)
	c.busyUntil = done
	c.Busy += cost
	c.sim.ScheduleBytes(done, fn, raw)
	return done
}

// Hold occupies the CPU for cost without a completion callback.
func (c *CPU) Hold(cost Duration) { c.Exec(cost, func() {}) }

// QueueDelay reports how long newly submitted work would wait before starting.
func (c *CPU) QueueDelay() Duration {
	if c.busyUntil <= c.sim.Now() {
		return 0
	}
	return c.busyUntil.Sub(c.sim.Now())
}

// Utilization is the one busy-window computation every consumer
// shares: busy time over an observation window, clamped to [0, 1]
// (rounding in cost accounting can push a raw ratio a hair past 1).
// CPU.Utilization, Segment.Utilization, the experiments' utilization
// tables and the metrics plane's ab_bridge_cpu_utilization gauge all
// resolve to this definition, so a table and a scraped value can never
// disagree.
func Utilization(busy, elapsed Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	u := float64(busy) / float64(elapsed)
	if u > 1 {
		u = 1
	}
	return u
}

// Utilization returns Busy / elapsed, given the elapsed observation window.
func (c *CPU) Utilization(elapsed Duration) float64 {
	return Utilization(c.Busy, elapsed)
}

func (c *CPU) String() string {
	return fmt.Sprintf("cpu(busyUntil=%v)", Duration(c.busyUntil))
}
