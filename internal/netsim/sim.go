// Package netsim is a deterministic discrete-event simulator of extended
// Ethernet LANs. It stands in for the paper's physical testbed: 100 Mbps
// shared segments, NICs with promiscuous capture, per-node CPUs with a
// calibrated cost model for the Linux kernel path and the switchlet VM.
//
// The paper's measurements are properties of a software path — a user-space
// bytecode interpreter behind kernel packet sockets — rather than of any
// particular NIC hardware. The simulator reproduces that path stage by
// stage (paper Figure 5):
//
//  1. frame arrives on the segment (wire time at 100 Mbps),
//  2. ISR + kernel delivery (CostModel.KernelPerFrame/KernelPerByte),
//  3. the bridge program runs (VM instruction accounting or native cost),
//  4. kernel send path (same kernel costs),
//  5. frame is transmitted onto the destination segment (wire time).
//
// All processing on a node is serialized through the node's CPU resource,
// which is what produces interpretation-limited frame rates at saturation.
package netsim

import (
	"container/heap"
	"fmt"
)

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64 // tie-break for determinism
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Sim is a discrete-event simulation. The zero value is not usable; call New.
type Sim struct {
	now    Time
	queue  eventQueue
	nextID uint64
	// Halted is set by Stop and ends Run early.
	halted bool
	// MaxEvents guards runaway simulations (e.g. broadcast storms in the
	// loop-without-spanning-tree experiments). Zero means no limit.
	MaxEvents uint64
	executed  uint64
}

// New creates an empty simulation at time zero.
func New() *Sim {
	s := &Sim{}
	heap.Init(&s.queue)
	return s
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Schedule runs fn at the given absolute time. Scheduling in the past (or at
// the present instant) runs the event at the current time, after already
// pending events for that time. Events scheduled at the same instant run in
// scheduling order.
func (s *Sim) Schedule(at Time, fn func()) {
	if at < s.now {
		at = s.now
	}
	s.nextID++
	heap.Push(&s.queue, &event{at: at, seq: s.nextID, fn: fn})
}

// After schedules fn to run d from now.
func (s *Sim) After(d Duration, fn func()) { s.Schedule(s.now.Add(d), fn) }

// Stop halts the simulation: Run returns after the current event.
func (s *Sim) Stop() { s.halted = true }

// Run executes events until the queue is empty, the deadline passes, Stop is
// called, or MaxEvents is exceeded. It returns the number of events executed.
func (s *Sim) Run(until Time) uint64 {
	start := s.executed
	for len(s.queue) > 0 && !s.halted {
		e := s.queue[0]
		if e.at > until {
			break
		}
		heap.Pop(&s.queue)
		s.now = e.at
		e.fn()
		s.executed++
		if s.MaxEvents != 0 && s.executed-start >= s.MaxEvents {
			break
		}
	}
	if s.now < until && !s.halted && len(s.queue) == 0 {
		s.now = until
	}
	return s.executed - start
}

// RunAll executes events until the queue is empty or Stop is called.
func (s *Sim) RunAll() uint64 {
	start := s.executed
	for len(s.queue) > 0 && !s.halted {
		e := heap.Pop(&s.queue).(*event)
		s.now = e.at
		e.fn()
		s.executed++
		if s.MaxEvents != 0 && s.executed-start >= s.MaxEvents {
			break
		}
	}
	return s.executed - start
}

// Pending reports the number of queued events.
func (s *Sim) Pending() int { return len(s.queue) }

// CPU models a serially shared processing resource (one per node). Work
// submitted to the CPU executes in submission order; each item occupies the
// CPU for its stated cost. This is what turns per-frame software costs into
// saturation frame-rate limits, the paper's dominant effect.
type CPU struct {
	sim       *Sim
	busyUntil Time
	// Busy accumulates total occupied time, for utilization reporting.
	Busy Duration
}

// NewCPU creates a CPU bound to the simulation clock.
func NewCPU(sim *Sim) *CPU { return &CPU{sim: sim} }

// Exec schedules fn to run after the CPU has been held for cost, queueing
// behind earlier work. It returns the completion time.
func (c *CPU) Exec(cost Duration, fn func()) Time {
	start := c.sim.Now()
	if c.busyUntil > start {
		start = c.busyUntil
	}
	done := start.Add(cost)
	c.busyUntil = done
	c.Busy += cost
	c.sim.Schedule(done, fn)
	return done
}

// Hold occupies the CPU for cost without a completion callback.
func (c *CPU) Hold(cost Duration) { c.Exec(cost, func() {}) }

// QueueDelay reports how long newly submitted work would wait before starting.
func (c *CPU) QueueDelay() Duration {
	if c.busyUntil <= c.sim.Now() {
		return 0
	}
	return c.busyUntil.Sub(c.sim.Now())
}

// Utilization returns Busy / elapsed, given the elapsed observation window.
func (c *CPU) Utilization(elapsed Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(c.Busy) / float64(elapsed)
}

func (c *CPU) String() string {
	return fmt.Sprintf("cpu(busyUntil=%v)", Duration(c.busyUntil))
}
