package tracing

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// WriteChrome writes the merged transcript (Flush first) in the Chrome
// trace-event JSON format, loadable in Perfetto / chrome://tracing.
//
// Virtual nanoseconds map onto the format's microsecond ts field with
// three decimals, so one simulated nanosecond is one displayed
// nanosecond. Instants export as ph "i"; spans export as async begin/
// end pairs (ph "b"/"e") keyed by the trace ID, because spans of one
// node legitimately overlap (the bridge CPU pipelines frames) and the
// synchronous B/E form demands strict nesting. Every node gets its own
// tid plus a thread_name metadata record.
func (t *Tracer) WriteChrome(w io.Writer) error { return WriteChromeAll(w, []*Tracer{t}) }

// WriteChromeAll writes one Chrome trace-event document covering several
// tracers — typically every net attached to a Hub — as one process
// (pid) per tracer, in slice order. Events are globally sorted by
// virtual timestamp so the document passes LintChrome regardless of how
// the per-net transcripts interleave.
func WriteChromeAll(w io.Writer, tracers []*Tracer) error {
	type rec struct {
		ts  int64 // virtual ns
		ord int   // emission order, for a stable sort
		js  string
	}
	var recs []rec
	var meta []string
	esc := func(s string) string {
		b, _ := json.Marshal(s)
		return string(b)
	}
	ts := func(ns int64) string { return fmt.Sprintf("%d.%03d", ns/1000, ns%1000) }
	ord := 0
	for pi, t := range tracers {
		pid := pi + 1
		// Stable node → tid assignment, sorted by name within the pid.
		tids := map[string]int{}
		for i := range t.merged {
			if _, ok := tids[t.merged[i].Node]; !ok {
				tids[t.merged[i].Node] = 0
			}
		}
		names := make([]string, 0, len(tids))
		for n := range tids { //ab:mapiter-ok — sorted immediately below
			names = append(names, n)
		}
		sort.Strings(names)
		for i, n := range names {
			tids[n] = i + 1
			meta = append(meta, fmt.Sprintf(
				`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%s}}`,
				pid, i+1, esc(n)))
		}
		for i := range t.merged {
			ev := &t.merged[i]
			tid := tids[ev.Node]
			args := fmt.Sprintf(`{"trace":"%016x","node":%s,"detail":%s}`, ev.Trace, esc(ev.Node), esc(ev.Detail))
			if ev.Dur > 0 {
				// Async ids are matched across the whole document, so
				// prefix the pid: two nets built from the same topology
				// mint identical trace IDs.
				id := fmt.Sprintf("%d-%x", pid, ev.Trace)
				recs = append(recs, rec{ev.VT, ord, fmt.Sprintf(
					`{"name":%s,"cat":"span","ph":"b","id":"%s","ts":%s,"pid":%d,"tid":%d,"args":%s}`,
					esc(ev.Kind.String()), id, ts(ev.VT), pid, tid, args)})
				recs = append(recs, rec{ev.VT + ev.Dur, ord, fmt.Sprintf(
					`{"name":%s,"cat":"span","ph":"e","id":"%s","ts":%s,"pid":%d,"tid":%d}`,
					esc(ev.Kind.String()), id, ts(ev.VT+ev.Dur), pid, tid)})
			} else {
				recs = append(recs, rec{ev.VT, ord, fmt.Sprintf(
					`{"name":%s,"cat":"event","ph":"i","s":"t","ts":%s,"pid":%d,"tid":%d,"args":%s}`,
					esc(ev.Kind.String()), ts(ev.VT), pid, tid, args)})
			}
			ord++
		}
	}
	sort.SliceStable(recs, func(i, j int) bool {
		if recs[i].ts != recs[j].ts {
			return recs[i].ts < recs[j].ts
		}
		return recs[i].ord < recs[j].ord
	})

	if _, err := io.WriteString(w, `{"displayTimeUnit":"ns","traceEvents":[`); err != nil {
		return err
	}
	first := true
	emit := func(s string) error {
		if !first {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err := io.WriteString(w, s)
		return err
	}
	for _, m := range meta {
		if err := emit(m); err != nil {
			return err
		}
	}
	for i := range recs {
		if err := emit(recs[i].js); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]}\n")
	return err
}

// chromeEvent is the subset of the trace-event schema the linter reads.
type chromeEvent struct {
	Name string          `json:"name"`
	Ph   string          `json:"ph"`
	ID   string          `json:"id"`
	Ts   json.Number     `json:"ts"`
	Pid  json.RawMessage `json:"pid"`
	Tid  json.RawMessage `json:"tid"`
}

// LintChrome validates a Chrome trace-event document the way
// cmd/promlint validates an exposition document: the JSON must decode,
// every event needs a name and a known phase, non-metadata timestamps
// must be monotone non-decreasing in file order (virtual time never
// runs backwards), and async begin/end events must match one-to-one
// per (id, name). Returns nil for an empty-but-well-formed trace.
func LintChrome(r io.Reader) error {
	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return fmt.Errorf("chrome trace: bad JSON: %w", err)
	}
	prev := -1.0
	open := map[string]int{}
	for i, ev := range doc.TraceEvents {
		if ev.Name == "" {
			return fmt.Errorf("chrome trace: event %d: missing name", i)
		}
		switch ev.Ph {
		case "M":
			continue // metadata carries no timestamp
		case "i", "b", "e", "B", "E", "X":
		default:
			return fmt.Errorf("chrome trace: event %d (%s): unknown phase %q", i, ev.Name, ev.Ph)
		}
		ts, err := ev.Ts.Float64()
		if err != nil {
			return fmt.Errorf("chrome trace: event %d (%s): bad ts %q", i, ev.Name, ev.Ts)
		}
		if ts < prev {
			return fmt.Errorf("chrome trace: event %d (%s): ts %v before predecessor %v", i, ev.Name, ts, prev)
		}
		prev = ts
		switch ev.Ph {
		case "b":
			if ev.ID == "" {
				return fmt.Errorf("chrome trace: event %d (%s): async begin without id", i, ev.Name)
			}
			open[ev.ID+"\x00"+ev.Name]++
		case "e":
			k := ev.ID + "\x00" + ev.Name
			if open[k] == 0 {
				return fmt.Errorf("chrome trace: event %d (%s): async end without begin (id %s)", i, ev.Name, ev.ID)
			}
			open[k]--
		}
	}
	for k, n := range open { //ab:mapiter-ok — error selection only, any unbalanced key is a failure
		if n != 0 {
			return fmt.Errorf("chrome trace: %d unmatched async begin(s), e.g. %q", n, k)
		}
	}
	return nil
}
