package tracing

import (
	"bytes"
	"strings"
	"testing"
)

// sampledID builds a trace ID that carries both the "traced" and the
// "sampled" bits without going through the mint.
func sampledID(n uint64) uint64 { return n<<1 | 1<<63 | 1 }

func TestTraceIDDeterministicAndTagged(t *testing.T) {
	a := New(Config{Seed: 42})
	b := New(Config{Seed: 42})
	seedA, seedB := a.SeedFor("br0.eth1"), b.SeedFor("br0.eth1")
	if seedA != seedB {
		t.Fatalf("SeedFor not deterministic: %x vs %x", seedA, seedB)
	}
	if other := a.SeedFor("br0.eth2"); other == seedA {
		t.Fatalf("distinct NICs share a stream seed: %x", other)
	}
	seen := map[uint64]bool{}
	for n := uint64(1); n <= 100; n++ {
		id := a.TraceID(seedA, n)
		if id != b.TraceID(seedB, n) {
			t.Fatalf("TraceID(%d) not deterministic", n)
		}
		if id&(1<<63) == 0 {
			t.Fatalf("TraceID(%d) = %x: bit 63 clear (collides with untraced zero)", n, id)
		}
		if seen[id] {
			t.Fatalf("TraceID(%d) = %x repeats within the stream", n, id)
		}
		seen[id] = true
	}
}

func TestTraceIDSampling(t *testing.T) {
	all := New(Config{Seed: 7, SampleProb: 1})
	none := New(Config{Seed: 7, SampleProb: 1e-12})
	seed := all.SeedFor("h1.eth0")
	for n := uint64(1); n <= 200; n++ {
		if !Sampled(all.TraceID(seed, n)) {
			t.Fatalf("SampleProb=1: trace %d unsampled", n)
		}
		if Sampled(none.TraceID(seed, n)) {
			t.Fatalf("SampleProb~0: trace %d sampled", n)
		}
	}
	// The decision rides the ID itself, so it is identical wherever the
	// ID travels — no per-shard coin flips.
	half := New(Config{Seed: 7, SampleProb: 0.5})
	sampled := 0
	for n := uint64(1); n <= 1000; n++ {
		if Sampled(half.TraceID(seed, n)) {
			sampled++
		}
	}
	if sampled < 350 || sampled > 650 {
		t.Fatalf("SampleProb=0.5: %d/1000 sampled, far from fair", sampled)
	}
}

func TestFlightRingWraparound(t *testing.T) {
	tr := New(Config{FlightN: 4})
	e := tr.Engine(0)
	for i := 1; i <= 10; i++ {
		// Unsampled events (bit 0 clear) still enter the flight ring.
		e.Emit(Event{VT: int64(i), Trace: 1 << 63, Kind: KindSend, Node: "n"})
	}
	e.DumpFlight("test", 10)
	dumps := tr.FlightDumps()
	if len(dumps) != 1 || tr.DumpCount() != 1 {
		t.Fatalf("expected 1 dump, got %d (count %d)", len(dumps), tr.DumpCount())
	}
	d := dumps[0]
	if len(d.Events) != 4 {
		t.Fatalf("ring of 4 dumped %d events", len(d.Events))
	}
	for i, ev := range d.Events {
		if want := int64(7 + i); ev.VT != want {
			t.Fatalf("dump[%d].VT = %d, want %d (oldest first)", i, ev.VT, want)
		}
	}
	if len(tr.Transcript()) != 0 {
		t.Fatalf("unsampled events leaked into the transcript")
	}
}

func TestFlushCanonicalOrderAndXShard(t *testing.T) {
	tr := New(Config{})
	e0, e1 := tr.Engine(0), tr.Engine(1)
	// Same instant, one trace, recorded out of pipeline order across two
	// engines; the crossing itself must stay flight-only.
	id := sampledID(9)
	e1.Emit(Event{VT: 50, Trace: id, Kind: KindVM, Node: "br", Dur: 10})
	e1.Emit(Event{VT: 50, Trace: id, Kind: KindVerdict, Node: "br"})
	e0.Emit(Event{VT: 50, Trace: id, Kind: KindXShard, Node: "h1.eth0"})
	e0.Emit(Event{VT: 50, Trace: id, Kind: KindSend, Node: "h1.eth0"})
	e0.Emit(Event{VT: 40, Trace: id, Kind: KindWire, Node: "s0", Dur: 5})
	tr.Flush()
	got := tr.Transcript()
	kinds := make([]Kind, len(got))
	for i := range got {
		kinds[i] = got[i].Kind
	}
	want := []Kind{KindWire, KindSend, KindVM, KindVerdict}
	if len(kinds) != len(want) {
		t.Fatalf("transcript has %d events (%v), want %d", len(kinds), kinds, len(want))
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("transcript[%d] = %s, want %s", i, kinds[i], want[i])
		}
	}
	if tr.Spans() != 4 {
		t.Fatalf("Spans() = %d, want 4 (xshard never counts)", tr.Spans())
	}
}

func TestTranscriptCapCountsDropped(t *testing.T) {
	tr := New(Config{MaxEvents: 3})
	e := tr.Engine(0)
	for i := 1; i <= 5; i++ {
		e.Emit(Event{VT: int64(i), Trace: sampledID(uint64(i)), Kind: KindSend, Node: "n"})
	}
	tr.Flush()
	if len(tr.Transcript()) != 3 {
		t.Fatalf("cap 3 kept %d events", len(tr.Transcript()))
	}
	if tr.Dropped() != 2 {
		t.Fatalf("Dropped() = %d, want 2 (no silent truncation)", tr.Dropped())
	}
}

func TestRenderTranscriptFormat(t *testing.T) {
	tr := New(Config{})
	e := tr.Engine(0)
	e.Emit(Event{VT: 100, Trace: sampledID(1), Kind: KindSend, Node: "h1.eth0", Detail: "len=64"})
	e.Emit(Event{VT: 120, Trace: sampledID(1), Kind: KindWire, Node: "s0", Dur: 7, Detail: "len=64"})
	tr.Flush()
	var sb strings.Builder
	tr.RenderTranscript(&sb)
	want := "t=100          8000000000000003 send    h1.eth0 len=64\n" +
		"t=120          8000000000000003 wire    s0 dur=7 len=64\n"
	if sb.String() != want {
		t.Fatalf("render format drifted:\n got %q\nwant %q", sb.String(), want)
	}
}

func TestVMHistObservesSpans(t *testing.T) {
	tr := New(Config{})
	var got []float64
	tr.SetVMHist(obsFunc(func(v float64) { got = append(got, v) }))
	e := tr.Engine(0)
	e.Emit(Event{VT: 1, Trace: sampledID(1), Kind: KindVM, Node: "br", Dur: 111})
	e.Emit(Event{VT: 2, Trace: sampledID(1), Kind: KindSend, Node: "br"})
	e.Emit(Event{VT: 3, Trace: sampledID(1), Kind: KindVM, Node: "br", Dur: 222})
	tr.Flush()
	if len(got) != 2 || got[0] != 111 || got[1] != 222 {
		t.Fatalf("vm histogram observed %v, want [111 222]", got)
	}
}

type obsFunc func(float64)

func (f obsFunc) Observe(v float64) { f(v) }

func TestChromeExportLints(t *testing.T) {
	tr := New(Config{})
	e := tr.Engine(0)
	id := sampledID(3)
	e.Emit(Event{VT: 1000, Trace: id, Kind: KindSend, Node: "h1.eth0", Detail: "len=64"})
	e.Emit(Event{VT: 1500, Trace: id, Kind: KindWire, Node: "s0", Dur: 600, Detail: "len=64"})
	e.Emit(Event{VT: 2100, Trace: id, Kind: KindVM, Node: "br", Dur: 400, Detail: `handler="x"`})
	tr.Flush()
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if err := LintChrome(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("self-produced trace fails lint: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{`"thread_name"`, `"ph":"b"`, `"ph":"e"`, `"ph":"i"`, `"displayTimeUnit":"ns"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("chrome export missing %s:\n%s", want, out)
		}
	}
}

func TestWriteChromeAllMergesMonotone(t *testing.T) {
	mk := func(vts ...int64) *Tracer {
		tr := New(Config{})
		e := tr.Engine(0)
		for i, vt := range vts {
			e.Emit(Event{VT: vt, Trace: sampledID(uint64(i + 1)), Kind: KindVM, Node: "br", Dur: 50})
		}
		tr.Flush()
		return tr
	}
	// Interleaved virtual times across the two tracers: the combined
	// document must still be globally ts-sorted.
	a, b := mk(10, 300, 900), mk(5, 400, 800)
	var buf bytes.Buffer
	if err := WriteChromeAll(&buf, []*Tracer{a, b}); err != nil {
		t.Fatal(err)
	}
	if err := LintChrome(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("multi-tracer export fails lint: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), `"pid":2`) {
		t.Fatalf("second tracer did not get its own pid:\n%s", buf.String())
	}
}

func TestLintChromeRejects(t *testing.T) {
	cases := map[string]string{
		"bad json":         `{"traceEvents":[`,
		"missing name":     `{"traceEvents":[{"ph":"i","ts":1}]}`,
		"unknown phase":    `{"traceEvents":[{"name":"x","ph":"q","ts":1}]}`,
		"backwards ts":     `{"traceEvents":[{"name":"x","ph":"i","ts":5},{"name":"y","ph":"i","ts":4}]}`,
		"unmatched begin":  `{"traceEvents":[{"name":"x","ph":"b","id":"1","ts":1}]}`,
		"end before begin": `{"traceEvents":[{"name":"x","ph":"e","id":"1","ts":1}]}`,
	}
	for label, doc := range cases {
		if err := LintChrome(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: lint accepted %s", label, doc)
		}
	}
	if err := LintChrome(strings.NewReader(`{"traceEvents":[]}`)); err != nil {
		t.Errorf("empty trace rejected: %v", err)
	}
}
