// Package tracing is the deterministic causal tracing plane of the
// simulator: per-frame trace IDs propagated through NIC transmit
// queues, segment propagation, shard mailbox crossings, bridge demux
// and switchlet VM execution, with every event stamped in virtual
// time. Because trace IDs are minted from seeded per-NIC splitmix64
// streams (the same internal/fault/frand kernel the fault plane uses)
// and recording never touches virtual time, a traced run reproduces
// byte-for-byte at any shard count: the sampled transcript of a run at
// 4 shards is identical to the serial one.
//
// Two planes record concurrently:
//
//   - The sampled transcript: traces whose ID carries the sampled bit
//     (head-based Bernoulli decided when the trace is minted) append
//     their events to an engine-local buffer, merged and canonically
//     sorted at quiescent points. This is what the text renderer, the
//     Chrome trace-event export and the span-derived histograms see.
//
//   - The flight recorder: a fixed-size per-engine ring that records
//     the last FlightN events regardless of sampling. It is dumped
//     automatically on VM traps, verifier rejections at the netloader,
//     Manager rollbacks and invariant violations, giving a post-mortem
//     of what the engine was doing just before things went wrong.
//
// The package sits below netsim in the import graph (it imports only
// frand), so the engine can carry a tracer without cycles; everything
// above reaches it through netsim.Sim. When no tracer is installed the
// frame path pays one nil check and nothing else.
package tracing

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/switchware/activebridge/internal/fault/frand"
)

// Kind classifies a trace event. The declaration order is the pipeline
// order of a frame's life — send, transmit-queue drop, wire time,
// fault verdict, receive, shard crossing, bridge demux, VM execution,
// deopt, trap, forwarding verdict — and doubles as the canonical sort
// rank for same-instant events of one trace.
type Kind uint8

const (
	// KindSend marks a frame accepted into a NIC transmit queue.
	KindSend Kind = iota
	// KindTxDrop marks a frame lost before the wire (queue overflow,
	// link down).
	KindTxDrop
	// KindWire is the span a frame occupies a segment: serialization
	// plus propagation, Dur = delivery time minus transmit start.
	KindWire
	// KindFault marks an injected impairment verdict (drop, corrupt,
	// duplicate) from the fault plane.
	KindFault
	// KindRx marks delivery into a receiver.
	KindRx
	// KindXShard marks a mailbox crossing between shard engines. The
	// crossing only exists on the sharded engine, so these events are
	// flight-recorder-only and never enter the sampled transcript.
	KindXShard
	// KindDemux marks the bridge's handler decision for a frame
	// (flow-cache hit or miss, destination binding, default handler).
	KindDemux
	// KindVM is the switchlet handler execution span; Dur is the
	// frame's virtual VM cost, Detail carries steps and tier counts.
	KindVM
	// KindDeopt marks a deoptimization from quickened to wire code.
	KindDeopt
	// KindTrap marks a switchlet trap surfacing from the VM.
	KindTrap
	// KindVerdict is the bridge's final word on a frame: forwarded,
	// suppressed, or dropped for want of a handler.
	KindVerdict
	// KindMark is an out-of-band control-plane event: crash, restart,
	// verifier rejection, Manager rollback, invariant violation.
	KindMark

	kindCount
)

var kindNames = [kindCount]string{
	"send", "txdrop", "wire", "fault", "rx", "xshard",
	"demux", "vm", "deopt", "trap", "verdict", "mark",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one record: an instant (Dur == 0) or a span (Dur > 0) at
// virtual time VT on node Node, belonging to trace Trace. Bit 0 of
// Trace is the sampled flag; bit 63 is always set so a zero Trace
// means "untraced".
type Event struct {
	VT     int64
	Dur    int64
	Trace  uint64
	Kind   Kind
	Node   string
	Detail string
}

// Sampled reports whether a trace ID carries the sampled bit.
func Sampled(trace uint64) bool { return trace&1 == 1 }

// less is the canonical event order: virtual time, then trace, then
// pipeline rank, then node/detail/duration. Two events equal under it
// are identical records, so sorting a batch with it yields the same
// byte sequence no matter which engine recorded what.
func less(a, b Event) bool {
	if a.VT != b.VT {
		return a.VT < b.VT
	}
	if a.Trace != b.Trace {
		return a.Trace < b.Trace
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	if a.Detail != b.Detail {
		return a.Detail < b.Detail
	}
	return a.Dur < b.Dur
}

// FlightDump is one flight-recorder snapshot: the ring contents,
// oldest first, at the moment a trigger fired.
type FlightDump struct {
	Reason string
	VT     int64
	Shard  int
	Events []Event
}

// Config parameterizes a Tracer. The zero value means: seed 1, sample
// everything, 256-event flight rings, one-million-event transcript cap.
type Config struct {
	// Seed derives every per-NIC trace-ID stream (frand.DeriveSeed on
	// the NIC name), exactly like a fault plan's seed.
	Seed uint64
	// SampleProb is the per-trace Bernoulli probability that a freshly
	// minted trace records into the sampled transcript. <= 0 means 1.0
	// (sample everything); the flight recorder is unaffected either way.
	SampleProb float64
	// FlightN is the per-engine flight-recorder ring size.
	FlightN int
	// MaxEvents caps the merged transcript. Overflow is counted in
	// Dropped — never silently discarded — and trimmed only at merge
	// points, so the kept prefix is still shard-count invariant.
	MaxEvents int
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.SampleProb <= 0 {
		c.SampleProb = 1
	}
	if c.FlightN <= 0 {
		c.FlightN = 256
	}
	if c.MaxEvents <= 0 {
		c.MaxEvents = 1 << 20
	}
	return c
}

// Engine is the per-shard recording surface. It is single-goroutine by
// construction — it lives where its netsim engine's events run — so
// Emit takes no locks and allocates only when the sampled buffer grows.
type Engine struct {
	tracer *Tracer
	shard  int

	sampled []Event // transcript candidates since the last merge
	flight  []Event // flight-recorder ring
	fpos    int
	ffull   bool
	dumps   []FlightDump

	spans uint64 // events recorded into the sampled buffer
	dumpN uint64
}

// Shard returns the engine's shard index (0 for the serial engine).
func (e *Engine) Shard() int { return e.shard }

// Tracer returns the tracer this engine records into.
func (e *Engine) Tracer() *Tracer { return e.tracer }

// Emit records one event: always into the flight ring, and into the
// sampled transcript when the trace carries the sampled bit (shard
// crossings are flight-only — they do not exist on the serial engine).
func (e *Engine) Emit(ev Event) {
	e.flight[e.fpos] = ev
	e.fpos++
	if e.fpos == len(e.flight) {
		e.fpos, e.ffull = 0, true
	}
	if ev.Trace&1 == 1 && ev.Kind != KindXShard {
		e.sampled = append(e.sampled, ev)
		e.spans++
	}
}

// DumpFlight snapshots the flight ring, oldest event first. Triggers:
// VM trap, netloader verifier rejection, Manager rollback, invariant
// violation — anything that wants "what just happened here".
func (e *Engine) DumpFlight(reason string, vt int64) {
	n := e.fpos
	if e.ffull {
		n = len(e.flight)
	}
	evs := make([]Event, 0, n)
	if e.ffull {
		evs = append(evs, e.flight[e.fpos:]...)
	}
	evs = append(evs, e.flight[:e.fpos]...)
	e.dumps = append(e.dumps, FlightDump{Reason: reason, VT: vt, Shard: e.shard, Events: evs})
	e.dumpN++
}

// Tracer owns one traced net: its engines, the merged transcript, and
// the trace-ID mint. Merge-side methods (Flush, Transcript, renderers,
// counters) must only run at quiescent points, where every engine is
// parked — the same single-writer contract the metrics plane uses.
type Tracer struct {
	cfg     Config
	engines []*Engine
	merged  []Event
	dropped uint64
	vmHist  Hist
}

// Hist receives span durations at merge time; it is satisfied by
// *metrics.Histogram without this package importing metrics.
type Hist interface{ Observe(float64) }

// New creates a tracer with the given config (zero value is fine).
func New(cfg Config) *Tracer { return &Tracer{cfg: cfg.withDefaults()} }

// Config returns the effective (default-filled) configuration.
func (t *Tracer) Config() Config { return t.cfg }

// Engine returns the recording engine for a shard, creating it on
// first use. Call during build/bind, not from concurrent shard runs.
func (t *Tracer) Engine(shard int) *Engine {
	for _, e := range t.engines {
		if e.shard == shard {
			return e
		}
	}
	e := &Engine{tracer: t, shard: shard, flight: make([]Event, t.cfg.FlightN)}
	t.engines = append(t.engines, e)
	return e
}

// SeedFor derives the trace-ID stream seed for one NIC, independent of
// declaration order and shard assignment.
func (t *Tracer) SeedFor(name string) uint64 { return frand.DeriveSeed(t.cfg.Seed, name) }

// TraceID mints the ID for the n-th frame injected by a NIC whose
// stream seed is seed. Bit 63 is set (a zero ID means untraced), bit 0
// is the head-based sampling decision; both are pure functions of
// (seed, n), so the sharded engine mints the same IDs serial does.
func (t *Tracer) TraceID(seed, n uint64) uint64 {
	raw := frand.Mix(seed ^ n*0x9E3779B97F4A7C15)
	id := raw&^1 | 1<<63
	if float64(frand.Mix(raw)>>11)/(1<<53) < t.cfg.SampleProb {
		id |= 1
	}
	return id
}

// Flush merges every engine's sampled buffer into the transcript in
// canonical order. Call only at quiescent points. Merge batches
// partition the virtual-time axis (events never run backwards), so
// per-batch sorting yields a globally sorted transcript and the result
// does not depend on how many barriers the sharded engine took.
func (t *Tracer) Flush() {
	var batch []Event
	for _, e := range t.engines {
		batch = append(batch, e.sampled...)
		e.sampled = e.sampled[:0]
	}
	if len(batch) == 0 {
		return
	}
	sort.Slice(batch, func(i, j int) bool { return less(batch[i], batch[j]) })
	if t.vmHist != nil {
		for i := range batch {
			if batch[i].Kind == KindVM {
				t.vmHist.Observe(float64(batch[i].Dur))
			}
		}
	}
	if room := t.cfg.MaxEvents - len(t.merged); len(batch) > room {
		if room < 0 {
			room = 0
		}
		t.dropped += uint64(len(batch) - room)
		batch = batch[:room]
	}
	t.merged = append(t.merged, batch...)
}

// SetVMHist installs the histogram fed with KindVM span durations
// (virtual nanoseconds) as batches merge.
func (t *Tracer) SetVMHist(h Hist) { t.vmHist = h }

// Transcript returns the merged sampled transcript. Flush first.
func (t *Tracer) Transcript() []Event { return t.merged }

// Spans returns the total number of events recorded into sampled
// buffers since creation (merged or not).
func (t *Tracer) Spans() uint64 {
	var n uint64
	for _, e := range t.engines {
		n += e.spans
	}
	return n
}

// Dropped returns how many sampled events the transcript cap trimmed.
func (t *Tracer) Dropped() uint64 { return t.dropped }

// DumpCount returns how many flight-recorder dumps have fired.
func (t *Tracer) DumpCount() uint64 {
	var n uint64
	for _, e := range t.engines {
		n += e.dumpN
	}
	return n
}

// FlightDumps returns every engine's dumps in (VT, shard, reason)
// order.
func (t *Tracer) FlightDumps() []FlightDump {
	var all []FlightDump
	for _, e := range t.engines {
		all = append(all, e.dumps...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.VT != b.VT {
			return a.VT < b.VT
		}
		if a.Shard != b.Shard {
			return a.Shard < b.Shard
		}
		return a.Reason < b.Reason
	})
	return all
}

// RenderTranscript writes the merged transcript as aligned text, one
// event per line — the form the determinism tests pin byte-for-byte.
func (t *Tracer) RenderTranscript(w io.Writer) {
	for i := range t.merged {
		writeEvent(w, &t.merged[i])
	}
}

// RenderDumps writes every flight dump as text: a header line per
// dump, then its events oldest first.
func (t *Tracer) RenderDumps(w io.Writer) {
	for _, d := range t.FlightDumps() {
		fmt.Fprintf(w, "== flight dump @t=%d shard=%d: %s (%d events) ==\n", d.VT, d.Shard, d.Reason, len(d.Events))
		for i := range d.Events {
			writeEvent(w, &d.Events[i])
		}
	}
}

func writeEvent(w io.Writer, ev *Event) {
	fmt.Fprintf(w, "t=%-12d %016x %-7s %s", ev.VT, ev.Trace, ev.Kind, ev.Node)
	if ev.Dur > 0 {
		fmt.Fprintf(w, " dur=%d", ev.Dur)
	}
	if ev.Detail != "" {
		fmt.Fprintf(w, " %s", ev.Detail)
	}
	fmt.Fprintln(w)
}

// enabled is the process-wide opt-in, mirroring metrics.Enabled: every
// net built while it is on gets a tracer wired by topo.Build.
var enabled atomic.Bool

// Enable turns process-wide tracing on for nets built afterwards.
func Enable() { enabled.Store(true) }

// SetEnabled sets the process-wide flag explicitly.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether process-wide tracing is on.
func Enabled() bool { return enabled.Load() }

var (
	defMu  sync.Mutex
	defCfg Config
)

// SetDefaultConfig sets the config used when topo.Build auto-enables
// tracing (abbench -trace, AB_TRACE in tests).
func SetDefaultConfig(c Config) {
	defMu.Lock()
	defCfg = c
	defMu.Unlock()
}

// GetDefaultConfig returns the config SetDefaultConfig stored.
func GetDefaultConfig() Config {
	defMu.Lock()
	defer defMu.Unlock()
	return defCfg
}

// Hub collects the tracers of every traced net in the process so the
// surfaces (abbench -trace) can export them all at exit.
type Hub struct {
	mu      sync.Mutex
	tracers []*Tracer
}

// DefaultHub is the process-wide hub topo.EnableTracing attaches to.
var DefaultHub = &Hub{}

// Attach adds a tracer to the hub.
func (h *Hub) Attach(t *Tracer) {
	h.mu.Lock()
	h.tracers = append(h.tracers, t)
	h.mu.Unlock()
}

// Detach removes a tracer from the hub.
func (h *Hub) Detach(t *Tracer) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, x := range h.tracers {
		if x == t {
			h.tracers = append(h.tracers[:i], h.tracers[i+1:]...)
			return true
		}
	}
	return false
}

// Tracers returns a snapshot of the attached tracers.
func (h *Hub) Tracers() []*Tracer {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]*Tracer(nil), h.tracers...)
}
