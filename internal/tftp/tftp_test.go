package tftp

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"github.com/switchware/activebridge/internal/ipv4"
)

var client = Endpoint{Addr: ipv4.Addr{10, 0, 0, 9}, Port: 5555}

func TestPacketRoundTrips(t *testing.T) {
	pkts := []Packet{
		&Request{Write: true, Filename: "bridge.swo", Mode: "octet"},
		&Request{Write: false, Filename: "x", Mode: "netascii"},
		&Data{Block: 3, Payload: []byte("hello")},
		&Data{Block: 9, Payload: nil},
		&Ack{Block: 0},
		&Ack{Block: 65535},
		&ErrorPkt{Code: 2, Msg: "denied"},
	}
	for _, p := range pkts {
		b := Marshal(p)
		got, err := Parse(b)
		if err != nil {
			t.Fatalf("Parse(%#v): %v", p, err)
		}
		if fmt.Sprintf("%#v", got) != fmt.Sprintf("%#v", p) {
			// Data payload nil vs empty slice: normalize via bytes.Equal.
			if d1, ok := p.(*Data); ok {
				d2 := got.(*Data)
				if d1.Block == d2.Block && bytes.Equal(d1.Payload, d2.Payload) {
					continue
				}
			}
			t.Errorf("round trip: got %#v, want %#v", got, p)
		}
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse([]byte{0, 1}); err != ErrTruncated {
		t.Errorf("truncated: %v", err)
	}
	if _, err := Parse([]byte{0, 9, 0, 0}); err != ErrMalformed {
		t.Errorf("bad opcode: %v", err)
	}
	if _, err := Parse([]byte{0, 2, 'a', 'b'}); err != ErrMalformed {
		t.Errorf("unterminated strings: %v", err)
	}
	if _, err := Parse([]byte{0, 4, 0}); err != ErrTruncated {
		t.Errorf("short ack: %v", err)
	}
	if _, err := Parse([]byte{0, 4, 0, 0, 0}); err != ErrMalformed {
		t.Errorf("long ack: %v", err)
	}
	big := append([]byte{0, 3, 0, 1}, make([]byte, BlockSize+1)...)
	if _, err := Parse(big); err != ErrMalformed {
		t.Errorf("oversize data: %v", err)
	}
}

// runTransfer drives a full Put against a Server over a lossless in-memory
// "network" and returns the file the server received.
func runTransfer(t *testing.T, name string, content []byte) (string, []byte) {
	t.Helper()
	var gotName string
	var gotData []byte
	srv := NewServer(func(n string, d []byte) error {
		gotName, gotData = n, append([]byte(nil), d...)
		return nil
	})
	put := NewPut(name, content)
	replies := srv.Handle(client, Port, put.Start())
	for i := 0; i < 10000; i++ {
		if len(replies) != 1 {
			t.Fatalf("server sent %d replies", len(replies))
		}
		next := put.Next(replies[0].Payload)
		if next == nil {
			break
		}
		replies = srv.Handle(client, replies[0].FromPort, next)
	}
	if err := put.Err(); err != nil {
		t.Fatalf("transfer error: %v", err)
	}
	if !put.Done() {
		t.Fatal("transfer did not complete")
	}
	return gotName, gotData
}

func TestTransferSizes(t *testing.T) {
	sizes := []int{0, 1, 511, 512, 513, 1024, 1025, 5000}
	for _, n := range sizes {
		content := make([]byte, n)
		for i := range content {
			content[i] = byte(i * 13)
		}
		name, data := runTransfer(t, fmt.Sprintf("f%d.swo", n), content)
		if name != fmt.Sprintf("f%d.swo", n) {
			t.Errorf("size %d: name = %q", n, name)
		}
		if !bytes.Equal(data, content) {
			t.Errorf("size %d: content mismatch (got %d bytes)", n, len(data))
		}
	}
}

func TestTransferProperty(t *testing.T) {
	f := func(content []byte) bool {
		var got []byte
		srv := NewServer(func(_ string, d []byte) error {
			got = append([]byte(nil), d...)
			return nil
		})
		put := NewPut("p.swo", content)
		replies := srv.Handle(client, Port, put.Start())
		for i := 0; i < 1000 && len(replies) == 1; i++ {
			next := put.Next(replies[0].Payload)
			if next == nil {
				break
			}
			replies = srv.Handle(client, replies[0].FromPort, next)
		}
		return put.Done() && bytes.Equal(got, content)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestServerRejectsRead(t *testing.T) {
	srv := NewServer(nil)
	rrq := Marshal(&Request{Write: false, Filename: "secret", Mode: "octet"})
	replies := srv.Handle(client, Port, rrq)
	if len(replies) != 1 {
		t.Fatal("no reply")
	}
	p, err := Parse(replies[0].Payload)
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := p.(*ErrorPkt); !ok || e.Code != ErrCodeAccessDenied {
		t.Errorf("reply = %#v, want access-denied error", p)
	}
	if srv.Rejected != 1 {
		t.Errorf("Rejected = %d", srv.Rejected)
	}
}

func TestServerRejectsNetascii(t *testing.T) {
	srv := NewServer(nil)
	wrq := Marshal(&Request{Write: true, Filename: "f", Mode: "netascii"})
	replies := srv.Handle(client, Port, wrq)
	p, _ := Parse(replies[0].Payload)
	if _, ok := p.(*ErrorPkt); !ok {
		t.Errorf("netascii WRQ accepted: %#v", p)
	}
}

func TestServerUnknownTID(t *testing.T) {
	srv := NewServer(nil)
	data := Marshal(&Data{Block: 1, Payload: []byte("x")})
	replies := srv.Handle(client, 4321, data)
	p, _ := Parse(replies[0].Payload)
	if e, ok := p.(*ErrorPkt); !ok || e.Code != ErrCodeUnknownTID {
		t.Errorf("reply = %#v, want unknown-TID error", p)
	}
}

func TestServerOnFileErrorPropagates(t *testing.T) {
	srv := NewServer(func(string, []byte) error { return errors.New("bad bytecode digest") })
	put := NewPut("evil.swo", []byte("junk"))
	replies := srv.Handle(client, Port, put.Start())
	next := put.Next(replies[0].Payload)
	replies = srv.Handle(client, replies[0].FromPort, next)
	p, err := Parse(replies[0].Payload)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := p.(*ErrorPkt)
	if !ok || e.Msg != "bad bytecode digest" {
		t.Errorf("reply = %#v, want load error", p)
	}
	// The client should surface the error.
	if put.Next(replies[0].Payload) != nil {
		t.Error("client kept sending after error")
	}
	if put.Err() == nil {
		t.Error("client error not recorded")
	}
}

func TestServerDuplicateDataReAcked(t *testing.T) {
	received := 0
	srv := NewServer(func(_ string, d []byte) error { received = len(d); return nil })
	put := NewPut("dup.swo", bytes.Repeat([]byte{1}, 600))
	replies := srv.Handle(client, Port, put.Start())
	tid := replies[0].FromPort
	block1 := put.Next(replies[0].Payload)
	r1 := srv.Handle(client, tid, block1)
	// Duplicate block 1 (e.g. a retransmission): server re-acks without
	// double-appending.
	r1dup := srv.Handle(client, tid, block1)
	if len(r1dup) != 1 {
		t.Fatal("no duplicate ack")
	}
	block2 := put.Next(r1[0].Payload)
	r2 := srv.Handle(client, tid, block2)
	put.Next(r2[0].Payload)
	if !put.Done() {
		t.Fatal("transfer incomplete")
	}
	if received != 600 {
		t.Errorf("server got %d bytes, want 600 (duplicate must not append)", received)
	}
}

func TestPutStaleAckIgnored(t *testing.T) {
	put := NewPut("s.swo", make([]byte, 1000))
	put.Start()
	first := put.Next(Marshal(&Ack{Block: 0}))
	if first == nil {
		t.Fatal("no first block")
	}
	if put.Next(Marshal(&Ack{Block: 5})) != nil {
		t.Error("future ack should be ignored")
	}
	if put.Next(Marshal(&Ack{Block: 0})) != nil {
		t.Error("duplicate WRQ ack should be ignored")
	}
}
