// Package tftp implements the subset of TFTP (RFC 1350) used by the Active
// Bridge's network switchlet loader: a server that "only services write
// requests in binary format" (paper §5.2), plus the matching client. Any
// completed file is handed to a callback; the bridge treats it as a
// switchlet object file and attempts to load it.
package tftp

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/switchware/activebridge/internal/ipv4"
)

// Opcodes.
const (
	OpRRQ   = 1
	OpWRQ   = 2
	OpDATA  = 3
	OpACK   = 4
	OpERROR = 5
)

// BlockSize is the fixed TFTP data block size.
const BlockSize = 512

// Port is the well-known TFTP service port.
const Port = 69

// Error codes (RFC 1350 §5).
const (
	ErrCodeNotDefined   = 0
	ErrCodeAccessDenied = 2
	ErrCodeIllegalOp    = 4
	ErrCodeUnknownTID   = 5
)

// Errors.
var (
	ErrTruncated = errors.New("tftp: truncated packet")
	ErrMalformed = errors.New("tftp: malformed packet")
	// ErrTimeout is the terminal failure after a transfer's retry budget
	// is exhausted (see Put.Timeout).
	ErrTimeout = errors.New("tftp: retry budget exhausted")
)

// DefaultMaxRetries is the per-packet retransmission budget: how many
// times the client re-sends one outstanding datagram before declaring the
// transfer dead. With exponential backoff from 1 s capped at 8 s this
// gives roughly a minute of persistence, enough to ride out the paper's
// worst extended-LAN reconvergence (Max Age + twice Forward Delay = 50 s).
const DefaultMaxRetries = 8

// Packet is one of WRQ, RRQ, Data, Ack, or ErrorPkt.
type Packet interface{ marshal() []byte }

// Request is an RRQ or WRQ.
type Request struct {
	Write    bool
	Filename string
	Mode     string
}

// Data is a DATA block. Block numbers start at 1.
type Data struct {
	Block   uint16
	Payload []byte
}

// Ack acknowledges a block; WRQ is acknowledged with block 0.
type Ack struct{ Block uint16 }

// ErrorPkt is an ERROR packet; it terminates a transfer.
type ErrorPkt struct {
	Code uint16
	Msg  string
}

func (r *Request) marshal() []byte {
	op := uint16(OpRRQ)
	if r.Write {
		op = OpWRQ
	}
	b := make([]byte, 0, 4+len(r.Filename)+len(r.Mode)+2)
	b = binary.BigEndian.AppendUint16(b, op)
	b = append(b, r.Filename...)
	b = append(b, 0)
	b = append(b, r.Mode...)
	b = append(b, 0)
	return b
}

func (d *Data) marshal() []byte {
	b := make([]byte, 4+len(d.Payload))
	binary.BigEndian.PutUint16(b[0:2], OpDATA)
	binary.BigEndian.PutUint16(b[2:4], d.Block)
	copy(b[4:], d.Payload)
	return b
}

func (a *Ack) marshal() []byte {
	b := make([]byte, 4)
	binary.BigEndian.PutUint16(b[0:2], OpACK)
	binary.BigEndian.PutUint16(b[2:4], a.Block)
	return b
}

func (e *ErrorPkt) marshal() []byte {
	b := make([]byte, 0, 5+len(e.Msg))
	b = binary.BigEndian.AppendUint16(b, OpERROR)
	b = binary.BigEndian.AppendUint16(b, e.Code)
	b = append(b, e.Msg...)
	b = append(b, 0)
	return b
}

// Marshal encodes any packet type.
func Marshal(p Packet) []byte { return p.marshal() }

// Parse decodes a TFTP packet.
func Parse(b []byte) (Packet, error) {
	if len(b) < 4 {
		return nil, ErrTruncated
	}
	op := binary.BigEndian.Uint16(b[0:2])
	switch op {
	case OpRRQ, OpWRQ:
		rest := b[2:]
		name, rest, ok := cstring(rest)
		if !ok {
			return nil, ErrMalformed
		}
		mode, _, ok := cstring(rest)
		if !ok {
			return nil, ErrMalformed
		}
		return &Request{Write: op == OpWRQ, Filename: name, Mode: mode}, nil
	case OpDATA:
		if len(b) > 4+BlockSize {
			return nil, ErrMalformed
		}
		return &Data{Block: binary.BigEndian.Uint16(b[2:4]), Payload: b[4:]}, nil
	case OpACK:
		if len(b) != 4 {
			return nil, ErrMalformed
		}
		return &Ack{Block: binary.BigEndian.Uint16(b[2:4])}, nil
	case OpERROR:
		msg, _, ok := cstring(b[4:])
		if !ok {
			return nil, ErrMalformed
		}
		return &ErrorPkt{Code: binary.BigEndian.Uint16(b[2:4]), Msg: msg}, nil
	}
	return nil, ErrMalformed
}

func cstring(b []byte) (string, []byte, bool) {
	for i, c := range b {
		if c == 0 {
			return string(b[:i]), b[i+1:], true
		}
	}
	return "", nil, false
}

// Endpoint identifies a UDP peer.
type Endpoint struct {
	Addr ipv4.Addr
	Port uint16
}

func (e Endpoint) String() string { return fmt.Sprintf("%v:%d", e.Addr, e.Port) }

// Reply is a datagram the server wants transmitted.
type Reply struct {
	To       Endpoint
	FromPort uint16
	Payload  []byte
}

// Server is a write-only binary-mode TFTP server. It is transport-agnostic:
// feed datagrams to Handle and transmit the returned replies. A completed
// transfer invokes OnFile.
type Server struct {
	// OnFile receives each completed upload. If it returns an error the
	// final ACK is replaced by an ERROR packet carrying the message (the
	// bridge uses this to report switchlet load failures to the sender).
	OnFile func(name string, data []byte) error

	nextTID  uint16
	sessions map[Endpoint]*serverSession

	// Stats.
	Transfers uint64
	Rejected  uint64
}

type serverSession struct {
	tid      uint16
	filename string
	data     []byte
	expect   uint16 // next block number expected
	done     bool
}

// NewServer creates a server delivering completed files to onFile.
func NewServer(onFile func(string, []byte) error) *Server {
	return &Server{OnFile: onFile, nextTID: 3000, sessions: make(map[Endpoint]*serverSession)}
}

// Handle processes one received datagram addressed to the server (either to
// the well-known port or to a transfer TID) and returns any replies.
func (s *Server) Handle(from Endpoint, toPort uint16, payload []byte) []Reply {
	pkt, err := Parse(payload)
	if err != nil {
		return nil // RFC: silently discard unparseable noise
	}
	switch p := pkt.(type) {
	case *Request:
		return s.handleRequest(from, p)
	case *Data:
		return s.handleData(from, toPort, p)
	case *ErrorPkt:
		delete(s.sessions, from)
		return nil
	default:
		return []Reply{errorReply(from, toPort, ErrCodeIllegalOp, "unexpected packet")}
	}
}

func (s *Server) handleRequest(from Endpoint, r *Request) []Reply {
	if !r.Write || r.Mode != "octet" {
		// Paper: "This server only services write requests in binary
		// format."
		s.Rejected++
		return []Reply{errorReply(from, Port, ErrCodeAccessDenied,
			"only binary-mode write requests are served")}
	}
	s.nextTID++
	sess := &serverSession{tid: s.nextTID, filename: r.Filename, expect: 1}
	s.sessions[from] = sess
	return []Reply{{To: from, FromPort: sess.tid, Payload: Marshal(&Ack{Block: 0})}}
}

func (s *Server) handleData(from Endpoint, toPort uint16, d *Data) []Reply {
	sess := s.sessions[from]
	if sess == nil || sess.tid != toPort {
		return []Reply{errorReply(from, toPort, ErrCodeUnknownTID, "unknown transfer")}
	}
	if sess.done {
		return nil
	}
	switch {
	case d.Block == sess.expect:
		sess.data = append(sess.data, d.Payload...)
		sess.expect++
	case d.Block < sess.expect:
		// Duplicate: re-ack, don't re-append.
	default:
		return []Reply{errorReply(from, toPort, ErrCodeIllegalOp, "block out of order")}
	}
	if len(d.Payload) < BlockSize && d.Block == sess.expect-1 {
		sess.done = true
		delete(s.sessions, from)
		s.Transfers++
		if s.OnFile != nil {
			if err := s.OnFile(sess.filename, sess.data); err != nil {
				return []Reply{errorReply(from, toPort, ErrCodeNotDefined, err.Error())}
			}
		}
	}
	return []Reply{{To: from, FromPort: sess.tid, Payload: Marshal(&Ack{Block: d.Block})}}
}

func errorReply(to Endpoint, fromPort uint16, code uint16, msg string) Reply {
	return Reply{To: to, FromPort: fromPort, Payload: Marshal(&ErrorPkt{Code: code, Msg: msg})}
}

// Put is a client-side write transfer state machine. Drive it by sending
// Start's packet to port 69, then feeding each reply to Next and sending
// the returned packet (if any) to the server's TID.
//
// DATA block k (1-based) carries data[(k-1)*512 : min(k*512, len)]. A file
// whose length is an exact multiple of 512 (including the empty file) is
// terminated by a zero-length final block, per RFC 1350.
type Put struct {
	Filename string
	// MaxRetries bounds retransmissions of a single outstanding datagram
	// (default DefaultMaxRetries; set before driving the transfer).
	MaxRetries int
	// Retransmits counts every retransmission over the whole transfer.
	Retransmits uint64

	data     []byte
	nblocks  int // total DATA blocks, including the short/empty terminator
	sent     int // highest DATA block transmitted (0 = only WRQ so far)
	last     []byte
	retries  int // retransmissions of the current outstanding datagram
	complete bool
	err      error
}

// NewPut creates a write transfer for the given file contents.
func NewPut(filename string, data []byte) *Put {
	return &Put{
		Filename:   filename,
		MaxRetries: DefaultMaxRetries,
		data:       data,
		nblocks:    len(data)/BlockSize + 1,
	}
}

// Start returns the initial WRQ payload.
func (p *Put) Start() []byte {
	p.last = Marshal(&Request{Write: true, Filename: p.Filename, Mode: "octet"})
	return p.last
}

// Next consumes a server reply and returns the next datagram to send, or nil
// when the transfer is complete or failed (check Done/Err) — or when the
// reply was a stale/duplicate ack, in which case the outstanding datagram
// stays outstanding and the caller's retransmission timer must keep
// running.
func (p *Put) Next(reply []byte) []byte {
	if p.complete || p.err != nil {
		return nil
	}
	pkt, err := Parse(reply)
	if err != nil {
		p.err = err
		return nil
	}
	switch q := pkt.(type) {
	case *Ack:
		// The ack of block k (or of the WRQ, k=0) releases block k+1.
		if int(q.Block) != p.sent {
			return nil // stale or duplicate ack; ignore
		}
		if p.sent == p.nblocks {
			p.complete = true
			p.last = nil
			return nil
		}
		p.sent++
		p.retries = 0 // progress: the new datagram gets a fresh budget
		lo := (p.sent - 1) * BlockSize
		hi := lo + BlockSize
		if hi > len(p.data) {
			hi = len(p.data)
		}
		p.last = Marshal(&Data{Block: uint16(p.sent), Payload: p.data[lo:hi]})
		return p.last
	case *ErrorPkt:
		p.err = fmt.Errorf("tftp: server error %d: %s", q.Code, q.Msg)
		return nil
	default:
		p.err = ErrMalformed
		return nil
	}
}

// Timeout is the retransmission decision point, called when the caller's
// timer expires with no acceptable ack. It returns the outstanding
// datagram to re-send, or (nil, false) when the transfer is already over
// or the retry budget is exhausted — in the latter case Err() reports
// ErrTimeout and the transfer is terminally failed.
func (p *Put) Timeout() (resend []byte, ok bool) {
	if p.complete || p.err != nil || p.last == nil {
		return nil, false
	}
	if p.retries >= p.MaxRetries {
		p.err = fmt.Errorf("%w (%s, block %d after %d attempts)",
			ErrTimeout, p.Filename, p.sent, p.retries)
		p.last = nil
		return nil, false
	}
	p.retries++
	p.Retransmits++
	return p.last, true
}

// Done reports whether the transfer completed successfully.
func (p *Put) Done() bool { return p.complete }

// Err returns the transfer error, if any.
func (p *Put) Err() error { return p.err }
