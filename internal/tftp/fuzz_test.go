package tftp

import (
	"testing"

	"github.com/switchware/activebridge/internal/ipv4"
)

// FuzzParse hardens the wire-format decoder: arbitrary bytes must either
// parse into a packet that re-marshals, or error — never panic.
func FuzzParse(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{0, 2, 'f', 0, 'o', 'c', 't', 'e', 't', 0})      // WRQ
	f.Add([]byte{0, 1, 'f', 0, 'n', 'e', 't', 'a', 's', 'c', 0}) // RRQ
	f.Add([]byte{0, 3, 0, 1, 0xde, 0xad})                        // DATA
	f.Add([]byte{0, 4, 0, 1})                                    // ACK
	f.Add([]byte{0, 5, 0, 2, 'n', 'o', 0})                       // ERROR
	f.Add([]byte{0, 2, 'f', 'i', 'l', 'e'})                      // unterminated
	f.Add([]byte{0, 9, 1, 2, 3})                                 // unknown opcode
	f.Fuzz(func(t *testing.T, b []byte) {
		p, err := Parse(b)
		if err != nil {
			return
		}
		enc := Marshal(p)
		if len(enc) < 2 {
			t.Fatalf("parsed packet marshals to %d bytes", len(enc))
		}
		if _, err := Parse(enc); err != nil {
			t.Fatalf("re-marshalled packet does not parse: %v", err)
		}
	})
}

// FuzzServerHandle drives the write-only server with arbitrary datagrams:
// whatever arrives, every reply must be a well-formed TFTP packet and the
// server must never panic, even across repeated deliveries that exercise
// session state.
func FuzzServerHandle(f *testing.F) {
	f.Add(uint16(69), []byte{0, 2, 'f', 0, 'o', 'c', 't', 'e', 't', 0})
	f.Add(uint16(69), []byte{0, 2, 'f', 0, 'n', 'e', 't', 'a', 's', 'c', 'i', 'i', 0})
	f.Add(uint16(69), []byte{0, 1, 'f', 0, 'o', 'c', 't', 'e', 't', 0})
	f.Add(uint16(7000), []byte{0, 3, 0, 1, 1, 2, 3})
	f.Add(uint16(7000), []byte{0, 4, 0, 1})
	f.Add(uint16(69), []byte{0, 5, 0, 0, 0})
	f.Add(uint16(0), []byte{})
	f.Fuzz(func(t *testing.T, port uint16, payload []byte) {
		srv := NewServer(func(name string, data []byte) error { return nil })
		from := Endpoint{Addr: ipv4.Addr{10, 0, 0, 1}, Port: 1234}
		for i := 0; i < 2; i++ { // twice: the second delivery hits session state
			for _, rep := range srv.Handle(from, port, payload) {
				if _, err := Parse(rep.Payload); err != nil {
					t.Fatalf("server emitted unparseable reply: %v", err)
				}
			}
		}
	})
}
