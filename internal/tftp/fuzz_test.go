package tftp

import (
	"bytes"
	"testing"

	"github.com/switchware/activebridge/internal/ipv4"
)

// FuzzParse hardens the wire-format decoder: arbitrary bytes must either
// parse into a packet that re-marshals, or error — never panic.
func FuzzParse(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{0, 2, 'f', 0, 'o', 'c', 't', 'e', 't', 0})      // WRQ
	f.Add([]byte{0, 1, 'f', 0, 'n', 'e', 't', 'a', 's', 'c', 0}) // RRQ
	f.Add([]byte{0, 3, 0, 1, 0xde, 0xad})                        // DATA
	f.Add([]byte{0, 4, 0, 1})                                    // ACK
	f.Add([]byte{0, 5, 0, 2, 'n', 'o', 0})                       // ERROR
	f.Add([]byte{0, 2, 'f', 'i', 'l', 'e'})                      // unterminated
	f.Add([]byte{0, 9, 1, 2, 3})                                 // unknown opcode
	f.Fuzz(func(t *testing.T, b []byte) {
		p, err := Parse(b)
		if err != nil {
			return
		}
		enc := Marshal(p)
		if len(enc) < 2 {
			t.Fatalf("parsed packet marshals to %d bytes", len(enc))
		}
		if _, err := Parse(enc); err != nil {
			t.Fatalf("re-marshalled packet does not parse: %v", err)
		}
	})
}

// FuzzPutTimeout drives the client's timeout/retransmit state machine
// with an arbitrary interleaving of replies and timer fires. Whatever the
// order, the Put must never panic, never resend after a terminal state,
// and every resend must be a well-formed packet.
func FuzzPutTimeout(f *testing.F) {
	f.Add([]byte{0x00}, []byte("data"))                   // one timeout
	f.Add([]byte{0x01, 0x00, 0x01, 0x01}, []byte("d"))    // acks and timeouts
	f.Add(bytes.Repeat([]byte{0x00}, 20), []byte("xyz"))  // budget exhaustion
	f.Add([]byte{0x02, 0x03, 0x01, 0x00}, []byte("abcd")) // junk replies
	f.Fuzz(func(t *testing.T, script, content []byte) {
		put := NewPut("f.swo", content)
		put.MaxRetries = 4
		put.Start()
		block := uint16(0)
		for _, op := range script {
			wasTerminal := put.Done() || put.Err() != nil
			switch op % 4 {
			case 0: // timer fire
				resend, ok := put.Timeout()
				if ok && wasTerminal {
					t.Fatal("resend after terminal state")
				}
				if ok {
					if _, err := Parse(resend); err != nil {
						t.Fatalf("resend unparseable: %v", err)
					}
				}
			case 1: // the expected ack
				if put.Next(Marshal(&Ack{Block: block})) != nil {
					block++
				}
			case 2: // a stale/duplicate ack
				put.Next(Marshal(&Ack{Block: block ^ 0x8000}))
			case 3: // garbage from the network
				put.Next([]byte{op, 0, op})
			}
		}
	})
}

// FuzzServerHandle drives the write-only server with arbitrary datagrams:
// whatever arrives, every reply must be a well-formed TFTP packet and the
// server must never panic, even across repeated deliveries that exercise
// session state.
func FuzzServerHandle(f *testing.F) {
	f.Add(uint16(69), []byte{0, 2, 'f', 0, 'o', 'c', 't', 'e', 't', 0})
	f.Add(uint16(69), []byte{0, 2, 'f', 0, 'n', 'e', 't', 'a', 's', 'c', 'i', 'i', 0})
	f.Add(uint16(69), []byte{0, 1, 'f', 0, 'o', 'c', 't', 'e', 't', 0})
	f.Add(uint16(7000), []byte{0, 3, 0, 1, 1, 2, 3})
	f.Add(uint16(7000), []byte{0, 4, 0, 1})
	f.Add(uint16(69), []byte{0, 5, 0, 0, 0})
	f.Add(uint16(0), []byte{})
	f.Fuzz(func(t *testing.T, port uint16, payload []byte) {
		srv := NewServer(func(name string, data []byte) error { return nil })
		from := Endpoint{Addr: ipv4.Addr{10, 0, 0, 1}, Port: 1234}
		for i := 0; i < 2; i++ { // twice: the second delivery hits session state
			for _, rep := range srv.Handle(from, port, payload) {
				if _, err := Parse(rep.Payload); err != nil {
					t.Fatalf("server emitted unparseable reply: %v", err)
				}
			}
		}
	})
}
