package tftp

import (
	"bytes"
	"errors"
	"testing"
)

// TestPutTimeoutResendsOutstanding: with no reply, every Timeout returns
// the exact bytes of the outstanding datagram (first the WRQ, then the
// unacknowledged DATA block) and counts the retransmission.
func TestPutTimeoutResendsOutstanding(t *testing.T) {
	put := NewPut("r.swo", make([]byte, 700))
	wrq := put.Start()

	resend, ok := put.Timeout()
	if !ok {
		t.Fatal("timeout with outstanding WRQ refused to resend")
	}
	if !bytes.Equal(resend, wrq) {
		t.Error("resend differs from the outstanding WRQ")
	}
	if put.Retransmits != 1 {
		t.Errorf("Retransmits = %d, want 1", put.Retransmits)
	}

	// Progress: the WRQ ack releases block 1 and resets the per-packet
	// retry count; the next timeout resends block 1, not the WRQ.
	block1 := put.Next(Marshal(&Ack{Block: 0}))
	if block1 == nil {
		t.Fatal("no first block after WRQ ack")
	}
	resend, ok = put.Timeout()
	if !ok || !bytes.Equal(resend, block1) {
		t.Fatalf("timeout after progress: ok=%v, resend==block1=%v", ok, bytes.Equal(resend, block1))
	}
}

// TestPutRetryBudgetExhaustion: MaxRetries timeouts on one datagram
// without progress exhaust the budget — the transfer fails terminally
// with ErrTimeout and stays failed.
func TestPutRetryBudgetExhaustion(t *testing.T) {
	put := NewPut("x.swo", make([]byte, 100))
	put.MaxRetries = 3
	put.Start()
	for i := 0; i < 3; i++ {
		if _, ok := put.Timeout(); !ok {
			t.Fatalf("timeout %d refused inside the budget", i+1)
		}
	}
	if _, ok := put.Timeout(); ok {
		t.Fatal("timeout past the budget still resends")
	}
	if !errors.Is(put.Err(), ErrTimeout) {
		t.Errorf("Err = %v, want ErrTimeout", put.Err())
	}
	if put.Done() {
		t.Error("exhausted transfer reports Done")
	}
	// Terminal: further timeouts and replies are inert.
	if _, ok := put.Timeout(); ok {
		t.Error("timeout after terminal failure resends")
	}
	if put.Next(Marshal(&Ack{Block: 0})) != nil {
		t.Error("reply after terminal failure produced a datagram")
	}
}

// TestPutRetriesResetOnProgress: the budget is per outstanding datagram,
// not per transfer — a slow lossy link that makes progress never
// exhausts it.
func TestPutRetriesResetOnProgress(t *testing.T) {
	put := NewPut("slow.swo", make([]byte, 1200)) // 3 blocks
	put.MaxRetries = 2
	cur := put.Start()
	block := uint16(0)
	for cur != nil {
		// Lose the datagram once per block, then let the ack through.
		if _, ok := put.Timeout(); !ok {
			t.Fatalf("block %d: budget exhausted despite progress", block)
		}
		cur = put.Next(Marshal(&Ack{Block: block}))
		block++
	}
	if !put.Done() || put.Err() != nil {
		t.Fatalf("transfer failed: done=%v err=%v", put.Done(), put.Err())
	}
	if put.Retransmits != uint64(block) {
		t.Errorf("Retransmits = %d, want %d (one per block)", put.Retransmits, block)
	}
}

// TestPutTimeoutAfterCompletionInert: a completed transfer has nothing
// outstanding; a late timer fire must not resend or corrupt state.
func TestPutTimeoutAfterCompletionInert(t *testing.T) {
	put := NewPut("done.swo", []byte("tiny"))
	put.Start()
	cur := put.Next(Marshal(&Ack{Block: 0}))
	for block := uint16(1); cur != nil; block++ {
		cur = put.Next(Marshal(&Ack{Block: block}))
	}
	if !put.Done() {
		t.Fatal("transfer incomplete")
	}
	if _, ok := put.Timeout(); ok {
		t.Error("timeout after completion resends")
	}
	if put.Err() != nil {
		t.Errorf("late timeout set an error: %v", put.Err())
	}
}

// TestPutStaleAckLeavesTimerPath: a stale or duplicate ack produces no
// datagram AND leaves the outstanding one resendable — the caller's
// timer keeps running, so the state machine must still honor it.
func TestPutStaleAckLeavesTimerPath(t *testing.T) {
	put := NewPut("st.swo", make([]byte, 900))
	put.Start()
	block1 := put.Next(Marshal(&Ack{Block: 0}))
	if put.Next(Marshal(&Ack{Block: 0})) != nil { // duplicate WRQ ack
		t.Fatal("duplicate ack advanced the transfer")
	}
	if put.Next(Marshal(&Ack{Block: 7})) != nil { // future ack
		t.Fatal("future ack advanced the transfer")
	}
	resend, ok := put.Timeout()
	if !ok || !bytes.Equal(resend, block1) {
		t.Error("outstanding block no longer resendable after stale acks")
	}
}
