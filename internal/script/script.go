// Package script implements the topology/measurement scripting language of
// cmd/activebridge: a line-oriented administrative interface to the
// simulated testbed. Keeping it as a library makes the whole command
// surface testable and reusable from examples.
//
// Commands (one per line, '#' comments):
//
//	segment <name>
//	bridge <name> <segment>...
//	host <name> <segment> <ip>
//	netloader <bridge> <ip>
//	load <bridge> <builtin|file.swo>
//	upload <host> <bridge> <builtin|file.swo>
//	run <duration>
//	ping <src> <dst> <size> <count>
//	ttcp <src> <dst> <write> <total>
//	inject-ieee <segment>
//	query <bridge> <func>
//	expect <bridge> <func> <value>     (assertion; errors on mismatch)
//	switchlets <bridge>                (list installed switchlets)
//	upgrade <bridge> <old-module> <builtin>
//	verify <builtin|file.swo>          (static verification, no install)
//	stats                              (one summary line per node)
//	stats <bridge>                     (one bridge, through the metrics view)
//	fail <segment|bridge>              (cut a segment's medium / crash a bridge)
//	heal <segment|bridge>              (restore the medium / restart the bridge)
//	faults                             (fault state of every segment and bridge)
//	trace on|off|dump                  (causal tracing plane; dump renders the
//	                                   merged transcript and any flight dumps)
//	logs
//
// Loading, querying and upgrading all route through the bridge's
// lifecycle Manager: builtins resolve to their manifests, so the
// capability grant is enforced on every load.
package script

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/switchware/activebridge/internal/bridge"
	"github.com/switchware/activebridge/internal/env"
	"github.com/switchware/activebridge/internal/ethernet"
	"github.com/switchware/activebridge/internal/fault"
	"github.com/switchware/activebridge/internal/ipv4"
	"github.com/switchware/activebridge/internal/metrics"
	"github.com/switchware/activebridge/internal/netsim"
	"github.com/switchware/activebridge/internal/stp"
	"github.com/switchware/activebridge/internal/switchlets"
	"github.com/switchware/activebridge/internal/tracing"
	"github.com/switchware/activebridge/internal/vm"
	"github.com/switchware/activebridge/internal/vm/verify"
	"github.com/switchware/activebridge/internal/workload"
)

// World is a script execution environment.
type World struct {
	Sim  *netsim.Sim
	Cost netsim.CostModel
	// Out receives command output (defaults to os.Stdout via Run).
	Out io.Writer

	Segments map[string]*netsim.Segment
	Bridges  map[string]*bridge.Bridge
	Hosts    map[string]*workload.Host

	nextMAC byte
	logsOn  bool
	tracer  *tracing.Tracer
}

// NewWorld creates an empty environment.
func NewWorld(out io.Writer) *World {
	if out == nil {
		out = os.Stdout
	}
	return &World{
		Sim:      netsim.New(),
		Cost:     netsim.DefaultCostModel(),
		Out:      out,
		Segments: map[string]*netsim.Segment{},
		Bridges:  map[string]*bridge.Bridge{},
		Hosts:    map[string]*workload.Host{},
	}
}

// Run executes a whole script; it stops at the first failing line.
func (w *World) Run(script string) error {
	sc := bufio.NewScanner(strings.NewReader(script))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := w.Exec(strings.Fields(line)); err != nil {
			return fmt.Errorf("line %d (%q): %w", lineNo, line, err)
		}
	}
	return nil
}

func (w *World) printf(format string, args ...interface{}) {
	fmt.Fprintf(w.Out, format, args...)
}

// Exec runs a single tokenized command.
func (w *World) Exec(f []string) error {
	if len(f) == 0 {
		return nil
	}
	switch f[0] {
	case "segment":
		if len(f) != 2 {
			return fmt.Errorf("usage: segment <name>")
		}
		if _, dup := w.Segments[f[1]]; dup {
			return fmt.Errorf("segment %s already exists", f[1])
		}
		w.Segments[f[1]] = netsim.NewSegment(w.Sim, f[1])
	case "bridge":
		if len(f) < 3 {
			return fmt.Errorf("usage: bridge <name> <segment>...")
		}
		if _, dup := w.Bridges[f[1]]; dup {
			return fmt.Errorf("bridge %s already exists", f[1])
		}
		w.nextMAC++
		b := bridge.New(w.Sim, f[1], w.nextMAC, len(f)-2, w.Cost)
		b.LogSink = func(at netsim.Time, br, msg string) {
			if w.logsOn {
				w.printf("  [%8.3fs] %s: %s\n", at.Seconds(), br, msg)
			}
		}
		for i, segName := range f[2:] {
			seg, ok := w.Segments[segName]
			if !ok {
				return fmt.Errorf("unknown segment %s", segName)
			}
			seg.Attach(b.Port(i))
		}
		w.Bridges[f[1]] = b
	case "host":
		if len(f) != 4 {
			return fmt.Errorf("usage: host <name> <segment> <ip>")
		}
		if _, dup := w.Hosts[f[1]]; dup {
			return fmt.Errorf("host %s already exists", f[1])
		}
		seg, ok := w.Segments[f[2]]
		if !ok {
			return fmt.Errorf("unknown segment %s", f[2])
		}
		ip, err := ipv4.ParseAddr(f[3])
		if err != nil {
			return err
		}
		w.nextMAC++
		mac := ethernet.MAC{0x02, 0x00, 0x00, 0x00, 0x00, w.nextMAC}
		h := workload.NewHost(w.Sim, f[1], mac, ip, w.Cost)
		seg.Attach(h.NIC)
		w.Hosts[f[1]] = h
	case "netloader":
		if len(f) != 3 {
			return fmt.Errorf("usage: netloader <bridge> <ip>")
		}
		b, ok := w.Bridges[f[1]]
		if !ok {
			return fmt.Errorf("unknown bridge %s", f[1])
		}
		ip, err := ipv4.ParseAddr(f[2])
		if err != nil {
			return err
		}
		b.EnableNetLoader(ip)
	case "load":
		if len(f) != 3 {
			return fmt.Errorf("usage: load <bridge> <builtin|file.swo>")
		}
		b, ok := w.Bridges[f[1]]
		if !ok {
			return fmt.Errorf("unknown bridge %s", f[1])
		}
		return w.loadSwitchlet(b, f[2])
	case "upload":
		if len(f) != 4 {
			return fmt.Errorf("usage: upload <host> <bridge> <builtin|file.swo>")
		}
		h, ok := w.Hosts[f[1]]
		if !ok {
			return fmt.Errorf("unknown host %s", f[1])
		}
		b, ok := w.Bridges[f[2]]
		if !ok {
			return fmt.Errorf("unknown bridge %s", f[2])
		}
		if (b.NetLoaderAddr() == ipv4.Addr{}) {
			return fmt.Errorf("bridge %s has no netloader", f[2])
		}
		data, name, err := w.switchletBytes(b, f[3])
		if err != nil {
			return err
		}
		up := workload.NewUploader(h, b.NetLoaderAddr(), name, data)
		w.Sim.Schedule(w.Sim.Now()+1, up.Start)
		w.Sim.Run(w.Sim.Now() + netsim.Time(30*netsim.Second))
		w.printf("upload %s -> %s: done=%v err=%v in %v\n", f[1], f[2], up.Done(), up.Err(), up.Elapsed())
		if up.Err() != nil {
			return up.Err()
		}
	case "run":
		if len(f) != 2 {
			return fmt.Errorf("usage: run <duration>")
		}
		d, err := time.ParseDuration(f[1])
		if err != nil {
			return err
		}
		w.Sim.Run(w.Sim.Now().Add(d))
		w.printf("t = %.3fs\n", w.Sim.Now().Seconds())
	case "ping":
		if len(f) != 5 {
			return fmt.Errorf("usage: ping <src> <dst> <size> <count>")
		}
		src, dst, err := w.twoHosts(f[1], f[2])
		if err != nil {
			return err
		}
		size, err := strconv.Atoi(f[3])
		if err != nil {
			return err
		}
		count, err := strconv.Atoi(f[4])
		if err != nil {
			return err
		}
		p := workload.NewPinger(src, dst.IP, size, count)
		p.Run(w.Sim.Now() + netsim.Time(netsim.Duration(count+5)*netsim.Second))
		w.printf("ping %s -> %s size=%d: %d/%d replies, mean RTT %.3f ms\n",
			f[1], f[2], size, p.Completed(), count, float64(p.MeanRTT())/1e6)
	case "ttcp":
		if len(f) != 5 {
			return fmt.Errorf("usage: ttcp <src> <dst> <write> <total>")
		}
		src, dst, err := w.twoHosts(f[1], f[2])
		if err != nil {
			return err
		}
		write, err := strconv.Atoi(f[3])
		if err != nil {
			return err
		}
		total, err := strconv.ParseInt(f[4], 10, 64)
		if err != nil {
			return err
		}
		tr := workload.NewTtcp(src, dst, write, total)
		tr.Run(w.Sim.Now() + netsim.Time(600*netsim.Second))
		w.printf("ttcp %s -> %s write=%d total=%d: %.1f Mb/s, %.0f frames/s, done=%v\n",
			f[1], f[2], write, total, tr.ThroughputMbps(), tr.FramesPerSecond(), tr.Done())
	case "inject-ieee":
		if len(f) != 2 {
			return fmt.Errorf("usage: inject-ieee <segment>")
		}
		seg, ok := w.Segments[f[1]]
		if !ok {
			return fmt.Errorf("unknown segment %s", f[1])
		}
		nic := netsim.NewNIC(w.Sim, "injector", ethernet.MAC{2, 0, 0, 0, 0xff, 0xfe})
		seg.Attach(nic)
		v := stp.Vector{RootID: stp.MakeBridgeID(0x8000, nic.MAC), Bridge: stp.MakeBridgeID(0x8000, nic.MAC)}
		fr := ethernet.Frame{Dst: ethernet.AllBridges, Src: nic.MAC, Type: ethernet.TypeBPDU,
			Payload: stp.EncodeIEEE(v, stp.Config{}.DefaultTimers())}
		raw, err := fr.Marshal()
		if err != nil {
			return err
		}
		w.Sim.Schedule(w.Sim.Now()+1, func() { nic.Send(raw) })
		w.Sim.Run(w.Sim.Now() + netsim.Time(100*netsim.Millisecond))
	case "query":
		if len(f) != 3 {
			return fmt.Errorf("usage: query <bridge> <func>")
		}
		v, err := w.queryFunc(f[1], f[2])
		if err != nil {
			return err
		}
		w.printf("%s %s = %s\n", f[1], f[2], v)
	case "expect":
		if len(f) != 4 {
			return fmt.Errorf("usage: expect <bridge> <func> <value>")
		}
		v, err := w.queryFunc(f[1], f[2])
		if err != nil {
			return err
		}
		if v != f[3] {
			return fmt.Errorf("expect failed: %s %s = %q, want %q", f[1], f[2], v, f[3])
		}
		w.printf("expect %s %s = %s: ok\n", f[1], f[2], f[3])
	case "switchlets":
		if len(f) != 2 {
			return fmt.Errorf("usage: switchlets <bridge>")
		}
		b, ok := w.Bridges[f[1]]
		if !ok {
			return fmt.Errorf("unknown bridge %s", f[1])
		}
		for _, inst := range b.Manager().List() {
			w.printf("%s %s caps=[%s] installed-at=%.3fs\n",
				f[1], inst.Manifest.Ref(),
				strings.Join(inst.Manifest.CapabilityNames(), ","), inst.At.Seconds())
		}
	case "upgrade":
		if len(f) != 4 {
			return fmt.Errorf("usage: upgrade <bridge> <old-module> <builtin>")
		}
		b, ok := w.Bridges[f[1]]
		if !ok {
			return fmt.Errorf("unknown bridge %s", f[1])
		}
		next, err := resolveManifest(f[3])
		if err != nil {
			return err
		}
		u, err := b.Manager().Upgrade(f[2], next, bridge.DefaultUpgradeOptions())
		if err != nil {
			return err
		}
		w.printf("upgrade %s: %s -> %s state=%v captured=%q\n",
			f[1], u.Old().Manifest.Ref(), u.New().Manifest.Ref(), u.State(), u.Captured)
	case "verify":
		if len(f) != 2 {
			return fmt.Errorf("usage: verify <builtin|file.swo>")
		}
		return w.verifySwitchlet(f[1])
	case "stats":
		if len(f) > 2 {
			return fmt.Errorf("usage: stats [bridge]")
		}
		if len(f) == 2 {
			return w.bridgeStats(f[1])
		}
		for name, b := range w.Bridges {
			s := b.Stats
			w.printf("%s: in=%d delivered=%d sent=%d suppressed=%d/%d drops=%d traps=%d vm=%v kernel=%v\n",
				name, s.FramesIn, s.FramesDelivered, s.FramesSent,
				s.InputSuppressed, s.OutputBlocked, s.NoHandlerDrops, s.HandlerTraps,
				s.VMTime, s.KernelTime)
		}
		for name, h := range w.Hosts {
			w.printf("%s: out=%d in=%d echoes-answered=%d\n", name, h.FramesOut, h.FramesIn, h.EchoRequests)
		}
	case "fail", "heal":
		if len(f) != 2 {
			return fmt.Errorf("usage: %s <segment|bridge>", f[0])
		}
		return w.setFault(f[1], f[0] == "fail")
	case "faults":
		if len(f) != 1 {
			return fmt.Errorf("usage: faults")
		}
		w.listFaults()
	case "trace":
		if len(f) != 2 {
			return fmt.Errorf("usage: trace on|off|dump")
		}
		switch f[1] {
		case "on":
			if w.tracer == nil {
				w.tracer = tracing.New(tracing.GetDefaultConfig())
				w.Sim.OnQuiesce(w.tracer.Flush)
			}
			w.Sim.SetTraceEngine(w.tracer.Engine(0))
			w.printf("tracing on\n")
		case "off":
			w.Sim.SetTraceEngine(nil)
			w.printf("tracing off\n")
		case "dump":
			if w.tracer == nil {
				return fmt.Errorf("trace dump: tracing was never on")
			}
			w.tracer.Flush()
			w.tracer.RenderTranscript(w.Out)
			w.tracer.RenderDumps(w.Out)
		default:
			return fmt.Errorf("usage: trace on|off|dump")
		}
	case "logs":
		w.logsOn = true
	default:
		return fmt.Errorf("unknown command %q", f[0])
	}
	return nil
}

// setFault cuts or restores one named element: a segment's shared medium
// (fail = every frame on it dies, as if the cable were pulled) or a whole
// bridge (fail = crash: queued work dropped, learning tables lost; heal =
// cold restart through the Manager's snapshot). Managers of bridges on a
// cut segment are notified so a validating upgrade rolls back rather than
// commits across the fault.
func (w *World) setFault(name string, down bool) error {
	if seg, ok := w.Segments[name]; ok {
		if seg.Down() == down {
			w.printf("segment %s already %s\n", name, downWord(down))
			return nil
		}
		seg.SetDown(down)
		fault.NoteFlap()
		if down {
			for _, bn := range w.sortedBridgeNames() {
				b := w.Bridges[bn]
				for p := 0; p < b.NumPorts(); p++ {
					if b.Port(p).Segment() == seg {
						b.Manager().NoteFault(fmt.Sprintf("segment %s down", name))
						break
					}
				}
			}
		}
		w.printf("segment %s %s\n", name, downWord(down))
		return nil
	}
	if b, ok := w.Bridges[name]; ok {
		if down {
			if b.Crashed() {
				w.printf("bridge %s already crashed\n", name)
				return nil
			}
			b.Crash()
			fault.NoteCrash()
			w.printf("bridge %s crashed\n", name)
			return nil
		}
		if !b.Crashed() {
			w.printf("bridge %s already running\n", name)
			return nil
		}
		if err := b.Restart(); err != nil {
			return fmt.Errorf("restart %s: %w", name, err)
		}
		fault.NoteRestart()
		w.printf("bridge %s restarted\n", name)
		return nil
	}
	return fmt.Errorf("unknown segment or bridge %s", name)
}

func downWord(down bool) string {
	if down {
		return "down"
	}
	return "up"
}

// listFaults prints the fault state of every element, sorted by name so
// scripts can assert on the output.
func (w *World) listFaults() {
	names := make([]string, 0, len(w.Segments))
	for n := range w.Segments {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		seg := w.Segments[n]
		w.printf("segment %s: %s dropped=%d corrupted=%d duplicated=%d\n",
			n, downWord(seg.Down()), seg.FaultDrops, seg.FaultCorrupts, seg.FaultDups)
	}
	for _, n := range w.sortedBridgeNames() {
		b := w.Bridges[n]
		state := "running"
		if b.Crashed() {
			state = "crashed"
		}
		w.printf("bridge %s: %s crashes=%d restarts=%d txq-drops=%d\n",
			n, state, b.Stats.Crashes, b.Stats.Restarts, b.TxQueueDrops())
	}
}

func (w *World) sortedBridgeNames() []string {
	names := make([]string, 0, len(w.Bridges))
	for n := range w.Bridges {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// bridgeStats prints one bridge's live counters through the metrics
// view: the same instruments a scrape endpoint would serve (frames,
// drops, VM/kernel time, lifecycle counts, installed switchlet
// versions), published on the spot and rendered one series per line.
func (w *World) bridgeStats(name string) error {
	b, ok := w.Bridges[name]
	if !ok {
		return fmt.Errorf("unknown bridge %s", name)
	}
	reg := metrics.NewRegistry("script")
	b.Instrument(reg, metrics.Labels{{Name: "bridge", Value: name}})
	// The console is between commands: the simulation is quiescent, so
	// an explicit publish is licensed.
	reg.Publish()
	snap := reg.Snapshot()
	for _, p := range snap.Series {
		w.printf("%s%s %s\n", p.Name, p.Labels, metrics.FormatValue(p.Value))
	}
	return nil
}

func (w *World) queryFunc(bridgeName, funcName string) (string, error) {
	b, ok := w.Bridges[bridgeName]
	if !ok {
		return "", fmt.Errorf("unknown bridge %s", bridgeName)
	}
	v, err := b.Manager().Query(funcName, "")
	if err != nil {
		return "", fmt.Errorf("%s: %w", bridgeName, err)
	}
	return v, nil
}

func (w *World) twoHosts(a, b string) (*workload.Host, *workload.Host, error) {
	src, ok := w.Hosts[a]
	if !ok {
		return nil, nil, fmt.Errorf("unknown host %s", a)
	}
	dst, ok := w.Hosts[b]
	if !ok {
		return nil, nil, fmt.Errorf("unknown host %s", b)
	}
	return src, dst, nil
}

// resolveManifest turns a script switchlet argument — a builtin key or a
// .swo file path — into an installable manifest. File objects are
// trusted with the full capability set, like any operator-supplied code;
// the Manager adopts the module name the object itself carries.
func resolveManifest(what string) (env.Manifest, error) {
	if strings.HasSuffix(what, ".swo") {
		data, err := os.ReadFile(what)
		if err != nil {
			return env.Manifest{}, err
		}
		return env.Manifest{
			Capabilities: env.AllCapabilities(),
			Object:       data,
		}, nil
	}
	m, ok := switchlets.BuiltinManifest(what)
	if !ok {
		return env.Manifest{}, fmt.Errorf("unknown switchlet %q", what)
	}
	return m, nil
}

// verifySwitchlet runs the full static verification a node performs at
// install time — the bytecode proofs plus capability flow against the
// manifest's grant — and prints the verdict without installing anything.
// Builtins compile against a fresh node's module environment, exactly the
// environment any bridge in this world offers.
func (w *World) verifySwitchlet(what string) error {
	m, err := resolveManifest(what)
	if err != nil {
		return err
	}
	var obj *vm.Object
	if len(m.Object) > 0 {
		obj, err = vm.DecodeObject(m.Object)
	} else {
		node := bridge.New(netsim.New(), "verify-env", 1, 2, w.Cost)
		obj, _, err = vm.Compile(m.Name, m.Source, node.Loader.SigEnv())
	}
	if err != nil {
		return fmt.Errorf("verify %s: %w", what, err)
	}
	rep, err := verify.Manifest(obj, m.Name, m.Capabilities)
	if err != nil {
		return fmt.Errorf("verify %s: %w", what, err)
	}
	w.printf("verify %s: ok module=%s chunks=%d max-stack=%d reachable=[%s]\n",
		what, rep.Module, rep.Chunks, rep.MaxDepth, strings.Join(rep.ReachableModules, ","))
	for _, warn := range rep.Warnings() {
		w.printf("  warning: %s\n", warn)
	}
	return nil
}

func (w *World) loadSwitchlet(b *bridge.Bridge, what string) error {
	m, err := resolveManifest(what)
	if err != nil {
		return err
	}
	_, err = b.Manager().Install(m)
	return err
}

func (w *World) switchletBytes(b *bridge.Bridge, what string) ([]byte, string, error) {
	m, err := resolveManifest(what)
	if err != nil {
		return nil, "", err
	}
	if len(m.Object) > 0 {
		return m.Object, what, nil
	}
	enc, err := b.Manager().Compile(m)
	if err != nil {
		return nil, "", err
	}
	return enc, strings.ToLower(m.Name) + ".swo", nil
}
