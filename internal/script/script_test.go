package script

import (
	"strings"
	"testing"
)

func run(t *testing.T, src string) (string, error) {
	t.Helper()
	var out strings.Builder
	w := NewWorld(&out)
	err := w.Run(src)
	return out.String(), err
}

func mustRun(t *testing.T, src string) string {
	t.Helper()
	out, err := run(t, src)
	if err != nil {
		t.Fatalf("script failed: %v\noutput:\n%s", err, out)
	}
	return out
}

func TestBasicTopologyAndPing(t *testing.T) {
	out := mustRun(t, `
segment lan1
segment lan2
bridge br0 lan1 lan2
host h1 lan1 10.0.0.1
host h2 lan2 10.0.0.2
load br0 learning
ping h1 h2 64 5
`)
	if !strings.Contains(out, "5/5 replies") {
		t.Errorf("ping incomplete:\n%s", out)
	}
}

func TestARPOnlyResolution(t *testing.T) {
	// No static neighbors anywhere: the hosts must ARP across the bridge.
	out := mustRun(t, `
segment a
segment b
bridge br a b
host x a 192.168.1.1
host y b 192.168.1.2
load br learning
ping x y 128 3
`)
	if !strings.Contains(out, "3/3 replies") {
		t.Errorf("ARP-mediated ping failed:\n%s", out)
	}
}

func TestTtcpCommand(t *testing.T) {
	out := mustRun(t, `
segment lan
host a lan 10.0.0.1
host b lan 10.0.0.2
ttcp a b 8192 1048576
`)
	if !strings.Contains(out, "done=true") {
		t.Errorf("ttcp incomplete:\n%s", out)
	}
}

func TestUploadOverNetwork(t *testing.T) {
	out := mustRun(t, `
segment lan1
segment lan2
bridge br0 lan1 lan2
netloader br0 10.0.0.100
host h1 lan1 10.0.0.1
host h2 lan2 10.0.0.2
upload h1 br0 learning
ping h1 h2 64 2
`)
	if !strings.Contains(out, "done=true err=<nil>") {
		t.Errorf("upload failed:\n%s", out)
	}
	if !strings.Contains(out, "2/2 replies") {
		t.Errorf("traffic does not flow after network load:\n%s", out)
	}
}

func TestTransitionViaScript(t *testing.T) {
	out := mustRun(t, `
segment s0
segment s1
segment s2
bridge b1 s0 s1
bridge b2 s1 s2
load b1 learning
load b1 dec
load b1 spanning
load b1 control
load b2 learning
load b2 dec
load b2 spanning
load b2 control
run 40s
expect b1 dec.running yes
expect b1 ieee.running no
inject-ieee s0
run 2s
expect b1 ieee.running yes
expect b2 ieee.running yes
run 70s
expect b1 control.phase complete
expect b2 control.phase complete
`)
	if !strings.Contains(out, "expect b2 control.phase = complete: ok") {
		t.Errorf("transition script:\n%s", out)
	}
}

func TestQueryAndStats(t *testing.T) {
	out := mustRun(t, `
segment lan
bridge br lan
load br learning
query br learning.size
stats
`)
	if !strings.Contains(out, "learning.size = ") {
		t.Errorf("query output missing:\n%s", out)
	}
	if !strings.Contains(out, "br: in=") {
		t.Errorf("stats output missing:\n%s", out)
	}
}

func TestBridgeStatsThroughMetricsView(t *testing.T) {
	out := mustRun(t, `
segment lan1
segment lan2
bridge br0 lan1 lan2
host h1 lan1 10.0.0.1
host h2 lan2 10.0.0.2
load br0 learning
ping h1 h2 64 3
stats br0
`)
	// The per-bridge view serves the same instruments a scrape would:
	// frame counters, drops, VM/kernel time, lifecycle counts and the
	// installed switchlet versions.
	for _, frag := range []string{
		`ab_bridge_frames_in_total{bridge="br0"}`,
		`ab_bridge_no_handler_drops_total{bridge="br0"}`,
		`ab_bridge_vm_time_ns_total{bridge="br0"}`,
		`ab_bridge_kernel_time_ns_total{bridge="br0"}`,
		`ab_bridge_switchlet_installs_total{bridge="br0"} 1`,
		`ab_bridge_switchlet_info{bridge="br0",module="Learning",version="`,
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("stats br0 output missing %q:\n%s", frag, out)
		}
	}
	// Frames flowed, so the counter must be nonzero.
	if strings.Contains(out, `ab_bridge_frames_in_total{bridge="br0"} 0`) {
		t.Errorf("frames_in still zero after traffic:\n%s", out)
	}
	if _, err := run(t, "stats nosuch"); err == nil || !strings.Contains(err.Error(), "unknown bridge") {
		t.Errorf("stats nosuch: err = %v", err)
	}
}

func TestScriptErrors(t *testing.T) {
	cases := []struct{ src, frag string }{
		{"segment", "usage"},
		{"segment a\nsegment a", "already exists"},
		{"bridge b nosuch", "unknown segment"},
		{"host h nosuch 10.0.0.1", "unknown segment"},
		{"segment a\nhost h a notanip", "malformed"},
		{"load nosuch learning", "unknown bridge"},
		{"segment a\nbridge b a\nload b nosuchlet", "unknown switchlet"},
		{"frobnicate", "unknown command"},
		{"run banana", "invalid duration"},
		{"segment a\nbridge b a\nupload h b learning", "unknown host"},
		{"segment a\nhost h a 10.0.0.1\nbridge b a\nupload h b learning", "no netloader"},
		{"segment a\nbridge b a\nquery b nothing.here", "no registered function"},
		{"segment a\nbridge b a\nload b learning\nexpect b learning.size 999", "expect failed"},
		{"ping x y 64 1", "unknown host"},
		{"stats nope", "unknown bridge"},
		{"segment a\nbridge b a\nstats b extra", "usage"},
	}
	for _, c := range cases {
		if _, err := run(t, c.src); err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("script %q: err = %v, want fragment %q", c.src, err, c.frag)
		}
	}
}

func TestFailHealSegment(t *testing.T) {
	out := mustRun(t, `
segment lan1
segment lan2
bridge br0 lan1 lan2
host h1 lan1 10.0.0.1
host h2 lan2 10.0.0.2
load br0 learning
ping h1 h2 64 2
fail lan2
ping h1 h2 64 2
heal lan2
ping h1 h2 64 2
faults
`)
	if !strings.Contains(out, "segment lan2 down") {
		t.Errorf("fail output missing:\n%s", out)
	}
	if !strings.Contains(out, "0/2 replies") {
		t.Errorf("pings crossed a cut segment:\n%s", out)
	}
	if !strings.Contains(out, "segment lan2 up") {
		t.Errorf("heal output missing:\n%s", out)
	}
	// First and last ping exchanges both complete.
	if strings.Count(out, "2/2 replies") != 2 {
		t.Errorf("delivery did not resume after heal:\n%s", out)
	}
	if !strings.Contains(out, "segment lan1: up") || !strings.Contains(out, "segment lan2: up") {
		t.Errorf("faults listing missing segments:\n%s", out)
	}
	if !strings.Contains(out, "bridge br0: running") {
		t.Errorf("faults listing missing bridge:\n%s", out)
	}
}

func TestFailHealBridge(t *testing.T) {
	out := mustRun(t, `
segment lan1
segment lan2
bridge br0 lan1 lan2
host h1 lan1 10.0.0.1
host h2 lan2 10.0.0.2
load br0 learning
ping h1 h2 64 2
fail br0
faults
ping h1 h2 64 2
heal br0
ping h1 h2 64 2
`)
	if !strings.Contains(out, "bridge br0 crashed") {
		t.Errorf("crash output missing:\n%s", out)
	}
	if !strings.Contains(out, "bridge br0: crashed crashes=1 restarts=0") {
		t.Errorf("faults listing missing crash state:\n%s", out)
	}
	if !strings.Contains(out, "0/2 replies") {
		t.Errorf("pings crossed a crashed bridge:\n%s", out)
	}
	if !strings.Contains(out, "bridge br0 restarted") {
		t.Errorf("restart output missing:\n%s", out)
	}
	// The restart reinstalls the snapshot: learning is cold but present,
	// so the final exchange floods, re-learns and completes.
	if strings.Count(out, "2/2 replies") != 2 {
		t.Errorf("delivery did not resume after restart:\n%s", out)
	}
}

func TestFailDuringUpgradeValidationRollsBack(t *testing.T) {
	// A link fault inside the validation window must abort the DEC→IEEE
	// transition: the Manager rolls back to the old protocol instead of
	// committing across a degraded network.
	out := mustRun(t, `
segment lan1
segment lan2
bridge br0 lan1 lan2
load br0 dec
run 35s
upgrade br0 Decspan spanning
run 5s
fail lan2
heal lan2
run 70s
expect br0 dec.running yes
expect br0 ieee.running no
`)
	if !strings.Contains(out, "expect br0 dec.running = yes: ok") {
		t.Errorf("old protocol not restored after fault-triggered rollback:\n%s", out)
	}
}

func TestFaultCommandErrors(t *testing.T) {
	cases := []struct{ src, frag string }{
		{"fail", "usage"},
		{"heal", "usage"},
		{"fail nosuch", "unknown segment or bridge"},
		{"heal nosuch", "unknown segment or bridge"},
		{"segment a\nfaults extra", "usage"},
	}
	for _, c := range cases {
		if _, err := run(t, c.src); err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("script %q: err = %v, want fragment %q", c.src, err, c.frag)
		}
	}
	// Redundant transitions are no-ops, not errors.
	out := mustRun(t, "segment a\nheal a\nsegment b\nbridge br a b\nheal br")
	if !strings.Contains(out, "segment a already up") || !strings.Contains(out, "bridge br already running") {
		t.Errorf("redundant heal not reported:\n%s", out)
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	mustRun(t, `
# a comment

segment lan
# another
`)
}

func TestBuiltinManifestTable(t *testing.T) {
	for _, k := range []string{"dumb", "learning", "spanning", "spanbug", "dec", "control"} {
		m, err := resolveManifest(k)
		if err != nil {
			t.Errorf("missing builtin %s: %v", k, err)
			continue
		}
		if err := m.Validate(); err != nil {
			t.Errorf("builtin %s manifest invalid: %v", k, err)
		}
	}
	if _, err := resolveManifest("nope"); err == nil {
		t.Error("phantom builtin")
	}
}

func TestSwitchletsAndUpgradeCommands(t *testing.T) {
	out := mustRun(t, `
segment lan1
segment lan2
bridge br0 lan1 lan2
load br0 dec
run 35s
switchlets br0
upgrade br0 Decspan spanning
run 70s
expect br0 ieee.running yes
expect br0 dec.running no
`)
	if !strings.Contains(out, "Decspan@1.0.0") {
		t.Errorf("switchlets listing missing manifest ref:\n%s", out)
	}
	if !strings.Contains(out, "state=validating") {
		t.Errorf("upgrade output missing state:\n%s", out)
	}
}

func TestVerifyCommand(t *testing.T) {
	out := mustRun(t, `
verify learning
verify spanning
`)
	if !strings.Contains(out, "verify learning: ok module=Learning") {
		t.Errorf("missing learning verdict:\n%s", out)
	}
	if !strings.Contains(out, "verify spanning: ok module=Spanning") {
		t.Errorf("missing spanning verdict:\n%s", out)
	}
	if strings.Contains(out, "warning:") {
		t.Errorf("builtins must verify without warnings:\n%s", out)
	}
	if _, err := run(t, `verify nosuch`); err == nil {
		t.Error("verify of an unknown switchlet must fail")
	}
}
