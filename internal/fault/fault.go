// Package fault is the deterministic fault-injection plane for the
// simulated extended LAN: seeded frame-level impairments (drop, corrupt,
// duplicate — Bernoulli or bursty Gilbert-Elliott), link down/up flaps,
// partitions, and bridge crash/restart, all scheduled in virtual time
// from a declarative Plan.
//
// Determinism is the design constraint everything here serves. Every
// random decision comes from a per-entity splitmix64 stream derived from
// the plan seed and the entity's name, and each stream is consumed only
// by that entity's own event sequence (a segment's filter runs on the
// segment owner's engine in transmit order; a NIC's filter runs on the
// NIC's engine in delivery order). Both orders are identical under the
// serial and the sharded engine, so a chaos run replays byte-for-byte at
// any shard count: same seed, same faults, same fingerprint. Scheduled
// events (flaps, partitions, crashes) run on the net's control engine,
// which executes alone at a global barrier and may touch any shard.
//
// The plane is strictly opt-in: a net built without a Plan (and without
// fault annotations) takes none of these code paths and reproduces the
// pre-fault goldens exactly.
package fault

import (
	"fmt"
	"sync/atomic"

	"github.com/switchware/activebridge/internal/fault/frand"
	"github.com/switchware/activebridge/internal/netsim"
)

// Rand is the splitmix64 generator shared with the tracing sampler; the
// implementation lives in the dependency-free frand subpackage so layers
// below netsim can use the identical streams.
type Rand = frand.Rand

// NewRand returns a generator seeded with the given state.
func NewRand(seed uint64) *Rand { return frand.New(seed) }

// DeriveSeed folds an entity name into a plan seed so every entity gets
// an independent stream that does not depend on declaration order, shard
// assignment, or which other entities exist.
func DeriveSeed(seed uint64, name string) uint64 { return frand.DeriveSeed(seed, name) }

// Model is a frame-impairment profile. The Bernoulli fields are
// independent per-frame probabilities; at most one fate applies to a
// frame (drop, then corrupt, then duplicate take the shared draw).
//
// Setting GoodToBad > 0 enables a two-state Gilbert-Elliott chain that
// gates the drop probability for burst losses: each frame first advances
// the chain (Good→Bad with probability GoodToBad, Bad→Good with
// BadToGood), and while in the Bad state the drop probability is BadDrop
// instead of Drop. Corrupt and Duplicate are unaffected by the chain.
type Model struct {
	// Drop is the per-frame loss probability (Good state).
	Drop float64
	// Corrupt is the per-frame probability the frame arrives damaged and
	// is discarded by every receiver's FCS check.
	Corrupt float64
	// Duplicate is the per-frame probability of a doubled delivery.
	Duplicate float64

	// GoodToBad enables the burst chain when > 0: the per-frame
	// probability of entering the Bad (bursty-loss) state.
	GoodToBad float64
	// BadToGood is the per-frame probability of leaving the Bad state.
	BadToGood float64
	// BadDrop is the loss probability while in the Bad state.
	BadDrop float64
}

// Zero reports whether the model impairs nothing.
func (m Model) Zero() bool {
	return m.Drop == 0 && m.Corrupt == 0 && m.Duplicate == 0 && m.GoodToBad == 0
}

// DefaultChaosModel is the mild profile abbench's -faults flag applies
// to every segment: 1% loss, 0.2% corruption, 0.2% duplication.
func DefaultChaosModel() Model {
	return Model{Drop: 0.01, Corrupt: 0.002, Duplicate: 0.002}
}

// Stream turns a Model into a deterministic sequence of per-frame
// verdicts. Its Verdict method satisfies netsim.FaultFunc; install it
// with Segment.SetFault or NIC.SetRxFault. A Stream is single-goroutine
// by construction (it lives where its entity's events run).
type Stream struct {
	rng Rand
	m   Model
	bad bool
}

// NewStream creates a verdict stream for the model, seeded for one
// entity (combine Plan.Seed and the entity name with DeriveSeed).
func NewStream(seed uint64, m Model) *Stream {
	return &Stream{rng: frand.Seeded(seed), m: m}
}

// Verdict decides the fate of one frame. It consumes a fixed number of
// draws per frame (one, plus one while the burst chain is enabled), so
// the stream's alignment is a pure function of how many frames its
// entity has seen.
func (s *Stream) Verdict([]byte) netsim.FaultAction {
	drop := s.m.Drop
	if s.m.GoodToBad > 0 {
		p := s.m.GoodToBad
		if s.bad {
			p = s.m.BadToGood
		}
		if s.rng.Float64() < p {
			s.bad = !s.bad
		}
		if s.bad {
			drop = s.m.BadDrop
		}
	}
	r := s.rng.Float64()
	switch {
	case r < drop:
		noteInjected(&totDrops)
		return netsim.FaultDrop
	case r < drop+s.m.Corrupt:
		noteInjected(&totCorrupts)
		return netsim.FaultCorrupt
	case r < drop+s.m.Corrupt+s.m.Duplicate:
		noteInjected(&totDups)
		return netsim.FaultDuplicate
	}
	return netsim.FaultNone
}

// Op is a scheduled fault event's action.
type Op uint8

// The scheduled event kinds.
const (
	// OpLinkDown takes a whole segment down (a cut cable / partition).
	OpLinkDown Op = iota
	// OpLinkUp restores a downed segment.
	OpLinkUp
	// OpPortDown drops one bridge port's carrier.
	OpPortDown
	// OpPortUp restores one bridge port's carrier.
	OpPortUp
	// OpCrash freezes a bridge: ports dead, queued work dropped.
	OpCrash
	// OpRestart cold-restarts a crashed bridge: switchlet manifests
	// reinstalled through the Manager, learning state gone.
	OpRestart
)

var opNames = [...]string{"link-down", "link-up", "port-down", "port-up", "crash", "restart"}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Event is one scheduled fault: an Op applied to a named target at a
// virtual instant (measured from the start of the run).
type Event struct {
	// At is the virtual time offset the event fires at.
	At netsim.Duration
	// Op is the action.
	Op Op
	// Target names the segment (link ops) or bridge (port and crash ops)
	// the event applies to, as declared in the topology.
	Target string
	// Port selects the bridge port for OpPortDown/OpPortUp.
	Port int
}

func (e Event) String() string {
	if e.Op == OpPortDown || e.Op == OpPortUp {
		return fmt.Sprintf("%v %s %s port %d", e.At, e.Op, e.Target, e.Port)
	}
	return fmt.Sprintf("%v %s %s", e.At, e.Op, e.Target)
}

// Plan is a complete seeded fault schedule for one net: frame-impairment
// models per segment and per bridge, plus scheduled events. Attach it
// with topo.Graph.FaultPlan before Build. The zero of everything — no
// models, no events — is a valid plan that injects nothing.
type Plan struct {
	// Seed is the root of every derived stream: two runs of the same net
	// with the same plan are byte-identical; changing the seed reshuffles
	// every impairment decision.
	Seed uint64

	segments    map[string]Model
	bridges     map[string]Model
	allSegments *Model
	events      []Event
}

// NewPlan creates an empty plan with the given seed.
func NewPlan(seed uint64) *Plan { return &Plan{Seed: seed} }

// Segment attaches an impairment model to the named segment's medium.
// It returns the plan for chaining.
func (p *Plan) Segment(name string, m Model) *Plan {
	if p.segments == nil {
		p.segments = map[string]Model{}
	}
	p.segments[name] = m
	return p
}

// AllSegments attaches an impairment model to every segment that has no
// specific model of its own.
func (p *Plan) AllSegments(m Model) *Plan {
	p.allSegments = &m
	return p
}

// Bridge attaches a receive-side impairment model to every port of the
// named bridge (a flaky adapter rather than a flaky wire).
func (p *Plan) Bridge(name string, m Model) *Plan {
	if p.bridges == nil {
		p.bridges = map[string]Model{}
	}
	p.bridges[name] = m
	return p
}

// At schedules a fault event. It returns the plan for chaining.
func (p *Plan) At(at netsim.Duration, op Op, target string) *Plan {
	p.events = append(p.events, Event{At: at, Op: op, Target: target})
	return p
}

// AtPort schedules a per-port fault event (OpPortDown / OpPortUp).
func (p *Plan) AtPort(at netsim.Duration, op Op, bridge string, port int) *Plan {
	p.events = append(p.events, Event{At: at, Op: op, Target: bridge, Port: port})
	return p
}

// SegmentModel resolves the model for a named segment (specific first,
// then the AllSegments default).
func (p *Plan) SegmentModel(name string) (Model, bool) {
	if m, ok := p.segments[name]; ok {
		return m, ok
	}
	if p.allSegments != nil {
		return *p.allSegments, true
	}
	return Model{}, false
}

// BridgeModel resolves the receive-side model for a named bridge.
func (p *Plan) BridgeModel(name string) (Model, bool) {
	m, ok := p.bridges[name]
	return m, ok
}

// Events returns the scheduled events in declaration order (the builder
// schedules each at its own instant; the engine orders same-instant
// events by schedule sequence, so declaration order is the tiebreak).
func (p *Plan) Events() []Event { return p.events }

// SegmentStream derives the named segment's verdict stream.
func (p *Plan) SegmentStream(name string, m Model) *Stream {
	return NewStream(DeriveSeed(p.Seed, "segment/"+name), m)
}

// BridgePortStream derives the verdict stream for one bridge port.
func (p *Plan) BridgePortStream(bridge string, port int, m Model) *Stream {
	return NewStream(DeriveSeed(p.Seed, fmt.Sprintf("bridge/%s/%d", bridge, port)), m)
}

// Profile is a process-wide chaos default: abbench's -faults flag sets
// topo.DefaultFaultProfile to one, and every subsequently built net gets
// the model applied to all its segments under a plan seeded from Seed
// and the net's name.
type Profile struct {
	// Seed is the root seed (the net name is folded in per net).
	Seed uint64
	// Model is applied to every segment.
	Model Model
}

// PlanFor derives the per-net plan a profile implies.
func (pr *Profile) PlanFor(netName string) *Plan {
	p := NewPlan(DeriveSeed(pr.Seed, "net/"+netName))
	p.AllSegments(pr.Model)
	return p
}

// Totals aggregates fault-plane activity across every net built in the
// process — the figures abbench embeds in its bench JSON. Injection
// counters are incremented by every Stream verdict; the event counters
// by the appliers in topo, bridge and script.
type Totals struct {
	// Drops, Corrupts, Dups count injected frame impairments.
	Drops, Corrupts, Dups uint64
	// Flaps counts link/port state transitions (each down or up is one).
	Flaps uint64
	// Crashes and Restarts count bridge lifecycle faults.
	Crashes, Restarts uint64
}

var totDrops, totCorrupts, totDups, totFlaps, totCrashes, totRestarts atomic.Uint64

func noteInjected(c *atomic.Uint64) { c.Add(1) }

// NoteFlap records a link or port state transition in the process totals.
func NoteFlap() { totFlaps.Add(1) }

// NoteCrash records a bridge crash in the process totals.
func NoteCrash() { totCrashes.Add(1) }

// NoteRestart records a bridge restart in the process totals.
func NoteRestart() { totRestarts.Add(1) }

// GrandTotals returns the process-wide fault totals. Scenario runners
// read it after their runs complete; the counters are atomics, so
// concurrent scenario workers aggregate correctly.
func GrandTotals() Totals {
	return Totals{
		Drops:    totDrops.Load(),
		Corrupts: totCorrupts.Load(),
		Dups:     totDups.Load(),
		Flaps:    totFlaps.Load(),
		Crashes:  totCrashes.Load(),
		Restarts: totRestarts.Load(),
	}
}

// ResetTotals zeroes the process-wide totals (test isolation).
func ResetTotals() {
	totDrops.Store(0)
	totCorrupts.Store(0)
	totDups.Store(0)
	totFlaps.Store(0)
	totCrashes.Store(0)
	totRestarts.Store(0)
}
