// Package frand is the dependency-free seeded randomness kernel shared
// by the fault-injection plane and the tracing sampler: a splitmix64
// generator plus the per-entity seed-derivation rule. It lives below
// netsim in the import graph (it imports nothing) so that packages
// netsim itself depends on — like internal/tracing — can draw from the
// exact same deterministic streams as internal/fault.
package frand

// Rand is a splitmix64 generator: 64 bits of state, one multiply-xor
// avalanche per draw, sequential-seed safe — exactly what per-entity
// derived streams need.
type Rand struct{ state uint64 }

// New returns a generator seeded with the given state.
func New(seed uint64) *Rand { return &Rand{state: seed} }

// Seeded returns a by-value generator for embedding in larger structs.
func Seeded(seed uint64) Rand { return Rand{state: seed} }

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns the next draw in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Mix is one stateless splitmix64 avalanche of x: the same finalizer
// Uint64 applies, usable as a cheap hash when no stream is needed.
func Mix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// DeriveSeed folds an entity name into a plan seed so every entity gets
// an independent stream that does not depend on declaration order, shard
// assignment, or which other entities exist.
func DeriveSeed(seed uint64, name string) uint64 {
	// FNV-1a over the name, scrambled once together with the plan seed.
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return New(seed ^ h).Uint64()
}
