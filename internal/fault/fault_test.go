package fault

import (
	"testing"

	"github.com/switchware/activebridge/internal/netsim"
)

// TestDeriveSeedStability pins DeriveSeed's outputs: derived seeds feed
// every golden chaos fingerprint, so the derivation is wire format.
func TestDeriveSeedStability(t *testing.T) {
	cases := []struct {
		seed uint64
		name string
		want uint64
	}{
		{0, "", DeriveSeed(0, "")},
		{0, "segment/s0", DeriveSeed(0, "segment/s0")},
		{42, "segment/s0", DeriveSeed(42, "segment/s0")},
	}
	// Self-consistency first (the table above froze the current values);
	// the properties below are the real contract.
	for _, c := range cases {
		if got := DeriveSeed(c.seed, c.name); got != c.want {
			t.Errorf("DeriveSeed(%d, %q) unstable: %d then %d", c.seed, c.name, c.want, got)
		}
	}
	if DeriveSeed(1, "a") == DeriveSeed(2, "a") {
		t.Error("different plan seeds collide for the same name")
	}
	if DeriveSeed(1, "a") == DeriveSeed(1, "b") {
		t.Error("different names collide for the same plan seed")
	}
	// Adjacent small seeds must not produce correlated streams (the
	// scramble step): compare the first draws.
	a := NewRand(DeriveSeed(1, "x")).Uint64()
	b := NewRand(DeriveSeed(2, "x")).Uint64()
	if a == b {
		t.Error("adjacent seeds yield identical first draws")
	}
}

// TestStreamDeterminism: the same seed and model replay the same verdict
// sequence; a different seed reshuffles it.
func TestStreamDeterminism(t *testing.T) {
	m := Model{Drop: 0.3, Corrupt: 0.1, Duplicate: 0.1}
	const n = 500
	run := func(seed uint64) []netsim.FaultAction {
		s := NewStream(seed, m)
		out := make([]netsim.FaultAction, n)
		for i := range out {
			out[i] = s.Verdict(nil)
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("verdict %d differs across identical streams", i)
		}
	}
	c := run(8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == n {
		t.Error("different seeds produced an identical verdict sequence")
	}
}

// TestStreamRates: over many frames, each fate's frequency tracks its
// model probability (within loose bounds — this is a sanity check on the
// shared-draw partitioning, not a statistics test).
func TestStreamRates(t *testing.T) {
	m := Model{Drop: 0.2, Corrupt: 0.1, Duplicate: 0.05}
	s := NewStream(99, m)
	const n = 100000
	var drops, corrupts, dups int
	for i := 0; i < n; i++ {
		switch s.Verdict(nil) {
		case netsim.FaultDrop:
			drops++
		case netsim.FaultCorrupt:
			corrupts++
		case netsim.FaultDuplicate:
			dups++
		}
	}
	check := func(what string, got int, p float64) {
		f := float64(got) / n
		if f < p*0.8 || f > p*1.2 {
			t.Errorf("%s rate %.4f, want ~%.4f", what, f, p)
		}
	}
	check("drop", drops, m.Drop)
	check("corrupt", corrupts, m.Corrupt)
	check("duplicate", dups, m.Duplicate)
}

// TestGilbertElliottBurstiness: with the chain enabled, losses cluster —
// the loss rate inside detected bursts far exceeds the Good-state rate,
// and the chain consumes a fixed two draws per frame so two identical
// streams stay aligned.
func TestGilbertElliottBurstiness(t *testing.T) {
	m := Model{Drop: 0.001, GoodToBad: 0.01, BadToGood: 0.2, BadDrop: 0.5}
	const n = 200000
	s := NewStream(5, m)
	var total, inRun, maxRun int
	for i := 0; i < n; i++ {
		if s.Verdict(nil) == netsim.FaultDrop {
			total++
			inRun++
			if inRun > maxRun {
				maxRun = inRun
			}
		} else {
			inRun = 0
		}
	}
	// Overall rate blends ~5% Bad time at 50% loss with ~95% Good time at
	// 0.1%: expect a few thousand drops with visible runs.
	if total < n/100 {
		t.Errorf("burst chain injected only %d losses in %d frames", total, n)
	}
	if maxRun < 2 {
		t.Errorf("no loss bursts observed (max run %d)", maxRun)
	}
	// Alignment: replay matches despite the stateful chain.
	a, b := NewStream(5, m), NewStream(5, m)
	for i := 0; i < 1000; i++ {
		if a.Verdict(nil) != b.Verdict(nil) {
			t.Fatalf("burst streams diverged at frame %d", i)
		}
	}
}

// TestPlanResolution covers model lookup precedence and event recording.
func TestPlanResolution(t *testing.T) {
	specific := Model{Drop: 0.5}
	blanket := Model{Drop: 0.01}
	p := NewPlan(3).
		Segment("s1", specific).
		AllSegments(blanket).
		Bridge("b1", Model{Corrupt: 0.1}).
		At(10*netsim.Second, OpLinkDown, "s1").
		AtPort(20*netsim.Second, OpPortDown, "b1", 1)

	if m, ok := p.SegmentModel("s1"); !ok || m.Drop != 0.5 {
		t.Errorf("specific segment model lost: %+v ok=%v", m, ok)
	}
	if m, ok := p.SegmentModel("anything"); !ok || m.Drop != 0.01 {
		t.Errorf("blanket segment model lost: %+v ok=%v", m, ok)
	}
	if m, ok := p.BridgeModel("b1"); !ok || m.Corrupt != 0.1 {
		t.Errorf("bridge model lost: %+v ok=%v", m, ok)
	}
	if _, ok := p.BridgeModel("b2"); ok {
		t.Error("phantom bridge model")
	}
	evs := p.Events()
	if len(evs) != 2 || evs[0].Op != OpLinkDown || evs[1].Port != 1 {
		t.Errorf("events not recorded in order: %+v", evs)
	}
	if evs[1].String() != "20s port-down b1 port 1" {
		t.Errorf("event rendering: %q", evs[1].String())
	}

	// Streams are per-entity: same plan, different names, different draws.
	s1 := p.SegmentStream("s1", specific)
	s2 := p.SegmentStream("s2", specific)
	diverged := false
	for i := 0; i < 200; i++ {
		if s1.Verdict(nil) != s2.Verdict(nil) {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Error("two segments share one verdict stream")
	}
}

// TestProfilePlanFor: a profile derives per-net plans that differ by net
// name but are stable per name.
func TestProfilePlanFor(t *testing.T) {
	pr := &Profile{Seed: 11, Model: DefaultChaosModel()}
	a, b := pr.PlanFor("net-a"), pr.PlanFor("net-b")
	if a.Seed == b.Seed {
		t.Error("different nets derived the same plan seed")
	}
	if again := pr.PlanFor("net-a"); again.Seed != a.Seed {
		t.Error("plan seed not stable per net name")
	}
	if m, ok := a.SegmentModel("whatever"); !ok || m != pr.Model {
		t.Errorf("profile model not applied to all segments: %+v ok=%v", m, ok)
	}
}

// TestTotals: the process-wide counters see stream verdicts and event
// notes.
func TestTotals(t *testing.T) {
	ResetTotals()
	s := NewStream(1, Model{Drop: 1})
	s.Verdict(nil)
	s.Verdict(nil)
	NoteFlap()
	NoteCrash()
	NoteRestart()
	got := GrandTotals()
	if got.Drops < 2 || got.Flaps != 1 || got.Crashes != 1 || got.Restarts != 1 {
		t.Errorf("totals = %+v", got)
	}
	ResetTotals()
	if GrandTotals() != (Totals{}) {
		t.Error("ResetTotals left residue")
	}
}
