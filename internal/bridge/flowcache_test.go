package bridge

import (
	"strings"
	"testing"

	"github.com/switchware/activebridge/internal/env"
	"github.com/switchware/activebridge/internal/ethernet"
	"github.com/switchware/activebridge/internal/netsim"
)

// The demux flow cache memoizes one decision per destination: which
// handler owns the frame. It must never memoize anything a handler
// computes (a learning table lookup ages out underneath a perfectly valid
// cache entry), and every mutation of the handler set — direct, Manager
// lifecycle, or crash — must invalidate it. These tests pin both halves.

// fwdManifest is a Manager-installed data-path owner: a forwarder with a
// full lifecycle so it participates in Upgrade/Rollback and cold restart.
func fwdManifest() env.Manifest {
	return env.Manifest{
		Name:    "Fwd",
		Version: env.Version{Major: 1},
		Capabilities: []env.Capability{
			env.CapNet, env.CapDemux, env.CapFuncs,
		},
		Lifecycle: env.Lifecycle{
			Start: "fwd.start", Stop: "fwd.stop",
			Probe: "fwd.probe", Running: "fwd.running",
		},
		Source: `
let on = ref false
let handle pkt inport = Unixnet.send_pkt_out (1 - inport) pkt
let _ = Func.register "fwd.probe" (fun s -> "state")
let _ = Func.register "fwd.running" (fun s -> if !on then "yes" else "no")
let _ = Func.register "fwd.start" (fun s -> on := true; Bridge.set_handler handle; "ok")
let _ = Func.register "fwd.stop" (fun s -> on := false; "ok")`,
	}
}

// dropManifest is the upgrade candidate: it claims the data path and drops
// everything, and its probe disagrees with Fwd's so validation rolls back.
func dropManifest() env.Manifest {
	m := fwdManifest()
	m.Name = "Drop"
	m.Source = strings.ReplaceAll(m.Source, "fwd.", "drop.")
	m.Source = strings.ReplaceAll(m.Source,
		"let handle pkt inport = Unixnet.send_pkt_out (1 - inport) pkt",
		"let handle pkt inport = ignore pkt; ignore inport")
	m.Source = strings.ReplaceAll(m.Source, `"state"`, `"different"`)
	m.Lifecycle = env.Lifecycle{
		Start: "drop.start", Stop: "drop.stop",
		Probe: "drop.probe", Running: "drop.running",
	}
	return m
}

// burst schedules n unicast test frames from the rig's station 1 to
// station 2 at consecutive ticks and runs the sim past their delivery.
func (r *rig) burst(t *testing.T, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		d := netsim.Duration(i + 1)
		r.sim.Schedule(r.sim.Now().Add(d), func() { r.sendFrom1(t, r.n2.MAC, 64) })
	}
	r.run(50 * netsim.Millisecond)
}

func TestFlowCacheHitsOnRepeatedUnicast(t *testing.T) {
	r := newRig(t)
	r.b.SetNativeHandler("fwd", func(data []byte, inPort int) {
		r.b.SendBytes(1-inPort, data, false)
	})
	r.burst(t, 5)
	if r.rx2 != 5 {
		t.Fatalf("rx2 = %d, want 5", r.rx2)
	}
	if r.b.Stats.FlowCacheMisses == 0 {
		t.Error("no cold miss recorded")
	}
	if r.b.Stats.FlowCacheHits < 4 {
		t.Errorf("FlowCacheHits = %d, want >= 4", r.b.Stats.FlowCacheHits)
	}
}

// TestFlowCacheDemuxRebind pins invalidation on every direct mutation of
// the handler set: set_handler replacement, a destination claim shadowing
// the default handler, releasing that claim, and clearing the data path.
func TestFlowCacheDemuxRebind(t *testing.T) {
	r := newRig(t)
	var defaults, dsts int
	r.b.SetNativeHandler("count-default", func(data []byte, inPort int) { defaults++ })
	r.burst(t, 3)
	if defaults != 3 {
		t.Fatalf("defaults = %d, want 3", defaults)
	}
	// Claim the warm destination: the cached default-handler decision for
	// n2.MAC must not survive the bind.
	if err := r.b.SetDstHandler(r.n2.MAC, FrameHandler{
		Native: func(data []byte, inPort int) { dsts++ }, Name: "count-dst",
	}); err != nil {
		t.Fatal(err)
	}
	r.burst(t, 3)
	if defaults != 3 || dsts != 3 {
		t.Fatalf("after bind: defaults = %d dsts = %d, want 3/3", defaults, dsts)
	}
	// Release the claim: frames fall back to the default handler.
	r.b.ClearDstHandler(r.n2.MAC)
	r.burst(t, 2)
	if defaults != 5 || dsts != 3 {
		t.Fatalf("after unbind: defaults = %d dsts = %d, want 5/3", defaults, dsts)
	}
	// Clear the data path entirely: nothing runs, nothing crashes.
	r.b.ClearHandler()
	r.burst(t, 2)
	if defaults != 5 || dsts != 3 {
		t.Fatalf("after clear: defaults = %d dsts = %d, want 5/3", defaults, dsts)
	}
	if r.b.Stats.FlowCacheHits < 6 {
		t.Errorf("FlowCacheHits = %d: cache was not exercised across rebinds", r.b.Stats.FlowCacheHits)
	}
}

// TestFlowCacheDoesNotPinLearningDecisions proves the cache memoizes only
// the handler binding, never the handler's own forwarding decision: a
// learning bridge's table entry ages out and the very same cached (dst →
// handler) entry must now produce a flood instead of a unicast.
func TestFlowCacheDoesNotPinLearningDecisions(t *testing.T) {
	sim := netsim.New()
	b := New(sim, "br", 1, 3, netsim.DefaultCostModel())
	var nics [3]*netsim.NIC
	var rx [3]int
	for i := 0; i < 3; i++ {
		i := i
		lan := netsim.NewSegment(sim, "lan")
		nics[i] = netsim.NewNIC(sim, "n", ethernet.MAC{2, 0, 0, 0, 0, byte(i + 1)})
		nics[i].Promiscuous = true
		nics[i].SetRecv(func(*netsim.NIC, []byte) { rx[i]++ })
		lan.Attach(nics[i])
		lan.Attach(b.Port(i))
	}
	// Minimal native learning handler with a 1-second age limit.
	const ageLimit = netsim.Second
	type entry struct {
		port int
		seen netsim.Time
	}
	table := map[ethernet.MAC]entry{}
	b.SetNativeHandler("mini-learning", func(data []byte, inPort int) {
		dst, _ := ethernet.PeekDst(data)
		src, _ := ethernet.PeekSrc(data)
		now := sim.Now()
		table[src] = entry{port: inPort, seen: now}
		if e, ok := table[dst]; ok && now.Sub(e.seen) < ageLimit {
			if e.port != inPort {
				b.SendBytes(e.port, data, false)
			}
			return
		}
		for i := 0; i < b.NumPorts(); i++ {
			if i != inPort {
				b.SendBytes(i, data, false)
			}
		}
	})
	send := func(from, to int) {
		fr := ethernet.Frame{Dst: nics[to].MAC, Src: nics[from].MAC,
			Type: ethernet.TypeTest, Payload: make([]byte, 64)}
		raw, err := fr.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		sim.Schedule(sim.Now()+1, func() { nics[from].Send(raw) })
		sim.Run(sim.Now().Add(50 * netsim.Millisecond))
	}
	// Station 1 talks first: the bridge learns it on port 1.
	send(1, 0)
	rx = [3]int{}
	// Station 0 → station 1 is now a unicast; station 2 must stay silent,
	// and repeats hit the flow cache.
	send(0, 1)
	send(0, 1)
	if rx[1] != 2 || rx[2] != 0 {
		t.Fatalf("learned unicast: rx = %v, want port-1 only ×2", rx)
	}
	if b.Stats.FlowCacheHits == 0 {
		t.Fatal("flow cache never hit on the repeated unicast")
	}
	// Age the table entry out. The cached demux entry for station 1's MAC
	// is still valid — same handler — but the handler must flood now.
	sim.Run(sim.Now().Add(2 * ageLimit))
	rx = [3]int{}
	send(0, 1)
	if rx[1] != 1 || rx[2] != 1 {
		t.Errorf("aged-out dst should flood: rx = %v, want ports 1 and 2", rx)
	}
}

// TestFlowCacheManagerEpochs pins invalidation across the Manager's
// lifecycle epochs: Install claims the data path, Upgrade hands it off
// atomically, and a failed validation Rollback hands it back — each under
// a cache warmed on the previous epoch's handler.
func TestFlowCacheManagerEpochs(t *testing.T) {
	r := newRig(t)
	man := r.b.Manager()
	if _, err := man.Install(fwdManifest()); err != nil {
		t.Fatal(err)
	}
	if _, err := man.Query("fwd.start", ""); err != nil {
		t.Fatal(err)
	}
	r.burst(t, 3)
	if r.rx2 != 3 {
		t.Fatalf("installed forwarder: rx2 = %d, want 3", r.rx2)
	}
	// Upgrade to the dropper: the handoff must invalidate the cached
	// decision pointing at Fwd's handler — a stale entry would keep
	// forwarding with the old closure.
	u, err := man.Upgrade("Fwd", dropManifest(), UpgradeOptions{
		SuppressFor: 100 * netsim.Millisecond, ValidateAfter: 2 * netsim.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.burst(t, 3)
	if r.rx2 != 3 {
		t.Fatalf("after handoff to dropper: rx2 = %d, want 3 (frames dropped)", r.rx2)
	}
	// The probes disagree, so validation rolls back to Fwd; its handler
	// re-claims the path and the cache must follow.
	r.run(3 * netsim.Second)
	if u.State() != UpgradeRolledBack {
		t.Fatalf("state = %v (reason %q), want rolled-back", u.State(), u.Reason)
	}
	r.burst(t, 2)
	if r.rx2 != 5 {
		t.Errorf("after rollback: rx2 = %d, want 5 (forwarding restored)", r.rx2)
	}
	if r.b.Stats.FlowCacheHits < 4 {
		t.Errorf("FlowCacheHits = %d: cache was not exercised across epochs", r.b.Stats.FlowCacheHits)
	}
}

// TestFlowCacheCrashRestart pins invalidation across the fault plane:
// Crash bumps the cache generation (no warm entry survives the power
// cut), and after the cold restart the re-installed handler repopulates
// it.
func TestFlowCacheCrashRestart(t *testing.T) {
	r := newRig(t)
	man := r.b.Manager()
	if _, err := man.Install(fwdManifest()); err != nil {
		t.Fatal(err)
	}
	if _, err := man.Query("fwd.start", ""); err != nil {
		t.Fatal(err)
	}
	r.burst(t, 3)
	if r.rx2 != 3 {
		t.Fatalf("rx2 = %d, want 3", r.rx2)
	}
	gen := r.b.flowGen
	r.b.Crash()
	if r.b.flowGen == gen {
		t.Error("Crash did not invalidate the flow cache")
	}
	r.burst(t, 2)
	if r.rx2 != 3 {
		t.Fatalf("crashed node forwarded: rx2 = %d, want 3", r.rx2)
	}
	if err := r.b.Restart(); err != nil {
		t.Fatal(err)
	}
	hits := r.b.Stats.FlowCacheHits
	r.burst(t, 3)
	if r.rx2 != 6 {
		t.Errorf("after cold restart: rx2 = %d, want 6", r.rx2)
	}
	if r.b.Stats.FlowCacheHits <= hits {
		t.Error("cache not repopulated after restart")
	}
}
