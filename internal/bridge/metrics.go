package bridge

import (
	"strconv"

	"github.com/switchware/activebridge/internal/metrics"
	"github.com/switchware/activebridge/internal/netsim"
)

// Instrument registers this bridge's observable state into a metrics
// registry under the given base labels (topo adds net/bridge/shard
// identity; the script console adds just the bridge name).
//
// Every instrument is a sampler or a dynamic family: the frame path is
// untouched, and values are read from the bridge's existing counters at
// quiescent points only — which is why an instrumented run is
// byte-identical to an uninstrumented one.
func (b *Bridge) Instrument(reg *metrics.Registry, ls metrics.Labels) {
	s := &b.Stats

	counter := func(name, help string, v *uint64) {
		reg.SampleCounter(name, help, ls, func() float64 { return float64(*v) })
	}
	counter("ab_bridge_frames_in_total", "frames received on any port", &s.FramesIn)
	counter("ab_bridge_frames_delivered_total", "frames handed to some handler", &s.FramesDelivered)
	counter("ab_bridge_frames_sent_total", "frames transmitted", &s.FramesSent)
	counter("ab_bridge_no_handler_drops_total", "frames no switchlet claimed", &s.NoHandlerDrops)
	counter("ab_bridge_input_suppressed_total", "frames suppressed on blocked ports", &s.InputSuppressed)
	counter("ab_bridge_output_blocked_total", "sends dropped due to port blocking", &s.OutputBlocked)
	counter("ab_bridge_handler_traps_total", "runtime failures inside switchlet code", &s.HandlerTraps)
	counter("ab_bridge_timer_fires_total", "switchlet timer expirations", &s.TimerFires)
	counter("ab_bridge_crashes_total", "fault-plane crashes of this node", &s.Crashes)
	counter("ab_bridge_restarts_total", "fault-plane cold restarts of this node", &s.Restarts)
	counter("ab_bridge_flow_cache_hits_total", "demux decisions served from the flow cache", &s.FlowCacheHits)
	counter("ab_bridge_flow_cache_misses_total", "demux decisions resolved through the handler maps", &s.FlowCacheMisses)
	for t := 0; t < len(b.Machine.TierEnters); t++ {
		t := t
		reg.SampleCounter("ab_bridge_vm_tier_enters_total",
			"switchlet frame entries per execution tier (0 naive, 1 quickened, 2 translated)",
			ls.With("tier", strconv.Itoa(t)),
			func() float64 { return float64(b.Machine.TierEnters[t]) })
	}
	reg.SampleCounter("ab_bridge_txq_drops_total", "frames lost to transmit-queue overflow", ls,
		func() float64 { return float64(b.TxQueueDrops()) })
	reg.SampleCounter("ab_bridge_fault_drops_total", "frames destroyed at this node's ports by the fault plane", ls,
		func() float64 {
			var v uint64
			for _, p := range b.ports {
				v += p.FaultDrops
			}
			return float64(v)
		})

	reg.SampleCounter("ab_bridge_vm_time_ns_total", "virtual time spent in switchlet execution", ls,
		func() float64 { return float64(s.VMTime) })
	reg.SampleCounter("ab_bridge_kernel_time_ns_total", "virtual time spent in kernel crossings", ls,
		func() float64 { return float64(s.KernelTime) })
	reg.SampleGauge("ab_bridge_cpu_utilization", "node CPU busy fraction of elapsed virtual time (0-1)", ls,
		func() float64 { return netsim.Utilization(b.cpu.Busy, netsim.Duration(b.sim.Now())) })
	reg.SampleGauge("ab_bridge_tx_queue_depth", "frames backed up across the bridge's transmit queues", ls,
		func() float64 {
			depth := 0
			for _, p := range b.ports {
				depth += p.TxQueueLen()
			}
			return float64(depth)
		})

	m := b.Manager()
	lc := func(name, help string, field func(LifecycleStats) uint64) {
		reg.SampleCounter(name, help, ls, func() float64 { return float64(field(m.lifecycle)) })
	}
	lc("ab_bridge_switchlet_installs_total", "successful switchlet installs",
		func(l LifecycleStats) uint64 { return l.Installs })
	lc("ab_bridge_switchlet_uninstalls_total", "successful switchlet uninstalls",
		func(l LifecycleStats) uint64 { return l.Uninstalls })
	lc("ab_bridge_switchlet_upgrades_total", "upgrade attempts that reached handoff",
		func(l LifecycleStats) uint64 { return l.Upgrades })
	lc("ab_bridge_switchlet_commits_total", "upgrades whose validation passed",
		func(l LifecycleStats) uint64 { return l.Commits })
	lc("ab_bridge_switchlet_rollbacks_total", "upgrades returned to the old switchlet",
		func(l LifecycleStats) uint64 { return l.Rollbacks })

	// The installed set changes over a run (installs, upgrades,
	// uninstalls), so the version inventory is a dynamic family
	// re-enumerated at every publish. The value is the install instant
	// in virtual seconds.
	reg.Dynamic("ab_bridge_switchlet_info", "installed switchlet versions (value: install time, virtual seconds)",
		metrics.KindGauge, func(emit func(metrics.Labels, float64)) {
			for _, inst := range m.List() {
				emit(ls.With("module", inst.Manifest.Name).With("version", inst.Manifest.Version.String()),
					inst.At.Seconds())
			}
		})
}
