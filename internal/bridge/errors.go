package bridge

import "errors"

// Typed errors of the frame and lifecycle paths. They are the sentinels
// behind every error the bridge and its Manager return, so embedders can
// branch with errors.Is instead of matching message text. The public SDK
// (pkg/activebridge) re-exports the full set.
var (
	// ErrFrameTooShort rejects send data shorter than an Ethernet header:
	// there is nothing to address a frame with.
	ErrFrameTooShort = errors.New("frame shorter than an Ethernet header")
	// ErrFrameTooLong rejects send data beyond the maximum frame length.
	ErrFrameTooLong = errors.New("frame too long")
	// ErrNoSuchPort rejects an out-of-range port index.
	ErrNoSuchPort = errors.New("no such port")
	// ErrDstBound rejects a second destination-handler registration on
	// an address (the paper's first-to-bind-wins rule).
	ErrDstBound = errors.New("already bound")

	// ErrNotInstalled reports a Manager operation naming an unknown
	// switchlet.
	ErrNotInstalled = errors.New("switchlet not installed")
	// ErrAlreadyInstalled rejects installing a second switchlet under a
	// name the Manager already tracks.
	ErrAlreadyInstalled = errors.New("switchlet already installed")
	// ErrNotUpgradable reports an Upgrade whose old switchlet has no
	// complete lifecycle (start/stop/probe/running entry points).
	ErrNotUpgradable = errors.New("switchlet has no complete lifecycle")
	// ErrNoSuchFunc reports a Query of a Func-registry name nothing has
	// registered.
	ErrNoSuchFunc = errors.New("no registered function")
)
