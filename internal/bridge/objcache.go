package bridge

import (
	"crypto/sha256"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/switchware/activebridge/internal/vm"
)

// Process-wide compiled-switchlet object cache. Installing the same
// switchlet on N bridges — 256 learning bridges in the fat-tree
// scenarios — compiles it exactly once; every further install reuses the
// encoded object and its import list. Safe under concurrent scenario
// runs and shard goroutines.
//
// The key pins everything compilation depends on: the module name, the
// manifest version, the source hash, and a fingerprint of the signature
// environment the source compiles against (the visible module set plus
// the implicit open). Distinct sources under one name — the buggy
// 802.1D variant, instrumented spanning trees — hash to distinct
// entries; identical installs on identically-provisioned nodes hit.
type objectCacheKey struct {
	name    string
	version string
	srcSum  [32]byte
	env     string
}

type objectCacheEntry struct {
	name    string
	enc     []byte
	imports []string
}

var (
	objectCache              sync.Map // objectCacheKey -> *objectCacheEntry
	objectHits, objectMisses atomic.Uint64
)

// envFingerprint digests the compilation environment: which module
// signatures are visible and what the implicit open is.
func envFingerprint(se *vm.SigEnv) string {
	mods := se.Modules()
	sort.Strings(mods)
	return se.Implicit + "|" + strings.Join(mods, ",")
}

// CompileCacheStats reports cumulative process-wide cache hits and
// misses (for tests and capacity diagnostics).
func CompileCacheStats() (hits, misses uint64) {
	return objectHits.Load(), objectMisses.Load()
}

// compileCached compiles name/source against the signature environment,
// reusing a previous identical compilation when available. The returned
// entry is shared: callers must treat enc and imports as immutable.
func compileCached(name, source, version string, se *vm.SigEnv) (*objectCacheEntry, error) {
	key := objectCacheKey{name: name, version: version, srcSum: sha256.Sum256([]byte(source)), env: envFingerprint(se)}
	if v, ok := objectCache.Load(key); ok {
		objectHits.Add(1)
		return v.(*objectCacheEntry), nil
	}
	obj, _, err := vm.Compile(name, source, se)
	if err != nil {
		return nil, err
	}
	imports := make([]string, 0, len(obj.Imports))
	for _, ref := range obj.Imports {
		imports = append(imports, ref.Module)
	}
	ent := &objectCacheEntry{name: name, enc: obj.Encode(), imports: imports}
	objectMisses.Add(1)
	actual, _ := objectCache.LoadOrStore(key, ent)
	return actual.(*objectCacheEntry), nil
}
