package bridge

import (
	"crypto/sha256"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/switchware/activebridge/internal/vm"
)

// Process-wide compiled-switchlet object cache. Installing the same
// switchlet on N bridges — 256 learning bridges in the fat-tree
// scenarios — compiles it exactly once; every further install reuses the
// encoded object and its import list. Safe under concurrent scenario
// runs and shard goroutines.
//
// The key pins everything compilation depends on: the module name, the
// manifest version, the source hash, the optimization level, and a
// fingerprint of the signature environment the source compiles against
// (the visible module set plus the implicit open). Distinct sources
// under one name — the buggy
// 802.1D variant, instrumented spanning trees — hash to distinct
// entries; identical installs on identically-provisioned nodes hit.
type objectCacheKey struct {
	name    string
	version string
	srcSum  [32]byte
	env     string
	// optLevel separates entries per compiler tier: a level-1 entry's obj
	// is trusted-quickened, a level-0 entry's is naive bytecode, and the
	// two must never be shared — a bridge running -O0 linking a quickened
	// object would silently reintroduce the optimizer it asked to disable.
	optLevel int
	// verified separates entries produced under the static-verification
	// regime: an entry whose shared obj earned its verified bit must never
	// be answered to (or overwritten by) a caller that skipped the proof,
	// and vice versa — the trusted-mode quickening rides on that bit.
	verified bool
}

type objectCacheEntry struct {
	name    string
	enc     []byte
	imports []string
	// obj is the compiler's decoded form, already quickened in trusted
	// mode (type-proven untagged fast paths included). Installing links
	// this shared object directly, skipping the encode/decode round trip
	// that would discard the typing proof. Object and its chunks are
	// immutable after optimization; per-bridge state (globals, inline
	// caches) lives in each LinkedModule.
	obj *vm.Object
	// verified records that vm.VerifyObject accepted obj before it was
	// cached; decoded() refuses to share the trusted form without it.
	verified bool
}

// decoded returns the shared, verifier-passed object, or — if the entry
// somehow holds an unverified one — a fresh decode of the wire bytes, which
// the loader will re-verify and quicken under the hostile rule set. Only
// verifier-passed objects may carry trusted-mode optimization between
// bridges.
func (e *objectCacheEntry) decoded() (*vm.Object, error) {
	if e.verified && e.obj != nil && e.obj.Verified() {
		return e.obj, nil
	}
	return vm.DecodeObject(e.enc)
}

var (
	objectCache              sync.Map // objectCacheKey -> *objectCacheEntry
	objectHits, objectMisses atomic.Uint64
)

// envFingerprint digests the compilation environment: which module
// signatures are visible and what the implicit open is.
func envFingerprint(se *vm.SigEnv) string {
	mods := se.Modules()
	sort.Strings(mods)
	return se.Implicit + "|" + strings.Join(mods, ",")
}

// CompileCacheStats reports cumulative process-wide cache hits and
// misses (for tests and capacity diagnostics).
func CompileCacheStats() (hits, misses uint64) {
	return objectHits.Load(), objectMisses.Load()
}

// compileCached compiles name/source at optLevel against the signature
// environment, reusing a previous identical compilation when available.
// The returned entry is shared: callers must treat enc and imports as
// immutable.
func compileCached(name, source, version string, se *vm.SigEnv, optLevel int) (*objectCacheEntry, error) {
	key := objectCacheKey{name: name, version: version, srcSum: sha256.Sum256([]byte(source)), env: envFingerprint(se), optLevel: optLevel, verified: true}
	if v, ok := objectCache.Load(key); ok {
		objectHits.Add(1)
		return v.(*objectCacheEntry), nil
	}
	obj, _, err := vm.CompileLevel(name, source, se, optLevel)
	if err != nil {
		return nil, err
	}
	imports := make([]string, 0, len(obj.Imports))
	for _, ref := range obj.Imports {
		imports = append(imports, ref.Module)
	}
	// CompileLevel ran the static verifier (it refuses to emit otherwise),
	// so the entry records the earned bit rather than asserting it.
	ent := &objectCacheEntry{name: name, enc: obj.Encode(), imports: imports, obj: obj, verified: obj.Verified()}
	objectMisses.Add(1)
	actual, _ := objectCache.LoadOrStore(key, ent)
	return actual.(*objectCacheEntry), nil
}
