package bridge

import (
	"errors"
	"strings"
	"testing"

	"github.com/switchware/activebridge/internal/ethernet"
	"github.com/switchware/activebridge/internal/netsim"
	"github.com/switchware/activebridge/internal/vm"
)

// rig is a bridge wired between two observable stations.
type rig struct {
	sim    *netsim.Sim
	b      *Bridge
	n1, n2 *netsim.NIC
	rx1    int
	rx2    int
	logs   []string
}

func newRig(t *testing.T) *rig {
	t.Helper()
	r := &rig{sim: netsim.New()}
	r.b = New(r.sim, "br", 1, 2, netsim.DefaultCostModel())
	r.b.LogSink = func(_ netsim.Time, _, msg string) { r.logs = append(r.logs, msg) }
	lan1 := netsim.NewSegment(r.sim, "lan1")
	lan2 := netsim.NewSegment(r.sim, "lan2")
	r.n1 = netsim.NewNIC(r.sim, "n1", ethernet.MAC{2, 0, 0, 0, 0, 1})
	r.n2 = netsim.NewNIC(r.sim, "n2", ethernet.MAC{2, 0, 0, 0, 0, 2})
	r.n1.Promiscuous = true
	r.n2.Promiscuous = true
	r.n1.SetRecv(func(*netsim.NIC, []byte) { r.rx1++ })
	r.n2.SetRecv(func(*netsim.NIC, []byte) { r.rx2++ })
	lan1.Attach(r.n1)
	lan1.Attach(r.b.Port(0))
	lan2.Attach(r.n2)
	lan2.Attach(r.b.Port(1))
	return r
}

func (r *rig) sendFrom1(t *testing.T, dst ethernet.MAC, size int) {
	t.Helper()
	fr := ethernet.Frame{Dst: dst, Src: r.n1.MAC, Type: ethernet.TypeTest, Payload: make([]byte, size)}
	raw, err := fr.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	r.n1.Send(raw)
}

func (r *rig) load(t *testing.T, name, src string) {
	t.Helper()
	if err := r.b.CompileAndLoad(name, src); err != nil {
		t.Fatalf("load %s: %v", name, err)
	}
}

func (r *rig) run(d netsim.Duration) { r.sim.Run(r.sim.Now().Add(d)) }

func TestHandlerReplacementIsLive(t *testing.T) {
	r := newRig(t)
	r.load(t, "First", `
let handle pkt inport = Unixnet.send_pkt_out (1 - inport) pkt
let _ = Bridge.set_handler handle`)
	r.sim.Schedule(r.sim.Now()+1, func() { r.sendFrom1(t, r.n2.MAC, 64) })
	r.run(50 * netsim.Millisecond)
	if r.rx2 != 1 {
		t.Fatalf("rx2 = %d", r.rx2)
	}
	// Replace the data path: the new module's handler drops everything.
	r.load(t, "Second", `
let handle pkt inport = ignore pkt; ignore inport
let _ = Bridge.set_handler handle`)
	r.sim.Schedule(r.sim.Now()+1, func() { r.sendFrom1(t, r.n2.MAC, 64) })
	r.run(50 * netsim.Millisecond)
	if r.rx2 != 1 {
		t.Errorf("handler replacement not effective: rx2 = %d", r.rx2)
	}
}

func TestTrapDropsFrameButNodeSurvives(t *testing.T) {
	r := newRig(t)
	r.load(t, "Crashy", `
let n = ref 0
let handle pkt inport =
  n := !n + 1;
  if !n = 1 then raise "synthetic failure"
  else Unixnet.send_pkt_out (1 - inport) pkt
let _ = Bridge.set_handler handle`)
	r.sim.Schedule(r.sim.Now()+1, func() { r.sendFrom1(t, r.n2.MAC, 64) })
	r.run(50 * netsim.Millisecond)
	if r.rx2 != 0 {
		t.Errorf("trapped handler's sends must be dropped, rx2 = %d", r.rx2)
	}
	if r.b.Stats.HandlerTraps != 1 {
		t.Errorf("traps = %d", r.b.Stats.HandlerTraps)
	}
	// Second frame forwards fine.
	r.sim.Schedule(r.sim.Now()+1, func() { r.sendFrom1(t, r.n2.MAC, 64) })
	r.run(50 * netsim.Millisecond)
	if r.rx2 != 1 {
		t.Errorf("node did not survive the trap, rx2 = %d", r.rx2)
	}
	found := false
	for _, l := range r.logs {
		if strings.Contains(l, "synthetic failure") {
			found = true
		}
	}
	if !found {
		t.Error("trap not logged")
	}
}

func TestInfiniteLoopSwitchletIsStopped(t *testing.T) {
	r := newRig(t)
	r.load(t, "Spin", `
let rec spin n = spin (n + 1)
let handle pkt inport = ignore (spin 0)
let _ = Bridge.set_handler handle`)
	r.sim.Schedule(r.sim.Now()+1, func() { r.sendFrom1(t, r.n2.MAC, 64) })
	r.run(netsim.Second)
	if r.b.Stats.HandlerTraps != 1 {
		t.Errorf("fuel exhaustion should trap: traps = %d", r.b.Stats.HandlerTraps)
	}
}

func TestDstHandlerFirstBindWins(t *testing.T) {
	r := newRig(t)
	r.load(t, "Claimer", `
let h1 pkt inport = ignore pkt; ignore inport
let _ = Bridge.set_dst_handler "\x01\x80\xc2\x00\x00\x00" h1`)
	// A second claim on the same address must trap at init and fail the
	// load (paper: "the first switchlet to bind to a given port succeeds
	// and all others fail").
	err := r.b.CompileAndLoad("Claimer2", `
let h2 pkt inport = ignore pkt; ignore inport
let _ = Bridge.set_dst_handler "\x01\x80\xc2\x00\x00\x00" h2`)
	if err == nil {
		t.Fatal("second bind should fail")
	}
	if !strings.Contains(err.Error(), "already bound") {
		t.Errorf("err = %v", err)
	}
}

func TestDstHandlerBypassesBlockedPort(t *testing.T) {
	r := newRig(t)
	r.load(t, "Ctl", `
let seen = ref 0
let hctl pkt inport = seen := !seen + 1
let hdata pkt inport = Unixnet.send_pkt_out (1 - inport) pkt
let count s = string_of_int !seen
let _ = Bridge.set_dst_handler "\x01\x80\xc2\x00\x00\x00" hctl
let _ = Bridge.set_handler hdata
let _ = Func.register "ctl.seen" count
let _ = Unixnet.set_port_block 0 true`)
	// Data frame on blocked port 0: suppressed.
	r.sim.Schedule(r.sim.Now()+1, func() { r.sendFrom1(t, r.n2.MAC, 64) })
	// Control multicast on blocked port 0: still delivered to dst handler.
	r.sim.Schedule(r.sim.Now()+2, func() { r.sendFrom1(t, ethernet.AllBridges, 64) })
	r.run(100 * netsim.Millisecond)
	if r.rx2 != 0 {
		t.Errorf("data frame crossed a blocked port")
	}
	if r.b.Stats.InputSuppressed != 1 {
		t.Errorf("InputSuppressed = %d", r.b.Stats.InputSuppressed)
	}
	fn, _ := r.b.Funcs.Lookup("ctl.seen")
	v, err := r.b.Machine.Invoke(fn, "")
	if err != nil || v != "1" {
		t.Errorf("control frame not delivered on blocked port: %v %v", v, err)
	}
}

func TestOutputBlockingAndCtlBypass(t *testing.T) {
	r := newRig(t)
	r.load(t, "Out", `
let handle pkt inport = Unixnet.send_pkt_out (1 - inport) pkt
let _ = Bridge.set_handler handle
let _ = Unixnet.set_port_block 1 true`)
	r.sim.Schedule(r.sim.Now()+1, func() { r.sendFrom1(t, r.n2.MAC, 64) })
	r.run(50 * netsim.Millisecond)
	if r.rx2 != 0 {
		t.Errorf("send crossed blocked output port")
	}
	if r.b.Stats.OutputBlocked != 1 {
		t.Errorf("OutputBlocked = %d", r.b.Stats.OutputBlocked)
	}
	// send_ctl_out bypasses the block.
	r.load(t, "Out2", `
let handle2 pkt inport = Unixnet.send_ctl_out (1 - inport) pkt
let _ = Bridge.set_handler handle2`)
	r.sim.Schedule(r.sim.Now()+1, func() { r.sendFrom1(t, r.n2.MAC, 64) })
	r.run(50 * netsim.Millisecond)
	if r.rx2 != 1 {
		t.Errorf("ctl send should bypass output block, rx2 = %d", r.rx2)
	}
}

func TestTimersFireAndCancel(t *testing.T) {
	r := newRig(t)
	r.load(t, "Timers", `
let fires = ref 0
let tick () = fires := !fires + 1;
  if !fires >= 3 then Bridge.cancel_timer "t"
let count s = string_of_int !fires
let _ = Func.register "timer.fires" count
let _ = Bridge.set_timer "t" 100 tick`)
	r.run(2 * netsim.Second)
	fn, _ := r.b.Funcs.Lookup("timer.fires")
	v, err := r.b.Machine.Invoke(fn, "")
	if err != nil {
		t.Fatal(err)
	}
	if v != "3" {
		t.Errorf("timer fired %v times, want exactly 3 (then cancelled)", v)
	}
}

func TestTimerReplacement(t *testing.T) {
	r := newRig(t)
	r.load(t, "TimerR", `
let a = ref 0
let b = ref 0
let get s = string_of_int !a ^ "," ^ string_of_int !b
let _ = Func.register "tr.get" get
let _ = Bridge.set_timer "x" 100 (fun () -> a := !a + 1)
let _ = Bridge.set_timer "x" 100 (fun () -> b := !b + 1)`)
	r.run(350 * netsim.Millisecond)
	fn, _ := r.b.Funcs.Lookup("tr.get")
	v, _ := r.b.Machine.Invoke(fn, "")
	if v != "0,3" {
		t.Errorf("replaced timer state = %v, want 0,3", v)
	}
}

func TestAfterOneShot(t *testing.T) {
	r := newRig(t)
	r.load(t, "AfterT", `
let fired = ref 0
let get s = string_of_int !fired
let _ = Func.register "after.get" get
let _ = Bridge.after 50 (fun () -> fired := !fired + 1)`)
	r.run(netsim.Second)
	fn, _ := r.b.Funcs.Lookup("after.get")
	v, _ := r.b.Machine.Invoke(fn, "")
	if v != "1" {
		t.Errorf("after fired %v times, want 1", v)
	}
}

func TestSpawnRunsAfterInit(t *testing.T) {
	r := newRig(t)
	r.load(t, "Spawny", `
let state = ref "init"
let get s = !state
let _ = Func.register "spawn.get" get
let _ = Safethread.spawn (fun () -> state := "spawned")
let _ = state := "init done"`)
	r.run(10 * netsim.Millisecond)
	fn, _ := r.b.Funcs.Lookup("spawn.get")
	v, _ := r.b.Machine.Invoke(fn, "")
	if v != "spawned" {
		t.Errorf("spawn order: state = %v", v)
	}
}

func TestMutexAssertsDoubleLock(t *testing.T) {
	r := newRig(t)
	err := r.b.CompileAndLoad("Locky", `
let m = Mutex.create ()
let _ = Mutex.lock m
let _ = Mutex.lock m`)
	if err == nil || !strings.Contains(err.Error(), "already locked") {
		t.Errorf("double lock should trap at load: %v", err)
	}
}

func TestFuncCallBetweenModules(t *testing.T) {
	r := newRig(t)
	r.load(t, "Provider", `
let double s = s ^ s
let _ = Func.register "prov.double" double`)
	r.load(t, "Consumer", `
let use s = Func.call "prov.double" s
let _ = Func.register "cons.use" use`)
	fn, _ := r.b.Funcs.Lookup("cons.use")
	v, err := r.b.Machine.Invoke(fn, "ab")
	if err != nil || v != "abab" {
		t.Errorf("cross-module Func.call = %v, %v", v, err)
	}
}

func TestGettimeofdayAdvances(t *testing.T) {
	r := newRig(t)
	r.load(t, "Clock", `
let t0 = Safeunix.gettimeofday ()
let elapsed s = string_of_int (Safeunix.gettimeofday () - t0)
let _ = Func.register "clock.elapsed" elapsed`)
	r.run(2 * netsim.Second)
	fn, _ := r.b.Funcs.Lookup("clock.elapsed")
	v, _ := r.b.Machine.Invoke(fn, "")
	// ~2 s in microseconds.
	if v != "2000000" {
		t.Errorf("elapsed = %v µs, want 2000000", v)
	}
}

func TestFrameCostChargedToCPU(t *testing.T) {
	r := newRig(t)
	r.load(t, "Fwd", `
let handle pkt inport = Unixnet.send_pkt_out (1 - inport) pkt
let _ = Bridge.set_handler handle`)
	busy0 := r.b.CPU().Busy
	r.sim.Schedule(r.sim.Now()+1, func() { r.sendFrom1(t, r.n2.MAC, 500) })
	r.run(50 * netsim.Millisecond)
	charged := r.b.CPU().Busy - busy0
	// Kernel in + VM + kernel out for a ~522-byte frame: several hundred µs.
	if charged < 300*netsim.Microsecond || charged > 2*netsim.Millisecond {
		t.Errorf("per-frame CPU charge = %v", charged)
	}
}

func TestTracePathSample(t *testing.T) {
	r := newRig(t)
	r.load(t, "Fwd2", `
let handle pkt inport = Unixnet.send_pkt_out (1 - inport) pkt
let _ = Bridge.set_handler handle`)
	r.b.TracePath = true
	r.sim.Schedule(r.sim.Now()+1, func() { r.sendFrom1(t, r.n2.MAC, 256) })
	r.run(50 * netsim.Millisecond)
	p := r.b.LastPath
	if p.FrameLen == 0 || p.KernelRecv == 0 || p.Exec == 0 || p.KernelSend == 0 || p.Sends != 1 {
		t.Errorf("path sample incomplete: %+v", p)
	}
}

func TestUnknownPortSendTraps(t *testing.T) {
	r := newRig(t)
	err := r.b.CompileAndLoad("BadPort", `
let _ = Unixnet.send_pkt_out 99 "xx"`)
	if err == nil || !strings.Contains(err.Error(), "no such port") {
		t.Errorf("err = %v", err)
	}
}

func TestSendReturnsTypedErrors(t *testing.T) {
	r := newRig(t)
	if err := r.b.Send(99, "xxxxxxxxxxxxxx", false); !errors.Is(err, ErrNoSuchPort) {
		t.Errorf("out-of-range port: err = %v, want ErrNoSuchPort", err)
	}
	if err := r.b.Send(-1, "xxxxxxxxxxxxxx", false); !errors.Is(err, ErrNoSuchPort) {
		t.Errorf("negative port: err = %v, want ErrNoSuchPort", err)
	}
	huge := strings.Repeat("x", ethernet.MaxFrameLen+1)
	if err := r.b.Send(0, huge, false); !errors.Is(err, ErrFrameTooLong) {
		t.Errorf("oversize frame: err = %v, want ErrFrameTooLong", err)
	}
	if err := r.b.Send(0, "tiny", false); !errors.Is(err, ErrFrameTooShort) {
		t.Errorf("short frame: err = %v, want ErrFrameTooShort", err)
	}
}

func TestDstBindReturnsTypedError(t *testing.T) {
	r := newRig(t)
	target := ethernet.AllBridges
	h := FrameHandler{Name: "first", Native: func([]byte, int) {}}
	if err := r.b.SetDstHandler(target, h); err != nil {
		t.Fatal(err)
	}
	err := r.b.SetDstHandler(target, FrameHandler{Name: "second", Native: func([]byte, int) {}})
	if !errors.Is(err, ErrDstBound) {
		t.Errorf("second bind: err = %v, want ErrDstBound", err)
	}
}

func TestNormalizeFrame(t *testing.T) {
	// A wire-valid frame passes through untouched.
	fr := ethernet.Frame{Dst: ethernet.Broadcast, Src: ethernet.MAC{2, 0, 0, 0, 0, 1},
		Type: ethernet.TypeTest, Payload: make([]byte, 80)}
	raw, _ := fr.Marshal()
	out, err := normalizeFrame(raw)
	if err != nil || &out[0] != &raw[0] {
		t.Errorf("valid frame should pass through")
	}
	// A bare header+payload gets padded and an FCS appended.
	bare := raw[:ethernet.HeaderLen+10]
	out, err = normalizeFrame(append([]byte(nil), bare...))
	if err != nil {
		t.Fatal(err)
	}
	var check ethernet.Frame
	if err := check.Unmarshal(out); err != nil {
		t.Errorf("normalized frame invalid: %v", err)
	}
	// Garbage is rejected with the typed sentinel.
	if _, err := normalizeFrame([]byte{1, 2, 3}); !errors.Is(err, ErrFrameTooShort) {
		t.Errorf("short data: err = %v, want ErrFrameTooShort", err)
	}
}

func TestLoadedModuleListAndMachine(t *testing.T) {
	r := newRig(t)
	r.load(t, "A", `let x = 1`)
	r.load(t, "B", `let y = A.x + 1`)
	mods := r.b.Loader.Modules()
	if len(mods) != 2 || mods[0] != "A" || mods[1] != "B" {
		t.Errorf("modules = %v", mods)
	}
	lm, _ := r.b.Loader.Module("B")
	v, _ := lm.Global("y")
	if v != int64(2) {
		t.Errorf("cross-module constant = %v", v)
	}
}

func TestNativeTimer(t *testing.T) {
	r := newRig(t)
	n := 0
	r.b.SetNativeTimer("nt", 100*netsim.Millisecond, func() { n++ })
	r.run(550 * netsim.Millisecond)
	if n != 5 {
		t.Errorf("native timer fired %d times, want 5", n)
	}
	r.b.CancelTimer("nt")
	r.run(netsim.Second)
	if n != 5 {
		t.Errorf("cancelled native timer kept firing: %d", n)
	}
}

func TestVMHandlerReceivesCorrectArgs(t *testing.T) {
	r := newRig(t)
	r.load(t, "Args", `
let last_len = ref 0
let last_port = ref (0 - 1)
let handle pkt inport =
  last_len := String.length pkt;
  last_port := inport
let get s = string_of_int !last_len ^ ":" ^ string_of_int !last_port
let _ = Func.register "args.get" get
let _ = Bridge.set_handler handle`)
	r.sim.Schedule(r.sim.Now()+1, func() { r.sendFrom1(t, r.n2.MAC, 100) })
	r.run(50 * netsim.Millisecond)
	fn, _ := r.b.Funcs.Lookup("args.get")
	v, _ := r.b.Machine.Invoke(fn, "")
	// 14 header + 100 payload + 4 FCS = 118 bytes, arriving on port 0.
	if v != "118:0" {
		t.Errorf("handler args = %v, want 118:0", v)
	}
}

func TestLoadChargesCPU(t *testing.T) {
	r := newRig(t)
	busy0 := r.b.CPU().Busy
	obj, _, err := vm.Compile("Heavy", `
let warm =
  let rec loop i acc = if i = 0 then acc else loop (i - 1) (acc + i) in
  loop 2000 0
`, r.b.Loader.SigEnv())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.b.LoadObjectBytes(obj.Encode()); err != nil {
		t.Fatal(err)
	}
	if r.b.CPU().Busy-busy0 < netsim.Millisecond {
		t.Errorf("module evaluation cost not charged: %v", r.b.CPU().Busy-busy0)
	}
}
