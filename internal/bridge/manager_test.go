package bridge

import (
	"errors"
	"strings"
	"testing"

	"github.com/switchware/activebridge/internal/env"
	"github.com/switchware/activebridge/internal/ethernet"
	"github.com/switchware/activebridge/internal/netsim"
)

// counterManifest is a tiny switchlet that owns a timer, a handler and a
// complete lifecycle, for exercising the Manager.
func counterManifest() env.Manifest {
	return env.Manifest{
		Name:    "Counter",
		Version: env.Version{Major: 1},
		Capabilities: []env.Capability{
			env.CapLog, env.CapFuncs, env.CapDemux,
		},
		Handlers: []string{"counter.get"},
		Timers:   []string{"counter_tick"},
		Lifecycle: env.Lifecycle{
			Start: "counter.start", Stop: "counter.stop",
			Probe: "counter.probe", Running: "counter.running",
		},
		Source: `
let n = ref 0
let on = ref false
let tick () = n := !n + 1
let _ = Func.register "counter.get" (fun s -> string_of_int !n)
let _ = Func.register "counter.probe" (fun s -> "state")
let _ = Func.register "counter.running" (fun s -> if !on then "yes" else "no")
let _ = Func.register "counter.start"
          (fun s -> on := true; Bridge.set_timer "counter_tick" 100 tick; "ok")
let _ = Func.register "counter.stop"
          (fun s -> on := false; Bridge.cancel_timer "counter_tick"; "ok")
let _ = Log.log "counter installed"`,
	}
}

func TestManagerInstallAndQuery(t *testing.T) {
	r := newRig(t)
	man := r.b.Manager()
	inst, err := man.Install(counterManifest())
	if err != nil {
		t.Fatal(err)
	}
	if inst.Manifest.Ref() != "Counter@1.0.0" {
		t.Errorf("ref = %s", inst.Manifest.Ref())
	}
	if _, ok := man.Installed("Counter"); !ok {
		t.Error("Installed lookup failed")
	}
	if got := len(man.List()); got != 1 {
		t.Errorf("List len = %d", got)
	}
	v, err := man.Query("counter.get", "")
	if err != nil || v != "0" {
		t.Errorf("Query = %q, %v", v, err)
	}
	if _, err := man.Query("counter.nope", ""); !errors.Is(err, ErrNoSuchFunc) {
		t.Errorf("missing func: err = %v, want ErrNoSuchFunc", err)
	}
}

func TestManagerInstallRejectsDuplicate(t *testing.T) {
	r := newRig(t)
	man := r.b.Manager()
	if _, err := man.Install(counterManifest()); err != nil {
		t.Fatal(err)
	}
	if _, err := man.Install(counterManifest()); !errors.Is(err, ErrAlreadyInstalled) {
		t.Errorf("duplicate install: err = %v, want ErrAlreadyInstalled", err)
	}
}

func TestManagerEnforcesCapabilitiesAtInstall(t *testing.T) {
	r := newRig(t)
	man := r.b.Manager()
	// The counter imports Log, Func and Bridge; strip the grant down to
	// Func only and the install must be rejected before any code runs.
	m := counterManifest()
	m.Capabilities = []env.Capability{env.CapFuncs}
	loads0 := r.b.Loader.Loads
	_, err := man.Install(m)
	var ce *env.CapabilityError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want CapabilityError", err)
	}
	denied := strings.Join(ce.Denied, " ")
	if !strings.Contains(denied, "Bridge") || !strings.Contains(denied, "Log") {
		t.Errorf("denied = %v", ce.Denied)
	}
	if r.b.Loader.Loads != loads0 {
		t.Error("rejected switchlet was loaded anyway")
	}
	if len(r.logs) != 0 {
		t.Errorf("rejected switchlet ran code: logs = %v", r.logs)
	}
	// Language-level units never need a grant.
	pure := env.Manifest{Name: "Pure", Source: `let x = String.length "abc"`}
	if _, err := man.Install(pure); err != nil {
		t.Errorf("capability-free switchlet rejected: %v", err)
	}
}

func TestManagerCompileChecksWithoutLoading(t *testing.T) {
	r := newRig(t)
	man := r.b.Manager()
	enc, err := man.Compile(counterManifest())
	if err != nil || len(enc) == 0 {
		t.Fatalf("Compile = %d bytes, %v", len(enc), err)
	}
	if len(r.b.Loader.Modules()) != 0 {
		t.Error("Compile must not load")
	}
	// The compiled bytes install as an object manifest.
	m := counterManifest()
	m.Source, m.Object = "", enc
	if _, err := man.Install(m); err != nil {
		t.Fatalf("object install: %v", err)
	}
	if v, err := man.Query("counter.get", ""); err != nil || v != "0" {
		t.Errorf("object-installed switchlet broken: %q, %v", v, err)
	}
}

func TestManagerUninstallReleasesDeclaredResources(t *testing.T) {
	r := newRig(t)
	man := r.b.Manager()
	if _, err := man.Install(counterManifest()); err != nil {
		t.Fatal(err)
	}
	if _, err := man.Query("counter.start", ""); err != nil {
		t.Fatal(err)
	}
	r.run(250 * netsim.Millisecond) // timer ticks twice
	v, _ := man.Query("counter.get", "")
	if v != "2" {
		t.Fatalf("ticks before uninstall = %s", v)
	}
	if err := man.Uninstall("Counter"); err != nil {
		t.Fatal(err)
	}
	// Handlers and lifecycle entries are gone from the registry.
	for _, fn := range []string{"counter.get", "counter.start", "counter.running"} {
		if _, ok := r.b.Funcs.Lookup(fn); ok {
			t.Errorf("%s survived uninstall", fn)
		}
	}
	// The module name is free again and the timer no longer fires.
	if _, ok := r.b.Loader.Module("Counter"); ok {
		t.Error("module still linked")
	}
	if err := man.Uninstall("Counter"); !errors.Is(err, ErrNotInstalled) {
		t.Errorf("double uninstall: err = %v, want ErrNotInstalled", err)
	}
	if _, err := man.Install(counterManifest()); err != nil {
		t.Errorf("reinstall after uninstall: %v", err)
	}
}

func TestUpgradeCommitsWhenProbesMatch(t *testing.T) {
	r := newRig(t)
	man := r.b.Manager()
	if _, err := man.Install(counterManifest()); err != nil {
		t.Fatal(err)
	}
	if _, err := man.Query("counter.start", ""); err != nil {
		t.Fatal(err)
	}
	next := counterManifest()
	next.Name = "Counter2"
	next.Version = env.Version{Major: 2}
	next.Source = strings.ReplaceAll(next.Source, "counter.", "counter2.")
	next.Source = strings.ReplaceAll(next.Source, `"counter_tick"`, `"counter2_tick"`)
	next.Handlers = []string{"counter2.get"}
	next.Timers = []string{"counter2_tick"}
	next.Lifecycle = env.Lifecycle{
		Start: "counter2.start", Stop: "counter2.stop",
		Probe: "counter2.probe", Running: "counter2.running",
	}
	u, err := man.Upgrade("Counter", next, UpgradeOptions{
		SuppressFor: netsim.Second, ValidateAfter: 2 * netsim.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if u.State() != UpgradeValidating {
		t.Fatalf("state = %v", u.State())
	}
	// Handoff already happened, atomically.
	if v, _ := man.Query("counter.running", ""); v != "no" {
		t.Errorf("old still running: %s", v)
	}
	if v, _ := man.Query("counter2.running", ""); v != "yes" {
		t.Errorf("new not running: %s", v)
	}
	r.run(3 * netsim.Second)
	if u.State() != UpgradeCommitted {
		t.Errorf("state = %v (reason %q), want committed", u.State(), u.Reason)
	}
	if man.LastUpgrade() != u {
		t.Error("LastUpgrade mismatch")
	}
}

func TestUpgradeRollsBackOnProbeMismatch(t *testing.T) {
	r := newRig(t)
	man := r.b.Manager()
	if _, err := man.Install(counterManifest()); err != nil {
		t.Fatal(err)
	}
	if _, err := man.Query("counter.start", ""); err != nil {
		t.Fatal(err)
	}
	next := counterManifest()
	next.Name = "Wrong"
	next.Source = strings.ReplaceAll(next.Source, "counter.", "wrong.")
	next.Source = strings.ReplaceAll(next.Source, `"state"`, `"different"`)
	next.Handlers = []string{"wrong.get"}
	next.Lifecycle = env.Lifecycle{
		Start: "wrong.start", Stop: "wrong.stop",
		Probe: "wrong.probe", Running: "wrong.running",
	}
	u, err := man.Upgrade("Counter", next, UpgradeOptions{
		SuppressFor: netsim.Second, ValidateAfter: 2 * netsim.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.run(3 * netsim.Second)
	if u.State() != UpgradeRolledBack {
		t.Fatalf("state = %v, want rolled-back", u.State())
	}
	if !strings.Contains(u.Reason, "mismatch") {
		t.Errorf("reason = %q", u.Reason)
	}
	// Old protocol restarted, new stopped.
	if v, _ := man.Query("counter.running", ""); v != "yes" {
		t.Errorf("old not restarted: %s", v)
	}
	if v, _ := man.Query("wrong.running", ""); v != "no" {
		t.Errorf("new still running: %s", v)
	}
}

func TestUninstallReleasesDeclaredDataPathClaims(t *testing.T) {
	r := newRig(t)
	man := r.b.Manager()
	target := ethernet.AllBridges
	m := env.Manifest{
		Name:         "Claimer",
		Capabilities: []env.Capability{env.CapNet, env.CapDemux},
		OwnsDataPath: true,
		DstBindings:  []ethernet.MAC{target},
		Source: `
let fwd pkt inport = Unixnet.send_pkt_out (1 - inport) pkt
let drop pkt inport = ignore pkt; ignore inport
let _ = Bridge.set_handler fwd
let _ = Bridge.set_dst_handler "\x01\x80\xc2\x00\x00\x00" drop`,
	}
	if _, err := man.Install(m); err != nil {
		t.Fatal(err)
	}
	if r.b.DefaultHandlerName() != "vm-default" {
		t.Fatalf("default handler = %q", r.b.DefaultHandlerName())
	}
	if err := man.Uninstall("Claimer"); err != nil {
		t.Fatal(err)
	}
	if r.b.DefaultHandlerName() != "" {
		t.Errorf("data-path claim survived uninstall: %q", r.b.DefaultHandlerName())
	}
	// The destination binding is free again.
	probe := FrameHandler{Name: "probe", Native: func([]byte, int) {}}
	if err := r.b.SetDstHandler(target, probe); err != nil {
		t.Errorf("dst binding survived uninstall: %v", err)
	}
	// And frames now drop instead of dispatching into uninstalled code.
	r.sim.Schedule(r.sim.Now()+1, func() { r.sendFrom1(t, r.n2.MAC, 64) })
	r.run(50 * netsim.Millisecond)
	if r.rx2 != 0 || r.b.Stats.NoHandlerDrops != 1 {
		t.Errorf("rx2 = %d drops = %d after uninstall", r.rx2, r.b.Stats.NoHandlerDrops)
	}
}

func TestUninstallOfSupersededClaimerKeepsDataPath(t *testing.T) {
	r := newRig(t)
	man := r.b.Manager()
	claimer := func(name string) env.Manifest {
		return env.Manifest{
			Name:         name,
			Capabilities: []env.Capability{env.CapNet, env.CapDemux},
			OwnsDataPath: true,
			Source: `
let handle pkt inport = Unixnet.send_pkt_out (1 - inport) pkt
let _ = Bridge.set_handler handle`,
		}
	}
	// The quickstart sequence: dumb then learning, each claiming the
	// data path; learning's handler is live.
	if _, err := man.Install(claimer("First")); err != nil {
		t.Fatal(err)
	}
	if _, err := man.Install(claimer("Second")); err != nil {
		t.Fatal(err)
	}
	// Uninstalling the superseded claimer must not touch the live
	// handler.
	if err := man.Uninstall("First"); err != nil {
		t.Fatal(err)
	}
	r.sim.Schedule(r.sim.Now()+1, func() { r.sendFrom1(t, r.n2.MAC, 64) })
	r.run(50 * netsim.Millisecond)
	if r.rx2 != 1 {
		t.Errorf("live handler lost when superseded claimer uninstalled: rx2 = %d", r.rx2)
	}
	// Uninstalling the current claimer does release the path.
	if err := man.Uninstall("Second"); err != nil {
		t.Fatal(err)
	}
	if r.b.DefaultHandlerName() != "" {
		t.Errorf("current claimer's handler survived uninstall: %q", r.b.DefaultHandlerName())
	}
}

func TestUpgradeTrapRollbackIsRecorded(t *testing.T) {
	r := newRig(t)
	man := r.b.Manager()
	if _, err := man.Install(counterManifest()); err != nil {
		t.Fatal(err)
	}
	if _, err := man.Query("counter.start", ""); err != nil {
		t.Fatal(err)
	}
	crashy := env.Manifest{
		Name:         "Crashy",
		Capabilities: []env.Capability{env.CapFuncs},
		Lifecycle: env.Lifecycle{
			Start: "crashy.start", Stop: "crashy.stop",
			Probe: "crashy.probe", Running: "crashy.running",
		},
		Source: `
let _ = Func.register "crashy.start" (fun s -> raise "no")
let _ = Func.register "crashy.stop" (fun s -> "ok")
let _ = Func.register "crashy.probe" (fun s -> "x")
let _ = Func.register "crashy.running" (fun s -> "no")`,
	}
	u, err := man.Upgrade("Counter", crashy, UpgradeOptions{})
	if err == nil {
		t.Fatal("trapping start must error")
	}
	if man.LastUpgrade() != u {
		t.Error("trap rollback missing from upgrade history")
	}
	if u.State() != UpgradeRolledBack {
		t.Errorf("state = %v", u.State())
	}
}

func TestUpgradeGuardDefaultsToLifecycleProtoAddr(t *testing.T) {
	r := newRig(t)
	man := r.b.Manager()
	old := counterManifest()
	old.Lifecycle.ProtoAddr = ethernet.DECBridges
	if _, err := man.Install(old); err != nil {
		t.Fatal(err)
	}
	if _, err := man.Query("counter.start", ""); err != nil {
		t.Fatal(err)
	}
	next := counterManifest()
	next.Name = "Counter2"
	next.Source = strings.ReplaceAll(next.Source, "counter.", "counter2.")
	next.Source = strings.ReplaceAll(next.Source, `"counter_tick"`, `"counter2_tick"`)
	next.Handlers = []string{"counter2.get"}
	next.Timers = []string{"counter2_tick"}
	next.Lifecycle = env.Lifecycle{
		Start: "counter2.start", Stop: "counter2.stop",
		Probe: "counter2.probe", Running: "counter2.running",
		ProtoAddr: ethernet.AllBridges,
	}
	// No addresses in the options: the guard must come from the old
	// switchlet's declared protocol address.
	u, err := man.Upgrade("Counter", next, UpgradeOptions{
		SuppressFor: netsim.Second, ValidateAfter: 20 * netsim.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A stray old-protocol frame after the suppression window must roll
	// the node back, even though the caller never named the address.
	r.run(2 * netsim.Second)
	r.sim.Schedule(r.sim.Now()+1, func() { r.sendFrom1(t, ethernet.DECBridges, 64) })
	r.run(netsim.Second)
	if u.State() != UpgradeRolledBack {
		t.Fatalf("state = %v, want rolled-back (reason %q)", u.State(), u.Reason)
	}
	if !strings.Contains(u.Reason, "old-protocol packet") {
		t.Errorf("reason = %q", u.Reason)
	}
}

func TestUpgradeRequiresLifecycles(t *testing.T) {
	r := newRig(t)
	man := r.b.Manager()
	passive := env.Manifest{Name: "Passive", Source: `let x = 1`}
	if _, err := man.Install(passive); err != nil {
		t.Fatal(err)
	}
	if _, err := man.Upgrade("Passive", counterManifest(), UpgradeOptions{}); !errors.Is(err, ErrNotUpgradable) {
		t.Errorf("passive old: err = %v, want ErrNotUpgradable", err)
	}
	if _, err := man.Upgrade("Ghost", counterManifest(), UpgradeOptions{}); !errors.Is(err, ErrNotInstalled) {
		t.Errorf("missing old: err = %v, want ErrNotInstalled", err)
	}
}
