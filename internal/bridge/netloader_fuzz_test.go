package bridge

import (
	"testing"

	"github.com/switchware/activebridge/internal/ethernet"
	"github.com/switchware/activebridge/internal/ipv4"
	"github.com/switchware/activebridge/internal/netsim"
	"github.com/switchware/activebridge/internal/tftp"
	"github.com/switchware/activebridge/internal/udp"
)

// loaderFrame builds a valid Ethernet/IPv4/UDP frame carrying a TFTP
// payload addressed to the loader — the happy-path seed the fuzzer
// mutates.
func loaderFrame(t testing.TB, dst ethernet.MAC, dstIP ipv4.Addr, tftpPayload []byte) []byte {
	t.Helper()
	dg := udp.Datagram{SrcPort: 1234, DstPort: 69, Payload: tftpPayload}
	src := ipv4.Addr{10, 0, 0, 1}
	udpBytes, err := dg.Marshal(src, dstIP)
	if err != nil {
		t.Fatal(err)
	}
	ip := ipv4.Packet{TTL: 64, Protocol: ipv4.ProtoUDP, Src: src, Dst: dstIP, Payload: udpBytes}
	ipBytes, err := ip.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	fr := ethernet.Frame{Dst: dst, Src: ethernet.MAC{2, 0, 0, 0, 0, 1},
		Type: ethernet.TypeIPv4, Payload: ipBytes}
	raw, err := fr.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// FuzzNetLoaderFrame throws arbitrary frames at the §5.2 network loading
// stack (Ethernet demux -> minimal IPv4 -> minimal UDP -> write-only
// TFTP). The invariant is survival: whatever arrives on the wire, the
// loader must consume or ignore it without panicking, and the node must
// keep simulating.
func FuzzNetLoaderFrame(f *testing.F) {
	seedSim := netsim.New()
	seedBridge := New(seedSim, "seed", 1, 2, netsim.DefaultCostModel())
	loaderIP := ipv4.Addr{10, 0, 0, 100}
	wrq := tftp.Marshal(&tftp.Request{Write: true, Filename: "sw.swo", Mode: "octet"})
	data := tftp.Marshal(&tftp.Data{Block: 1, Payload: []byte("not a switchlet")})
	f.Add(loaderFrame(f, seedBridge.MAC(), loaderIP, wrq))
	f.Add(loaderFrame(f, seedBridge.MAC(), loaderIP, data))
	f.Add(loaderFrame(f, seedBridge.MAC(), loaderIP, []byte{}))
	f.Add(loaderFrame(f, seedBridge.MAC(), ipv4.Addr{10, 0, 0, 99}, wrq)) // wrong IP
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	short := loaderFrame(f, seedBridge.MAC(), loaderIP, wrq)
	f.Add(short[:20]) // truncated mid-IP-header

	f.Fuzz(func(t *testing.T, raw []byte) {
		sim := netsim.New()
		b := New(sim, "br", 1, 2, netsim.DefaultCostModel())
		b.EnableNetLoader(loaderIP)
		lan := netsim.NewSegment(sim, "lan")
		peer := netsim.NewNIC(sim, "peer", ethernet.MAC{2, 0, 0, 0, 0, 1})
		lan.Attach(peer)
		lan.Attach(b.Port(0))
		// Deliver straight into the receive path, as the NIC would.
		b.onFrame(0, raw)
		sim.Run(sim.Now() + netsim.Time(100*netsim.Millisecond))
		if b.Stats.FramesIn != 1 {
			t.Fatalf("FramesIn = %d, want 1", b.Stats.FramesIn)
		}
	})
}
