package bridge

import (
	"fmt"

	"github.com/switchware/activebridge/internal/env"
	"github.com/switchware/activebridge/internal/ethernet"
	"github.com/switchware/activebridge/internal/netsim"
	"github.com/switchware/activebridge/internal/tracing"
	"github.com/switchware/activebridge/internal/vm"
	"github.com/switchware/activebridge/internal/vm/verify"
)

// Manager is the per-bridge switchlet lifecycle surface: manifests in,
// running protocols out. It generalizes the paper's §5.4 control
// switchlet into a library primitive — Install enforces the manifest's
// capability grant against the compiled object's imports, Upgrade runs
// the old and new switchlets co-resident with an atomic handler handoff
// and validation, and a failed validation or a trap during handoff rolls
// the node back to the old code automatically.
//
// The Manager shares the node's single-threaded discipline: all methods
// must be called from the simulation's goroutine (between or during
// events), like every other bridge mutation.
type Manager struct {
	b         *Bridge
	installed map[string]*Installed
	order     []string
	upgrades  []*Upgrade
	lifecycle LifecycleStats
	// crash is the stable-storage snapshot taken by noteCrash, consumed
	// by coldRestart.
	crash *crashState
}

// crashState is what a crashed node's stable storage would hold: the
// manifests the Manager had installed (in order) and which protocols were
// running when the power went out.
type crashState struct {
	manifests []env.Manifest
	running   []string
}

// LifecycleStats counts the Manager's switchlet operations, for the
// metrics plane and operator tooling. All counts are cumulative over
// the bridge's lifetime.
type LifecycleStats struct {
	// Installs counts successful Install calls (including the install
	// half of every Upgrade).
	Installs uint64
	// Uninstalls counts successful Uninstall calls.
	Uninstalls uint64
	// Upgrades counts upgrade attempts that reached the atomic handoff.
	Upgrades uint64
	// Commits counts upgrades whose validation passed.
	Commits uint64
	// Rollbacks counts upgrades that returned to the old switchlet —
	// automatically (trap, mismatch, late old-protocol traffic) or by
	// operator decision.
	Rollbacks uint64
}

// Lifecycle returns the cumulative operation counts.
func (m *Manager) Lifecycle() LifecycleStats { return m.lifecycle }

// Installed is the Manager's record of one installed switchlet.
type Installed struct {
	// Manifest is the manifest the switchlet was installed from.
	Manifest env.Manifest
	// At is the virtual time of installation.
	At netsim.Time
	// Warnings are the non-fatal findings of install-time static
	// verification: granted capabilities no reachable import needs,
	// imported modules no reachable chunk reads. Recorded for operator
	// tooling, never logged — per-bridge logs are deterministic state.
	Warnings []string
}

// Manager returns the bridge's switchlet lifecycle manager, creating it
// on first use.
func (b *Bridge) Manager() *Manager {
	if b.manager == nil {
		b.manager = &Manager{b: b, installed: map[string]*Installed{}}
	}
	return b.manager
}

// Bridge returns the node this manager operates on.
func (m *Manager) Bridge() *Bridge { return m.b }

// compile turns a manifest into a verified, capability-checked encoded
// object without touching the node's namespace. The returned name is the
// module name — sw.Name, or the object's own module name when the
// manifest left Name empty. obj is the decoded form ready for linking:
// for source installs it is the process-wide cached object carrying the
// compiler's trusted-mode quickening, shared across bridges.
//
// Every path runs the full static proof (verify.Manifest) before any VM
// state for the module exists: precompiled objects are rejected with a
// typed *vm.VerifyError if any bytecode obligation fails, and both paths
// must prove the manifest grant covers every reachable import slot. The
// returned report carries the non-fatal findings (unused grants,
// unreachable imports).
func (m *Manager) compile(sw env.Manifest) (enc []byte, name string, obj *vm.Object, rep *verify.Report, err error) {
	if err := sw.Validate(); err != nil {
		return nil, "", nil, nil, err
	}
	if len(sw.Object) > 0 {
		obj, err = vm.DecodeObject(sw.Object)
		if err != nil {
			return nil, "", nil, nil, fmt.Errorf("switchlet %s: %w", sw.Name, err)
		}
		if sw.Name != "" && obj.ModName != sw.Name {
			return nil, "", nil, nil, fmt.Errorf("switchlet %s: object names module %s", sw.Name, obj.ModName)
		}
		name, enc = obj.ModName, sw.Object
	} else {
		// Source installs go through the process-wide object cache:
		// installing the same switchlet on N identically-provisioned
		// bridges compiles once.
		ent, err := compileCached(sw.Name, sw.Source, sw.Version.String(), m.b.Loader.SigEnv(), m.b.Loader.OptLevel)
		if err != nil {
			return nil, "", nil, nil, err
		}
		name, enc = ent.name, ent.enc
		if obj, err = ent.decoded(); err != nil {
			return nil, "", nil, nil, fmt.Errorf("switchlet %s: %w", name, err)
		}
	}
	rep, err = verify.Manifest(obj, name, sw.Capabilities)
	if err != nil {
		return nil, "", nil, nil, err
	}
	return enc, name, obj, rep, nil
}

// Compile compiles a manifest against this node and returns the encoded
// switchlet object, after enforcing the capability grant. Use it to
// produce the bytes for network delivery (the §5.2 TFTP loader) without
// installing locally.
func (m *Manager) Compile(sw env.Manifest) ([]byte, error) {
	enc, _, _, _, err := m.compile(sw)
	return enc, err
}

// Install compiles (or decodes), capability-checks, links and evaluates
// a switchlet on the node, charging the paper's load-time evaluation cost
// to the node CPU. The install is atomic: a validation, capability,
// compile, link or init-trap failure leaves the node unchanged.
func (m *Manager) Install(sw env.Manifest) (*Installed, error) {
	_, name, obj, rep, err := m.compile(sw)
	if err != nil {
		return nil, err
	}
	if _, dup := m.installed[name]; dup {
		return nil, fmt.Errorf("%s: %w", name, ErrAlreadyInstalled)
	}
	if err := m.b.LoadDecodedObject(obj); err != nil {
		return nil, err
	}
	// The loaded-module set changed: inline caches, translated-tier
	// closures and cached demux decisions must not carry values across
	// the epoch.
	m.b.Loader.FlushAllICs()
	m.b.Loader.FlushAllTranslations()
	m.b.FlushFlowCache()
	sw.Name = name
	inst := &Installed{Manifest: sw, At: m.b.sim.Now(), Warnings: rep.Warnings()}
	m.installed[name] = inst
	m.order = append(m.order, name)
	m.lifecycle.Installs++
	return inst, nil
}

// Installed returns the record for an installed switchlet.
func (m *Manager) Installed(name string) (*Installed, bool) {
	inst, ok := m.installed[name]
	return inst, ok
}

// List returns the installed switchlets in installation order.
func (m *Manager) List() []*Installed {
	out := make([]*Installed, 0, len(m.order))
	for _, name := range m.order {
		out = append(out, m.installed[name])
	}
	return out
}

// Query invokes a Func-registry entry point with a string argument and
// returns its result rendered as a string — the administrative
// read-side of every switchlet ("ieee.tree", "control.phase", ...).
func (m *Manager) Query(fn, arg string) (string, error) {
	f, ok := m.b.Funcs.Lookup(fn)
	if !ok {
		return "", fmt.Errorf("%s: %w", fn, ErrNoSuchFunc)
	}
	v, err := m.b.Machine.Invoke(f, arg)
	if err != nil {
		return "", err
	}
	if s, ok := v.(string); ok {
		return s, nil
	}
	return vm.FormatValue(v), nil
}

// Uninstall retires a switchlet: its protocol is stopped if running, its
// declared timers are cancelled, its declared handlers and lifecycle
// entries leave the Func registry, its declared data-path claims
// (OwnsDataPath, DstBindings) are released, and its module leaves the
// link namespace. As in the paper, uninstalling is not revocation —
// values the switchlet already handed to other switchlets remain
// reachable; what it releases is exactly what the manifest declared.
func (m *Manager) Uninstall(name string) error {
	inst, ok := m.installed[name]
	if !ok {
		return fmt.Errorf("%s: %w", name, ErrNotInstalled)
	}
	lc := inst.Manifest.Lifecycle
	if lc.Running != "" && lc.Stop != "" {
		if running, err := m.Query(lc.Running, ""); err == nil && running == "yes" {
			if _, err := m.Query(lc.Stop, ""); err != nil {
				m.b.Log("manager: stop of " + inst.Manifest.Ref() + " trapped: " + err.Error())
			}
		}
	}
	for _, tm := range inst.Manifest.Timers {
		m.b.CancelTimer(tm)
	}
	if inst.Manifest.OwnsDataPath && m.latestDataPathOwner() == name {
		// Release the claim only if no later-installed switchlet has
		// replaced this one's handler: uninstalling a superseded claimer
		// (dumb after learning took over) must not blackhole the node.
		m.b.ClearHandler()
	}
	for _, addr := range inst.Manifest.DstBindings {
		m.b.ClearDstHandler(addr)
	}
	for _, h := range inst.Manifest.Handlers {
		m.b.Funcs.Unregister(h)
	}
	for _, h := range []string{lc.Start, lc.Stop, lc.Probe, lc.Running} {
		if h != "" {
			m.b.Funcs.Unregister(h)
		}
	}
	m.b.Loader.Unload(name)
	m.b.Loader.FlushAllICs()
	m.b.Loader.FlushAllTranslations()
	m.b.FlushFlowCache()
	delete(m.installed, name)
	for i, n := range m.order {
		if n == name {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	m.lifecycle.Uninstalls++
	return nil
}

// latestDataPathOwner returns the most recently installed switchlet
// declaring OwnsDataPath — the one whose handler currently owns the data
// path under the replace-on-install discipline.
func (m *Manager) latestDataPathOwner() string {
	for i := len(m.order) - 1; i >= 0; i-- {
		if m.installed[m.order[i]].Manifest.OwnsDataPath {
			return m.order[i]
		}
	}
	return ""
}

// UpgradeState is the phase of an in-flight or finished upgrade.
type UpgradeState int

const (
	// UpgradeValidating: the new switchlet is active and being watched;
	// the decision point has not arrived.
	UpgradeValidating UpgradeState = iota
	// UpgradeCommitted: validation passed; the new switchlet owns the
	// protocol.
	UpgradeCommitted
	// UpgradeRolledBack: a trap, a validation mismatch, late old-protocol
	// traffic, or an operator decision returned the node to the old
	// switchlet.
	UpgradeRolledBack
)

var upgradeStateNames = [...]string{"validating", "committed", "rolled-back"}

// String returns the state's stable name.
func (s UpgradeState) String() string {
	if int(s) >= len(upgradeStateNames) {
		return fmt.Sprintf("upgradestate(%d)", int(s))
	}
	return upgradeStateNames[s]
}

// UpgradeOptions tunes an upgrade's transition windows, mirroring the
// paper's Table 1 timings.
type UpgradeOptions struct {
	// SuppressFor is the window after handoff during which stray
	// old-protocol frames are absorbed silently (paper: 30 s). After it,
	// an old-protocol frame means the old protocol is still alive
	// somewhere — grounds for rollback.
	SuppressFor netsim.Duration
	// ValidateAfter is when the new protocol's probe is compared against
	// the state captured from the old one (paper: 60 s).
	ValidateAfter netsim.Duration
	// OldAddr, if non-zero, is the old protocol's multicast address; the
	// Manager guards it after handoff to implement suppression and
	// late-traffic fallback. Zero defaults to the old switchlet's
	// declared Lifecycle.ProtoAddr.
	OldAddr ethernet.MAC
	// NewAddr, if non-zero, is the new protocol's multicast address;
	// after a rollback it is claimed and drained so no further
	// transition can trigger without human intervention (the paper's
	// sticky-fallback rule). Zero defaults to the new switchlet's
	// declared Lifecycle.ProtoAddr.
	NewAddr ethernet.MAC
}

// DefaultUpgradeOptions returns the paper's transition windows: 30 s of
// suppression, validation at 60 s.
func DefaultUpgradeOptions() UpgradeOptions {
	return UpgradeOptions{
		SuppressFor:   30 * netsim.Second,
		ValidateAfter: 60 * netsim.Second,
	}
}

// Upgrade is one live-upgrade attempt: old and new switchlets
// co-resident, handler ownership handed off atomically in virtual time,
// and an automatic decision pending.
type Upgrade struct {
	m        *Manager
	old, new *Installed
	opts     UpgradeOptions

	// Captured is the old protocol's probe output at handoff — the
	// state the new protocol must reproduce.
	Captured string
	// Reason describes why the upgrade rolled back (empty otherwise).
	Reason string

	state      UpgradeState
	guardArmed bool // suppression window has elapsed
	suppressed int
}

// State returns the upgrade's current phase.
func (u *Upgrade) State() UpgradeState { return u.state }

// Suppressed reports how many stray old-protocol frames were absorbed.
func (u *Upgrade) Suppressed() int { return u.suppressed }

// Old returns the record of the switchlet being replaced.
func (u *Upgrade) Old() *Installed { return u.old }

// New returns the record of the replacement switchlet.
func (u *Upgrade) New() *Installed { return u.new }

// Upgrade installs next and atomically hands the protocol over from the
// installed switchlet oldName: capture the old probe, stop old, start
// new — all at one virtual instant. The upgrade then validates itself:
// at opts.ValidateAfter the new probe must equal the captured state or
// the node rolls back; a trap while starting the new switchlet rolls
// back immediately (the returned error describes the trap and the
// returned Upgrade records the rollback); stray old-protocol frames
// after the suppression window also roll back. This is the paper's
// DEC→IEEE transition (§5.4, Table 1) as a reusable primitive.
func (m *Manager) Upgrade(oldName string, next env.Manifest, opts UpgradeOptions) (*Upgrade, error) {
	old, ok := m.installed[oldName]
	if !ok {
		return nil, fmt.Errorf("%s: %w", oldName, ErrNotInstalled)
	}
	if !old.Manifest.Lifecycle.Complete() {
		return nil, fmt.Errorf("%s: %w", oldName, ErrNotUpgradable)
	}
	if !next.Lifecycle.Complete() {
		return nil, fmt.Errorf("%s: %w", next.Name, ErrNotUpgradable)
	}
	if opts.SuppressFor == 0 {
		opts.SuppressFor = DefaultUpgradeOptions().SuppressFor
	}
	if opts.ValidateAfter == 0 {
		opts.ValidateAfter = DefaultUpgradeOptions().ValidateAfter
	}
	if opts.OldAddr == (ethernet.MAC{}) {
		opts.OldAddr = old.Manifest.Lifecycle.ProtoAddr
	}
	if opts.NewAddr == (ethernet.MAC{}) {
		opts.NewAddr = next.Lifecycle.ProtoAddr
	}

	inst, err := m.Install(next)
	if err != nil {
		return nil, err
	}
	// From here on use inst.Manifest, not next: Install may have adopted
	// the module name from a precompiled object.
	newRef := inst.Manifest.Ref()
	u := &Upgrade{m: m, old: old, new: inst, opts: opts}

	captured, err := m.Query(old.Manifest.Lifecycle.Probe, "")
	if err != nil {
		_ = m.Uninstall(inst.Manifest.Name)
		return nil, fmt.Errorf("upgrade %s: probing old state: %w", oldName, err)
	}
	u.Captured = captured
	m.b.Log(fmt.Sprintf("manager: upgrading %s -> %s", old.Manifest.Ref(), newRef))

	// Atomic handoff: stop old, start new, guard the old address — no
	// virtual time passes between these calls.
	if _, err := m.Query(old.Manifest.Lifecycle.Stop, ""); err != nil {
		_ = m.Uninstall(inst.Manifest.Name)
		return nil, fmt.Errorf("upgrade %s: stopping old switchlet: %w", oldName, err)
	}
	m.lifecycle.Upgrades++
	if _, err := m.Query(inst.Manifest.Lifecycle.Start, ""); err != nil {
		u.rollback("start of " + newRef + " trapped: " + err.Error())
		m.upgrades = append(m.upgrades, u)
		return u, fmt.Errorf("upgrade %s: starting %s: %w (rolled back)", oldName, newRef, err)
	}
	if u.opts.OldAddr != (ethernet.MAC{}) {
		guard := FrameHandler{Name: "upgrade-guard", Native: u.onOldFrame}
		if err := m.b.SetDstHandler(u.opts.OldAddr, guard); err != nil {
			m.b.Log("manager: old-address guard not installed: " + err.Error())
		}
	}

	m.b.sim.After(opts.SuppressFor, func() {
		if u.state == UpgradeValidating {
			u.guardArmed = true
			m.b.Log("manager: suppression period over; monitoring for failures")
		}
	})
	m.b.sim.After(opts.ValidateAfter, func() { u.validate() })
	m.upgrades = append(m.upgrades, u)
	return u, nil
}

// onOldFrame is the native guard on the old protocol's address: absorb
// during suppression, fall back on late traffic.
func (u *Upgrade) onOldFrame(data []byte, inPort int) {
	if u.state != UpgradeValidating {
		return
	}
	if !u.guardArmed {
		u.suppressed++
		return
	}
	u.rollback("old-protocol packet after transition period")
}

// validate is the decision point: the new protocol must have reproduced
// the captured old state.
func (u *Upgrade) validate() {
	if u.state != UpgradeValidating {
		return
	}
	probe, err := u.m.Query(u.new.Manifest.Lifecycle.Probe, "")
	if err != nil {
		u.rollback("probe of " + u.new.Manifest.Ref() + " trapped: " + err.Error())
		return
	}
	if probe != u.Captured {
		u.rollback("state mismatch: new " + probe + " expected " + u.Captured)
		return
	}
	u.state = UpgradeCommitted
	u.m.lifecycle.Commits++
	u.releaseGuard()
	u.m.b.Log("manager: upgrade to " + u.new.Manifest.Ref() + " committed")
}

// Rollback returns the node to the old switchlet: stop new, restart old.
// It is the automatic failure path and also the operator's undo — legal
// while validating and after a commit, idempotent once rolled back.
func (u *Upgrade) Rollback(reason string) error {
	if u.state == UpgradeRolledBack {
		return nil
	}
	u.rollback(reason)
	return nil
}

func (u *Upgrade) rollback(reason string) {
	if u.state == UpgradeRolledBack {
		return
	}
	u.state = UpgradeRolledBack
	u.Reason = reason
	u.m.lifecycle.Rollbacks++
	u.m.b.Loader.FlushAllICs()
	u.m.b.Loader.FlushAllTranslations()
	u.m.b.FlushFlowCache()
	u.m.b.Log("manager: ROLLBACK (" + reason + ")")
	if te := u.m.b.sim.TraceEngine(); te != nil {
		u.m.b.traceEvent(tracing.KindMark, 0, "rollback: "+reason)
		te.DumpFlight("rollback at "+u.m.b.Name+": "+reason, int64(u.m.b.sim.Now()))
	}
	u.releaseGuard()
	if _, err := u.m.Query(u.new.Manifest.Lifecycle.Stop, ""); err != nil {
		u.m.b.Log("manager: stop of " + u.new.Manifest.Ref() + " trapped: " + err.Error())
	}
	if _, err := u.m.Query(u.old.Manifest.Lifecycle.Start, ""); err != nil {
		u.m.b.Log("manager: restart of " + u.old.Manifest.Ref() + " trapped: " + err.Error())
	}
	if u.opts.NewAddr != (ethernet.MAC{}) {
		// Sticky fallback: claim the new protocol's address and drain it
		// so no further transition can trigger without human
		// intervention.
		swallow := FrameHandler{Name: "fallback-drain", Native: func([]byte, int) {}}
		if err := u.m.b.SetDstHandler(u.opts.NewAddr, swallow); err != nil {
			u.m.b.Log("manager: fallback drain not installed: " + err.Error())
		}
	}
}

// releaseGuard removes the old-address guard if this upgrade owns it.
func (u *Upgrade) releaseGuard() {
	if u.opts.OldAddr == (ethernet.MAC{}) {
		return
	}
	if h, ok := u.m.b.dstHandlers[u.opts.OldAddr]; ok && h.Name == "upgrade-guard" {
		u.m.b.ClearDstHandler(u.opts.OldAddr)
	}
}

// LastUpgrade returns the most recent upgrade attempt, or nil.
func (m *Manager) LastUpgrade() *Upgrade {
	if len(m.upgrades) == 0 {
		return nil
	}
	return m.upgrades[len(m.upgrades)-1]
}

// Rollback undoes the most recent upgrade (see Upgrade.Rollback).
func (m *Manager) Rollback(reason string) error {
	u := m.LastUpgrade()
	if u == nil {
		return fmt.Errorf("rollback: %w", ErrNotInstalled)
	}
	return u.Rollback(reason)
}

// NoteFault tells the Manager a fault touched this node — a port lost
// carrier, a link the node depends on flapped. Any upgrade still in its
// validation window rolls back: its probe comparison would be measured
// across the fault, and a transition must not commit on evidence the
// network corrupted. This is what makes Upgrade validation fault-aware.
func (m *Manager) NoteFault(reason string) {
	for _, u := range m.upgrades {
		if u.state == UpgradeValidating {
			u.rollback("fault during validation window: " + reason)
		}
	}
}

// noteCrash snapshots the Manager's state at the instant of a fault-plane
// crash, while the machine is still answerable. Validating upgrades are
// marked rolled back directly — the node is dying, so the usual
// stop-new/start-old choreography is meaningless; what matters is that
// the snapshot records the OLD switchlet as the one to restore, and that
// the upgrade can never commit from a post-restart validate() fire.
func (m *Manager) noteCrash() {
	cs := &crashState{}
	exclude := map[string]bool{}
	forceRun := map[string]bool{}
	for _, u := range m.upgrades {
		if u.state != UpgradeValidating {
			continue
		}
		u.state = UpgradeRolledBack
		u.Reason = "bridge crashed during validation window"
		m.lifecycle.Rollbacks++
		m.b.Log("manager: ROLLBACK (" + u.Reason + ")")
		exclude[u.new.Manifest.Name] = true
		forceRun[u.old.Manifest.Name] = true
	}
	for _, name := range m.order {
		if exclude[name] {
			continue
		}
		inst := m.installed[name]
		cs.manifests = append(cs.manifests, inst.Manifest)
		lc := inst.Manifest.Lifecycle
		running := forceRun[name]
		if !running && lc.Running != "" {
			if ans, err := m.Query(lc.Running, ""); err == nil && ans == "yes" {
				running = true
			}
		}
		if running && lc.Start != "" {
			cs.running = append(cs.running, name)
		}
	}
	m.crash = cs
}

// coldRestart rebuilds the node from the crash snapshot: wipe the whole
// switchlet namespace (the VM heap died with the node), re-install every
// snapshotted manifest in order, and restart the protocols that were
// running. Switchlets that arrived outside the Manager — netloaded over
// TFTP, or natively installed — are not in the snapshot and stay gone.
// Returns the first re-install or restart error; the rebuild continues
// past failures so one bad switchlet does not block the rest.
func (m *Manager) coldRestart() error {
	cs := m.crash
	m.crash = nil
	// Wholesale wipe, newest first: unregister everything each manifest
	// declared and unload its module. Timers were already cleared by the
	// crash; dst registrations and the data-path handler are wiped below.
	for i := len(m.order) - 1; i >= 0; i-- {
		inst := m.installed[m.order[i]]
		for _, h := range inst.Manifest.Handlers {
			m.b.Funcs.Unregister(h)
		}
		lc := inst.Manifest.Lifecycle
		for _, h := range []string{lc.Start, lc.Stop, lc.Probe, lc.Running} {
			if h != "" {
				m.b.Funcs.Unregister(h)
			}
		}
		m.b.Loader.Unload(m.order[i])
	}
	m.installed = map[string]*Installed{}
	m.order = nil
	m.b.ClearHandler()
	m.b.clearAllDstHandlers()
	if cs == nil {
		return nil
	}
	var firstErr error
	for _, sw := range cs.manifests {
		if _, err := m.Install(sw); err != nil {
			m.b.Log("manager: restart re-install of " + sw.Ref() + " failed: " + err.Error())
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	for _, name := range cs.running {
		inst, ok := m.installed[name]
		if !ok {
			continue // its re-install failed above
		}
		if _, err := m.Query(inst.Manifest.Lifecycle.Start, ""); err != nil {
			m.b.Log("manager: restart of " + inst.Manifest.Ref() + " trapped: " + err.Error())
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}
