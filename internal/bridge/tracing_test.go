package bridge

import (
	"strings"
	"testing"

	"github.com/switchware/activebridge/internal/netsim"
	"github.com/switchware/activebridge/internal/tracing"
)

// traceRig attaches a full-sampling tracer to a fresh rig's engine.
func traceRig(t *testing.T) (*rig, *tracing.Tracer) {
	t.Helper()
	r := newRig(t)
	tr := tracing.New(tracing.Config{Seed: 5, SampleProb: 1})
	r.sim.SetTraceEngine(tr.Engine(0))
	r.sim.OnQuiesce(tr.Flush)
	return r, tr
}

func kinds(evs []tracing.Event) map[tracing.Kind]int {
	m := map[tracing.Kind]int{}
	for _, ev := range evs {
		m[ev.Kind]++
	}
	return m
}

// The happy frame path must leave a complete causal record: NIC send,
// wire transit, receive, demux decision, VM execution and verdict, all
// under one trace ID.
func TestTracedFramePathEvents(t *testing.T) {
	r, tr := traceRig(t)
	r.load(t, "Forward", `
let handle pkt inport = Unixnet.send_pkt_out (1 - inport) pkt
let _ = Bridge.set_handler handle`)
	r.sim.Schedule(r.sim.Now()+1, func() { r.sendFrom1(t, r.n2.MAC, 64) })
	r.run(50 * netsim.Millisecond)
	if r.rx2 != 1 {
		t.Fatalf("frame not forwarded: rx2 = %d", r.rx2)
	}
	evs := tr.Transcript()
	have := kinds(evs)
	for _, k := range []tracing.Kind{tracing.KindSend, tracing.KindWire, tracing.KindRx, tracing.KindDemux, tracing.KindVM, tracing.KindVerdict} {
		if have[k] == 0 {
			t.Errorf("transcript missing %s event (have %v)", k, have)
		}
	}
	var traceID uint64
	for _, ev := range evs {
		if traceID == 0 {
			traceID = ev.Trace
		}
		if ev.Trace != traceID {
			t.Fatalf("transcript spans multiple trace IDs: %x and %x", traceID, ev.Trace)
		}
	}
	for _, ev := range evs {
		if ev.Kind == tracing.KindVM {
			if !strings.Contains(ev.Detail, "handler=vm-default") || !strings.Contains(ev.Detail, "steps=") {
				t.Errorf("vm event detail lacks handler/steps: %q", ev.Detail)
			}
		}
		if ev.Kind == tracing.KindVerdict && !strings.Contains(ev.Detail, "forward") {
			t.Errorf("verdict detail = %q, want forward", ev.Detail)
		}
	}
	if tr.DumpCount() != 0 {
		t.Errorf("healthy run produced %d flight dumps", tr.DumpCount())
	}
}

// A switchlet that exhausts its fuel must trap, and the trap must write
// a flight-recorder post-mortem whose tail contains the trap itself.
func TestVMTrapDumpsFlightRecorder(t *testing.T) {
	r, tr := traceRig(t)
	r.load(t, "Spin", `
let rec loop x = loop x
let handle pkt inport = loop 0
let _ = Bridge.set_handler handle`)
	r.sim.Schedule(r.sim.Now()+1, func() { r.sendFrom1(t, r.n2.MAC, 64) })
	r.run(50 * netsim.Millisecond)
	if r.b.Stats.HandlerTraps != 1 {
		t.Fatalf("traps = %d, want 1", r.b.Stats.HandlerTraps)
	}
	dumps := tr.FlightDumps()
	if len(dumps) == 0 {
		t.Fatal("trap produced no flight-recorder dump")
	}
	d := dumps[0]
	if !strings.Contains(d.Reason, "vm trap") || !strings.Contains(d.Reason, "br") {
		t.Errorf("dump reason = %q, want vm trap at br", d.Reason)
	}
	have := kinds(d.Events)
	if have[tracing.KindTrap] == 0 {
		t.Errorf("dump lacks the trap event itself (have %v)", have)
	}
	if have[tracing.KindSend] == 0 || have[tracing.KindRx] == 0 {
		t.Errorf("dump lacks the frame's causal prefix (have %v)", have)
	}
	var sb strings.Builder
	tr.RenderDumps(&sb)
	if !strings.Contains(sb.String(), "trap") {
		t.Errorf("rendered dump missing trap line:\n%s", sb.String())
	}
	// The traced verdict for the trapped frame is a drop, not a forward.
	for _, ev := range tr.Transcript() {
		if ev.Kind == tracing.KindVerdict && ev.Detail != "trap-drop" {
			t.Errorf("verdict = %q, want trap-drop", ev.Detail)
		}
	}
}

// A rejected switchlet load is a post-mortem moment too: the loader must
// mark the transcript and dump the flight ring.
func TestLoadRejectDumpsFlightRecorder(t *testing.T) {
	r, tr := traceRig(t)
	if err := r.b.LoadObjectBytes([]byte("not a switchlet object")); err == nil {
		t.Fatal("garbage object loaded without error")
	}
	r.run(netsim.Millisecond)
	dumps := tr.FlightDumps()
	if len(dumps) == 0 {
		t.Fatal("load rejection produced no flight dump")
	}
	if !strings.Contains(dumps[0].Reason, "load rejected") {
		t.Errorf("dump reason = %q, want switchlet load rejected", dumps[0].Reason)
	}
	// The reject happens outside any traced frame, so its mark carries no
	// sampled trace ID: it must appear in the flight ring, not the
	// transcript.
	found := false
	for _, ev := range dumps[0].Events {
		if ev.Kind == tracing.KindMark && strings.Contains(ev.Detail, "load-reject") {
			found = true
		}
	}
	if !found {
		t.Error("flight dump lacks load-reject mark")
	}
}
