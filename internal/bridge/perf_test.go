package bridge

import (
	"testing"

	"github.com/switchware/activebridge/internal/ethernet"
	"github.com/switchware/activebridge/internal/netsim"
)

// forwardSwitchlet is the minimal VM data path: receive a frame, send it
// out the other port — the inner loop of every forwarding experiment.
const forwardSwitchlet = `
let handle pkt inport = Unixnet.send_pkt_out (1 - inport) pkt
let _ = Bridge.set_handler handle
`

// TestFrameDispatchAllocBudget is the allocation-budget regression test
// for the bridge frame path: steady-state VM forwarding of one frame —
// kernel-cost accounting, VM invocation, pooled send collection, CPU
// completion, transmit and delivery — must stay within a tiny constant
// budget. The budget is 0: the frame-string and port-number boxes come
// from the bridge's slab boxers, whose one allocation per 128 values
// rounds to zero in AllocsPerRun's integral average. Before the
// zero-allocation overhaul this path cost hundreds of allocations per
// frame; before the optimizing-tier PR it was 2 (frame-string box and
// invoke residue).
func TestFrameDispatchAllocBudget(t *testing.T) {
	r := newRig(t)
	r.load(t, "Fwd", forwardSwitchlet)

	fr := ethernet.Frame{Dst: r.n2.MAC, Src: r.n1.MAC, Type: ethernet.TypeTest, Payload: make([]byte, 1024)}
	raw, err := fr.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	cycle := func() {
		r.n1.Send(raw)
		r.sim.RunAll()
	}
	cycle() // warm pools, arena, heap slab
	allocs := testing.AllocsPerRun(500, cycle)
	if allocs > 0 {
		t.Fatalf("steady-state frame dispatch allocs/frame = %v, want 0", allocs)
	}
	if r.rx2 == 0 {
		t.Fatal("no frames forwarded")
	}
}

// TestForwardingFastPathReusesFrame verifies the forwarding fast path
// sends the identical bytes it received (FCS preserved, no re-marshal):
// the frame arriving at the far station must be byte-identical to the one
// sent, including its checksum.
func TestForwardingFastPathReusesFrame(t *testing.T) {
	r := newRig(t)
	r.load(t, "Fwd", forwardSwitchlet)

	fr := ethernet.Frame{Dst: r.n2.MAC, Src: r.n1.MAC, Type: ethernet.TypeTest, Payload: []byte{9, 8, 7, 6}}
	raw, err := fr.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	r.n2.SetRecv(func(_ *netsim.NIC, b []byte) { got = append([]byte(nil), b...) })
	r.sim.Schedule(r.sim.Now()+1, func() { r.n1.Send(raw) })
	r.run(50 * netsim.Millisecond)
	if got == nil {
		t.Fatal("frame not forwarded")
	}
	if string(got) != string(raw) {
		t.Fatalf("forwarded frame differs from original:\n got %x\nwant %x", got, raw)
	}
}

// TestUnicastFastPathStillHonorsDstHandlers guards the map-skip: unicast
// destination registrations must still intercept frames when present.
func TestUnicastFastPathStillHonorsDstHandlers(t *testing.T) {
	r := newRig(t)
	r.load(t, "Fwd", forwardSwitchlet)
	hits := 0
	target := ethernet.MAC{2, 0, 0, 0, 0, 9}
	probe := FrameHandler{Name: "probe", Native: func([]byte, int) { hits++ }}
	if err := r.b.SetDstHandler(target, probe); err != nil {
		t.Fatal(err)
	}
	r.sim.Schedule(r.sim.Now()+1, func() { r.sendFrom1(t, target, 64) })
	r.run(50 * netsim.Millisecond)
	if hits != 1 {
		t.Fatalf("unicast dst handler hits = %d, want 1", hits)
	}
	// And clearing it restores the default path.
	r.b.ClearDstHandler(target)
	r.sim.Schedule(r.sim.Now()+1, func() { r.sendFrom1(t, target, 64) })
	r.run(50 * netsim.Millisecond)
	if hits != 1 {
		t.Fatalf("cleared dst handler still firing: hits = %d", hits)
	}
	if r.rx2 < 1 {
		t.Fatal("default handler did not forward after clear")
	}
}

// BenchmarkBridgeForward measures the full per-frame bridge pipeline:
// NIC receive, demux, VM switchlet execution, send collection, CPU
// completion and transmission.
func BenchmarkBridgeForward(b *testing.B) {
	sim := netsim.New()
	br := New(sim, "br", 1, 2, netsim.DefaultCostModel())
	lan1 := netsim.NewSegment(sim, "lan1")
	lan2 := netsim.NewSegment(sim, "lan2")
	n1 := netsim.NewNIC(sim, "n1", ethernet.MAC{2, 0, 0, 0, 0, 1})
	n2 := netsim.NewNIC(sim, "n2", ethernet.MAC{2, 0, 0, 0, 0, 2})
	n1.Promiscuous = true
	n2.Promiscuous = true
	n1.SetRecv(func(*netsim.NIC, []byte) {})
	n2.SetRecv(func(*netsim.NIC, []byte) {})
	lan1.Attach(n1)
	lan1.Attach(br.Port(0))
	lan2.Attach(n2)
	lan2.Attach(br.Port(1))
	if err := br.CompileAndLoad("Fwd", forwardSwitchlet); err != nil {
		b.Fatal(err)
	}
	fr := ethernet.Frame{Dst: ethernet.MAC{2, 0, 0, 0, 0, 2}, Src: ethernet.MAC{2, 0, 0, 0, 0, 1}, Type: ethernet.TypeTest, Payload: make([]byte, 1024)}
	raw, err := fr.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n1.Send(raw)
		sim.RunAll()
	}
}
