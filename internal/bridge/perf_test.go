package bridge

import (
	"testing"

	"github.com/switchware/activebridge/internal/ethernet"
	"github.com/switchware/activebridge/internal/netsim"
)

// forwardSwitchlet is the minimal VM data path: receive a frame, send it
// out the other port — the inner loop of every forwarding experiment.
const forwardSwitchlet = `
let handle pkt inport = Unixnet.send_pkt_out (1 - inport) pkt
let _ = Bridge.set_handler handle
`

// TestFrameDispatchAllocBudget is the allocation-budget regression test
// for the bridge frame path: steady-state VM forwarding of one frame —
// kernel-cost accounting, VM invocation, pooled send collection, CPU
// completion, transmit and delivery — must stay within a tiny constant
// budget. The budget is 0: the frame-string and port-number boxes come
// from the bridge's slab boxers, whose one allocation per 128 values
// rounds to zero in AllocsPerRun's integral average. Before the
// zero-allocation overhaul this path cost hundreds of allocations per
// frame; before the optimizing-tier PR it was 2 (frame-string box and
// invoke residue).
func TestFrameDispatchAllocBudget(t *testing.T) {
	r := newRig(t)
	r.load(t, "Fwd", forwardSwitchlet)

	fr := ethernet.Frame{Dst: r.n2.MAC, Src: r.n1.MAC, Type: ethernet.TypeTest, Payload: make([]byte, 1024)}
	raw, err := fr.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	cycle := func() {
		r.n1.Send(raw)
		r.sim.RunAll()
	}
	cycle() // warm pools, arena, heap slab
	allocs := testing.AllocsPerRun(500, cycle)
	if allocs > 0 {
		t.Fatalf("steady-state frame dispatch allocs/frame = %v, want 0", allocs)
	}
	if r.rx2 == 0 {
		t.Fatal("no frames forwarded")
	}
}

// TestForwardingFastPathReusesFrame verifies the forwarding fast path
// sends the identical bytes it received (FCS preserved, no re-marshal):
// the frame arriving at the far station must be byte-identical to the one
// sent, including its checksum.
func TestForwardingFastPathReusesFrame(t *testing.T) {
	r := newRig(t)
	r.load(t, "Fwd", forwardSwitchlet)

	fr := ethernet.Frame{Dst: r.n2.MAC, Src: r.n1.MAC, Type: ethernet.TypeTest, Payload: []byte{9, 8, 7, 6}}
	raw, err := fr.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	r.n2.SetRecv(func(_ *netsim.NIC, b []byte) { got = append([]byte(nil), b...) })
	r.sim.Schedule(r.sim.Now()+1, func() { r.n1.Send(raw) })
	r.run(50 * netsim.Millisecond)
	if got == nil {
		t.Fatal("frame not forwarded")
	}
	if string(got) != string(raw) {
		t.Fatalf("forwarded frame differs from original:\n got %x\nwant %x", got, raw)
	}
}

// TestUnicastFastPathStillHonorsDstHandlers guards the map-skip: unicast
// destination registrations must still intercept frames when present.
func TestUnicastFastPathStillHonorsDstHandlers(t *testing.T) {
	r := newRig(t)
	r.load(t, "Fwd", forwardSwitchlet)
	hits := 0
	target := ethernet.MAC{2, 0, 0, 0, 0, 9}
	probe := FrameHandler{Name: "probe", Native: func([]byte, int) { hits++ }}
	if err := r.b.SetDstHandler(target, probe); err != nil {
		t.Fatal(err)
	}
	r.sim.Schedule(r.sim.Now()+1, func() { r.sendFrom1(t, target, 64) })
	r.run(50 * netsim.Millisecond)
	if hits != 1 {
		t.Fatalf("unicast dst handler hits = %d, want 1", hits)
	}
	// And clearing it restores the default path.
	r.b.ClearDstHandler(target)
	r.sim.Schedule(r.sim.Now()+1, func() { r.sendFrom1(t, target, 64) })
	r.run(50 * netsim.Millisecond)
	if hits != 1 {
		t.Fatalf("cleared dst handler still firing: hits = %d", hits)
	}
	if r.rx2 < 1 {
		t.Fatal("default handler did not forward after clear")
	}
}

// TestTranslatedHandlerAllocBudget pins the -O2 contract on the frame
// path: once a handler chunk crosses the hot threshold and runs as a
// translated closure, steady-state forwarding still allocates nothing
// per op. The translation itself (built once, cached on the module) is
// paid during warmup; the fused kernels read arguments straight from
// their sources and pre-box their constants, so a tier-2 frame entry
// touches the heap exactly as much as a tier-1 one: not at all.
func TestTranslatedHandlerAllocBudget(t *testing.T) {
	if DefaultOptLevel < 2 {
		t.Skipf("DefaultOptLevel = %d: translated tier off", DefaultOptLevel)
	}
	r := newRig(t)
	r.load(t, "Fwd", forwardSwitchlet)
	fr := ethernet.Frame{Dst: r.n2.MAC, Src: r.n1.MAC, Type: ethernet.TypeTest, Payload: make([]byte, 1024)}
	raw, err := fr.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	const frames = 8
	cycle := func() {
		for i := 0; i < frames; i++ {
			r.n1.Send(raw)
		}
		r.sim.RunAll()
	}
	// Warm well past the hot threshold so the handler is translated
	// before anything is measured.
	for i := 0; i < 8; i++ {
		cycle()
	}
	tier2 := r.b.Machine.TierEnters[2]
	if tier2 == 0 {
		t.Fatal("handler never entered the translated tier after warmup")
	}
	allocs := testing.AllocsPerRun(200, cycle)
	if allocs > 0 {
		t.Fatalf("translated steady state allocs = %v per %d frames, want 0", allocs, frames)
	}
	if r.b.Machine.TierEnters[2] == tier2 {
		t.Fatal("translated tier not resident during the measured runs")
	}
	if r.rx2 == 0 {
		t.Fatal("no frames forwarded")
	}
}

// TestFlowCacheHitAllocBudget pins the flow cache's fast-path cost: a
// demux decision served from the cache adds zero allocations per frame.
// The entry is a fixed-size slot in a direct-mapped array keyed by the
// destination address — a hit is two loads and a compare, no map access
// and no heap traffic.
func TestFlowCacheHitAllocBudget(t *testing.T) {
	r := newRig(t)
	r.load(t, "Fwd", forwardSwitchlet)
	fr := ethernet.Frame{Dst: r.n2.MAC, Src: r.n1.MAC, Type: ethernet.TypeTest, Payload: make([]byte, 256)}
	raw, err := fr.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	cycle := func() {
		for i := 0; i < 4; i++ {
			r.n1.Send(raw)
		}
		r.sim.RunAll()
	}
	cycle() // miss once, warm pools and the cache line
	hits := r.b.Stats.FlowCacheHits
	allocs := testing.AllocsPerRun(300, cycle)
	if allocs > 0 {
		t.Fatalf("flow-cache-hit steady state allocs = %v per 4 frames, want 0", allocs)
	}
	if r.b.Stats.FlowCacheHits == hits {
		t.Fatal("flow cache not exercised during the measured runs")
	}
	if r.rx2 == 0 {
		t.Fatal("no frames forwarded")
	}
}

// BenchmarkBridgeForward measures the full per-frame bridge pipeline:
// NIC receive, demux, VM switchlet execution, send collection, CPU
// completion and transmission.
func BenchmarkBridgeForward(b *testing.B) {
	sim := netsim.New()
	br := New(sim, "br", 1, 2, netsim.DefaultCostModel())
	lan1 := netsim.NewSegment(sim, "lan1")
	lan2 := netsim.NewSegment(sim, "lan2")
	n1 := netsim.NewNIC(sim, "n1", ethernet.MAC{2, 0, 0, 0, 0, 1})
	n2 := netsim.NewNIC(sim, "n2", ethernet.MAC{2, 0, 0, 0, 0, 2})
	n1.Promiscuous = true
	n2.Promiscuous = true
	n1.SetRecv(func(*netsim.NIC, []byte) {})
	n2.SetRecv(func(*netsim.NIC, []byte) {})
	lan1.Attach(n1)
	lan1.Attach(br.Port(0))
	lan2.Attach(n2)
	lan2.Attach(br.Port(1))
	if err := br.CompileAndLoad("Fwd", forwardSwitchlet); err != nil {
		b.Fatal(err)
	}
	fr := ethernet.Frame{Dst: ethernet.MAC{2, 0, 0, 0, 0, 2}, Src: ethernet.MAC{2, 0, 0, 0, 0, 1}, Type: ethernet.TypeTest, Payload: make([]byte, 1024)}
	raw, err := fr.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n1.Send(raw)
		sim.RunAll()
	}
}
