// Package bridge implements the Active Bridge node: a simulated network
// element whose forwarding behaviour is supplied entirely by dynamically
// loaded switchlets (paper §5). The runtime provides:
//
//   - the switchlet loader (vm.Loader) with the thinned environment
//     installed (internal/env);
//   - the frame pump: NIC receive -> demultiplexer -> handler, with the
//     Figure 5 cost pipeline charged to the node's CPU (kernel crossing,
//     VM interpretation or native dispatch, kernel send path);
//   - destination-MAC registrations (how the spanning tree switchlet
//     claims the All Bridges multicast address) and the default handler
//     (how the dumb bridge and then the learning bridge claim the data
//     path, each replacing its predecessor);
//   - named periodic timers and one-shot callbacks for protocol machinery;
//   - the network switchlet loader: Ethernet -> minimal IPv4 -> minimal
//     UDP -> write-only TFTP (paper §5.2), so new switchlets arrive over
//     the simulated LAN.
//
// A bridge with no switchlets loaded forwards nothing: behaviour is code,
// and the code is loaded.
package bridge

import (
	"fmt"
	"unsafe"

	"github.com/switchware/activebridge/internal/env"
	"github.com/switchware/activebridge/internal/ethernet"
	"github.com/switchware/activebridge/internal/netsim"
	"github.com/switchware/activebridge/internal/tracing"
	"github.com/switchware/activebridge/internal/vm"
)

// FrameHandler is a registered packet processor: either a switchlet
// function (VM) or a native-code switchlet (the paper's envisioned
// native-compilation optimization, used here as an ablation baseline).
type FrameHandler struct {
	VM     vm.Value
	Native func(data []byte, inPort int)
	// Name identifies the handler in logs and stats.
	Name string
}

func (h FrameHandler) empty() bool { return h.VM == nil && h.Native == nil }

type timerState struct {
	name   string
	period netsim.Duration
	fn     vm.Value
	native func()
	gen    uint64
}

type pendingSend struct {
	port int
	data []byte
	ctl  bool
}

// Stats aggregates the node's observable behaviour.
type Stats struct {
	FramesIn        uint64
	FramesDelivered uint64 // frames handed to some handler
	FramesSent      uint64
	InputSuppressed uint64 // arrived on a blocked port, no dst handler
	OutputBlocked   uint64 // sends dropped due to port blocking
	NoHandlerDrops  uint64 // no switchlet claimed the frame
	HandlerTraps    uint64 // runtime failures inside switchlet code
	FlowCacheHits   uint64 // demux decisions served from the flow cache
	FlowCacheMisses uint64 // demux decisions resolved through the maps
	TimerFires      uint64
	Crashes         uint64 // fault-plane crashes of this node
	Restarts        uint64 // fault-plane cold restarts of this node
	VMTime          netsim.Duration
	KernelTime      netsim.Duration
}

// PathSample is the per-stage cost decomposition of one forwarded frame
// (paper Figure 5 / §7.2 instrumentation).
type PathSample struct {
	When       netsim.Time
	FrameLen   int
	KernelRecv netsim.Duration
	Exec       netsim.Duration
	KernelSend netsim.Duration
	Sends      int
}

// Bridge is one active network element.
type Bridge struct {
	Name string

	sim  *netsim.Sim
	cost netsim.CostModel
	cpu  *netsim.CPU
	mac  ethernet.MAC

	ports   []*netsim.NIC
	blocked []bool

	Machine *vm.Machine
	Loader  *vm.Loader
	Funcs   *env.FuncRegistry

	// manager is the lazily created switchlet lifecycle manager.
	manager *Manager

	defaultHandler FrameHandler
	dstHandlers    map[ethernet.MAC]FrameHandler
	// unicastDsts counts non-multicast registrations in dstHandlers. In
	// steady-state forwarding every data frame has a unicast destination
	// while registrations are almost always multicast (the All Bridges
	// address), so the per-frame map lookup is skipped entirely.
	unicastDsts int
	// flowCache memoizes the destination-demux decision (handler, isDst)
	// per dst MAC, generation-stamped: any mutation of the handler set
	// bumps flowGen, invalidating every entry at once. Port blocking is
	// deliberately NOT cached — it depends on the input port and is
	// checked per frame, so SetPortBlock needs no invalidation.
	flowCache [flowCacheLen]flowEntry
	flowGen   uint64
	timers    map[string]*timerState

	inDispatch   bool
	pendingSends []pendingSend
	spawnQueue   []vm.Value
	// lastVMCost is the metered cost of the most recent VM dispatch.
	lastVMCost netsim.Duration

	// sendBufs is a free-list of pendingSend buffers; each dispatch
	// borrows one and returns it after its sends are emitted.
	sendBufs [][]pendingSend
	// doneQueue holds collected send lists awaiting their CPU completion.
	// CPU completions fire in submission order (the CPU is a FIFO
	// resource), so the frame path can use one cached callback
	// (emitHeadFn) instead of allocating a closure per frame.
	doneQueue     [][]pendingSend
	doneQueueHead int
	emitHeadFn    func()
	// frameArgs is the reusable argument buffer for frame dispatches
	// (the VM does not retain it).
	frameArgs [2]vm.Value
	// argBoxes amortizes the per-frame interface boxing of the frame
	// string and port number arguments.
	strBox vm.StrBoxer
	intBox vm.IntBoxer
	// lastFrameRaw/lastFrameVal memoize the boxed frame-string argument:
	// when the same buffer is dispatched again (the steady-state stream
	// case — the sender re-uses its template encoding), the immutable
	// boxed value is reused instead of boxed afresh. Holding the buffer
	// reference keeps the identity test sound against address reuse.
	lastFrameRaw []byte
	lastFrameVal vm.Value
	// portVals are the boxed per-port integers for frame dispatch.
	portVals []vm.Value
	// curRaw is the frame being dispatched; a switchlet send of the
	// identical bytes (the forwarding fast path) reuses this buffer
	// instead of copying and re-validating the FCS.
	curRaw []byte

	// LogSink receives switchlet log output; nil discards.
	LogSink func(at netsim.Time, bridge, msg string)

	// LastPath records the most recent frame's cost decomposition when
	// TracePath is set.
	TracePath bool
	LastPath  PathSample

	Stats Stats

	netLoader *netLoader

	// --- fault plane ---
	// crashed freezes the node: ports dead, dispatches suppressed.
	crashed bool
	// epoch invalidates callbacks scheduled before a crash: timers,
	// After() one-shots, spawns and CPU completions all capture it and
	// die silently if the node crashed since they were scheduled.
	epoch uint64
	// discardEmits counts CPU frame completions whose queued sends were
	// dropped by a crash; emitHead consumes them as no-ops so the FIFO
	// stays aligned with doneQueue.
	discardEmits int
	// timerGen issues never-reused timer generations, so a timer name
	// recreated after a crash cannot be fired by a stale pre-crash arm.
	timerGen uint64
	// txqDrops is one overflow-notification cell per port, written only
	// by that port's transmit-queue owner (the NIC's engine, or the
	// segment owner's on a cut) and read at quiescent points.
	txqDrops []uint64
}

// IdentityMAC derives the bridge identity address from the id byte:
// 02:bb:00:00:<id>:00. New and topology validation share this single
// definition.
func IdentityMAC(id byte) ethernet.MAC {
	return ethernet.MAC{0x02, 0xbb, 0x00, 0x00, id, 0x00}
}

// New creates a bridge with the given number of ports. MACs are derived
// from the id byte (IdentityMAC) and ports share the identity address
// (transparent bridges do not source data frames).
// DefaultOptLevel is the switchlet optimization level new bridges adopt
// (0 naive bytecode, 1 quickened, 2 translated-to-Go-closures). Virtual
// time is identical at every level; the knob exists so benchmarks and
// differential tests can measure the tiers against each other. Set it
// before constructing bridges — it is read once per New and not
// synchronized.
var DefaultOptLevel = 2

// DisableFlowCache turns off the per-destination demux cache on every
// bridge (a differential-testing knob: cached and uncached runs must be
// byte-identical). Like DefaultOptLevel it is read per frame and not
// synchronized; toggle it only between runs.
var DisableFlowCache = false

// flowCacheLen is the direct-mapped flow cache size (power of two). Small
// on purpose: steady-state forwarding touches a handful of destinations,
// and misses just fall back to the map path.
const flowCacheLen = 64

// flowEntry is one cached demux decision, valid while gen matches the
// bridge's flowGen.
type flowEntry struct {
	gen   uint64
	dst   ethernet.MAC
	h     FrameHandler
	isDst bool
}

// flowIdx maps a destination MAC to its cache slot.
func flowIdx(dst ethernet.MAC) uint64 {
	u := dst.Uint64()
	return (u ^ u>>16 ^ u>>32) & (flowCacheLen - 1)
}

// FlushFlowCache invalidates every cached demux decision. The handler
// mutators call it internally; the Manager also calls it at lifecycle
// epochs, mirroring the VM-side cache flushes.
func (b *Bridge) FlushFlowCache() { b.flowGen++ }

func New(sim *netsim.Sim, name string, id byte, numPorts int, cost netsim.CostModel) *Bridge {
	b := &Bridge{
		Name:        name,
		sim:         sim,
		cost:        cost,
		cpu:         netsim.NewCPU(sim),
		mac:         IdentityMAC(id),
		dstHandlers: map[ethernet.MAC]FrameHandler{},
		timers:      map[string]*timerState{},
		// Generation 0 is reserved so the zero-value cache entries can
		// never read as valid (a frame to the all-zero MAC must still
		// resolve through the maps).
		flowGen: 1,
	}
	b.emitHeadFn = b.emitHead
	b.Machine = vm.NewMachine()
	b.Machine.Trace = vmTraceSink{b}
	b.Loader = vm.StdLoader(b.Machine)
	b.Loader.OptLevel = DefaultOptLevel
	b.Funcs = env.NewFuncRegistry()
	if err := env.Install(b.Loader, b, b.Funcs); err != nil {
		panic(err) // static environment construction cannot fail
	}
	b.txqDrops = make([]uint64, numPorts)
	b.portVals = make([]vm.Value, numPorts)
	for i := range b.portVals {
		b.portVals[i] = b.intBox.Box(int64(i))
	}
	for i := 0; i < numPorts; i++ {
		nic := netsim.NewNIC(sim, fmt.Sprintf("%s.eth%d", name, i), b.mac)
		// Paper: "whenever an input port is bound, it is put into
		// promiscuous mode" — a transparent bridge must see all frames.
		nic.Promiscuous = true
		idx := i
		nic.SetRecv(func(_ *netsim.NIC, raw []byte) { b.onFrame(idx, raw) })
		// The overflow notification writes only its own port's cell (the
		// TxDropFunc contract: on a cut segment it runs on the owner
		// engine, so it must not touch shared bridge state).
		cell := &b.txqDrops[i]
		nic.SetTxDropFn(func(*netsim.NIC, []byte) { *cell++ })
		b.ports = append(b.ports, nic)
		b.blocked = append(b.blocked, false)
	}
	return b
}

// TxQueueDrops reports how many frames this node lost to transmit-queue
// overflow across all ports — the silent death a driver would never
// report to the switchlet. Read it at quiescent points only (cut ports
// account owner-side).
func (b *Bridge) TxQueueDrops() uint64 {
	var total uint64
	for i := range b.txqDrops {
		total += b.txqDrops[i]
	}
	return total
}

// Port returns the NIC for attachment to a segment.
func (b *Bridge) Port(i int) *netsim.NIC { return b.ports[i] }

// MAC returns the bridge identity address.
func (b *Bridge) MAC() ethernet.MAC { return b.mac }

// CPU exposes the node CPU (for utilization reporting in experiments).
func (b *Bridge) CPU() *netsim.CPU { return b.cpu }

// Sim returns the simulation the bridge runs in.
func (b *Bridge) Sim() *netsim.Sim { return b.sim }

// CostModel returns the node's cost model.
func (b *Bridge) CostModel() netsim.CostModel { return b.cost }

// --- env.Env implementation -------------------------------------------------

// NumPorts implements env.NetPorts.
func (b *Bridge) NumPorts() int { return len(b.ports) }

// Send implements env.NetPorts: queue a frame for transmission. During a
// dispatch the send is collected and charged as part of the frame path;
// outside dispatch (shouldn't happen from switchlet code) it is sent
// directly. Failures are the typed sentinels ErrNoSuchPort,
// ErrFrameTooLong and ErrFrameTooShort.
func (b *Bridge) Send(port int, data string, ctl bool) error {
	if port < 0 || port >= len(b.ports) {
		return fmt.Errorf("%w %d", ErrNoSuchPort, port)
	}
	if len(data) > ethernet.MaxFrameLen {
		return fmt.Errorf("%w (%d bytes)", ErrFrameTooLong, len(data))
	}
	if b.ports[port].Segment() == nil {
		return nil // link down: drop, as a real driver would
	}
	if !ctl && b.blocked[port] {
		b.Stats.OutputBlocked++
		return nil // silently suppressed, like a filtering bridge port
	}
	var raw []byte
	if b.curRaw != nil && len(data) == len(b.curRaw) && string(b.curRaw) == data {
		// Forwarding fast path: the switchlet is sending the frame it is
		// currently dispatching, unmodified. The received frame already
		// carries a valid FCS, so reuse its buffer — no copy, no
		// re-validation. (string(b.curRaw) == data compiles to an
		// allocation-free comparison.)
		raw = b.curRaw
	} else {
		var err error
		raw, err = normalizeFrame([]byte(data))
		if err != nil {
			return err
		}
	}
	ps := pendingSend{port: port, data: raw, ctl: ctl}
	if b.inDispatch {
		b.pendingSends = append(b.pendingSends, ps)
		return nil
	}
	b.emit(ps)
	return nil
}

// SendBytes is Send for native code that already holds the frame as a
// byte slice: identical semantics and accounting, without the per-frame
// string conversion. The slice must not be mutated after the call (the
// bridge may queue it as-is).
func (b *Bridge) SendBytes(port int, data []byte, ctl bool) error {
	if port < 0 || port >= len(b.ports) {
		return fmt.Errorf("%w %d", ErrNoSuchPort, port)
	}
	if len(data) > ethernet.MaxFrameLen {
		return fmt.Errorf("%w (%d bytes)", ErrFrameTooLong, len(data))
	}
	if b.ports[port].Segment() == nil {
		return nil // link down: drop, as a real driver would
	}
	if !ctl && b.blocked[port] {
		b.Stats.OutputBlocked++
		return nil
	}
	raw := data
	if b.curRaw != nil && len(data) == len(b.curRaw) &&
		(&data[0] == &b.curRaw[0] || string(b.curRaw) == string(data)) {
		raw = b.curRaw
	} else {
		var err error
		raw, err = normalizeFrame(data)
		if err != nil {
			return err
		}
	}
	ps := pendingSend{port: port, data: raw, ctl: ctl}
	if b.inDispatch {
		b.pendingSends = append(b.pendingSends, ps)
		return nil
	}
	b.emit(ps)
	return nil
}

func (b *Bridge) emit(ps pendingSend) {
	if b.crashed {
		return // queued work dies with the node
	}
	b.Stats.FramesSent++
	b.ports[ps.port].Send(ps.data)
}

// normalizeFrame accepts either a complete wire frame (valid FCS — the
// forwarding case, where the bridge must not modify the frame) or a bare
// header+payload built by a switchlet, which is padded and gets a fresh
// FCS — the paper's driver behaviour: "The CRC is returned on a read, but
// cannot be specified on a write."
func normalizeFrame(data []byte) ([]byte, error) {
	var f ethernet.Frame
	if err := f.Unmarshal(data); err == nil {
		return data, nil
	}
	if len(data) < ethernet.HeaderLen {
		return nil, ErrFrameTooShort
	}
	f = ethernet.Frame{}
	copy(f.Dst[:], data[0:6])
	copy(f.Src[:], data[6:12])
	f.Type = uint16(data[12])<<8 | uint16(data[13])
	f.Payload = data[ethernet.HeaderLen:]
	return f.Marshal()
}

// PortUp implements env.NetPorts.
func (b *Bridge) PortUp(port int) bool {
	return port >= 0 && port < len(b.ports) && b.ports[port].Segment() != nil
}

// SetPortBlock implements env.NetPorts.
func (b *Bridge) SetPortBlock(port int, blocked bool) {
	if port >= 0 && port < len(b.blocked) {
		b.blocked[port] = blocked
	}
}

// PortBlocked implements env.NetPorts.
func (b *Bridge) PortBlocked(port int) bool {
	return port >= 0 && port < len(b.blocked) && b.blocked[port]
}

// BridgeID implements env.NetPorts.
func (b *Bridge) BridgeID() string { return string(b.mac[:]) }

// NowMicros implements env.Clock.
func (b *Bridge) NowMicros() int64 { return int64(b.sim.Now()) / 1000 }

// SetHandler implements env.Demux: replace the default frame handler (how
// the learning switchlet "replaces the switching function from the dumb
// bridge").
func (b *Bridge) SetHandler(fn vm.Value) {
	b.defaultHandler = FrameHandler{VM: fn, Name: "vm-default"}
	b.FlushFlowCache()
}

// SetNativeHandler installs a native-code default handler.
func (b *Bridge) SetNativeHandler(name string, fn func(data []byte, inPort int)) {
	b.defaultHandler = FrameHandler{Native: fn, Name: name}
	b.FlushFlowCache()
}

// ClearHandler releases the default frame handler: the node forwards
// nothing until new behaviour claims the data path. The Manager calls it
// when uninstalling a switchlet whose manifest owns the data path.
func (b *Bridge) ClearHandler() {
	b.defaultHandler = FrameHandler{}
	b.FlushFlowCache()
}

// DefaultHandlerName reports which handler currently owns the data path.
func (b *Bridge) DefaultHandlerName() string { return b.defaultHandler.Name }

// SetDstHandler is the single destination-registration entry point: it
// claims address m for handler h, whether h wraps switchlet bytecode or
// native code. The paper's first-to-bind-wins rule applies: "the first
// switchlet to bind to a given port succeeds and all others fail"
// (ErrDstBound).
func (b *Bridge) SetDstHandler(m ethernet.MAC, h FrameHandler) error {
	if _, taken := b.dstHandlers[m]; taken {
		return fmt.Errorf("destination %v %w", m, ErrDstBound)
	}
	b.dstHandlers[m] = h
	if !m.IsMulticast() {
		b.unicastDsts++
	}
	b.FlushFlowCache()
	return nil
}

// ClearDstHandler removes a registration by address.
func (b *Bridge) ClearDstHandler(m ethernet.MAC) {
	if _, ok := b.dstHandlers[m]; ok {
		delete(b.dstHandlers, m)
		if !m.IsMulticast() {
			b.unicastDsts--
		}
		b.FlushFlowCache()
	}
}

// BindDst implements env.Demux: register a switchlet function for frames
// destined to m.
func (b *Bridge) BindDst(m ethernet.MAC, fn vm.Value) error {
	return b.SetDstHandler(m, FrameHandler{VM: fn, Name: "vm-dst-" + m.String()})
}

// UnbindDst implements env.Demux.
func (b *Bridge) UnbindDst(m ethernet.MAC) { b.ClearDstHandler(m) }

// SetTimer implements env.Demux.
func (b *Bridge) SetTimer(name string, periodMs int64, fn vm.Value) {
	b.installTimer(name, netsim.Duration(periodMs)*netsim.Millisecond, fn, nil)
}

// SetNativeTimer installs a periodic native callback.
func (b *Bridge) SetNativeTimer(name string, period netsim.Duration, fn func()) {
	b.installTimer(name, period, nil, fn)
}

func (b *Bridge) installTimer(name string, period netsim.Duration, fn vm.Value, native func()) {
	// Generations are issued from a node-wide counter and never reused,
	// so a pending arm can never fire a namesake timer installed after a
	// crash cleared the table.
	b.timerGen++
	ts := &timerState{name: name, period: period, fn: fn, native: native, gen: b.timerGen}
	b.timers[name] = ts
	b.armTimer(ts)
}

func (b *Bridge) armTimer(ts *timerState) {
	b.sim.After(ts.period, func() {
		cur, ok := b.timers[ts.name]
		if !ok || cur.gen != ts.gen {
			return // cancelled or replaced
		}
		b.Stats.TimerFires++
		if ts.native != nil {
			b.runNativeDispatch(func() { ts.native() }, 0)
		} else {
			b.runVMDispatch(ts.fn, 0, vm.Unit{})
		}
		b.armTimer(ts)
	})
}

// CancelTimer implements env.Demux.
func (b *Bridge) CancelTimer(name string) { delete(b.timers, name) }

// After implements env.Demux.
func (b *Bridge) After(delayMs int64, fn vm.Value) {
	ep := b.epoch
	b.sim.After(netsim.Duration(delayMs)*netsim.Millisecond, func() {
		if b.epoch != ep {
			return // scheduled before a crash: the callback died with the node
		}
		b.runVMDispatch(fn, 0, vm.Unit{})
	})
}

// AfterNative schedules a one-shot native callback with dispatch charging.
func (b *Bridge) AfterNative(d netsim.Duration, fn func()) {
	ep := b.epoch
	b.sim.After(d, func() {
		if b.epoch != ep {
			return
		}
		b.runNativeDispatch(fn, 0)
	})
}

// Spawn implements env.Threads.
func (b *Bridge) Spawn(fn vm.Value) { b.spawnQueue = append(b.spawnQueue, fn) }

// Log implements env.Logger.
func (b *Bridge) Log(msg string) {
	if b.LogSink != nil {
		b.LogSink(b.sim.Now(), b.Name, msg)
	}
}

// --- frame path -------------------------------------------------------------

// frameString views raw as a string without copying. This is safe because
// frames on the simulated medium are immutable once transmitted (the
// netsim receive contract: "the slice must not be mutated") and swl
// strings are immutable, so no writer exists on either side.
//
//ab:allocfree
func frameString(raw []byte) string {
	if len(raw) == 0 {
		return ""
	}
	return unsafe.String(unsafe.SliceData(raw), len(raw))
}

// getSendBuf borrows a pendingSend buffer from the pool.
func (b *Bridge) getSendBuf() []pendingSend {
	if n := len(b.sendBufs); n > 0 {
		buf := b.sendBufs[n-1]
		b.sendBufs = b.sendBufs[:n-1]
		return buf
	}
	return make([]pendingSend, 0, 4)
}

// putSendBuf returns a dispatch's send list to the pool, dropping frame
// references so they do not outlive their transmission.
func (b *Bridge) putSendBuf(buf []pendingSend) {
	if buf == nil {
		return
	}
	for i := range buf {
		buf[i].data = nil
	}
	if len(b.sendBufs) < 16 {
		b.sendBufs = append(b.sendBufs, buf[:0])
	}
}

// emitSends transmits a dispatch's collected frames and recycles the
// buffer; it runs as the CPU completion callback.
func (b *Bridge) emitSends(sends []pendingSend) {
	for i := range sends {
		b.emit(sends[i])
	}
	b.putSendBuf(sends)
}

// emitHead emits the oldest queued send list (see doneQueue).
func (b *Bridge) emitHead() {
	if b.discardEmits > 0 {
		// This completion's sends were dropped by a crash; consume the
		// no-op so the CPU FIFO stays aligned with doneQueue.
		b.discardEmits--
		return
	}
	sends := b.doneQueue[b.doneQueueHead]
	b.doneQueue[b.doneQueueHead] = nil
	b.doneQueueHead++
	if b.doneQueueHead == len(b.doneQueue) {
		b.doneQueue = b.doneQueue[:0]
		b.doneQueueHead = 0
	} else if b.doneQueueHead >= 64 {
		// Compact under sustained backlog so the backing array stays
		// bounded by the outstanding dispatches, not the run length.
		b.doneQueue = b.doneQueue[:copy(b.doneQueue, b.doneQueue[b.doneQueueHead:])]
		b.doneQueueHead = 0
	}
	b.emitSends(sends)
}

func (b *Bridge) onFrame(inPort int, raw []byte) {
	if b.crashed {
		return // frozen: a dead node processes nothing
	}
	b.Stats.FramesIn++
	if b.netLoader != nil && b.netLoader.maybeHandle(inPort, raw) {
		return
	}
	dst, err := ethernet.PeekDst(raw)
	if err != nil {
		return
	}
	var h FrameHandler
	isDst := false
	if !DisableFlowCache {
		e := &b.flowCache[flowIdx(dst)]
		if e.gen == b.flowGen && e.dst == dst {
			h, isDst = e.h, e.isDst
			b.Stats.FlowCacheHits++
			if b.sim.TraceEngine() != nil {
				b.traceEvent(tracing.KindDemux, 0, "cache-hit handler="+h.Name)
			}
		} else {
			// Unicast fast path: data frames are unicast and destination
			// registrations are (almost always) multicast, so the map is
			// rarely consulted even on a miss.
			if len(b.dstHandlers) > 0 && (b.unicastDsts > 0 || dst.IsMulticast()) {
				h, isDst = b.dstHandlers[dst]
			}
			if !isDst {
				// Reading defaultHandler before the blocked check is safe:
				// the read has no side effects, and the blocked suppression
				// below fires exactly as in the uncached path.
				h = b.defaultHandler
			}
			*e = flowEntry{gen: b.flowGen, dst: dst, h: h, isDst: isDst}
			b.Stats.FlowCacheMisses++
			if b.sim.TraceEngine() != nil {
				b.traceEvent(tracing.KindDemux, 0, "cache-miss handler="+h.Name)
			}
		}
		if !isDst && b.blocked[inPort] {
			// A blocked port still receives control traffic (handled
			// above via dst registrations) but no data traffic.
			b.Stats.InputSuppressed++
			if b.sim.TraceEngine() != nil {
				b.traceEvent(tracing.KindVerdict, 0, "suppressed")
			}
			return
		}
	} else {
		if len(b.dstHandlers) > 0 && (b.unicastDsts > 0 || dst.IsMulticast()) {
			h, isDst = b.dstHandlers[dst]
		}
		if !isDst {
			if b.blocked[inPort] {
				b.Stats.InputSuppressed++
				if b.sim.TraceEngine() != nil {
					b.traceEvent(tracing.KindVerdict, 0, "suppressed")
				}
				return
			}
			h = b.defaultHandler
		}
		if b.sim.TraceEngine() != nil {
			b.traceEvent(tracing.KindDemux, 0, "uncached handler="+h.Name)
		}
	}
	if h.empty() {
		b.Stats.NoHandlerDrops++
		if b.sim.TraceEngine() != nil {
			b.traceEvent(tracing.KindVerdict, 0, "no-handler")
		}
		return
	}
	b.Stats.FramesDelivered++

	recvCost := b.cost.KernelCrossing(len(raw))
	var execCost netsim.Duration
	var sends []pendingSend
	var trapped bool
	traced := b.sim.TraceEngine() != nil
	var steps0, alloc0 uint64
	var tiers0 [3]uint64
	if traced {
		steps0, alloc0 = b.Machine.Steps, b.Machine.AllocBytes
		tiers0 = b.Machine.TierEnters
	}
	b.curRaw = raw
	if h.Native != nil {
		sends = b.collectSends(func() { h.Native(raw, inPort) })
		execCost = b.cost.NativePerFrame
	} else {
		if len(raw) == len(b.lastFrameRaw) && &raw[0] == &b.lastFrameRaw[0] {
			b.frameArgs[0] = b.lastFrameVal
		} else {
			b.frameArgs[0] = b.strBox.Box(frameString(raw))
			b.lastFrameRaw, b.lastFrameVal = raw, b.frameArgs[0]
		}
		b.frameArgs[1] = b.portVals[inPort]
		sends, trapped = b.invokeVM(h.VM, b.frameArgs[:])
		execCost = b.lastVMCost
		if trapped {
			b.Stats.HandlerTraps++
		}
	}
	b.curRaw = nil

	if traced {
		if h.Native != nil {
			b.traceEvent(tracing.KindVM, int64(execCost), "native handler="+h.Name)
		} else {
			m := b.Machine
			b.traceEvent(tracing.KindVM, int64(execCost), fmt.Sprintf(
				"handler=%s steps=%d alloc=%d tiers=%d/%d/%d", h.Name,
				m.Steps-steps0, m.AllocBytes-alloc0,
				m.TierEnters[0]-tiers0[0], m.TierEnters[1]-tiers0[1], m.TierEnters[2]-tiers0[2]))
		}
		if trapped {
			b.traceEvent(tracing.KindVerdict, 0, "trap-drop")
		} else {
			b.traceEvent(tracing.KindVerdict, 0, fmt.Sprintf("forward sends=%d", len(sends)))
		}
	}

	var sendCost netsim.Duration
	for i := range sends {
		sendCost += b.cost.KernelCrossing(len(sends[i].data))
	}
	b.Stats.VMTime += execCost
	b.Stats.KernelTime += recvCost + sendCost

	if b.TracePath {
		b.LastPath = PathSample{
			When: b.sim.Now(), FrameLen: len(raw),
			KernelRecv: recvCost, Exec: execCost, KernelSend: sendCost,
			Sends: len(sends),
		}
	}

	total := recvCost + execCost + sendCost
	b.doneQueue = append(b.doneQueue, sends)
	b.cpu.Exec(total, b.emitHeadFn)
}

// traceEvent records one bridge event under the frame's ambient trace
// context (dur > 0 makes it a span); callers hold the nil-tracer check.
func (b *Bridge) traceEvent(kind tracing.Kind, dur int64, detail string) {
	b.sim.TraceEngine().Emit(tracing.Event{
		VT: int64(b.sim.Now()), Dur: dur, Trace: b.sim.CurTrace(),
		Kind: kind, Node: b.Name, Detail: detail,
	})
}

// vmTraceSink feeds the VM's deoptimization events into the tracing plane
// under the ambient trace context. It is installed unconditionally; the
// nil-tracer check happens per event, on what is already a slow path.
type vmTraceSink struct{ b *Bridge }

func (s vmTraceSink) TraceDeopt(reason string) {
	if s.b.sim.TraceEngine() != nil {
		s.b.traceEvent(tracing.KindDeopt, 0, reason)
	}
}

// collectSends runs fn with send collection enabled and returns the frames
// it queued. The returned slice is pooled: pass it to emitSends (or
// putSendBuf) exactly once.
func (b *Bridge) collectSends(fn func()) []pendingSend {
	wasIn := b.inDispatch
	b.inDispatch = true
	saved := b.pendingSends
	b.pendingSends = b.getSendBuf()
	fn()
	out := b.pendingSends
	b.pendingSends = saved
	b.inDispatch = wasIn
	b.drainSpawns()
	return out
}

// invokeVM runs a switchlet function, metering VM cost into lastVMCost.
// args may be a caller-owned scratch buffer (the VM does not retain it).
func (b *Bridge) invokeVM(fn vm.Value, args []vm.Value) (sends []pendingSend, trapped bool) {
	steps0, alloc0 := b.Machine.Steps, b.Machine.AllocBytes
	wasIn := b.inDispatch
	b.inDispatch = true
	saved := b.pendingSends
	b.pendingSends = b.getSendBuf()
	if _, err := b.Machine.InvokeArgs(fn, args); err != nil {
		trapped = true
		b.Log("switchlet trap: " + err.Error())
		if te := b.sim.TraceEngine(); te != nil {
			b.traceEvent(tracing.KindTrap, 0, err.Error())
			te.DumpFlight("vm trap at "+b.Name+": "+err.Error(), int64(b.sim.Now()))
		}
	}
	sends = b.pendingSends
	b.pendingSends = saved
	b.inDispatch = wasIn
	b.drainSpawns()
	b.lastVMCost = b.cost.VMCost(b.Machine.Steps-steps0, b.Machine.AllocBytes-alloc0)
	if trapped {
		// A trapped handler forwards nothing: drop its queued sends, the
		// conservative failure mode.
		b.putSendBuf(sends)
		sends = nil
	}
	return sends, trapped
}

// runVMDispatch runs a VM callback outside the frame path (timers, spawns)
// and charges its cost plus overhead to the CPU.
func (b *Bridge) runVMDispatch(fn vm.Value, extra netsim.Duration, args ...vm.Value) {
	if b.crashed {
		return
	}
	sends, trapped := b.invokeVM(fn, args)
	if trapped {
		b.Stats.HandlerTraps++
	}
	var sendCost netsim.Duration
	for i := range sends {
		sendCost += b.cost.KernelCrossing(len(sends[i].data))
	}
	b.Stats.VMTime += b.lastVMCost
	b.Stats.KernelTime += sendCost
	ep := b.epoch
	b.cpu.Exec(b.lastVMCost+sendCost+extra, func() {
		if b.epoch != ep {
			b.putSendBuf(sends)
			return
		}
		b.emitSends(sends)
	})
}

// runNativeDispatch is runVMDispatch for native callbacks.
func (b *Bridge) runNativeDispatch(fn func(), extra netsim.Duration) {
	if b.crashed {
		return
	}
	sends := b.collectSends(fn)
	cost := b.cost.NativePerFrame
	var sendCost netsim.Duration
	for i := range sends {
		sendCost += b.cost.KernelCrossing(len(sends[i].data))
	}
	ep := b.epoch
	b.cpu.Exec(cost+sendCost+extra, func() {
		if b.epoch != ep {
			b.putSendBuf(sends)
			return
		}
		b.emitSends(sends)
	})
}

func (b *Bridge) drainSpawns() {
	for len(b.spawnQueue) > 0 {
		q := b.spawnQueue
		b.spawnQueue = nil
		for _, fn := range q {
			fn := fn
			ep := b.epoch
			b.sim.After(0, func() {
				if b.epoch != ep {
					return
				}
				b.runVMDispatch(fn, 0, vm.Unit{})
			})
		}
	}
}

// --- fault plane ------------------------------------------------------------

// clearAllDstHandlers drops every destination registration (cold-restart
// wipe; individual unbinds go through ClearDstHandler).
func (b *Bridge) clearAllDstHandlers() {
	b.dstHandlers = map[ethernet.MAC]FrameHandler{}
	b.unicastDsts = 0
	b.FlushFlowCache()
}

// Crashed reports whether the node is currently frozen by a fault-plane
// crash.
func (b *Bridge) Crashed() bool { return b.crashed }

// Crash freezes the node at the current instant: a power cut, not a
// graceful shutdown. All ports lose carrier, every queued dispatch and
// pending send dies, timers and scheduled one-shots are invalidated, and
// nothing is processed until Restart. The Manager snapshots the installed
// manifest set and running state first, so Restart can re-install what a
// real node would re-deploy from stable storage; any upgrade caught in its
// validation window is marked rolled back (a crashed bridge cannot commit).
//
// Call it only from the node's own engine or from a coordinator control
// event (the fault plane schedules crashes on the control engine, which
// runs at a global barrier).
func (b *Bridge) Crash() {
	if b.crashed {
		return
	}
	// Snapshot lifecycle state while the machine is still answerable:
	// noteCrash queries each switchlet's Running probe and fails pending
	// upgrade validations before the freeze makes queries meaningless.
	b.Manager().noteCrash()
	b.crashed = true
	b.epoch++
	b.Stats.Crashes++
	b.FlushFlowCache()
	for i, p := range b.ports {
		p.SetLinkDown(true)
		b.blocked[i] = false
	}
	// Queued frame-path completions: their sends die, but the CPU FIFO
	// still fires each completion, so convert them to no-ops.
	for i := b.doneQueueHead; i < len(b.doneQueue); i++ {
		b.putSendBuf(b.doneQueue[i])
		b.doneQueue[i] = nil
		b.discardEmits++
	}
	b.doneQueue = b.doneQueue[:0]
	b.doneQueueHead = 0
	b.spawnQueue = nil
	clear(b.timers)
	b.Log("bridge: CRASH (fault plane)")
	if te := b.sim.TraceEngine(); te != nil {
		b.traceEvent(tracing.KindMark, 0, "crash (fault plane)")
		te.DumpFlight("crash at "+b.Name, int64(b.sim.Now()))
	}
}

// Restart brings a crashed node back with cold state: carrier returns,
// learning tables and the VM heap contents installed by dead dispatches
// are gone, and the Manager re-installs the manifest set it snapshotted at
// crash time (the node's stable-storage image) and restarts whatever was
// running. Natively installed behaviour and netloaded switchlets are NOT
// restored — they arrived outside the Manager and die with the node; see
// the package fault documentation. Restart returns the first re-install
// error, if any (the node is unfrozen regardless).
func (b *Bridge) Restart() error {
	if !b.crashed {
		return nil
	}
	b.crashed = false
	b.Stats.Restarts++
	for _, p := range b.ports {
		p.SetLinkDown(false)
	}
	b.Log("bridge: restart (cold)")
	return b.Manager().coldRestart()
}

// SetPortLink sets the fault plane's carrier state on one port (a pulled
// cable on a multi-port node, as opposed to Segment.SetDown which cuts the
// whole medium). Dropping a link notifies the Manager: an upgrade caught
// in its validation window rolls back rather than committing on a probe
// it measured across a fault.
func (b *Bridge) SetPortLink(port int, down bool) {
	if port < 0 || port >= len(b.ports) {
		return
	}
	if b.ports[port].LinkDown() == down {
		return
	}
	b.ports[port].SetLinkDown(down)
	if down && b.manager != nil {
		b.manager.NoteFault(fmt.Sprintf("port %d link down", port))
	}
}

// LoadObjectBytes loads an encoded switchlet object into the node,
// charging the loader's evaluation cost (function-agility is measured
// around this, paper §7.5).
func (b *Bridge) LoadObjectBytes(data []byte) error {
	steps0, alloc0 := b.Machine.Steps, b.Machine.AllocBytes
	_, err := b.Loader.Load(data)
	cost := b.cost.VMCost(b.Machine.Steps-steps0, b.Machine.AllocBytes-alloc0)
	b.cpu.Hold(cost)
	if err != nil {
		b.Log("switchlet load failed: " + err.Error())
		if te := b.sim.TraceEngine(); te != nil {
			b.traceEvent(tracing.KindMark, 0, "load-reject: "+err.Error())
			te.DumpFlight("switchlet load rejected at "+b.Name+": "+err.Error(), int64(b.sim.Now()))
		}
		return err
	}
	b.drainSpawns()
	return nil
}

// LoadDecodedObject links an already decoded switchlet object — typically
// the process-wide cache's shared, trusted-mode-quickened form — charging
// the same evaluation cost as LoadObjectBytes without re-decoding.
func (b *Bridge) LoadDecodedObject(obj *vm.Object) error {
	steps0, alloc0 := b.Machine.Steps, b.Machine.AllocBytes
	_, err := b.Loader.LoadObject(obj)
	cost := b.cost.VMCost(b.Machine.Steps-steps0, b.Machine.AllocBytes-alloc0)
	b.cpu.Hold(cost)
	if err != nil {
		b.Log("switchlet load failed: " + err.Error())
		if te := b.sim.TraceEngine(); te != nil {
			b.traceEvent(tracing.KindMark, 0, "load-reject: "+err.Error())
			te.DumpFlight("switchlet load rejected at "+b.Name+": "+err.Error(), int64(b.sim.Now()))
		}
		return err
	}
	b.drainSpawns()
	return nil
}

// CompileAndLoad compiles swl source against this node's environment and
// loads it, as the out-of-band administrative interface would.
//
// Deprecated: raw source loading bypasses the manifest's capability
// grant. Use Manager().Install with an env.Manifest; this shim remains
// for code that predates manifests.
func (b *Bridge) CompileAndLoad(name, src string) error {
	obj, _, err := vm.Compile(name, src, b.Loader.SigEnv())
	if err != nil {
		return err
	}
	return b.LoadObjectBytes(obj.Encode())
}
