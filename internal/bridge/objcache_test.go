package bridge

import (
	"testing"

	"github.com/switchware/activebridge/internal/env"
	"github.com/switchware/activebridge/internal/netsim"
)

// TestCompileCacheHit pins the satellite contract of the object cache:
// installing one switchlet source on N bridges compiles it once, and a
// changed source (same name and version) misses.
func TestCompileCacheHit(t *testing.T) {
	sim := netsim.New()
	cost := netsim.DefaultCostModel()
	mk := func(src string) env.Manifest {
		return env.Manifest{
			Name:         "CacheProbe",
			Version:      env.Version{Major: 1},
			Capabilities: []env.Capability{env.CapLog},
			Source:       src,
		}
	}
	const srcA = `let probed = ref 0
let _ = Log.log "cache probe installed"`

	h0, m0 := CompileCacheStats()
	b1 := New(sim, "b1", 1, 2, cost)
	if _, err := b1.Manager().Install(mk(srcA)); err != nil {
		t.Fatalf("first install: %v", err)
	}
	h1, m1 := CompileCacheStats()
	if m1 != m0+1 || h1 != h0 {
		t.Fatalf("first install: want 1 miss 0 hits, got %d misses %d hits", m1-m0, h1-h0)
	}

	// Same source on nine more bridges: no further compilation.
	for i := 2; i <= 10; i++ {
		b := New(sim, "b", byte(i), 2, cost)
		if _, err := b.Manager().Install(mk(srcA)); err != nil {
			t.Fatalf("install %d: %v", i, err)
		}
	}
	h2, m2 := CompileCacheStats()
	if m2 != m1 || h2 != h1+9 {
		t.Fatalf("replicated installs: want 9 hits 0 misses, got %d hits %d misses", h2-h1, m2-m1)
	}

	// A different source under the same name and version must miss: the
	// key includes the source hash, so a patched switchlet can never be
	// served a stale object.
	b := New(sim, "bx", 11, 2, cost)
	if _, err := b.Manager().Install(mk(srcA + `
let extra = ref 1`)); err != nil {
		t.Fatalf("patched install: %v", err)
	}
	h3, m3 := CompileCacheStats()
	if m3 != m2+1 || h3 != h2 {
		t.Fatalf("patched source: want a miss, got %d hits %d misses", h3-h2, m3-m2)
	}

	// A cache hit still enforces the manifest's capability grant: the
	// same object under an insufficient grant is rejected at link time.
	weak := mk(srcA)
	weak.Capabilities = nil
	bw := New(sim, "bw", 12, 2, cost)
	if _, err := bw.Manager().Install(weak); err == nil {
		t.Fatal("capability-stripped manifest must not install from cache")
	}
}
