package bridge

import (
	"crypto/md5"
	"errors"
	"strings"
	"testing"

	"github.com/switchware/activebridge/internal/ethernet"
	"github.com/switchware/activebridge/internal/ipv4"
	"github.com/switchware/activebridge/internal/netsim"
	"github.com/switchware/activebridge/internal/tftp"
	"github.com/switchware/activebridge/internal/udp"
	"github.com/switchware/activebridge/internal/vm"
)

// hostileObjectBytes returns a well-formed .swo file the decoder accepts but
// the static verifier must reject: the init chunk has no code at all, so
// control falls off the end before a single instruction runs.
func hostileObjectBytes(t testing.TB) []byte {
	t.Helper()
	text := "module evil\n"
	o := &vm.Object{
		ModName:      "evil",
		ExportText:   text,
		ExportDigest: md5.Sum([]byte(text)),
		Chunks:       []*vm.Chunk{{Name: "init"}},
	}
	enc := o.Encode()
	if _, err := vm.DecodeObject(enc); err != nil {
		t.Fatalf("hostile object must decode cleanly (the verifier, not the decoder, rejects it): %v", err)
	}
	return enc
}

// TestLoadObjectBytesRejectsUnverifiable proves the load path surfaces a
// typed *vm.VerifyError for an object that decodes but fails verification,
// before any VM state exists for the module.
func TestLoadObjectBytesRejectsUnverifiable(t *testing.T) {
	sim := netsim.New()
	b := New(sim, "br", 1, 2, netsim.DefaultCostModel())
	var logs []string
	b.LogSink = func(_ netsim.Time, _ string, msg string) { logs = append(logs, msg) }

	err := b.LoadObjectBytes(hostileObjectBytes(t))
	var verr *vm.VerifyError
	if !errors.As(err, &verr) {
		t.Fatalf("LoadObjectBytes error = %v (%T), want *vm.VerifyError", err, err)
	}
	if verr.Kind != vm.VerifyFallOff {
		t.Errorf("Kind = %q, want %q", verr.Kind, vm.VerifyFallOff)
	}
	if _, ok := b.Loader.Module("evil"); ok {
		t.Error("rejected module was linked")
	}
	if len(logs) != 1 || !strings.HasPrefix(logs[0], "switchlet load failed: ") {
		t.Errorf("logs = %q, want one 'switchlet load failed' line", logs)
	}
}

// loaderFrameTo is loaderFrame with a selectable destination UDP port, for
// driving a TFTP transfer past the initial WRQ (data goes to the session
// TID, not port 69).
func loaderFrameTo(t testing.TB, dst ethernet.MAC, dstIP ipv4.Addr, dstPort uint16, payload []byte) []byte {
	t.Helper()
	dg := udp.Datagram{SrcPort: 1234, DstPort: dstPort, Payload: payload}
	src := ipv4.Addr{10, 0, 0, 1}
	udpBytes, err := dg.Marshal(src, dstIP)
	if err != nil {
		t.Fatal(err)
	}
	ip := ipv4.Packet{TTL: 64, Protocol: ipv4.ProtoUDP, Src: src, Dst: dstIP, Payload: udpBytes}
	ipBytes, err := ip.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	fr := ethernet.Frame{Dst: dst, Src: ethernet.MAC{2, 0, 0, 0, 0, 1},
		Type: ethernet.TypeIPv4, Payload: ipBytes}
	raw, err := fr.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestNetLoaderRejectsHostileUploadBeforeAck drives a hostile switchlet
// through the whole §5.2 network loading stack and asserts the verifier's
// rejection reaches the wire: the final TFTP packet is an ERROR carrying the
// verify diagnostic, never the final ack, and the node installs nothing.
func TestNetLoaderRejectsHostileUploadBeforeAck(t *testing.T) {
	sim := netsim.New()
	b := New(sim, "br", 1, 2, netsim.DefaultCostModel())
	loaderIP := ipv4.Addr{10, 0, 0, 100}
	b.EnableNetLoader(loaderIP)
	var logs []string
	b.LogSink = func(_ netsim.Time, _ string, msg string) { logs = append(logs, msg) }

	lan := netsim.NewSegment(sim, "lan")
	peer := netsim.NewNIC(sim, "peer", ethernet.MAC{2, 0, 0, 0, 0, 1})
	var replies [][]byte
	peer.SetRecv(func(_ *netsim.NIC, raw []byte) {
		replies = append(replies, append([]byte(nil), raw...))
	})
	lan.Attach(peer)
	lan.Attach(b.Port(0))

	decodeTFTP := func(raw []byte) (tftp.Packet, uint16) {
		var fr ethernet.Frame
		if err := fr.Unmarshal(raw); err != nil {
			t.Fatal(err)
		}
		var ip ipv4.Packet
		if err := ip.Unmarshal(fr.Payload); err != nil {
			t.Fatal(err)
		}
		var dg udp.Datagram
		if err := dg.Unmarshal(ip.Src, ip.Dst, fr.Payload[ipv4.HeaderLen:]); err != nil {
			t.Fatal(err)
		}
		pkt, err := tftp.Parse(dg.Payload)
		if err != nil {
			t.Fatal(err)
		}
		return pkt, dg.SrcPort
	}

	wrq := tftp.Marshal(&tftp.Request{Write: true, Filename: "evil.swo", Mode: "octet"})
	b.onFrame(0, loaderFrameTo(t, b.MAC(), loaderIP, tftp.Port, wrq))
	sim.Run(sim.Now() + netsim.Time(100*netsim.Millisecond))
	if len(replies) != 1 {
		t.Fatalf("replies after WRQ = %d, want 1", len(replies))
	}
	pkt, tid := decodeTFTP(replies[0])
	if ack, ok := pkt.(*tftp.Ack); !ok || ack.Block != 0 {
		t.Fatalf("WRQ reply = %#v, want ack 0", pkt)
	}

	enc := hostileObjectBytes(t)
	if len(enc) >= tftp.BlockSize {
		t.Fatalf("hostile object is %d bytes, must fit one final block", len(enc))
	}
	data := tftp.Marshal(&tftp.Data{Block: 1, Payload: enc})
	b.onFrame(0, loaderFrameTo(t, b.MAC(), loaderIP, tid, data))
	sim.Run(sim.Now() + netsim.Time(100*netsim.Millisecond))

	if len(replies) != 2 {
		t.Fatalf("replies after data = %d, want 2", len(replies))
	}
	pkt, _ = decodeTFTP(replies[1])
	ep, ok := pkt.(*tftp.ErrorPkt)
	if !ok {
		t.Fatalf("final reply = %#v, want TFTP ERROR (the transfer must not be acked)", pkt)
	}
	if !strings.Contains(ep.Msg, "verify") {
		t.Errorf("error message %q does not carry the verify diagnostic", ep.Msg)
	}
	if b.NetLoads() != 0 {
		t.Errorf("NetLoads = %d, want 0", b.NetLoads())
	}
	if _, ok := b.Loader.Module("evil"); ok {
		t.Error("hostile module was linked")
	}
	for _, l := range logs {
		if strings.HasPrefix(l, "netloader: loaded") {
			t.Errorf("loader logged success: %q", l)
		}
	}
}
