package bridge

import (
	"strings"
	"testing"

	"github.com/switchware/activebridge/internal/env"
	"github.com/switchware/activebridge/internal/vm"
)

// icManifest is a switchlet whose query handler runs through a quickened
// Hashtbl.find site, so exercising it populates an inline cache.
func icManifest(name, prefix string) env.Manifest {
	return env.Manifest{
		Name:         name,
		Version:      env.Version{Major: 1},
		Capabilities: []env.Capability{env.CapLog, env.CapFuncs},
		Lifecycle: env.Lifecycle{
			Start: prefix + ".start", Stop: prefix + ".stop",
			Probe: prefix + ".probe", Running: prefix + ".running",
		},
		Source: strings.ReplaceAll(`
let t = Hashtbl.create 4
let _ = Hashtbl.add t "k" "v"
let on = ref false
let _ = Func.register "@.get" (fun s -> (Hashtbl.find t "k") ^ "")
let _ = Func.register "@.probe" (fun s -> "state")
let _ = Func.register "@.running" (fun s -> if !on then "yes" else "no")
let _ = Func.register "@.start" (fun s -> on := true; "ok")
let _ = Func.register "@.stop" (fun s -> on := false; "ok")
`, "@", prefix),
	}
}

func warmIC(t *testing.T, man *Manager, prefix string, lm *vm.LinkedModule) {
	t.Helper()
	if v, err := man.Query(prefix+".get", ""); err != nil || v != "v" {
		t.Fatalf("%s.get = %q, %v", prefix, v, err)
	}
	if lm.LiveICs() == 0 {
		t.Fatalf("%s: inline cache not populated by a query", prefix)
	}
}

// TestManagerFlushesICsAcrossEpochs pins the invalidation contract: any
// change to the loaded-module set — Install, Uninstall, Upgrade handoff,
// Rollback — starts a new inline-cache epoch, so no site carries a cached
// value across it.
func TestManagerFlushesICsAcrossEpochs(t *testing.T) {
	r := newRig(t)
	man := r.b.Manager()

	if _, err := man.Install(icManifest("ICDemo", "icdemo")); err != nil {
		t.Fatal(err)
	}
	lm, ok := r.b.Loader.Module("ICDemo")
	if !ok {
		t.Fatal("module not loaded")
	}
	if lm.LiveICs() != 0 {
		t.Fatalf("fresh module has %d live ICs", lm.LiveICs())
	}
	warmIC(t, man, "icdemo", lm)

	// Install of an unrelated switchlet flushes every module's sites.
	if _, err := man.Install(icManifest("Other", "other")); err != nil {
		t.Fatal(err)
	}
	if n := lm.LiveICs(); n != 0 {
		t.Errorf("install epoch: %d ICs survived", n)
	}
	warmIC(t, man, "icdemo", lm)

	// Uninstall flushes too.
	if err := man.Uninstall("Other"); err != nil {
		t.Fatal(err)
	}
	if n := lm.LiveICs(); n != 0 {
		t.Errorf("uninstall epoch: %d ICs survived", n)
	}

	// Upgrade handoff (which installs the replacement) flushes...
	if _, err := man.Query("icdemo.start", ""); err != nil {
		t.Fatal(err)
	}
	warmIC(t, man, "icdemo", lm)
	u, err := man.Upgrade("ICDemo", icManifest("ICDemo2", "icdemo2"), UpgradeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if n := lm.LiveICs(); n != 0 {
		t.Errorf("upgrade epoch: %d ICs survived on the old module", n)
	}
	lm2, ok := r.b.Loader.Module("ICDemo2")
	if !ok {
		t.Fatal("upgraded module not loaded")
	}

	// ...and rollback starts yet another epoch, for both generations.
	warmIC(t, man, "icdemo", lm)
	warmIC(t, man, "icdemo2", lm2)
	if err := u.Rollback("operator decision"); err != nil {
		t.Fatal(err)
	}
	if n := lm.LiveICs() + lm2.LiveICs(); n != 0 {
		t.Errorf("rollback epoch: %d ICs survived", n)
	}
}
