package bridge

import (
	"fmt"
	"strings"
	"testing"

	"github.com/switchware/activebridge/internal/env"
	"github.com/switchware/activebridge/internal/ethernet"
	"github.com/switchware/activebridge/internal/metrics"
	"github.com/switchware/activebridge/internal/netsim"
)

// TestInstrumentedFrameDispatchAllocBudget pins the metrics plane's
// hot-path contract: attaching a full registry to a bridge adds zero
// allocations per forwarded frame. Every bridge instrument is a
// quiescent-point sampler, so the frame path is bit-for-bit the
// uninstrumented one; only the publish (once per Run, not per frame)
// may allocate, and only O(installed switchlets) for the dynamic
// version inventory.
func TestInstrumentedFrameDispatchAllocBudget(t *testing.T) {
	r := newRig(t)
	r.load(t, "Fwd", forwardSwitchlet)
	reg := metrics.NewRegistry("rig")
	r.b.Instrument(reg, metrics.Labels{{Name: "bridge", Value: "br"}})
	r.sim.OnQuiesce(reg.Publish)

	fr := ethernet.Frame{Dst: r.n2.MAC, Src: r.n1.MAC, Type: ethernet.TypeTest, Payload: make([]byte, 1024)}
	raw, err := fr.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	const frames = 64
	cycle := func() {
		for i := 0; i < frames; i++ {
			r.n1.Send(raw)
		}
		r.sim.RunAll()
	}
	cycle() // warm pools, arena, heap slab, publish scratch
	allocs := testing.AllocsPerRun(50, cycle)
	// Budget: the uninstrumented path's 2 allocs/frame (see
	// TestFrameDispatchAllocBudget) plus a flat 16 for the one publish
	// the RunAll quiescent point triggers.
	if allocs > frames*2+16 {
		t.Fatalf("instrumented steady state allocs = %v per %d frames + 1 publish, want <= %d",
			allocs, frames, frames*2+16)
	}
	if r.rx2 == 0 {
		t.Fatal("no frames forwarded")
	}
	snap := reg.Snapshot()
	if v, _ := snap.Get("ab_bridge_frames_in_total", `{bridge="br"}`); v == 0 {
		t.Error("instrumented counter never published")
	}
}

// TestInstrumentMirrorsStatsAndManager verifies the instrument set
// against the bridge's own counters after real traffic and a lifecycle
// operation.
func TestInstrumentMirrorsStatsAndManager(t *testing.T) {
	r := newRig(t)
	r.load(t, "Fwd", forwardSwitchlet)
	if _, err := r.b.Manager().Install(counterManifest()); err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry("rig")
	r.b.Instrument(reg, metrics.Labels{{Name: "bridge", Value: "br"}})
	r.sim.Schedule(r.sim.Now()+1, func() { r.sendFrom1(t, r.n2.MAC, 256) })
	r.run(50 * netsim.Millisecond)
	reg.Publish()
	snap := reg.Snapshot()

	check := func(name string, want float64) {
		t.Helper()
		if v, ok := snap.Get(name, `{bridge="br"}`); !ok || v != want {
			t.Errorf("%s = %v (ok=%v), want %v", name, v, ok, want)
		}
	}
	check("ab_bridge_frames_in_total", float64(r.b.Stats.FramesIn))
	check("ab_bridge_frames_sent_total", float64(r.b.Stats.FramesSent))
	check("ab_bridge_vm_time_ns_total", float64(r.b.Stats.VMTime))
	// Fwd loaded through the pre-manifest shim; only the managed
	// Counter install counts.
	check("ab_bridge_switchlet_installs_total", 1)
	check("ab_bridge_flow_cache_hits_total", float64(r.b.Stats.FlowCacheHits))
	check("ab_bridge_flow_cache_misses_total", float64(r.b.Stats.FlowCacheMisses))

	// Tier residency: one series per execution tier, mirroring the
	// machine's entry counters, and some tier saw the traffic.
	var tierTotal, machineTotal float64
	for tier := range r.b.Machine.TierEnters {
		v, ok := snap.Get("ab_bridge_vm_tier_enters_total",
			fmt.Sprintf(`{bridge="br",tier="%d"}`, tier))
		if !ok {
			t.Errorf("ab_bridge_vm_tier_enters_total missing tier %d", tier)
		}
		tierTotal += v
		machineTotal += float64(r.b.Machine.TierEnters[tier])
	}
	if tierTotal != machineTotal || tierTotal == 0 {
		t.Errorf("tier enters published %v, machine counted %v (want equal, nonzero)", tierTotal, machineTotal)
	}

	// The version inventory lists the managed install.
	found := false
	for _, p := range snap.Series {
		if p.Name == "ab_bridge_switchlet_info" && strings.Contains(p.Labels, `module="Counter"`) &&
			strings.Contains(p.Labels, `version="1.0.0"`) {
			found = true
		}
	}
	if !found {
		t.Errorf("ab_bridge_switchlet_info missing Counter@1.0.0")
	}

	util, ok := snap.Get("ab_bridge_cpu_utilization", `{bridge="br"}`)
	if !ok || util < 0 || util > 1 {
		t.Errorf("cpu utilization = %v (ok=%v), want within [0,1]", util, ok)
	}
}

// TestManagerLifecycleCounters pins the Manager's operation accounting
// through an install → upgrade → rollback → uninstall sequence.
func TestManagerLifecycleCounters(t *testing.T) {
	r := newRig(t)
	man := r.b.Manager()
	if _, err := man.Install(counterManifest()); err != nil {
		t.Fatal(err)
	}
	if _, err := man.Query("counter.start", ""); err != nil {
		t.Fatal(err)
	}
	if got := man.Lifecycle(); got.Installs != 1 || got.Upgrades != 0 {
		t.Fatalf("after install: %+v", got)
	}

	next := counterManifest()
	next.Name = "Counter2"
	next.Version = env.Version{Major: 2}
	next.Source = strings.ReplaceAll(next.Source, "counter.", "counter2.")
	next.Source = strings.ReplaceAll(next.Source, `"counter_tick"`, `"counter2_tick"`)
	next.Handlers = []string{"counter2.get"}
	next.Timers = []string{"counter2_tick"}
	next.Lifecycle = env.Lifecycle{
		Start: "counter2.start", Stop: "counter2.stop",
		Probe: "counter2.probe", Running: "counter2.running",
	}
	u, err := man.Upgrade("Counter", next, UpgradeOptions{
		SuppressFor: netsim.Second, ValidateAfter: 2 * netsim.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := man.Lifecycle(); got.Installs != 2 || got.Upgrades != 1 || got.Commits != 0 {
		t.Fatalf("after handoff: %+v", got)
	}
	r.run(3 * netsim.Second)
	if got := man.Lifecycle(); got.Commits != 1 || got.Rollbacks != 0 {
		t.Fatalf("after validation: %+v", got)
	}
	if err := u.Rollback("operator undo"); err != nil {
		t.Fatal(err)
	}
	if got := man.Lifecycle(); got.Rollbacks != 1 {
		t.Fatalf("after rollback: %+v", got)
	}
	if err := man.Uninstall("Counter2"); err != nil {
		t.Fatal(err)
	}
	if got := man.Lifecycle(); got.Uninstalls != 1 {
		t.Fatalf("after uninstall: %+v", got)
	}
}
