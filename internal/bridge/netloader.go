package bridge

import (
	"github.com/switchware/activebridge/internal/arp"
	"github.com/switchware/activebridge/internal/ethernet"
	"github.com/switchware/activebridge/internal/ipv4"
	"github.com/switchware/activebridge/internal/tftp"
	"github.com/switchware/activebridge/internal/udp"
)

// netLoader is the paper's network switchlet loader (§5.2): a four-layer
// stack — Ethernet demux, minimal IPv4 (no fragmentation), minimal UDP,
// and a TFTP server that "only services write requests in binary format.
// Any such file is taken to be a Caml byte code file and, upon successful
// receipt, an attempt is made to dynamically load and evaluate the file."
//
// In the paper this stack is itself loaded as switchlets; here it is a
// native switchlet (see DESIGN.md substitutions): it is installed and
// removed at runtime through the same registration discipline, but written
// in Go because its cost is not the experiment's subject.
type netLoader struct {
	b    *Bridge
	addr ipv4.Addr
	srv  *tftp.Server
	// peers remembers the source MAC and arrival port of each client so
	// replies can be addressed without ARP.
	peers map[tftp.Endpoint]peerInfo

	// Loaded counts switchlets installed via the network path.
	Loaded uint64
}

type peerInfo struct {
	mac  ethernet.MAC
	port int
}

// EnableNetLoader gives the bridge an IP address and installs the network
// switchlet loader. Frames addressed to the bridge's MAC carrying UDP/IP
// to the TFTP port are consumed by the loader.
func (b *Bridge) EnableNetLoader(addr ipv4.Addr) {
	b.netLoader = &netLoader{
		b:     b,
		addr:  addr,
		peers: map[tftp.Endpoint]peerInfo{},
	}
	b.netLoader.srv = tftp.NewServer(func(name string, data []byte) error {
		// The arriving file must be a switchlet object; load it now.
		// LoadObjectBytes runs the full static verifier (vm.VerifyObject)
		// before any linking, so a hostile upload is rejected with a typed
		// *vm.VerifyError here — the TFTP server then errors the transfer
		// instead of sending the final ack, and no VM state exists for the
		// rejected module.
		if err := b.LoadObjectBytes(data); err != nil {
			return err
		}
		b.netLoader.Loaded++
		b.Log("netloader: loaded switchlet " + name)
		return nil
	})
}

// NetLoaderAddr returns the loader's IP address (zero if disabled).
func (b *Bridge) NetLoaderAddr() ipv4.Addr {
	if b.netLoader == nil {
		return ipv4.Addr{}
	}
	return b.netLoader.addr
}

// NetLoads reports how many switchlets arrived over the network.
func (b *Bridge) NetLoads() uint64 {
	if b.netLoader == nil {
		return 0
	}
	return b.netLoader.Loaded
}

// maybeHandle consumes a frame if it belongs to the loading stack.
// Layer 1: Ethernet — only frames addressed to this bridge's MAC with the
// IPv4 EtherType are considered. ARP requests for the loader's address are
// answered but NOT consumed: the bridge is transparent, so the broadcast
// still floods through the data path.
func (nl *netLoader) maybeHandle(inPort int, raw []byte) bool {
	ty, err := ethernet.PeekType(raw)
	if err != nil {
		return false
	}
	if ty == ethernet.TypeARP {
		nl.maybeAnswerARP(inPort, raw)
		return false
	}
	dst, err := ethernet.PeekDst(raw)
	if err != nil || dst != nl.b.mac {
		return false
	}
	if ty != ethernet.TypeIPv4 {
		return false
	}
	var fr ethernet.Frame
	if fr.Unmarshal(raw) != nil {
		return false
	}
	// Layer 2: minimal IP. No fragmentation support, exactly like the
	// paper's minimal IP: fragmented datagrams are dropped.
	var ip ipv4.Packet
	if ip.Unmarshal(fr.Payload) != nil {
		return true // addressed to us but malformed: consume silently
	}
	if ip.Dst != nl.addr || ip.Protocol != ipv4.ProtoUDP || ip.MF || ip.FragOff != 0 {
		return true
	}
	// Layer 3: minimal UDP.
	var dg udp.Datagram
	if dg.Unmarshal(ip.Src, ip.Dst, fr.Payload[ipv4.HeaderLen:]) != nil {
		return true
	}
	// Layer 4: TFTP (write-only, binary).
	from := tftp.Endpoint{Addr: ip.Src, Port: dg.SrcPort}
	nl.peers[from] = peerInfo{mac: fr.Src, port: inPort}

	// Charge the loader's packet processing like any native dispatch.
	replies := nl.srv.Handle(from, dg.DstPort, dg.Payload)
	cost := nl.b.cost.KernelCrossing(len(raw)) + nl.b.cost.NativePerFrame
	for _, rep := range replies {
		frame, err := nl.encodeReply(rep)
		if err != nil {
			continue
		}
		cost += nl.b.cost.KernelCrossing(len(frame))
		peer := nl.peers[rep.To]
		frameCopy := frame
		port := peer.port
		nl.b.cpu.Exec(cost, func() {
			nl.b.Stats.FramesSent++
			nl.b.ports[port].Send(frameCopy)
		})
		cost = 0 // subsequent replies ride the same charge chain
	}
	if len(replies) == 0 {
		nl.b.cpu.Hold(cost)
	}
	return true
}

// maybeAnswerARP replies to who-has queries for the loader's IP address.
func (nl *netLoader) maybeAnswerARP(inPort int, raw []byte) {
	var fr ethernet.Frame
	if fr.Unmarshal(raw) != nil {
		return
	}
	var req arp.Packet
	if req.Unmarshal(fr.Payload) != nil || req.Op != arp.OpRequest || req.TargetIP != nl.addr {
		return
	}
	rep := arp.Reply(&req, nl.b.mac)
	out := ethernet.Frame{Dst: req.SenderHA, Src: nl.b.mac, Type: ethernet.TypeARP, Payload: rep.Marshal()}
	outRaw, err := out.Marshal()
	if err != nil {
		return
	}
	cost := nl.b.cost.KernelCrossing(len(raw)) + nl.b.cost.NativePerFrame + nl.b.cost.KernelCrossing(len(outRaw))
	port := inPort
	nl.b.cpu.Exec(cost, func() {
		nl.b.Stats.FramesSent++
		nl.b.ports[port].Send(outRaw)
	})
}

func (nl *netLoader) encodeReply(rep tftp.Reply) ([]byte, error) {
	dgOut := udp.Datagram{SrcPort: rep.FromPort, DstPort: rep.To.Port, Payload: rep.Payload}
	udpBytes, err := dgOut.Marshal(nl.addr, rep.To.Addr)
	if err != nil {
		return nil, err
	}
	ipOut := ipv4.Packet{
		TTL: 64, Protocol: ipv4.ProtoUDP,
		Src: nl.addr, Dst: rep.To.Addr, Payload: udpBytes,
	}
	ipBytes, err := ipOut.Marshal()
	if err != nil {
		return nil, err
	}
	peer := nl.peers[rep.To]
	fr := ethernet.Frame{Dst: peer.mac, Src: nl.b.mac, Type: ethernet.TypeIPv4, Payload: ipBytes}
	return fr.Marshal()
}
