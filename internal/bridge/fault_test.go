package bridge

import (
	"strings"
	"testing"

	"github.com/switchware/activebridge/internal/env"
	"github.com/switchware/activebridge/internal/netsim"
)

// counter2Manifest clones counterManifest into a second, API-compatible
// version for upgrade tests.
func counter2Manifest() env.Manifest {
	next := counterManifest()
	next.Name = "Counter2"
	next.Version = env.Version{Major: 2}
	next.Source = strings.ReplaceAll(next.Source, "counter.", "counter2.")
	next.Source = strings.ReplaceAll(next.Source, `"counter_tick"`, `"counter2_tick"`)
	next.Handlers = []string{"counter2.get"}
	next.Timers = []string{"counter2_tick"}
	next.Lifecycle = env.Lifecycle{
		Start: "counter2.start", Stop: "counter2.stop",
		Probe: "counter2.probe", Running: "counter2.running",
	}
	return next
}

// startedCounterUpgrade installs and starts the counter, then begins an
// upgrade to Counter2 with a short validation window.
func startedCounterUpgrade(t *testing.T, r *rig) *Upgrade {
	t.Helper()
	man := r.b.Manager()
	if _, err := man.Install(counterManifest()); err != nil {
		t.Fatal(err)
	}
	if _, err := man.Query("counter.start", ""); err != nil {
		t.Fatal(err)
	}
	u, err := man.Upgrade("Counter", counter2Manifest(), UpgradeOptions{
		SuppressFor: netsim.Second, ValidateAfter: 2 * netsim.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if u.State() != UpgradeValidating {
		t.Fatalf("state = %v, want validating", u.State())
	}
	return u
}

// TestUpgradeRollsBackOnLinkFlap pins the fault-aware validation
// contract: a port losing carrier during the validation window rolls the
// upgrade back immediately — the probe comparison would be measured
// across the fault — and the stale validate fire stays a no-op.
func TestUpgradeRollsBackOnLinkFlap(t *testing.T) {
	r := newRig(t)
	man := r.b.Manager()
	u := startedCounterUpgrade(t, r)

	// The flap arrives mid-window.
	r.run(netsim.Second)
	r.b.SetPortLink(0, true)

	if u.State() != UpgradeRolledBack {
		t.Fatalf("state = %v, want rolled-back", u.State())
	}
	if !strings.Contains(u.Reason, "fault during validation window") ||
		!strings.Contains(u.Reason, "port 0 link down") {
		t.Errorf("Reason = %q", u.Reason)
	}
	// The old switchlet is back in charge, the new one stopped.
	if v, _ := man.Query("counter.running", ""); v != "yes" {
		t.Errorf("old not running after rollback: %s", v)
	}
	if v, _ := man.Query("counter2.running", ""); v != "no" {
		t.Errorf("new still running after rollback: %s", v)
	}

	// Past ValidateAfter: the scheduled validate must not resurrect the
	// upgrade or flip the handoff.
	r.run(3 * netsim.Second)
	if u.State() != UpgradeRolledBack {
		t.Errorf("stale validate changed state to %v", u.State())
	}
	if v, _ := man.Query("counter.running", ""); v != "yes" {
		t.Errorf("old stopped by stale validate: %s", v)
	}

	// Healing the link is not a fault; after clearing the stopped new
	// image a fresh upgrade commits.
	r.b.SetPortLink(0, false)
	if err := man.Uninstall("Counter2"); err != nil {
		t.Fatal(err)
	}
	u2, err := man.Upgrade("Counter", counter2Manifest(), UpgradeOptions{
		SuppressFor: netsim.Second, ValidateAfter: 2 * netsim.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.run(3 * netsim.Second)
	if u2.State() != UpgradeCommitted {
		t.Errorf("clean retry = %v (reason %q), want committed", u2.State(), u2.Reason)
	}
}

// TestCrashDuringValidationRollsBackAndRestores: a fault-plane crash in
// the validation window marks the upgrade rolled back in the crash
// snapshot, and the cold restart re-installs and restarts the OLD
// switchlet — the new one dies with the node.
func TestCrashDuringValidationRollsBackAndRestores(t *testing.T) {
	r := newRig(t)
	man := r.b.Manager()
	u := startedCounterUpgrade(t, r)

	r.run(netsim.Second)
	r.b.Crash()

	if u.State() != UpgradeRolledBack {
		t.Fatalf("state = %v, want rolled-back", u.State())
	}
	if u.Reason != "bridge crashed during validation window" {
		t.Errorf("Reason = %q", u.Reason)
	}

	if err := r.b.Restart(); err != nil {
		t.Fatalf("restart: %v", err)
	}
	if _, ok := man.Installed("Counter"); !ok {
		t.Error("old switchlet not re-installed from the crash snapshot")
	}
	if _, ok := man.Installed("Counter2"); ok {
		t.Error("rolled-back upgrade's new switchlet survived the crash")
	}
	if v, _ := man.Query("counter.running", ""); v != "yes" {
		t.Errorf("old switchlet not restarted: %s", v)
	}
	// The dead upgrade stays dead past its ValidateAfter.
	r.run(3 * netsim.Second)
	if u.State() != UpgradeRolledBack {
		t.Errorf("post-restart validate changed state to %v", u.State())
	}
	if r.b.Stats.Crashes != 1 || r.b.Stats.Restarts != 1 {
		t.Errorf("Stats crashes/restarts = %d/%d, want 1/1", r.b.Stats.Crashes, r.b.Stats.Restarts)
	}
}

// TestCrashRestartColdState pins the power-cut semantics: a crashed node
// reports Crashed, drops carrier on every port, answers no queries, and
// comes back cold — Manager-installed manifests restored and running,
// learning state wiped (covered at the netsim layer), timers dead until
// re-armed by the restarted switchlet.
func TestCrashRestartColdState(t *testing.T) {
	r := newRig(t)
	man := r.b.Manager()
	if _, err := man.Install(counterManifest()); err != nil {
		t.Fatal(err)
	}
	if _, err := man.Query("counter.start", ""); err != nil {
		t.Fatal(err)
	}
	// Let the tick timer fire a few times so the counter holds state that
	// must NOT survive the crash.
	r.run(netsim.Second)
	if v, _ := man.Query("counter.get", ""); v == "0" {
		t.Fatal("timer never fired before the crash")
	}

	r.b.Crash()
	if !r.b.Crashed() {
		t.Fatal("Crashed() false after Crash")
	}
	for p := 0; p < r.b.NumPorts(); p++ {
		if !r.b.Port(p).LinkDown() {
			t.Errorf("port %d still has carrier while crashed", p)
		}
	}
	// Crash is idempotent: a second power cut on a dead node is a no-op.
	r.b.Crash()
	if r.b.Stats.Crashes != 1 {
		t.Errorf("double crash counted: %d", r.b.Stats.Crashes)
	}

	if err := r.b.Restart(); err != nil {
		t.Fatalf("restart: %v", err)
	}
	if r.b.Crashed() {
		t.Error("still crashed after Restart")
	}
	for p := 0; p < r.b.NumPorts(); p++ {
		if r.b.Port(p).LinkDown() {
			t.Errorf("port %d carrier not restored", p)
		}
	}
	// Cold state: the VM heap died, so the counter restarts from zero and
	// its lifecycle Start ran again (the snapshot recorded it running).
	if v, err := man.Query("counter.running", ""); err != nil || v != "yes" {
		t.Errorf("counter.running = %q, %v", v, err)
	}
	if v, _ := man.Query("counter.get", ""); v != "0" {
		t.Errorf("counter state survived the crash: %s", v)
	}
	// The re-armed timer ticks again after restart.
	r.run(netsim.Second)
	if v, _ := man.Query("counter.get", ""); v == "0" {
		t.Error("timer not re-armed after cold restart")
	}
	// Restart on a running node is a no-op.
	if err := r.b.Restart(); err != nil {
		t.Errorf("redundant restart: %v", err)
	}
	if r.b.Stats.Restarts != 1 {
		t.Errorf("double restart counted: %d", r.b.Stats.Restarts)
	}
}
