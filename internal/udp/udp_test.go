package udp

import (
	"bytes"
	"testing"
	"testing/quick"

	"github.com/switchware/activebridge/internal/ipv4"
)

var (
	srcA = ipv4.Addr{10, 0, 0, 1}
	dstA = ipv4.Addr{10, 0, 0, 2}
)

func TestRoundTrip(t *testing.T) {
	d := Datagram{SrcPort: 4000, DstPort: 69, Payload: []byte("switchlet")}
	b, err := d.Marshal(srcA, dstA)
	if err != nil {
		t.Fatal(err)
	}
	var g Datagram
	if err := g.Unmarshal(srcA, dstA, b); err != nil {
		t.Fatal(err)
	}
	if g.SrcPort != 4000 || g.DstPort != 69 || !bytes.Equal(g.Payload, d.Payload) {
		t.Errorf("round trip mismatch: %+v", g)
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	d := Datagram{SrcPort: 1, DstPort: 2, Payload: []byte("datadata")}
	b, _ := d.Marshal(srcA, dstA)
	b[9] ^= 0x01
	var g Datagram
	if err := g.Unmarshal(srcA, dstA, b); err != ErrBadChecksum {
		t.Errorf("err = %v, want ErrBadChecksum", err)
	}
}

func TestChecksumDetectsWrongAddresses(t *testing.T) {
	d := Datagram{SrcPort: 1, DstPort: 2, Payload: []byte("x")}
	b, _ := d.Marshal(srcA, dstA)
	var g Datagram
	if err := g.Unmarshal(srcA, ipv4.Addr{10, 0, 0, 99}, b); err != ErrBadChecksum {
		t.Errorf("pseudo-header should bind addresses; err = %v", err)
	}
}

func TestZeroChecksumAccepted(t *testing.T) {
	d := Datagram{SrcPort: 7, DstPort: 8, Payload: []byte("nochecksum")}
	b, _ := d.Marshal(srcA, dstA)
	b[6], b[7] = 0, 0 // "checksum not computed"
	var g Datagram
	if err := g.Unmarshal(srcA, dstA, b); err != nil {
		t.Errorf("zero checksum should be accepted: %v", err)
	}
}

func TestTrailingPaddingTrimmed(t *testing.T) {
	d := Datagram{SrcPort: 1, DstPort: 2, Payload: []byte{1, 2, 3}}
	b, _ := d.Marshal(srcA, dstA)
	padded := append(b, make([]byte, 30)...)
	var g Datagram
	if err := g.Unmarshal(srcA, dstA, padded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(g.Payload, []byte{1, 2, 3}) {
		t.Errorf("payload = %v", g.Payload)
	}
}

func TestErrors(t *testing.T) {
	var g Datagram
	if err := g.Unmarshal(srcA, dstA, []byte{1, 2, 3}); err != ErrTruncated {
		t.Errorf("truncated: %v", err)
	}
	bad := make([]byte, 8)
	bad[5] = 4 // length 4 < header
	if err := g.Unmarshal(srcA, dstA, bad); err != ErrBadLength {
		t.Errorf("bad length: %v", err)
	}
	big := Datagram{Payload: make([]byte, 0x10000)}
	if _, err := big.Marshal(srcA, dstA); err != ErrTooBig {
		t.Errorf("too big: %v", err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(sp, dp uint16, src, dst ipv4.Addr, payload []byte) bool {
		if len(payload) > 60000 {
			payload = payload[:60000]
		}
		d := Datagram{SrcPort: sp, DstPort: dp, Payload: payload}
		b, err := d.Marshal(src, dst)
		if err != nil {
			return false
		}
		var g Datagram
		if err := g.Unmarshal(src, dst, b); err != nil {
			return false
		}
		return g.SrcPort == sp && g.DstPort == dp && bytes.Equal(g.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
