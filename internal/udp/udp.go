// Package udp implements the minimal UDP layer of the Active Bridge's
// network loading stack (paper §5.2). Checksums over the IPv4 pseudo-header
// are computed and verified; a zero received checksum means "not computed"
// per RFC 768.
package udp

import (
	"encoding/binary"
	"errors"

	"github.com/switchware/activebridge/internal/ipv4"
)

// HeaderLen is the fixed UDP header size.
const HeaderLen = 8

// Errors.
var (
	ErrTruncated   = errors.New("udp: truncated datagram")
	ErrBadLength   = errors.New("udp: length field mismatch")
	ErrBadChecksum = errors.New("udp: checksum mismatch")
	ErrTooBig      = errors.New("udp: datagram exceeds 65535 bytes")
)

// Datagram is a parsed UDP datagram.
type Datagram struct {
	SrcPort, DstPort uint16
	Payload          []byte
}

// Marshal encodes the datagram, computing the checksum over the IPv4
// pseudo-header for src -> dst.
func (d *Datagram) Marshal(src, dst ipv4.Addr) ([]byte, error) {
	total := HeaderLen + len(d.Payload)
	if total > 0xffff {
		return nil, ErrTooBig
	}
	b := make([]byte, total)
	binary.BigEndian.PutUint16(b[0:2], d.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], d.DstPort)
	binary.BigEndian.PutUint16(b[4:6], uint16(total))
	copy(b[HeaderLen:], d.Payload)
	ck := pseudoChecksum(src, dst, b)
	if ck == 0 {
		ck = 0xffff // transmitted zero means "no checksum"
	}
	binary.BigEndian.PutUint16(b[6:8], ck)
	return b, nil
}

// Unmarshal decodes and validates b as a datagram carried from src to dst.
func (d *Datagram) Unmarshal(src, dst ipv4.Addr, b []byte) error {
	if len(b) < HeaderLen {
		return ErrTruncated
	}
	length := int(binary.BigEndian.Uint16(b[4:6]))
	if length < HeaderLen || length > len(b) {
		return ErrBadLength
	}
	b = b[:length]
	if binary.BigEndian.Uint16(b[6:8]) != 0 {
		if pseudoChecksum(src, dst, b) != 0 {
			return ErrBadChecksum
		}
	}
	d.SrcPort = binary.BigEndian.Uint16(b[0:2])
	d.DstPort = binary.BigEndian.Uint16(b[2:4])
	d.Payload = b[HeaderLen:]
	return nil
}

// pseudoChecksum computes the UDP checksum including the IPv4 pseudo-header.
// When the checksum field of b is already filled, a valid datagram sums to 0.
func pseudoChecksum(src, dst ipv4.Addr, b []byte) uint16 {
	var sum uint32
	add16 := func(v uint16) { sum += uint32(v) }
	add16(binary.BigEndian.Uint16(src[0:2]))
	add16(binary.BigEndian.Uint16(src[2:4]))
	add16(binary.BigEndian.Uint16(dst[0:2]))
	add16(binary.BigEndian.Uint16(dst[2:4]))
	add16(uint16(ipv4.ProtoUDP))
	add16(uint16(len(b)))
	for i := 0; i+1 < len(b); i += 2 {
		add16(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}
