// Package testbed wires the paper's measurement configurations:
//
//	Figure 8 (baseline): Host#1 -- 100 Mb/s LAN -- Host#2
//	Figure 7 (bridged):  Host#1 -- LAN#1 -- node -- LAN#2 -- Host#2
//
// where node is the active bridge (swl switchlets), the active bridge with
// native-code switchlets (ablation), or the C buffered repeater.
//
// It is a thin wrapper over the declarative topology layer
// (internal/topo): the four Paths are just four small graphs. Arbitrary
// multi-bridge extended LANs are declared directly with topo. Switchlet
// installation flows through each bridge's lifecycle Manager (manifests
// resolved from the declared BridgeKind), so a testbed bridge exposes
// the same Install/Query/Upgrade surface as any SDK-embedded node —
// Manager() is the shortcut to it.
package testbed

import (
	"fmt"

	"github.com/switchware/activebridge/internal/baseline"
	"github.com/switchware/activebridge/internal/bridge"
	"github.com/switchware/activebridge/internal/ipv4"
	"github.com/switchware/activebridge/internal/netsim"
	"github.com/switchware/activebridge/internal/topo"
	"github.com/switchware/activebridge/internal/workload"
)

// Path selects the forwarding element between the two hosts.
type Path int

// The measured configurations.
const (
	Direct Path = iota // single shared LAN, no intermediary
	Repeater
	ActiveBridge // swl learning switchlet (the paper's measured system)
	NativeBridge // native-code learning switchlet (ablation)
)

var pathNames = [...]string{"direct", "repeater", "active-bridge", "native-bridge"}

// Paths lists every measured configuration in presentation order.
var Paths = []Path{Direct, Repeater, ActiveBridge, NativeBridge}

// Valid reports whether p names a measured configuration.
func (p Path) Valid() bool { return p >= 0 && int(p) < len(pathNames) }

func (p Path) String() string {
	if !p.Valid() {
		return fmt.Sprintf("path(%d)", int(p))
	}
	return pathNames[p]
}

// ParsePath resolves a configuration name (as printed by String) to its
// Path, for CLI flag parsing.
func ParsePath(s string) (Path, error) {
	for i, name := range pathNames {
		if s == name {
			return Path(i), nil
		}
	}
	return 0, fmt.Errorf("testbed: unknown path %q (want one of %v)", s, pathNames[:])
}

// Testbed is a wired two-host measurement network.
type Testbed struct {
	// Net is the materialized topology; Sim aliases Net.Sim.
	Net    *topo.Net
	Sim    *netsim.Sim
	Cost   netsim.CostModel
	H1, H2 *workload.Host

	// Bridge is set for ActiveBridge/NativeBridge paths.
	Bridge *bridge.Bridge
	// Rep is set for the Repeater path.
	Rep *baseline.Repeater

	h1, h2 topo.HostID
}

// Addresses of the two hosts (the topo auto-assignment for hosts 1 and 2).
var (
	H1IP = ipv4.Addr{10, 0, 0, 1}
	H2IP = ipv4.Addr{10, 0, 0, 2}
)

// New builds the configuration. An error can only come from switchlet
// compilation, which is deterministic; it panics because it means the
// shipped sources are broken.
func New(path Path, cost netsim.CostModel) *Testbed {
	g := topo.New("testbed-" + path.String())
	h1 := g.AddHost("h1") // auto: 02:00:00:00:00:01 / 10.0.0.1
	h2 := g.AddHost("h2") // auto: 02:00:00:00:00:02 / 10.0.0.2
	var (
		brID  topo.BridgeID
		repID topo.RepeaterID
	)
	switch path {
	case Direct:
		lan := g.AddSegment("lan")
		g.Link(h1, lan)
		g.Link(h2, lan)
	case Repeater:
		lan1, lan2 := g.AddSegment("lan1"), g.AddSegment("lan2")
		repID = g.AddRepeater("rep")
		g.Link(h1, lan1)
		g.Link(repID, lan1)
		g.Link(h2, lan2)
		g.Link(repID, lan2)
	case ActiveBridge, NativeBridge:
		kind := topo.LearningBridge
		if path == NativeBridge {
			kind = topo.NativeLearningBridge
		}
		lan1, lan2 := g.AddSegment("lan1"), g.AddSegment("lan2")
		brID = g.AddBridge("br0", kind, 2)
		g.Link(h1, lan1)
		g.Link(brID, lan1)
		g.Link(h2, lan2)
		g.Link(brID, lan2)
	default:
		panic("testbed: unknown path " + path.String())
	}
	net := g.MustBuild(cost)
	tb := &Testbed{
		Net: net, Sim: net.Sim, Cost: cost,
		H1: net.Host(h1), H2: net.Host(h2),
		h1: h1, h2: h2,
	}
	switch path {
	case Repeater:
		tb.Rep = net.Repeater(repID)
	case ActiveBridge, NativeBridge:
		tb.Bridge = net.Bridge(brID)
	}
	return tb
}

// Warm primes the learning table (and any caches) with one probe in each
// direction so measurements see steady state. It routes through the topo
// warm-up helper, so every scenario warms identically (topo.WarmProbe).
func (tb *Testbed) Warm() { tb.Net.Warm(tb.h1, tb.h2) }

// Manager returns the bridge's switchlet lifecycle manager, for paths
// that have a bridge; it panics on Direct/Repeater configurations, which
// have no programmable node.
func (tb *Testbed) Manager() *bridge.Manager {
	if tb.Bridge == nil {
		panic("testbed: configuration has no bridge")
	}
	return tb.Bridge.Manager()
}

// Fingerprint is the determinism-relevant state of a finished experiment:
// if any optimization changes scheduling order, interpreter accounting or
// frame handling, some field here moves. All values are virtual-time
// quantities, identical on any machine.
type Fingerprint struct {
	Now        netsim.Time
	Steps      uint64
	AllocBytes uint64
	FramesIn   uint64
	FramesSent uint64
	VMTimeNs   int64
	KernelNs   int64
}

// Fingerprint captures the bridge-path determinism state (zero-valued for
// configurations without a bridge).
func (tb *Testbed) Fingerprint() Fingerprint {
	fp := Fingerprint{Now: tb.Sim.Now()}
	if tb.Bridge != nil {
		fp.Steps = tb.Bridge.Machine.Steps
		fp.AllocBytes = tb.Bridge.Machine.AllocBytes
		fp.FramesIn = tb.Bridge.Stats.FramesIn
		fp.FramesSent = tb.Bridge.Stats.FramesSent
		fp.VMTimeNs = int64(tb.Bridge.Stats.VMTime)
		fp.KernelNs = int64(tb.Bridge.Stats.KernelTime)
	}
	return fp
}

// PingRTT measures the mean ICMP round-trip time for the given data size.
func (tb *Testbed) PingRTT(size, count int) netsim.Duration {
	p := workload.NewPinger(tb.H1, H2IP, size, count)
	p.Run(tb.Sim.Now() + netsim.Time(netsim.Duration(count+5)*netsim.Second))
	return p.MeanRTT()
}

// TtcpRun streams total bytes with the given write size and returns the
// finished transfer.
func (tb *Testbed) TtcpRun(writeSize int, total int64) *workload.Ttcp {
	t := workload.NewTtcp(tb.H1, tb.H2, writeSize, total)
	t.Run(tb.Sim.Now() + netsim.Time(600*netsim.Second))
	return t
}
