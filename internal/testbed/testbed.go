// Package testbed wires the paper's measurement configurations:
//
//	Figure 8 (baseline): Host#1 -- 100 Mb/s LAN -- Host#2
//	Figure 7 (bridged):  Host#1 -- LAN#1 -- node -- LAN#2 -- Host#2
//
// where node is the active bridge (swl switchlets), the active bridge with
// native-code switchlets (ablation), or the C buffered repeater.
package testbed

import (
	"github.com/switchware/activebridge/internal/baseline"
	"github.com/switchware/activebridge/internal/bridge"
	"github.com/switchware/activebridge/internal/ethernet"
	"github.com/switchware/activebridge/internal/ipv4"
	"github.com/switchware/activebridge/internal/netsim"
	"github.com/switchware/activebridge/internal/switchlets"
	"github.com/switchware/activebridge/internal/workload"
)

// Path selects the forwarding element between the two hosts.
type Path int

// The measured configurations.
const (
	Direct Path = iota // single shared LAN, no intermediary
	Repeater
	ActiveBridge // swl learning switchlet (the paper's measured system)
	NativeBridge // native-code learning switchlet (ablation)
)

var pathNames = [...]string{"direct", "repeater", "active-bridge", "native-bridge"}

func (p Path) String() string { return pathNames[p] }

// Testbed is a wired two-host measurement network.
type Testbed struct {
	Sim    *netsim.Sim
	Cost   netsim.CostModel
	H1, H2 *workload.Host

	// Bridge is set for ActiveBridge/NativeBridge paths.
	Bridge *bridge.Bridge
	// Rep is set for the Repeater path.
	Rep *baseline.Repeater
}

// Addresses of the two hosts.
var (
	H1IP = ipv4.Addr{10, 0, 0, 1}
	H2IP = ipv4.Addr{10, 0, 0, 2}
	h1M  = ethernet.MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x01}
	h2M  = ethernet.MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x02}
)

// New builds the configuration. An error can only come from switchlet
// compilation, which is deterministic; it panics because it means the
// shipped sources are broken.
func New(path Path, cost netsim.CostModel) *Testbed {
	sim := netsim.New()
	tb := &Testbed{Sim: sim, Cost: cost}
	tb.H1 = workload.NewHost(sim, "h1", h1M, H1IP, cost)
	tb.H2 = workload.NewHost(sim, "h2", h2M, H2IP, cost)
	tb.H1.AddNeighbor(H2IP, h2M)
	tb.H2.AddNeighbor(H1IP, h1M)

	switch path {
	case Direct:
		lan := netsim.NewSegment(sim, "lan")
		lan.Attach(tb.H1.NIC)
		lan.Attach(tb.H2.NIC)
	case Repeater:
		lan1 := netsim.NewSegment(sim, "lan1")
		lan2 := netsim.NewSegment(sim, "lan2")
		tb.Rep = baseline.NewRepeater(sim, "rep", cost)
		lan1.Attach(tb.H1.NIC)
		lan1.Attach(tb.Rep.Port(0))
		lan2.Attach(tb.H2.NIC)
		lan2.Attach(tb.Rep.Port(1))
	case ActiveBridge, NativeBridge:
		lan1 := netsim.NewSegment(sim, "lan1")
		lan2 := netsim.NewSegment(sim, "lan2")
		tb.Bridge = bridge.New(sim, "br0", 1, 2, cost)
		lan1.Attach(tb.H1.NIC)
		lan1.Attach(tb.Bridge.Port(0))
		lan2.Attach(tb.H2.NIC)
		lan2.Attach(tb.Bridge.Port(1))
		if path == ActiveBridge {
			if err := switchlets.LoadLearning(tb.Bridge); err != nil {
				panic("testbed: learning switchlet failed to load: " + err.Error())
			}
		} else {
			switchlets.InstallNativeLearning(tb.Bridge)
		}
	}
	return tb
}

// Warm primes the learning table (and any caches) with one frame in each
// direction so measurements see steady state, then returns.
func (tb *Testbed) Warm() {
	tb.Sim.Schedule(tb.Sim.Now(), func() {
		_ = tb.H1.SendTest(tb.H2.MAC, []byte{0, 2})
	})
	tb.Sim.Run(tb.Sim.Now() + netsim.Time(50*netsim.Millisecond))
	tb.Sim.Schedule(tb.Sim.Now(), func() {
		_ = tb.H2.SendTest(tb.H1.MAC, []byte{0, 2})
	})
	tb.Sim.Run(tb.Sim.Now() + netsim.Time(50*netsim.Millisecond))
}

// Fingerprint is the determinism-relevant state of a finished experiment:
// if any optimization changes scheduling order, interpreter accounting or
// frame handling, some field here moves. All values are virtual-time
// quantities, identical on any machine.
type Fingerprint struct {
	Now        netsim.Time
	Steps      uint64
	AllocBytes uint64
	FramesIn   uint64
	FramesSent uint64
	VMTimeNs   int64
	KernelNs   int64
}

// Fingerprint captures the bridge-path determinism state (zero-valued for
// configurations without a bridge).
func (tb *Testbed) Fingerprint() Fingerprint {
	fp := Fingerprint{Now: tb.Sim.Now()}
	if tb.Bridge != nil {
		fp.Steps = tb.Bridge.Machine.Steps
		fp.AllocBytes = tb.Bridge.Machine.AllocBytes
		fp.FramesIn = tb.Bridge.Stats.FramesIn
		fp.FramesSent = tb.Bridge.Stats.FramesSent
		fp.VMTimeNs = int64(tb.Bridge.Stats.VMTime)
		fp.KernelNs = int64(tb.Bridge.Stats.KernelTime)
	}
	return fp
}

// PingRTT measures the mean ICMP round-trip time for the given data size.
func (tb *Testbed) PingRTT(size, count int) netsim.Duration {
	p := workload.NewPinger(tb.H1, H2IP, size, count)
	p.Run(tb.Sim.Now() + netsim.Time(netsim.Duration(count+5)*netsim.Second))
	return p.MeanRTT()
}

// TtcpRun streams total bytes with the given write size and returns the
// finished transfer.
func (tb *Testbed) TtcpRun(writeSize int, total int64) *workload.Ttcp {
	t := workload.NewTtcp(tb.H1, tb.H2, writeSize, total)
	t.Run(tb.Sim.Now() + netsim.Time(600*netsim.Second))
	return t
}
