package testbed

import (
	"testing"

	"github.com/switchware/activebridge/internal/netsim"
)

func TestPathStringBounds(t *testing.T) {
	for p, want := range map[Path]string{
		Direct: "direct", Repeater: "repeater",
		ActiveBridge: "active-bridge", NativeBridge: "native-bridge",
	} {
		if got := p.String(); got != want {
			t.Errorf("Path(%d).String() = %q, want %q", int(p), got, want)
		}
		if !p.Valid() {
			t.Errorf("Path(%d) should be valid", int(p))
		}
	}
	// Out-of-range values must render, not panic.
	for _, p := range []Path{Path(-1), Path(4), Path(99)} {
		if p.Valid() {
			t.Errorf("Path(%d) should be invalid", int(p))
		}
		if got := p.String(); got == "" {
			t.Errorf("Path(%d).String() = empty", int(p))
		}
	}
}

func TestParsePath(t *testing.T) {
	for _, p := range Paths {
		got, err := ParsePath(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePath(%q) = %v, %v; want %v", p.String(), got, err, p)
		}
	}
	if _, err := ParsePath("warp-drive"); err == nil {
		t.Error("ParsePath should reject unknown names")
	}
}

func TestPingCompletesOnAllPaths(t *testing.T) {
	for _, p := range []Path{Direct, Repeater, ActiveBridge, NativeBridge} {
		tb := New(p, netsim.DefaultCostModel())
		tb.Warm()
		rtt := tb.PingRTT(64, 5)
		if rtt <= 0 {
			t.Errorf("%v: no ping replies", p)
		}
	}
}

func TestPingLatencyOrdering(t *testing.T) {
	cost := netsim.DefaultCostModel()
	rtt := map[Path]netsim.Duration{}
	for _, p := range []Path{Direct, Repeater, ActiveBridge, NativeBridge} {
		tb := New(p, cost)
		tb.Warm()
		rtt[p] = tb.PingRTT(64, 10)
	}
	// Paper Figure 9 ordering: direct < repeater < active bridge.
	if !(rtt[Direct] < rtt[Repeater] && rtt[Repeater] < rtt[ActiveBridge]) {
		t.Errorf("latency ordering violated: direct=%v repeater=%v active=%v",
			rtt[Direct], rtt[Repeater], rtt[ActiveBridge])
	}
	// The native ablation sits between repeater and bytecode bridge.
	if !(rtt[NativeBridge] < rtt[ActiveBridge]) {
		t.Errorf("native bridge (%v) should beat bytecode bridge (%v)",
			rtt[NativeBridge], rtt[ActiveBridge])
	}
	// §7.2: the interpreter adds a few hundred microseconds per frame
	// each way over the native path.
	gap := rtt[ActiveBridge] - rtt[NativeBridge]
	if gap < 200*netsim.Microsecond || gap > 3*netsim.Millisecond {
		t.Errorf("VM latency contribution per RTT = %v, want ~0.5-1.5 ms", gap)
	}
}

func TestPingLatencyGrowsWithSize(t *testing.T) {
	tb := New(ActiveBridge, netsim.DefaultCostModel())
	tb.Warm()
	small := tb.PingRTT(64, 5)
	big := tb.PingRTT(4096, 5)
	if big <= small {
		t.Errorf("RTT(4096)=%v should exceed RTT(64)=%v", big, small)
	}
}

func TestTtcpThroughputOrdering(t *testing.T) {
	cost := netsim.DefaultCostModel()
	mbps := map[Path]float64{}
	for _, p := range []Path{Direct, Repeater, ActiveBridge, NativeBridge} {
		tb := New(p, cost)
		tb.Warm()
		tr := tb.TtcpRun(8192, 4<<20)
		if !tr.Done() {
			t.Fatalf("%v: transfer did not complete", p)
		}
		mbps[p] = tr.ThroughputMbps()
	}
	t.Logf("throughput: direct=%.1f repeater=%.1f active=%.1f native=%.1f",
		mbps[Direct], mbps[Repeater], mbps[ActiveBridge], mbps[NativeBridge])
	if !(mbps[Direct] > mbps[Repeater] && mbps[Repeater] > mbps[ActiveBridge]) {
		t.Errorf("throughput ordering violated: %v", mbps)
	}
	if !(mbps[NativeBridge] > mbps[ActiveBridge]) {
		t.Errorf("native should beat bytecode")
	}

	// Calibration anchors (paper §7.3): direct ≈ 76 Mb/s, active ≈ 16,
	// active ≈ 40-50%% of repeater. Tolerances are generous — shape, not
	// absolute identity, is the reproduction target.
	if mbps[Direct] < 60 || mbps[Direct] > 95 {
		t.Errorf("direct = %.1f Mb/s, want ~76", mbps[Direct])
	}
	if mbps[ActiveBridge] < 10 || mbps[ActiveBridge] > 24 {
		t.Errorf("active bridge = %.1f Mb/s, want ~16", mbps[ActiveBridge])
	}
	ratio := mbps[ActiveBridge] / mbps[Repeater]
	if ratio < 0.30 || ratio > 0.60 {
		t.Errorf("active/repeater = %.2f, want ~0.44", ratio)
	}
}

func TestTtcpFrameRateNeighborhood(t *testing.T) {
	// §7.3: "1790 frames per second for 1024 byte frames".
	tb := New(ActiveBridge, netsim.DefaultCostModel())
	tb.Warm()
	tr := tb.TtcpRun(1024, 2<<20)
	if !tr.Done() {
		t.Fatal("transfer incomplete")
	}
	fps := tr.FramesPerSecond()
	if fps < 1200 || fps > 2400 {
		t.Errorf("frame rate = %.0f fps at 1024 B, want neighborhood of 1800", fps)
	}
}

func TestThroughputMonotoneInWriteSize(t *testing.T) {
	tb0 := New(ActiveBridge, netsim.DefaultCostModel())
	tb0.Warm()
	small := tb0.TtcpRun(128, 1<<20).ThroughputMbps()
	tb1 := New(ActiveBridge, netsim.DefaultCostModel())
	tb1.Warm()
	large := tb1.TtcpRun(8192, 1<<20).ThroughputMbps()
	if !(large > small) {
		t.Errorf("throughput should grow with write size: 128B=%.1f 8192B=%.1f", small, large)
	}
}

func TestHostCPUAccounting(t *testing.T) {
	tb := New(Direct, netsim.DefaultCostModel())
	tb.Warm()
	tr := tb.TtcpRun(8192, 1<<20)
	if !tr.Done() {
		t.Fatal("transfer incomplete")
	}
	if tb.H1.CPU().Busy == 0 || tb.H2.CPU().Busy == 0 {
		t.Error("host CPU time not accounted")
	}
	if tb.H1.FramesOut == 0 || tb.H2.FramesIn == 0 {
		t.Error("host frame counters not accounted")
	}
}
