package experiments

import (
	"fmt"

	"github.com/switchware/activebridge/internal/ethernet"
	"github.com/switchware/activebridge/internal/ipv4"
	"github.com/switchware/activebridge/internal/netsim"
	"github.com/switchware/activebridge/internal/report"
	"github.com/switchware/activebridge/internal/scenario"
	"github.com/switchware/activebridge/internal/switchlets"
	"github.com/switchware/activebridge/internal/topo"
	"github.com/switchware/activebridge/internal/vm"
	"github.com/switchware/activebridge/internal/workload"
)

// This file holds the large-scale scenarios that go beyond the paper's
// measured configurations: multi-bridge fabrics the physical testbed
// could not build, declared with the topology layer and registered like
// every reproduced figure.

// Chain16 runs a 16-bridge linear extended LAN — the paper's two-LAN
// testbed stretched to 17 segments — and measures end-to-end latency and
// streaming throughput. Per-hop interpretation costs add linearly in
// RTT, while throughput stays pinned to a single interpreter's service
// rate because the bridges pipeline.
func Chain16(cost netsim.CostModel) (*report.Table, error) {
	const nBridges = 16
	t := &report.Table{
		Title:  fmt.Sprintf("Scale: %d-bridge linear chain", nBridges),
		Header: []string{"metric", "value"},
	}
	g := topo.New("chain16")
	segs := make([]topo.SegmentID, nBridges+1)
	for i := range segs {
		segs[i] = g.AddSegment(fmt.Sprintf("s%d", i))
	}
	h1 := g.AddHost("")
	h2 := g.AddHost("")
	for i := 0; i < nBridges; i++ {
		b := g.AddBridge("", topo.LearningBridge, 2)
		g.Link(b, segs[i])
		g.Link(b, segs[i+1])
	}
	g.Link(h1, segs[0])
	g.Link(h2, segs[nBridges])
	// The ttcp stream is closed-loop (delivery at h2 releases h1's next
	// segment without a modelled ACK frame), so the pair must share a
	// shard; the bridges between them still spread across cores.
	g.Affine(h1, h2)
	net, err := g.Build(cost)
	if err != nil {
		return nil, err
	}
	net.Warm(h1, h2)

	p := workload.NewPinger(net.Host(h1), net.Host(h2).IP, 64, 5)
	p.Run(net.Sim.Now() + netsim.Time(60*netsim.Second))
	rtt := p.MeanRTT()

	tr := workload.NewTtcp(net.Host(h1), net.Host(h2), 8192, 1<<20)
	tr.Run(net.Sim.Now() + netsim.Time(600*netsim.Second))

	t.AddRow("bridges in path", fmt.Sprintf("%d", nBridges))
	t.AddRow("ping RTT 64B (ms)", report.Ms(rtt))
	t.AddRow("ttcp Mb/s (8KB writes)", report.Mbps(tr.ThroughputMbps()))
	t.AddRow("transfer complete", fmt.Sprintf("%v", tr.Done()))
	t.AddNote("RTT grows ~linearly with hop count (per-hop VM cost); throughput pipelines to a single bridge's service rate")
	return t, nil
}

// STPRing builds a 6-bridge ring — a physical loop the paper's
// configurations never dared — running learning plus the IEEE 802.1D
// switchlet on every bridge. The spanning tree must block exactly one
// redundant link, after which unicast connectivity works with no
// broadcast storm.
func STPRing(cost netsim.CostModel) (*report.Table, error) {
	const nBridges = 6
	t := &report.Table{
		Title:  fmt.Sprintf("Scale: %d-bridge STP ring with redundant link", nBridges),
		Header: []string{"metric", "value"},
	}
	g := topo.New("stp-ring")
	segs := make([]topo.SegmentID, nBridges)
	for i := range segs {
		segs[i] = g.AddSegment(fmt.Sprintf("r%d", i))
	}
	for i := 0; i < nBridges; i++ {
		b := g.AddBridge("", topo.STPBridge, 2)
		g.Link(b, segs[i])
		g.Link(b, segs[(i+1)%nBridges])
	}
	h1 := g.AddHost("")
	h2 := g.AddHost("")
	g.Link(h1, segs[0])
	g.Link(h2, segs[nBridges/2])
	net, err := g.Build(cost)
	if err != nil {
		return nil, err
	}
	sim := net.Sim
	// Cap the simulation as a storm guard: if the spanning tree failed to
	// break the loop, the cap (not the heat death of the process) ends
	// the run and the frame counts betray the storm.
	sim.MaxEvents = 5_000_000
	sim.Run(netsim.Time(45 * netsim.Second)) // protocol convergence

	blocked := 0
	for _, b := range net.Bridges() {
		for p := 0; p < b.NumPorts(); p++ {
			if b.PortBlocked(p) {
				blocked++
			}
		}
	}

	net.Warm(h1, h2)
	p := workload.NewPinger(net.Host(h1), net.Host(h2).IP, 64, 5)
	p.Run(sim.Now() + netsim.Time(60*netsim.Second))

	t.AddRow("bridges in ring", fmt.Sprintf("%d", nBridges))
	t.AddRow("ports blocked by STP", fmt.Sprintf("%d", blocked))
	t.AddRow("pings completed", fmt.Sprintf("%d/5", p.Completed()))
	t.AddRow("ping RTT 64B (ms)", report.Ms(p.MeanRTT()))
	t.AddNote("the tree breaks the loop by blocking one redundant port; traffic takes the surviving path")
	return t, nil
}

// Tree64 builds a 3-level bridged tree: one root bridge, 4 distribution
// bridges, 16 leaf LANs and 64 hosts — the "capacity to support many
// LANs and their associated endpoints" question of §7.4 posed as a
// campus topology. It verifies cross-tree connectivity and that learning
// confines a settled unicast conversation to its own subtree.
func Tree64(cost netsim.CostModel) (*report.Table, error) {
	const (
		nMids        = 4
		leavesPerMid = 4
		hostsPerLeaf = 4
	)
	t := &report.Table{
		Title:  "Scale: 3-level tree, 64 hosts on 16 leaf LANs",
		Header: []string{"metric", "value"},
	}
	g := topo.New("tree64")
	root := g.AddBridge("root", topo.LearningBridge, nMids)
	trunks := make([]topo.SegmentID, nMids)
	mids := make([]topo.BridgeID, nMids)
	var leaves []topo.SegmentID
	var hosts []topo.HostID
	for m := 0; m < nMids; m++ {
		trunks[m] = g.AddSegment(fmt.Sprintf("trunk%d", m))
		mids[m] = g.AddBridge(fmt.Sprintf("mid%d", m), topo.LearningBridge, 1+leavesPerMid)
		g.Link(root, trunks[m])
		g.Link(mids[m], trunks[m])
		for l := 0; l < leavesPerMid; l++ {
			leaf := g.AddSegment(fmt.Sprintf("leaf%d.%d", m, l))
			leaves = append(leaves, leaf)
			g.Link(mids[m], leaf)
			for h := 0; h < hostsPerLeaf; h++ {
				id := g.AddHost("")
				hosts = append(hosts, id)
				g.Link(id, leaf)
			}
		}
	}
	first, last := hosts[0], hosts[len(hosts)-1]
	g.Affine(first, last) // closed-loop ttcp pair (see Chain16)
	net, err := g.Build(cost)
	if err != nil {
		return nil, err
	}

	// Settle the conversation, then measure cross-tree latency.
	net.Warm(first, last)
	p := workload.NewPinger(net.Host(first), net.Host(last).IP, 64, 5)
	p.Run(net.Sim.Now() + netsim.Time(60*netsim.Second))

	// An uninvolved leaf in a different subtree must see none of a
	// settled unicast exchange.
	bystander := net.Segment(leaves[leavesPerMid*2]) // first leaf of mid2
	before := bystander.Frames
	exch := workload.NewTtcp(net.Host(first), net.Host(last), 1024, 64<<10)
	exch.Run(net.Sim.Now() + netsim.Time(60*netsim.Second))
	leaked := bystander.Frames - before

	t.AddRow("hosts", fmt.Sprintf("%d", len(hosts)))
	t.AddRow("bridges", fmt.Sprintf("%d", 1+nMids))
	t.AddRow("leaf LANs", fmt.Sprintf("%d", len(leaves)))
	t.AddRow("cross-tree RTT 64B (ms)", report.Ms(p.MeanRTT()))
	t.AddRow("pings completed", fmt.Sprintf("%d/5", p.Completed()))
	t.AddRow("frames leaked to uninvolved leaf", fmt.Sprintf("%d", leaked))
	t.AddNote("after learning settles, a unicast conversation stays inside its root-path; other subtrees see nothing (paper §4)")
	return t, nil
}

// MixedFabric chains the paper's node types — C buffered repeaters, the
// bytecode active bridge and the native-code ablation — into one
// heterogeneous path and measures the composition.
func MixedFabric(cost netsim.CostModel) (*report.Table, error) {
	t := &report.Table{
		Title:  "Scale: mixed repeater/active-bridge fabric (5 hops)",
		Header: []string{"metric", "value"},
	}
	g := topo.New("mixed-fabric")
	segs := make([]topo.SegmentID, 5)
	for i := range segs {
		segs[i] = g.AddSegment(fmt.Sprintf("m%d", i))
	}
	h1 := g.AddHost("")
	h2 := g.AddHost("")
	rep0 := g.AddRepeater("")
	br1 := g.AddBridge("", topo.LearningBridge, 2)
	rep1 := g.AddRepeater("")
	br2 := g.AddBridge("", topo.NativeLearningBridge, 2)
	g.Link(h1, segs[0])
	g.Link(rep0, segs[0])
	g.Link(rep0, segs[1])
	g.Link(br1, segs[1])
	g.Link(br1, segs[2])
	g.Link(rep1, segs[2])
	g.Link(rep1, segs[3])
	g.Link(br2, segs[3])
	g.Link(br2, segs[4])
	g.Link(h2, segs[4])
	g.Affine(h1, h2) // closed-loop ttcp pair (see Chain16)
	net, err := g.Build(cost)
	if err != nil {
		return nil, err
	}
	net.Warm(h1, h2)

	p := workload.NewPinger(net.Host(h1), net.Host(h2).IP, 64, 5)
	p.Run(net.Sim.Now() + netsim.Time(60*netsim.Second))
	tr := workload.NewTtcp(net.Host(h1), net.Host(h2), 8192, 1<<20)
	tr.Run(net.Sim.Now() + netsim.Time(600*netsim.Second))

	t.AddRow("path", "host-rep-swl.bridge-rep-native.bridge-host")
	t.AddRow("ping RTT 64B (ms)", report.Ms(p.MeanRTT()))
	t.AddRow("ttcp Mb/s (8KB writes)", report.Mbps(tr.ThroughputMbps()))
	t.AddRow("transfer complete", fmt.Sprintf("%v", tr.Done()))
	t.AddNote("the slowest element — the interpreted bridge — sets the end-to-end rate; repeaters and the native bridge add latency only")
	return t, nil
}

// HotSwap upgrades a bridge under load: a dumb (flooding) switchlet
// carries a live ttcp stream while the learning switchlet is delivered
// over the network loader (§5.2). The swap happens between two frames of
// the stream; after one reverse probe re-warms the new table, the flood
// onto an uninvolved LAN stops.
func HotSwap(cost netsim.CostModel) (*report.Table, error) {
	t := &report.Table{
		Title:  "Scale: hot-swap dumb→learning under a live ttcp stream",
		Header: []string{"metric", "value"},
	}
	g := topo.New("hotswap")
	bID := g.AddBridge("br0", topo.DumbBridge, 3,
		topo.WithNetLoader(ipv4.Addr{10, 0, 0, 100}))
	lan1, lan2, lan3 := g.AddSegment("lan1"), g.AddSegment("lan2"), g.AddSegment("lan3")
	h1 := g.AddHost("")
	h2 := g.AddHost("")
	bystander := g.AddTap("bystander", ethernet.MAC{2, 0, 0, 0, 0xcd, 1})
	g.Link(h1, lan1)
	g.Link(bID, lan1)
	g.Link(h2, lan2)
	g.Link(bID, lan2)
	g.Link(bystander, lan3)
	g.Link(bID, lan3)
	g.Affine(h1, h2) // closed-loop ttcp pair (see Chain16)
	net, err := g.Build(cost)
	if err != nil {
		return nil, err
	}
	sim, b := net.Sim, net.Bridge(bID)
	net.Tap(bystander).SetRecv(func(*netsim.NIC, []byte) {})
	third := net.Segment(lan3)

	obj, _, err := vm.Compile(switchlets.ModLearning, switchlets.LearningSrc, b.Loader.SigEnv())
	if err != nil {
		return nil, err
	}

	tr := workload.NewTtcp(net.Host(h1), net.Host(h2), 8192, 4<<20)
	sim.Schedule(sim.Now()+1, tr.Start)

	up := workload.NewUploader(net.Host(h1), b.NetLoaderAddr(), "learning.swo", obj.Encode())
	sim.Schedule(sim.Now()+netsim.Time(500*netsim.Millisecond), up.Start)

	// Watch for the swap taking effect: snapshot the bystander LAN the
	// instant the network load lands, then re-warm the reverse path so
	// the fresh learning table finds h2 (the one-way stream never would).
	var leakedBefore uint64
	swapAt := netsim.Time(0)
	var watch func()
	watch = func() {
		if b.NetLoads() > 0 {
			leakedBefore = third.Frames
			swapAt = sim.Now()
			net.ScheduleWarm(h2, h1, sim.Now()+1)
			return
		}
		sim.After(10*netsim.Millisecond, watch)
	}
	sim.Schedule(sim.Now()+2, watch)

	sim.Run(sim.Now() + netsim.Time(600*netsim.Second))
	leakedAfter := third.Frames - leakedBefore

	t.AddRow("stream complete", fmt.Sprintf("%v", tr.Done()))
	t.AddRow("ttcp Mb/s (8KB writes)", report.Mbps(tr.ThroughputMbps()))
	t.AddRow("switchlets loaded via network", fmt.Sprintf("%d", b.NetLoads()))
	t.AddRow("swap at (s)", fmt.Sprintf("%.3f", swapAt.Seconds()))
	t.AddRow("frames leaked to third LAN before swap", fmt.Sprintf("%d", leakedBefore))
	t.AddRow("frames leaked after swap+rewarm", fmt.Sprintf("%d", leakedAfter))
	t.AddNote("behaviour is code: the upgrade rides the same frames it will later forward, and no frame of the stream is lost")
	return t, nil
}

// BroadcastStorm is the control experiment for STPRing: the same
// physical loop with no spanning tree (three dumb bridges in a triangle)
// melts down from a single broadcast. The simulator's event cap is the
// only thing that ends it — exactly why the paper's bridges carry a
// spanning tree switchlet.
func BroadcastStorm(cost netsim.CostModel) (*report.Table, error) {
	t := &report.Table{
		Title:  "Scale: broadcast storm in an unprotected 3-bridge loop",
		Header: []string{"metric", "value"},
	}
	g := topo.New("broadcast-storm")
	segs := make([]topo.SegmentID, 3)
	for i := range segs {
		segs[i] = g.AddSegment(fmt.Sprintf("loop%d", i))
	}
	for i := 0; i < 3; i++ {
		b := g.AddBridge("", topo.DumbBridge, 2)
		g.Link(b, segs[i])
		g.Link(b, segs[(i+1)%3])
	}
	tap := g.AddTap("storm-source", ethernet.MAC{2, 0, 0, 0, 0xdd, 1})
	g.Link(tap, segs[0])
	net, err := g.Build(cost)
	if err != nil {
		return nil, err
	}
	sim := net.Sim
	const eventCap = 100_000
	sim.MaxEvents = eventCap

	fr := ethernet.Frame{Dst: ethernet.Broadcast, Src: net.Tap(tap).MAC,
		Type: ethernet.TypeTest, Payload: make([]byte, 64)}
	raw, err := fr.Marshal()
	if err != nil {
		return nil, err
	}
	sim.Schedule(1, func() { net.Tap(tap).Send(raw) })
	executed := sim.Run(netsim.Time(10 * netsim.Second))

	var frames uint64
	for _, s := range segs {
		frames += net.Segment(s).Frames
	}
	t.AddRow("broadcasts injected", "1")
	t.AddRow("events executed", fmt.Sprintf("%d (cap %d)", executed, eventCap))
	t.AddRow("frames on the loop", fmt.Sprintf("%d", frames))
	t.AddRow("virtual time elapsed (ms)", fmt.Sprintf("%.3f", float64(sim.Now())/1e6))
	t.AddNote("one frame multiplies without bound and circulates at wire speed until the run is cut off; compare scale-stp-ring")
	return t, nil
}

// registerScale registers the beyond-the-paper scenarios; called from
// RegisterAll after the paper set so abbench prints the reproduction
// first.
func registerScale() {
	scenario.Register("scale-chain16",
		"16-bridge linear chain: latency adds per hop, throughput pipelines",
		Chain16,
		func(t *report.Table) error {
			if err := wantRows(4)(t); err != nil {
				return err
			}
			if t.Rows[3][1] != "true" {
				return fmt.Errorf("chain transfer did not complete")
			}
			rtt, err := cellFloat(t, 1, 1)
			if err != nil {
				return err
			}
			mbps, err := cellFloat(t, 2, 1)
			if err != nil {
				return err
			}
			if rtt <= 0 || mbps <= 0 {
				return fmt.Errorf("degenerate chain metrics: rtt=%v mbps=%v", rtt, mbps)
			}
			return nil
		})

	scenario.Register("scale-stp-ring",
		"6-bridge ring: 802.1D blocks the redundant link, traffic survives",
		STPRing,
		func(t *report.Table) error {
			if err := wantRows(4)(t); err != nil {
				return err
			}
			blocked, err := cellFloat(t, 1, 1)
			if err != nil {
				return err
			}
			if blocked < 1 {
				return fmt.Errorf("spanning tree blocked no ports: loop not broken")
			}
			if t.Rows[2][1] != "5/5" {
				return fmt.Errorf("pings incomplete across ring: %s", t.Rows[2][1])
			}
			return nil
		})

	scenario.Register("scale-tree64",
		"3-level tree, 64 hosts: cross-tree reachability with subtree isolation",
		Tree64,
		func(t *report.Table) error {
			if err := wantRows(6)(t); err != nil {
				return err
			}
			if t.Rows[4][1] != "5/5" {
				return fmt.Errorf("cross-tree pings incomplete: %s", t.Rows[4][1])
			}
			leaked, err := cellFloat(t, 5, 1)
			if err != nil {
				return err
			}
			if leaked != 0 {
				return fmt.Errorf("settled unicast leaked %v frames into another subtree", leaked)
			}
			return nil
		})

	scenario.Register("scale-mixed-fabric",
		"heterogeneous 5-hop path: repeaters + bytecode + native bridges",
		MixedFabric,
		func(t *report.Table) error {
			if err := wantRows(4)(t); err != nil {
				return err
			}
			if t.Rows[3][1] != "true" {
				return fmt.Errorf("fabric transfer did not complete")
			}
			return nil
		})

	scenario.Register("scale-hotswap",
		"dumb→learning switchlet swap under a live ttcp stream (§5.2 loader)",
		HotSwap,
		func(t *report.Table) error {
			if err := wantRows(6)(t); err != nil {
				return err
			}
			if t.Rows[0][1] != "true" {
				return fmt.Errorf("stream did not survive the swap")
			}
			if t.Rows[2][1] != "1" {
				return fmt.Errorf("expected exactly one network load, got %s", t.Rows[2][1])
			}
			before, err := cellFloat(t, 4, 1)
			if err != nil {
				return err
			}
			after, err := cellFloat(t, 5, 1)
			if err != nil {
				return err
			}
			if before < 10 {
				return fmt.Errorf("dumb phase leaked only %v frames; stream not flooding as expected", before)
			}
			if after >= before/2 {
				return fmt.Errorf("swap did not contain the flood: %v leaked after vs %v before", after, before)
			}
			return nil
		})

	scenario.Register("scale-broadcast-storm",
		"control for stp-ring: the same loop with no spanning tree melts down",
		BroadcastStorm,
		func(t *report.Table) error {
			if err := wantRows(4)(t); err != nil {
				return err
			}
			frames, err := cellFloat(t, 2, 1)
			if err != nil {
				return err
			}
			if frames < 1000 {
				return fmt.Errorf("expected a storm (>1000 frames from one broadcast), got %v", frames)
			}
			return nil
		})
}
