package experiments

import (
	"strconv"
	"strings"
	"testing"

	"github.com/switchware/activebridge/internal/netsim"
	"github.com/switchware/activebridge/internal/switchlets"
)

func cell(t *testing.T, tbl interface{ String() string }, rows [][]string, r, c int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(rows[r][c], 64)
	if err != nil {
		t.Fatalf("cell %d,%d = %q: %v\n%s", r, c, rows[r][c], err, tbl.String())
	}
	return v
}

func TestFig9Shape(t *testing.T) {
	cost := netsim.DefaultCostModel()
	tbl := Fig9PingLatency(cost)
	if len(tbl.Rows) != len(Fig9Sizes) {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for r := range tbl.Rows {
		direct := cell(t, tbl, tbl.Rows, r, 1)
		rep := cell(t, tbl, tbl.Rows, r, 2)
		act := cell(t, tbl, tbl.Rows, r, 3)
		nat := cell(t, tbl, tbl.Rows, r, 4)
		if !(direct < rep && rep < act) {
			t.Errorf("row %d: ordering direct<repeater<active violated: %v", r, tbl.Rows[r])
		}
		if !(nat < act) {
			t.Errorf("row %d: native should beat bytecode", r)
		}
		if r > 0 {
			prev := cell(t, tbl, tbl.Rows, r-1, 3)
			if act < prev {
				t.Errorf("active-bridge RTT not monotone in size at row %d", r)
			}
		}
	}
}

func TestFig10Shape(t *testing.T) {
	cost := netsim.DefaultCostModel()
	tbl := Fig10TtcpThroughput(cost)
	if len(tbl.Rows) != len(Fig10Sizes) {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	last := len(tbl.Rows) - 1
	direct := cell(t, tbl, tbl.Rows, last, 1)
	rep := cell(t, tbl, tbl.Rows, last, 2)
	act := cell(t, tbl, tbl.Rows, last, 3)
	if !(direct > rep && rep > act) {
		t.Errorf("8KB ordering violated: %v", tbl.Rows[last])
	}
	// Paper anchors within tolerance.
	if direct < 60 || direct > 95 {
		t.Errorf("direct = %v, want ~76", direct)
	}
	if act < 10 || act > 24 {
		t.Errorf("active = %v, want ~16", act)
	}
	if ratio := act / rep; ratio < 0.3 || ratio > 0.6 {
		t.Errorf("active/repeater = %v, want ~0.44", ratio)
	}
}

func TestFrameRatesShape(t *testing.T) {
	cost := netsim.DefaultCostModel()
	tbl := FrameRates(cost)
	if len(tbl.Rows) != len(FrameRateSizes) {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for r := range tbl.Rows {
		fps := cell(t, tbl, tbl.Rows, r, 1)
		if fps < 800 || fps > 3000 {
			t.Errorf("fps at %s B = %v, outside CPU-bound band", tbl.Rows[r][0], fps)
		}
		vmMs := cell(t, tbl, tbl.Rows, r, 3)
		if vmMs < 0.2 || vmMs > 0.8 {
			t.Errorf("VM ms/frame = %v, want paper regime 0.3-0.5", vmMs)
		}
	}
}

func TestLatencyDecompositionDominatedByVM(t *testing.T) {
	cost := netsim.DefaultCostModel()
	tbl := LatencyDecomposition(cost)
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	vm := cell(t, tbl, tbl.Rows, 2, 1)
	kin := cell(t, tbl, tbl.Rows, 1, 1)
	if vm <= kin {
		t.Errorf("switchlet execution (%v) should dominate kernel stage (%v)", vm, kin)
	}
}

func TestTable1RowsMatchPaperSequence(t *testing.T) {
	cost := netsim.DefaultCostModel()
	tbl := Table1Transition(cost)
	want := [][3]string{
		{"running", "loaded", "monitoring"},
		{"loaded", "running", "transition"},
		{"loaded", "running", "validating"},
		{"loaded", "running", "complete"},
		{"loaded", "running", "complete"},
	}
	if len(tbl.Rows) != len(want) {
		t.Fatalf("rows = %d\n%s", len(tbl.Rows), tbl)
	}
	for i, w := range want {
		got := tbl.Rows[i]
		if got[1] != w[0] || got[2] != w[1] || got[3] != w[2] {
			t.Errorf("row %d = %v, want %v", i, got[1:], w)
		}
	}
}

func TestTable1FallbackRow(t *testing.T) {
	cost := netsim.DefaultCostModel()
	tbl := Table1Fallback(cost)
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		if r[2] != "yes" || r[3] != "no" || r[4] != "fallback" {
			t.Errorf("fallback row = %v", r)
		}
	}
}

func TestAgilityNumbers(t *testing.T) {
	cost := netsim.DefaultCostModel()
	_, res, err := AgilityRing(cost)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 0.056 s and 30.1 s. Bands: switch-over well under 100 ms;
	// ping gated by the 2x15 s forward delay plus scheduling slop.
	if res.StartToIEEE <= 0 || res.StartToIEEE > 100*netsim.Millisecond {
		t.Errorf("StartToIEEE = %v, want < 0.1 s", res.StartToIEEE)
	}
	if res.StartToPing < 29*netsim.Second || res.StartToPing > 36*netsim.Second {
		t.Errorf("StartToPing = %v, want ~30 s", res.StartToPing)
	}
	if res.StartToPing < 100*res.StartToIEEE {
		t.Errorf("protocol timers should dwarf reconfiguration: %v vs %v",
			res.StartToPing, res.StartToIEEE)
	}
}

func TestNetworkLoadCompletes(t *testing.T) {
	cost := netsim.DefaultCostModel()
	tbl, err := NetworkLoad(cost)
	if err != nil {
		t.Fatal(err)
	}
	s := tbl.String()
	if !strings.Contains(s, "forwards after load             true") &&
		!strings.Contains(s, "forwards after load") {
		t.Fatalf("missing forward row:\n%s", s)
	}
	for _, r := range tbl.Rows {
		if r[0] == "forwards after load" && r[1] != "true" {
			t.Errorf("bridge does not forward after network load")
		}
		if r[0] == "switchlets loaded via network" && r[1] != "1" {
			t.Errorf("net loads = %s", r[1])
		}
	}
}

func TestAblationShapes(t *testing.T) {
	cost := netsim.DefaultCostModel()
	nat := AblationNativeVsBytecode(cost)
	if len(nat.Rows) != 3 {
		t.Fatalf("native ablation rows = %d", len(nat.Rows))
	}
	repeater := cell(t, nat, nat.Rows, 0, 1)
	native := cell(t, nat, nat.Rows, 1, 1)
	bytecode := cell(t, nat, nat.Rows, 2, 1)
	if !(native > bytecode) {
		t.Error("native must beat bytecode")
	}
	if (repeater-native)/repeater > 0.15 {
		t.Errorf("native should recover most of the repeater gap: rep=%v nat=%v", repeater, native)
	}

	learn := AblationLearning(cost)
	if len(learn.Rows) != 2 {
		t.Fatalf("learning ablation rows = %d", len(learn.Rows))
	}
	dumbLeak := cell(t, learn, learn.Rows, 0, 1)
	learnLeak := cell(t, learn, learn.Rows, 1, 1)
	if learnLeak >= dumbLeak {
		t.Errorf("learning should leak fewer frames: dumb=%v learning=%v", dumbLeak, learnLeak)
	}

	kc := AblationKernelCost(cost)
	if len(kc.Rows) != 4 {
		t.Fatalf("kernel ablation rows = %d", len(kc.Rows))
	}
	// Throughput decreases as kernel cost grows, for both columns.
	for r := 1; r < len(kc.Rows); r++ {
		if cell(t, kc, kc.Rows, r, 1) > cell(t, kc, kc.Rows, r-1, 1) {
			t.Error("active throughput should fall with kernel cost")
		}
		if cell(t, kc, kc.Rows, r, 2) > cell(t, kc, kc.Rows, r-1, 2) {
			t.Error("repeater throughput should fall with kernel cost")
		}
	}
}

func TestTransitionNetQueryUnknown(t *testing.T) {
	tn, err := NewTransitionNet(1, switchlets.SpanningSrc, netsim.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if got := tn.Query(tn.Bridges[0], "no.such.func"); got != "<unregistered>" {
		t.Errorf("Query unknown = %q", got)
	}
}

func TestScalabilitySaturates(t *testing.T) {
	cost := netsim.DefaultCostModel()
	tbl := Scalability(cost)
	t.Log("\n" + tbl.String())
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	agg1 := cell(t, tbl, tbl.Rows, 0, 2)
	agg8 := cell(t, tbl, tbl.Rows, 3, 2)
	// One stream already near-saturates the interpreter; eight streams
	// must not scale aggregate throughput by more than ~30%.
	if agg8 > agg1*1.3 {
		t.Errorf("aggregate scaled from %v to %v: bridge should be CPU-bound", agg1, agg8)
	}
	// Per-stream throughput falls as streams share the interpreter.
	per1 := cell(t, tbl, tbl.Rows, 0, 3)
	per8 := cell(t, tbl, tbl.Rows, 3, 3)
	if per8 >= per1 {
		t.Errorf("per-stream should fall under contention: %v -> %v", per1, per8)
	}
}
