package experiments

import (
	"fmt"

	"github.com/switchware/activebridge/internal/ethernet"
	"github.com/switchware/activebridge/internal/ipv4"
	"github.com/switchware/activebridge/internal/netsim"
	"github.com/switchware/activebridge/internal/report"
	"github.com/switchware/activebridge/internal/topo"
	"github.com/switchware/activebridge/internal/workload"
)

// Scalability reproduces §7.4: "the capacity to support many LANs and
// their associated endpoints can be stated as an aggregate throughput ...
// the important point is to get a sense of where adding another bridge
// makes more sense than attempting to augment an existing bridge."
//
// N disjoint host pairs stream simultaneously through one bridge with 2N
// ports. The single CPU — serialized by interpretation, exactly the
// paper's "the major limit is the concurrency we can access in our
// implementation" — caps aggregate throughput regardless of port count.
func Scalability(cost netsim.CostModel) *report.Table {
	t := &report.Table{
		Title:  "§7.4 scalability: aggregate throughput vs attached LAN pairs",
		Header: []string{"streams", "ports", "aggregate Mb/s", "per-stream Mb/s", "bridge CPU util"},
	}
	for _, n := range []int{1, 2, 4, 8} {
		agg, per, util := runScalability(n, cost)
		t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", 2*n),
			report.Mbps(agg), report.Mbps(per), fmt.Sprintf("%.0f%%", 100*util))
	}
	t.AddNote("aggregate saturates at the single interpreter's service rate: past that point, add another bridge (paper §7.4)")
	t.AddNote("the paper's GC pauses 'force the system to serialize the threads'; the cooperative VM here is serial by construction")
	return t
}

func runScalability(pairs int, cost netsim.CostModel) (aggregate, perStream, utilization float64) {
	g := topo.New("scalability")
	bID := g.AddBridge("br", topo.LearningBridge, 2*pairs)
	srcs := make([]topo.HostID, pairs)
	dsts := make([]topo.HostID, pairs)
	for i := 0; i < pairs; i++ {
		lanA := g.AddSegment(fmt.Sprintf("a%d", i))
		lanB := g.AddSegment(fmt.Sprintf("b%d", i))
		srcs[i] = g.AddHost(fmt.Sprintf("s%d", i),
			topo.WithMAC(ethernet.MAC{2, 0, 0, 1, byte(i), 1}),
			topo.WithIP(ipv4.Addr{10, 4, byte(i), 1}))
		dsts[i] = g.AddHost(fmt.Sprintf("d%d", i),
			topo.WithMAC(ethernet.MAC{2, 0, 0, 1, byte(i), 2}),
			topo.WithIP(ipv4.Addr{10, 4, byte(i), 2}))
		g.Link(srcs[i], lanA)
		g.Link(bID, lanA) // bridge port 2i
		g.Link(dsts[i], lanB)
		g.Link(bID, lanB) // bridge port 2i+1
		// Each stream is a closed loop between its pair (unmodelled ACK
		// channel), so the pair must share a shard.
		g.Affine(srcs[i], dsts[i])
	}
	net := g.MustBuild(cost)
	sim, b := net.Sim, net.Bridge(bID)

	var ts []*workload.Ttcp
	const perStreamBytes = 1 << 20
	for i := 0; i < pairs; i++ {
		// Prime the learning table in both directions.
		net.ScheduleWarm(srcs[i], dsts[i], sim.Now())
		ts = append(ts, workload.NewTtcp(net.Host(srcs[i]), net.Host(dsts[i]), 8192, perStreamBytes))
	}
	sim.Run(sim.Now() + netsim.Time(100*netsim.Millisecond))

	start := sim.Now()
	busy0 := b.CPU().Busy
	for _, tr := range ts {
		tr := tr
		sim.Schedule(start+1, tr.Start)
	}
	sim.Run(start + netsim.Time(900*netsim.Second))

	// All transfers started together; the last completion bounds the
	// aggregate window.
	var window netsim.Duration
	totalBytes := 0.0
	done := 0
	for _, tr := range ts {
		if tr.Done() {
			done++
			totalBytes += perStreamBytes
			if tr.Elapsed() > window {
				window = tr.Elapsed()
			}
		}
	}
	if done == 0 || window <= 0 {
		return 0, 0, 0
	}
	aggregate = totalBytes * 8 / window.Seconds() / 1e6
	perStream = aggregate / float64(done)
	// One busy-window definition for the table and the scraped
	// ab_bridge_cpu_utilization gauge (netsim.Utilization clamps the
	// cost-accounting rounding that can push the raw ratio past 1).
	utilization = netsim.Utilization(b.CPU().Busy-busy0, window)
	return aggregate, perStream, utilization
}
