package experiments

import (
	"testing"
	"time"

	"github.com/switchware/activebridge/internal/netsim"
)

// TestUtilizationMatchesInlineClamp pins that the shared helper the
// scalability table now uses computes exactly what its inline
// busy-window math used to: busy/window with the >1 clamp. If the
// helper's definition ever drifts, the table, CPU.Utilization and the
// scraped ab_bridge_cpu_utilization gauge would silently disagree —
// this test is the tripwire.
func TestUtilizationMatchesInlineClamp(t *testing.T) {
	inline := func(busy, window time.Duration) float64 {
		u := float64(busy) / float64(window)
		if u > 1 {
			u = 1
		}
		return u
	}
	windows := []time.Duration{time.Microsecond, time.Millisecond, 900 * time.Second}
	fractions := []float64{0, 0.001, 0.25, 0.5, 0.97, 1.0, 1.0001, 3.5}
	for _, w := range windows {
		for _, f := range fractions {
			busy := time.Duration(float64(w) * f)
			got := netsim.Utilization(busy, w)
			want := inline(busy, w)
			if got != want {
				t.Errorf("Utilization(%v, %v) = %v, inline clamp = %v", busy, w, got, want)
			}
			// CPU.Utilization resolves to the same definition.
			cpu := netsim.NewCPU(netsim.New())
			cpu.Busy = busy
			if got := cpu.Utilization(w); got != want {
				t.Errorf("CPU.Utilization(%v busy=%v) = %v, want %v", w, busy, got, want)
			}
		}
	}
	// The helper additionally defines the empty window (the scalability
	// path guards it before dividing; the gauge cannot).
	if got := netsim.Utilization(time.Second, 0); got != 0 {
		t.Errorf("Utilization(1s, 0) = %v, want 0", got)
	}
}
