// Package experiments regenerates every table and figure of the paper's
// evaluation (§6-§7) on the simulated testbed. Each function returns a
// report.Table whose rows mirror the series the paper reports; the
// EXPERIMENTS.md file records paper-vs-measured for each.
package experiments

import (
	"fmt"

	"github.com/switchware/activebridge/internal/netsim"
	"github.com/switchware/activebridge/internal/report"
	"github.com/switchware/activebridge/internal/testbed"
)

// Fig9Sizes are the ICMP data sizes of the paper's latency figure.
var Fig9Sizes = []int{32, 512, 1024, 2048, 4096}

// Fig9PingLatency reproduces Figure 9: ping RTT vs packet size for the
// direct connection, the C buffered repeater, and the active bridge (plus
// the native-switchlet ablation).
func Fig9PingLatency(cost netsim.CostModel) *report.Table {
	t := &report.Table{
		Title:  "Figure 9: ping latencies (ms RTT)",
		Header: []string{"size(B)", "direct", "repeater", "active-bridge", "native-bridge"},
	}
	paths := []testbed.Path{testbed.Direct, testbed.Repeater, testbed.ActiveBridge, testbed.NativeBridge}
	for _, size := range Fig9Sizes {
		row := []string{fmt.Sprintf("%d", size)}
		for _, p := range paths {
			tb := testbed.New(p, cost)
			tb.Warm()
			row = append(row, report.Ms(tb.PingRTT(size, 10)))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper: active bridge adds ~0.34 ms of Caml execution per frame over the repeater path")
	// Measure the VM contribution directly, as the paper's added
	// instrumentation did (§7.2).
	tbA := testbed.New(testbed.ActiveBridge, cost)
	tbA.Warm()
	tbN := testbed.New(testbed.NativeBridge, cost)
	tbN.Warm()
	gap := tbA.PingRTT(64, 10) - tbN.PingRTT(64, 10)
	t.AddNote("measured: VM execution adds %.2f ms per frame (RTT gap/2 vs native)", float64(gap)/2e6)
	return t
}

// Fig10Sizes are the write sizes of the paper's throughput figure.
var Fig10Sizes = []int{32, 512, 1024, 2048, 4096, 8192}

// Fig10Bytes is the per-trial transfer volume.
const Fig10Bytes = 4 << 20

// Fig10TtcpThroughput reproduces Figure 10: ttcp throughput vs write size
// for the three paths (plus the native ablation).
func Fig10TtcpThroughput(cost netsim.CostModel) *report.Table {
	t := &report.Table{
		Title:  "Figure 10: ttcp throughput (Mb/s)",
		Header: []string{"write(B)", "direct", "repeater", "active-bridge", "native-bridge"},
	}
	paths := []testbed.Path{testbed.Direct, testbed.Repeater, testbed.ActiveBridge, testbed.NativeBridge}
	var lastActive, lastRepeater float64
	for _, size := range Fig10Sizes {
		row := []string{fmt.Sprintf("%d", size)}
		for _, p := range paths {
			tb := testbed.New(p, cost)
			tb.Warm()
			tr := tb.TtcpRun(size, Fig10Bytes)
			row = append(row, report.Mbps(tr.ThroughputMbps()))
			if size == 8192 {
				switch p {
				case testbed.ActiveBridge:
					lastActive = tr.ThroughputMbps()
				case testbed.Repeater:
					lastRepeater = tr.ThroughputMbps()
				}
			}
		}
		t.AddRow(row...)
	}
	t.AddNote("paper: direct 76 Mb/s, active bridge 16 Mb/s at 8 KB writes; bridge ~44%% of repeater")
	if lastRepeater > 0 {
		t.AddNote("measured: active bridge is %.0f%% of the repeater at 8 KB writes",
			100*lastActive/lastRepeater)
	}
	return t
}

// FrameRateSizes are the §7.3 frame-size points.
var FrameRateSizes = []int{50, 128, 256, 512, 1024, 1460}

// FrameRates reproduces the §7.3 frame-rate series: delivered frames per
// second through the active bridge for each frame size, along with the
// measured per-frame VM cost and the implied interpretation-limited rate
// ("a limiting rate of 2100 frames per second or about 32 Mb/s").
func FrameRates(cost netsim.CostModel) *report.Table {
	t := &report.Table{
		Title:  "§7.3 frame rates through the active bridge",
		Header: []string{"frame payload(B)", "frames/s", "Mb/s", "VM ms/frame", "VM-limited fps"},
	}
	for _, size := range FrameRateSizes {
		tb := testbed.New(testbed.ActiveBridge, cost)
		tb.Warm()
		vm0, n0 := tb.Bridge.Stats.VMTime, tb.Bridge.Stats.FramesDelivered
		tr := tb.TtcpRun(size, 1<<20)
		vmPer := float64(0)
		if d := tb.Bridge.Stats.FramesDelivered - n0; d > 0 {
			vmPer = float64(tb.Bridge.Stats.VMTime-vm0) / float64(d)
		}
		limited := 0.0
		if vmPer > 0 {
			limited = 1e9 / vmPer
		}
		t.AddRow(
			fmt.Sprintf("%d", size),
			fmt.Sprintf("%.0f", tr.FramesPerSecond()),
			report.Mbps(tr.ThroughputMbps()),
			fmt.Sprintf("%.2f", vmPer/1e6),
			fmt.Sprintf("%.0f", limited),
		)
	}
	t.AddNote("paper: ~1790 frames/s at 1024 B; Caml cost 0.47 ms/frame => limit ~2100 fps (~32 Mb/s)")
	t.AddNote("paper's 360 fps at ~50 B reflects sender-side small-write overheads the closed-loop model abstracts; see EXPERIMENTS.md")
	return t
}

// LatencyDecomposition reproduces the Figure 5 / §7.2 instrumentation: the
// per-stage cost of one forwarded frame.
func LatencyDecomposition(cost netsim.CostModel) *report.Table {
	t := &report.Table{
		Title:  "Figure 5 path decomposition (one 1024-byte frame)",
		Header: []string{"stage", "cost (ms)"},
	}
	tb := testbed.New(testbed.ActiveBridge, cost)
	tb.Warm()
	tb.Bridge.TracePath = true
	tb.Sim.Schedule(tb.Sim.Now()+1, func() {
		_ = tb.H1.SendTest(tb.H2.MAC, make([]byte, 1024))
	})
	tb.Sim.Run(tb.Sim.Now() + netsim.Time(100*netsim.Millisecond))
	s := tb.Bridge.LastPath
	wire := float64(s.FrameLen*8+160) / 100e6 * 1e3
	t.AddRow("1-2. wire + adapter (per LAN)", fmt.Sprintf("%.3f", wire))
	t.AddRow("2-3. ISR + kernel delivery + recvfrom", report.Ms(s.KernelRecv))
	t.AddRow("4.   switchlet execution (Caml)", report.Ms(s.Exec))
	t.AddRow("5-6. sendto + kernel queueing", report.Ms(s.KernelSend))
	t.AddRow("7.   wire out", fmt.Sprintf("%.3f", wire))
	t.AddNote("paper §7.2: Caml code execution adds 0.34 ms per frame; the rest is the Linux path")
	return t
}
