package experiments

import (
	"fmt"

	"github.com/switchware/activebridge/internal/ipv4"
	"github.com/switchware/activebridge/internal/netsim"
	"github.com/switchware/activebridge/internal/report"
	"github.com/switchware/activebridge/internal/switchlets"
	"github.com/switchware/activebridge/internal/topo"
	"github.com/switchware/activebridge/internal/workload"
)

// NetworkLoad reproduces §5.2: a host delivers a compiled switchlet to a
// running bridge through the four-layer loading stack (Ethernet -> minimal
// IP -> minimal UDP -> write-only TFTP); the bridge loads it on receipt.
// It reports the object size, transfer time, and the load taking effect
// (frames forwarded only after the switchlet arrives).
func NetworkLoad(cost netsim.CostModel) (*report.Table, error) {
	t := &report.Table{
		Title:  "§5.2 network switchlet loading (TFTP over minimal UDP/IP)",
		Header: []string{"metric", "value"},
	}
	g := topo.New("netload")
	bID := g.AddBridge("br0", topo.EmptyBridge, 2,
		topo.WithNetLoader(ipv4.Addr{10, 0, 0, 100}))
	lan1, lan2 := g.AddSegment("lan1"), g.AddSegment("lan2")
	h1ID := g.AddHost("h1") // auto 10.0.0.1
	h2ID := g.AddHost("h2") // auto 10.0.0.2
	g.Link(h1ID, lan1)
	g.Link(bID, lan1)
	g.Link(h2ID, lan2)
	g.Link(bID, lan2)
	net, err := g.Build(cost)
	if err != nil {
		return nil, err
	}
	sim, b := net.Sim, net.Bridge(bID)
	h1, h2 := net.Host(h1ID), net.Host(h2ID)

	// Compile the learning switchlet against the bridge's environment,
	// with its manifest's capability grant enforced.
	enc, err := b.Manager().Compile(switchlets.LearningManifest())
	if err != nil {
		return nil, err
	}

	// Before the upload, the bridge forwards nothing.
	sim.Schedule(0, func() { _ = h1.SendTest(h2.MAC, make([]byte, 64)) })
	sim.Run(netsim.Time(200 * netsim.Millisecond))
	dropsBefore := b.Stats.NoHandlerDrops

	up := workload.NewUploader(h1, b.NetLoaderAddr(), "learning.swo", enc)
	sim.Schedule(sim.Now()+1, func() { up.Start() })
	sim.Run(sim.Now() + netsim.Time(10*netsim.Second))
	if !up.Done() {
		t.AddNote("WARNING: upload incomplete (err=%v)", up.Err())
		return t, nil
	}

	// After the upload, traffic flows.
	got := h2.FramesIn
	sim.Schedule(sim.Now()+1, func() { _ = h1.SendTest(h2.MAC, make([]byte, 64)) })
	sim.Run(sim.Now() + netsim.Time(200*netsim.Millisecond))
	forwardedAfter := h2.FramesIn > got

	t.AddRow("switchlet object size", fmt.Sprintf("%d bytes", len(enc)))
	t.AddRow("TFTP blocks", fmt.Sprintf("%d", len(enc)/512+1))
	t.AddRow("transfer+load time", fmt.Sprintf("%.1f ms", float64(up.Elapsed())/1e6))
	t.AddRow("bridge drops before load", fmt.Sprintf("%d", dropsBefore))
	t.AddRow("forwards after load", fmt.Sprintf("%v", forwardedAfter))
	t.AddRow("switchlets loaded via network", fmt.Sprintf("%d", b.NetLoads()))
	t.AddNote("paper §5.2: the server 'only services write requests in binary format. Any such file is taken to be a Caml byte code file' and is loaded on receipt")
	return t, nil
}
