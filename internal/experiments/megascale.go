package experiments

import (
	"fmt"

	"github.com/switchware/activebridge/internal/bridge"
	"github.com/switchware/activebridge/internal/ethernet"
	"github.com/switchware/activebridge/internal/ipv4"
	"github.com/switchware/activebridge/internal/metrics"
	"github.com/switchware/activebridge/internal/netsim"
	"github.com/switchware/activebridge/internal/report"
	"github.com/switchware/activebridge/internal/scenario"
	"github.com/switchware/activebridge/internal/switchlets"
	"github.com/switchware/activebridge/internal/topo"
	"github.com/switchware/activebridge/internal/workload"
)

// This file holds the mega-scale scenarios built for the sharded engine:
// fabrics far past the paper's testbed (hundreds of bridges, ~1k hosts)
// whose event load only becomes tractable when one Net spreads across
// cores. They run — byte-identically, just slower — on the serial engine
// too, which is how the golden suite pins them.

// FatTree256 builds a three-tier campus fabric of exactly 256 bridges —
// one core, 15 pod (aggregation) bridges on 5µs fiber trunks, and 240
// edge bridges on 2µs risers — with 960 hosts on 240 edge LANs, then
// drives a mixed workload: pod-local and cross-pod ttcp streams, ICMP
// echo trains, and two live TFTP switchlet deployments to empty edge
// bridges whose LANs only start forwarding once the learning switchlet
// arrives over the fabric itself (§5.2 at scale).
func FatTree256(cost netsim.CostModel) (*report.Table, error) {
	const (
		nPods        = 15
		edgesPerPod  = 16
		hostsPerEdge = 4
	)
	t := &report.Table{
		Title:  "Mega: 256-bridge fat-tree, 960 hosts, mixed ttcp/tftp/ping load",
		Header: []string{"metric", "value"},
	}

	g := topo.New("fattree256")
	core := g.AddBridge("core", topo.LearningBridge, nPods)
	type edge struct {
		id    topo.BridgeID
		lan   topo.SegmentID
		hosts []topo.HostID
	}
	var edges []edge
	loaderEdges := map[int]ipv4.Addr{
		0:   {10, 9, 0, 1}, // pod 0, first edge
		120: {10, 9, 0, 2}, // pod 7, mid-fabric edge
	}
	for p := 0; p < nPods; p++ {
		trunk := g.AddSegment(fmt.Sprintf("trunk%d", p), topo.WithPropagation(5*netsim.Microsecond))
		agg := g.AddBridge(fmt.Sprintf("agg%d", p), topo.LearningBridge, 1+edgesPerPod)
		g.Link(core, trunk)
		g.Link(agg, trunk)
		for e := 0; e < edgesPerPod; e++ {
			idx := p*edgesPerPod + e
			riser := g.AddSegment(fmt.Sprintf("riser%d.%d", p, e), topo.WithPropagation(2*netsim.Microsecond))
			kind := topo.LearningBridge
			var opts []topo.BridgeOpt
			if addr, ok := loaderEdges[idx]; ok {
				// Deployed live over the fabric: empty until TFTP delivers
				// the learning switchlet.
				kind = topo.EmptyBridge
				opts = append(opts, topo.WithNetLoader(addr))
			}
			eb := g.AddBridge(fmt.Sprintf("edge%d.%d", p, e), kind, 2, opts...)
			lan := g.AddSegment(fmt.Sprintf("lan%d.%d", p, e))
			g.Link(agg, riser)
			g.Link(eb, riser)
			g.Link(eb, lan)
			ed := edge{id: eb, lan: lan}
			for h := 0; h < hostsPerEdge; h++ {
				id := g.AddHost("")
				ed.hosts = append(ed.hosts, id)
				g.Link(id, lan)
			}
			edges = append(edges, ed)
		}
	}

	// Traffic matrix. Every ttcp pair is declared affine: the stream's
	// self-clocking (delivery releases the next segment) is the
	// unmodelled ACK channel, so the pair must share a shard.
	type flow struct{ src, dst topo.HostID }
	var local, cross []flow
	for p := 0; p < nPods; p++ {
		f := flow{edges[p*edgesPerPod+2].hosts[0], edges[p*edgesPerPod+9].hosts[1]}
		local = append(local, f)
		g.Affine(f.src, f.dst)
	}
	for i := 0; i < 4; i++ {
		f := flow{edges[(3*i+1)*edgesPerPod+4].hosts[2], edges[((3*i+8)%nPods)*edgesPerPod+11].hosts[3]}
		cross = append(cross, f)
		g.Affine(f.src, f.dst)
	}
	// The stream that only works after deployment: across the pod-0
	// loader edge.
	postPair := flow{edges[0].hosts[0], edges[5].hosts[0]}
	g.Affine(postPair.src, postPair.dst)

	net, err := g.Build(cost)
	if err != nil {
		return nil, err
	}
	sim := net.Sim

	// Warm all measured pairs under one clock, then settle. Launches are
	// staggered a nanosecond apart: the fabric is symmetric, so probes
	// released at the exact same instant would collide at shared bridges
	// at exactly equal nanoseconds — orderings the serial engine resolves
	// by global scheduling order, which a sharded run cannot know. A 1ns
	// skew keeps every such meeting strictly ordered in virtual time
	// (and is what any real fleet launcher would look like).
	at := sim.Now()
	for i, f := range append(append([]flow{}, local...), cross...) {
		net.ScheduleWarm(f.src, f.dst, at+netsim.Time(2*i))
	}
	sim.Run(at + netsim.Time(100*netsim.Millisecond))

	var streams []*workload.Ttcp
	for _, f := range local {
		streams = append(streams, workload.NewTtcp(net.Host(f.src), net.Host(f.dst), 8192, 512<<10))
	}
	for _, f := range cross {
		streams = append(streams, workload.NewTtcp(net.Host(f.src), net.Host(f.dst), 8192, 256<<10))
	}
	var pingers []*workload.Pinger
	for i := 0; i < 6; i++ {
		src := edges[(2*i)*edgesPerPod/2+7].hosts[1]
		dst := edges[((2*i+5)%nPods)*edgesPerPod+13].hosts[2]
		pingers = append(pingers, workload.NewPinger(net.Host(src), net.Host(dst).IP, 64, 5))
	}

	// With the metrics plane on, every flow publishes live throughput —
	// instruments only sample existing counters at quiescent points, so
	// the run (and its golden fingerprint) is identical either way.
	if reg := net.Metrics(); reg != nil {
		mls := metrics.Labels{{Name: "net", Value: "fattree256"}}
		for i, tr := range streams {
			tr.Instrument(reg, mls.With("flow", fmt.Sprintf("ttcp%d", i)))
		}
		for i, p := range pingers {
			p.Instrument(reg, mls.With("flow", fmt.Sprintf("ping%d", i)))
		}
	}

	start := sim.Now()
	for i, tr := range streams {
		tr := tr
		sim.Schedule(start+1+netsim.Time(i), tr.Start)
	}
	for i, p := range pingers {
		p := p
		sim.Schedule(start+1+netsim.Time(len(streams)+i), p.Start)
	}

	// Live deployments: compile once against a loader bridge's (empty)
	// environment, upload to both via TFTP through the fabric.
	deployIdx := []int{0, 120}
	var uploads []*workload.Uploader
	for di, idx := range deployIdx {
		b := net.Bridge(edges[idx].id)
		enc, err := b.Manager().Compile(switchlets.LearningManifest())
		if err != nil {
			return nil, err
		}
		up := workload.NewUploader(net.Host(edges[idx+1].hosts[0]), loaderEdges[idx], "learning.swo", enc)
		uploads = append(uploads, up)
		sim.Schedule(start+netsim.Time(netsim.Second)+netsim.Time(di)*netsim.Time(50*netsim.Millisecond), up.Start)
	}

	// The post-deployment stream crosses the freshly loaded edge bridge.
	post := workload.NewTtcp(net.Host(postPair.src), net.Host(postPair.dst), 8192, 128<<10)
	if reg := net.Metrics(); reg != nil {
		post.Instrument(reg, metrics.Labels{{Name: "net", Value: "fattree256"}, {Name: "flow", Value: "post-deploy"}})
	}
	sim.Schedule(start+netsim.Time(10*netsim.Second), func() {
		net.ScheduleWarm(postPair.src, postPair.dst, sim.Now())
	})
	sim.Schedule(start+netsim.Time(10*netsim.Second)+netsim.Time(200*netsim.Millisecond), post.Start)

	sim.Run(start + netsim.Time(120*netsim.Second))

	done := 0
	agg := 0.0
	for _, tr := range streams {
		if tr.Done() {
			done++
			agg += tr.ThroughputMbps()
		}
	}
	pings := 0
	var rtt netsim.Duration
	for _, p := range pingers {
		pings += p.Completed()
		rtt += p.MeanRTT()
	}
	rtt /= netsim.Duration(len(pingers))
	var loads uint64
	for _, idx := range deployIdx {
		loads += net.Bridge(edges[idx].id).NetLoads()
	}
	uploadsDone := 0
	for _, up := range uploads {
		if up.Done() {
			uploadsDone++
		}
	}

	t.AddRow("bridges", "256 (1 core + 15 agg + 240 edge)")
	t.AddRow("hosts", fmt.Sprintf("%d", len(edges)*hostsPerEdge))
	t.AddRow("ttcp streams complete", fmt.Sprintf("%d/%d", done, len(streams)))
	t.AddRow("aggregate ttcp Mb/s", report.Mbps(agg))
	t.AddRow("cross-pod pings", fmt.Sprintf("%d/30", pings))
	t.AddRow("mean RTT 64B (ms)", report.Ms(rtt))
	t.AddRow("switchlets deployed via TFTP", fmt.Sprintf("%d", loads))
	t.AddRow("post-deploy stream complete", fmt.Sprintf("%v", post.Done()))
	t.AddNote("behaviour is code at fabric scale: two edge bridges boot empty and join the fabric when the learning switchlet arrives over it")
	return t, nil
}

// Ring8RollingUpgrade runs the paper's §5.4 protocol transition as a
// fleet operation: an 8-bridge ring (loop!) running learning + the DEC
// spanning tree is upgraded bridge-by-bridge to the IEEE 802.1D
// switchlet through each bridge's lifecycle Manager, under a live ttcp
// stream. The roll is fast relative to the validation window, so every
// bridge's captured DEC tree is compared against the fully-converged
// IEEE tree — all eight upgrades must commit, no rollbacks, and
// connectivity must survive.
func Ring8RollingUpgrade(cost netsim.CostModel) (*report.Table, error) {
	const nBridges = 8
	t := &report.Table{
		Title:  "Mega: rolling DEC→IEEE upgrade across an 8-bridge STP ring under load",
		Header: []string{"metric", "value"},
	}
	g := topo.New("ring8-upgrade")
	segs := make([]topo.SegmentID, nBridges)
	for i := range segs {
		segs[i] = g.AddSegment(fmt.Sprintf("r%d", i))
	}
	bIDs := make([]topo.BridgeID, nBridges)
	for i := 0; i < nBridges; i++ {
		bIDs[i] = g.AddBridge(fmt.Sprintf("b%d", i+1), topo.EmptyBridge, 2)
		g.Link(bIDs[i], segs[i])
		g.Link(bIDs[i], segs[(i+1)%nBridges])
	}
	h1 := g.AddHost("")
	h2 := g.AddHost("")
	g.Link(h1, segs[0])
	g.Link(h2, segs[nBridges/2])
	g.Affine(h1, h2) // closed-loop ttcp pair
	net, err := g.Build(cost)
	if err != nil {
		return nil, err
	}
	sim := net.Sim

	// Provision the ring: learning + DEC (running) on every bridge, as
	// the pre-transition fleet state.
	for _, id := range bIDs {
		m := net.Bridge(id).Manager()
		if _, err := m.Install(switchlets.LearningManifest()); err != nil {
			return nil, err
		}
		if _, err := m.Install(switchlets.DECManifest()); err != nil {
			return nil, err
		}
	}
	sim.MaxEvents = 20_000_000               // storm guard only; never reached on a healthy roll
	sim.Run(netsim.Time(40 * netsim.Second)) // DEC converges, loop broken

	net.Warm(h1, h2)
	load := workload.NewTtcp(net.Host(h1), net.Host(h2), 8192, 64<<20)
	sim.Schedule(sim.Now()+1, load.Start)

	// The roll: one Manager.Upgrade every 600ms (off the 2s hello
	// lattice). Validation must outwait an artifact of rolling through a
	// mixed-protocol phase: bridges still on DEC flood IEEE BPDUs as
	// ordinary multicast data, so early-upgraded bridges hear tunneled,
	// under-costed root vectors that only age out via max-age (20s).
	// Validating 35s after each handoff gives the stale vectors time to
	// expire and the true IEEE tree time to re-converge — at which point
	// it must equal the captured DEC tree exactly.
	opts := bridge.UpgradeOptions{
		SuppressFor:   8 * netsim.Second,
		ValidateAfter: 35 * netsim.Second,
	}
	upgrades := make([]*bridge.Upgrade, nBridges)
	rollStart := netsim.Time(47*netsim.Second) + netsim.Time(300*netsim.Millisecond)
	for i := 0; i < nBridges; i++ {
		i := i
		at := rollStart + netsim.Time(i)*netsim.Time(600*netsim.Millisecond)
		sim.Schedule(at, func() {
			u, err := net.Bridge(bIDs[i]).Manager().Upgrade(switchlets.ModDEC, switchlets.SpanningManifest(), opts)
			if u != nil {
				upgrades[i] = u
			}
			_ = err // a start trap records itself in the upgrade state
		})
	}

	sim.Run(netsim.Time(95 * netsim.Second))
	deliveredDuringRoll := load.DeliveredBytes()

	// Post-roll health: the IEEE tree must hold the loop broken and carry
	// traffic.
	p := workload.NewPinger(net.Host(h1), net.Host(h2).IP, 64, 5)
	p.Run(sim.Now() + netsim.Time(20*netsim.Second))

	committed, rolledBack := 0, 0
	for _, u := range upgrades {
		if u == nil {
			continue
		}
		switch u.State() {
		case bridge.UpgradeCommitted:
			committed++
		case bridge.UpgradeRolledBack:
			rolledBack++
		}
	}
	blocked := 0
	for _, id := range bIDs {
		b := net.Bridge(id)
		for port := 0; port < b.NumPorts(); port++ {
			if b.PortBlocked(port) {
				blocked++
			}
		}
	}

	t.AddRow("bridges upgraded (committed)", fmt.Sprintf("%d/%d", committed, nBridges))
	t.AddRow("rollbacks", fmt.Sprintf("%d", rolledBack))
	t.AddRow("ports blocked after roll", fmt.Sprintf("%d", blocked))
	t.AddRow("MB delivered across the roll", fmt.Sprintf("%.1f", float64(deliveredDuringRoll)/(1<<20)))
	t.AddRow("pings after roll", fmt.Sprintf("%d/5", p.Completed()))
	t.AddNote("the paper's Table 1 transition as a per-bridge Manager primitive, rolled across a redundant fabric without losing the stream")
	return t, nil
}

// StormContainment builds a four-pod fabric where pod 0's LAN contains an
// unprotected dumb-bridge loop. One injected broadcast melts the pod down
// at its bridges' service rate, but the fabric survives: the boundary
// bridge's bounded transmit queue throttles what escapes, and hosts in
// far pods keep exchanging traffic while the storm rages.
func StormContainment(cost netsim.CostModel) (*report.Table, error) {
	const nPods = 4
	t := &report.Table{
		Title:  "Mega: broadcast-storm containment at a pod boundary",
		Header: []string{"metric", "value"},
	}
	g := topo.New("storm-containment")
	backbone := g.AddSegment("backbone", topo.WithPropagation(5*netsim.Microsecond))
	podLANs := make([]topo.SegmentID, nPods)
	var podHosts [][]topo.HostID
	for p := 0; p < nPods; p++ {
		podLANs[p] = g.AddSegment(fmt.Sprintf("pod%d", p))
		pb := g.AddBridge(fmt.Sprintf("pbr%d", p), topo.LearningBridge, 2)
		g.Link(pb, backbone)
		g.Link(pb, podLANs[p])
		var hosts []topo.HostID
		n := 2
		if p == 0 {
			n = 1 // the victim host inside the storm pod
		}
		for h := 0; h < n; h++ {
			id := g.AddHost("")
			hosts = append(hosts, id)
			g.Link(id, podLANs[p])
		}
		podHosts = append(podHosts, hosts)
	}
	// The latent loop inside pod 0: three bridges wired redundantly
	// around the pod LAN. They boot empty — the loop is inert until the
	// flooding switchlet arrives, so the fabric's steady state is healthy
	// and the storm has a precise ignition instant.
	s2 := g.AddSegment("loop1")
	s3 := g.AddSegment("loop2")
	d1 := g.AddBridge("d1", topo.EmptyBridge, 2)
	d2 := g.AddBridge("d2", topo.EmptyBridge, 2)
	d3 := g.AddBridge("d3", topo.EmptyBridge, 2)
	g.Link(d1, podLANs[0])
	g.Link(d1, s2)
	g.Link(d2, s2)
	g.Link(d2, s3)
	g.Link(d3, s3)
	g.Link(d3, podLANs[0])
	tap := g.AddTap("storm-source", ethernet.MAC{2, 0, 0, 0, 0xdd, 7})
	g.Link(tap, s2)

	// The far-pod conversation (pods 1 -> 3) that must ride out the
	// storm; the ttcp pair is closed-loop, so it shares a shard.
	src, dst := podHosts[1][0], podHosts[3][1]
	g.Affine(src, dst)

	net, err := g.Build(cost)
	if err != nil {
		return nil, err
	}
	sim := net.Sim
	net.Warm(src, dst)

	// Ignite: deploy the flooding (dumb) switchlet into the looped
	// topology — behaviour is code, and this code is a misconfiguration —
	// then feed the loop one broadcast and measure the far pods riding
	// out the melt-down.
	fr := ethernet.Frame{Dst: ethernet.Broadcast, Src: net.Tap(tap).MAC,
		Type: ethernet.TypeTest, Payload: make([]byte, 256)}
	raw, err := fr.Marshal()
	if err != nil {
		return nil, err
	}
	loopBridge := net.Bridge(d2)              // interior of the loop
	farBridge := net.Bridge(topo.BridgeID(2)) // pbr2: an uninvolved pod
	var loopBusy0, farBusy0 netsim.Duration
	igniteAt := sim.Now() + netsim.Time(100*netsim.Millisecond)
	sim.Schedule(igniteAt-netsim.Time(10*netsim.Millisecond), func() {
		for _, id := range []topo.BridgeID{d1, d2, d3} {
			if _, err := net.Bridge(id).Manager().Install(switchlets.DumbManifest()); err != nil {
				panic(err) // bundled manifest on an empty node cannot fail
			}
		}
	})
	sim.Schedule(igniteAt, func() {
		loopBusy0, farBusy0 = loopBridge.CPU().Busy, farBridge.CPU().Busy
		// A burst of broadcasts: each circulates the loop forever, so the
		// population saturates the loop interpreters within milliseconds.
		for i := 0; i < 48; i++ {
			net.Tap(tap).Send(raw)
		}
	})

	p := workload.NewPinger(net.Host(src), net.Host(dst).IP, 64, 3)
	sim.Schedule(igniteAt+netsim.Time(300*netsim.Millisecond), p.Start)
	tr := workload.NewTtcp(net.Host(src), net.Host(dst), 1024, 256<<10)
	sim.Schedule(igniteAt+netsim.Time(500*netsim.Millisecond), tr.Start)

	sim.Run(igniteAt + netsim.Time(3*netsim.Second))

	stormFrames := net.Segment(podLANs[0]).Frames + net.Segment(s2).Frames + net.Segment(s3).Frames
	backboneFrames := net.Segment(backbone).Frames
	window := sim.Now().Sub(igniteAt)
	loopUtil := float64(loopBridge.CPU().Busy-loopBusy0) / float64(window)
	farUtil := float64(farBridge.CPU().Busy-farBusy0) / float64(window)

	t.AddRow("storm frames inside pod 0", fmt.Sprintf("%d", stormFrames))
	t.AddRow("frames on the backbone", fmt.Sprintf("%d", backboneFrames))
	t.AddRow("containment ratio", fmt.Sprintf("%.1fx", float64(stormFrames)/float64(backboneFrames+1)))
	t.AddRow("loop bridge CPU util during storm", fmt.Sprintf("%.0f%%", 100*loopUtil))
	t.AddRow("far-pod CPU util during storm", fmt.Sprintf("%.0f%%", 100*farUtil))
	t.AddRow("far-pod pings during storm", fmt.Sprintf("%d/3", p.Completed()))
	t.AddRow("far-pod stream complete", fmt.Sprintf("%v", tr.Done()))
	t.AddNote("the storm saturates every interpreter it reaches, but the boundary's service rate caps what escapes: far pods run hot yet keep carrying their own traffic")
	return t, nil
}

// registerMegaScale registers the sharded-engine flagship scenarios;
// called from RegisterAll after the paper set and the scale set.
func registerMegaScale() {
	scenario.Register("scale-fattree256",
		"256-bridge fat-tree, 960 hosts: mixed ttcp/tftp/ping plus live deployment",
		FatTree256,
		func(t *report.Table) error {
			if err := wantRows(8)(t); err != nil {
				return err
			}
			if got := t.Rows[2][1]; got != "19/19" {
				return fmt.Errorf("streams incomplete: %s", got)
			}
			if got := t.Rows[4][1]; got != "30/30" {
				return fmt.Errorf("pings incomplete: %s", got)
			}
			if got := t.Rows[6][1]; got != "2" {
				return fmt.Errorf("expected 2 network deployments, got %s", got)
			}
			if got := t.Rows[7][1]; got != "true" {
				return fmt.Errorf("post-deploy stream incomplete")
			}
			return nil
		}).Slow = true

	scenario.Register("scale-ring8-upgrade",
		"rolling DEC→IEEE Manager upgrade across an 8-bridge STP ring under load",
		Ring8RollingUpgrade,
		func(t *report.Table) error {
			if err := wantRows(5)(t); err != nil {
				return err
			}
			if got := t.Rows[0][1]; got != "8/8" {
				return fmt.Errorf("upgrades incomplete: %s", got)
			}
			if got := t.Rows[1][1]; got != "0" {
				return fmt.Errorf("unexpected rollbacks: %s", got)
			}
			blocked, err := cellFloat(t, 2, 1)
			if err != nil {
				return err
			}
			if blocked < 1 {
				return fmt.Errorf("IEEE tree left the loop unbroken")
			}
			mb, err := cellFloat(t, 3, 1)
			if err != nil {
				return err
			}
			if mb <= 1 {
				return fmt.Errorf("stream starved across the roll: %.1f MB", mb)
			}
			if got := t.Rows[4][1]; got != "5/5" {
				return fmt.Errorf("post-roll pings incomplete: %s", got)
			}
			return nil
		})

	scenario.Register("scale-storm-containment",
		"broadcast storm raging inside one pod while far pods keep working",
		StormContainment,
		func(t *report.Table) error {
			if err := wantRows(7)(t); err != nil {
				return err
			}
			storm, err := cellFloat(t, 0, 1)
			if err != nil {
				return err
			}
			backbone, err := cellFloat(t, 1, 1)
			if err != nil {
				return err
			}
			if storm < 1000 {
				return fmt.Errorf("no storm ignited (%v frames)", storm)
			}
			if backbone*2 > storm {
				return fmt.Errorf("storm not contained: %v backbone vs %v pod frames", backbone, storm)
			}
			var loopUtil, farUtil float64
			if _, err := fmt.Sscanf(t.Rows[3][1], "%f%%", &loopUtil); err != nil {
				return fmt.Errorf("loop util cell %q: %w", t.Rows[3][1], err)
			}
			if _, err := fmt.Sscanf(t.Rows[4][1], "%f%%", &farUtil); err != nil {
				return fmt.Errorf("far util cell %q: %w", t.Rows[4][1], err)
			}
			if loopUtil < 90 {
				return fmt.Errorf("loop interpreters not melted (%v%% util); storm too weak", loopUtil)
			}
			_ = farUtil // reported for the table; liveness is what the ping/stream rows prove
			if got := t.Rows[5][1]; got != "3/3" {
				return fmt.Errorf("far-pod pings failed during storm: %s", got)
			}
			if got := t.Rows[6][1]; got != "true" {
				return fmt.Errorf("far-pod stream failed during storm")
			}
			return nil
		})
}
