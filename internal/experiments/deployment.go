package experiments

import (
	"fmt"

	"github.com/switchware/activebridge/internal/bridge"
	"github.com/switchware/activebridge/internal/ethernet"
	"github.com/switchware/activebridge/internal/ipv4"
	"github.com/switchware/activebridge/internal/netsim"
	"github.com/switchware/activebridge/internal/report"
	"github.com/switchware/activebridge/internal/switchlets"
	"github.com/switchware/activebridge/internal/topo"
	"github.com/switchware/activebridge/internal/workload"
)

// IncrementalDeployment reproduces §5.2's bootstrap narrative: "we can
// easily build up an infrastructure in steps by sending the bridge
// switchlet to all adjacent switches and then waiting for these switches
// to start bridging. As the diameter of the extended LAN grows by one at
// each subsequent step, we can load those switches whose shortest path is
// one link greater than was possible in the previous step."
//
// A chain of empty bridges separates the administrator's host from the far
// LANs. Initially only bridge 1's loader is reachable; each upload extends
// the forwarding frontier by one hop, unlocking the next bridge.
func IncrementalDeployment(cost netsim.CostModel) (*report.Table, error) {
	t := &report.Table{
		Title:  "§5.2 incremental switchlet deployment (frontier grows one hop per step)",
		Header: []string{"step", "target", "upload", "reachable frontier (hosts answering ping)"},
	}
	const n = 3

	// Topology: admin -- s0 -- b1 -- s1 -- b2 -- s2 -- b3 -- s3
	// with a probe host on every segment.
	g := topo.New("incremental-deployment")
	segs := make([]topo.SegmentID, n+1)
	for i := range segs {
		segs[i] = g.AddSegment(fmt.Sprintf("s%d", i))
	}
	bIDs := make([]topo.BridgeID, n)
	for i := 0; i < n; i++ {
		bIDs[i] = g.AddBridge(fmt.Sprintf("b%d", i+1), topo.EmptyBridge, 2,
			topo.WithBridgeID(byte(i+1)),
			topo.WithNetLoader(ipv4.Addr{10, 0, 0, byte(100 + i)}))
		g.Link(bIDs[i], segs[i])
		g.Link(bIDs[i], segs[i+1])
	}
	adminID := g.AddHost("admin",
		topo.WithMAC(ethernet.MAC{2, 0, 0, 0, 0xaa, 0}),
		topo.WithIP(ipv4.Addr{10, 0, 0, 1}))
	g.Link(adminID, segs[0])
	probeIDs := make([]topo.HostID, n+1)
	for i := 0; i <= n; i++ {
		probeIDs[i] = g.AddHost(fmt.Sprintf("p%d", i),
			topo.WithMAC(ethernet.MAC{2, 0, 0, 0, 0xbb, byte(i)}),
			topo.WithIP(ipv4.Addr{10, 0, 1, byte(i + 1)}))
		g.Link(probeIDs[i], segs[i])
	}
	net, err := g.Build(cost)
	if err != nil {
		return nil, err
	}
	sim, admin := net.Sim, net.Host(adminID)
	bridges := make([]*bridge.Bridge, n)
	for i := range bIDs {
		bridges[i] = net.Bridge(bIDs[i])
	}

	// reachable counts probe hosts that answer a ping from the admin.
	reachable := func() int {
		count := 0
		for _, pid := range probeIDs {
			pinger := workload.NewPinger(admin, net.Host(pid).IP, 32, 1)
			pinger.Run(sim.Now() + netsim.Time(2*netsim.Second))
			if pinger.Completed() == 1 {
				count++
			}
		}
		return count
	}

	// Compile the learning switchlet once per target (against that node's
	// environment — identical here, but the discipline matters).
	upload := func(b *bridge.Bridge) error {
		enc, err := b.Manager().Compile(switchlets.LearningManifest())
		if err != nil {
			return err
		}
		up := workload.NewUploader(admin, b.NetLoaderAddr(), "learning.swo", enc)
		sim.Schedule(sim.Now()+1, up.Start)
		sim.Run(sim.Now() + netsim.Time(30*netsim.Second))
		if !up.Done() {
			return fmt.Errorf("upload to %s incomplete: %v", b.Name, up.Err())
		}
		return nil
	}

	t.AddRow("0", "-", "-", fmt.Sprintf("%d (own LAN only)", reachable()))
	for i, b := range bridges {
		status := "ok"
		if err := upload(b); err != nil {
			status = err.Error()
		}
		t.AddRow(fmt.Sprintf("%d", i+1), b.Name, status,
			fmt.Sprintf("%d", reachable()))
	}
	t.AddNote("each successful upload extends the extended LAN's diameter by one, unlocking the next switch's loader")
	return t, nil
}
