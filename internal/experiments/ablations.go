package experiments

import (
	"fmt"

	"github.com/switchware/activebridge/internal/ethernet"
	"github.com/switchware/activebridge/internal/netsim"
	"github.com/switchware/activebridge/internal/report"
	"github.com/switchware/activebridge/internal/testbed"
	"github.com/switchware/activebridge/internal/topo"
)

// AblationNativeVsBytecode quantifies the paper's §7.3/§9 conjecture that
// "compiling switchlets into native code for faster operation" recovers
// most of the repeater/bridge gap.
func AblationNativeVsBytecode(cost netsim.CostModel) *report.Table {
	t := &report.Table{
		Title:  "Ablation: bytecode interpretation vs native-code switchlets",
		Header: []string{"path", "ttcp Mb/s (8KB)", "ping RTT ms (64B)"},
	}
	for _, p := range []testbed.Path{testbed.Repeater, testbed.NativeBridge, testbed.ActiveBridge} {
		tb := testbed.New(p, cost)
		tb.Warm()
		tr := tb.TtcpRun(8192, 2<<20)
		tb2 := testbed.New(p, cost)
		tb2.Warm()
		rtt := tb2.PingRTT(64, 10)
		t.AddRow(p.String(), report.Mbps(tr.ThroughputMbps()), report.Ms(rtt))
	}
	t.AddNote("the native bridge recovers most of the repeater/bytecode gap: interpretation dominates, as §7.3 concludes")
	return t
}

// AblationLearning measures what the learning switchlet buys over the dumb
// repeater switchlet: the flood factor onto an uninvolved third LAN during
// a two-party conversation.
func AblationLearning(cost netsim.CostModel) *report.Table {
	t := &report.Table{
		Title:  "Ablation: dumb vs learning switchlet (frames leaked onto an uninvolved LAN)",
		Header: []string{"switchlet", "frames on third LAN", "of total sent"},
	}
	run := func(kind topo.BridgeKind, name string) {
		g := topo.New("ablation-learning")
		bID := g.AddBridge("br0", kind, 3)
		segs := make([]topo.SegmentID, 3)
		taps := make([]topo.TapID, 3)
		for i := range segs {
			segs[i] = g.AddSegment(fmt.Sprintf("lan%d", i+1))
			taps[i] = g.AddTap(fmt.Sprintf("h%d", i+1),
				ethernet.MAC{2, 0, 0, 0, 0, byte(i + 1)})
			g.Link(taps[i], segs[i])
			g.Link(bID, segs[i])
		}
		net, err := g.Build(cost)
		if err != nil {
			t.AddNote("%s failed to load: %v", name, err)
			return
		}
		sim := net.Sim
		hosts := make([]*netsim.NIC, 3)
		for i := range taps {
			hosts[i] = net.Tap(taps[i])
			hosts[i].SetRecv(func(*netsim.NIC, []byte) {})
		}
		send := func(from, to int) {
			fr := ethernet.Frame{
				Dst: hosts[to].MAC, Src: hosts[from].MAC,
				Type: ethernet.TypeTest, Payload: make([]byte, 200),
			}
			raw, err := fr.Marshal()
			if err == nil {
				hosts[from].Send(raw)
			}
		}
		const exchanges = 20
		for i := 0; i < exchanges; i++ {
			i := i
			sim.Schedule(netsim.Time(i)*netsim.Time(10*netsim.Millisecond), func() {
				if i%2 == 0 {
					send(0, 1)
				} else {
					send(1, 0)
				}
			})
		}
		sim.Run(netsim.Time(5 * netsim.Second))
		third := net.Segment(segs[2])
		t.AddRow(name,
			fmt.Sprintf("%d", third.Frames),
			fmt.Sprintf("%.0f%%", 100*float64(third.Frames)/float64(exchanges)))
	}
	run(topo.DumbBridge, "dumb (repeater)")
	run(topo.LearningBridge, "learning")
	t.AddNote("the learning bridge leaks only the initial flood; the dumb bridge repeats every frame everywhere (paper §4)")
	return t
}

// AblationKernelCost sweeps the kernel-crossing cost, the paper's §7.3/§9
// "shortening the Linux path between interrupt arrival and switchlet
// operation" optimization (and the motivation for citing U-Net).
func AblationKernelCost(cost netsim.CostModel) *report.Table {
	t := &report.Table{
		Title:  "Ablation: kernel-crossing cost (the U-Net/§9 optimization axis)",
		Header: []string{"kernel cost/frame", "active-bridge Mb/s", "repeater Mb/s"},
	}
	for _, k := range []netsim.Duration{25 * netsim.Microsecond, 50 * netsim.Microsecond,
		100 * netsim.Microsecond, 200 * netsim.Microsecond} {
		c := cost
		c.KernelPerFrame = k
		tbA := testbed.New(testbed.ActiveBridge, c)
		tbA.Warm()
		trA := tbA.TtcpRun(8192, 2<<20)
		tbR := testbed.New(testbed.Repeater, c)
		tbR.Warm()
		trR := tbR.TtcpRun(8192, 2<<20)
		t.AddRow(fmt.Sprintf("%v", k), report.Mbps(trA.ThroughputMbps()), report.Mbps(trR.ThroughputMbps()))
	}
	t.AddNote("cutting the kernel path helps the repeater far more than the bridge: the bridge stays interpretation-limited")
	return t
}

// AblationGCPressure sweeps the collector cost factor, the paper's §7.3
// "interference from the garbage collector" hypothesis.
func AblationGCPressure(cost netsim.CostModel) *report.Table {
	t := &report.Table{
		Title:  "Ablation: GC pressure (VMPerAllocByte) on bridge throughput",
		Header: []string{"alloc cost (ns/B)", "active-bridge Mb/s"},
	}
	for _, a := range []netsim.Duration{0, 25 * netsim.Nanosecond, 100 * netsim.Nanosecond, 400 * netsim.Nanosecond} {
		c := cost
		c.VMPerAllocByte = a
		tb := testbed.New(testbed.ActiveBridge, c)
		tb.Warm()
		tr := tb.TtcpRun(8192, 2<<20)
		t.AddRow(fmt.Sprintf("%d", int64(a)), report.Mbps(tr.ThroughputMbps()))
	}
	t.AddNote("paper §7.3 lists the collector among the likely Caml overheads; concurrent collection is the proposed remedy")
	return t
}
