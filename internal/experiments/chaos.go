package experiments

import (
	"fmt"
	"strings"

	"github.com/switchware/activebridge/internal/bridge"
	"github.com/switchware/activebridge/internal/fault"
	"github.com/switchware/activebridge/internal/ipv4"
	"github.com/switchware/activebridge/internal/netsim"
	"github.com/switchware/activebridge/internal/report"
	"github.com/switchware/activebridge/internal/scenario"
	"github.com/switchware/activebridge/internal/switchlets"
	"github.com/switchware/activebridge/internal/topo"
	"github.com/switchware/activebridge/internal/workload"
)

// This file holds the chaos scenario family: the robustness claims of the
// deployment story (§5.2) and the protocol transition (§5.4) exercised
// under the deterministic fault plane. Every scenario is seeded — same
// plan, same faults, same fingerprint at any shard count — which is what
// turns "it survives failures" from a demo into a pinned regression test.

// stpBound is the worst-case 802.1D reconvergence time after a topology
// change: the stale root vector ages out (MaxAge) and the replacement
// port walks listening and learning (2 × ForwardDelay) before it
// forwards — 20 s + 2×15 s = 50 s with the standard timers.
const stpBound = 50 * netsim.Second

// ChaosLossyDeployment reruns the §5.2 incremental-deployment story over
// an impaired fabric: every segment drops 5% of frames, corrupts 1% and
// duplicates 1%, from a seeded plan. The switchlet uploads now depend on
// the TFTP client's timeout/retransmit machinery — each transfer must
// complete, and the retransmit counts prove the faults were really in the
// path (the pinned "deployment over a lossy link" test).
func ChaosLossyDeployment(cost netsim.CostModel) (*report.Table, error) {
	t := &report.Table{
		Title:  "Chaos: incremental deployment over 5%-loss segments (seeded)",
		Header: []string{"target", "upload", "retransmits", "elapsed (s)"},
	}
	const n = 3

	// Same shape as deployment-incremental: admin -- s0 -- b1 -- s1 -- b2
	// -- s2 -- b3 -- s3, every segment impaired.
	g := topo.New("chaos-lossy-deployment")
	segs := make([]topo.SegmentID, n+1)
	for i := range segs {
		segs[i] = g.AddSegment(fmt.Sprintf("s%d", i))
	}
	bIDs := make([]topo.BridgeID, n)
	for i := 0; i < n; i++ {
		bIDs[i] = g.AddBridge(fmt.Sprintf("b%d", i+1), topo.EmptyBridge, 2,
			topo.WithBridgeID(byte(i+1)),
			topo.WithNetLoader(ipv4.Addr{10, 0, 0, byte(100 + i)}))
		g.Link(bIDs[i], segs[i])
		g.Link(bIDs[i], segs[i+1])
	}
	adminID := g.AddHost("admin")
	g.Link(adminID, segs[0])
	g.FaultPlan(fault.NewPlan(0xC4A05).
		AllSegments(fault.Model{Drop: 0.05, Corrupt: 0.01, Duplicate: 0.01}))
	net, err := g.Build(cost)
	if err != nil {
		return nil, err
	}
	sim, admin := net.Sim, net.Host(adminID)

	var totalRetx uint64
	for i := range bIDs {
		b := net.Bridge(bIDs[i])
		enc, err := b.Manager().Compile(switchlets.LearningManifest())
		if err != nil {
			return nil, err
		}
		up := workload.NewUploader(admin, b.NetLoaderAddr(), "learning.swo", enc)
		sim.Schedule(sim.Now()+1, up.Start)
		// Generous window: the retry ladder (1s..8s backoff, budget 8 per
		// datagram) needs up to ~a minute in the worst case. The uploader
		// records its own completion instant, so running the full window
		// does not blur the elapsed column.
		sim.Run(sim.Now() + netsim.Time(120*netsim.Second))
		status := "ok"
		if !up.Done() {
			status = fmt.Sprintf("FAILED: %v", up.Err())
		}
		totalRetx += up.Retransmits()
		t.AddRow(b.Name, status, fmt.Sprintf("%d", up.Retransmits()),
			fmt.Sprintf("%.3f", up.Elapsed().Seconds()))
	}

	var drops, corrupts, dups uint64
	for _, s := range segs {
		drops += net.Segment(s).FaultDrops
		corrupts += net.Segment(s).FaultCorrupts
		dups += net.Segment(s).FaultDups
	}
	t.AddRow("(fabric)", fmt.Sprintf("injected drop=%d corrupt=%d dup=%d", drops, corrupts, dups),
		fmt.Sprintf("%d", totalRetx), "-")
	t.AddNote("every transfer survives a fabric that eats ~6%% of frames per hop; loss costs retransmissions, not deployments")
	return t, nil
}

// ChaosFlappingRing runs an 8-bridge STP ring under a ttcp stream, then
// cuts the loaded transit segment mid-stream and heals it later. The
// spanning tree must route around the cut within the 802.1D bound
// (stpBound), survive the heal without a storm, and end with a single
// root, no forwarding loop, and working delivery.
func ChaosFlappingRing(cost netsim.CostModel) (*report.Table, error) {
	const nBridges = 8
	t := &report.Table{
		Title:  "Chaos: 8-bridge STP ring, transit link flap under ttcp",
		Header: []string{"metric", "value"},
	}
	g := topo.New("chaos-flapping-ring")
	segs := make([]topo.SegmentID, nBridges)
	for i := range segs {
		segs[i] = g.AddSegment(fmt.Sprintf("r%d", i))
	}
	for i := 0; i < nBridges; i++ {
		b := g.AddBridge(fmt.Sprintf("b%d", i+1), topo.STPBridge, 2)
		g.Link(b, segs[i])
		g.Link(b, segs[(i+1)%nBridges])
	}
	h1 := g.AddHost("")
	h2 := g.AddHost("")
	g.Link(h1, segs[0])
	g.Link(h2, segs[nBridges/2])
	g.Affine(h1, h2) // closed-loop ttcp pair (see Chain16)
	// Fresh probe pair on the transit segments, silent until the cut:
	// their MACs stay unlearned, so probe frames flood along whatever
	// tree currently forwards. The measurement pair (h1/h2) cannot probe
	// resumption — bridges hold their MACs against the dead arc until
	// the 300 s learning age-out, far beyond the 802.1D bound.
	h3 := g.AddHost("")
	h4 := g.AddHost("")
	g.Link(h3, segs[1])
	g.Link(h4, segs[nBridges/2+1])
	net, err := g.Build(cost)
	if err != nil {
		return nil, err
	}
	sim := net.Sim
	sim.MaxEvents = 20_000_000 // storm guard
	// Static neighbors (no ARP): each probe is one unknown-unicast frame.
	net.Host(h3).AddNeighbor(net.Host(h4).IP, net.Host(h4).MAC)
	net.Host(h4).AddNeighbor(net.Host(h3).IP, net.Host(h3).MAC)
	sim.Run(netsim.Time(45 * netsim.Second))
	blockedBefore := blockedPorts(net)

	net.Warm(h1, h2)
	tr := workload.NewTtcp(net.Host(h1), net.Host(h2), 8192, 64<<20)
	sim.Schedule(sim.Now()+1, tr.Start)
	sim.Run(sim.Now() + netsim.Time(10*netsim.Second))

	// Cut whichever transit segment the stream is actually riding — the
	// tree decides which arc carries r0→r4 traffic, so compare the two
	// candidates' frame counters (deterministic at any shard count: the
	// control engine reads them at a barrier).
	r2, r6 := net.Segment(segs[2]), net.Segment(segs[6])
	base2, base6 := r2.Frames, r6.Frames
	var cutID topo.SegmentID
	cutAt := sim.Now() + netsim.Time(5*netsim.Second)
	sim.Schedule(cutAt, func() {
		cutID = segs[2]
		if r6.Frames-base6 > r2.Frames-base2 {
			cutID = segs[6]
		}
		net.SetSegmentDown(cutID, true)
	})
	healAt := cutAt + netsim.Time(85*netsim.Second)
	sim.Schedule(healAt, func() { net.SetSegmentDown(cutID, false) })

	// Probe for delivery resumption: one ping per 2 s window until one
	// completes. The alternate arc must open within stpBound of the cut
	// (the gap is quantized up to the window end, so checks allow +2 s).
	sim.Run(cutAt + 1)
	deliveredAtCut := tr.DeliveredBytes()
	gap := -netsim.Second
	for sim.Now() < cutAt+netsim.Time(80*netsim.Second) {
		p := workload.NewPinger(net.Host(h3), net.Host(h4).IP, 64, 1)
		p.Run(sim.Now() + netsim.Time(2*netsim.Second))
		if p.Completed() == 1 {
			gap = sim.Now().Sub(netsim.Time(cutAt))
			break
		}
	}

	// Past the heal: let the tree re-block the restored arc, then check
	// the invariants and that delivery still works under fresh load.
	sim.Run(healAt + netsim.Time(55*netsim.Second))
	roots := stpRoots(net)
	loopFree := forwardingLoopFree(net)
	blockedAfter := blockedPorts(net)

	post := workload.NewTtcp(net.Host(h1), net.Host(h2), 8192, 1<<20)
	post.Run(sim.Now() + netsim.Time(120*netsim.Second))
	p := workload.NewPinger(net.Host(h1), net.Host(h2).IP, 64, 5)
	p.Run(sim.Now() + netsim.Time(30*netsim.Second))

	// Storm check: an idle post-heal ring carries hello BPDUs and nothing
	// else.
	quietStart := frameTotal(net, segs)
	sim.Run(sim.Now() + netsim.Time(10*netsim.Second))
	quiet := frameTotal(net, segs) - quietStart

	t.AddRow("ports blocked before cut", fmt.Sprintf("%d", blockedBefore))
	t.AddRow("ttcp MB delivered before cut", fmt.Sprintf("%.1f", float64(deliveredAtCut)/(1<<20)))
	t.AddRow("delivery gap after cut (s)", fmt.Sprintf("%.3f", gap.Seconds()))
	t.AddRow("distinct roots after heal", fmt.Sprintf("%d", roots))
	t.AddRow("forwarding loop after heal", fmt.Sprintf("%v", !loopFree))
	t.AddRow("ports blocked after heal", fmt.Sprintf("%d", blockedAfter))
	t.AddRow("post-heal ttcp complete", fmt.Sprintf("%v", post.Done()))
	t.AddRow("pings after heal", fmt.Sprintf("%d/5", p.Completed()))
	t.AddRow("frames in 10s quiet window", fmt.Sprintf("%d", quiet))
	t.AddNote("the closed-loop stream stalls with the cut (no transport retransmission); the tree reopens the ring within MaxAge + 2×ForwardDelay and fresh traffic flows")
	return t, nil
}

// ChaosCrashUpgrade crashes a bridge in the middle of its DEC→IEEE
// upgrade validation window. The upgrade must roll back (a crashed
// bridge cannot commit), the cold restart must re-install the manifest
// snapshot with the OLD protocol running, and connectivity must return —
// the pinned "fault during the validation window" test, in its harshest
// form.
func ChaosCrashUpgrade(cost netsim.CostModel) (*report.Table, error) {
	t := &report.Table{
		Title:  "Chaos: bridge crash during DEC→IEEE upgrade validation",
		Header: []string{"metric", "value"},
	}
	// h1 -- s0 -- b1 -- s1 -- b2 -- s2 -- h2, learning + DEC on both.
	g := topo.New("chaos-crash-upgrade")
	segs := make([]topo.SegmentID, 3)
	for i := range segs {
		segs[i] = g.AddSegment(fmt.Sprintf("s%d", i))
	}
	bIDs := make([]topo.BridgeID, 2)
	for i := range bIDs {
		bIDs[i] = g.AddBridge(fmt.Sprintf("b%d", i+1), topo.EmptyBridge, 2)
		g.Link(bIDs[i], segs[i])
		g.Link(bIDs[i], segs[i+1])
	}
	h1 := g.AddHost("")
	h2 := g.AddHost("")
	g.Link(h1, segs[0])
	g.Link(h2, segs[2])
	net, err := g.Build(cost)
	if err != nil {
		return nil, err
	}
	sim := net.Sim
	b1 := net.Bridge(bIDs[0])
	for _, id := range bIDs {
		m := net.Bridge(id).Manager()
		if _, err := m.Install(switchlets.LearningManifest()); err != nil {
			return nil, err
		}
		if _, err := m.Install(switchlets.DECManifest()); err != nil {
			return nil, err
		}
	}
	sim.Run(netsim.Time(40 * netsim.Second)) // DEC converges
	net.Warm(h1, h2)

	// Upgrade b1 and crash it squarely inside the validation window.
	opts := bridge.UpgradeOptions{
		SuppressFor:   10 * netsim.Second,
		ValidateAfter: 30 * netsim.Second,
	}
	var u *bridge.Upgrade
	upAt := sim.Now() + netsim.Time(netsim.Second)
	sim.Schedule(upAt, func() {
		u, err = b1.Manager().Upgrade(switchlets.ModDEC, switchlets.SpanningManifest(), opts)
	})
	sim.Schedule(upAt+netsim.Time(15*netsim.Second), func() {
		b1.Crash()
		fault.NoteCrash()
	})
	sim.Schedule(upAt+netsim.Time(20*netsim.Second), func() {
		if rerr := b1.Restart(); rerr != nil {
			b1.Log("restart: " + rerr.Error())
		}
		fault.NoteRestart()
	})
	// Run past ValidateAfter (the stale validate() fire must be a no-op
	// on the rolled-back upgrade) and through the restarted DEC tree's
	// pre-forwarding delay, so the connectivity probe sees a settled
	// bridge rather than a port still in listening.
	sim.Run(upAt + netsim.Time(65*netsim.Second))
	if err != nil {
		return nil, fmt.Errorf("upgrade: %w", err)
	}
	if u == nil {
		return nil, fmt.Errorf("upgrade never started")
	}

	decRunning, qerr := b1.Manager().Query("dec.running", "")
	if qerr != nil {
		decRunning = "<" + qerr.Error() + ">"
	}
	_, ieeeInstalled := b1.Manager().Installed(switchlets.ModSpanning)

	// Cold learning tables: connectivity must come back via re-flooding.
	net.Warm(h1, h2)
	p := workload.NewPinger(net.Host(h1), net.Host(h2).IP, 64, 5)
	p.Run(sim.Now() + netsim.Time(30*netsim.Second))

	t.AddRow("upgrade state", u.State().String())
	t.AddRow("rollback reason", u.Reason)
	t.AddRow("crashes / restarts", fmt.Sprintf("%d / %d", b1.Stats.Crashes, b1.Stats.Restarts))
	t.AddRow("DEC running after restart", decRunning)
	t.AddRow("IEEE still installed", fmt.Sprintf("%v", ieeeInstalled))
	t.AddRow("pings after restart", fmt.Sprintf("%d/5", p.Completed()))
	t.AddNote("a crash inside the validation window can never be a commit: the snapshot restores the OLD protocol, and the late validate() fire is a no-op")
	return t, nil
}

// ChaosPartitionHeal drives a 6-bridge STP ring entirely from a declared
// fault plan: a scheduled partition (one ring segment cut) and a
// scheduled heal, with the tree expected to reconverge after each and
// the healed ring expected to carry hellos only — the storm check.
func ChaosPartitionHeal(cost netsim.CostModel) (*report.Table, error) {
	const nBridges = 6
	t := &report.Table{
		Title:  "Chaos: plan-scheduled partition and heal on a 6-bridge STP ring",
		Header: []string{"metric", "value"},
	}
	g := topo.New("chaos-partition-heal")
	segs := make([]topo.SegmentID, nBridges)
	for i := range segs {
		segs[i] = g.AddSegment(fmt.Sprintf("r%d", i))
	}
	for i := 0; i < nBridges; i++ {
		b := g.AddBridge(fmt.Sprintf("b%d", i+1), topo.STPBridge, 2)
		g.Link(b, segs[i])
		g.Link(b, segs[(i+1)%nBridges])
	}
	h1 := g.AddHost("")
	h2 := g.AddHost("")
	g.Link(h1, segs[0])
	g.Link(h2, segs[nBridges/2])
	g.FaultPlan(fault.NewPlan(0xFA17).
		At(50*netsim.Second, fault.OpLinkDown, "r1").
		At(90*netsim.Second, fault.OpLinkUp, "r1"))
	net, err := g.Build(cost)
	if err != nil {
		return nil, err
	}
	sim := net.Sim
	sim.MaxEvents = 20_000_000 // storm guard

	sim.Run(netsim.Time(45 * netsim.Second))
	net.Warm(h1, h2)

	// Observe the partition while it holds.
	var downMid bool
	sim.Schedule(netsim.Time(70*netsim.Second), func() {
		downMid = net.Segment(segs[1]).Down()
	})

	// Run well past the heal plus a full reconvergence bound.
	sim.Run(netsim.Time(90*netsim.Second) + netsim.Time(stpBound) + netsim.Time(10*netsim.Second))
	roots := stpRoots(net)
	loopFree := forwardingLoopFree(net)
	blocked := blockedPorts(net)

	net.Warm(h1, h2)
	p := workload.NewPinger(net.Host(h1), net.Host(h2).IP, 64, 5)
	p.Run(sim.Now() + netsim.Time(30*netsim.Second))

	quietStart := frameTotal(net, segs)
	sim.Run(sim.Now() + netsim.Time(10*netsim.Second))
	quiet := frameTotal(net, segs) - quietStart

	t.AddRow("segment down at t=70s", fmt.Sprintf("%v", downMid))
	t.AddRow("distinct roots after heal", fmt.Sprintf("%d", roots))
	t.AddRow("forwarding loop after heal", fmt.Sprintf("%v", !loopFree))
	t.AddRow("ports blocked after heal", fmt.Sprintf("%d", blocked))
	t.AddRow("pings after heal", fmt.Sprintf("%d/5", p.Completed()))
	t.AddRow("frames in 10s quiet window", fmt.Sprintf("%d", quiet))
	t.AddNote("the plan is the whole experiment: partition and heal are declared events, and the tree's invariants hold on the far side of both")
	return t, nil
}

// --- STP invariant helpers ---------------------------------------------------

// blockedPorts counts ports the spanning tree holds blocked.
func blockedPorts(net *topo.Net) int {
	n := 0
	for _, b := range net.Bridges() {
		for p := 0; p < b.NumPorts(); p++ {
			if b.PortBlocked(p) {
				n++
			}
		}
	}
	return n
}

// frameTotal sums the frame counters of the given segments.
func frameTotal(net *topo.Net, segs []topo.SegmentID) uint64 {
	var v uint64
	for _, s := range segs {
		v += net.Segment(s).Frames
	}
	return v
}

// stpRoots queries every live bridge's IEEE tree probe and counts the
// distinct roots — a converged tree has exactly one.
func stpRoots(net *topo.Net) int {
	roots := map[string]bool{}
	for _, b := range net.Bridges() {
		if b.Crashed() {
			continue
		}
		out, err := b.Manager().Query("ieee.tree", "")
		if err != nil {
			continue
		}
		// tree_info renders "root=<hex> cost=<n> rp=<n> p0=<role> ..."
		if f := strings.Fields(out); len(f) > 0 && strings.HasPrefix(f[0], "root=") {
			roots[f[0]] = true
		}
	}
	return len(roots)
}

// forwardingLoopFree checks the global no-loop invariant: the graph of
// segments connected through unblocked, live bridge ports must be a
// forest. Union-find over segments; a union of two already-connected
// components is a forwarding loop.
func forwardingLoopFree(net *topo.Net) bool {
	parent := map[*netsim.Segment]*netsim.Segment{}
	var find func(s *netsim.Segment) *netsim.Segment
	find = func(s *netsim.Segment) *netsim.Segment {
		p, ok := parent[s]
		if !ok || p == s {
			parent[s] = s
			return s
		}
		r := find(p)
		parent[s] = r
		return r
	}
	for _, b := range net.Bridges() {
		if b.Crashed() {
			continue
		}
		var first *netsim.Segment
		for p := 0; p < b.NumPorts(); p++ {
			nic := b.Port(p)
			seg := nic.Segment()
			if seg == nil || seg.Down() || nic.LinkDown() || b.PortBlocked(p) {
				continue
			}
			if first == nil {
				first = seg
				continue
			}
			ra, rb := find(first), find(seg)
			if ra == rb {
				return false
			}
			parent[rb] = ra
		}
	}
	return true
}

// registerChaos registers the chaos family; called from RegisterAll after
// the scale set.
func registerChaos() {
	scenario.Register("chaos-lossy-deployment",
		"incremental switchlet deployment over seeded 5%-loss segments (TFTP retransmission)",
		ChaosLossyDeployment,
		func(t *report.Table) error {
			if err := wantRows(4)(t); err != nil {
				return err
			}
			for r := 0; r < 3; r++ {
				if t.Rows[r][1] != "ok" {
					return fmt.Errorf("upload to %s did not complete: %s", t.Rows[r][0], t.Rows[r][1])
				}
			}
			retx, err := cellFloat(t, 3, 2)
			if err != nil {
				return err
			}
			if retx < 1 {
				return fmt.Errorf("no retransmissions under 5%% loss; fault plane not engaged")
			}
			return nil
		})

	scenario.Register("chaos-flapping-ring",
		"8-bridge STP ring: transit link flap under ttcp, reconvergence within the 802.1D bound",
		ChaosFlappingRing,
		func(t *report.Table) error {
			if err := wantRows(9)(t); err != nil {
				return err
			}
			gap, err := cellFloat(t, 2, 1)
			if err != nil {
				return err
			}
			// +4 s: one 2 s probe window of quantization plus settle.
			if gap < 0 || gap > (stpBound+4*netsim.Second).Seconds() {
				return fmt.Errorf("delivery gap %v s exceeds the %v reconvergence bound", gap, stpBound)
			}
			if t.Rows[3][1] != "1" {
				return fmt.Errorf("tree did not reconverge to one root: %s", t.Rows[3][1])
			}
			if t.Rows[4][1] != "false" {
				return fmt.Errorf("forwarding loop after heal")
			}
			if t.Rows[6][1] != "true" {
				return fmt.Errorf("post-heal transfer did not complete")
			}
			if t.Rows[7][1] != "5/5" {
				return fmt.Errorf("pings incomplete after heal: %s", t.Rows[7][1])
			}
			quiet, err := cellFloat(t, 8, 1)
			if err != nil {
				return err
			}
			if quiet > 2000 {
				return fmt.Errorf("storm after heal: %v frames in the quiet window", quiet)
			}
			return nil
		}).Slow = true

	scenario.Register("chaos-crash-upgrade",
		"bridge crash mid-validation: upgrade rolls back, restart restores the old protocol",
		ChaosCrashUpgrade,
		func(t *report.Table) error {
			if err := wantRows(6)(t); err != nil {
				return err
			}
			if t.Rows[0][1] != "rolled-back" {
				return fmt.Errorf("upgrade state %q, want rolled-back", t.Rows[0][1])
			}
			if !strings.Contains(t.Rows[1][1], "crashed during validation") {
				return fmt.Errorf("rollback reason %q does not name the crash", t.Rows[1][1])
			}
			if t.Rows[2][1] != "1 / 1" {
				return fmt.Errorf("crash/restart counts %q, want 1 / 1", t.Rows[2][1])
			}
			if t.Rows[3][1] != "yes" {
				return fmt.Errorf("DEC not running after restart: %s", t.Rows[3][1])
			}
			if t.Rows[4][1] != "false" {
				return fmt.Errorf("the crashed-away IEEE switchlet reappeared after restart")
			}
			if t.Rows[5][1] != "5/5" {
				return fmt.Errorf("connectivity did not return: %s", t.Rows[5][1])
			}
			return nil
		})

	scenario.Register("chaos-partition-heal",
		"6-bridge STP ring: plan-scheduled partition and heal, no storm, invariants hold",
		ChaosPartitionHeal,
		func(t *report.Table) error {
			if err := wantRows(6)(t); err != nil {
				return err
			}
			if t.Rows[0][1] != "true" {
				return fmt.Errorf("plan event did not cut the segment")
			}
			if t.Rows[1][1] != "1" {
				return fmt.Errorf("tree did not reconverge to one root: %s", t.Rows[1][1])
			}
			if t.Rows[2][1] != "false" {
				return fmt.Errorf("forwarding loop after heal")
			}
			blocked, err := cellFloat(t, 3, 1)
			if err != nil {
				return err
			}
			if blocked < 1 {
				return fmt.Errorf("healed ring has no blocked port: loop not re-broken")
			}
			if t.Rows[4][1] != "5/5" {
				return fmt.Errorf("pings incomplete after heal: %s", t.Rows[4][1])
			}
			quiet, err := cellFloat(t, 5, 1)
			if err != nil {
				return err
			}
			if quiet > 2000 {
				return fmt.Errorf("storm after heal: %v frames in the quiet window", quiet)
			}
			return nil
		})
}
