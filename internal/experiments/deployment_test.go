package experiments

import (
	"testing"

	"github.com/switchware/activebridge/internal/netsim"
)

func TestIncrementalDeploymentFrontier(t *testing.T) {
	tbl, err := IncrementalDeployment(netsim.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tbl.String())
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	wantFrontier := []string{"1", "2", "3", "4"}
	for i, r := range tbl.Rows {
		got := r[3]
		if i == 0 {
			got = got[:1]
		}
		if got != wantFrontier[i] {
			t.Errorf("step %d frontier = %q, want %s", i, r[3], wantFrontier[i])
		}
		if i > 0 && r[2] != "ok" {
			t.Errorf("step %d upload = %q", i, r[2])
		}
	}
}
