package experiments

import (
	"errors"
	"fmt"

	"github.com/switchware/activebridge/internal/bridge"
	"github.com/switchware/activebridge/internal/ethernet"
	"github.com/switchware/activebridge/internal/netsim"
	"github.com/switchware/activebridge/internal/report"
	"github.com/switchware/activebridge/internal/stp"
	"github.com/switchware/activebridge/internal/switchlets"
	"github.com/switchware/activebridge/internal/topo"
)

// TransitionNet is the §5.4 network: two active bridges in a line with an
// injector station that triggers the upgrade.
type TransitionNet struct {
	Sim      *netsim.Sim
	Bridges  []*bridge.Bridge
	Injector *netsim.NIC
	Logs     []string
}

// NewTransitionNet wires n bridges in a line, loads learning + DEC
// (running) + the given IEEE source (dormant) + control on each, and
// returns the network ready for injection. spanningSrc lets callers choose
// the correct or the deliberately buggy 802.1D implementation.
func NewTransitionNet(n int, spanningSrc string, cost netsim.CostModel) (*TransitionNet, error) {
	tn := &TransitionNet{}
	sink := func(at netsim.Time, br, msg string) {
		tn.Logs = append(tn.Logs, fmt.Sprintf("%8.3fs %s: %s", at.Seconds(), br, msg))
	}
	g := topo.New("transition")
	segs := make([]topo.SegmentID, n+1)
	for i := range segs {
		segs[i] = g.AddSegment(fmt.Sprintf("lan%d", i))
	}
	bIDs := make([]topo.BridgeID, n)
	for i := 0; i < n; i++ {
		bIDs[i] = g.AddBridge(fmt.Sprintf("b%d", i+1), topo.AgilityBridge, 2,
			topo.WithSpanningSrc(spanningSrc),
			topo.WithLogSink(sink))
		g.Link(bIDs[i], segs[i])
		g.Link(bIDs[i], segs[i+1])
	}
	inj := g.AddTap("injector", ethernet.MAC{2, 0, 0, 0, 0, 0x99})
	g.Link(inj, segs[0])
	net, err := g.Build(cost)
	if err != nil {
		return nil, err
	}
	tn.Sim = net.Sim
	for _, id := range bIDs {
		tn.Bridges = append(tn.Bridges, net.Bridge(id))
	}
	tn.Injector = net.Tap(inj)
	return tn, nil
}

// InjectIEEE sends the triggering 802.1D configuration BPDU.
func (tn *TransitionNet) InjectIEEE() {
	v := stp.Vector{
		RootID: stp.MakeBridgeID(0x8000, tn.Injector.MAC),
		Bridge: stp.MakeBridgeID(0x8000, tn.Injector.MAC),
	}
	fr := ethernet.Frame{
		Dst: ethernet.AllBridges, Src: tn.Injector.MAC,
		Type:    ethernet.TypeBPDU,
		Payload: stp.EncodeIEEE(v, stp.Config{}.DefaultTimers()),
	}
	raw, err := fr.Marshal()
	if err != nil {
		panic(err) // static frame construction cannot fail
	}
	tn.Injector.Send(raw)
}

// Query invokes a registered Func on a bridge through its lifecycle
// manager and returns the string result.
func (tn *TransitionNet) Query(b *bridge.Bridge, name string) string {
	v, err := b.Manager().Query(name, "")
	if err != nil {
		if errors.Is(err, bridge.ErrNoSuchFunc) {
			return "<unregistered>"
		}
		return "<trap: " + err.Error() + ">"
	}
	return v
}

func (tn *TransitionNet) snapshot(b *bridge.Bridge) (dec, ieee, control string) {
	return tn.Query(b, "dec.running"), tn.Query(b, "ieee.running"), tn.Query(b, "control.phase")
}

// Table1Transition reproduces the automatic protocol transition state
// table. The rows sample bridge 1 at the same points Table 1 lists.
func Table1Transition(cost netsim.CostModel) *report.Table {
	t := &report.Table{
		Title:  "Table 1: automatic protocol transition (bridge 1)",
		Header: []string{"action", "DEC", "IEEE", "control"},
	}
	tn, err := NewTransitionNet(2, switchlets.SpanningSrc, cost)
	if err != nil {
		t.AddNote("setup failed: %v", err)
		return t
	}
	b := tn.Bridges[0]
	row := func(action string) {
		dec, ieee, ctl := tn.snapshot(b)
		decS := map[string]string{"yes": "running", "no": "loaded"}[dec]
		ieeeS := map[string]string{"yes": "running", "no": "loaded"}[ieee]
		t.AddRow(action, decS, ieeeS, ctl)
	}

	tn.Sim.Run(netsim.Time(40 * netsim.Second)) // DEC converges
	row("load/start")

	at := tn.Sim.Now()
	tn.Sim.Schedule(at+1, func() { tn.InjectIEEE() })
	tn.Sim.Run(at + netsim.Time(2*netsim.Second))
	row("recv IEEE packet")

	tn.Sim.Run(at + netsim.Time(31*netsim.Second))
	row("30 seconds")

	tn.Sim.Run(at + netsim.Time(61*netsim.Second))
	row("60 seconds")

	tn.Sim.Run(at + netsim.Time(70*netsim.Second))
	row("pass tests")

	t.AddNote("paper Table 1 sequence: running/loaded -> suspend+capture -> start IEEE -> suppress -> tests -> terminate")
	return t
}

// Table1Fallback runs the same experiment with the buggy 802.1D switchlet:
// validation fails and the bridges return to the DEC protocol.
func Table1Fallback(cost netsim.CostModel) *report.Table {
	t := &report.Table{
		Title:  "Table 1 (failure row): buggy IEEE switchlet triggers automatic fallback",
		Header: []string{"when", "bridge", "DEC", "IEEE", "control"},
	}
	tn, err := NewTransitionNet(2, switchlets.BuggySpanningSrc, cost)
	if err != nil {
		t.AddNote("setup failed: %v", err)
		return t
	}
	tn.Sim.Run(netsim.Time(40 * netsim.Second))
	at := tn.Sim.Now()
	tn.Sim.Schedule(at+1, func() { tn.InjectIEEE() })
	tn.Sim.Run(at + netsim.Time(90*netsim.Second))
	for i, b := range tn.Bridges {
		dec, ieee, ctl := tn.snapshot(b)
		t.AddRow("after tests", fmt.Sprintf("b%d", i+1), dec, ieee, ctl)
	}
	t.AddNote("paper: 'fail tests or fallback' row — stop IEEE; start DEC; no further transition without human intervention")
	return t
}
