package experiments

import (
	"fmt"

	"github.com/switchware/activebridge/internal/ethernet"
	"github.com/switchware/activebridge/internal/icmp"
	"github.com/switchware/activebridge/internal/ipv4"
	"github.com/switchware/activebridge/internal/netsim"
	"github.com/switchware/activebridge/internal/report"
	"github.com/switchware/activebridge/internal/stp"
	"github.com/switchware/activebridge/internal/topo"
)

// AgilityResult holds the §7.5 measurements.
type AgilityResult struct {
	// StartToIEEE is the time from injecting the 802.1D BPDU on eth0 to
	// observing an 802.1D BPDU on eth1 (all bridges switched protocols).
	StartToIEEE netsim.Duration
	// StartToPing is the time from injection to the first ICMP echo
	// making it through the re-converging bridges (forward-delay bound).
	StartToPing netsim.Duration
}

// AgilityRing reproduces the paper's final test (§7.5): a measurement node
// with two interfaces (eth0, eth1) and three active bridges chained between
// them, all running the DEC protocol with the control switchlet armed. The
// node emits one 802.1D BPDU on eth0, then pings once per second until a
// ping crosses the chain to eth1.
//
// Paper: "the average start to IEEE time measured was 0.056 seconds, and
// the average start to received ping time was 30.1 seconds."
func AgilityRing(cost netsim.CostModel) (*report.Table, AgilityResult, error) {
	t := &report.Table{
		Title:  "§7.5 function agility (3-bridge chain, protocol switch-over)",
		Header: []string{"metric", "measured", "paper"},
	}

	const nBridges = 3
	g := topo.New("agility-ring")
	segs := make([]topo.SegmentID, nBridges+1)
	for i := range segs {
		segs[i] = g.AddSegment(fmt.Sprintf("s%d", i))
	}
	for i := 0; i < nBridges; i++ {
		b := g.AddBridge(fmt.Sprintf("b%d", i+1), topo.AgilityBridge, 2)
		g.Link(b, segs[i])
		g.Link(b, segs[i+1])
	}
	// The measurement node: eth0 on the first segment, eth1 on the last.
	e0 := g.AddTap("node.eth0", ethernet.MAC{2, 0, 0, 0, 0xee, 0})
	e1 := g.AddTap("node.eth1", ethernet.MAC{2, 0, 0, 0, 0xee, 1})
	g.Link(e0, segs[0])
	g.Link(e1, segs[nBridges])

	net, err := g.Build(cost)
	if err != nil {
		return nil, AgilityResult{}, err
	}
	sim := net.Sim
	eth0, eth1 := net.Tap(e0), net.Tap(e1)
	eth1.Promiscuous = true // reads all packets, like the paper's test program

	var res AgilityResult
	var t0 netsim.Time
	seenIEEE := false
	seenPing := false
	eth1.SetRecv(func(_ *netsim.NIC, raw []byte) {
		ty, err := ethernet.PeekType(raw)
		if err != nil {
			return
		}
		switch ty {
		case ethernet.TypeBPDU:
			if !seenIEEE {
				seenIEEE = true
				res.StartToIEEE = sim.Now().Sub(t0)
			}
		case ethernet.TypeIPv4:
			if !seenPing {
				seenPing = true
				res.StartToPing = sim.Now().Sub(t0)
				sim.Stop()
			}
		}
	})

	// Let the DEC spanning tree converge and begin forwarding.
	sim.Run(netsim.Time(40 * netsim.Second))

	// Inject the IEEE BPDU and start pinging once per second.
	t0 = sim.Now().Add(1)
	sim.Schedule(t0, func() {
		v := stp.Vector{RootID: stp.MakeBridgeID(0x8000, eth0.MAC), Bridge: stp.MakeBridgeID(0x8000, eth0.MAC)}
		fr := ethernet.Frame{Dst: ethernet.AllBridges, Src: eth0.MAC, Type: ethernet.TypeBPDU,
			Payload: stp.EncodeIEEE(v, stp.Config{}.DefaultTimers())}
		raw, err := fr.Marshal()
		if err == nil {
			eth0.Send(raw)
		}
	})
	// Prebuilt ICMP ECHO addressed to eth1 across the chain, re-sent every
	// second until one arrives (paper: "sends out a prebuilt ICMP ECHO on
	// eth0, then delays for 1 second, and repeats").
	echo := icmp.Echo{ID: 7, Seq: 1, Data: make([]byte, 56)}
	ip := ipv4.Packet{TTL: 64, Protocol: ipv4.ProtoICMP,
		Src: ipv4.Addr{10, 9, 0, 1}, Dst: ipv4.Addr{10, 9, 0, 2}, Payload: echo.Marshal()}
	ipb, err := ip.Marshal()
	if err != nil {
		return nil, AgilityResult{}, err
	}
	pingFrame, err := (&ethernet.Frame{Dst: eth1.MAC, Src: eth0.MAC, Type: ethernet.TypeIPv4, Payload: ipb}).Marshal()
	if err != nil {
		return nil, AgilityResult{}, err
	}
	var pinger func()
	pinger = func() {
		if seenPing {
			return
		}
		eth0.Send(pingFrame)
		sim.After(netsim.Second, pinger)
	}
	sim.Schedule(t0.Add(netsim.Millisecond), pinger)

	sim.Run(t0.Add(120 * netsim.Second))

	t.AddRow("start -> IEEE BPDU seen on eth1",
		fmt.Sprintf("%.3f s", float64(res.StartToIEEE)/1e9), "0.056 s")
	t.AddRow("start -> first ping through",
		fmt.Sprintf("%.1f s", float64(res.StartToPing)/1e9), "30.1 s")
	t.AddNote("reconfiguration itself is fast (<0.1 s); the 30 s is the 802.1D forward-delay timers, exactly the paper's conclusion")
	if !seenIEEE || !seenPing {
		t.AddNote("WARNING: experiment incomplete (ieee=%v ping=%v)", seenIEEE, seenPing)
	}
	return t, res, nil
}
