package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"github.com/switchware/activebridge/internal/netsim"
	"github.com/switchware/activebridge/internal/report"
	"github.com/switchware/activebridge/internal/scenario"
)

// tableOnly adapts an infallible table generator to a scenario RunFunc.
func tableOnly(fn func(netsim.CostModel) *report.Table) scenario.RunFunc {
	return func(cost netsim.CostModel) (*report.Table, error) { return fn(cost), nil }
}

// cellFloat parses one table cell as a float64.
func cellFloat(t *report.Table, row, col int) (float64, error) {
	if row >= len(t.Rows) || col >= len(t.Rows[row]) {
		return 0, fmt.Errorf("table %q: no cell (%d,%d)", t.Title, row, col)
	}
	v, err := strconv.ParseFloat(t.Rows[row][col], 64)
	if err != nil {
		return 0, fmt.Errorf("table %q cell (%d,%d) = %q: %w", t.Title, row, col, t.Rows[row][col], err)
	}
	return v, nil
}

// wantRows checks the table has exactly n data rows.
func wantRows(n int) scenario.CheckFunc {
	return func(t *report.Table) error {
		if len(t.Rows) != n {
			return fmt.Errorf("table %q: %d rows, want %d", t.Title, len(t.Rows), n)
		}
		return nil
	}
}

var registerOnce sync.Once

// RegisterAll registers every reproduced paper figure/table plus the
// large-scale scenarios with the scenario registry, in the paper's
// presentation order. It is safe to call from multiple packages; only
// the first call registers.
func RegisterAll() {
	registerOnce.Do(registerAll)
}

func registerAll() {
	scenario.Register("table1-transition",
		"Table 1: automatic DEC→IEEE protocol transition on a 2-bridge line",
		tableOnly(Table1Transition),
		func(t *report.Table) error {
			if err := wantRows(5)(t); err != nil {
				return err
			}
			if got := t.Rows[len(t.Rows)-1][3]; got != "complete" {
				return fmt.Errorf("final control phase = %q, want complete", got)
			}
			return nil
		})

	scenario.Register("table1-fallback",
		"Table 1 failure row: buggy IEEE switchlet triggers automatic fallback to DEC",
		tableOnly(Table1Fallback),
		func(t *report.Table) error {
			if err := wantRows(2)(t); err != nil {
				return err
			}
			for _, r := range t.Rows {
				if r[2] != "yes" || r[3] != "no" || r[4] != "fallback" {
					return fmt.Errorf("bridge %s did not fall back to DEC: %v", r[1], r)
				}
			}
			return nil
		})

	scenario.Register("fig9-ping-latency",
		"Figure 9: ping RTT vs packet size across the four measured paths",
		tableOnly(Fig9PingLatency),
		func(t *report.Table) error {
			if err := wantRows(len(Fig9Sizes))(t); err != nil {
				return err
			}
			for r := range t.Rows {
				direct, err := cellFloat(t, r, 1)
				if err != nil {
					return err
				}
				act, err := cellFloat(t, r, 3)
				if err != nil {
					return err
				}
				if !(direct < act) {
					return fmt.Errorf("row %d: direct RTT %v not below active bridge %v", r, direct, act)
				}
			}
			return nil
		})

	scenario.Register("fig10-ttcp-throughput",
		"Figure 10: ttcp throughput vs write size across the four measured paths",
		tableOnly(Fig10TtcpThroughput),
		func(t *report.Table) error {
			if err := wantRows(len(Fig10Sizes))(t); err != nil {
				return err
			}
			last := len(t.Rows) - 1
			direct, err := cellFloat(t, last, 1)
			if err != nil {
				return err
			}
			act, err := cellFloat(t, last, 3)
			if err != nil {
				return err
			}
			if !(direct > act && act > 0) {
				return fmt.Errorf("8KB throughput ordering violated: direct %v, active %v", direct, act)
			}
			return nil
		})

	scenario.Register("frame-rates",
		"§7.3: delivered frame rate through the active bridge per frame size",
		tableOnly(FrameRates),
		func(t *report.Table) error {
			if err := wantRows(len(FrameRateSizes))(t); err != nil {
				return err
			}
			fps, err := cellFloat(t, 0, 1)
			if err != nil {
				return err
			}
			if fps <= 0 {
				return fmt.Errorf("frame rate not positive: %v", fps)
			}
			return nil
		})

	scenario.Register("fig5-decomposition",
		"Figure 5 / §7.2: per-stage cost decomposition of one forwarded frame",
		tableOnly(LatencyDecomposition),
		wantRows(5))

	scenario.Register("agility-ring",
		"§7.5 function agility: 3-bridge chain switches DEC→IEEE live",
		func(cost netsim.CostModel) (*report.Table, error) {
			t, _, err := AgilityRing(cost)
			return t, err
		},
		func(t *report.Table) error {
			if err := wantRows(2)(t); err != nil {
				return err
			}
			var ieee, ping float64
			if _, err := fmt.Sscanf(t.Rows[0][1], "%f s", &ieee); err != nil {
				return fmt.Errorf("start-to-IEEE cell %q: %w", t.Rows[0][1], err)
			}
			if _, err := fmt.Sscanf(t.Rows[1][1], "%f s", &ping); err != nil {
				return fmt.Errorf("start-to-ping cell %q: %w", t.Rows[1][1], err)
			}
			// Paper: transition in well under a second; pings resume only
			// after the ~30 s forward-delay timers.
			if ieee <= 0 || ieee > 1 || ping < 25 {
				return fmt.Errorf("agility out of expected range: ieee=%v s ping=%v s", ieee, ping)
			}
			for _, n := range t.Notes {
				if strings.HasPrefix(n, "WARNING") {
					return fmt.Errorf("experiment incomplete: %s", n)
				}
			}
			return nil
		})

	scenario.Register("netload-tftp",
		"§5.2 network switchlet loading over Ethernet/IP/UDP/TFTP",
		func(cost netsim.CostModel) (*report.Table, error) { return NetworkLoad(cost) },
		func(t *report.Table) error {
			if err := wantRows(6)(t); err != nil {
				return err
			}
			if t.Rows[4][1] != "true" {
				return fmt.Errorf("bridge did not forward after load: %v", t.Rows[4])
			}
			if t.Rows[5][1] != "1" {
				return fmt.Errorf("expected exactly 1 network load, got %v", t.Rows[5])
			}
			return nil
		})

	scenario.Register("deployment-incremental",
		"§5.2 incremental deployment: frontier grows one hop per switchlet upload",
		func(cost netsim.CostModel) (*report.Table, error) { return IncrementalDeployment(cost) },
		func(t *report.Table) error {
			if err := wantRows(4)(t); err != nil {
				return err
			}
			if got := t.Rows[3][3]; got != "4" {
				return fmt.Errorf("final frontier %q, want all 4 probes reachable", got)
			}
			return nil
		})

	scenario.Register("scalability",
		"§7.4 aggregate throughput vs attached LAN pairs through one bridge",
		tableOnly(Scalability),
		func(t *report.Table) error {
			if err := wantRows(4)(t); err != nil {
				return err
			}
			agg1, err := cellFloat(t, 0, 2)
			if err != nil {
				return err
			}
			agg8, err := cellFloat(t, 3, 2)
			if err != nil {
				return err
			}
			// Aggregate must saturate, not scale linearly with pairs.
			if agg8 > 4*agg1 {
				return fmt.Errorf("aggregate scaled from %v to %v over 8 pairs; expected interpreter saturation", agg1, agg8)
			}
			return nil
		}).Slow = true

	scenario.Register("ablation-native-vs-bytecode",
		"Ablation: native-code switchlets vs bytecode interpretation",
		tableOnly(AblationNativeVsBytecode), wantRows(3)).Slow = true

	scenario.Register("ablation-learning",
		"Ablation: dumb vs learning switchlet flood containment",
		tableOnly(AblationLearning),
		func(t *report.Table) error {
			if err := wantRows(2)(t); err != nil {
				return err
			}
			dumb, err := cellFloat(t, 0, 1)
			if err != nil {
				return err
			}
			learn, err := cellFloat(t, 1, 1)
			if err != nil {
				return err
			}
			if !(learn < dumb) {
				return fmt.Errorf("learning leaked %v frames vs dumb %v; expected containment", learn, dumb)
			}
			return nil
		}).Slow = true

	scenario.Register("ablation-kernel-cost",
		"Ablation: kernel-crossing cost sweep (the U-Net optimization axis)",
		tableOnly(AblationKernelCost), wantRows(4)).Slow = true

	scenario.Register("ablation-gc-pressure",
		"Ablation: GC pressure sweep on bridge throughput",
		tableOnly(AblationGCPressure), wantRows(4)).Slow = true

	registerScale()
	registerMegaScale()
	registerChaos()
}
