// Package trace provides the measurement plumbing of the experiment
// harness: aligned text tables (the form in which every reproduced figure
// and table is emitted) and small statistics helpers.
package report

import (
	"fmt"
	"strings"

	"github.com/switchware/activebridge/internal/netsim"
)

// Table is a reproduced figure or table: a title, a header row, data rows,
// and free-form notes (assumptions, substitutions, paper reference values).
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a data row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends an explanatory note.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var sb strings.Builder
	sb.WriteString("== ")
	sb.WriteString(t.Title)
	sb.WriteString(" ==\n")
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			sb.WriteString(c)
			sb.WriteString(strings.Repeat(" ", pad))
		}
		sb.WriteString("\n")
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteString("\n")
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		sb.WriteString("note: ")
		sb.WriteString(n)
		sb.WriteString("\n")
	}
	return sb.String()
}

// Ms renders a duration as milliseconds with two decimals.
func Ms(d netsim.Duration) string { return fmt.Sprintf("%.2f", float64(d)/1e6) }

// Mbps renders a float megabit rate with one decimal.
func Mbps(v float64) string { return fmt.Sprintf("%.1f", v) }

// Series accumulates samples for summary statistics.
type Series struct {
	vals []float64
}

// Add appends a sample.
func (s *Series) Add(v float64) { s.vals = append(s.vals, v) }

// N returns the sample count.
func (s *Series) N() int { return len(s.vals) }

// Mean returns the arithmetic mean (0 when empty).
func (s *Series) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.vals {
		sum += v
	}
	return sum / float64(len(s.vals))
}

// Min returns the smallest sample (0 when empty).
func (s *Series) Min() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	m := s.vals[0]
	for _, v := range s.vals[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest sample (0 when empty).
func (s *Series) Max() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	m := s.vals[0]
	for _, v := range s.vals[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Percentile returns the p-th percentile (nearest-rank, p in [0,100]).
func (s *Series) Percentile(p float64) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.vals...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	idx := int(p/100*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
