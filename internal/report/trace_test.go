package report

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/switchware/activebridge/internal/netsim"
)

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		Title:  "demo",
		Header: []string{"col1", "longer-column"},
	}
	tbl.AddRow("a", "b")
	tbl.AddRow("longer-value", "x")
	tbl.AddNote("a note with %d placeholders", 1)
	s := tbl.String()
	if !strings.Contains(s, "== demo ==") {
		t.Error("missing title")
	}
	if !strings.Contains(s, "note: a note with 1 placeholders") {
		t.Error("missing note")
	}
	lines := strings.Split(s, "\n")
	// Header and data lines should align: the second column starts at the
	// same offset in each.
	var hdr, row string
	for _, ln := range lines {
		if strings.HasPrefix(ln, "col1") {
			hdr = ln
		}
		if strings.HasPrefix(ln, "longer-value") {
			row = ln
		}
	}
	if hdr == "" || row == "" {
		t.Fatalf("rows missing in output:\n%s", s)
	}
	if strings.Index(hdr, "longer-column") != strings.Index(row, "x") {
		t.Errorf("columns not aligned:\n%s", s)
	}
}

func TestFormatters(t *testing.T) {
	if Ms(1500*netsim.Microsecond) != "1.50" {
		t.Errorf("Ms = %s", Ms(1500*netsim.Microsecond))
	}
	if Mbps(16.04) != "16.0" {
		t.Errorf("Mbps = %s", Mbps(16.04))
	}
}

func TestSeriesStats(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Percentile(50) != 0 {
		t.Error("empty series should return zeros")
	}
	for _, v := range []float64{5, 1, 3, 2, 4} {
		s.Add(v)
	}
	if s.N() != 5 {
		t.Errorf("N = %d", s.N())
	}
	if s.Mean() != 3 {
		t.Errorf("Mean = %v", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if got := s.Percentile(50); got != 3 {
		t.Errorf("p50 = %v", got)
	}
	if got := s.Percentile(100); got != 5 {
		t.Errorf("p100 = %v", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
}

func TestSeriesBoundsProperty(t *testing.T) {
	f := func(raw []int32) bool {
		if len(raw) == 0 {
			return true
		}
		// Bounded inputs: summation of extreme float64s overflows, which
		// is not a property the measurement pipeline needs.
		var s Series
		for _, v := range raw {
			s.Add(float64(v))
		}
		return s.Min() <= s.Mean() && s.Mean() <= s.Max() &&
			s.Min() <= s.Percentile(50) && s.Percentile(50) <= s.Max()
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
