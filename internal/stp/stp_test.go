package stp

import (
	"testing"
	"testing/quick"

	"github.com/switchware/activebridge/internal/ethernet"
	"github.com/switchware/activebridge/internal/netsim"
)

func bid(prio uint16, last byte) BridgeID {
	return MakeBridgeID(prio, ethernet.MAC{0x02, 0xbb, 0, 0, last, 0})
}

func TestBridgeIDComposition(t *testing.T) {
	mac := ethernet.MAC{0x02, 0xbb, 0, 0, 7, 0}
	id := MakeBridgeID(0x8000, mac)
	if id.Priority() != 0x8000 || id.MAC() != mac {
		t.Errorf("id decomposition: %v", id)
	}
	// Lower priority wins regardless of MAC.
	if !(MakeBridgeID(1, ethernet.MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}) <
		MakeBridgeID(2, ethernet.MAC{0, 0, 0, 0, 0, 1})) {
		t.Error("priority must dominate MAC")
	}
}

func TestVectorOrdering(t *testing.T) {
	base := Vector{RootID: bid(0x8000, 1), Cost: 10, Bridge: bid(0x8000, 2), Port: 1}
	better := []Vector{
		{RootID: bid(0x7000, 9), Cost: 99, Bridge: bid(0xffff, 9), Port: 9}, // lower root
		{RootID: base.RootID, Cost: 9, Bridge: bid(0xffff, 9), Port: 9},     // lower cost
		{RootID: base.RootID, Cost: 10, Bridge: bid(0x8000, 1), Port: 9},    // lower bridge
		{RootID: base.RootID, Cost: 10, Bridge: base.Bridge, Port: 0},       // lower port
	}
	for i, v := range better {
		if !v.Better(base) {
			t.Errorf("case %d: %+v should beat %+v", i, v, base)
		}
		if base.Better(v) {
			t.Errorf("case %d: ordering not antisymmetric", i)
		}
	}
	if base.Better(base) {
		t.Error("Better must be irreflexive")
	}
}

func TestVectorOrderingTotalProperty(t *testing.T) {
	f := func(r1, r2 uint64, c1, c2 uint32, b1, b2 uint64, p1, p2 uint16) bool {
		v := Vector{RootID: BridgeID(r1), Cost: c1, Bridge: BridgeID(b1), Port: p1}
		w := Vector{RootID: BridgeID(r2), Cost: c2, Bridge: BridgeID(b2), Port: p2}
		if v == w {
			return !v.Better(w) && !w.Better(v)
		}
		return v.Better(w) != w.Better(v) // exactly one direction
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBPDUIEEERoundTrip(t *testing.T) {
	cfg := Config{}.DefaultTimers()
	f := func(r uint64, c uint32, b uint64, p uint16) bool {
		v := Vector{RootID: BridgeID(r), Cost: c, Bridge: BridgeID(b), Port: p}
		got, err := DecodeIEEE(EncodeIEEE(v, cfg))
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBPDUDECRoundTrip(t *testing.T) {
	f := func(r uint64, c uint32, b uint64, p uint16) bool {
		v := Vector{RootID: BridgeID(r), Cost: c, Bridge: BridgeID(b), Port: p}
		got, err := DecodeDEC(EncodeDEC(v))
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBPDUFormatsIncompatible(t *testing.T) {
	cfg := Config{}.DefaultTimers()
	v := Vector{RootID: bid(0x8000, 1), Cost: 19, Bridge: bid(0x8000, 2), Port: 3}
	if _, err := DecodeIEEE(EncodeDEC(v)); err == nil {
		t.Error("DEC frame must not parse as IEEE")
	}
	if _, err := DecodeDEC(EncodeIEEE(v, cfg)); err == nil {
		t.Error("IEEE frame must not parse as DEC")
	}
	if _, err := DecodeIEEE(nil); err == nil {
		t.Error("nil must not parse")
	}
	if _, err := DecodeDEC([]byte{1, 2}); err == nil {
		t.Error("short must not parse")
	}
}

// cluster wires n bridges into a topology given as adjacency: links[i] is a
// list of (bridge, port, bridge, port) tuples. It runs hello ticks and
// exchanges emitted BPDUs instantly (zero-delay control plane) for the
// given number of rounds.
type link struct{ a, ap, b, bp int }

type cluster struct {
	ms    []*Machine
	links []link
	now   netsim.Time
}

func newCluster(prios []uint16, links []link) *cluster {
	c := &cluster{links: links}
	nports := make([]int, len(prios))
	for _, l := range links {
		if l.ap+1 > nports[l.a] {
			nports[l.a] = l.ap + 1
		}
		if l.bp+1 > nports[l.b] {
			nports[l.b] = l.bp + 1
		}
	}
	for i, p := range prios {
		cfg := Config{BridgeID: bid(p, byte(i+1)), NumPorts: nports[i]}
		i := i
		_ = i
		c.ms = append(c.ms, New(cfg, func() netsim.Time { return c.now }))
	}
	return c
}

// round advances time by HelloTime and exchanges all emitted BPDUs.
func (c *cluster) round() {
	c.now = c.now.Add(2 * netsim.Second)
	type msg struct {
		to, port int
		v        Vector
	}
	var msgs []msg
	for i, m := range c.ms {
		for _, e := range m.Tick() {
			for _, l := range c.links {
				if l.a == i && l.ap == e.Port {
					msgs = append(msgs, msg{to: l.b, port: l.bp, v: e.V})
				}
				if l.b == i && l.bp == e.Port {
					msgs = append(msgs, msg{to: l.a, port: l.ap, v: e.V})
				}
			}
		}
	}
	for _, m := range msgs {
		c.ms[m.to].ReceiveConfig(m.port, m.v)
	}
}

func (c *cluster) rounds(n int) {
	for i := 0; i < n; i++ {
		c.round()
	}
}

func TestTwoBridgeElection(t *testing.T) {
	// Bridge 0 has lower priority -> root.
	c := newCluster([]uint16{100, 200}, []link{{a: 0, ap: 0, b: 1, bp: 0}})
	c.rounds(3)
	if !c.ms[0].IsRoot() {
		t.Error("bridge 0 should be root")
	}
	if c.ms[1].IsRoot() {
		t.Error("bridge 1 should not be root")
	}
	if c.ms[1].RootID() != c.ms[0].Config().BridgeID {
		t.Errorf("bridge 1 sees root %v", c.ms[1].RootID())
	}
	if c.ms[1].RootPort() != 0 {
		t.Errorf("bridge 1 root port = %d", c.ms[1].RootPort())
	}
	if c.ms[1].RootCost() != 19 {
		t.Errorf("bridge 1 root cost = %d", c.ms[1].RootCost())
	}
}

func TestTriangleBlocksOnePort(t *testing.T) {
	// Three bridges in a triangle: exactly one port in the whole network
	// must end up blocked to break the loop.
	c := newCluster([]uint16{100, 200, 300}, []link{
		{a: 0, ap: 0, b: 1, bp: 0},
		{a: 1, ap: 1, b: 2, bp: 0},
		{a: 2, ap: 1, b: 0, bp: 1},
	})
	c.rounds(25) // past forward delay twice
	blocked := 0
	forwarding := 0
	for i, m := range c.ms {
		for p := 0; p < m.Config().NumPorts; p++ {
			switch {
			case m.PortRole(p) == RoleBlocked:
				blocked++
			case m.ShouldForward(p):
				forwarding++
			default:
				t.Errorf("bridge %d port %d neither blocked nor forwarding after convergence: %v/%v",
					i, p, m.PortRole(p), m.PortState(p))
			}
		}
	}
	if blocked != 1 {
		t.Errorf("blocked ports = %d, want exactly 1", blocked)
	}
	if forwarding != 5 {
		t.Errorf("forwarding ports = %d, want 5", forwarding)
	}
	// All agree on the root.
	for i, m := range c.ms {
		if m.RootID() != c.ms[0].Config().BridgeID {
			t.Errorf("bridge %d root = %v", i, m.RootID())
		}
	}
}

func TestForwardDelayStaging(t *testing.T) {
	c := newCluster([]uint16{100, 200}, []link{{a: 0, ap: 0, b: 1, bp: 0}})
	// Immediately after start: listening, not forwarding.
	c.round()
	if c.ms[0].ShouldForward(0) {
		t.Error("port forwarding immediately; must wait 2x forward delay")
	}
	if c.ms[0].PortState(0) != Listening {
		t.Errorf("state = %v, want listening", c.ms[0].PortState(0))
	}
	// After ~15s: learning.
	c.rounds(7) // 16s total
	if got := c.ms[0].PortState(0); got != Learning {
		t.Errorf("state after 16s = %v, want learning", got)
	}
	if c.ms[0].ShouldForward(0) {
		t.Error("must not forward while learning")
	}
	if !c.ms[0].ShouldLearn(0) {
		t.Error("should learn in learning state")
	}
	// After 30s: forwarding.
	c.rounds(8) // 32s total
	if got := c.ms[0].PortState(0); got != Forwarding {
		t.Errorf("state after 32s = %v, want forwarding", got)
	}
	if !c.ms[0].ShouldForward(0) {
		t.Error("should forward after 2x forward delay")
	}
}

func TestRootFailureReelection(t *testing.T) {
	c := newCluster([]uint16{100, 200, 300}, []link{
		{a: 0, ap: 0, b: 1, bp: 0},
		{a: 1, ap: 1, b: 2, bp: 0},
	})
	c.rounds(5)
	if !c.ms[0].IsRoot() || c.ms[2].RootID() != c.ms[0].Config().BridgeID {
		t.Fatal("initial election failed")
	}
	// Kill bridge 0: its information ages out (MaxAge 20s) and bridge 1
	// should take over as root.
	dead := c.ms[0]
	c.ms[0] = New(Config{BridgeID: bid(0xffff, 99), NumPorts: 1}, func() netsim.Time { return c.now })
	_ = dead
	// Disconnect: remove links touching 0.
	c.links = []link{{a: 1, ap: 1, b: 2, bp: 0}}
	c.rounds(15) // 30s, past max age
	if !c.ms[1].IsRoot() {
		t.Errorf("bridge 1 should become root after old root ages out; sees %v", c.ms[1].RootID())
	}
	if c.ms[2].RootID() != c.ms[1].Config().BridgeID {
		t.Errorf("bridge 2 sees root %v", c.ms[2].RootID())
	}
}

func TestTreeInfoStableAcrossProtocolsAndDeterministic(t *testing.T) {
	mk := func() *cluster {
		return newCluster([]uint16{100, 200, 300}, []link{
			{a: 0, ap: 0, b: 1, bp: 0},
			{a: 1, ap: 1, b: 2, bp: 0},
			{a: 2, ap: 1, b: 0, bp: 1},
		})
	}
	c1 := mk()
	c2 := mk()
	c1.rounds(25)
	c2.rounds(25)
	for i := range c1.ms {
		if c1.ms[i].TreeInfo() != c2.ms[i].TreeInfo() {
			t.Errorf("bridge %d tree info not deterministic:\n%s\n%s",
				i, c1.ms[i].TreeInfo(), c2.ms[i].TreeInfo())
		}
	}
}

func TestLineTopologyCosts(t *testing.T) {
	// 0 -- 1 -- 2 -- 3 line: costs accumulate.
	c := newCluster([]uint16{100, 200, 300, 400}, []link{
		{a: 0, ap: 0, b: 1, bp: 0},
		{a: 1, ap: 1, b: 2, bp: 0},
		{a: 2, ap: 1, b: 3, bp: 0},
	})
	c.rounds(6)
	for i, want := range []uint32{0, 19, 38, 57} {
		if got := c.ms[i].RootCost(); got != want {
			t.Errorf("bridge %d root cost = %d, want %d", i, got, want)
		}
	}
	// A line has no loops: no port should be blocked.
	for i, m := range c.ms {
		for p := 0; p < m.Config().NumPorts; p++ {
			if m.PortRole(p) == RoleBlocked {
				t.Errorf("bridge %d port %d blocked in loop-free topology", i, p)
			}
		}
	}
}
