package stp

import (
	"encoding/binary"
	"errors"
)

// IEEE 802.1D configuration BPDU layout (35 bytes):
//
//	offset size field
//	0      2    protocol identifier (0)
//	2      1    version (0)
//	3      1    BPDU type (0 = configuration)
//	4      1    flags
//	5      8    root identifier
//	13     4    root path cost
//	17     8    bridge identifier
//	25     2    port identifier
//	27     2    message age (1/256 s)
//	29     2    max age
//	31     2    hello time
//	33     2    forward delay
//
// The DEC-style format used as the paper's "old" protocol is deliberately
// incompatible: different length, different field order, a magic byte, and
// it travels to a different multicast address with a different EtherType.
const (
	IEEEBPDULen = 35
	DECBPDULen  = 26
	decMagic    = 0xe1
)

// Codec errors.
var (
	ErrBadBPDU = errors.New("stp: malformed BPDU")
	ErrNotBPDU = errors.New("stp: not a configuration BPDU")
)

// EncodeIEEE renders a configuration vector as an 802.1D config BPDU with
// the machine's timer values.
func EncodeIEEE(v Vector, c Config) []byte {
	b := make([]byte, IEEEBPDULen)
	// protocol id, version, type already zero.
	binary.BigEndian.PutUint64(b[5:13], uint64(v.RootID))
	binary.BigEndian.PutUint32(b[13:17], v.Cost)
	binary.BigEndian.PutUint64(b[17:25], uint64(v.Bridge))
	binary.BigEndian.PutUint16(b[25:27], v.Port)
	put256ths := func(off int, d int64) {
		binary.BigEndian.PutUint16(b[off:off+2], uint16(d*256/1e9))
	}
	put256ths(29, int64(c.MaxAge))
	put256ths(31, int64(c.HelloTime))
	put256ths(33, int64(c.ForwardDelay))
	return b
}

// DecodeIEEE parses an 802.1D configuration BPDU.
func DecodeIEEE(b []byte) (Vector, error) {
	if len(b) < IEEEBPDULen {
		return Vector{}, ErrBadBPDU
	}
	if binary.BigEndian.Uint16(b[0:2]) != 0 || b[2] != 0 {
		return Vector{}, ErrBadBPDU
	}
	if b[3] != 0 {
		return Vector{}, ErrNotBPDU // e.g. a TCN
	}
	return Vector{
		RootID: BridgeID(binary.BigEndian.Uint64(b[5:13])),
		Cost:   binary.BigEndian.Uint32(b[13:17]),
		Bridge: BridgeID(binary.BigEndian.Uint64(b[17:25])),
		Port:   binary.BigEndian.Uint16(b[25:27]),
	}, nil
}

// EncodeDEC renders the vector in the DEC-style format.
func EncodeDEC(v Vector) []byte {
	b := make([]byte, DECBPDULen)
	b[0] = decMagic
	b[1] = 1 // version
	// Deliberately different field order: bridge, port, root, cost.
	binary.BigEndian.PutUint64(b[2:10], uint64(v.Bridge))
	binary.BigEndian.PutUint16(b[10:12], v.Port)
	binary.BigEndian.PutUint64(b[12:20], uint64(v.RootID))
	binary.BigEndian.PutUint32(b[20:24], v.Cost)
	// b[24:26] reserved.
	return b
}

// DecodeDEC parses a DEC-style configuration frame.
func DecodeDEC(b []byte) (Vector, error) {
	if len(b) < DECBPDULen || b[0] != decMagic || b[1] != 1 {
		return Vector{}, ErrBadBPDU
	}
	return Vector{
		Bridge: BridgeID(binary.BigEndian.Uint64(b[2:10])),
		Port:   binary.BigEndian.Uint16(b[10:12]),
		RootID: BridgeID(binary.BigEndian.Uint64(b[12:20])),
		Cost:   binary.BigEndian.Uint32(b[20:24]),
	}, nil
}
