// Package stp implements the IEEE 802.1D spanning tree protocol used by
// the third bridge switchlet (paper §5.3) and the DEC-style variant used
// as the "old" protocol in the automatic protocol transition experiment
// (§5.4). The state machine is transport-agnostic: the caller feeds
// received configuration vectors in and transmits the emitted ones.
//
// The DEC variant follows the paper's construction exactly: "We simply
// required an incompatible packet format so that we could make a
// transition" — same algorithm, different multicast address and frame
// format.
package stp

import (
	"fmt"
	"strings"

	"github.com/switchware/activebridge/internal/ethernet"
	"github.com/switchware/activebridge/internal/netsim"
)

// BridgeID is the 64-bit 802.1D bridge identifier: a 16-bit management
// priority concatenated with the bridge MAC address. Lower is better.
type BridgeID uint64

// MakeBridgeID composes priority and MAC.
func MakeBridgeID(priority uint16, mac ethernet.MAC) BridgeID {
	return BridgeID(uint64(priority)<<48 | mac.Uint64())
}

// MAC extracts the address part.
func (id BridgeID) MAC() ethernet.MAC { return ethernet.MACFromUint64(uint64(id)) }

// Priority extracts the management priority.
func (id BridgeID) Priority() uint16 { return uint16(id >> 48) }

func (id BridgeID) String() string {
	return fmt.Sprintf("%d/%v", id.Priority(), id.MAC())
}

// Vector is an 802.1D priority vector as carried in configuration BPDUs.
type Vector struct {
	RootID BridgeID
	Cost   uint32
	Bridge BridgeID
	Port   uint16
}

// Better reports whether v is strictly preferable to w under the 802.1D
// total order: lower root, then lower cost, then lower transmitting
// bridge, then lower port.
func (v Vector) Better(w Vector) bool {
	if v.RootID != w.RootID {
		return v.RootID < w.RootID
	}
	if v.Cost != w.Cost {
		return v.Cost < w.Cost
	}
	if v.Bridge != w.Bridge {
		return v.Bridge < w.Bridge
	}
	return v.Port < w.Port
}

// PortState is a spanning tree port state.
type PortState int

// Port states in increasing readiness. Listening and Learning are the
// forward-delay stages that produce the ~30 s gap the paper measures in
// §7.5.
const (
	Blocking PortState = iota
	Listening
	Learning
	Forwarding
)

var stateNames = [...]string{"blocking", "listening", "learning", "forwarding"}

func (s PortState) String() string { return stateNames[s] }

// Role is the port's topology role.
type Role int

// Port roles.
const (
	RoleBlocked Role = iota
	RoleRoot
	RoleDesignated
)

var roleNames = [...]string{"blocked", "root", "designated"}

func (r Role) String() string { return roleNames[r] }

// Config parameterizes a bridge's spanning tree instance. The defaults
// are the 802.1D recommended timer values, which produce the paper's
// observed 30-second forwarding delay.
type Config struct {
	BridgeID     BridgeID
	NumPorts     int
	HelloTime    netsim.Duration // default 2 s
	MaxAge       netsim.Duration // default 20 s
	ForwardDelay netsim.Duration // default 15 s
	PathCost     uint32          // per-port cost; 19 is 802.1D for 100 Mb/s
}

// DefaultTimers fills unset timer fields with the 802.1D defaults.
func (c Config) DefaultTimers() Config {
	if c.HelloTime == 0 {
		c.HelloTime = 2 * netsim.Second
	}
	if c.MaxAge == 0 {
		c.MaxAge = 20 * netsim.Second
	}
	if c.ForwardDelay == 0 {
		c.ForwardDelay = 15 * netsim.Second
	}
	if c.PathCost == 0 {
		c.PathCost = 19
	}
	return c
}

type portInfo struct {
	// best is the best configuration heard on this port, valid while
	// heardAt + MaxAge is in the future.
	best    Vector
	hasBest bool
	heardAt netsim.Time

	role  Role
	state PortState
	// stateSince timestamps the current state for forward-delay advances.
	stateSince netsim.Time
}

// Emit is a configuration BPDU to transmit.
type Emit struct {
	Port int
	V    Vector
}

// Machine is one bridge's spanning tree computation.
type Machine struct {
	cfg   Config
	now   func() netsim.Time
	ports []portInfo

	// Topology outputs.
	root     BridgeID
	rootCost uint32
	rootPort int // -1 when this bridge is root

	// Stats.
	Elections uint64
	RxConfigs uint64
}

// New creates a machine; now supplies virtual time.
func New(cfg Config, now func() netsim.Time) *Machine {
	cfg = cfg.DefaultTimers()
	m := &Machine{cfg: cfg, now: now, ports: make([]portInfo, cfg.NumPorts), rootPort: -1}
	m.root = cfg.BridgeID
	t := now()
	for i := range m.ports {
		// A fresh bridge believes itself root and its ports designated;
		// they still walk through listening/learning before forwarding.
		m.ports[i] = portInfo{role: RoleDesignated, state: Listening, stateSince: t}
	}
	return m
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// ReceiveConfig processes a configuration vector heard on a port.
func (m *Machine) ReceiveConfig(port int, v Vector) {
	if port < 0 || port >= len(m.ports) {
		return
	}
	m.RxConfigs++
	p := &m.ports[port]
	if !p.hasBest || v.Better(p.best) || v.Bridge == p.best.Bridge {
		// Better information, or a refresh from the same designated
		// bridge (which may be worse than before, e.g. after it lost
		// the root): replace.
		p.best = v
		p.hasBest = true
		p.heardAt = m.now()
		m.recompute()
	}
}

// myVector is the configuration this bridge transmits on designated ports.
func (m *Machine) myVector(port int) Vector {
	return Vector{RootID: m.root, Cost: m.rootCost, Bridge: m.cfg.BridgeID, Port: uint16(port)}
}

// recompute runs root election and role assignment.
func (m *Machine) recompute() {
	now := m.now()
	oldRoot, oldRootPort := m.root, m.rootPort

	// Expire stale information.
	for i := range m.ports {
		p := &m.ports[i]
		if p.hasBest && now.Sub(p.heardAt) > m.cfg.MaxAge {
			p.hasBest = false
		}
	}

	// Root election: the best of our own ID and every heard vector.
	m.root = m.cfg.BridgeID
	m.rootCost = 0
	m.rootPort = -1
	var bestThrough Vector
	for i := range m.ports {
		p := &m.ports[i]
		if !p.hasBest {
			continue
		}
		cand := p.best
		if cand.RootID < m.root ||
			(cand.RootID == m.root && m.rootPort >= 0 && throughBetter(cand, i, bestThrough, m.rootPort)) ||
			(cand.RootID == m.root && m.rootPort == -1 && cand.RootID != m.cfg.BridgeID) {
			m.root = cand.RootID
			m.rootCost = cand.Cost + m.cfg.PathCost
			m.rootPort = i
			bestThrough = cand
		}
	}

	// Role assignment.
	for i := range m.ports {
		p := &m.ports[i]
		var role Role
		switch {
		case i == m.rootPort:
			role = RoleRoot
		case !p.hasBest || m.myVector(i).Better(p.best):
			// No better designated bridge heard: we are designated.
			role = RoleDesignated
		default:
			role = RoleBlocked
		}
		m.setRole(i, role, now)
	}

	if m.root != oldRoot || m.rootPort != oldRootPort {
		m.Elections++
	}
}

// throughBetter compares two candidate root paths (same root).
func throughBetter(a Vector, aPort int, b Vector, bPort int) bool {
	av := Vector{RootID: a.RootID, Cost: a.Cost, Bridge: a.Bridge, Port: uint16(aPort)}
	bv := Vector{RootID: b.RootID, Cost: b.Cost, Bridge: b.Bridge, Port: uint16(bPort)}
	return av.Better(bv)
}

func (m *Machine) setRole(i int, role Role, now netsim.Time) {
	p := &m.ports[i]
	if p.role == role {
		return
	}
	p.role = role
	if role == RoleBlocked {
		p.state = Blocking
	} else if p.state == Blocking {
		p.state = Listening
	}
	p.stateSince = now
}

// Tick advances timers: expiry, state transitions, and periodic
// configuration transmission on designated ports. Call it every HelloTime.
func (m *Machine) Tick() []Emit {
	now := m.now()
	m.recompute()
	for i := range m.ports {
		p := &m.ports[i]
		if p.role == RoleBlocked {
			continue
		}
		// Listening -> Learning -> Forwarding, one ForwardDelay each.
		for p.state < Forwarding && now.Sub(p.stateSince) >= m.cfg.ForwardDelay {
			p.stateSince = p.stateSince.Add(m.cfg.ForwardDelay)
			p.state++
		}
	}
	var out []Emit
	for i := range m.ports {
		if m.ports[i].role == RoleDesignated {
			out = append(out, Emit{Port: i, V: m.myVector(i)})
		}
	}
	return out
}

// PortRole returns the port's role.
func (m *Machine) PortRole(i int) Role { return m.ports[i].role }

// PortState returns the port's state.
func (m *Machine) PortState(i int) PortState { return m.ports[i].state }

// ShouldForward reports whether data traffic may cross the port.
func (m *Machine) ShouldForward(i int) bool {
	return m.ports[i].role != RoleBlocked && m.ports[i].state == Forwarding
}

// ShouldLearn reports whether addresses may be learned from the port.
func (m *Machine) ShouldLearn(i int) bool {
	return m.ports[i].role != RoleBlocked && m.ports[i].state >= Learning
}

// RootID returns the elected root.
func (m *Machine) RootID() BridgeID { return m.root }

// RootCost returns the path cost to the root (0 at the root).
func (m *Machine) RootCost() uint32 { return m.rootCost }

// RootPort returns the root port index, or -1 at the root bridge.
func (m *Machine) RootPort() int { return m.rootPort }

// IsRoot reports whether this bridge is the spanning tree root.
func (m *Machine) IsRoot() bool { return m.rootPort == -1 }

// TreeInfo renders the local view of the spanning tree canonically; the
// control switchlet compares this across protocols (paper §5.4: "the
// portion of the spanning tree computed at each node should be identical
// for the old and the new protocols").
func (m *Machine) TreeInfo() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "root=%v cost=%d rootport=%d", m.root, m.rootCost, m.rootPort)
	for i := range m.ports {
		fmt.Fprintf(&sb, " p%d=%v", i, m.ports[i].role)
	}
	return sb.String()
}
