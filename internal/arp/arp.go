// Package arp implements the Address Resolution Protocol (RFC 826) for
// Ethernet/IPv4, used by the measurement hosts to resolve neighbors across
// the extended LAN. ARP traffic is also a natural exerciser of the
// bridge's broadcast flooding and learning behaviour: the request floods,
// the reply is unicast and teaches the bridges both stations' locations.
package arp

import (
	"encoding/binary"
	"errors"

	"github.com/switchware/activebridge/internal/ethernet"
	"github.com/switchware/activebridge/internal/ipv4"
)

// Operation codes.
const (
	OpRequest = 1
	OpReply   = 2
)

// PacketLen is the Ethernet/IPv4 ARP packet length.
const PacketLen = 28

// Errors.
var (
	ErrTruncated = errors.New("arp: truncated packet")
	ErrBadTypes  = errors.New("arp: not Ethernet/IPv4 ARP")
)

// Packet is an Ethernet/IPv4 ARP packet.
type Packet struct {
	Op       uint16
	SenderHA ethernet.MAC
	SenderIP ipv4.Addr
	TargetHA ethernet.MAC
	TargetIP ipv4.Addr
}

// Marshal encodes the packet.
func (p *Packet) Marshal() []byte {
	b := make([]byte, PacketLen)
	binary.BigEndian.PutUint16(b[0:2], 1)      // hardware: Ethernet
	binary.BigEndian.PutUint16(b[2:4], 0x0800) // protocol: IPv4
	b[4] = 6                                   // hardware len
	b[5] = 4                                   // protocol len
	binary.BigEndian.PutUint16(b[6:8], p.Op)
	copy(b[8:14], p.SenderHA[:])
	copy(b[14:18], p.SenderIP[:])
	copy(b[18:24], p.TargetHA[:])
	copy(b[24:28], p.TargetIP[:])
	return b
}

// Unmarshal decodes and validates b (trailing padding tolerated).
func (p *Packet) Unmarshal(b []byte) error {
	if len(b) < PacketLen {
		return ErrTruncated
	}
	if binary.BigEndian.Uint16(b[0:2]) != 1 || binary.BigEndian.Uint16(b[2:4]) != 0x0800 ||
		b[4] != 6 || b[5] != 4 {
		return ErrBadTypes
	}
	p.Op = binary.BigEndian.Uint16(b[6:8])
	copy(p.SenderHA[:], b[8:14])
	copy(p.SenderIP[:], b[14:18])
	copy(p.TargetHA[:], b[18:24])
	copy(p.TargetIP[:], b[24:28])
	return nil
}

// Request builds a who-has request for target, from the given station.
func Request(senderHA ethernet.MAC, senderIP, target ipv4.Addr) *Packet {
	return &Packet{Op: OpRequest, SenderHA: senderHA, SenderIP: senderIP, TargetIP: target}
}

// Reply builds the answer to req claiming ha owns req.TargetIP.
func Reply(req *Packet, ha ethernet.MAC) *Packet {
	return &Packet{
		Op: OpReply, SenderHA: ha, SenderIP: req.TargetIP,
		TargetHA: req.SenderHA, TargetIP: req.SenderIP,
	}
}
