package arp

import (
	"testing"
	"testing/quick"

	"github.com/switchware/activebridge/internal/ethernet"
	"github.com/switchware/activebridge/internal/ipv4"
)

func TestRoundTrip(t *testing.T) {
	p := Packet{
		Op:       OpRequest,
		SenderHA: ethernet.MAC{2, 0, 0, 0, 0, 1},
		SenderIP: ipv4.Addr{10, 0, 0, 1},
		TargetIP: ipv4.Addr{10, 0, 0, 2},
	}
	var g Packet
	if err := g.Unmarshal(p.Marshal()); err != nil {
		t.Fatal(err)
	}
	if g != p {
		t.Errorf("round trip: %+v vs %+v", g, p)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(op uint16, sha ethernet.MAC, sip ipv4.Addr, tha ethernet.MAC, tip ipv4.Addr) bool {
		p := Packet{Op: op, SenderHA: sha, SenderIP: sip, TargetHA: tha, TargetIP: tip}
		var g Packet
		return g.Unmarshal(p.Marshal()) == nil && g == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalTolerantOfPadding(t *testing.T) {
	p := Request(ethernet.MAC{1, 2, 3, 4, 5, 6}, ipv4.Addr{1, 1, 1, 1}, ipv4.Addr{2, 2, 2, 2})
	padded := append(p.Marshal(), make([]byte, 18)...) // Ethernet min-frame pad
	var g Packet
	if err := g.Unmarshal(padded); err != nil {
		t.Fatal(err)
	}
	if g.Op != OpRequest || g.TargetIP != (ipv4.Addr{2, 2, 2, 2}) {
		t.Errorf("padded decode: %+v", g)
	}
}

func TestErrors(t *testing.T) {
	var g Packet
	if err := g.Unmarshal(make([]byte, 10)); err != ErrTruncated {
		t.Errorf("truncated: %v", err)
	}
	p := Request(ethernet.MAC{}, ipv4.Addr{}, ipv4.Addr{})
	bad := p.Marshal()
	bad[0] = 9 // not Ethernet hardware type
	if err := g.Unmarshal(bad); err != ErrBadTypes {
		t.Errorf("types: %v", err)
	}
}

func TestReplyConstruction(t *testing.T) {
	req := Request(ethernet.MAC{2, 0, 0, 0, 0, 1}, ipv4.Addr{10, 0, 0, 1}, ipv4.Addr{10, 0, 0, 2})
	rep := Reply(req, ethernet.MAC{2, 0, 0, 0, 0, 2})
	if rep.Op != OpReply {
		t.Error("op")
	}
	if rep.SenderIP != req.TargetIP || rep.TargetIP != req.SenderIP {
		t.Error("addresses not mirrored")
	}
	if rep.TargetHA != req.SenderHA {
		t.Error("target hardware address should be the requester")
	}
}
