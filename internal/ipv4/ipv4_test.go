package ipv4

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in   string
		want Addr
		ok   bool
	}{
		{"10.0.0.1", Addr{10, 0, 0, 1}, true},
		{"255.255.255.255", Broadcast, true},
		{"0.0.0.0", Addr{}, true},
		{"256.0.0.1", Addr{}, false},
		{"1.2.3", Addr{}, false},
		{"1.2.3.4.5", Addr{}, false},
		{"1..2.3", Addr{}, false},
		{"a.b.c.d", Addr{}, false},
		{"", Addr{}, false},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseAddr(%q) = %v, %v", c.in, got, err)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseAddr(%q) should fail", c.in)
		}
	}
}

func TestAddrStringRoundTrip(t *testing.T) {
	f := func(a Addr) bool {
		got, err := ParseAddr(a.String())
		return err == nil && got == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChecksumSelfVerifies(t *testing.T) {
	p := Packet{TTL: 64, Protocol: ProtoUDP, Src: Addr{10, 0, 0, 1}, Dst: Addr{10, 0, 0, 2}, Payload: []byte("hi")}
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if Checksum(b[:HeaderLen]) != 0 {
		t.Error("checksum over complete header should be zero")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	p := Packet{
		TOS: 0x10, ID: 4242, TTL: 17, Protocol: ProtoICMP,
		Src: Addr{192, 168, 1, 1}, Dst: Addr{192, 168, 1, 2},
		Payload: bytes.Repeat([]byte{7}, 33),
	}
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var q Packet
	if err := q.Unmarshal(b); err != nil {
		t.Fatal(err)
	}
	if q.TOS != p.TOS || q.ID != p.ID || q.TTL != p.TTL || q.Protocol != p.Protocol ||
		q.Src != p.Src || q.Dst != p.Dst || !bytes.Equal(q.Payload, p.Payload) {
		t.Errorf("round trip mismatch: %+v vs %+v", q, p)
	}
}

func TestUnmarshalTrailingPadding(t *testing.T) {
	p := Packet{TTL: 1, Protocol: ProtoUDP, Payload: []byte{1, 2, 3}}
	b, _ := p.Marshal()
	padded := append(b, make([]byte, 20)...) // Ethernet min-frame padding
	var q Packet
	if err := q.Unmarshal(padded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(q.Payload, []byte{1, 2, 3}) {
		t.Errorf("payload = %v, want trimmed to total length", q.Payload)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	var q Packet
	if err := q.Unmarshal([]byte{0x45}); err != ErrTruncated {
		t.Errorf("truncated: %v", err)
	}
	p := Packet{TTL: 1, Protocol: ProtoUDP, Payload: []byte{9}}
	b, _ := p.Marshal()
	v6 := append([]byte(nil), b...)
	v6[0] = 0x65
	if err := q.Unmarshal(v6); err != ErrBadVersion {
		t.Errorf("version: %v", err)
	}
	corrupt := append([]byte(nil), b...)
	corrupt[8] ^= 0xff // TTL flip breaks checksum
	if err := q.Unmarshal(corrupt); err != ErrBadChecksum {
		t.Errorf("checksum: %v", err)
	}
	short := append([]byte(nil), b...)
	short[3] = byte(len(b) + 10) // total length beyond buffer
	if err := q.Unmarshal(short); err != ErrTruncated {
		t.Errorf("total-length overrun: %v", err)
	}
}

func TestMarshalTooBig(t *testing.T) {
	p := Packet{Payload: make([]byte, 0x10000)}
	if _, err := p.Marshal(); err != ErrTooBig {
		t.Errorf("err = %v, want ErrTooBig", err)
	}
}

func TestFragmentSmallPacketPassthrough(t *testing.T) {
	p := Packet{TTL: 64, Protocol: ProtoICMP, Payload: make([]byte, 100)}
	frags, err := p.Fragment(1500)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 1 || frags[0].MF || frags[0].FragOff != 0 {
		t.Errorf("small packet should pass through unfragmented: %+v", frags)
	}
}

func TestFragmentDFRefuses(t *testing.T) {
	p := Packet{DF: true, Payload: make([]byte, 4000)}
	if _, err := p.Fragment(1500); err == nil {
		t.Error("DF packet should refuse to fragment")
	}
}

func TestFragmentTinyMTU(t *testing.T) {
	p := Packet{Payload: make([]byte, 100)}
	if _, err := p.Fragment(HeaderLen + 4); err == nil {
		t.Error("mtu below header+8 should fail")
	}
}

func TestFragmentReassembleRoundTrip(t *testing.T) {
	payload := make([]byte, 4096+8)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	p := Packet{ID: 99, TTL: 64, Protocol: ProtoICMP,
		Src: Addr{10, 0, 0, 1}, Dst: Addr{10, 0, 0, 2}, Payload: payload}
	frags, err := p.Fragment(1500)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 3 {
		t.Fatalf("fragments = %d, want 3", len(frags))
	}
	for i, f := range frags {
		wantMF := i < len(frags)-1
		if f.MF != wantMF {
			t.Errorf("frag %d MF = %v", i, f.MF)
		}
		if f.FragOff%FragUnitSize != 0 {
			t.Errorf("frag %d offset %d not 8-aligned", i, f.FragOff)
		}
		// Each fragment must survive the wire codec.
		b, err := f.Marshal()
		if err != nil {
			t.Fatalf("frag %d marshal: %v", i, err)
		}
		var g Packet
		if err := g.Unmarshal(b); err != nil {
			t.Fatalf("frag %d unmarshal: %v", i, err)
		}
	}
	r := NewReassembler()
	var got *Packet
	for _, f := range frags {
		if out := r.Add(f); out != nil {
			got = out
		}
	}
	if got == nil {
		t.Fatal("reassembly incomplete")
	}
	if !bytes.Equal(got.Payload, payload) {
		t.Error("reassembled payload mismatch")
	}
	if r.PendingKeys() != 0 {
		t.Errorf("PendingKeys = %d after completion", r.PendingKeys())
	}
}

func TestReassemblerOutOfOrderAndDuplicates(t *testing.T) {
	payload := make([]byte, 3000)
	for i := range payload {
		payload[i] = byte(i)
	}
	p := Packet{ID: 7, Protocol: ProtoUDP, Payload: payload}
	frags, _ := p.Fragment(1500)
	r := NewReassembler()
	order := []int{len(frags) - 1, 0, 0, 1} // last first, duplicate first frag
	var got *Packet
	for _, i := range order {
		if out := r.Add(frags[i]); out != nil {
			got = out
		}
	}
	if got == nil || !bytes.Equal(got.Payload, payload) {
		t.Error("out-of-order reassembly failed")
	}
}

func TestReassemblerInterleavedDatagrams(t *testing.T) {
	mk := func(id uint16, fill byte) *Packet {
		pl := bytes.Repeat([]byte{fill}, 2000)
		return &Packet{ID: id, Protocol: ProtoUDP, Payload: pl}
	}
	a, _ := mk(1, 0xaa).Fragment(1500)
	b, _ := mk(2, 0xbb).Fragment(1500)
	r := NewReassembler()
	var gotA, gotB *Packet
	if out := r.Add(a[0]); out != nil {
		t.Fatal("premature completion")
	}
	if out := r.Add(b[0]); out != nil {
		t.Fatal("premature completion")
	}
	if out := r.Add(b[1]); out != nil {
		gotB = out
	}
	if out := r.Add(a[1]); out != nil {
		gotA = out
	}
	if gotA == nil || gotB == nil {
		t.Fatal("interleaved reassembly incomplete")
	}
	if gotA.Payload[0] != 0xaa || gotB.Payload[0] != 0xbb {
		t.Error("interleaved datagrams mixed up")
	}
}

func TestFragmentPropertyCoversPayload(t *testing.T) {
	f := func(size uint16, mtuRaw uint16) bool {
		payload := make([]byte, int(size)%8192)
		for i := range payload {
			payload[i] = byte(i)
		}
		mtu := 28 + int(mtuRaw)%1500
		p := Packet{ID: 1, Protocol: ProtoUDP, Payload: payload}
		frags, err := p.Fragment(mtu)
		if err != nil {
			return false
		}
		r := NewReassembler()
		for i, fr := range frags {
			out := r.Add(fr)
			if i == len(frags)-1 {
				if out == nil {
					return false
				}
				return bytes.Equal(out.Payload, payload)
			} else if out != nil && len(frags) > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
