// Package ipv4 implements the minimal IPv4 needed by the Active Bridge's
// network loading stack (paper §5.2: "The next layer implements a minimal IP
// sufficient for our purposes. (It does not, for example, implement
// fragmentation.)") plus the header fragmentation fields, which the *host*
// endpoints use so that large ICMP echoes fragment as they did on the
// paper's stock Linux hosts.
package ipv4

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Addr is an IPv4 address.
type Addr [4]byte

// Broadcast is the limited broadcast address.
var Broadcast = Addr{255, 255, 255, 255}

// String renders dotted quad.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// ParseAddr parses a dotted-quad address.
func ParseAddr(s string) (Addr, error) {
	var a Addr
	idx := 0
	val := -1
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '.' {
			if val < 0 || idx > 3 {
				return Addr{}, ErrBadAddr
			}
			a[idx] = byte(val)
			idx++
			val = -1
			continue
		}
		c := s[i]
		if c < '0' || c > '9' {
			return Addr{}, ErrBadAddr
		}
		if val < 0 {
			val = 0
		}
		val = val*10 + int(c-'0')
		if val > 255 {
			return Addr{}, ErrBadAddr
		}
	}
	if idx != 4 {
		return Addr{}, ErrBadAddr
	}
	return a, nil
}

// Uint32 returns the address as a big-endian integer.
func (a Addr) Uint32() uint32 { return binary.BigEndian.Uint32(a[:]) }

// IP protocol numbers used here.
const (
	ProtoICMP = 1
	ProtoUDP  = 17
)

// HeaderLen is the length of the fixed IPv4 header; this implementation
// sends no options.
const HeaderLen = 20

// Flag and fragment field masks.
const (
	FlagDF       = 0x4000 // don't fragment
	FlagMF       = 0x2000 // more fragments
	FragOffMask  = 0x1FFF
	FragUnitSize = 8 // fragment offsets count 8-byte units
)

// Errors.
var (
	ErrBadAddr     = errors.New("ipv4: malformed address")
	ErrTruncated   = errors.New("ipv4: truncated packet")
	ErrBadVersion  = errors.New("ipv4: not version 4")
	ErrBadChecksum = errors.New("ipv4: header checksum mismatch")
	ErrBadHeader   = errors.New("ipv4: malformed header")
	ErrTooBig      = errors.New("ipv4: packet exceeds 65535 bytes")
)

// Packet is a parsed IPv4 packet. Options are not supported (the paper's
// minimal IP has none).
type Packet struct {
	TOS      byte
	ID       uint16
	DF, MF   bool
	FragOff  int // byte offset (multiple of 8 when MF)
	TTL      byte
	Protocol byte
	Src, Dst Addr
	Payload  []byte
}

// Marshal encodes the packet with a computed header checksum.
func (p *Packet) Marshal() ([]byte, error) {
	total := HeaderLen + len(p.Payload)
	if total > 0xffff {
		return nil, ErrTooBig
	}
	if p.FragOff%FragUnitSize != 0 {
		return nil, ErrBadHeader
	}
	b := make([]byte, total)
	b[0] = 0x45 // version 4, IHL 5
	b[1] = p.TOS
	binary.BigEndian.PutUint16(b[2:4], uint16(total))
	binary.BigEndian.PutUint16(b[4:6], p.ID)
	ff := uint16(p.FragOff / FragUnitSize)
	if p.DF {
		ff |= FlagDF
	}
	if p.MF {
		ff |= FlagMF
	}
	binary.BigEndian.PutUint16(b[6:8], ff)
	b[8] = p.TTL
	b[9] = p.Protocol
	copy(b[12:16], p.Src[:])
	copy(b[16:20], p.Dst[:])
	binary.BigEndian.PutUint16(b[10:12], Checksum(b[:HeaderLen]))
	copy(b[HeaderLen:], p.Payload)
	return b, nil
}

// Unmarshal decodes and validates b (which may carry trailing link-layer
// padding; the total-length field governs). The payload aliases b.
func (p *Packet) Unmarshal(b []byte) error {
	if len(b) < HeaderLen {
		return ErrTruncated
	}
	if b[0]>>4 != 4 {
		return ErrBadVersion
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl < HeaderLen || len(b) < ihl {
		return ErrBadHeader
	}
	total := int(binary.BigEndian.Uint16(b[2:4]))
	if total < ihl || total > len(b) {
		return ErrTruncated
	}
	if Checksum(b[:ihl]) != 0 {
		return ErrBadChecksum
	}
	p.TOS = b[1]
	p.ID = binary.BigEndian.Uint16(b[4:6])
	ff := binary.BigEndian.Uint16(b[6:8])
	p.DF = ff&FlagDF != 0
	p.MF = ff&FlagMF != 0
	p.FragOff = int(ff&FragOffMask) * FragUnitSize
	p.TTL = b[8]
	p.Protocol = b[9]
	copy(p.Src[:], b[12:16])
	copy(p.Dst[:], b[16:20])
	p.Payload = b[ihl:total]
	return nil
}

// Checksum computes the RFC 1071 Internet checksum of b. Computing the
// checksum of a buffer whose checksum field is filled yields zero.
func Checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// Fragment splits a packet into MTU-sized fragments (MTU counts IP header +
// payload, i.e. the link payload size). The hosts in the ping experiments
// use this; the bridge's minimal in-switchlet IP never does.
func (p *Packet) Fragment(mtu int) ([]*Packet, error) {
	if mtu < HeaderLen+FragUnitSize {
		return nil, fmt.Errorf("ipv4: mtu %d too small", mtu)
	}
	maxData := (mtu - HeaderLen) / FragUnitSize * FragUnitSize
	if len(p.Payload) <= mtu-HeaderLen {
		q := *p
		return []*Packet{&q}, nil
	}
	if p.DF {
		return nil, fmt.Errorf("ipv4: fragmentation needed but DF set")
	}
	var frags []*Packet
	for off := 0; off < len(p.Payload); off += maxData {
		end := off + maxData
		more := true
		if end >= len(p.Payload) {
			end = len(p.Payload)
			more = false
		}
		q := *p
		q.Payload = p.Payload[off:end]
		q.FragOff = p.FragOff + off
		q.MF = more || p.MF
		frags = append(frags, &q)
	}
	return frags, nil
}

// Reassembler collects fragments keyed by (src, dst, proto, id) and yields
// complete datagrams. It is deliberately simple (no timers): the ping
// workload is lossless in simulation.
type Reassembler struct {
	parts map[fragKey]*fragBuf
}

type fragKey struct {
	src, dst Addr
	proto    byte
	id       uint16
}

type fragBuf struct {
	data    []byte
	have    map[int]int // offset -> length
	total   int         // known when final fragment seen, else -1
	covered int
}

// NewReassembler creates an empty reassembler.
func NewReassembler() *Reassembler {
	return &Reassembler{parts: make(map[fragKey]*fragBuf)}
}

// Add incorporates a fragment (or whole packet). It returns the completed
// packet once all bytes are present, else nil.
func (r *Reassembler) Add(p *Packet) *Packet {
	if !p.MF && p.FragOff == 0 {
		return p
	}
	k := fragKey{p.Src, p.Dst, p.Protocol, p.ID}
	fb := r.parts[k]
	if fb == nil {
		fb = &fragBuf{total: -1, have: make(map[int]int)}
		r.parts[k] = fb
	}
	end := p.FragOff + len(p.Payload)
	if end > len(fb.data) {
		grown := make([]byte, end)
		copy(grown, fb.data)
		fb.data = grown
	}
	copy(fb.data[p.FragOff:], p.Payload)
	if _, dup := fb.have[p.FragOff]; !dup {
		fb.have[p.FragOff] = len(p.Payload)
		fb.covered += len(p.Payload)
	}
	if !p.MF {
		fb.total = end
	}
	if fb.total >= 0 && fb.covered >= fb.total {
		delete(r.parts, k)
		out := *p
		out.MF = false
		out.FragOff = 0
		out.Payload = fb.data[:fb.total]
		return &out
	}
	return nil
}

// PendingKeys reports how many partially reassembled datagrams are held.
func (r *Reassembler) PendingKeys() int { return len(r.parts) }
