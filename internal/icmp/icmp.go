// Package icmp implements ICMP echo request/reply messages, the workload of
// the paper's Figure 9 ping-latency experiment.
package icmp

import (
	"encoding/binary"
	"errors"

	"github.com/switchware/activebridge/internal/ipv4"
)

// Message types.
const (
	TypeEchoReply   = 0
	TypeEchoRequest = 8
)

// HeaderLen is the echo message header size (type, code, checksum, id, seq).
const HeaderLen = 8

// Errors.
var (
	ErrTruncated   = errors.New("icmp: truncated message")
	ErrBadChecksum = errors.New("icmp: checksum mismatch")
	ErrNotEcho     = errors.New("icmp: not an echo message")
)

// Echo is an ICMP echo request or reply.
type Echo struct {
	Reply bool
	ID    uint16
	Seq   uint16
	Data  []byte
}

// Marshal encodes the message with its checksum.
func (e *Echo) Marshal() []byte {
	b := make([]byte, HeaderLen+len(e.Data))
	if e.Reply {
		b[0] = TypeEchoReply
	} else {
		b[0] = TypeEchoRequest
	}
	binary.BigEndian.PutUint16(b[4:6], e.ID)
	binary.BigEndian.PutUint16(b[6:8], e.Seq)
	copy(b[HeaderLen:], e.Data)
	binary.BigEndian.PutUint16(b[2:4], ipv4.Checksum(b))
	return b
}

// Unmarshal decodes and validates b.
func (e *Echo) Unmarshal(b []byte) error {
	if len(b) < HeaderLen {
		return ErrTruncated
	}
	if ipv4.Checksum(b) != 0 {
		return ErrBadChecksum
	}
	switch b[0] {
	case TypeEchoRequest:
		e.Reply = false
	case TypeEchoReply:
		e.Reply = true
	default:
		return ErrNotEcho
	}
	if b[1] != 0 {
		return ErrNotEcho
	}
	e.ID = binary.BigEndian.Uint16(b[4:6])
	e.Seq = binary.BigEndian.Uint16(b[6:8])
	e.Data = b[HeaderLen:]
	return nil
}
