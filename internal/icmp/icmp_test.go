package icmp

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	e := Echo{ID: 77, Seq: 3, Data: []byte("ping payload")}
	b := e.Marshal()
	var g Echo
	if err := g.Unmarshal(b); err != nil {
		t.Fatal(err)
	}
	if g.Reply || g.ID != 77 || g.Seq != 3 || !bytes.Equal(g.Data, e.Data) {
		t.Errorf("round trip mismatch: %+v", g)
	}
}

func TestReplyType(t *testing.T) {
	e := Echo{Reply: true, ID: 1, Seq: 2}
	var g Echo
	if err := g.Unmarshal(e.Marshal()); err != nil {
		t.Fatal(err)
	}
	if !g.Reply {
		t.Error("reply flag lost")
	}
}

func TestChecksum(t *testing.T) {
	e := Echo{ID: 5, Seq: 6, Data: []byte("abc")}
	b := e.Marshal()
	b[10] ^= 0xff
	var g Echo
	if err := g.Unmarshal(b); err != ErrBadChecksum {
		t.Errorf("err = %v, want ErrBadChecksum", err)
	}
}

func TestNotEcho(t *testing.T) {
	e := Echo{ID: 1, Seq: 1}
	b := e.Marshal()
	b[0] = 3 // destination unreachable
	// Fix up checksum so the type check (not the checksum) rejects it.
	b[2], b[3] = 0, 0
	ck := checksumOf(b)
	b[2], b[3] = byte(ck>>8), byte(ck)
	var g Echo
	if err := g.Unmarshal(b); err != ErrNotEcho {
		t.Errorf("err = %v, want ErrNotEcho", err)
	}
}

func checksumOf(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(b[i])<<8 | uint32(b[i+1])
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

func TestTruncated(t *testing.T) {
	var g Echo
	if err := g.Unmarshal([]byte{8, 0}); err != ErrTruncated {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(reply bool, id, seq uint16, data []byte) bool {
		e := Echo{Reply: reply, ID: id, Seq: seq, Data: data}
		var g Echo
		if err := g.Unmarshal(e.Marshal()); err != nil {
			return false
		}
		return g.Reply == reply && g.ID == id && g.Seq == seq && bytes.Equal(g.Data, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
