package scenario

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/switchware/activebridge/internal/netsim"
	"github.com/switchware/activebridge/internal/report"
)

// Result is one executed scenario.
type Result struct {
	Name string
	Desc string
	// Table is the scenario's rendered output (nil if Run failed).
	Table *report.Table
	// Fingerprint digests the rendered table; byte-identical output ⇒
	// identical fingerprint, regardless of runner parallelism.
	Fingerprint string
	// Err is the run error (including recovered panics).
	Err error
	// CheckErr is the validation failure, if the scenario has a check.
	CheckErr error
	// Wall is real elapsed time for this build on this machine; it is
	// the only non-deterministic field.
	Wall time.Duration
}

// OK reports whether the scenario ran and validated.
func (r *Result) OK() bool { return r.Err == nil && r.CheckErr == nil }

// runOne executes a single scenario, converting panics into errors so
// one broken scenario cannot take down a batch.
func runOne(s *Scenario, cost netsim.CostModel) (res Result) {
	res.Name = s.Name
	res.Desc = s.Desc
	start := time.Now() //ab:wallclock-ok operator-facing wall measurement, never fed into the simulation
	defer func() {
		res.Wall = time.Since(start) //ab:wallclock-ok same: reported, not simulated state
		if p := recover(); p != nil {
			res.Err = fmt.Errorf("scenario %s: panic: %v", s.Name, p)
		}
	}()
	tbl, err := s.Run(cost)
	res.Table = tbl
	res.Err = err
	if err == nil {
		res.Fingerprint = Fingerprint(tbl)
		if s.Check != nil {
			res.CheckErr = s.Check(tbl)
		}
	}
	return res
}

// RunAll executes the scenarios with at most parallel workers and
// returns results in input order. parallel < 1 means one worker per
// core. Each scenario builds its own simulation (single-threaded, or
// sharded under topo.DefaultShards), so every virtual-time output and
// fingerprint is byte-identical to serial execution — parallelism buys
// wall-clock only.
func RunAll(scs []*Scenario, cost netsim.CostModel, parallel int) []Result {
	return RunEach(scs, cost, parallel, nil)
}

// Workers divides a worker budget between the two nesting levels of
// parallelism — scenarios running concurrently, each of which may fan
// out across shards — so that scenarios × shards stays within budget.
// budget < 1 means one worker per core; the result is always >= 1.
func Workers(budget, shards int) int {
	if budget < 1 {
		budget = runtime.NumCPU()
	}
	if shards < 1 {
		shards = 1
	}
	if w := budget / shards; w > 1 {
		return w
	}
	return 1
}

// RunEach is RunAll with a streaming hook: emit is called once per
// scenario, in input order, as soon as that scenario and all its
// predecessors have finished — so a consumer can print results while
// later scenarios are still running. A nil emit just runs the batch.
func RunEach(scs []*Scenario, cost netsim.CostModel, parallel int, emit func(*Result)) []Result {
	if parallel < 1 {
		parallel = runtime.NumCPU()
	}
	if parallel > len(scs) {
		parallel = len(scs)
	}
	results := make([]Result, len(scs))
	if parallel <= 1 {
		for i, s := range scs {
			results[i] = runOne(s, cost)
			if emit != nil {
				emit(&results[i])
			}
		}
		return results
	}
	var wg sync.WaitGroup
	work := make(chan int)
	finished := make(chan int, len(scs))
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				results[i] = runOne(scs[i], cost)
				finished <- i
			}
		}()
	}
	go func() {
		for i := range scs {
			work <- i
		}
		close(work)
	}()
	// Receive completions and emit in input order; the channel receive
	// orders each emit after the worker's write of results[i].
	done := make([]bool, len(scs))
	next := 0
	for range scs {
		done[<-finished] = true
		for next < len(scs) && done[next] {
			if emit != nil {
				emit(&results[next])
			}
			next++
		}
	}
	wg.Wait()
	return results
}
