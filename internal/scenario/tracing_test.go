// Traced-transcript identity pin: the causal tracing plane must render a
// byte-identical transcript whether the net runs on the serial engine or
// the sharded conservative engine at any shard count. This is the
// fig9-style acceptance gate for PR 10 — tracing observes virtual time,
// it never depends on wall-clock shard interleaving.
package scenario_test

import (
	"fmt"
	"strings"
	"testing"

	"github.com/switchware/activebridge/internal/netsim"
	"github.com/switchware/activebridge/internal/topo"
	"github.com/switchware/activebridge/internal/tracing"
	"github.com/switchware/activebridge/internal/workload"
)

// tracedChainTranscript builds a 12-bridge line (large enough that
// Partition accepts 4 shards), traces a warmed ping exchange end to end
// and returns the rendered transcript plus the tracer for follow-up
// assertions.
func tracedChainTranscript(t *testing.T, shards int) (string, *tracing.Tracer) {
	t.Helper()
	const nBridges = 12
	g := topo.New("trace-chain")
	segs := make([]topo.SegmentID, nBridges+1)
	for i := range segs {
		segs[i] = g.AddSegment(fmt.Sprintf("s%d", i), topo.WithPropagation(2000))
	}
	h1 := g.AddHost("")
	h2 := g.AddHost("")
	for i := 0; i < nBridges; i++ {
		b := g.AddBridge("", topo.LearningBridge, 2)
		g.Link(b, segs[i])
		g.Link(b, segs[i+1])
	}
	g.Link(h1, segs[0])
	g.Link(h2, segs[nBridges])
	g.Affine(h1, h2)
	g.Shards(shards)
	net, err := g.Build(netsim.DefaultCostModel())
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if shards > 1 && net.Shards() != shards {
		t.Fatalf("expected %d shards, got %d", shards, net.Shards())
	}
	tr := net.EnableTracing(tracing.Config{Seed: 7, SampleProb: 1})
	net.Warm(h1, h2)
	p := workload.NewPinger(net.Host(h1), net.Host(h2).IP, 256, 5)
	p.Run(net.Sim.Now() + netsim.Time(30*netsim.Second))
	tr.Flush()
	var sb strings.Builder
	tr.RenderTranscript(&sb)
	return sb.String(), tr
}

// TestTracedPingTranscriptShardIdentity is the pinned tentpole test: the
// traced transcript of the same warmed ping exchange must be
// byte-identical serial vs 2 vs 4 shards — the shard-crossing machinery
// (mailboxes, per-shard engines, batch merge) must be invisible in the
// causal record.
func TestTracedPingTranscriptShardIdentity(t *testing.T) {
	serial, str := tracedChainTranscript(t, 1)
	if serial == "" {
		t.Fatal("serial transcript is empty")
	}
	for _, want := range []string{"send", "wire", "rx", "demux", "vm", "verdict"} {
		if !strings.Contains(serial, want) {
			t.Fatalf("transcript missing %q events:\n%s", want, serial)
		}
	}
	if str.DumpCount() != 0 {
		t.Fatalf("healthy traced run produced %d flight dumps", str.DumpCount())
	}
	for _, shards := range []int{2, 4} {
		got, tr := tracedChainTranscript(t, shards)
		if got != serial {
			t.Errorf("shards=%d transcript differs from serial (%d vs %d bytes)",
				shards, len(got), len(serial))
			reportFirstDiff(t, serial, got)
		}
		if tr.Dropped() != 0 {
			t.Errorf("shards=%d dropped %d events", shards, tr.Dropped())
		}
	}
}

// reportFirstDiff prints the first differing line pair so a determinism
// regression is diagnosable from the test log alone.
func reportFirstDiff(t *testing.T, a, b string) {
	t.Helper()
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(la) && i < len(lb); i++ {
		if la[i] != lb[i] {
			t.Logf("first diff at line %d:\n  serial:  %s\n  sharded: %s", i+1, la[i], lb[i])
			return
		}
	}
	t.Logf("transcripts diverge in length: %d vs %d lines", len(la), len(lb))
}

// TestTracedSamplingIsShardInvariant reruns the chain with a partial
// sampling probability: the sampling decision rides the trace ID (head
// sampling at the minting NIC), so the selected subset — not just the
// full set — must be shard-invariant too.
func TestTracedSamplingIsShardInvariant(t *testing.T) {
	render := func(shards int) string {
		t.Helper()
		const nBridges = 12
		g := topo.New("trace-chain-sampled")
		segs := make([]topo.SegmentID, nBridges+1)
		for i := range segs {
			segs[i] = g.AddSegment(fmt.Sprintf("s%d", i), topo.WithPropagation(2000))
		}
		h1 := g.AddHost("")
		h2 := g.AddHost("")
		for i := 0; i < nBridges; i++ {
			b := g.AddBridge("", topo.LearningBridge, 2)
			g.Link(b, segs[i])
			g.Link(b, segs[i+1])
		}
		g.Link(h1, segs[0])
		g.Link(h2, segs[nBridges])
		g.Affine(h1, h2)
		g.Shards(shards)
		net, err := g.Build(netsim.DefaultCostModel())
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		if shards > 1 && net.Shards() != shards {
			t.Fatalf("expected %d shards, got %d", shards, net.Shards())
		}
		tr := net.EnableTracing(tracing.Config{Seed: 11, SampleProb: 0.4})
		net.Warm(h1, h2)
		p := workload.NewPinger(net.Host(h1), net.Host(h2).IP, 128, 20)
		p.Run(net.Sim.Now() + netsim.Time(30*netsim.Second))
		tr.Flush()
		var sb strings.Builder
		tr.RenderTranscript(&sb)
		return sb.String()
	}
	serial := render(1)
	if sharded := render(2); sharded != serial {
		t.Errorf("sampled transcript differs serial vs 2 shards:\nserial:\n%s\nsharded:\n%s", serial, sharded)
	}
}
