// Metrics-plane acceptance: enabling telemetry must never move a
// virtual-time output (golden identity at any shard count), and the
// scrape surface must serve well-formed documents while a mega scenario
// is executing.
package scenario_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/switchware/activebridge/internal/metrics"
	"github.com/switchware/activebridge/internal/netsim"
	"github.com/switchware/activebridge/internal/scenario"
	"github.com/switchware/activebridge/internal/topo"
)

// TestMetricsOnMatchesGolden reruns the entire registry with the
// metrics plane enabled and requires byte-identical output against the
// metrics-off serial run. Under the CI sharded job (AB_SHARDS=4) this
// pins metrics-on identity on the sharded engine too.
func TestMetricsOnMatchesGolden(t *testing.T) {
	serial := runSerial()
	prev := metrics.SetEnabled(true)
	defer metrics.SetEnabled(prev)
	results := scenario.RunAll(scenario.All(), netsim.DefaultCostModel(), 1)
	if len(results) != len(serial) {
		t.Fatalf("result counts differ: %d vs %d", len(results), len(serial))
	}
	for i := range serial {
		s, m := &serial[i], &results[i]
		if !m.OK() {
			t.Errorf("%s (metrics on): run=%v check=%v", m.Name, m.Err, m.CheckErr)
			continue
		}
		if s.Fingerprint != m.Fingerprint {
			t.Errorf("%s: metrics-on fingerprint %s != metrics-off %s", s.Name, m.Fingerprint, s.Fingerprint)
		}
		if s.Table.String() != m.Table.String() {
			t.Errorf("%s: metrics-on table bytes differ from metrics-off", s.Name)
		}
	}
	// The runner-side summary must see every instrumented net with a
	// sane event accounting.
	sums := scenario.SummarizeMetrics()
	if len(sums) == 0 {
		t.Fatal("no metrics summaries after an instrumented batch")
	}
	byNet := map[string]scenario.NetMetricsSummary{}
	for _, s := range sums {
		byNet[s.Net] = s
	}
	ft, ok := byNet["fattree256"]
	if !ok {
		t.Fatal("fattree256 not in metrics summaries")
	}
	if ft.Events == 0 || ft.Shards < 1 || ft.ShardBalance <= 0 || ft.ShardBalance > 1 {
		t.Errorf("implausible fattree256 summary: %+v", ft)
	}
}

// TestMetricsOnShardedMegaMatchesGolden pins metrics-on identity at 2
// and 4 shards for the scenarios that genuinely cross shards (small
// nets fall back to serial inside Build, so the mega set is the whole
// sharded surface).
func TestMetricsOnShardedMegaMatchesGolden(t *testing.T) {
	if topo.DefaultShards != 1 {
		t.Skip("AB_SHARDS active: TestMetricsOnMatchesGolden already pins the sharded metrics run")
	}
	serial := runSerial()
	byName := map[string]*scenario.Result{}
	for i := range serial {
		byName[serial[i].Name] = &serial[i]
	}
	prev := metrics.SetEnabled(true)
	defer metrics.SetEnabled(prev)
	scs, err := scenario.Match("^scale-(fattree256|ring8-upgrade|storm-containment)$")
	if err != nil || len(scs) != 3 {
		t.Fatalf("mega scenario selection: %v (%d found)", err, len(scs))
	}
	for _, shards := range []int{2, 4} {
		topo.DefaultShards = shards
		results := scenario.RunAll(scs, netsim.DefaultCostModel(), 1)
		topo.DefaultShards = 1
		for i := range results {
			m := &results[i]
			s := byName[m.Name]
			if s == nil {
				t.Fatalf("%s: no serial reference", m.Name)
			}
			if !m.OK() {
				t.Errorf("%s (metrics on, shards=%d): run=%v check=%v", m.Name, shards, m.Err, m.CheckErr)
				continue
			}
			if s.Fingerprint != m.Fingerprint {
				t.Errorf("%s: shards=%d metrics-on fingerprint %s != serial metrics-off %s",
					m.Name, shards, m.Fingerprint, s.Fingerprint)
			}
		}
	}
}

// TestLiveScrapeDuringFatTree drives scale-fattree256 in the background
// and scrapes /metrics and /snapshot through its registry's HTTP
// surface while it executes: the text must pass the Prometheus lint,
// the JSON must decode, and neither may perturb the run (the final
// fingerprint still matches the golden). Run under -race (the CI
// scenario jobs) this also proves scraping shares no unsynchronized
// state with a sharded simulation.
func TestLiveScrapeDuringFatTree(t *testing.T) {
	runSerial() // ensure the registry is populated
	s, ok := scenario.Lookup("scale-fattree256")
	if !ok {
		t.Fatal("scale-fattree256 not registered")
	}
	prev := metrics.SetEnabled(true)
	defer metrics.SetEnabled(prev)

	srv := httptest.NewServer(metrics.Handler(metrics.DefaultHub))
	defer srv.Close()

	type outcome struct {
		fp  string
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		tbl, err := s.Run(netsim.DefaultCostModel())
		done <- outcome{fp: scenario.Fingerprint(tbl), err: err}
	}()

	get := func(path string) string {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body)
	}

	// Poll until the net's series are being served (the registry
	// attaches at Build, early in the scenario's life).
	deadline := time.Now().Add(30 * time.Second)
	var text string
	for {
		text = get("/metrics")
		if strings.Contains(text, `ab_shard_events_total{net="fattree256"`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fattree256 series never appeared on /metrics; last scrape:\n%.2000s", text)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := metrics.LintString(text); err != nil {
		t.Fatalf("/metrics fails lint mid-run: %v", err)
	}
	var hs metrics.HubSnapshot
	if err := json.Unmarshal([]byte(get("/snapshot")), &hs); err != nil {
		t.Fatalf("/snapshot not JSON mid-run: %v", err)
	}
	found := false
	for _, n := range hs.Nets {
		if n.Net == "fattree256" {
			found = true
		}
	}
	if !found {
		t.Fatalf("fattree256 missing from /snapshot (%d nets)", len(hs.Nets))
	}

	res := <-done
	if res.err != nil {
		t.Fatalf("scenario failed under scraping: %v", res.err)
	}
	if want := goldenFingerprints["scale-fattree256"]; res.fp != want {
		t.Errorf("scraped run fingerprint %s != golden %s", res.fp, want)
	}

	// Post-run, the final snapshot must carry the instrumented
	// workloads and bridge counters.
	text = get("/metrics")
	for _, series := range []string{
		"ab_ttcp_delivered_bytes_total", "ab_ping_rtt_ms_bucket",
		"ab_bridge_frames_in_total", "ab_bridge_switchlet_info",
	} {
		if !strings.Contains(text, series) {
			t.Errorf("final /metrics missing %s", series)
		}
	}
	if err := metrics.LintString(text); err != nil {
		t.Errorf("final /metrics fails lint: %v", err)
	}
}
