package scenario

import (
	"fmt"

	"github.com/switchware/activebridge/internal/metrics"
)

// NetMetricsSummary condenses one instrumented net's final snapshot
// into the numbers a bench report wants alongside wall times: total
// event load, how evenly it spread across shards, and the wall-clock
// event rate at the last quiescent point.
type NetMetricsSummary struct {
	Net    string `json:"net"`
	Shards int    `json:"shards"`
	Events uint64 `json:"events"`
	// EventsPerShard is indexed by shard (registration order).
	EventsPerShard []uint64 `json:"events_per_shard,omitempty"`
	// ShardBalance is min/max of EventsPerShard: 1 is perfectly even,
	// small values mean one engine carried the net.
	ShardBalance float64 `json:"shard_balance"`
	// EventsPerSec is the wall-clock rate summed over shards, as
	// sampled between the last two publishes (machine-dependent).
	EventsPerSec float64 `json:"events_per_second"`
}

// String renders the summary as one human-readable line.
func (s NetMetricsSummary) String() string {
	return fmt.Sprintf("%-24s shards=%d events=%d balance=%.2f events/s=%.0f",
		s.Net, s.Shards, s.Events, s.ShardBalance, s.EventsPerSec)
}

// SummarizeMetrics reduces every registry attached to the default hub
// (one per instrumented net) to its NetMetricsSummary — the end-of-run
// summary the runner's callers print and embed into bench JSON. It
// reads published values only, so it is safe at any time; call it after
// the batch finishes for final numbers.
func SummarizeMetrics() []NetMetricsSummary {
	var out []NetMetricsSummary
	for _, snap := range metrics.DefaultHub.SnapshotAll() {
		s := NetMetricsSummary{Net: snap.Net}
		for _, p := range snap.Series {
			switch p.Name {
			case "ab_shard_events_total":
				s.EventsPerShard = append(s.EventsPerShard, uint64(p.Value))
				s.Events += uint64(p.Value)
			case "ab_shard_events_per_second":
				s.EventsPerSec += p.Value
			}
		}
		s.Shards = len(s.EventsPerShard)
		if s.Shards > 0 {
			min, max := s.EventsPerShard[0], s.EventsPerShard[0]
			for _, v := range s.EventsPerShard[1:] {
				if v < min {
					min = v
				}
				if v > max {
					max = v
				}
			}
			if max > 0 {
				s.ShardBalance = float64(min) / float64(max)
			}
		}
		out = append(out, s)
	}
	return out
}
