// Sharded-engine identity pins: the entire scenario registry must render
// byte-identical output on the sharded conservative engine at any shard
// count. Combined with golden_test.go this is the acceptance gate of the
// sharded refactor: -shards N is pure wall-clock, never behaviour.
package scenario_test

import (
	"os"
	"strconv"
	"testing"

	"github.com/switchware/activebridge/internal/netsim"
	"github.com/switchware/activebridge/internal/scenario"
	"github.com/switchware/activebridge/internal/topo"
	"github.com/switchware/activebridge/internal/tracing"
)

// TestMain lets CI run the whole test package — including the golden
// fingerprint pins — under a fixed shard count (AB_SHARDS=4 go test)
// and/or with the causal tracing plane recording every built net
// (AB_TRACE=1 go test). Tracing must never move a golden byte, so the
// pins themselves are the acceptance gate for the traced frame path.
func TestMain(m *testing.M) {
	if v := os.Getenv("AB_SHARDS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			topo.DefaultShards = n
		}
	}
	if os.Getenv("AB_TRACE") == "1" {
		cfg := tracing.Config{Seed: 1, SampleProb: 1}
		if v := os.Getenv("AB_TRACE_SAMPLE"); v != "" {
			if p, err := strconv.ParseFloat(v, 64); err == nil && p > 0 {
				cfg.SampleProb = p
			}
		}
		tracing.SetDefaultConfig(cfg)
		tracing.Enable()
	}
	os.Exit(m.Run())
}

// TestShardedMatchesSerial reruns the registry with the sharded engine at
// 2 and 4 shards and requires byte-identical rendered output against the
// serial run. Small paper-scale scenarios fall back to serial inside
// Build (Partition refuses them) — their presence keeps the fallback
// path covered; the scale scenarios genuinely cross shards.
func TestShardedMatchesSerial(t *testing.T) {
	if topo.DefaultShards != 1 {
		t.Skip("AB_SHARDS active: the golden test already pins the sharded run")
	}
	serial := runSerial()
	counts := []int{2, 4}
	if testing.Short() {
		counts = []int{4}
	}
	for _, shards := range counts {
		topo.DefaultShards = shards
		results := scenario.RunAll(scenario.All(), netsim.DefaultCostModel(), 1)
		topo.DefaultShards = 1
		if len(results) != len(serial) {
			t.Fatalf("shards=%d: result counts differ: %d vs %d", shards, len(results), len(serial))
		}
		for i := range serial {
			s, p := &serial[i], &results[i]
			if !p.OK() {
				t.Errorf("%s (shards=%d): run=%v check=%v", p.Name, shards, p.Err, p.CheckErr)
				continue
			}
			if s.Fingerprint != p.Fingerprint {
				t.Errorf("%s: shards=%d fingerprint %s != serial %s", s.Name, shards, p.Fingerprint, s.Fingerprint)
			}
			if s.Table.String() != p.Table.String() {
				t.Errorf("%s: shards=%d table bytes differ from serial", s.Name, shards)
			}
		}
	}
}
