// Package scenario is the registry and runner for named, self-describing
// experiment scenarios. A scenario is a deterministic function of a cost
// model: it builds its own simulation (typically via internal/topo),
// drives it, and returns a rendered report.Table. Because every scenario
// owns a single-threaded simulation and shares no mutable state with any
// other, N scenarios can run concurrently across cores while each one's
// virtual-time output stays byte-identical — only the wall clock changes.
//
// Every reproduced paper figure/table and every large-scale workload is
// registered here (internal/experiments.RegisterAll); cmd/abbench lists,
// filters and runs them, and the golden tests pin each scenario's output
// fingerprint.
package scenario

import (
	"fmt"
	"hash/fnv"
	"regexp"
	"sort"
	"sync"

	"github.com/switchware/activebridge/internal/netsim"
	"github.com/switchware/activebridge/internal/report"
)

// RunFunc builds, drives and reports one experiment. It must be a pure
// function of the cost model: fresh simulation, no package-level mutable
// state, deterministic output.
type RunFunc func(cost netsim.CostModel) (*report.Table, error)

// CheckFunc validates a scenario's finished table (shape and physical
// invariants — orderings, completions, bounds). nil means no check.
type CheckFunc func(t *report.Table) error

// Scenario is one registered experiment.
type Scenario struct {
	// Name is the registry key: short, stable, kebab-case.
	Name string
	// Desc is a one-line self-description (shown by abbench -list).
	Desc string
	// Run produces the scenario's table.
	Run RunFunc
	// Check validates the finished table; nil skips validation.
	Check CheckFunc
	// Slow marks scenarios skipped by abbench -short (parameter sweeps).
	Slow bool
}

// Registry holds an ordered set of scenarios. The zero value is ready to
// use; most callers use the package-level Default registry.
type Registry struct {
	mu    sync.Mutex
	byKey map[string]*Scenario
	order []*Scenario
}

// NewRegistry creates an empty registry (tests use private instances).
func NewRegistry() *Registry { return &Registry{} }

// Register adds a scenario and returns it (so callers can set Slow).
// Registering an empty name, a nil run function, or a duplicate name is
// a programming bug and panics.
func (r *Registry) Register(name, desc string, run RunFunc, check CheckFunc) *Scenario {
	if name == "" || run == nil {
		panic("scenario: Register needs a name and a run function")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byKey == nil {
		r.byKey = map[string]*Scenario{}
	}
	if _, dup := r.byKey[name]; dup {
		panic(fmt.Sprintf("scenario: %q registered twice", name))
	}
	s := &Scenario{Name: name, Desc: desc, Run: run, Check: check}
	r.byKey[name] = s
	r.order = append(r.order, s)
	return s
}

// Lookup finds a scenario by exact name.
func (r *Registry) Lookup(name string) (*Scenario, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.byKey[name]
	return s, ok
}

// All returns every scenario in registration order (the order abbench
// prints them, which mirrors the paper's presentation).
func (r *Registry) All() []*Scenario {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Scenario(nil), r.order...)
}

// Names returns the sorted scenario names.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.order))
	for _, s := range r.order {
		names = append(names, s.Name)
	}
	sort.Strings(names)
	return names
}

// Match returns the scenarios whose names match the regular expression,
// in registration order.
func (r *Registry) Match(pattern string) ([]*Scenario, error) {
	re, err := regexp.Compile(pattern)
	if err != nil {
		return nil, fmt.Errorf("scenario: bad pattern %q: %w", pattern, err)
	}
	var out []*Scenario
	for _, s := range r.All() {
		if re.MatchString(s.Name) {
			out = append(out, s)
		}
	}
	return out, nil
}

// Default is the process-wide registry experiments register into.
var Default = NewRegistry()

// Register adds a scenario to the Default registry.
func Register(name, desc string, run RunFunc, check CheckFunc) *Scenario {
	return Default.Register(name, desc, run, check)
}

// Lookup finds a scenario in the Default registry.
func Lookup(name string) (*Scenario, bool) { return Default.Lookup(name) }

// All lists the Default registry in registration order.
func All() []*Scenario { return Default.All() }

// Match filters the Default registry by a name regexp.
func Match(pattern string) ([]*Scenario, error) { return Default.Match(pattern) }

// Fingerprint is the determinism digest of a rendered table: FNV-1a of
// every byte of the output. Two runs (serial or parallel, any machine)
// must produce the same digest for the same scenario.
func Fingerprint(t *report.Table) string {
	h := fnv.New64a()
	if t != nil {
		_, _ = h.Write([]byte(t.String()))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
