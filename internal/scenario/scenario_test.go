package scenario

import (
	"errors"
	"fmt"
	"testing"

	"github.com/switchware/activebridge/internal/netsim"
	"github.com/switchware/activebridge/internal/report"
)

// fakeTable builds a deterministic table from a name.
func fakeTable(name string) *report.Table {
	t := &report.Table{Title: name, Header: []string{"k", "v"}}
	t.AddRow("name", name)
	return t
}

func fakeRun(name string) RunFunc {
	return func(netsim.CostModel) (*report.Table, error) { return fakeTable(name), nil }
}

func TestRegistryOrderAndLookup(t *testing.T) {
	r := NewRegistry()
	r.Register("b-second", "2", fakeRun("b"), nil)
	r.Register("a-first", "1", fakeRun("a"), nil)
	all := r.All()
	if len(all) != 2 || all[0].Name != "b-second" || all[1].Name != "a-first" {
		t.Fatalf("All() not in registration order: %v", all)
	}
	if _, ok := r.Lookup("a-first"); !ok {
		t.Fatal("Lookup failed")
	}
	names := r.Names()
	if names[0] != "a-first" || names[1] != "b-second" {
		t.Fatalf("Names() not sorted: %v", names)
	}
	got, err := r.Match("^a-")
	if err != nil || len(got) != 1 || got[0].Name != "a-first" {
		t.Fatalf("Match = %v, %v", got, err)
	}
	if _, err := r.Match("("); err == nil {
		t.Fatal("want error for bad pattern")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Register("dup", "", fakeRun("dup"), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on duplicate registration")
		}
	}()
	r.Register("dup", "", fakeRun("dup"), nil)
}

func TestRunAllOrderAndFingerprints(t *testing.T) {
	var scs []*Scenario
	for i := 0; i < 20; i++ {
		name := fmt.Sprintf("s%02d", i)
		scs = append(scs, &Scenario{Name: name, Run: fakeRun(name)})
	}
	serial := RunAll(scs, netsim.DefaultCostModel(), 1)
	parallel := RunAll(scs, netsim.DefaultCostModel(), 8)
	for i := range scs {
		if serial[i].Name != scs[i].Name || parallel[i].Name != scs[i].Name {
			t.Fatalf("result %d out of order: %s / %s", i, serial[i].Name, parallel[i].Name)
		}
		if serial[i].Fingerprint != parallel[i].Fingerprint {
			t.Fatalf("%s: fingerprint differs serial vs parallel", scs[i].Name)
		}
		if serial[i].Fingerprint == "" {
			t.Fatalf("%s: empty fingerprint", scs[i].Name)
		}
	}
	// Distinct outputs must digest distinctly.
	if serial[0].Fingerprint == serial[1].Fingerprint {
		t.Fatal("different tables share a fingerprint")
	}
}

func TestRunEachEmitsInInputOrder(t *testing.T) {
	var scs []*Scenario
	for i := 0; i < 30; i++ {
		name := fmt.Sprintf("s%02d", i)
		scs = append(scs, &Scenario{Name: name, Run: fakeRun(name)})
	}
	var emitted []string
	results := RunEach(scs, netsim.DefaultCostModel(), 8, func(r *Result) {
		emitted = append(emitted, r.Name)
	})
	if len(emitted) != len(scs) {
		t.Fatalf("emitted %d of %d results", len(emitted), len(scs))
	}
	for i, name := range emitted {
		if name != scs[i].Name {
			t.Fatalf("emit %d = %s, want %s (input order)", i, name, scs[i].Name)
		}
		if results[i].Name != scs[i].Name {
			t.Fatalf("result %d out of order", i)
		}
	}
}

func TestRunAllRecoversPanic(t *testing.T) {
	scs := []*Scenario{
		{Name: "boom", Run: func(netsim.CostModel) (*report.Table, error) { panic("kaboom") }},
		{Name: "fine", Run: fakeRun("fine")},
	}
	rs := RunAll(scs, netsim.DefaultCostModel(), 2)
	if rs[0].Err == nil || rs[0].OK() {
		t.Fatalf("panicking scenario not reported: %+v", rs[0])
	}
	if !rs[1].OK() {
		t.Fatalf("healthy scenario poisoned by neighbor: %+v", rs[1])
	}
}

func TestRunAllChecks(t *testing.T) {
	wantErr := errors.New("shape wrong")
	scs := []*Scenario{{
		Name:  "checked",
		Run:   fakeRun("checked"),
		Check: func(*report.Table) error { return wantErr },
	}}
	rs := RunAll(scs, netsim.DefaultCostModel(), 1)
	if !errors.Is(rs[0].CheckErr, wantErr) || rs[0].OK() {
		t.Fatalf("check error not propagated: %+v", rs[0])
	}
	if rs[0].Err != nil {
		t.Fatalf("check failure must not be a run error: %v", rs[0].Err)
	}
}

func TestRunAllEmptyAndAutoParallel(t *testing.T) {
	if rs := RunAll(nil, netsim.DefaultCostModel(), 0); len(rs) != 0 {
		t.Fatalf("RunAll(nil) = %v", rs)
	}
	scs := []*Scenario{{Name: "one", Run: fakeRun("one")}}
	rs := RunAll(scs, netsim.DefaultCostModel(), 0) // auto = one per core
	if len(rs) != 1 || !rs[0].OK() {
		t.Fatalf("auto-parallel run failed: %+v", rs)
	}
}
