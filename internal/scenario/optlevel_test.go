// Cross-tier identity pins: the execution tier a bridge runs its
// switchlets at (-O0 naive, -O1 quickened, -O2 translated) and the
// per-destination demux flow cache are host-side accelerations only —
// every scenario must render byte-identical virtual-time output with them
// on or off. Combined with golden_test.go (which pins the -O2 default)
// and sharded_test.go this closes the PR 9 acceptance gate: all goldens
// byte-identical at -O0/-O1/-O2 and shards 1/2/4.
package scenario_test

import (
	"strings"
	"testing"

	"github.com/switchware/activebridge/internal/bridge"
	"github.com/switchware/activebridge/internal/netsim"
	"github.com/switchware/activebridge/internal/scenario"
)

// TestOptLevelSweepMatchesGoldens reruns the entire registry at -O0 and
// -O1 and requires byte-identical rendered output against the serial run
// (which executes at the -O2 default, bridge.DefaultOptLevel). A
// divergence means an optimization tier changed observable behaviour —
// the one thing no tier is allowed to do.
func TestOptLevelSweepMatchesGoldens(t *testing.T) {
	serial := runSerial()
	defer func(old int) { bridge.DefaultOptLevel = old }(bridge.DefaultOptLevel)
	levels := []int{0, 1}
	if testing.Short() {
		levels = []int{0}
	}
	for _, lvl := range levels {
		bridge.DefaultOptLevel = lvl
		results := scenario.RunAll(scenario.All(), netsim.DefaultCostModel(), 1)
		if len(results) != len(serial) {
			t.Fatalf("-O%d: result counts differ: %d vs %d", lvl, len(results), len(serial))
		}
		for i := range serial {
			s, p := &serial[i], &results[i]
			if !p.OK() {
				t.Errorf("%s (-O%d): run=%v check=%v", p.Name, lvl, p.Err, p.CheckErr)
				continue
			}
			if s.Fingerprint != p.Fingerprint {
				t.Errorf("%s: -O%d fingerprint %s != -O2 %s", s.Name, lvl, p.Fingerprint, s.Fingerprint)
			}
			if s.Table.String() != p.Table.String() {
				t.Errorf("%s: -O%d table bytes differ from -O2", s.Name, lvl)
			}
		}
	}
}

// TestFlowCacheOffMatchesChaosGoldens reruns every chaos-* scenario with
// the demux flow cache disabled and requires the fingerprints the golden
// test pinned (cache on). The chaos scenarios churn exactly the state the
// cache must track — handler swaps mid-deployment, bridge crashes, link
// flaps driving STP rebinds — so agreement here is the invalidation
// proof: a stale entry would misroute a frame and move the fingerprint.
func TestFlowCacheOffMatchesChaosGoldens(t *testing.T) {
	serial := runSerial()
	defer func(old bool) { bridge.DisableFlowCache = old }(bridge.DisableFlowCache)
	bridge.DisableFlowCache = true
	var chaos []*scenario.Scenario
	for _, s := range scenario.All() {
		if strings.HasPrefix(s.Name, "chaos-") {
			chaos = append(chaos, s)
		}
	}
	if len(chaos) == 0 {
		t.Fatal("no chaos-* scenarios registered")
	}
	results := scenario.RunAll(chaos, netsim.DefaultCostModel(), 1)
	byName := map[string]*scenario.Result{}
	for i := range serial {
		byName[serial[i].Name] = &serial[i]
	}
	for i := range results {
		p := &results[i]
		if !p.OK() {
			t.Errorf("%s (cache off): run=%v check=%v", p.Name, p.Err, p.CheckErr)
			continue
		}
		s := byName[p.Name]
		if s == nil {
			t.Errorf("%s: not present in serial run", p.Name)
			continue
		}
		if s.Fingerprint != p.Fingerprint {
			t.Errorf("%s: cache-off fingerprint %s != cache-on %s", p.Name, p.Fingerprint, s.Fingerprint)
		}
	}
}
