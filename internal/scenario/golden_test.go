// Determinism goldens for the full scenario registry. These tests live
// in an external test package so they can pull in internal/experiments
// (which imports internal/scenario) without a cycle.
package scenario_test

import (
	"sync"
	"testing"

	"github.com/switchware/activebridge/internal/experiments"
	"github.com/switchware/activebridge/internal/netsim"
	"github.com/switchware/activebridge/internal/scenario"
)

var (
	serialOnce    sync.Once
	serialResults []scenario.Result
)

// runSerial executes every registered scenario once, serially, shared by
// all tests in this package.
func runSerial() []scenario.Result {
	serialOnce.Do(func() {
		experiments.RegisterAll()
		serialResults = scenario.RunAll(scenario.All(), netsim.DefaultCostModel(), 1)
	})
	return serialResults
}

// goldenFingerprints pins the rendered virtual-time output of every
// registered scenario, captured from the serial pre-parallel-runner
// build. Any change to scheduling order, the cost model, the switchlets
// or a table's wording moves the affected entry; update it only with a
// justified, deliberate change (the test failure prints the new value).
var goldenFingerprints = map[string]string{
	"table1-transition":           "59f1832459cd0fe6",
	"table1-fallback":             "a8e46d623406c1e9",
	"fig9-ping-latency":           "bbb68c2380e6a653",
	"fig10-ttcp-throughput":       "458ac5b40d1b5f10",
	"frame-rates":                 "e9be122c5a1fefa6",
	"fig5-decomposition":          "45187c8abdc7a917",
	"agility-ring":                "aa4c3dcae50043bd",
	"netload-tftp":                "de3f91c7a6d35126",
	"deployment-incremental":      "6f4b6d6e1df0fecf",
	"scalability":                 "d459ff89dc2ee60c",
	"ablation-native-vs-bytecode": "8cef595d61141b94",
	"ablation-learning":           "a18478d776c80636",
	"ablation-kernel-cost":        "75f754379b08ce38",
	"ablation-gc-pressure":        "773fde77469f0d2a",
	"scale-chain16":               "5b8d0deff123f665",
	"scale-stp-ring":              "03a42eaf1ead8862",
	"scale-tree64":                "fe4735374bfe263a",
	"scale-mixed-fabric":          "4177b6925969f837",
	"scale-hotswap":               "8c602d684ae8e1ea",
	"scale-broadcast-storm":       "e7148a6218f3c778",
	"scale-fattree256":            "51948f6205ae6da8",
	"scale-ring8-upgrade":         "b8f0ed21ca425a12",
	"scale-storm-containment":     "c49013bbe3c70a3e",
	"chaos-lossy-deployment":      "263b623d064ff3bf",
	"chaos-flapping-ring":         "321410c6072bdcb6",
	"chaos-crash-upgrade":         "0f553ca4b4da0356",
	"chaos-partition-heal":        "c1a29bc66e65e093",
}

// TestScenarioGoldenFingerprints pins every registered scenario's
// virtual-time output. A fingerprint moving means the simulation's
// behaviour changed — exactly what an optimization must not do.
func TestScenarioGoldenFingerprints(t *testing.T) {
	results := runSerial()
	seen := map[string]bool{}
	for i := range results {
		r := &results[i]
		seen[r.Name] = true
		if !r.OK() {
			t.Errorf("%s: run=%v check=%v", r.Name, r.Err, r.CheckErr)
			continue
		}
		want, pinned := goldenFingerprints[r.Name]
		if !pinned {
			t.Errorf("%s: no golden pinned; add %q", r.Name, r.Fingerprint)
			continue
		}
		if r.Fingerprint != want {
			t.Errorf("%s: fingerprint %s deviates from golden %s", r.Name, r.Fingerprint, want)
		}
	}
	for name := range goldenFingerprints {
		if !seen[name] {
			t.Errorf("golden entry %q has no registered scenario", name)
		}
	}
}

// TestScenarioChecksPass runs every scenario's self-check (also covered
// by the golden loop, kept separate so a check regression is named even
// when fingerprints still match).
func TestScenarioChecksPass(t *testing.T) {
	for _, r := range runSerial() {
		if r.Err != nil {
			t.Errorf("%s: %v", r.Name, r.Err)
		}
		if r.CheckErr != nil {
			t.Errorf("%s: check: %v", r.Name, r.CheckErr)
		}
	}
}

// TestParallelMatchesSerial reruns the entire registry with a concurrent
// worker pool and requires byte-identical rendered output. Run under
// -race (the CI scenario job does) this also proves the sims share no
// mutable state.
func TestParallelMatchesSerial(t *testing.T) {
	serial := runSerial()
	parallel := scenario.RunAll(scenario.All(), netsim.DefaultCostModel(), 8)
	if len(parallel) != len(serial) {
		t.Fatalf("result counts differ: %d vs %d", len(parallel), len(serial))
	}
	for i := range serial {
		s, p := &serial[i], &parallel[i]
		if s.Name != p.Name {
			t.Fatalf("result %d: order differs (%s vs %s)", i, s.Name, p.Name)
		}
		if !p.OK() {
			t.Errorf("%s (parallel): run=%v check=%v", p.Name, p.Err, p.CheckErr)
			continue
		}
		if s.Fingerprint != p.Fingerprint {
			t.Errorf("%s: parallel fingerprint %s != serial %s", s.Name, p.Fingerprint, s.Fingerprint)
		}
		if s.Table.String() != p.Table.String() {
			t.Errorf("%s: parallel table bytes differ from serial", s.Name)
		}
	}
}
