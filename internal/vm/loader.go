package vm

import (
	"fmt"
)

// Loader reproduces the paper's Dynlink-based switchlet linking model
// (§5.1.2):
//
//   - NewLoader       ~ Dynlink.init: an empty name space;
//   - AddUnit         ~ Dynlink.add_available_units: enter the (thinned)
//     signatures and values of statically linked modules;
//   - Load            ~ Dynlink.load: link an object file into the name
//     space and evaluate its top-level forms.
//
// There is deliberately no way for previously linked code to reach into a
// newly loaded module; new modules announce themselves by calling
// registration functions (the paper's Func module / our env.Bridge hooks).
type Loader struct {
	machine *Machine
	sigs    *SigEnv
	values  map[string]map[string]Value
	modules map[string]*LinkedModule
	order   []string

	// Loads counts successful module loads; LoadErrors the rejected ones.
	Loads      uint64
	LoadErrors uint64

	// OptLevel controls quickening of loaded objects: 0 links the naive
	// bytecode as-is, 1 (the default) runs OptimizeObject in hostile mode —
	// decoded objects carry no typing proof, so they get only the rewrites
	// whose fast paths re-check tags at run time. 2 additionally enables
	// the translated tier: hot chunks of statically verified objects are
	// lowered into cached Go closures with guard-based deopt back to the
	// interpreter (see translate.go). At every level the observable
	// semantics, Steps and AllocBytes are identical.
	OptLevel int
}

// LinkError is a load-time failure: unknown module, missing name, or a
// signature digest mismatch.
type LinkError struct {
	Module string
	Msg    string
}

func (e *LinkError) Error() string { return fmt.Sprintf("link error in %s: %s", e.Module, e.Msg) }

// NewLoader creates an empty namespace bound to an interpreter.
func NewLoader(m *Machine) *Loader {
	return &Loader{
		machine:  m,
		sigs:     NewSigEnv(),
		values:   map[string]map[string]Value{},
		modules:  map[string]*LinkedModule{},
		OptLevel: 1,
	}
}

// Machine returns the interpreter this loader links against.
func (l *Loader) Machine() *Machine { return l.machine }

// SigEnv exposes the available signatures, e.g. for compiling switchlets
// "against" this node.
func (l *Loader) SigEnv() *SigEnv { return l.sigs }

// AddUnit makes a host-provided module available: its (thinned) signature
// and the value of each declared name. Every declared name must be given a
// value.
func (l *Loader) AddUnit(sig *Signature, values map[string]Value) error {
	for _, n := range sig.Names() {
		if _, ok := values[n]; !ok {
			return &LinkError{Module: sig.Module, Msg: "no value provided for " + n}
		}
	}
	l.sigs.Add(sig)
	l.values[sig.Module] = values
	return nil
}

// Module returns a loaded module by name.
func (l *Loader) Module(name string) (*LinkedModule, bool) {
	m, ok := l.modules[name]
	return m, ok
}

// Modules returns loaded module names in load order.
func (l *Loader) Modules() []string { return append([]string(nil), l.order...) }

// lookupValue resolves module.name to a runtime value, from either a host
// unit or a previously loaded module.
func (l *Loader) lookupValue(module, name string) (Value, error) {
	if vals, ok := l.values[module]; ok {
		if v, ok := vals[name]; ok {
			return v, nil
		}
		return nil, &LinkError{Module: module, Msg: "unit has no value " + name}
	}
	if lm, ok := l.modules[module]; ok {
		if v, ok := lm.Global(name); ok {
			return v, nil
		}
		return nil, &LinkError{Module: module, Msg: "module has no export " + name}
	}
	return nil, &LinkError{Module: module, Msg: "module not loaded"}
}

// Load links and evaluates an encoded object file. On success the module's
// exports become available to future loads. The load is atomic: a digest
// mismatch, verification failure, or a trap in the module's top-level forms
// leaves the namespace unchanged.
func (l *Loader) Load(objBytes []byte) (*LinkedModule, error) {
	obj, err := DecodeObject(objBytes)
	if err != nil {
		l.LoadErrors++
		return nil, err
	}
	return l.LoadObject(obj)
}

// LoadObject links and evaluates a decoded object.
func (l *Loader) LoadObject(obj *Object) (*LinkedModule, error) {
	lm, err := l.loadObject(obj)
	if err != nil {
		l.LoadErrors++
		return nil, err
	}
	l.Loads++
	return lm, nil
}

func (l *Loader) loadObject(obj *Object) (*LinkedModule, error) {
	// Full static verification (static.go): control-flow integrity, stack
	// discipline, typed optimizer metadata and capture bounds — a typed
	// *VerifyError rejection before any VM state exists for the module.
	if _, err := VerifyObject(obj); err != nil {
		return nil, err
	}
	if l.OptLevel > 0 {
		// Quicken after verification. For objects the compiler already
		// optimized in trusted mode this is a no-op (OptimizeObject runs
		// once per object); fresh decodes get the hostile rule set.
		OptimizeObject(obj, false)
	}
	if _, dup := l.modules[obj.ModName]; dup {
		return nil, &LinkError{Module: obj.ModName, Msg: "module already loaded"}
	}
	if _, dup := l.values[obj.ModName]; dup {
		return nil, &LinkError{Module: obj.ModName, Msg: "name collides with a host unit"}
	}

	// Resolve imports, checking interface digests (the MD5 digests the
	// paper's Caml embeds in byte code).
	var imports []Value
	for _, ref := range obj.Imports {
		sig, ok := l.sigs.Lookup(ref.Module)
		if !ok {
			return nil, &LinkError{Module: obj.ModName, Msg: "imports unknown module " + ref.Module}
		}
		if got := SigDigest(sig); got != ref.Digest {
			return nil, &LinkError{
				Module: obj.ModName,
				Msg: fmt.Sprintf("interface digest mismatch for %s: compiled against %x, node provides %x",
					ref.Module, ref.Digest[:4], got[:4]),
			}
		}
		for _, name := range ref.Names {
			v, err := l.lookupValue(ref.Module, name)
			if err != nil {
				return nil, err
			}
			imports = append(imports, v)
		}
	}

	export, err := obj.ExportSignature()
	if err != nil {
		return nil, &LinkError{Module: obj.ModName, Msg: "bad export signature: " + err.Error()}
	}

	lm := &LinkedModule{
		Obj:     obj,
		Export:  export,
		Globals: make([]Value, obj.NGlobals),
		Imports: imports,
	}
	if obj.NICSites > 0 {
		lm.ics = make([]icache, obj.NICSites)
	}
	// Translated tier (-O2): only for objects the static verifier accepted
	// — unverified code never earns compiled closures — and only when the
	// chunk index table is consistent (hand-built objects may not set it).
	if l.OptLevel >= 2 && obj.Verified() && chunkIdxConsistent(obj) {
		lm.trans = make([]*chunkTrans, len(obj.Chunks))
		lm.transHot = make([]uint16, len(obj.Chunks))
	}

	// Evaluate the top-level forms (the registration calls).
	initClo := &Closure{Mod: lm, Chunk: obj.Chunks[obj.Init]}
	if _, err := l.machine.Invoke(initClo); err != nil {
		return nil, fmt.Errorf("module %s initialization failed: %w", obj.ModName, err)
	}

	l.modules[obj.ModName] = lm
	l.sigs.Add(export)
	l.order = append(l.order, obj.ModName)
	return lm, nil
}

// FlushAllICs clears the inline caches of every loaded module. The Manager
// calls this around Install/Upgrade/Rollback (the epoch bump): caches must
// not carry values across a change of the loaded-module set.
func (l *Loader) FlushAllICs() {
	for _, lm := range l.modules { //ab:mapiter-ok independent per-module cache clears; order cannot escape
		lm.FlushICs()
	}
}

// Unload removes a loaded module's signature and exports from the
// namespace. Values already registered with the host environment remain
// reachable (as in the paper, unloading is not revocation; the bridge's
// control switchlet disables protocols by calling their exported controls,
// not by unloading them).
func (l *Loader) Unload(name string) bool {
	if _, ok := l.modules[name]; !ok {
		return false
	}
	delete(l.modules, name)
	for i, n := range l.order {
		if n == name {
			l.order = append(l.order[:i], l.order[i+1:]...)
			break
		}
	}
	// Remove the signature so future compiles cannot link against it.
	delete(l.sigs.mods, name)
	return true
}
