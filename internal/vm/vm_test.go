package vm

import (
	"strings"
	"testing"
)

// compileAndLoad compiles src as module name against a fresh standard
// loader (Safestd, String, Hashtbl) and loads it through the full
// encode/decode/link path, so every test exercises serialization too.
func compileAndLoad(t testing.TB, name, src string) (*Loader, *LinkedModule) {
	t.Helper()
	l := StdLoader(NewMachine())
	lm := mustLoad(t, l, name, src)
	return l, lm
}

func mustLoad(t testing.TB, l *Loader, name, src string) *LinkedModule {
	t.Helper()
	obj, _, err := Compile(name, src, l.SigEnv())
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	lm, err := l.Load(obj.Encode())
	if err != nil {
		t.Fatalf("load %s: %v", name, err)
	}
	return lm
}

// call invokes an exported function.
func call(t *testing.T, l *Loader, lm *LinkedModule, fn string, args ...Value) Value {
	t.Helper()
	f, ok := lm.Global(fn)
	if !ok {
		t.Fatalf("no export %s", fn)
	}
	v, err := l.Machine().Invoke(f, args...)
	if err != nil {
		t.Fatalf("invoke %s: %v", fn, err)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	l, lm := compileAndLoad(t, "Arith", `
let add a b = a + b
let compute x = (x * 3 - 4) / 2 + 100 mod 7
let neg x = -x
`)
	if v := call(t, l, lm, "add", int64(2), int64(40)); v != int64(42) {
		t.Errorf("add = %v", v)
	}
	if v := call(t, l, lm, "compute", int64(10)); v != int64((10*3-4)/2+100%7) {
		t.Errorf("compute = %v", v)
	}
	if v := call(t, l, lm, "neg", int64(5)); v != int64(-5) {
		t.Errorf("neg = %v", v)
	}
}

func TestRecursionAndTailCalls(t *testing.T) {
	l, lm := compileAndLoad(t, "Rec", `
let rec fact n = if n <= 1 then 1 else n * fact (n - 1)
let rec count acc n = if n = 0 then acc else count (acc + 1) (n - 1)
`)
	if v := call(t, l, lm, "fact", int64(10)); v != int64(3628800) {
		t.Errorf("fact 10 = %v", v)
	}
	// Deep tail recursion must not overflow the frame limit.
	if v := call(t, l, lm, "count", int64(0), int64(100000)); v != int64(100000) {
		t.Errorf("count = %v", v)
	}
}

func TestNonTailRecursionDepthLimited(t *testing.T) {
	l, lm := compileAndLoad(t, "Deep", `
let rec sum n = if n = 0 then 0 else n + sum (n - 1)
`)
	f, _ := lm.Global("sum")
	if _, err := l.Machine().Invoke(f, int64(100000)); err == nil {
		t.Error("deep non-tail recursion should trap on stack overflow")
	} else if !strings.Contains(err.Error(), "stack overflow") {
		t.Errorf("err = %v", err)
	}
	// Within limits it works.
	if v := call(t, l, lm, "sum", int64(1000)); v != int64(500500) {
		t.Errorf("sum 1000 = %v", v)
	}
}

func TestClosuresCaptureEnvironment(t *testing.T) {
	l, lm := compileAndLoad(t, "Clo", `
let make_adder n = fun x -> x + n
let apply f x = f x
let add10 = make_adder 10
let use () = apply add10 32
`)
	if v := call(t, l, lm, "use", Unit{}); v != int64(42) {
		t.Errorf("use = %v", v)
	}
}

func TestNestedRecursionViaClosure(t *testing.T) {
	l, lm := compileAndLoad(t, "Nest", `
let rec outer n =
  let helper x = outer x in
  if n = 0 then 99 else helper (n - 1)
`)
	if v := call(t, l, lm, "outer", int64(5)); v != int64(99) {
		t.Errorf("outer = %v", v)
	}
}

func TestLocalLetRec(t *testing.T) {
	l, lm := compileAndLoad(t, "LocalRec", `
let run n =
  let rec loop acc i = if i = 0 then acc else loop (acc + i) (i - 1) in
  loop 0 n
`)
	if v := call(t, l, lm, "run", int64(100)); v != int64(5050) {
		t.Errorf("run = %v", v)
	}
}

func TestPartialApplication(t *testing.T) {
	l, lm := compileAndLoad(t, "Partial", `
let add3 a b c = a + b + c
let partial () =
  let f = add3 1 in
  let g = f 2 in
  g 39
let overapply () =
  let pair a = fun b -> a * 100 + b in
  pair 4 2
`)
	if v := call(t, l, lm, "partial", Unit{}); v != int64(42) {
		t.Errorf("partial = %v", v)
	}
	if v := call(t, l, lm, "overapply", Unit{}); v != int64(402) {
		t.Errorf("overapply = %v", v)
	}
}

func TestRefsAndWhile(t *testing.T) {
	l, lm := compileAndLoad(t, "Refs", `
let sum_to n =
  let acc = ref 0 in
  let i = ref 1 in
  while !i <= n do
    acc := !acc + !i;
    i := !i + 1
  done;
  !acc
`)
	if v := call(t, l, lm, "sum_to", int64(100)); v != int64(5050) {
		t.Errorf("sum_to = %v", v)
	}
}

func TestForLoop(t *testing.T) {
	l, lm := compileAndLoad(t, "ForL", `
let squares n =
  let acc = ref 0 in
  for i = 1 to n do
    acc := !acc + i * i
  done;
  !acc
let empty_range () =
  let acc = ref 0 in
  for i = 5 to 1 do acc := !acc + 1 done;
  !acc
`)
	if v := call(t, l, lm, "squares", int64(5)); v != int64(55) {
		t.Errorf("squares = %v", v)
	}
	if v := call(t, l, lm, "empty_range", Unit{}); v != int64(0) {
		t.Errorf("empty_range = %v", v)
	}
}

func TestStringsAndComparison(t *testing.T) {
	l, lm := compileAndLoad(t, "Str", `
let greet name = "hello, " ^ name
let third s = String.get s 2
let mid s = String.sub s 1 3
let cmp a b = if a < b then 0 - 1 else if a > b then 1 else 0
`)
	if v := call(t, l, lm, "greet", "world"); v != "hello, world" {
		t.Errorf("greet = %v", v)
	}
	if v := call(t, l, lm, "third", "abcdef"); v != int64('c') {
		t.Errorf("third = %v", v)
	}
	if v := call(t, l, lm, "mid", "abcdef"); v != "bcd" {
		t.Errorf("mid = %v", v)
	}
	if v := call(t, l, lm, "cmp", "apple", "banana"); v != int64(-1) {
		t.Errorf("cmp = %v", v)
	}
}

func TestBooleanShortCircuit(t *testing.T) {
	l, lm := compileAndLoad(t, "Bools", `
let counter = ref 0
let bump () = counter := !counter + 1; true
let test_and x = x && bump ()
let test_or x = x || bump ()
let count () = !counter
`)
	// false && bump() must not bump.
	if v := call(t, l, lm, "test_and", false); v != false {
		t.Errorf("test_and false = %v", v)
	}
	if v := call(t, l, lm, "count", Unit{}); v != int64(0) {
		t.Errorf("short-circuit && evaluated rhs: count = %v", v)
	}
	// true || bump() must not bump.
	if v := call(t, l, lm, "test_or", true); v != true {
		t.Errorf("test_or true = %v", v)
	}
	if v := call(t, l, lm, "count", Unit{}); v != int64(0) {
		t.Errorf("short-circuit || evaluated rhs: count = %v", v)
	}
	call(t, l, lm, "test_and", true)
	if v := call(t, l, lm, "count", Unit{}); v != int64(1) {
		t.Errorf("&& with true lhs should evaluate rhs once: %v", v)
	}
}

func TestTuples(t *testing.T) {
	l, lm := compileAndLoad(t, "Tup", `
let swap p = let (a, b) = p in (b, a)
let first3 t = let (a, b, c) = t in a
let pair_math p = (fst p) * 10 + (snd p)
`)
	v := call(t, l, lm, "swap", Tuple{int64(1), "x"})
	tu, ok := v.(Tuple)
	if !ok || tu[0] != "x" || tu[1] != int64(1) {
		t.Errorf("swap = %v", FormatValue(v))
	}
	if v := call(t, l, lm, "first3", Tuple{int64(7), int64(8), int64(9)}); v != int64(7) {
		t.Errorf("first3 = %v", v)
	}
	if v := call(t, l, lm, "pair_math", Tuple{int64(4), int64(2)}); v != int64(42) {
		t.Errorf("pair_math = %v", v)
	}
}

func TestHashtbl(t *testing.T) {
	l, lm := compileAndLoad(t, "Tbl", `
let t = Hashtbl.create 16
let put k v = Hashtbl.add t k v
let get k = Hashtbl.find t k
let has k = Hashtbl.mem t k
let del k = Hashtbl.remove t k
let size () = Hashtbl.length t
let sum_values () =
  let acc = ref 0 in
  Hashtbl.iter (fun k v -> acc := !acc + v) t;
  !acc
`)
	call(t, l, lm, "put", "a", int64(1))
	call(t, l, lm, "put", "b", int64(2))
	call(t, l, lm, "put", "a", int64(10)) // replace semantics
	if v := call(t, l, lm, "get", "a"); v != int64(10) {
		t.Errorf("get a = %v", v)
	}
	if v := call(t, l, lm, "size", Unit{}); v != int64(2) {
		t.Errorf("size = %v", v)
	}
	if v := call(t, l, lm, "has", "zzz"); v != false {
		t.Errorf("has zzz = %v", v)
	}
	if v := call(t, l, lm, "sum_values", Unit{}); v != int64(12) {
		t.Errorf("sum_values = %v", v)
	}
	call(t, l, lm, "del", "a")
	if v := call(t, l, lm, "size", Unit{}); v != int64(1) {
		t.Errorf("size after remove = %v", v)
	}
}

func TestHashtblFindMissingTraps(t *testing.T) {
	l, lm := compileAndLoad(t, "TblMiss", `
let t = Hashtbl.create 4
let get k = Hashtbl.find t k
let get_default k = try Hashtbl.find t k with 0 - 1
`)
	f, _ := lm.Global("get")
	if _, err := l.Machine().Invoke(f, "missing"); err == nil {
		t.Error("find on missing key should trap")
	} else if !strings.Contains(err.Error(), "Not_found") {
		t.Errorf("err = %v", err)
	}
	if v := call(t, l, lm, "get_default", "missing"); v != int64(-1) {
		t.Errorf("get_default = %v", v)
	}
}

func TestTryWithAndRaise(t *testing.T) {
	l, lm := compileAndLoad(t, "TryW", `
let safe_div a b = try a / b with 0
let nested x =
  try
    if x > 10 then raise "too big" else x * 2
  with 999
let reraise () = try raise "inner" with 7
`)
	if v := call(t, l, lm, "safe_div", int64(10), int64(2)); v != int64(5) {
		t.Errorf("safe_div = %v", v)
	}
	if v := call(t, l, lm, "safe_div", int64(10), int64(0)); v != int64(0) {
		t.Errorf("safe_div by zero = %v", v)
	}
	if v := call(t, l, lm, "nested", int64(50)); v != int64(999) {
		t.Errorf("nested = %v", v)
	}
	if v := call(t, l, lm, "nested", int64(3)); v != int64(6) {
		t.Errorf("nested small = %v", v)
	}
	if v := call(t, l, lm, "reraise", Unit{}); v != int64(7) {
		t.Errorf("reraise = %v", v)
	}
}

func TestTrapCrossesFrames(t *testing.T) {
	l, lm := compileAndLoad(t, "TrapX", `
let boom () = raise "deep failure"
let intermediate () = boom ()
let catches () = try intermediate () with 42
`)
	if v := call(t, l, lm, "catches", Unit{}); v != int64(42) {
		t.Errorf("catches = %v", v)
	}
}

func TestFuelExhaustion(t *testing.T) {
	m := NewMachine()
	m.MaxSteps = 10000
	l := StdLoader(m)
	lm := mustLoad(t, l, "Spin", `
let rec spin n = spin (n + 1)
`)
	f, _ := lm.Global("spin")
	_, err := m.Invoke(f, int64(0))
	if err == nil || !strings.Contains(err.Error(), "fuel") {
		t.Errorf("infinite loop should exhaust fuel, got %v", err)
	}
}

func TestTopLevelInitForms(t *testing.T) {
	l, lm := compileAndLoad(t, "Init", `
let state = ref 0
let _ = state := 41
let _ = state := !state + 1
let read () = !state
`)
	if v := call(t, l, lm, "read", Unit{}); v != int64(42) {
		t.Errorf("init forms did not run in order: %v", v)
	}
}

func TestInstructionAccounting(t *testing.T) {
	m := NewMachine()
	l := StdLoader(m)
	lm := mustLoad(t, l, "Acct", `
let rec loop n = if n = 0 then 0 else loop (n - 1)
let work () = loop 100
let alloc () = "aaaa" ^ "bbbb"
`)
	before := m.Steps
	call(t, l, lm, "work", Unit{})
	steps := m.Steps - before
	if steps < 300 || steps > 3000 {
		t.Errorf("100-iteration loop executed %d instructions; expect a few hundred", steps)
	}
	ab := m.AllocBytes
	call(t, l, lm, "alloc", Unit{})
	if m.AllocBytes-ab < 8 {
		t.Errorf("string concat should account at least 8 alloc bytes, got %d", m.AllocBytes-ab)
	}
}

func TestCrossModuleImport(t *testing.T) {
	l := StdLoader(NewMachine())
	mustLoad(t, l, "Mathlib", `
let double x = x * 2
let offset = ref 100
let with_offset x = x + !offset
`)
	lm2 := mustLoad(t, l, "Client", `
let use x = Mathlib.double (Mathlib.with_offset x)
`)
	if v := call(t, l, lm2, "use", int64(1)); v != int64(202) {
		t.Errorf("use = %v", v)
	}
}

func TestDigestMismatchRejected(t *testing.T) {
	// Compile Client against a *forged* signature of Provider that claims
	// an extra function; the link must fail with a digest mismatch, the
	// paper's defence against compiling against doctored interfaces.
	l := StdLoader(NewMachine())
	mustLoad(t, l, "Provider", `
let public_fn x = x + 1
`)

	forged := NewSigEnv()
	for _, name := range []string{"Safestd", "String", "Hashtbl"} {
		s, _ := l.SigEnv().Lookup(name)
		forged.Add(s)
	}
	fsig := NewSignature("Provider")
	fsig.Add("public_fn", MustParseType("int -> int"))
	fsig.Add("private_fn", MustParseType("int -> int")) // not really exported
	forged.Add(fsig)

	obj, _, err := Compile("Evil", `let attack x = Provider.private_fn x`, forged)
	if err != nil {
		t.Fatalf("compile against forged signature should succeed locally: %v", err)
	}
	_, err = l.Load(obj.Encode())
	if err == nil {
		t.Fatal("link against forged signature must fail")
	}
	if !strings.Contains(err.Error(), "digest mismatch") {
		t.Errorf("err = %v, want digest mismatch", err)
	}
}

func TestThinnedNameUnnameable(t *testing.T) {
	// A module compiled against the thinned environment cannot even name
	// an excluded function: compile-time error (paper §5.1.1).
	l := StdLoader(NewMachine())
	_, _, err := Compile("Evil", `let attack () = Hashtbl.steal_everything ()`, l.SigEnv())
	if err == nil {
		t.Fatal("naming a non-exported function must fail to compile")
	}
	if !strings.Contains(err.Error(), "no value") {
		t.Errorf("err = %v", err)
	}
}

func TestDuplicateModuleRejected(t *testing.T) {
	l := StdLoader(NewMachine())
	mustLoad(t, l, "Once", `let x = 1`)
	obj, _, err := Compile("Once", `let x = 2`, l.SigEnv())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Load(obj.Encode()); err == nil {
		t.Error("duplicate module load should fail")
	}
}

func TestInitTrapRollsBack(t *testing.T) {
	l := StdLoader(NewMachine())
	obj, _, err := Compile("Bad", `
let x = 1
let _ = raise "boom at load time"
`, l.SigEnv())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Load(obj.Encode()); err == nil {
		t.Fatal("trapping init should fail the load")
	}
	if _, ok := l.Module("Bad"); ok {
		t.Error("failed load must not register the module")
	}
	if _, ok := l.SigEnv().Lookup("Bad"); ok {
		t.Error("failed load must not register the signature")
	}
}

func TestObjectEncodingRoundTrip(t *testing.T) {
	l := StdLoader(NewMachine())
	obj, _, err := Compile("Round", `
let rec fib n = if n < 2 then n else fib (n - 1) + fib (n - 2)
let msg = "hello"
let use () = fib 10
`, l.SigEnv())
	if err != nil {
		t.Fatal(err)
	}
	enc := obj.Encode()
	dec, err := DecodeObject(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.ModName != "Round" || len(dec.Chunks) != len(obj.Chunks) {
		t.Errorf("decode mismatch: %+v", dec)
	}
	if dec.ExportText != obj.ExportText || dec.ExportDigest != obj.ExportDigest {
		t.Error("export signature did not round trip")
	}
	lm, err := l.Load(enc)
	if err != nil {
		t.Fatal(err)
	}
	if v := call(t, l, lm, "use", Unit{}); v != int64(55) {
		t.Errorf("fib 10 = %v", v)
	}
}

func TestCorruptObjectRejected(t *testing.T) {
	l := StdLoader(NewMachine())
	obj, _, err := Compile("Corrupt", `let f x = x + 1`, l.SigEnv())
	if err != nil {
		t.Fatal(err)
	}
	enc := obj.Encode()
	for _, i := range []int{0, 5, len(enc) / 2, len(enc) - 3} {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0xff
		if _, err := l.Load(bad); err == nil {
			// A flip may land in a don't-care byte only if it still
			// decodes AND all digests match AND code verifies — the
			// digest over the export text makes silent acceptance of a
			// *meaningful* change vanishingly unlikely. Reject-or-load,
			// but never panic.
			t.Logf("flip at %d accepted (harmless region)", i)
		}
	}
	if _, err := l.Load([]byte("not an object")); err == nil {
		t.Error("garbage must be rejected")
	}
	if _, err := l.Load(nil); err == nil {
		t.Error("nil must be rejected")
	}
}

func TestUnloadRemovesModule(t *testing.T) {
	l := StdLoader(NewMachine())
	mustLoad(t, l, "Gone", `let x = 1`)
	if !l.Unload("Gone") {
		t.Fatal("unload failed")
	}
	if l.Unload("Gone") {
		t.Error("double unload should report false")
	}
	// After unload, a new module cannot link against it...
	if _, _, err := Compile("Client", `let y = Gone.x`, l.SigEnv()); err == nil {
		t.Error("compiling against unloaded module should fail")
	}
	// ...but the name is free for reuse.
	mustLoad(t, l, "Gone", `let x = 2`)
}

func TestSafestdBitOps(t *testing.T) {
	l, lm := compileAndLoad(t, "Bits", `
let word_at s i = (String.get s i) * 256 + String.get s (i + 1)
let masked x = land x 0xff
let shifted x = lsl x 8
let combined a b = lor (lsl a 8) b
`)
	if v := call(t, l, lm, "word_at", "\x12\x34", int64(0)); v != int64(0x1234) {
		t.Errorf("word_at = %#x", v)
	}
	if v := call(t, l, lm, "masked", int64(0x1ff)); v != int64(0xff) {
		t.Errorf("masked = %#x", v)
	}
	if v := call(t, l, lm, "shifted", int64(2)); v != int64(512) {
		t.Errorf("shifted = %v", v)
	}
	if v := call(t, l, lm, "combined", int64(0xab), int64(0xcd)); v != int64(0xabcd) {
		t.Errorf("combined = %#x", v)
	}
}

func TestStringBuilding(t *testing.T) {
	l, lm := compileAndLoad(t, "Build", `
let byte b = String.make 1 b
let two_bytes hi lo = byte hi ^ byte lo
`)
	if v := call(t, l, lm, "two_bytes", int64(0x12), int64(0x34)); v != "\x12\x34" {
		t.Errorf("two_bytes = %q", v)
	}
}

func TestHigherOrderFunctions(t *testing.T) {
	l, lm := compileAndLoad(t, "HOF", `
let twice f x = f (f x)
let compose f g = fun x -> f (g x)
let use () =
  let inc x = x + 1 in
  let dbl x = x * 2 in
  (twice inc 0) + (compose dbl inc) 10
`)
	if v := call(t, l, lm, "use", Unit{}); v != int64(2+22) {
		t.Errorf("use = %v", v)
	}
}

func TestShadowing(t *testing.T) {
	l, lm := compileAndLoad(t, "Shadow", `
let x = 1
let x = x + 10
let get () = x
let local () =
  let y = 5 in
  let y = y * 2 in
  y
`)
	if v := call(t, l, lm, "get", Unit{}); v != int64(11) {
		t.Errorf("top-level shadowing: %v", v)
	}
	if v := call(t, l, lm, "local", Unit{}); v != int64(10) {
		t.Errorf("local shadowing: %v", v)
	}
}

func TestPolymorphicEquality(t *testing.T) {
	l, lm := compileAndLoad(t, "Eq", `
let use () =
  if (1, "x") = (1, "x") then 1 else 0
let tuple_ne () =
  if (1, 2) <> (1, 3) then 1 else 0
let tuple_lt () =
  if (1, "a") < (1, "b") then 1 else 0
`)
	if v := call(t, l, lm, "use", Unit{}); v != int64(1) {
		t.Errorf("tuple equality: %v", v)
	}
	if v := call(t, l, lm, "tuple_ne", Unit{}); v != int64(1) {
		t.Errorf("tuple inequality: %v", v)
	}
	if v := call(t, l, lm, "tuple_lt", Unit{}); v != int64(1) {
		t.Errorf("tuple ordering: %v", v)
	}
}

func TestComparingFunctionsTraps(t *testing.T) {
	l, lm := compileAndLoad(t, "FnEq", `
let f x = x + 0
let g x = x + 0
let compare_them () = f = g
`)
	fv, _ := lm.Global("compare_them")
	if _, err := l.Machine().Invoke(fv, Unit{}); err == nil {
		t.Error("comparing functions should trap")
	}
}
