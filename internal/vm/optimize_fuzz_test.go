// Differential fuzzing of the optimizing tiers: any program the compiler
// accepts must behave bit-identically — results, traps, metered Steps and
// AllocBytes — whether it runs as naive bytecode (-O0), hostile-quickened
// wire code (the network loader's view of -O1), the translated tier over
// hostile wire code (-O2), or the trusted quickened form the in-process
// compiler hands the loader, also translated. This file lives in the
// external test package so it can seed the corpus with the bundled
// switchlet sources, which compile against a full bridge environment.
package vm_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"github.com/switchware/activebridge/internal/bridge"
	"github.com/switchware/activebridge/internal/netsim"
	"github.com/switchware/activebridge/internal/switchlets"
	"github.com/switchware/activebridge/internal/vm"
)

// renderValue stringifies a result deterministically: hash tables render
// in insertion order, functions by shape only (their addresses differ
// across machines by construction).
func renderValue(v vm.Value) string {
	switch x := v.(type) {
	case nil:
		return "nil"
	case int64, bool:
		return fmt.Sprintf("%v", x)
	case string:
		return fmt.Sprintf("%q", x)
	case vm.Unit:
		return "()"
	case vm.Tuple:
		parts := make([]string, len(x))
		for i, e := range x {
			parts[i] = renderValue(e)
		}
		return "(" + strings.Join(parts, ", ") + ")"
	case *vm.Ref:
		return "ref " + renderValue(x.V)
	case *vm.Hashtbl:
		var sb strings.Builder
		sb.WriteString("{")
		for i, k := range x.Keys {
			if i > 0 {
				sb.WriteString("; ")
			}
			sb.WriteString(renderValue(k))
			sb.WriteString("->")
			sb.WriteString(renderValue(x.M[k]))
		}
		sb.WriteString("}")
		return sb.String()
	case *vm.Closure:
		return fmt.Sprintf("<fun/%d>", x.Chunk.NParams)
	case *vm.Native:
		return "<native " + x.Name + ">"
	default:
		return fmt.Sprintf("<%T>", v)
	}
}

// runLevel compiles and executes src one way and returns a transcript of
// everything observable: load outcome, then each exported function invoked
// with canned arguments under generous and then starvation-level fuel.
//
// Levels: 0 = -O0 naive bytecode; 1 = -O1 hostile-quickened wire code;
// 2 = -O2 over hostile wire code, eagerly translated; 3 = -O2 over the
// trusted pre-quickened object, eagerly translated. The eager Translate
// bypasses the hotness threshold so the translated dispatch loop — guards,
// deopts, fuel starvation — is exercised from the first instruction.
func runLevel(t *testing.T, src string, level int) string {
	t.Helper()
	node := bridge.New(netsim.New(), "fuzz", 1, 2, netsim.DefaultCostModel())
	m := node.Machine
	l := node.Loader
	compileLevel := 0
	if level == 3 {
		compileLevel = 1
	}
	obj, _, err := vm.CompileLevel("Fz", src, l.SigEnv(), compileLevel)
	if err != nil {
		return "compile error: " + err.Error()
	}
	var sb strings.Builder
	var lm *vm.LinkedModule
	steps0, alloc0 := m.Steps, m.AllocBytes
	switch level {
	case 0:
		l.OptLevel = 0
		lm, err = l.Load(obj.Encode())
	case 1:
		l.OptLevel = 1
		lm, err = l.Load(obj.Encode())
	case 2:
		l.OptLevel = 2
		lm, err = l.Load(obj.Encode())
	case 3:
		l.OptLevel = 2
		lm, err = l.LoadObject(obj)
	}
	fmt.Fprintf(&sb, "load: steps=%d alloc=%d", m.Steps-steps0, m.AllocBytes-alloc0)
	if err != nil {
		fmt.Fprintf(&sb, " err=%v\n", err)
		return sb.String()
	}
	sb.WriteString("\n")
	if level >= 2 {
		// No-op when the loader refused the tier (unverified object);
		// the differential still holds, just without translated dispatch.
		lm.Translate()
	}

	names := lm.Export.Names()
	sort.Strings(names)
	argPool := []vm.Value{"payload-string", int64(3), int64(0), "x"}
	for _, name := range names {
		v, ok := lm.Global(name)
		if !ok {
			continue
		}
		clo, ok := v.(*vm.Closure)
		if !ok {
			fmt.Fprintf(&sb, "%s = %s\n", name, renderValue(v))
			continue
		}
		args := make([]vm.Value, clo.Chunk.NParams)
		for i := range args {
			args[i] = argPool[i%len(argPool)]
		}
		if len(args) == 1 {
			// Single unit-ish entry points are common; try unit first so
			// start()-style functions actually run.
			args[0] = vm.Unit{}
		}
		for _, fuel := range []uint64{200_000, 73} {
			m.MaxSteps = fuel
			s0, a0 := m.Steps, m.AllocBytes
			res, ierr := m.Invoke(v, args...)
			fmt.Fprintf(&sb, "%s/fuel=%d: steps=%d alloc=%d", name, fuel, m.Steps-s0, m.AllocBytes-a0)
			if ierr != nil {
				fmt.Fprintf(&sb, " trap=%v\n", ierr)
			} else {
				fmt.Fprintf(&sb, " val=%s\n", renderValue(res))
			}
		}
	}
	return sb.String()
}

// FuzzOptimizedMatchesBaseline is the optimizer's differential oracle. It
// is seeded with the bundled switchlet corpus — the exact programs the
// bridge ships — plus targeted programs covering every superinstruction,
// and requires all four execution paths (-O0, -O1, -O2 hostile, -O2
// trusted) to produce identical transcripts.
func FuzzOptimizedMatchesBaseline(f *testing.F) {
	for _, seed := range []string{
		switchlets.DumbSrc,
		switchlets.LearningSrc,
		switchlets.SpanningSrc,
		switchlets.DECSrc,
		switchlets.ControlSrc,
		switchlets.BuggySpanningSrc,
		// Superinstruction coverage beyond what the switchlets use.
		`let f x = x + 2 * 3`,
		`let f a b = if a < b then (a, b) else (b, a)`,
		`let f n =
  let acc = Safestd.ref 0 in
  for i = 0 to n do acc := !acc + i done;
  !acc`,
		`let t = Hashtbl.create 4
let put k = Hashtbl.add t k (String.length k); ()
let get k = (Hashtbl.find t k) + (if Hashtbl.mem t k then 1 else 0)`,
		`let f s = (String.sub s 1 2) ^ (Safestd.string_of_int (String.get s 0))`,
		`let f a = a / 0`,
		`let (x, y) = (1, "two")
let f () = (y, x)`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 8192 {
			t.Skip("oversized input")
		}
		base := runLevel(t, src, 0)
		for _, level := range []int{1, 2, 3} {
			if got := runLevel(t, src, level); got != base {
				t.Errorf("level %d diverges from -O0\n--- -O0:\n%s\n--- level %d:\n%s", level, base, level, got)
			}
		}
	})
}
