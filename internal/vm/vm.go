package vm

import (
	"errors"
	"fmt"
)

// Machine is the swl interpreter. It is single-threaded (like the paper's
// user-mode Caml threads: "no speedup occurs due to our multiprocessor")
// and meters execution: Steps and AllocBytes accumulate across invocations,
// and the bridge converts the per-invocation deltas into virtual CPU time.
type Machine struct {
	// Steps counts executed instructions, cumulatively.
	Steps uint64
	// AllocBytes estimates heap allocation by switchlet code,
	// cumulatively; the cost model turns it into GC pressure.
	AllocBytes uint64

	// MaxSteps is the per-invocation fuel. A switchlet that loops forever
	// is stopped with a trap — part of the bridge protecting itself.
	MaxSteps uint64
	// MaxFrames bounds the call stack depth.
	MaxFrames int

	fuel  uint64
	depth int
}

// Default execution limits.
const (
	DefaultMaxSteps  = 20_000_000
	DefaultMaxFrames = 4096
)

// NewMachine creates an interpreter with default limits.
func NewMachine() *Machine {
	return &Machine{MaxSteps: DefaultMaxSteps, MaxFrames: DefaultMaxFrames}
}

// Ctx is passed to native functions so they can call back into switchlet
// code (e.g. Hashtbl.iter, or the bridge dispatching a packet handler).
type Ctx struct {
	M *Machine
}

// Call invokes a switchlet-level function value from native code.
func (c *Ctx) Call(fn Value, args ...Value) (Value, error) {
	return c.M.Invoke(fn, args...)
}

// ErrFuel is wrapped in the trap produced when an invocation exceeds
// MaxSteps.
var ErrFuel = errors.New("fuel exhausted")

// Invoke applies a callable value to args, metering execution. The fuel
// budget covers the outermost invocation and everything it causes.
func (m *Machine) Invoke(fn Value, args ...Value) (Value, error) {
	if m.depth == 0 {
		m.fuel = m.MaxSteps
	}
	m.depth++
	defer func() { m.depth-- }()
	return m.apply(fn, args)
}

// apply implements the full curried application rules. Zero-parameter
// closures (module init chunks) run when applied to zero arguments.
func (m *Machine) apply(fn Value, args []Value) (Value, error) {
	for {
		if c, ok := fn.(*Closure); ok && c.Chunk.NParams == len(args) {
			return m.run(c, args)
		}
		if len(args) == 0 {
			return fn, nil
		}
		switch f := fn.(type) {
		case *Closure:
			n := f.Chunk.NParams
			switch {
			case len(args) == n:
				return m.run(f, args)
			case len(args) < n:
				m.AllocBytes += uint64(24 + 16*len(args))
				return &Partial{Fn: f, Args: append([]Value(nil), args...)}, nil
			default:
				res, err := m.run(f, args[:n])
				if err != nil {
					return nil, err
				}
				fn, args = res, args[n:]
			}
		case *Native:
			switch {
			case len(args) == f.Arity:
				return f.Fn(&Ctx{M: m}, args)
			case len(args) < f.Arity:
				m.AllocBytes += uint64(24 + 16*len(args))
				return &Partial{Fn: f, Args: append([]Value(nil), args...)}, nil
			default:
				res, err := f.Fn(&Ctx{M: m}, args[:f.Arity])
				if err != nil {
					return nil, err
				}
				fn, args = res, args[f.Arity:]
			}
		case *Partial:
			combined := make([]Value, 0, len(f.Args)+len(args))
			combined = append(combined, f.Args...)
			combined = append(combined, args...)
			fn, args = f.Fn, combined
		default:
			return nil, &Trap{Msg: fmt.Sprintf("cannot apply non-function %s", FormatValue(fn))}
		}
	}
}

// handler is an installed try/with handler.
type handler struct {
	sp     int // operand stack depth to restore
	target int // instruction index of the handler code
}

// frame is one activation record.
type frame struct {
	clo      *Closure
	locals   []Value
	stack    []Value
	ip       int
	handlers []handler
}

// run executes a closure with exactly-matching arguments.
func (m *Machine) run(clo *Closure, args []Value) (Value, error) {
	frames := make([]*frame, 0, 8)
	push := func(c *Closure, as []Value) error {
		if len(frames) >= m.MaxFrames {
			return &Trap{Msg: "call stack overflow"}
		}
		locals := make([]Value, c.Chunk.NLocals)
		copy(locals, as)
		frames = append(frames, &frame{clo: c, locals: locals})
		return nil
	}
	if err := push(clo, args); err != nil {
		return nil, err
	}

	// trap unwinds to the nearest handler; returns false if none exists.
	trap := func() bool {
		for len(frames) > 0 {
			f := frames[len(frames)-1]
			if n := len(f.handlers); n > 0 {
				h := f.handlers[n-1]
				f.handlers = f.handlers[:n-1]
				f.stack = f.stack[:h.sp]
				f.ip = h.target
				return true
			}
			frames = frames[:len(frames)-1]
		}
		return false
	}

	for {
		f := frames[len(frames)-1]
		if f.ip >= len(f.clo.Chunk.Code) {
			return nil, &Trap{Msg: "fell off end of chunk " + f.clo.Chunk.Name}
		}
		ins := f.clo.Chunk.Code[f.ip]
		f.ip++
		if m.fuel == 0 {
			return nil, &Trap{Msg: ErrFuel.Error()}
		}
		m.fuel--
		m.Steps++

		var trapErr *Trap
		switch ins.Op {
		case opNop:
		case opConstInt:
			f.stack = append(f.stack, ins.A)
		case opConstStr:
			f.stack = append(f.stack, f.clo.Mod.Obj.StrPool[ins.A])
		case opConstBool:
			f.stack = append(f.stack, ins.A != 0)
		case opConstUnit:
			f.stack = append(f.stack, Unit{})
		case opLocalGet:
			f.stack = append(f.stack, f.locals[ins.A])
		case opLocalSet:
			f.locals[ins.A] = f.pop()
		case opCaptureGet:
			if int(ins.A) >= len(f.clo.Caps) {
				trapErr = &Trap{Msg: "capture index out of range"}
				break
			}
			f.stack = append(f.stack, f.clo.Caps[ins.A])
		case opGlobalGet:
			f.stack = append(f.stack, f.clo.Mod.Globals[ins.A])
		case opGlobalSet:
			f.clo.Mod.Globals[ins.A] = f.pop()
		case opImportGet:
			f.stack = append(f.stack, f.clo.Mod.Imports[ins.A])
		case opClosure:
			spec := f.clo.Mod.Obj.CapSpecs[ins.B]
			caps := make([]Value, len(spec))
			nc := &Closure{Mod: f.clo.Mod, Chunk: f.clo.Mod.Obj.Chunks[ins.A]}
			for i, c := range spec {
				switch c.Kind {
				case capLocal:
					if int(c.Idx) >= len(f.locals) {
						trapErr = &Trap{Msg: "capture refers past frame locals"}
						break
					}
					caps[i] = f.locals[c.Idx]
				case capCapture:
					if int(c.Idx) >= len(f.clo.Caps) {
						trapErr = &Trap{Msg: "capture refers past closure environment"}
						break
					}
					caps[i] = f.clo.Caps[c.Idx]
				case capSelf:
					caps[i] = nc
				case capFrameSelf:
					caps[i] = f.clo
				}
			}
			if trapErr != nil {
				break
			}
			nc.Caps = caps
			m.AllocBytes += uint64(32 + 16*len(caps))
			f.stack = append(f.stack, nc)
		case opCall, opTailCall:
			n := int(ins.A)
			if len(f.stack) < n+1 {
				trapErr = &Trap{Msg: "operand stack underflow"}
				break
			}
			cargs := append([]Value(nil), f.stack[len(f.stack)-n:]...)
			fnv := f.stack[len(f.stack)-n-1]
			f.stack = f.stack[:len(f.stack)-n-1]
			if c, ok := fnv.(*Closure); ok && c.Chunk.NParams == n {
				if ins.Op == opTailCall && len(f.handlers) == 0 {
					// Reuse the current frame slot.
					locals := make([]Value, c.Chunk.NLocals)
					copy(locals, cargs)
					frames[len(frames)-1] = &frame{clo: c, locals: locals}
					continue
				}
				if err := push(c, cargs); err != nil {
					trapErr = err.(*Trap)
					break
				}
				continue
			}
			res, err := m.apply(fnv, cargs)
			if err != nil {
				var t *Trap
				if errors.As(err, &t) {
					trapErr = t
					break
				}
				return nil, err
			}
			if ins.Op == opTailCall {
				// Return res from this frame.
				frames = frames[:len(frames)-1]
				if len(frames) == 0 {
					return res, nil
				}
				g := frames[len(frames)-1]
				g.stack = append(g.stack, res)
				continue
			}
			f.stack = append(f.stack, res)
		case opReturn:
			res := f.pop()
			frames = frames[:len(frames)-1]
			if len(frames) == 0 {
				return res, nil
			}
			g := frames[len(frames)-1]
			g.stack = append(g.stack, res)
		case opJump:
			f.ip += int(ins.A)
		case opJumpIfFalse:
			v := f.pop()
			b, ok := v.(bool)
			if !ok {
				trapErr = &Trap{Msg: "condition is not a boolean"}
				break
			}
			if !b {
				f.ip += int(ins.A)
			}
		case opJumpIfTrue:
			v := f.pop()
			b, ok := v.(bool)
			if !ok {
				trapErr = &Trap{Msg: "condition is not a boolean"}
				break
			}
			if b {
				f.ip += int(ins.A)
			}
		case opPop:
			f.pop()
		case opAdd, opSub, opMul, opDiv, opMod:
			b, ok1 := f.pop().(int64)
			a, ok2 := f.pop().(int64)
			if !ok1 || !ok2 {
				trapErr = &Trap{Msg: "arithmetic on non-integer"}
				break
			}
			var r int64
			switch ins.Op {
			case opAdd:
				r = a + b
			case opSub:
				r = a - b
			case opMul:
				r = a * b
			case opDiv:
				if b == 0 {
					trapErr = &Trap{Msg: "division by zero"}
				} else {
					r = a / b
				}
			case opMod:
				if b == 0 {
					trapErr = &Trap{Msg: "division by zero"}
				} else {
					r = a % b
				}
			}
			if trapErr == nil {
				f.stack = append(f.stack, r)
			}
		case opConcat:
			b, ok1 := f.pop().(string)
			a, ok2 := f.pop().(string)
			if !ok1 || !ok2 {
				trapErr = &Trap{Msg: "concatenation of non-strings"}
				break
			}
			m.AllocBytes += uint64(len(a) + len(b))
			f.stack = append(f.stack, a+b)
		case opEq, opNe:
			b := f.pop()
			a := f.pop()
			eq, err := valueEq(a, b)
			if err != nil {
				trapErr = err.(*Trap)
				break
			}
			if ins.Op == opNe {
				eq = !eq
			}
			f.stack = append(f.stack, eq)
		case opLt, opLe, opGt, opGe:
			b := f.pop()
			a := f.pop()
			c, err := valueCmp(a, b)
			if err != nil {
				trapErr = err.(*Trap)
				break
			}
			var r bool
			switch ins.Op {
			case opLt:
				r = c < 0
			case opLe:
				r = c <= 0
			case opGt:
				r = c > 0
			case opGe:
				r = c >= 0
			}
			f.stack = append(f.stack, r)
		case opNot:
			v, ok := f.pop().(bool)
			if !ok {
				trapErr = &Trap{Msg: "not of non-boolean"}
				break
			}
			f.stack = append(f.stack, !v)
		case opNeg:
			v, ok := f.pop().(int64)
			if !ok {
				trapErr = &Trap{Msg: "negation of non-integer"}
				break
			}
			f.stack = append(f.stack, -v)
		case opTuple:
			n := int(ins.A)
			if len(f.stack) < n {
				trapErr = &Trap{Msg: "operand stack underflow"}
				break
			}
			t := make(Tuple, n)
			copy(t, f.stack[len(f.stack)-n:])
			f.stack = f.stack[:len(f.stack)-n]
			m.AllocBytes += uint64(16 * n)
			f.stack = append(f.stack, t)
		case opTupleGet:
			t, ok := f.pop().(Tuple)
			if !ok || int(ins.A) >= len(t) {
				trapErr = &Trap{Msg: "tuple projection error"}
				break
			}
			f.stack = append(f.stack, t[ins.A])
		case opRaise:
			msg, ok := f.pop().(string)
			if !ok {
				msg = "raise"
			}
			trapErr = &Trap{Msg: msg}
		case opPushHandler:
			f.handlers = append(f.handlers, handler{sp: len(f.stack), target: f.ip + int(ins.A)})
		case opPopHandler:
			if n := len(f.handlers); n > 0 {
				f.handlers = f.handlers[:n-1]
			}
		case opRefGet:
			r, ok := f.pop().(*Ref)
			if !ok {
				trapErr = &Trap{Msg: "dereference of non-reference"}
				break
			}
			f.stack = append(f.stack, r.V)
		case opRefSet:
			v := f.pop()
			r, ok := f.pop().(*Ref)
			if !ok {
				trapErr = &Trap{Msg: "assignment to non-reference"}
				break
			}
			r.V = v
			f.stack = append(f.stack, Unit{})
		default:
			return nil, &Trap{Msg: fmt.Sprintf("bad opcode %d", ins.Op)}
		}

		if trapErr != nil {
			if !trap() {
				return nil, trapErr
			}
		}
	}
}

// pop removes and returns the top of the operand stack. The compiler
// guarantees balance; Verify guards slot indices; a nil fallback keeps a
// corrupted object from panicking the host.
func (f *frame) pop() Value {
	if len(f.stack) == 0 {
		return nil
	}
	v := f.stack[len(f.stack)-1]
	f.stack = f.stack[:len(f.stack)-1]
	return v
}

// LinkedModule is a loaded, linked switchlet: its object code, resolved
// import values and global slots.
type LinkedModule struct {
	Obj     *Object
	Export  *Signature
	Globals []Value
	Imports []Value
}

// Global returns the value of an exported binding.
func (lm *LinkedModule) Global(name string) (Value, bool) {
	slot, ok := lm.Obj.GlobalNames[name]
	if !ok {
		return nil, false
	}
	return lm.Globals[slot], true
}
