package vm

import (
	"errors"
	"fmt"
)

// Machine is the swl interpreter. It is single-threaded (like the paper's
// user-mode Caml threads: "no speedup occurs due to our multiprocessor")
// and meters execution: Steps and AllocBytes accumulate across invocations,
// and the bridge converts the per-invocation deltas into virtual CPU time.
//
// The interpreter is allocation-free in steady state: all activation
// records live in a pooled frame array, and locals plus operand stacks
// share one growable value arena that is reused across invocations. Only
// switchlet-level allocation (closures, tuples, strings — the operations
// metered by AllocBytes) touches the Go heap.
type Machine struct {
	// Steps counts executed instructions, cumulatively.
	Steps uint64
	// AllocBytes estimates heap allocation by switchlet code,
	// cumulatively; the cost model turns it into GC pressure.
	AllocBytes uint64

	// MaxSteps is the per-invocation fuel. A switchlet that loops forever
	// is stopped with a trap — part of the bridge protecting itself.
	MaxSteps uint64
	// MaxFrames bounds the call stack depth of one run.
	MaxFrames int

	fuel  uint64
	depth int

	// ctx is the reusable callback context handed to native functions.
	ctx Ctx

	// vals is the shared locals + operand-stack arena. Every frame of
	// every (possibly nested) run occupies a contiguous region; the arena
	// grows once and is reused for the lifetime of the machine.
	vals []Value
	// frames is the pooled activation-record stack, shared by nested runs.
	frames   []frameSlot
	frameTop int

	// argBufs is a free-list of argument buffers for the slow apply path
	// (natives, partials, arity mismatches).
	argBufs [][]Value
}

// Default execution limits.
const (
	DefaultMaxSteps  = 20_000_000
	DefaultMaxFrames = 4096
)

// NewMachine creates an interpreter with default limits.
func NewMachine() *Machine {
	m := &Machine{MaxSteps: DefaultMaxSteps, MaxFrames: DefaultMaxFrames}
	m.ctx.M = m
	return m
}

// Ctx is passed to native functions so they can call back into switchlet
// code (e.g. Hashtbl.iter, or the bridge dispatching a packet handler).
type Ctx struct {
	M *Machine
}

// Call invokes a switchlet-level function value from native code.
func (c *Ctx) Call(fn Value, args ...Value) (Value, error) {
	return c.M.InvokeArgs(fn, args)
}

// ErrFuel is wrapped in the trap produced when an invocation exceeds
// MaxSteps.
var ErrFuel = errors.New("fuel exhausted")

// Invoke applies a callable value to args, metering execution. The fuel
// budget covers the outermost invocation and everything it causes.
func (m *Machine) Invoke(fn Value, args ...Value) (Value, error) {
	return m.InvokeArgs(fn, args)
}

// InvokeArgs is Invoke without the variadic allocation: args may be a
// caller-owned scratch buffer, which is not retained.
func (m *Machine) InvokeArgs(fn Value, args []Value) (Value, error) {
	if m.ctx.M == nil {
		m.ctx.M = m // Machine built without NewMachine
	}
	if m.depth == 0 {
		m.fuel = m.MaxSteps
	}
	m.depth++
	defer func() { m.depth-- }()
	return m.apply(fn, args)
}

// nativeCtx returns the shared callback context, initializing it for
// machines constructed without NewMachine.
func (m *Machine) nativeCtx() *Ctx {
	if m.ctx.M == nil {
		m.ctx.M = m
	}
	return &m.ctx
}

// getArgBuf returns a pooled argument buffer of length n. Callers must
// release it with putArgBuf once no callee can reference it; every code
// path below does, because neither run (which copies into the arena) nor
// Partial construction (which copies) nor natives (which must not retain
// their argument slice) keep the buffer.
func (m *Machine) getArgBuf(n int) []Value {
	for i := len(m.argBufs) - 1; i >= 0; i-- {
		if cap(m.argBufs[i]) >= n {
			buf := m.argBufs[i]
			m.argBufs[i] = m.argBufs[len(m.argBufs)-1]
			m.argBufs = m.argBufs[:len(m.argBufs)-1]
			return buf[:n]
		}
	}
	c := n
	if c < 8 {
		c = 8
	}
	return make([]Value, n, c)
}

func (m *Machine) putArgBuf(buf []Value) {
	for i := range buf {
		buf[i] = nil
	}
	if len(m.argBufs) < 16 {
		m.argBufs = append(m.argBufs, buf)
	}
}

// apply implements the full curried application rules. Zero-parameter
// closures (module init chunks) run when applied to zero arguments, and a
// zero-arity native applied to zero arguments executes immediately (it is
// an exact-arity call, not an under-application).
func (m *Machine) apply(fn Value, args []Value) (Value, error) {
	for {
		switch f := fn.(type) {
		case *Closure:
			n := f.Chunk.NParams
			switch {
			case len(args) == n:
				return m.run(f, args)
			case len(args) == 0:
				return fn, nil
			case len(args) < n:
				m.AllocBytes += uint64(24 + 16*len(args))
				return &Partial{Fn: f, Args: append([]Value(nil), args...)}, nil
			default:
				res, err := m.run(f, args[:n])
				if err != nil {
					return nil, err
				}
				fn, args = res, args[n:]
			}
		case *Native:
			switch {
			case len(args) == f.Arity:
				return f.Fn(m.nativeCtx(), args)
			case len(args) == 0:
				return fn, nil
			case len(args) < f.Arity:
				m.AllocBytes += uint64(24 + 16*len(args))
				return &Partial{Fn: f, Args: append([]Value(nil), args...)}, nil
			default:
				res, err := f.Fn(m.nativeCtx(), args[:f.Arity])
				if err != nil {
					return nil, err
				}
				fn, args = res, args[f.Arity:]
			}
		case *Partial:
			if len(args) == 0 {
				return fn, nil
			}
			combined := make([]Value, 0, len(f.Args)+len(args))
			combined = append(combined, f.Args...)
			combined = append(combined, args...)
			fn, args = f.Fn, combined
		default:
			if len(args) == 0 {
				return fn, nil
			}
			return nil, &Trap{Msg: fmt.Sprintf("cannot apply non-function %s", FormatValue(fn))}
		}
	}
}

// handler is an installed try/with handler.
type handler struct {
	sp     int // absolute arena depth to restore
	target int // instruction index of the handler code
}

// frameSlot is one pooled activation record. Locals occupy
// vals[base:opBase] (opBase = base + NLocals) and the operand stack is
// vals[opBase:len(vals)] while the frame is topmost. retBase is the arena
// depth the caller's stack returns to when this frame pops (for called
// frames that is the slot holding the callee value).
type frameSlot struct {
	clo      *Closure
	base     int
	opBase   int
	retBase  int
	ip       int
	handlers []handler
}

// pushFrame activates c whose len(args)=c.Chunk.NParams arguments are the
// topmost values of the arena; they become the first locals in place.
// retBase is the arena depth to restore on return.
func (m *Machine) pushFrame(c *Closure, nArgs, retBase int) *frameSlot {
	base := len(m.vals) - nArgs
	for i := nArgs; i < c.Chunk.NLocals; i++ {
		m.vals = append(m.vals, nil)
	}
	if m.frameTop == len(m.frames) {
		m.frames = append(m.frames, frameSlot{})
	}
	f := &m.frames[m.frameTop]
	m.frameTop++
	f.clo = c
	f.base = base
	f.opBase = base + c.Chunk.NLocals
	f.retBase = retBase
	f.ip = 0
	f.handlers = f.handlers[:0]
	return f
}

// restore rewinds the shared stacks; deferred by run so that a panicking
// native cannot leave the machine inconsistent.
func (m *Machine) restore(frameFloor, valFloor int) {
	m.frameTop = frameFloor
	m.vals = m.vals[:valFloor]
}

// unwind pops frames down to (but not past) frameFloor until a try/with
// handler is found; it reports whether one was.
func (m *Machine) unwind(frameFloor int) bool {
	for m.frameTop > frameFloor {
		f := &m.frames[m.frameTop-1]
		if n := len(f.handlers); n > 0 {
			h := f.handlers[n-1]
			f.handlers = f.handlers[:n-1]
			m.vals = m.vals[:h.sp]
			f.ip = h.target
			return true
		}
		m.vals = m.vals[:f.retBase]
		m.frameTop--
	}
	return false
}

// run executes a closure with exactly-matching arguments. Fuel and step
// counts are mirrored into locals (registers) for the duration of the
// loop and flushed around every call-out, so the per-instruction cost is a
// register decrement while Machine.Steps stays exact at every point native
// code can observe it.
func (m *Machine) run(clo *Closure, args []Value) (Value, error) {
	frameFloor := m.frameTop
	valFloor := len(m.vals)
	defer m.restore(frameFloor, valFloor)

	if m.frameTop-frameFloor >= m.MaxFrames {
		return nil, &Trap{Msg: "call stack overflow"}
	}
	m.vals = append(m.vals, args...)
	m.pushFrame(clo, len(args), valFloor)

	fuel := m.fuel
	var steps uint64

	for {
		f := &m.frames[m.frameTop-1]
		code := f.clo.Chunk.Code
		if f.ip >= len(code) {
			m.fuel, m.Steps = fuel, m.Steps+steps
			return nil, &Trap{Msg: "fell off end of chunk " + f.clo.Chunk.Name}
		}
		ins := &code[f.ip]
		f.ip++
		if fuel == 0 {
			m.fuel, m.Steps = 0, m.Steps+steps
			return nil, &Trap{Msg: ErrFuel.Error()}
		}
		fuel--
		steps++

		var trapErr *Trap
		switch ins.Op {
		case opNop:
		case opConstInt:
			m.vals = append(m.vals, boxInt(ins.A))
		case opConstStr:
			m.vals = append(m.vals, f.clo.Mod.Obj.StrPool[ins.A])
		case opConstBool:
			m.vals = append(m.vals, boxBool(ins.A != 0))
		case opConstUnit:
			m.vals = append(m.vals, valUnit)
		case opLocalGet:
			m.vals = append(m.vals, m.vals[f.base+int(ins.A)])
		case opLocalSet:
			m.vals[f.base+int(ins.A)] = m.pop(f.opBase)
		case opCaptureGet:
			if int(ins.A) >= len(f.clo.Caps) {
				trapErr = &Trap{Msg: "capture index out of range"}
				break
			}
			m.vals = append(m.vals, f.clo.Caps[ins.A])
		case opGlobalGet:
			m.vals = append(m.vals, f.clo.Mod.Globals[ins.A])
		case opGlobalSet:
			f.clo.Mod.Globals[ins.A] = m.pop(f.opBase)
		case opImportGet:
			m.vals = append(m.vals, f.clo.Mod.Imports[ins.A])
		case opClosure:
			spec := f.clo.Mod.Obj.CapSpecs[ins.B]
			caps := make([]Value, len(spec))
			nc := &Closure{Mod: f.clo.Mod, Chunk: f.clo.Mod.Obj.Chunks[ins.A]}
			for i, c := range spec {
				switch c.Kind {
				case capLocal:
					if f.base+int(c.Idx) >= f.opBase {
						trapErr = &Trap{Msg: "capture refers past frame locals"}
						break
					}
					caps[i] = m.vals[f.base+int(c.Idx)]
				case capCapture:
					if int(c.Idx) >= len(f.clo.Caps) {
						trapErr = &Trap{Msg: "capture refers past closure environment"}
						break
					}
					caps[i] = f.clo.Caps[c.Idx]
				case capSelf:
					caps[i] = nc
				case capFrameSelf:
					caps[i] = f.clo
				}
			}
			if trapErr != nil {
				break
			}
			nc.Caps = caps
			m.AllocBytes += uint64(32 + 16*len(caps))
			m.vals = append(m.vals, nc)
		case opCall, opTailCall:
			n := int(ins.A)
			if len(m.vals)-f.opBase < n+1 {
				trapErr = &Trap{Msg: "operand stack underflow"}
				break
			}
			fnv := m.vals[len(m.vals)-n-1]
			if c, ok := fnv.(*Closure); ok && c.Chunk.NParams == n {
				if ins.Op == opTailCall && len(f.handlers) == 0 {
					// Reuse the current frame slot: slide the arguments
					// down over the old locals and rebind.
					copy(m.vals[f.base:], m.vals[len(m.vals)-n:])
					m.vals = m.vals[:f.base+n]
					for i := n; i < c.Chunk.NLocals; i++ {
						m.vals = append(m.vals, nil)
					}
					f.clo = c
					f.opBase = f.base + c.Chunk.NLocals
					f.ip = 0
					continue
				}
				if m.frameTop-frameFloor >= m.MaxFrames {
					trapErr = &Trap{Msg: "call stack overflow"}
					break
				}
				// The arguments on the arena top become the callee's
				// first locals in place; the callee slot below them is
				// reclaimed when the frame returns (retBase).
				m.pushFrame(c, n, len(m.vals)-n-1)
				continue
			}
			if nat, ok := fnv.(*Native); ok && nat.Arity == n {
				// Direct native call: the arguments are passed as a view
				// of the arena top (natives must not retain the slice).
				m.fuel, m.Steps = fuel, m.Steps+steps
				steps = 0
				res, err := nat.Fn(m.nativeCtx(), m.vals[len(m.vals)-n:])
				fuel = m.fuel
				m.vals = m.vals[:len(m.vals)-n-1]
				if err != nil {
					var t *Trap
					if errors.As(err, &t) {
						trapErr = t
					} else {
						m.fuel = fuel
						return nil, err
					}
				} else if ins.Op == opTailCall {
					m.vals = m.vals[:f.retBase]
					m.frameTop--
					if m.frameTop == frameFloor {
						m.fuel, m.Steps = fuel, m.Steps+steps
						return res, nil
					}
					m.vals = append(m.vals, res)
					continue
				} else {
					m.vals = append(m.vals, res)
				}
				break
			}
			// Slow path: partials, arity mismatches, non-functions.
			cargs := m.getArgBuf(n)
			copy(cargs, m.vals[len(m.vals)-n:])
			m.vals = m.vals[:len(m.vals)-n-1]
			m.fuel, m.Steps = fuel, m.Steps+steps
			steps = 0
			res, err := m.apply(fnv, cargs)
			fuel = m.fuel
			m.putArgBuf(cargs)
			if err != nil {
				var t *Trap
				if errors.As(err, &t) {
					trapErr = t
					break
				}
				m.fuel = fuel
				return nil, err
			}
			if ins.Op == opTailCall {
				// Return res from this frame.
				m.vals = m.vals[:f.retBase]
				m.frameTop--
				if m.frameTop == frameFloor {
					m.fuel, m.Steps = fuel, m.Steps+steps
					return res, nil
				}
				m.vals = append(m.vals, res)
				continue
			}
			m.vals = append(m.vals, res)
		case opReturn:
			res := m.pop(f.opBase)
			m.vals = m.vals[:f.retBase]
			m.frameTop--
			if m.frameTop == frameFloor {
				m.fuel, m.Steps = fuel, m.Steps+steps
				return res, nil
			}
			m.vals = append(m.vals, res)
		case opJump:
			f.ip += int(ins.A)
		case opJumpIfFalse:
			v := m.pop(f.opBase)
			b, ok := v.(bool)
			if !ok {
				trapErr = &Trap{Msg: "condition is not a boolean"}
				break
			}
			if !b {
				f.ip += int(ins.A)
			}
		case opJumpIfTrue:
			v := m.pop(f.opBase)
			b, ok := v.(bool)
			if !ok {
				trapErr = &Trap{Msg: "condition is not a boolean"}
				break
			}
			if b {
				f.ip += int(ins.A)
			}
		case opPop:
			m.pop(f.opBase)
		case opAdd, opSub, opMul, opDiv, opMod:
			b, ok1 := m.pop(f.opBase).(int64)
			a, ok2 := m.pop(f.opBase).(int64)
			if !ok1 || !ok2 {
				trapErr = &Trap{Msg: "arithmetic on non-integer"}
				break
			}
			var r int64
			switch ins.Op {
			case opAdd:
				r = a + b
			case opSub:
				r = a - b
			case opMul:
				r = a * b
			case opDiv:
				if b == 0 {
					trapErr = &Trap{Msg: "division by zero"}
				} else {
					r = a / b
				}
			case opMod:
				if b == 0 {
					trapErr = &Trap{Msg: "division by zero"}
				} else {
					r = a % b
				}
			}
			if trapErr == nil {
				m.vals = append(m.vals, boxInt(r))
			}
		case opConcat:
			b, ok1 := m.pop(f.opBase).(string)
			a, ok2 := m.pop(f.opBase).(string)
			if !ok1 || !ok2 {
				trapErr = &Trap{Msg: "concatenation of non-strings"}
				break
			}
			m.AllocBytes += uint64(len(a) + len(b))
			m.vals = append(m.vals, a+b)
		case opEq, opNe:
			b := m.pop(f.opBase)
			a := m.pop(f.opBase)
			eq, err := valueEq(a, b)
			if err != nil {
				trapErr = err.(*Trap)
				break
			}
			if ins.Op == opNe {
				eq = !eq
			}
			m.vals = append(m.vals, boxBool(eq))
		case opLt, opLe, opGt, opGe:
			b := m.pop(f.opBase)
			a := m.pop(f.opBase)
			c, err := valueCmp(a, b)
			if err != nil {
				trapErr = err.(*Trap)
				break
			}
			var r bool
			switch ins.Op {
			case opLt:
				r = c < 0
			case opLe:
				r = c <= 0
			case opGt:
				r = c > 0
			case opGe:
				r = c >= 0
			}
			m.vals = append(m.vals, boxBool(r))
		case opNot:
			v, ok := m.pop(f.opBase).(bool)
			if !ok {
				trapErr = &Trap{Msg: "not of non-boolean"}
				break
			}
			m.vals = append(m.vals, boxBool(!v))
		case opNeg:
			v, ok := m.pop(f.opBase).(int64)
			if !ok {
				trapErr = &Trap{Msg: "negation of non-integer"}
				break
			}
			m.vals = append(m.vals, boxInt(-v))
		case opTuple:
			n := int(ins.A)
			if len(m.vals)-f.opBase < n {
				trapErr = &Trap{Msg: "operand stack underflow"}
				break
			}
			t := make(Tuple, n)
			copy(t, m.vals[len(m.vals)-n:])
			m.vals = m.vals[:len(m.vals)-n]
			m.AllocBytes += uint64(16 * n)
			m.vals = append(m.vals, t)
		case opTupleGet:
			t, ok := m.pop(f.opBase).(Tuple)
			if !ok || int(ins.A) >= len(t) {
				trapErr = &Trap{Msg: "tuple projection error"}
				break
			}
			m.vals = append(m.vals, t[ins.A])
		case opRaise:
			msg, ok := m.pop(f.opBase).(string)
			if !ok {
				msg = "raise"
			}
			trapErr = &Trap{Msg: msg}
		case opPushHandler:
			f.handlers = append(f.handlers, handler{sp: len(m.vals), target: f.ip + int(ins.A)})
		case opPopHandler:
			if n := len(f.handlers); n > 0 {
				f.handlers = f.handlers[:n-1]
			}
		case opRefGet:
			r, ok := m.pop(f.opBase).(*Ref)
			if !ok {
				trapErr = &Trap{Msg: "dereference of non-reference"}
				break
			}
			m.vals = append(m.vals, r.V)
		case opRefSet:
			v := m.pop(f.opBase)
			r, ok := m.pop(f.opBase).(*Ref)
			if !ok {
				trapErr = &Trap{Msg: "assignment to non-reference"}
				break
			}
			r.V = v
			m.vals = append(m.vals, valUnit)
		default:
			m.fuel, m.Steps = fuel, m.Steps+steps
			return nil, &Trap{Msg: fmt.Sprintf("bad opcode %d", ins.Op)}
		}

		if trapErr != nil {
			if !m.unwind(frameFloor) {
				m.fuel, m.Steps = fuel, m.Steps+steps
				return nil, trapErr
			}
		}
	}
}

// pop removes and returns the top of the current operand stack. The
// compiler guarantees balance; Verify guards slot indices; a nil fallback
// keeps a corrupted object from panicking the host.
func (m *Machine) pop(opBase int) Value {
	if len(m.vals) <= opBase {
		return nil
	}
	v := m.vals[len(m.vals)-1]
	m.vals = m.vals[:len(m.vals)-1]
	return v
}

// LinkedModule is a loaded, linked switchlet: its object code, resolved
// import values and global slots.
type LinkedModule struct {
	Obj     *Object
	Export  *Signature
	Globals []Value
	Imports []Value
}

// Global returns the value of an exported binding.
func (lm *LinkedModule) Global(name string) (Value, bool) {
	slot, ok := lm.Obj.GlobalNames[name]
	if !ok {
		return nil, false
	}
	return lm.Globals[slot], true
}
