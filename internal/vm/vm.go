package vm

import (
	"errors"
	"fmt"
)

// Machine is the swl interpreter. It is single-threaded (like the paper's
// user-mode Caml threads: "no speedup occurs due to our multiprocessor")
// and meters execution: Steps and AllocBytes accumulate across invocations,
// and the bridge converts the per-invocation deltas into virtual CPU time.
//
// The interpreter is allocation-free in steady state: all activation
// records live in a pooled frame array, and locals plus operand stacks
// share one growable value arena that is reused across invocations. Only
// switchlet-level allocation (closures, tuples, strings — the operations
// metered by AllocBytes) touches the Go heap.
//
// Chunks carry two code streams: the verified wire Code and an optional
// quickened Quick form produced by OptimizeObject. A frame normally runs
// the quickened stream; any situation the fast paths cannot handle
// (mispredicted inline-cache callee, invalidated untagged register, fuel
// starvation inside a superinstruction) deoptimizes the frame to the wire
// code at the exact equivalent position, so results, traps, Steps and
// AllocBytes are identical at every optimization level.
type Machine struct {
	// Steps counts executed instructions, cumulatively. A fused
	// superinstruction counts as many steps as the wire instructions it
	// replaces (Instr.W).
	Steps uint64
	// AllocBytes estimates heap allocation by switchlet code,
	// cumulatively; the cost model turns it into GC pressure.
	AllocBytes uint64

	// TierEnters counts frame (re)entries per execution tier: index 0 is
	// wire code, 1 the quickened interpreter, 2 translated closures.
	// Telemetry only — tier residency has no semantic weight.
	TierEnters [3]uint64

	// Trace receives deoptimization events when the host attaches a
	// tracing sink. Nil disables; the check costs one branch per deopt,
	// which is already off the hot path.
	Trace TraceSink

	// MaxSteps is the per-invocation fuel. A switchlet that loops forever
	// is stopped with a trap — part of the bridge protecting itself.
	MaxSteps uint64
	// MaxFrames bounds the call stack depth of one run.
	MaxFrames int

	fuel  uint64
	depth int

	// ctx is the reusable callback context handed to native functions.
	ctx Ctx

	// vals is the shared locals + operand-stack arena. Every frame of
	// every (possibly nested) run occupies a contiguous region; the arena
	// grows once and is reused for the lifetime of the machine.
	vals []Value
	// frames is the pooled activation-record stack, shared by nested runs.
	frames   []frameSlot
	frameTop int

	// argBufs is a free-list of argument buffers for the slow apply path
	// (natives, partials, arity mismatches).
	argBufs [][]Value

	// tupleSlab bump-allocates tuple storage in blocks so that opTuple
	// costs one Go allocation per block instead of one per tuple. Each
	// tuple is carved with a full slice expression (capacity == length),
	// so no later carve can alias it. Virtual metering (AllocBytes) is
	// unchanged — this only reduces host GC pressure.
	tupleSlab []Value
	slabOff   int

	// tupleHdrSlab and intBox amortize the interface-boxing allocations
	// of tuple headers and out-of-cache ints (see ebox.go).
	tupleHdrSlab []Tuple
	intBox       IntBoxer

	// transTrap carries a trap raised inside a translated step back to the
	// dispatch loop (tsteps return a status int, not an error, so the hot
	// path stays a single-word return).
	transTrap *Trap
}

// Default execution limits.
const (
	DefaultMaxSteps  = 20_000_000
	DefaultMaxFrames = 4096
)

// tupleSlabSize is the bump-allocation block for opTuple.
const tupleSlabSize = 256

// NewMachine creates an interpreter with default limits.
func NewMachine() *Machine {
	m := &Machine{MaxSteps: DefaultMaxSteps, MaxFrames: DefaultMaxFrames}
	m.ctx.M = m
	return m
}

// TraceSink observes tier deoptimizations (a quickened or translated
// frame falling back to wire code). Telemetry only: the sink must not
// re-enter the machine.
type TraceSink interface {
	TraceDeopt(reason string)
}

// Ctx is passed to native functions so they can call back into switchlet
// code (e.g. Hashtbl.iter, or the bridge dispatching a packet handler).
type Ctx struct {
	M *Machine
}

// Call invokes a switchlet-level function value from native code.
func (c *Ctx) Call(fn Value, args ...Value) (Value, error) {
	return c.M.InvokeArgs(fn, args)
}

// ErrFuel is wrapped in the trap produced when an invocation exceeds
// MaxSteps.
var ErrFuel = errors.New("fuel exhausted")

// Invoke applies a callable value to args, metering execution. The fuel
// budget covers the outermost invocation and everything it causes.
func (m *Machine) Invoke(fn Value, args ...Value) (Value, error) {
	return m.InvokeArgs(fn, args)
}

// InvokeArgs is Invoke without the variadic allocation: args may be a
// caller-owned scratch buffer, which is not retained.
func (m *Machine) InvokeArgs(fn Value, args []Value) (Value, error) {
	if m.ctx.M == nil {
		m.ctx.M = m // Machine built without NewMachine
	}
	if m.depth == 0 {
		m.fuel = m.MaxSteps
	}
	m.depth++
	defer func() { m.depth-- }()
	return m.apply(fn, args)
}

// nativeCtx returns the shared callback context, initializing it for
// machines constructed without NewMachine.
func (m *Machine) nativeCtx() *Ctx {
	if m.ctx.M == nil {
		m.ctx.M = m
	}
	return &m.ctx
}

// getArgBuf returns a pooled argument buffer of length n. Callers must
// release it with putArgBuf once no callee can reference it; every code
// path below does, because neither run (which copies into the arena) nor
// Partial construction (which copies) nor natives (which must not retain
// their argument slice) keep the buffer.
func (m *Machine) getArgBuf(n int) []Value {
	for i := len(m.argBufs) - 1; i >= 0; i-- {
		if cap(m.argBufs[i]) >= n {
			buf := m.argBufs[i]
			m.argBufs[i] = m.argBufs[len(m.argBufs)-1]
			m.argBufs = m.argBufs[:len(m.argBufs)-1]
			return buf[:n]
		}
	}
	c := n
	if c < 8 {
		c = 8
	}
	return make([]Value, n, c)
}

func (m *Machine) putArgBuf(buf []Value) {
	for i := range buf {
		buf[i] = nil
	}
	if len(m.argBufs) < 16 {
		m.argBufs = append(m.argBufs, buf)
	}
}

// apply implements the full curried application rules. Zero-parameter
// closures (module init chunks) run when applied to zero arguments, and a
// zero-arity native applied to zero arguments executes immediately (it is
// an exact-arity call, not an under-application).
func (m *Machine) apply(fn Value, args []Value) (Value, error) {
	for {
		switch f := fn.(type) {
		case *Closure:
			n := f.Chunk.NParams
			switch {
			case len(args) == n:
				return m.run(f, args)
			case len(args) == 0:
				return fn, nil
			case len(args) < n:
				m.AllocBytes += uint64(24 + 16*len(args))
				return &Partial{Fn: f, Args: append([]Value(nil), args...)}, nil
			default:
				res, err := m.run(f, args[:n])
				if err != nil {
					return nil, err
				}
				fn, args = res, args[n:]
			}
		case *Native:
			switch {
			case len(args) == f.Arity:
				return f.Fn(m.nativeCtx(), args)
			case len(args) == 0:
				return fn, nil
			case len(args) < f.Arity:
				m.AllocBytes += uint64(24 + 16*len(args))
				return &Partial{Fn: f, Args: append([]Value(nil), args...)}, nil
			default:
				res, err := f.Fn(m.nativeCtx(), args[:f.Arity])
				if err != nil {
					return nil, err
				}
				fn, args = res, args[f.Arity:]
			}
		case *Partial:
			if len(args) == 0 {
				return fn, nil
			}
			combined := make([]Value, 0, len(f.Args)+len(args))
			combined = append(combined, f.Args...)
			combined = append(combined, args...)
			fn, args = f.Fn, combined
		default:
			if len(args) == 0 {
				return fn, nil
			}
			return nil, &Trap{Msg: fmt.Sprintf("cannot apply non-function %s", FormatValue(fn))}
		}
	}
}

// handler is an installed try/with handler.
type handler struct {
	sp     int // absolute arena depth to restore
	target int // instruction index of the handler code
	// naive records the frame's execution tier at install time: the target
	// index is a position in whichever code stream the frame was running,
	// so an unwind must restore the same tier.
	naive bool
}

// frameSlot is one pooled activation record. Locals occupy
// vals[base:opBase] (opBase = base + NLocals) and the operand stack is
// vals[opBase:len(vals)] while the frame is topmost. retBase is the arena
// depth the caller's stack returns to when this frame pops (for called
// frames that is the slot holding the callee value).
type frameSlot struct {
	clo      *Closure
	base     int
	opBase   int
	retBase  int
	ip       int
	handlers []handler

	// naive forces the frame onto the wire Code even when the chunk has a
	// quickened form; set by deoptimization, cleared on frame (re)entry.
	naive bool
	// iregs are the untagged int registers backing inference-proven loop
	// counters (qISet/qIIncL/qIILeJf). itag is an invalidation bitmask:
	// bit r set means register r does not hold the current value of its
	// slot and the fused ops reading it must deoptimize. All registers
	// start invalid; qISet validates them.
	itag  uint8
	iregs [maxIntRegs]int64
}

// pushFrame activates c whose len(args)=c.Chunk.NParams arguments are the
// topmost values of the arena; they become the first locals in place.
// retBase is the arena depth to restore on return.
func (m *Machine) pushFrame(c *Closure, nArgs, retBase int) *frameSlot {
	base := len(m.vals) - nArgs
	for i := nArgs; i < c.Chunk.NLocals; i++ {
		m.vals = append(m.vals, nil)
	}
	if m.frameTop == len(m.frames) {
		m.frames = append(m.frames, frameSlot{})
	}
	f := &m.frames[m.frameTop]
	m.frameTop++
	f.clo = c
	f.base = base
	f.opBase = base + c.Chunk.NLocals
	f.retBase = retBase
	f.ip = 0
	f.handlers = f.handlers[:0]
	f.naive = false
	f.itag = 0xff
	return f
}

// restore rewinds the shared stacks; deferred by run so that a panicking
// native cannot leave the machine inconsistent.
func (m *Machine) restore(frameFloor, valFloor int) {
	m.frameTop = frameFloor
	m.vals = m.vals[:valFloor]
}

// unwind pops frames down to (but not past) frameFloor until a try/with
// handler is found; it reports whether one was.
func (m *Machine) unwind(frameFloor int) bool {
	for m.frameTop > frameFloor {
		f := &m.frames[m.frameTop-1]
		if n := len(f.handlers); n > 0 {
			h := f.handlers[n-1]
			f.handlers = f.handlers[:n-1]
			m.vals = m.vals[:h.sp]
			f.ip = h.target
			f.naive = h.naive
			return true
		}
		m.vals = m.vals[:f.retBase]
		m.frameTop--
	}
	return false
}

// icache is one monomorphic inline-cache site, allocated per linked module
// (sites are assigned by the optimizer, counted in Object.NICSites). The
// string fields form a two-way cache of String.sub results so repeated
// extraction of the same header bytes — the destination-locality pattern of
// real frame streams — reuses one boxed value instead of re-boxing per
// frame. The table fields cache one (table identity, version, key) lookup
// for Hashtbl.find/mem; any table write bumps Hashtbl.Version, so stale
// hits are impossible, and the Manager additionally flushes all caches on
// Install/Upgrade/Rollback.
type icache struct {
	s1, s2 string
	b1, b2 Value

	tbl *Hashtbl
	ver uint64
	key Value
	val Value
	has bool
}

// icAt returns the inline-cache slot idx of mod, or nil when the module
// carries no such site (hand-built objects).
func icAt(mod *LinkedModule, idx int) *icache {
	if idx >= 0 && idx < len(mod.ics) {
		return &mod.ics[idx]
	}
	return nil
}

// run executes a closure with exactly-matching arguments. Fuel and step
// counts are mirrored into locals (registers) for the duration of the
// loop and flushed around every call-out, so the per-instruction cost is a
// register decrement while Machine.Steps stays exact at every point native
// code can observe it.
//
// The loop is two-level: the outer frames loop re-derives the current
// frame, its module and its code stream; the inner loop executes
// instructions. Anything that can change the frame, the tier, or
// reallocate the frame pool (calls, returns, unwinds, deoptimization,
// native call-outs) continues the outer loop.
func (m *Machine) run(clo *Closure, args []Value) (Value, error) {
	frameFloor := m.frameTop
	valFloor := len(m.vals)
	defer m.restore(frameFloor, valFloor)

	if m.frameTop-frameFloor >= m.MaxFrames {
		return nil, &Trap{Msg: "call stack overflow"}
	}
	m.vals = append(m.vals, args...)
	m.pushFrame(clo, len(args), valFloor)

	fuel := m.fuel
	var steps uint64

frames:
	for {
		f := &m.frames[m.frameTop-1]
		chunk := f.clo.Chunk
		mod := f.clo.Mod
		code := chunk.Code
		tier := 0
		if chunk.Quick != nil && !f.naive {
			code = chunk.Quick
			tier = 1
		}
		// Translated tier: enabled per module by the loader (-O2, verified
		// objects only). The translation is the same stream `code` selects
		// here with superblocks spliced in as opTrans superinstructions, so
		// the dispatch below is byte-for-byte the -O1 loop — untranslated
		// instructions cost exactly nothing extra. A deoptimized frame stays
		// on the wire code.
		var blocks []tstep
		if !f.naive && mod.trans != nil {
			if tc := mod.transFor(chunk); tc != nil {
				code = tc.code
				blocks = tc.blocks
				tier = 2
			}
		}
		m.TierEnters[tier]++
		for {
			if f.ip >= len(code) {
				m.fuel, m.Steps = fuel, m.Steps+steps
				return nil, &Trap{Msg: "fell off end of chunk " + chunk.Name}
			}
			ins := &code[f.ip]
			f.ip++
			// Branchless max(W, 1): unquickened instructions carry W == 0.
			w := uint64(ins.W)
			w += (w - 1) >> 63 & 1
			if fuel < w {
				if w == 1 || (chunk.quickSrc == nil && ins.Op != opTrans) {
					m.fuel, m.Steps = 0, m.Steps+steps
					return nil, &Trap{Msg: ErrFuel.Error()}
				}
				// Fuel starvation inside a superinstruction or a superblock:
				// deoptimize so the remaining fuel is consumed one wire
				// instruction at a time, making the exhaustion point
				// identical to -O0. A superblock spliced over wire code (no
				// quickSrc) deoptimizes in place: interior positions are the
				// original instructions, so the wire stream resumes at the
				// same index.
				f.ip--
				if chunk.quickSrc != nil {
					f.ip = int(chunk.quickSrc[f.ip])
				}
				f.naive = true
				if m.Trace != nil {
					m.Trace.TraceDeopt("fuel")
				}
				continue frames
			}
			fuel -= w
			steps += w

			var trapErr *Trap
			switch ins.Op {
			case opNop:
			case opConstInt:
				// Slab-box wide constants: a hot loop pushing a literal
				// outside the small-int cache must not pay one heap cell
				// per push.
				m.vals = append(m.vals, m.boxI(ins.A))
			case opConstStr:
				m.vals = append(m.vals, mod.Obj.StrPool[ins.A])
			case opConstBool:
				m.vals = append(m.vals, boxBool(ins.A != 0))
			case opConstUnit:
				m.vals = append(m.vals, valUnit)
			case opLocalGet:
				m.vals = append(m.vals, m.vals[f.base+int(ins.A)])
			case opLocalSet:
				m.vals[f.base+int(ins.A)] = m.pop(f.opBase)
			case opCaptureGet:
				if int(ins.A) >= len(f.clo.Caps) {
					trapErr = &Trap{Msg: "capture index out of range"}
					break
				}
				m.vals = append(m.vals, f.clo.Caps[ins.A])
			case opGlobalGet:
				m.vals = append(m.vals, mod.Globals[ins.A])
			case opGlobalSet:
				mod.Globals[ins.A] = m.pop(f.opBase)
			case opImportGet:
				m.vals = append(m.vals, mod.Imports[ins.A])
			case opClosure:
				spec := mod.Obj.CapSpecs[ins.B]
				caps := make([]Value, len(spec))
				nc := &Closure{Mod: mod, Chunk: mod.Obj.Chunks[ins.A]}
				for i, c := range spec {
					switch c.Kind {
					case capLocal:
						if f.base+int(c.Idx) >= f.opBase {
							trapErr = &Trap{Msg: "capture refers past frame locals"}
							break
						}
						caps[i] = m.vals[f.base+int(c.Idx)]
					case capCapture:
						if int(c.Idx) >= len(f.clo.Caps) {
							trapErr = &Trap{Msg: "capture refers past closure environment"}
							break
						}
						caps[i] = f.clo.Caps[c.Idx]
					case capSelf:
						caps[i] = nc
					case capFrameSelf:
						caps[i] = f.clo
					}
				}
				if trapErr != nil {
					break
				}
				nc.Caps = caps
				m.AllocBytes += uint64(32 + 16*len(caps))
				m.vals = append(m.vals, nc)
			case opCall, opTailCall:
				n := int(ins.A)
				if len(m.vals)-f.opBase < n+1 {
					trapErr = &Trap{Msg: "operand stack underflow"}
					break
				}
				fnv := m.vals[len(m.vals)-n-1]
				if c, ok := fnv.(*Closure); ok && c.Chunk.NParams == n {
					if ins.Op == opTailCall && len(f.handlers) == 0 {
						// Reuse the current frame slot: slide the arguments
						// down over the old locals and rebind.
						copy(m.vals[f.base:], m.vals[len(m.vals)-n:])
						m.vals = m.vals[:f.base+n]
						for i := n; i < c.Chunk.NLocals; i++ {
							m.vals = append(m.vals, nil)
						}
						f.clo = c
						f.opBase = f.base + c.Chunk.NLocals
						f.ip = 0
						f.naive = false
						f.itag = 0xff
						continue frames
					}
					if m.frameTop-frameFloor >= m.MaxFrames {
						trapErr = &Trap{Msg: "call stack overflow"}
						break
					}
					// The arguments on the arena top become the callee's
					// first locals in place; the callee slot below them is
					// reclaimed when the frame returns (retBase).
					m.pushFrame(c, n, len(m.vals)-n-1)
					continue frames
				}
				if nat, ok := fnv.(*Native); ok && nat.Arity == n {
					// Direct native call: the arguments are passed as a view
					// of the arena top (natives must not retain the slice).
					m.fuel, m.Steps = fuel, m.Steps+steps
					steps = 0
					res, err := nat.Fn(m.nativeCtx(), m.vals[len(m.vals)-n:])
					fuel = m.fuel
					m.vals = m.vals[:len(m.vals)-n-1]
					if err != nil {
						var t *Trap
						if errors.As(err, &t) {
							trapErr = t
						} else {
							m.fuel = fuel
							return nil, err
						}
					} else if ins.Op == opTailCall {
						m.vals = m.vals[:f.retBase]
						m.frameTop--
						if m.frameTop == frameFloor {
							m.fuel, m.Steps = fuel, m.Steps+steps
							return res, nil
						}
						m.vals = append(m.vals, res)
						continue frames
					} else {
						m.vals = append(m.vals, res)
						// The native may have run switchlet code via Ctx,
						// growing the frame pool; re-derive the frame.
						if trapErr == nil {
							continue frames
						}
					}
					break
				}
				// Slow path: partials, arity mismatches, non-functions.
				cargs := m.getArgBuf(n)
				copy(cargs, m.vals[len(m.vals)-n:])
				m.vals = m.vals[:len(m.vals)-n-1]
				m.fuel, m.Steps = fuel, m.Steps+steps
				steps = 0
				res, err := m.apply(fnv, cargs)
				fuel = m.fuel
				m.putArgBuf(cargs)
				if err != nil {
					var t *Trap
					if errors.As(err, &t) {
						trapErr = t
						break
					}
					m.fuel = fuel
					return nil, err
				}
				if ins.Op == opTailCall {
					// Return res from this frame.
					m.vals = m.vals[:f.retBase]
					m.frameTop--
					if m.frameTop == frameFloor {
						m.fuel, m.Steps = fuel, m.Steps+steps
						return res, nil
					}
					m.vals = append(m.vals, res)
					continue frames
				}
				m.vals = append(m.vals, res)
				continue frames
			case opReturn:
				res := m.pop(f.opBase)
				m.vals = m.vals[:f.retBase]
				m.frameTop--
				if m.frameTop == frameFloor {
					m.fuel, m.Steps = fuel, m.Steps+steps
					return res, nil
				}
				m.vals = append(m.vals, res)
				continue frames
			case opJump:
				f.ip += int(ins.A)
			case opJumpIfFalse:
				v := m.pop(f.opBase)
				b, ok := v.(bool)
				if !ok {
					trapErr = &Trap{Msg: "condition is not a boolean"}
					break
				}
				if !b {
					f.ip += int(ins.A)
				}
			case opJumpIfTrue:
				v := m.pop(f.opBase)
				b, ok := v.(bool)
				if !ok {
					trapErr = &Trap{Msg: "condition is not a boolean"}
					break
				}
				if b {
					f.ip += int(ins.A)
				}
			case opPop:
				m.pop(f.opBase)
			case opAdd, opSub, opMul, opDiv, opMod:
				b, ok1 := m.pop(f.opBase).(int64)
				a, ok2 := m.pop(f.opBase).(int64)
				if !ok1 || !ok2 {
					trapErr = &Trap{Msg: "arithmetic on non-integer"}
					break
				}
				var r int64
				switch ins.Op {
				case opAdd:
					r = a + b
				case opSub:
					r = a - b
				case opMul:
					r = a * b
				case opDiv:
					if b == 0 {
						trapErr = &Trap{Msg: "division by zero"}
					} else {
						r = a / b
					}
				case opMod:
					if b == 0 {
						trapErr = &Trap{Msg: "division by zero"}
					} else {
						r = a % b
					}
				}
				if trapErr == nil {
					m.vals = append(m.vals, m.boxI(r))
				}
			case opConcat:
				b, ok1 := m.pop(f.opBase).(string)
				a, ok2 := m.pop(f.opBase).(string)
				if !ok1 || !ok2 {
					trapErr = &Trap{Msg: "concatenation of non-strings"}
					break
				}
				m.AllocBytes += uint64(len(a) + len(b))
				m.vals = append(m.vals, a+b)
			case opEq, opNe:
				b := m.pop(f.opBase)
				a := m.pop(f.opBase)
				eq, err := valueEq(a, b)
				if err != nil {
					trapErr = err.(*Trap)
					break
				}
				if ins.Op == opNe {
					eq = !eq
				}
				m.vals = append(m.vals, boxBool(eq))
			case opLt, opLe, opGt, opGe:
				b := m.pop(f.opBase)
				a := m.pop(f.opBase)
				c, err := valueCmp(a, b)
				if err != nil {
					trapErr = err.(*Trap)
					break
				}
				var r bool
				switch ins.Op {
				case opLt:
					r = c < 0
				case opLe:
					r = c <= 0
				case opGt:
					r = c > 0
				case opGe:
					r = c >= 0
				}
				m.vals = append(m.vals, boxBool(r))
			case opNot:
				v, ok := m.pop(f.opBase).(bool)
				if !ok {
					trapErr = &Trap{Msg: "not of non-boolean"}
					break
				}
				m.vals = append(m.vals, boxBool(!v))
			case opNeg:
				v, ok := m.pop(f.opBase).(int64)
				if !ok {
					trapErr = &Trap{Msg: "negation of non-integer"}
					break
				}
				m.vals = append(m.vals, m.boxI(-v))
			case opTuple:
				n := int(ins.A)
				if len(m.vals)-f.opBase < n {
					trapErr = &Trap{Msg: "operand stack underflow"}
					break
				}
				if m.slabOff+n > len(m.tupleSlab) {
					sz := tupleSlabSize
					if n > sz {
						sz = n
					}
					m.tupleSlab = make([]Value, sz)
					m.slabOff = 0
				}
				t := Tuple(m.tupleSlab[m.slabOff : m.slabOff+n : m.slabOff+n])
				m.slabOff += n
				copy(t, m.vals[len(m.vals)-n:])
				m.vals = m.vals[:len(m.vals)-n]
				m.AllocBytes += uint64(16 * n)
				m.vals = append(m.vals, m.boxTuple(t))
			case opTupleGet:
				t, ok := m.pop(f.opBase).(Tuple)
				if !ok || int(ins.A) >= len(t) {
					trapErr = &Trap{Msg: "tuple projection error"}
					break
				}
				m.vals = append(m.vals, t[ins.A])
			case opRaise:
				msg, ok := m.pop(f.opBase).(string)
				if !ok {
					msg = "raise"
				}
				trapErr = &Trap{Msg: msg}
			case opPushHandler:
				f.handlers = append(f.handlers, handler{sp: len(m.vals), target: f.ip + int(ins.A), naive: f.naive})
			case opPopHandler:
				if n := len(f.handlers); n > 0 {
					f.handlers = f.handlers[:n-1]
				}
			case opRefGet:
				r, ok := m.pop(f.opBase).(*Ref)
				if !ok {
					trapErr = &Trap{Msg: "dereference of non-reference"}
					break
				}
				m.vals = append(m.vals, r.V)
			case opRefSet:
				v := m.pop(f.opBase)
				r, ok := m.pop(f.opBase).(*Ref)
				if !ok {
					trapErr = &Trap{Msg: "assignment to non-reference"}
					break
				}
				r.V = v
				m.vals = append(m.vals, valUnit)

			// ---- quickened opcodes (never on the wire; see optimize.go) ----

			case qNop:
				// A fused pure-push/pop pair; the weight was charged above.
			case qConst:
				m.vals = append(m.vals, m.boxI(ins.A))
			case qConst2:
				m.vals = append(m.vals, m.boxI(ins.A), m.boxI(int64(ins.B)))
			case qGetGet:
				m.vals = append(m.vals, m.vals[f.base+int(ins.A)], m.vals[f.base+int(ins.B)])
			case qCmpJf:
				b := m.pop(f.opBase)
				a := m.pop(f.opBase)
				take, err := cmpBranch(a, b, byte(ins.B))
				if err != nil {
					// At -O0 the compare consumed its step and the branch
					// never ran; give back the branch's share.
					fuel++
					steps--
					trapErr = err
					break
				}
				if !take {
					f.ip += int(ins.A)
				}
			case qGGCmpJf:
				bb := uint32(ins.B)
				a := m.vals[f.base+int(bb&0xfff)]
				b := m.vals[f.base+int((bb>>12)&0xfff)]
				take, err := cmpBranch(a, b, byte(bb>>24))
				if err != nil {
					fuel++
					steps--
					trapErr = err
					break
				}
				if !take {
					f.ip += int(ins.A)
				}
			case qIncL:
				slot := f.base + int(ins.A)
				v, ok := m.vals[slot].(int64)
				if !ok {
					// -O0 ran get/const/add (3 steps) before trapping; the
					// final set never executed.
					fuel++
					steps--
					trapErr = &Trap{Msg: "arithmetic on non-integer"}
					break
				}
				m.vals[slot] = m.boxI(v + int64(ins.B))
			case qGetFieldSet:
				bb := uint32(ins.B)
				t, ok := m.vals[f.base+int(ins.A)].(Tuple)
				idx := int(bb & 0xff)
				if !ok || idx >= len(t) {
					fuel++
					steps--
					trapErr = &Trap{Msg: "tuple projection error"}
					break
				}
				m.vals[f.base+int(bb>>8)] = t[idx]
			case qISet:
				v := m.pop(f.opBase)
				m.vals[f.base+int(ins.A)] = v
				if iv, ok := v.(int64); ok {
					f.iregs[ins.B] = iv
					f.itag &^= 1 << uint(ins.B)
				} else {
					f.itag |= 1 << uint(ins.B)
				}
			case qIIncL:
				reg := uint(ins.A >> 16)
				if f.itag&(1<<reg) != 0 {
					if chunk.quickSrc == nil {
						trapErr = &Trap{Msg: "untagged register invalid with no deopt map"}
						break
					}
					fuel += w
					steps -= w
					f.ip = int(chunk.quickSrc[f.ip-1])
					f.naive = true
					if m.Trace != nil {
						m.Trace.TraceDeopt("untagged-reg")
					}
					continue frames
				}
				nv := f.iregs[reg] + int64(ins.B)
				f.iregs[reg] = nv
				m.vals[f.base+int(ins.A&0xffff)] = m.boxI(nv)
			case qIILeJf:
				bb := uint32(ins.B)
				ri := uint((bb >> 12) & 0x3f)
				rh := uint((bb >> 18) & 0x3f)
				if f.itag&(1<<ri|1<<rh) != 0 {
					if chunk.quickSrc == nil {
						trapErr = &Trap{Msg: "untagged register invalid with no deopt map"}
						break
					}
					fuel += w
					steps -= w
					f.ip = int(chunk.quickSrc[f.ip-1])
					f.naive = true
					if m.Trace != nil {
						m.Trace.TraceDeopt("untagged-reg")
					}
					continue frames
				}
				if f.iregs[ri] > f.iregs[rh] {
					f.ip += int(ins.A)
				}
			case qStrSub, qStrGet, qHtblFind, qHtblMem, qHtblAdd:
				n := int(ins.A & 0xff)
				if len(m.vals)-f.opBase < n+1 {
					trapErr = &Trap{Msg: "operand stack underflow"}
					break
				}
				fnv := m.vals[len(m.vals)-n-1]
				var wantTag, wantN int
				switch ins.Op {
				case qStrSub:
					wantTag, wantN = TagStrSub, 3
				case qStrGet:
					wantTag, wantN = TagStrGet, 2
				case qHtblFind:
					wantTag, wantN = TagHtblFind, 2
				case qHtblMem:
					wantTag, wantN = TagHtblMem, 2
				default:
					wantTag, wantN = TagHtblAdd, 3
				}
				nat, ok := fnv.(*Native)
				if !ok || n != wantN || nat.Arity != n || nat.Tag != wantTag {
					// Mispredicted callee: replay as the generic wire call.
					if chunk.quickSrc == nil {
						trapErr = &Trap{Msg: "specialized call mispredicted with no deopt map"}
						break
					}
					fuel += w
					steps -= w
					f.ip = int(chunk.quickSrc[f.ip-1])
					f.naive = true
					if m.Trace != nil {
						m.Trace.TraceDeopt("call-mispredict")
					}
					continue frames
				}
				args := m.vals[len(m.vals)-n:]
				var res Value
				var callErr *Trap
				switch ins.Op {
				case qStrSub:
					if s, ok := args[0].(string); !ok {
						callErr = &Trap{Msg: "argument 0: expected string"}
					} else if pos, ok := args[1].(int64); !ok {
						callErr = &Trap{Msg: "argument 1: expected int"}
					} else if ln, ok := args[2].(int64); !ok {
						callErr = &Trap{Msg: "argument 2: expected int"}
					} else if pos < 0 || ln < 0 || pos+ln > int64(len(s)) {
						callErr = &Trap{Msg: "String.sub: out of bounds"}
					} else {
						m.AllocBytes += uint64(ln)
						sub := s[pos : pos+ln]
						if ic := icAt(mod, int(ins.A>>8)); ic != nil {
							if ic.b1 != nil && ic.s1 == sub {
								res = ic.b1
							} else if ic.b2 != nil && ic.s2 == sub {
								ic.s1, ic.s2 = ic.s2, ic.s1
								ic.b1, ic.b2 = ic.b2, ic.b1
								res = ic.b1
							} else {
								res = sub
								ic.s2, ic.b2 = ic.s1, ic.b1
								ic.s1, ic.b1 = sub, res
							}
						} else {
							res = sub
						}
					}
				case qStrGet:
					if s, ok := args[0].(string); !ok {
						callErr = &Trap{Msg: "argument 0: expected string"}
					} else if i, ok := args[1].(int64); !ok {
						callErr = &Trap{Msg: "argument 1: expected int"}
					} else if i < 0 || i >= int64(len(s)) {
						callErr = &Trap{Msg: "String.get: index out of bounds"}
					} else {
						res = boxInt(int64(s[i]))
					}
				case qHtblFind, qHtblMem:
					t, ok := args[0].(*Hashtbl)
					if !ok {
						callErr = &Trap{Msg: "argument 0: expected hashtbl"}
						break
					}
					k, kerr := hashKey(args[1])
					if kerr != nil {
						callErr = kerr.(*Trap)
						break
					}
					var v Value
					var has bool
					if ic := icAt(mod, int(ins.A>>8)); ic != nil {
						if ic.tbl == t && ic.ver == t.Version && ic.key == k {
							v, has = ic.val, ic.has
						} else {
							v, has = t.M[k]
							ic.tbl, ic.ver, ic.key, ic.val, ic.has = t, t.Version, k, v, has
						}
					} else {
						v, has = t.M[k]
					}
					if ins.Op == qHtblFind {
						if has {
							res = v
						} else {
							callErr = &Trap{Msg: "Not_found"}
						}
					} else {
						res = boxBool(has)
					}
				case qHtblAdd:
					t, ok := args[0].(*Hashtbl)
					if !ok {
						callErr = &Trap{Msg: "argument 0: expected hashtbl"}
						break
					}
					k, kerr := hashKey(args[1])
					if kerr != nil {
						callErr = kerr.(*Trap)
						break
					}
					m.AllocBytes += 32
					t.Set(k, args[2])
					res = valUnit
				}
				// Match the wire native path: truncate the callee and
				// arguments before inspecting the error.
				m.vals = m.vals[:len(m.vals)-n-1]
				if callErr != nil {
					trapErr = callErr
					break
				}
				m.vals = append(m.vals, res)

			case opTrans:
				// Translated superblock (-O2 only; the opcode exists solely
				// in per-module trans streams — DecodeObject and Verify
				// reject it from the wire). The block's whole fuel weight was
				// charged above (ins.W) and f.ip already points past the
				// block's first instruction; the fused closure runs the run's
				// members back-to-back. On failure it leaves f.ip at the
				// failing instruction's successor and packs the unexecuted
				// refund above the status bits (see makeBlock).
				st := blocks[ins.A](m, f)
				if st != tsOK {
					refund := uint64(st >> tsRefundShift)
					fuel += refund
					steps -= refund
					if st&(1<<tsRefundShift-1) == tsDeopt {
						// Guard failure: replay on the wire code, exactly
						// like a quickened-interpreter deopt. tsDeopt only
						// arises from quickened members, so quickSrc is
						// present.
						f.ip = int(chunk.quickSrc[f.ip-1])
						f.naive = true
						if m.Trace != nil {
							m.Trace.TraceDeopt("translated-guard")
						}
						continue frames
					}
					trapErr = m.transTrap
					m.transTrap = nil
				}

			default:
				m.fuel, m.Steps = fuel, m.Steps+steps
				return nil, &Trap{Msg: fmt.Sprintf("bad opcode %d", ins.Op)}
			}

			if trapErr != nil {
				if !m.unwind(frameFloor) {
					m.fuel, m.Steps = fuel, m.Steps+steps
					return nil, trapErr
				}
				continue frames
			}
		}
	}
}

// cmpBranch evaluates one fused compare-and-branch: it returns whether the
// comparison held (branch falls through) using the same valueEq/valueCmp
// split — and therefore the same trap behavior — as the unfused opcodes.
func cmpBranch(a, b Value, cmpOp byte) (bool, *Trap) {
	if cmpOp == opEq || cmpOp == opNe {
		eq, err := valueEq(a, b)
		if err != nil {
			return false, err.(*Trap)
		}
		return eq != (cmpOp == opNe), nil
	}
	c, err := valueCmp(a, b)
	if err != nil {
		return false, err.(*Trap)
	}
	switch cmpOp {
	case opLt:
		return c < 0, nil
	case opLe:
		return c <= 0, nil
	case opGt:
		return c > 0, nil
	case opGe:
		return c >= 0, nil
	}
	return false, &Trap{Msg: fmt.Sprintf("bad comparison opcode %d", cmpOp)}
}

// pop removes and returns the top of the current operand stack. The
// compiler guarantees balance; Verify guards slot indices; a nil fallback
// keeps a corrupted object from panicking the host.
func (m *Machine) pop(opBase int) Value {
	if len(m.vals) <= opBase {
		return nil
	}
	v := m.vals[len(m.vals)-1]
	m.vals = m.vals[:len(m.vals)-1]
	return v
}

// LinkedModule is a loaded, linked switchlet: its object code, resolved
// import values and global slots.
type LinkedModule struct {
	Obj     *Object
	Export  *Signature
	Globals []Value
	Imports []Value

	// ics holds the module's inline-cache sites (Object.NICSites of them),
	// written by the quickened opcodes and flushed by the Manager around
	// Install/Upgrade/Rollback.
	ics []icache

	// trans holds the translated tier: per chunk, a spliced code stream
	// plus the superblock closures its opTrans instructions dispatch to
	// (see translate.go) — built lazily once a chunk runs hot. nil (the
	// whole slice) means the loader did not enable the tier for this
	// module; a nil entry means not yet translated; an entry with no
	// blocks means the translator refused the chunk. transHot counts frame
	// entries toward the hotness threshold.
	trans    []*chunkTrans
	transHot []uint16
}

// FlushICs clears every inline-cache site of the module.
func (lm *LinkedModule) FlushICs() {
	for i := range lm.ics {
		lm.ics[i] = icache{}
	}
}

// LiveICs reports how many of the module's inline-cache sites currently
// hold a cached entry — introspection for tests and telemetry; the count
// has no semantic weight.
func (lm *LinkedModule) LiveICs() int {
	n := 0
	for i := range lm.ics {
		ic := &lm.ics[i]
		if ic.b1 != nil || ic.b2 != nil || ic.tbl != nil {
			n++
		}
	}
	return n
}

// Global returns the value of an exported binding.
func (lm *LinkedModule) Global(name string) (Value, bool) {
	slot, ok := lm.Obj.GlobalNames[name]
	if !ok {
		return nil, false
	}
	return lm.Globals[slot], true
}
