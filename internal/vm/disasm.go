package vm

import (
	"fmt"
	"strings"
)

// Disassemble renders an object file in a human-readable form: header,
// imports with digests, export signature, and each chunk's instructions.
// cmd/swc uses it; it is also invaluable when debugging switchlets.
func Disassemble(o *Object) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %s\n", o.ModName)
	fmt.Fprintf(&sb, "globals: %d, init chunk: %d\n", o.NGlobals, o.Init)
	if len(o.Imports) > 0 {
		sb.WriteString("imports:\n")
		for i, im := range o.Imports {
			fmt.Fprintf(&sb, "  [%d] %s.%s (sig %x)\n", i, im.Module, strings.Join(im.Names, ","), im.Digest[:4])
		}
	}
	fmt.Fprintf(&sb, "export digest: %x\n", o.ExportDigest[:])
	sb.WriteString("export signature:\n")
	for _, ln := range strings.Split(strings.TrimRight(o.ExportText, "\n"), "\n") {
		fmt.Fprintf(&sb, "  %s\n", ln)
	}
	for ci, c := range o.Chunks {
		fmt.Fprintf(&sb, "\nchunk %d: %s (params=%d locals=%d)\n", ci, c.Name, c.NParams, c.NLocals)
		for pc, ins := range c.Code {
			sb.WriteString(formatInstr(o, c, pc, ins))
			sb.WriteByte('\n')
		}
	}
	if len(o.CapSpecs) > 0 {
		sb.WriteString("\ncapture specs:\n")
		for i, spec := range o.CapSpecs {
			fmt.Fprintf(&sb, "  [%d]", i)
			for _, cr := range spec {
				switch cr.Kind {
				case capLocal:
					fmt.Fprintf(&sb, " local:%d", cr.Idx)
				case capCapture:
					fmt.Fprintf(&sb, " capture:%d", cr.Idx)
				case capSelf:
					sb.WriteString(" self")
				case capFrameSelf:
					sb.WriteString(" frame-self")
				}
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

func formatInstr(o *Object, c *Chunk, pc int, ins Instr) string {
	name := fmt.Sprintf("op%d", ins.Op)
	if int(ins.Op) < len(opNames) {
		name = opNames[ins.Op]
	}
	out := fmt.Sprintf("  %4d  %-14s", pc, name)
	switch ins.Op {
	case opConstInt:
		out += fmt.Sprintf(" %d", ins.A)
	case opConstBool:
		out += fmt.Sprintf(" %t", ins.A != 0)
	case opConstStr:
		if int(ins.A) < len(o.StrPool) {
			s := o.StrPool[ins.A]
			if len(s) > 24 {
				s = s[:24] + "..."
			}
			out += fmt.Sprintf(" %q", s)
		}
	case opLocalGet, opLocalSet, opCaptureGet, opGlobalGet, opGlobalSet, opImportGet:
		out += fmt.Sprintf(" %d", ins.A)
	case opClosure:
		out += fmt.Sprintf(" chunk=%d caps=%d", ins.A, ins.B)
	case opCall, opTailCall, opTuple, opTupleGet:
		out += fmt.Sprintf(" %d", ins.A)
	case opJump, opJumpIfFalse, opJumpIfTrue, opPushHandler:
		out += fmt.Sprintf(" -> %d", pc+1+int(ins.A))
	}
	return out
}

// InstrCount returns the total instruction count across all chunks; the
// swc tool reports it as a size/complexity measure.
func InstrCount(o *Object) int {
	n := 0
	for _, c := range o.Chunks {
		n += len(c.Code)
	}
	return n
}
