package vm

import (
	"fmt"
	"strings"
)

// Disassemble renders an object file in a human-readable form: header,
// imports with digests, export signature, and each chunk's instructions.
// When a chunk carries quickened code (the object went through
// OptimizeObject — e.g. swc -d -O1), the quickened form is printed after
// the wire form, with each superinstruction's step weight and the wire pc
// it covers, so the two listings can be read side by side.
// cmd/swc uses it; it is also invaluable when debugging switchlets.
func Disassemble(o *Object) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %s\n", o.ModName)
	fmt.Fprintf(&sb, "globals: %d, init chunk: %d\n", o.NGlobals, o.Init)
	if len(o.Imports) > 0 {
		sb.WriteString("imports:\n")
		for i, im := range o.Imports {
			fmt.Fprintf(&sb, "  [%d] %s.%s (sig %x)\n", i, im.Module, strings.Join(im.Names, ","), im.Digest[:4])
		}
	}
	fmt.Fprintf(&sb, "export digest: %x\n", o.ExportDigest[:])
	sb.WriteString("export signature:\n")
	for _, ln := range strings.Split(strings.TrimRight(o.ExportText, "\n"), "\n") {
		fmt.Fprintf(&sb, "  %s\n", ln)
	}
	for ci, c := range o.Chunks {
		fmt.Fprintf(&sb, "\nchunk %d: %s (params=%d locals=%d)\n", ci, c.Name, c.NParams, c.NLocals)
		for pc, ins := range c.Code {
			sb.WriteString(formatInstr(o, pc, ins))
			sb.WriteByte('\n')
		}
		if c.Quick != nil {
			fmt.Fprintf(&sb, "  quickened (%d -> %d instructions", len(c.Code), len(c.Quick))
			if c.NInts > 0 {
				fmt.Fprintf(&sb, ", %d untagged int regs", c.NInts)
			}
			sb.WriteString("):\n")
			for pc, ins := range c.Quick {
				sb.WriteString(formatQuick(o, c, pc, ins))
				sb.WriteByte('\n')
			}
		}
	}
	if len(o.CapSpecs) > 0 {
		sb.WriteString("\ncapture specs:\n")
		for i, spec := range o.CapSpecs {
			fmt.Fprintf(&sb, "  [%d]", i)
			for _, cr := range spec {
				switch cr.Kind {
				case capLocal:
					fmt.Fprintf(&sb, " local:%d", cr.Idx)
				case capCapture:
					fmt.Fprintf(&sb, " capture:%d", cr.Idx)
				case capSelf:
					sb.WriteString(" self")
				case capFrameSelf:
					sb.WriteString(" frame-self")
				}
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// formatInstr renders one wire instruction. Opcodes outside the known
// range (possible when dumping a hand-built or corrupted chunk before
// Verify has rejected it) fall back to a raw operand dump rather than
// indexing any table, so the disassembler never panics on bad input.
func formatInstr(o *Object, pc int, ins Instr) string {
	out := fmt.Sprintf("  %4d  %-14s", pc, opName(ins.Op))
	switch ins.Op {
	case opConstInt:
		out += fmt.Sprintf(" %d", ins.A)
	case opConstBool:
		out += fmt.Sprintf(" %t", ins.A != 0)
	case opConstStr:
		out += strPoolRef(o, ins.A)
	case opLocalGet, opLocalSet, opCaptureGet, opGlobalGet, opGlobalSet, opImportGet:
		out += fmt.Sprintf(" %d", ins.A)
	case opClosure:
		out += fmt.Sprintf(" chunk=%d caps=%d", ins.A, ins.B)
	case opCall, opTailCall, opTuple, opTupleGet:
		out += fmt.Sprintf(" %d", ins.A)
	case opJump, opJumpIfFalse, opJumpIfTrue, opPushHandler:
		out += fmt.Sprintf(" -> %d", pc+1+int(ins.A))
	default:
		if ins.Op >= opMax {
			out += rawOperands(ins)
		}
	}
	return out
}

// formatQuick renders one quickened instruction with its weight and the
// wire pc it deoptimizes to. Unknown opcodes (a future quickened op this
// build does not know, or garbage in a hand-built chunk) get the same
// width-safe raw dump as formatInstr.
func formatQuick(o *Object, c *Chunk, pc int, ins Instr) string {
	src := ""
	if pc < len(c.quickSrc) {
		src = fmt.Sprintf(" ; wire %d", c.quickSrc[pc])
	}
	w := ins.W
	if w == 0 {
		w = 1
	}
	out := fmt.Sprintf("  %4d  w=%-2d %-14s", pc, w, opName(ins.Op))
	switch ins.Op {
	case qNop:
		// weight only
	case qConst:
		out += fmt.Sprintf(" %d", ins.A)
	case qConst2:
		out += fmt.Sprintf(" %d, %d", ins.A, ins.B)
	case qGetGet:
		out += fmt.Sprintf(" locals %d, %d", ins.A, ins.B)
	case qCmpJf:
		out += fmt.Sprintf(" %s -> %d", opName(byte(ins.B)), pc+1+int(ins.A))
	case qGGCmpJf:
		out += fmt.Sprintf(" locals %d, %d %s -> %d",
			ins.B&0xfff, (ins.B>>12)&0xfff, opName(byte(ins.B>>24)), pc+1+int(ins.A))
	case qIncL:
		out += fmt.Sprintf(" local %d += %d", ins.A, ins.B)
	case qGetFieldSet:
		out += fmt.Sprintf(" local %d = local %d.%d", (ins.B>>8)&0xffffff, ins.A, ins.B&0xff)
	case qStrSub, qHtblFind, qHtblMem:
		out += fmt.Sprintf(" argc=%d ic=%d", ins.A&0xff, ins.A>>8)
	case qStrGet, qHtblAdd:
		out += fmt.Sprintf(" argc=%d", ins.A)
	case qISet:
		out += fmt.Sprintf(" local %d, ireg %d", ins.A, ins.B)
	case qIIncL:
		out += fmt.Sprintf(" local %d (ireg %d) += %d", ins.A&0xffff, ins.A>>16, ins.B)
	case qIILeJf:
		out += fmt.Sprintf(" i=local %d (ireg %d) hi=local %d (ireg %d) -> %d",
			ins.B&0x3f, (ins.B>>12)&0x3f, (ins.B>>6)&0x3f, (ins.B>>18)&0x3f, pc+1+int(ins.A))
	default:
		if ins.Op < opMax {
			// Unfused wire instruction carried over verbatim.
			return formatInstr(o, pc, ins) + src
		}
		out += rawOperands(ins)
	}
	return out + src
}

// strPoolRef renders a string-pool operand, tolerating out-of-range
// indices (truncated or hostile objects dumped before verification).
func strPoolRef(o *Object, idx int64) string {
	if idx < 0 || idx >= int64(len(o.StrPool)) {
		return fmt.Sprintf(" str#%d (out of range, pool has %d)", idx, len(o.StrPool))
	}
	s := o.StrPool[idx]
	if len(s) > 24 {
		s = s[:24] + "..."
	}
	return fmt.Sprintf(" %q", s)
}

func rawOperands(ins Instr) string {
	return fmt.Sprintf(" A=%d B=%d (unknown opcode)", ins.A, ins.B)
}

// InstrCount returns the total instruction count across all chunks; the
// swc tool reports it as a size/complexity measure.
func InstrCount(o *Object) int {
	n := 0
	for _, c := range o.Chunks {
		n += len(c.Code)
	}
	return n
}
