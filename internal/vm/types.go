package vm

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Type is a swl type: a constructor application, a function type, or a
// unification variable. Types are pure data; mutation happens only through
// TVar.Ref during inference.
type Type interface {
	typ()
}

// TCon is a type constructor application: int, bool, string, unit,
// (t) ref, (k, v) hashtbl, (t1 * t2 * ...) tuple.
type TCon struct {
	Name string
	Args []Type
}

// TFun is a single-argument function type; multi-argument functions are
// curried chains.
type TFun struct {
	Arg, Ret Type
}

// TVar is a unification variable. Ref non-nil means the variable is bound.
// Level implements let-generalization (Rémy-style levels).
type TVar struct {
	ID    int
	Level int
	Ref   Type
	// Generic marks instantiable quantified variables inside a Scheme.
	Generic bool
}

func (*TCon) typ() {}
func (*TFun) typ() {}
func (*TVar) typ() {}

// Primitive types, shared.
var (
	TInt    = &TCon{Name: "int"}
	TBool   = &TCon{Name: "bool"}
	TString = &TCon{Name: "string"}
	TUnit   = &TCon{Name: "unit"}
)

// TRef builds the reference type (t) ref.
func TRef(t Type) Type { return &TCon{Name: "ref", Args: []Type{t}} }

// THashtbl builds the (k, v) hashtbl type.
func THashtbl(k, v Type) Type { return &TCon{Name: "hashtbl", Args: []Type{k, v}} }

// TTuple builds a tuple type.
func TTuple(elems ...Type) Type { return &TCon{Name: "tuple", Args: elems} }

// TArrow builds a curried function type from args and result.
func TArrow(ret Type, args ...Type) Type {
	t := ret
	for i := len(args) - 1; i >= 0; i-- {
		t = &TFun{Arg: args[i], Ret: t}
	}
	return t
}

// prune follows bound variable links and returns the representative type.
func prune(t Type) Type {
	for {
		v, ok := t.(*TVar)
		if !ok || v.Ref == nil {
			return t
		}
		t = v.Ref
	}
}

// Scheme is a (possibly) polymorphic type: quantified variables are the
// TVars with Generic set reachable from Body.
type Scheme struct {
	Body Type
}

// MonoScheme wraps a monomorphic type.
func MonoScheme(t Type) *Scheme { return &Scheme{Body: t} }

// TypeString renders t canonically: full right-associated arrows, tuple
// elements joined by " * ", constructor arguments in parentheses, and
// unification/quantified variables named 'a, 'b, ... in order of first
// appearance. Two types render equal iff they are equal up to variable
// renaming, which is what the signature digest requires.
func TypeString(t Type) string {
	names := map[*TVar]string{}
	var sb strings.Builder
	writeType(&sb, t, names, false)
	return sb.String()
}

func writeType(sb *strings.Builder, t Type, names map[*TVar]string, arg bool) {
	t = prune(t)
	switch v := t.(type) {
	case *TVar:
		n, ok := names[v]
		if !ok {
			n = "'" + string(rune('a'+len(names)%26))
			if len(names) >= 26 {
				n = fmt.Sprintf("'t%d", len(names))
			}
			names[v] = n
		}
		sb.WriteString(n)
	case *TFun:
		if arg {
			sb.WriteByte('(')
		}
		writeType(sb, v.Arg, names, true)
		sb.WriteString(" -> ")
		writeType(sb, v.Ret, names, false)
		if arg {
			sb.WriteByte(')')
		}
	case *TCon:
		switch {
		case v.Name == "tuple":
			if arg {
				sb.WriteByte('(')
			}
			for i, e := range v.Args {
				if i > 0 {
					sb.WriteString(" * ")
				}
				writeType(sb, e, names, true)
			}
			if arg {
				sb.WriteByte(')')
			}
		case len(v.Args) == 0:
			sb.WriteString(v.Name)
		default:
			sb.WriteByte('(')
			for i, e := range v.Args {
				if i > 0 {
					sb.WriteString(", ")
				}
				writeType(sb, e, names, false)
			}
			sb.WriteString(") ")
			sb.WriteString(v.Name)
		}
	}
}

// ParseType parses the ML-ish type notation used to declare builtin module
// signatures, e.g.:
//
//	"int -> string"
//	"'a -> ('a) ref"
//	"('k, 'v) hashtbl -> 'k -> 'v"
//	"('a * 'b) -> 'a"
//	"(string -> int -> unit) -> unit"
//
// Postfix constructor application is supported: "'a ref", "int ref ref",
// "('k,'v) hashtbl". Variables with the same name denote the same
// quantified variable.
func ParseType(s string) (*Scheme, error) {
	p := &typeParser{src: s, vars: map[string]*TVar{}}
	t, err := p.parseArrow()
	if err != nil {
		return nil, err
	}
	p.skip()
	if p.off != len(p.src) {
		return nil, fmt.Errorf("type %q: trailing input at %d", s, p.off)
	}
	return &Scheme{Body: t}, nil
}

// MustParseType panics on error; for static builtin tables.
func MustParseType(s string) *Scheme {
	sch, err := ParseType(s)
	if err != nil {
		panic(err)
	}
	return sch
}

type typeParser struct {
	src    string
	off    int
	vars   map[string]*TVar
	nextID int
}

func (p *typeParser) skip() {
	for p.off < len(p.src) && (p.src[p.off] == ' ' || p.src[p.off] == '\t') {
		p.off++
	}
}

func (p *typeParser) peek() byte {
	if p.off >= len(p.src) {
		return 0
	}
	return p.src[p.off]
}

func (p *typeParser) ident() string {
	start := p.off
	for p.off < len(p.src) && (isLower(p.src[p.off]) || isDigit(p.src[p.off]) || p.src[p.off] == '_') {
		p.off++
	}
	return p.src[start:p.off]
}

func (p *typeParser) parseArrow() (Type, error) {
	l, err := p.parseTuple()
	if err != nil {
		return nil, err
	}
	p.skip()
	if strings.HasPrefix(p.src[p.off:], "->") {
		p.off += 2
		r, err := p.parseArrow()
		if err != nil {
			return nil, err
		}
		return &TFun{Arg: l, Ret: r}, nil
	}
	return l, nil
}

func (p *typeParser) parseTuple() (Type, error) {
	l, err := p.parsePostfix()
	if err != nil {
		return nil, err
	}
	p.skip()
	if p.peek() != '*' {
		return l, nil
	}
	elems := []Type{l}
	for {
		p.skip()
		if p.peek() != '*' {
			break
		}
		p.off++
		e, err := p.parsePostfix()
		if err != nil {
			return nil, err
		}
		elems = append(elems, e)
	}
	return TTuple(elems...), nil
}

func (p *typeParser) parsePostfix() (Type, error) {
	args, err := p.parseAtomOrGroup()
	if err != nil {
		return nil, err
	}
	for {
		p.skip()
		if !isLower(p.peek()) {
			break
		}
		save := p.off
		name := p.ident()
		// A lone identifier here is a postfix constructor only if it is
		// a known constructor name; "->"-free juxtaposition otherwise is
		// an error anyway.
		switch name {
		case "ref", "hashtbl", "list":
			args = []Type{&TCon{Name: name, Args: args}}
		default:
			p.off = save
			return nil, fmt.Errorf("type %q: unknown postfix constructor %q", p.src, name)
		}
	}
	if len(args) != 1 {
		return nil, fmt.Errorf("type %q: constructor arguments without constructor", p.src)
	}
	return args[0], nil
}

// parseAtomOrGroup returns one or more types: a parenthesized group
// (t1, t2) yields multiple, awaiting a postfix constructor.
func (p *typeParser) parseAtomOrGroup() ([]Type, error) {
	p.skip()
	c := p.peek()
	switch {
	case c == '\'':
		p.off++
		name := p.ident()
		if name == "" {
			return nil, fmt.Errorf("type %q: empty type variable", p.src)
		}
		v, ok := p.vars[name]
		if !ok {
			p.nextID++
			v = &TVar{ID: -p.nextID, Generic: true}
			p.vars[name] = v
		}
		return []Type{v}, nil
	case c == '(':
		p.off++
		var group []Type
		for {
			t, err := p.parseArrow()
			if err != nil {
				return nil, err
			}
			group = append(group, t)
			p.skip()
			if p.peek() == ',' {
				p.off++
				continue
			}
			break
		}
		if p.peek() != ')' {
			return nil, fmt.Errorf("type %q: expected ')' at %d", p.src, p.off)
		}
		p.off++
		return group, nil
	case isLower(c):
		name := p.ident()
		switch name {
		case "int":
			return []Type{TInt}, nil
		case "bool":
			return []Type{TBool}, nil
		case "string":
			return []Type{TString}, nil
		case "unit":
			return []Type{TUnit}, nil
		default:
			return nil, fmt.Errorf("type %q: unknown type %q", p.src, name)
		}
	}
	return nil, fmt.Errorf("type %q: unexpected character at %d", p.src, p.off)
}

// Signature is a module interface: an ordered set of named type schemes.
// The paper's module thinning consists of constructing a Signature that
// lists only the safe subset of a module's bindings.
type Signature struct {
	Module string
	names  []string
	items  map[string]*Scheme

	// digestOnce/digest cache SigDigest: import resolution digests the
	// provider signature on every load, and host-unit signatures are
	// shared process-wide, so each distinct signature pays for its
	// canonicalization once. Signatures are immutable once in use.
	digestOnce sync.Once
	digest     [16]byte
}

// NewSignature creates an empty signature for a module.
func NewSignature(module string) *Signature {
	return &Signature{Module: module, items: map[string]*Scheme{}}
}

// Add declares name : scheme, replacing an existing declaration.
func (s *Signature) Add(name string, sch *Scheme) {
	if _, dup := s.items[name]; !dup {
		s.names = append(s.names, name)
	}
	s.items[name] = sch
}

// Lookup returns the scheme for name.
func (s *Signature) Lookup(name string) (*Scheme, bool) {
	sch, ok := s.items[name]
	return sch, ok
}

// Names returns the declared names in declaration order.
func (s *Signature) Names() []string { return append([]string(nil), s.names...) }

// Thin returns a copy of the signature containing only the listed names;
// unknown names are ignored. This is Caml module thinning (paper §5.1).
func (s *Signature) Thin(keep ...string) *Signature {
	allowed := map[string]bool{}
	for _, k := range keep {
		allowed[k] = true
	}
	out := NewSignature(s.Module)
	for _, n := range s.names {
		if allowed[n] {
			out.Add(n, s.items[n])
		}
	}
	return out
}

// Canonical returns the canonical text rendering used for digesting:
// the module name followed by "name : type" lines sorted by name.
func (s *Signature) Canonical() string {
	var sb strings.Builder
	sb.WriteString("module ")
	sb.WriteString(s.Module)
	sb.WriteByte('\n')
	sorted := append([]string(nil), s.names...)
	sort.Strings(sorted)
	for _, n := range sorted {
		sb.WriteString("val ")
		sb.WriteString(n)
		sb.WriteString(" : ")
		sb.WriteString(TypeString(s.items[n].Body))
		sb.WriteByte('\n')
	}
	return sb.String()
}
