package vm

import (
	"bytes"
	"crypto/md5"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// Opcodes of the swl stack machine.
const (
	opConstInt byte = iota
	opConstStr
	opConstBool
	opConstUnit
	opLocalGet
	opLocalSet
	opCaptureGet
	opGlobalGet
	opGlobalSet
	opImportGet
	opClosure
	opCall
	opTailCall
	opReturn
	opJump
	opJumpIfFalse
	opJumpIfTrue
	opPop
	opAdd
	opSub
	opMul
	opDiv
	opMod
	opConcat
	opEq
	opNe
	opLt
	opLe
	opGt
	opGe
	opNot
	opNeg
	opTuple
	opTupleGet
	opRaise
	opPushHandler
	opPopHandler
	opRefGet
	opRefSet
	opNop
	opMax
)

// Quickened opcodes. These never appear on the wire: DecodeObject and
// Verify reject any opcode >= opMax, so a hostile .swo cannot smuggle a
// superinstruction with unchecked operands. They exist only in Chunk.Quick
// code produced by OptimizeObject from already-verified wire code, which is
// why their operands can be trusted by construction. Each carries a step
// weight W equal to the number of wire instructions it replaces, so
// Machine.Steps — and therefore virtual time — is identical at -O0 and -O1.
//
// A quickened frame that hits a case the fast path cannot handle (fuel too
// low to charge a whole superinstruction, a call site whose predicted
// native was rebound) deoptimizes: the frame switches to the naive Code at
// the exact wire pc recorded in quickSrc and replays the sequence
// instruction by instruction, reproducing -O0 traps, steps and stack
// effects bit for bit.
const (
	// qNop: dead wire pair (pure push + pop/dead store) collapsed to
	// nothing; consumes W fuel.
	qNop byte = opMax + iota
	// qConst: folded integer constant expression. A is the value.
	qConst
	// qConst2: two consecutive integer constants. A and B are the values.
	qConst2
	// qGetGet: push local A then push local B.
	qGetGet
	// qCmpJf: comparison (B is the wire comparison opcode) followed by
	// jump-if-false with relative offset A. The intermediate bool is never
	// boxed.
	qCmpJf
	// qGGCmpJf: push local, push local, compare, jump-if-false. A is the
	// offset; B packs slot1 | slot2<<12 | cmpOp<<24.
	qGGCmpJf
	// qIncL: local A += B (get, const, add, set) through the tagged slot.
	qIncL
	// qGetFieldSet: local dst = (local src).field — the LetTuple
	// destructuring sequence (get, tuple_get, set). A is src; B packs
	// fieldIdx | dst<<8.
	qGetFieldSet
	// qStrSub: opCall whose callee the optimizer predicted to be the
	// tagged String.sub native; inlined with a 2-way inline cache on the
	// result box. A packs argc | icIdx<<8. Stack shape is exactly opCall's
	// (callee below args); a mispredicted callee deopts to the wire call.
	qStrSub
	// qStrGet: predicted String.get call, inlined. A is argc.
	qStrGet
	// qHtblFind: predicted Hashtbl.find call with a (table, version, key)
	// inline cache. A packs argc | icIdx<<8.
	qHtblFind
	// qHtblMem: predicted Hashtbl.mem call with the same cache shape.
	qHtblMem
	// qHtblAdd: predicted Hashtbl.add call, inlined. A is argc.
	qHtblAdd
	// qISet: store local A (tagged mirror), additionally mirroring an int
	// value untagged into frame register B (type-directed: only emitted
	// for slots inference proved int). A non-int value — impossible in
	// typechecked code — just marks the register invalid.
	qISet
	// qIIncL: untagged loop increment. A packs slot | reg<<16; B is the
	// delta. The tagged mirror is kept current so plain local_get in the
	// loop body still works; deopts if the register is invalid.
	qIIncL
	// qIILeJf: untagged loop head: if !(int(i) <= int(hi)) jump. A is the
	// offset; B packs slotI | slotHi<<6 | regI<<12 | regHi<<18. Touches no
	// operand stack at all when both registers are valid.
	qIILeJf
	qMax
)

var opNames = [...]string{
	"const_int", "const_str", "const_bool", "const_unit",
	"local_get", "local_set", "capture_get", "global_get", "global_set",
	"import_get", "closure", "call", "tail_call", "return",
	"jump", "jump_if_false", "jump_if_true", "pop",
	"add", "sub", "mul", "div", "mod", "concat",
	"eq", "ne", "lt", "le", "gt", "ge", "not", "neg",
	"tuple", "tuple_get", "raise", "push_handler", "pop_handler",
	"ref_get", "ref_set", "nop",
}

// qNames names the quickened opcodes, indexed by op - qNop.
var qNames = [...]string{
	"q.nop", "q.const", "q.const2", "q.get_get", "q.cmp_jf", "q.gg_cmp_jf",
	"q.inc_local", "q.get_field_set",
	"q.str_sub", "q.str_get", "q.htbl_find", "q.htbl_mem", "q.htbl_add",
	"q.iset", "q.i_inc", "q.ii_le_jf",
}

// opName renders any opcode, wire or quickened, width-safely.
func opName(op byte) string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	if op >= qNop && op < qMax {
		return qNames[op-qNop]
	}
	return fmt.Sprintf("op%d", op)
}

// Instr is one decoded instruction. Operand meaning depends on Op:
//   - opConstInt: A is the literal;
//   - opConstStr: A indexes the string pool;
//   - opLocal*/opCapture*/opGlobal*/opImportGet: A is the slot index;
//   - opClosure: A is the chunk index, B indexes the capture-spec table;
//   - opCall/opTailCall/opTuple/opTupleGet: A is the count/index;
//   - opJump*/opPushHandler: A is a relative offset from the next
//     instruction.
type Instr struct {
	Op byte
	// W is the step weight: how many wire instructions this one accounts
	// for. Wire code always has weight 1 (the interpreter treats 0 as 1,
	// so hand-built test chunks need not set it); quickened
	// superinstructions carry the weight of the sequence they replace so
	// fuel and Machine.Steps — and with them virtual time — are identical
	// with and without optimization. W is never serialized: it is derived
	// by the optimizer.
	W byte
	A int64
	B int32
}

func (i Instr) String() string {
	return fmt.Sprintf("%s %d %d", opName(i.Op), i.A, i.B)
}

// Capture kinds for closure capture specs.
const (
	capLocal     byte = 0 // capture current frame's local slot
	capCapture   byte = 1 // re-capture from current closure's environment
	capSelf      byte = 2 // the closure being constructed (let rec)
	capFrameSelf byte = 3 // the executing frame's own closure (recursion via nesting)
)

// CaptureRef describes where a closure capture comes from.
type CaptureRef struct {
	Kind byte
	Idx  uint16
}

// Chunk is one compiled function body.
//
// Code is the wire bytecode: always present, always correct, and the only
// form that Encode serializes — the .swo byte stream is identical at every
// optimization level, so object transfer over the simulated net (and hence
// every virtual-time fingerprint) is unaffected by quickening. Quick, when
// non-nil, is the superinstruction form the interpreter prefers; the
// remaining fields are the optimizer's in-memory annotations.
type Chunk struct {
	Name    string // diagnostic name
	NParams int
	NLocals int // including params
	// Idx is this chunk's index in Object.Chunks, set at construction by
	// the compiler and decoder. The translated tier uses it to key
	// per-LinkedModule closure tables without touching the shared Chunk;
	// the loader refuses translation when the indices are inconsistent
	// (hand-built objects may leave them zero).
	Idx  int
	Code []Instr
	// Quick is the quickened code produced by OptimizeObject; nil means
	// interpret Code. Never serialized.
	Quick []Instr
	// quickSrc maps each Quick pc to the wire pc of the first instruction
	// it covers, so a frame can deoptimize mid-flight to the exact naive
	// position.
	quickSrc []int32
	// IntSlots marks locals the type checker proved to be ints
	// (inference-typed lets and for-loop counters). Only the in-process
	// compiler fills it; decoded objects carry no type evidence and so
	// never get untagged registers.
	IntSlots []bool
	// NInts is the number of untagged int frame registers this chunk uses
	// (at most maxIntRegs).
	NInts int
	// forLoops records the exact instruction positions of for-loop
	// headers/increments emitted by codegen, the optimizer's license to
	// use untagged loop ops.
	forLoops []forLoop
}

// forLoop records where codegen placed the pieces of one `for` loop.
type forLoop struct {
	ISlot, HiSlot int
	SetI, SetHi   int // pc of the initial opLocalSet i / hi
	Head          int // pc of the 4-instruction loop head (get,get,le,jf)
	Inc           int // pc of the 4-instruction increment (get,const,add,set)
}

// ImportRef records a dependency on another module: the names used and the
// MD5 digest of the signature the module was compiled against. At link
// time the digest must match the provider's export digest (paper §5.1:
// "a link time error would result because the signatures would not match").
type ImportRef struct {
	Module string
	Digest [16]byte
	Names  []string
}

// Object is a compiled switchlet: the unit of transmission and dynamic
// loading (the paper's Caml bytecode file).
type Object struct {
	ModName string
	Imports []ImportRef
	// ExportText is the canonical signature text; ExportDigest its MD5.
	ExportText   string
	ExportDigest [16]byte
	StrPool      []string
	Chunks       []*Chunk
	CapSpecs     [][]CaptureRef
	// NGlobals is the number of module-level slots.
	NGlobals int
	// Init is the chunk index of the module initialization code (the
	// "top-level forms" that run at load and perform registration).
	Init int
	// GlobalNames maps export names to global slots.
	GlobalNames map[string]int

	// NICSites is the number of inline-cache sites the optimizer assigned
	// across all chunks; each LinkedModule allocates that many cache
	// entries so Object and Chunk stay immutable and shareable between
	// bridges. In-memory only, never serialized.
	NICSites int
	// optOnce makes OptimizeObject idempotent and safe on objects shared
	// between bridges (the process-wide compiled-object cache).
	optOnce sync.Once
	// quickened records that OptimizeObject ran; OptTrusted whether it ran
	// with trusted-source rules (in-process compile) or hostile-input
	// rules (decoded from bytes).
	quickened  bool
	OptTrusted bool

	// verifyOnce caches the static verification verdict (see static.go):
	// objects are immutable once shared between bridges, so one proof
	// serves every install. verified is the earned trust bit the
	// optimizer's trusted rule set requires; atomic because shared objects
	// are installed from concurrent shard goroutines.
	verifyOnce sync.Once
	verifyInfo *VerifyInfo
	verifyErr  error
	verified   atomic.Bool
}

// Verified reports whether VerifyObject has accepted this object.
func (o *Object) Verified() bool { return o.verified.Load() }

// SigDigest computes the MD5 digest of a signature's canonical text,
// cached on the signature (signatures are immutable once in use).
func SigDigest(sig *Signature) [16]byte {
	sig.digestOnce.Do(func() { sig.digest = md5.Sum([]byte(sig.Canonical())) })
	return sig.digest
}

// ExportSignature reconstructs the Signature from the object's canonical
// export text.
func (o *Object) ExportSignature() (*Signature, error) {
	return ParseSignatureText(o.ExportText)
}

// ParseSignatureText parses the canonical "module M\nval n : t\n..." form.
func ParseSignatureText(text string) (*Signature, error) {
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	if len(lines) == 0 || !strings.HasPrefix(lines[0], "module ") {
		return nil, errors.New("vm: malformed signature text")
	}
	sig := NewSignature(strings.TrimPrefix(lines[0], "module "))
	for _, ln := range lines[1:] {
		if ln == "" {
			continue
		}
		if !strings.HasPrefix(ln, "val ") {
			return nil, fmt.Errorf("vm: malformed signature line %q", ln)
		}
		rest := strings.TrimPrefix(ln, "val ")
		i := strings.Index(rest, " : ")
		if i < 0 {
			return nil, fmt.Errorf("vm: malformed signature line %q", ln)
		}
		sch, err := ParseType(rest[i+3:])
		if err != nil {
			return nil, err
		}
		// Quantify all variables: canonical text loses level structure,
		// and everything exported is fully determined or quantified.
		markGeneric(sch.Body)
		sig.Add(rest[:i], sch)
	}
	return sig, nil
}

func markGeneric(t Type) {
	t = prune(t)
	switch v := t.(type) {
	case *TVar:
		v.Generic = true
	case *TFun:
		markGeneric(v.Arg)
		markGeneric(v.Ret)
	case *TCon:
		for _, a := range v.Args {
			markGeneric(a)
		}
	}
}

// --- binary encoding -------------------------------------------------------

var objMagic = []byte("SWO1")

// ErrBadObject reports a malformed or corrupt object file.
var ErrBadObject = errors.New("vm: malformed object file")

type objWriter struct{ buf bytes.Buffer }

func (w *objWriter) u8(v byte) { w.buf.WriteByte(v) }
func (w *objWriter) u32(v uint32) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	w.buf.Write(b[:])
}
func (w *objWriter) i64(v int64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(v))
	w.buf.Write(b[:])
}
func (w *objWriter) str(s string)   { w.u32(uint32(len(s))); w.buf.WriteString(s) }
func (w *objWriter) bytes(b []byte) { w.buf.Write(b) }

// Encode serializes the object to the on-the-wire .swo format.
func (o *Object) Encode() []byte {
	w := &objWriter{}
	w.bytes(objMagic)
	w.str(o.ModName)
	w.u32(uint32(len(o.Imports)))
	for _, im := range o.Imports {
		w.str(im.Module)
		w.bytes(im.Digest[:])
		w.u32(uint32(len(im.Names)))
		for _, n := range im.Names {
			w.str(n)
		}
	}
	w.str(o.ExportText)
	w.bytes(o.ExportDigest[:])
	w.u32(uint32(len(o.StrPool)))
	for _, s := range o.StrPool {
		w.str(s)
	}
	w.u32(uint32(len(o.CapSpecs)))
	for _, spec := range o.CapSpecs {
		w.u32(uint32(len(spec)))
		for _, c := range spec {
			w.u8(c.Kind)
			w.u32(uint32(c.Idx))
		}
	}
	w.u32(uint32(len(o.Chunks)))
	for _, c := range o.Chunks {
		w.str(c.Name)
		w.u32(uint32(c.NParams))
		w.u32(uint32(c.NLocals))
		w.u32(uint32(len(c.Code)))
		for _, ins := range c.Code {
			w.u8(ins.Op)
			w.i64(ins.A)
			w.u32(uint32(ins.B))
		}
	}
	w.u32(uint32(o.NGlobals))
	w.u32(uint32(o.Init))
	w.u32(uint32(len(o.GlobalNames)))
	for _, name := range sortedKeys(o.GlobalNames) {
		w.str(name)
		w.u32(uint32(o.GlobalNames[name]))
	}
	return w.buf.Bytes()
}

func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m { //ab:mapiter-ok keys are sorted below before use
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ { // insertion sort; maps are small
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

type objReader struct {
	b   []byte
	off int
	err error
}

func (r *objReader) fail() {
	if r.err == nil {
		r.err = ErrBadObject
	}
}

func (r *objReader) u8() byte {
	if r.err != nil || r.off >= len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *objReader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *objReader) i64() int64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return int64(v)
}

func (r *objReader) str() string {
	n := int(r.u32())
	if r.err != nil || n < 0 || r.off+n > len(r.b) {
		r.fail()
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

func (r *objReader) digest() (d [16]byte) {
	if r.err != nil || r.off+16 > len(r.b) {
		r.fail()
		return
	}
	copy(d[:], r.b[r.off:])
	r.off += 16
	return
}

// count reads a u32 length and bounds it: every element occupies at least
// min bytes, so a length claiming more elements than remaining bytes allow
// is corrupt, not a cause for a giant allocation.
func (r *objReader) count(min int) int {
	n := int(r.u32())
	if r.err != nil {
		return 0
	}
	if min > 0 && n > (len(r.b)-r.off)/min+1 {
		r.fail()
		return 0
	}
	return n
}

// DecodeObject parses a .swo object file.
func DecodeObject(b []byte) (*Object, error) {
	if len(b) < 4 || !bytes.Equal(b[:4], objMagic) {
		return nil, ErrBadObject
	}
	r := &objReader{b: b, off: 4}
	o := &Object{GlobalNames: map[string]int{}}
	o.ModName = r.str()
	nImp := r.count(4)
	for i := 0; i < nImp && r.err == nil; i++ {
		var im ImportRef
		im.Module = r.str()
		im.Digest = r.digest()
		nn := r.count(4)
		for j := 0; j < nn && r.err == nil; j++ {
			im.Names = append(im.Names, r.str())
		}
		o.Imports = append(o.Imports, im)
	}
	o.ExportText = r.str()
	o.ExportDigest = r.digest()
	nStr := r.count(4)
	for i := 0; i < nStr && r.err == nil; i++ {
		o.StrPool = append(o.StrPool, r.str())
	}
	nSpec := r.count(4)
	for i := 0; i < nSpec && r.err == nil; i++ {
		nc := r.count(5)
		spec := make([]CaptureRef, 0, nc)
		for j := 0; j < nc && r.err == nil; j++ {
			k := r.u8()
			idx := r.u32()
			if k > capFrameSelf || idx > 0xffff {
				r.fail()
				break
			}
			spec = append(spec, CaptureRef{Kind: k, Idx: uint16(idx)})
		}
		o.CapSpecs = append(o.CapSpecs, spec)
	}
	nChunks := r.count(16)
	for i := 0; i < nChunks && r.err == nil; i++ {
		c := &Chunk{Idx: i}
		c.Name = r.str()
		c.NParams = int(r.u32())
		c.NLocals = int(r.u32())
		nIns := r.count(13)
		for j := 0; j < nIns && r.err == nil; j++ {
			op := r.u8()
			if op >= opMax {
				r.fail()
				break
			}
			a := r.i64()
			bv := int32(r.u32())
			c.Code = append(c.Code, Instr{Op: op, A: a, B: bv})
		}
		o.Chunks = append(o.Chunks, c)
	}
	o.NGlobals = int(r.u32())
	o.Init = int(r.u32())
	nG := r.count(8)
	for i := 0; i < nG && r.err == nil; i++ {
		name := r.str()
		slot := int(r.u32())
		o.GlobalNames[name] = slot
	}
	if r.err != nil {
		return nil, r.err
	}
	if o.Init < 0 || o.Init >= len(o.Chunks) {
		return nil, ErrBadObject
	}
	// Verify the export digest binds the export text.
	if md5.Sum([]byte(o.ExportText)) != o.ExportDigest {
		return nil, fmt.Errorf("vm: export signature digest mismatch in %s", o.ModName)
	}
	return o, nil
}

// Verify performs structural validation of chunk code: operand bounds,
// jump targets, and stack-safety of slot references. Loading runs it so a
// corrupted or hand-forged object cannot make the interpreter index out of
// bounds. (Type safety of well-formed objects comes from the compiler;
// Verify defends the interpreter itself.)
func (o *Object) Verify() error {
	for ci, c := range o.Chunks {
		if c.NParams < 0 || c.NParams > 255 {
			return fmt.Errorf("vm: chunk %d implausible parameter count", ci)
		}
		if c.NLocals < 0 || c.NLocals > 1<<16 {
			return fmt.Errorf("vm: chunk %d implausible local count", ci)
		}
		if c.NParams > c.NLocals {
			return fmt.Errorf("vm: chunk %d params exceed locals", ci)
		}
		for pc, ins := range c.Code {
			// Wire code must stay below opMax: quickened superinstructions
			// are an in-memory form only, and their operands are trusted by
			// construction — so they must never arrive from outside.
			if ins.Op >= opMax {
				return fmt.Errorf("vm: chunk %d pc %d: unknown opcode %d", ci, pc, ins.Op)
			}
			switch ins.Op {
			case opConstStr:
				if ins.A < 0 || int(ins.A) >= len(o.StrPool) {
					return fmt.Errorf("vm: chunk %d pc %d: string index out of range", ci, pc)
				}
			case opLocalGet, opLocalSet:
				if ins.A < 0 || int(ins.A) >= c.NLocals {
					return fmt.Errorf("vm: chunk %d pc %d: local slot out of range", ci, pc)
				}
			case opGlobalGet, opGlobalSet:
				if ins.A < 0 || int(ins.A) >= o.NGlobals {
					return fmt.Errorf("vm: chunk %d pc %d: global slot out of range", ci, pc)
				}
			case opClosure:
				if ins.A < 0 || int(ins.A) >= len(o.Chunks) {
					return fmt.Errorf("vm: chunk %d pc %d: closure chunk out of range", ci, pc)
				}
				if ins.B < 0 || int(ins.B) >= len(o.CapSpecs) {
					return fmt.Errorf("vm: chunk %d pc %d: capture spec out of range", ci, pc)
				}
			case opJump, opJumpIfFalse, opJumpIfTrue, opPushHandler:
				tgt := pc + 1 + int(ins.A)
				if tgt < 0 || tgt > len(c.Code) {
					return fmt.Errorf("vm: chunk %d pc %d: jump out of range", ci, pc)
				}
			case opCall, opTailCall:
				if ins.A < 1 || ins.A > 255 {
					return fmt.Errorf("vm: chunk %d pc %d: bad call arity", ci, pc)
				}
			case opTuple:
				if ins.A < 2 || ins.A > 4 {
					return fmt.Errorf("vm: chunk %d pc %d: bad tuple arity", ci, pc)
				}
			}
		}
	}
	// Sorted so a multi-error object always reports the same export first.
	for _, name := range sortedKeys(o.GlobalNames) {
		if slot := o.GlobalNames[name]; slot < 0 || slot >= o.NGlobals {
			return fmt.Errorf("vm: export %s: global slot out of range", name)
		}
	}
	if o.NGlobals < 0 || o.NGlobals > 1<<20 {
		return fmt.Errorf("vm: implausible global count %d", o.NGlobals)
	}
	var nImports int
	for _, im := range o.Imports {
		nImports += len(im.Names)
	}
	for ci, c := range o.Chunks {
		for pc, ins := range c.Code {
			if ins.Op == opImportGet && (ins.A < 0 || int(ins.A) >= nImports) {
				return fmt.Errorf("vm: chunk %d pc %d: import index out of range", ci, pc)
			}
		}
	}
	return nil
}
