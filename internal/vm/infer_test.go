package vm

import (
	"strings"
	"testing"
)

// tryCompile compiles against the standard environment and returns the error.
func tryCompile(t *testing.T, src string) error {
	t.Helper()
	l := StdLoader(NewMachine())
	_, _, err := Compile("T", src, l.SigEnv())
	return err
}

func wantTypeError(t *testing.T, src, fragment string) {
	t.Helper()
	err := tryCompile(t, src)
	if err == nil {
		t.Errorf("expected type error for %q", src)
		return
	}
	if _, ok := err.(*TypeError); !ok {
		t.Errorf("expected *TypeError for %q, got %T: %v", src, err, err)
		return
	}
	if fragment != "" && !strings.Contains(err.Error(), fragment) {
		t.Errorf("error for %q = %v, want fragment %q", src, err, fragment)
	}
}

func wantOK(t *testing.T, src string) {
	t.Helper()
	if err := tryCompile(t, src); err != nil {
		t.Errorf("expected %q to type check, got %v", src, err)
	}
}

func TestTypeMismatchRejected(t *testing.T) {
	wantTypeError(t, `let x = 1 + "a"`, "cannot unify")
	wantTypeError(t, `let x = "a" ^ 1`, "cannot unify")
	wantTypeError(t, `let f () = if 1 then 2 else 3`, "cannot unify")
	wantTypeError(t, `let f () = if true then 1 else "x"`, "cannot unify")
	wantTypeError(t, `let f x = x && 1`, "cannot unify")
	wantTypeError(t, `let f () = not 3`, "cannot unify")
}

func TestApplicationErrors(t *testing.T) {
	wantTypeError(t, `let f () = 3 4`, "")
	wantTypeError(t, `let f x = x x`, "recursive type")
	wantTypeError(t, `
let g a b = a + b
let h () = g 1 2 3`, "")
}

func TestUnboundNames(t *testing.T) {
	wantTypeError(t, `let f () = mystery_function 1`, "unbound name")
	wantTypeError(t, `let f () = Nonexistent.thing 1`, "unknown module")
	wantTypeError(t, `let f () = String.nonexported "x"`, "no value")
}

func TestRefTyping(t *testing.T) {
	wantOK(t, `
let r = ref 0
let bump () = r := !r + 1`)
	wantTypeError(t, `
let r = ref 0
let bad () = r := "str"`, "cannot unify")
	wantTypeError(t, `let f () = !3`, "cannot unify")
	wantTypeError(t, `let f () = 3 := 4`, "cannot unify")
}

func TestSequenceRequiresUnit(t *testing.T) {
	wantTypeError(t, `let f () = 3; 4`, "cannot unify")
	wantOK(t, `let f () = ignore 3; 4`)
}

func TestPolymorphismGeneralizes(t *testing.T) {
	wantOK(t, `
let id x = x
let use () = (id 1) + (if id true then 1 else 0)`)
	wantOK(t, `
let pair a b = (a, b)
let use () = (pair 1 "x", pair true ())`)
}

func TestValueRestriction(t *testing.T) {
	// `ref` applications must not generalize: this is the classic
	// unsoundness that the value restriction prevents.
	wantTypeError(t, `
let cell = ref (fun x -> x)
let _ = cell := (fun y -> y + 1)
let use () = (!cell) true`, "")
}

func TestWeakExportRejected(t *testing.T) {
	// A top-level table whose types never resolve cannot be exported.
	wantTypeError(t, `let mystery = Hashtbl.create 8`, "not fully determined")
	// But one whose use pins the types is fine.
	wantOK(t, `
let table = Hashtbl.create 8
let _ = Hashtbl.add table "k" 1`)
}

func TestHashtblTyping(t *testing.T) {
	wantTypeError(t, `
let t = Hashtbl.create 8
let _ = Hashtbl.add t "k" 1
let _ = Hashtbl.add t 2 3`, "cannot unify")
	wantOK(t, `
let t = Hashtbl.create 8
let _ = Hashtbl.add t "k" (1, "v")
let get k = Hashtbl.find t k`)
}

func TestLetRecTyping(t *testing.T) {
	wantOK(t, `let rec f n = if n = 0 then 0 else f (n - 1)`)
	wantTypeError(t, `let rec f n = if n = 0 then 0 else f "x"`, "cannot unify")
}

func TestTupleTyping(t *testing.T) {
	wantTypeError(t, `
let f p = let (a, b) = p in a + b
let use () = f (1, "x")`, "cannot unify")
	wantTypeError(t, `
let f p = let (a, b, c) = p in a
let use () = f (1, 2)`, "cannot unify")
}

func TestTryTyping(t *testing.T) {
	wantOK(t, `let f () = try 1 with 2`)
	wantTypeError(t, `let f () = try 1 with "x"`, "cannot unify")
	wantTypeError(t, `let f () = raise 3`, "cannot unify")
	wantOK(t, `let f () = if true then raise "x" else 3`)
}

func TestForWhileTyping(t *testing.T) {
	wantTypeError(t, `let f () = while 3 do () done`, "cannot unify")
	wantTypeError(t, `let f () = while true do 3 done`, "cannot unify")
	wantTypeError(t, `let f () = for i = true to 3 do () done`, "cannot unify")
	wantTypeError(t, `let f () = for i = 1 to 3 do i done`, "cannot unify")
	wantOK(t, `let f () = for i = 1 to 3 do ignore i done`)
}

func TestTypeStringCanonical(t *testing.T) {
	cases := []struct{ in, want string }{
		{"int -> int", "int -> int"},
		{"int -> int -> bool", "int -> int -> bool"},
		{"(int -> int) -> int", "(int -> int) -> int"},
		{"'a -> 'a", "'a -> 'a"},
		{"'a -> 'b -> 'a", "'a -> 'b -> 'a"},
		{"('k, 'v) hashtbl -> 'k -> 'v", "('a, 'b) hashtbl -> 'a -> 'b"},
		{"(int * string) -> int", "(int * string) -> int"},
		{"'a ref -> 'a", "('a) ref -> 'a"},
		{"int ref ref -> unit", "((int) ref) ref -> unit"},
	}
	for _, c := range cases {
		sch, err := ParseType(c.in)
		if err != nil {
			t.Errorf("ParseType(%q): %v", c.in, err)
			continue
		}
		if got := TypeString(sch.Body); got != c.want {
			t.Errorf("TypeString(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseTypeErrors(t *testing.T) {
	for _, s := range []string{"", "badtype", "'", "(int", "int ->", "foo bar", "(int, string) frobnicator"} {
		if _, err := ParseType(s); err == nil {
			t.Errorf("ParseType(%q) should fail", s)
		}
	}
}

func TestSignatureCanonicalAndThin(t *testing.T) {
	sig := NewSignature("M")
	sig.Add("b", MustParseType("int -> int"))
	sig.Add("a", MustParseType("string -> unit"))
	sig.Add("danger", MustParseType("unit -> unit"))
	text := sig.Canonical()
	if !strings.HasPrefix(text, "module M\n") {
		t.Errorf("canonical = %q", text)
	}
	// Sorted by name regardless of declaration order.
	if strings.Index(text, "val a") > strings.Index(text, "val b") {
		t.Error("canonical not sorted")
	}
	thin := sig.Thin("a", "b")
	if _, ok := thin.Lookup("danger"); ok {
		t.Error("thinned signature still exposes danger")
	}
	if SigDigest(thin) == SigDigest(sig) {
		t.Error("thinning must change the digest")
	}
	// Round trip through the text form.
	back, err := ParseSignatureText(text)
	if err != nil {
		t.Fatal(err)
	}
	if SigDigest(back) != SigDigest(sig) {
		t.Error("signature text round trip changed the digest")
	}
}

func TestParserErrors(t *testing.T) {
	bad := []string{
		`let`,
		`let x`,
		`let x =`,
		`let 3 = 4`,
		`let f = if true then 1`, // dangling non-unit if is a type error, but `then 1` with no else parses; use junk instead
		`let f = (1,`,
		`let f = "unterminated`,
		`let f = 1 in 2`, // top-level let has no in
		`x + 2`,          // no top-level expression
		`let f () = begin 1`,
		`let f () = while true do () `,
		`let f = Module.`,
		`let f = (* unclosed comment`,
		`let f () = (1, 2, 3, 4, 5)`, // tuple arity limit
	}
	for _, src := range bad {
		if _, err := ParseModule("T", src); err == nil {
			// some of these are type errors instead; compile fully
			if err2 := tryCompile(t, src); err2 == nil {
				t.Errorf("expected parse/compile error for %q", src)
			}
		}
	}
}

func TestCommentsAndLiterals(t *testing.T) {
	l, lm := compileAndLoad(t, "Lit", `
(* outer comment (* nested *) still comment *)
let hex = 0xff
let escaped () = "a\tb\nc\\d\"e\x41"
let big = 1000000007
`)
	if v := call(t, l, lm, "escaped", Unit{}); v != "a\tb\nc\\d\"eA" {
		t.Errorf("escaped = %q", v)
	}
	hv, _ := lm.Global("hex")
	if hv != int64(255) {
		t.Errorf("hex = %v", hv)
	}
	bv, _ := lm.Global("big")
	if bv != int64(1000000007) {
		t.Errorf("big = %v", bv)
	}
}

func TestExportSignatureContents(t *testing.T) {
	l := StdLoader(NewMachine())
	_, sig, err := Compile("Api", `
let handle pkt port = ignore pkt; ignore port
let count = ref 0
let _ = count := 1
`, l.SigEnv())
	if err != nil {
		t.Fatal(err)
	}
	sch, ok := sig.Lookup("handle")
	if !ok {
		t.Fatal("handle not exported")
	}
	if got := TypeString(sch.Body); got != "'a -> 'b -> unit" {
		t.Errorf("handle : %s", got)
	}
	if _, ok := sig.Lookup("_"); ok {
		t.Error("_ bindings must not be exported")
	}
	if _, ok := sig.Lookup("count"); !ok {
		t.Error("count should be exported")
	}
}
